package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/fed"
	"repro/internal/model"
)

// Server exposes a session Manager over HTTP/JSON.
//
// Session lifecycle:
//
//	POST   /v1/sessions           (a SessionConfig, optional "id")  → created session
//	GET    /v1/sessions                                             → session list
//	GET    /v1/sessions/{id}                                        → session state
//	DELETE /v1/sessions/{id}                                        → delete
//
// Per-session run control (the single-engine API of internal/engine,
// generalized to many sessions and to federations):
//
//	POST /v1/sessions/{id}/jobs        {"jobs":[{"org":0,"size":5,"cluster":1}]}
//	POST /v1/sessions/{id}/advance     {"until":100} ({} or an empty body: next event)
//	GET  /v1/sessions/{id}/state
//	GET  /v1/sessions/{id}/decisions?since=N
//	GET  /v1/sessions/{id}/checkpoint
//	POST /v1/sessions/{id}/restore     (a checkpoint)
//	GET  /v1/healthz
//
// The classic single-run endpoints (/v1/jobs, /v1/advance, /v1/state,
// /v1/decisions, /v1/checkpoint, /v1/restore) remain mounted as
// aliases for the session named "default", so pre-session clients and
// scripts keep working against a daemon booted with the legacy flags.
type Server struct {
	mgr  *Manager
	pipe *Pipeline
	log  func(format string, args ...any)
}

// NewServer wraps a manager for HTTP serving.
func NewServer(m *Manager) *Server { return &Server{mgr: m} }

// Manager returns the underlying session manager.
func (s *Server) Manager() *Manager { return s.mgr }

// SetLogf installs a sink for server-side I/O problems the client can
// no longer be told about (response-write failures, unmarshalable
// response values). Optional; set before the handler starts serving.
func (s *Server) SetLogf(logf func(format string, args ...any)) { s.log = logf }

// logf forwards to the installed sink, if any.
func (s *Server) logf(format string, args ...any) {
	if s.log != nil {
		s.log(format, args...)
	}
}

// UsePipeline routes advance requests through p instead of calling
// Session.Advance inline: requests enqueue onto the session's stripe
// and a worker batch-processes them, so a hot session rate-limits
// against its shard instead of monopolizing handler goroutines. Set
// before the handler starts serving.
func (s *Server) UsePipeline(p *Pipeline) { s.pipe = p }

// DefaultSession is the id the legacy single-run endpoints alias.
const DefaultSession = "default"

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.withSession((*Server).handleState))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{id}/jobs", s.withSession((*Server).handleJobs))
	mux.HandleFunc("POST /v1/sessions/{id}/advance", s.withSession((*Server).handleAdvance))
	mux.HandleFunc("GET /v1/sessions/{id}/state", s.withSession((*Server).handleState))
	mux.HandleFunc("GET /v1/sessions/{id}/decisions", s.withSession((*Server).handleDecisions))
	mux.HandleFunc("GET /v1/sessions/{id}/checkpoint", s.withSession((*Server).handleCheckpoint))
	mux.HandleFunc("POST /v1/sessions/{id}/restore", s.withSession((*Server).handleRestore))

	// Legacy aliases onto the default session.
	alias := func(h func(*Server, http.ResponseWriter, *http.Request, *Session)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			sess, ok := s.mgr.Get(DefaultSession)
			if !ok {
				s.writeError(w, http.StatusNotFound, "no %q session (daemon booted without a default run)", DefaultSession)
				return
			}
			h(s, w, r, sess)
		}
	}
	mux.HandleFunc("POST /v1/jobs", alias((*Server).handleJobs))
	mux.HandleFunc("POST /v1/advance", alias((*Server).handleAdvance))
	mux.HandleFunc("GET /v1/state", alias((*Server).handleState))
	mux.HandleFunc("GET /v1/decisions", alias((*Server).handleDecisions))
	mux.HandleFunc("GET /v1/checkpoint", alias((*Server).handleCheckpoint))
	mux.HandleFunc("POST /v1/restore", alias((*Server).handleRestore))

	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		s.writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "sessions": len(s.mgr.List())})
	})
	return mux
}

// withSession resolves the {id} path segment before invoking h.
func (s *Server) withSession(h func(*Server, http.ResponseWriter, *http.Request, *Session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sess, ok := s.mgr.Get(r.PathValue("id"))
		if !ok {
			s.writeError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
			return
		}
		h(s, w, r, sess)
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID string `json:"id"`
		SessionConfig
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	sess, err := s.mgr.Create(req.ID, req.SessionConfig)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusCreated, sess.State())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	type row struct {
		ID        string     `json:"id"`
		Kind      string     `json:"kind"`
		Now       model.Time `json:"now"`
		Jobs      int        `json:"jobs"`
		Decisions int        `json:"decisions"`
	}
	rows := []row{}
	for _, sess := range s.mgr.List() {
		st := sess.State()
		rows = append(rows, row{ID: sess.ID(), Kind: sess.Kind(), Now: st.Now, Jobs: st.Jobs, Decisions: st.Decisions})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"sessions": rows})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.mgr.Delete(id) {
		s.writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request, sess *Session) {
	var req struct {
		Jobs []JobSubmission `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	ids, err := sess.Submit(req.Jobs)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"ids": ids, "now": sess.State().Now})
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request, sess *Session) {
	var req struct {
		Until *model.Time `json:"until"`
	}
	// An empty POST body is the documented advance-to-next-event form
	// (same as {}), so a bare io.EOF is not an error; a truncated JSON
	// document still is (ErrUnexpectedEOF).
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var (
		now  model.Time
		decs []Decision
		err  error
	)
	if s.pipe != nil {
		now, decs, err = s.pipe.Advance(sess, req.Until)
	} else {
		now, decs, err = sess.Advance(req.Until)
	}
	if err != nil {
		s.writeError(w, advanceStatus(err), "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"now": now, "decisions": decs})
}

func (s *Server) handleState(w http.ResponseWriter, _ *http.Request, sess *Session) {
	s.writeJSON(w, http.StatusOK, sess.State())
}

func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request, sess *Session) {
	since := 0
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.writeError(w, http.StatusBadRequest, "bad since parameter %q", v)
			return
		}
		since = n
	}
	total, decs := sess.Decisions(since)
	s.writeJSON(w, http.StatusOK, map[string]any{"total": total, "decisions": decs})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request, sess *Session) {
	data, err := sess.Checkpoint()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(data); err != nil {
		s.logf("daemon: writing checkpoint response: %v", err)
	}
}

// advanceStatus maps an advance failure onto its HTTP status: a sticky
// job-source failure is broken server-side run state (500), a streaming
// checkpoint stepped before its source was re-attached is a conflict
// the client can repair (409), and everything else — bad until, a
// config the request contradicts — is the request's fault (400).
func advanceStatus(err error) int {
	switch {
	case errors.Is(err, fed.ErrSourceFailed):
		return http.StatusInternalServerError
	case errors.Is(err, fed.ErrNoSource):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request, sess *Session) {
	var buf json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&buf); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad snapshot: %v", err)
		return
	}
	if err := sess.Restore(buf); err != nil {
		// A snapshot the session rejects is the client's problem; a
		// session whose own configuration no longer rebuilds is ours.
		status := http.StatusBadRequest
		if errors.Is(err, errRestoreConfig) {
			status = http.StatusInternalServerError
		}
		s.writeError(w, status, "%v", err)
		return
	}
	st := sess.State()
	s.writeJSON(w, http.StatusOK, map[string]any{"now": st.Now, "decisions": st.Decisions})
}

// writeJSON marshals v before touching the response, so a value that
// cannot marshal becomes a clean 500 instead of a truncated 200 with a
// committed status line; write failures (client gone mid-response) are
// reported to the server log rather than silently discarded.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		s.logf("daemon: marshaling %T response: %v", v, err)
		status = http.StatusInternalServerError
		data = []byte(`{"error":"internal: response serialization failed"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		s.logf("daemon: writing response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
