// Command fairsched runs one multi-organization scheduling simulation
// and reports per-organization utilities, contributions and fairness.
//
// Workloads come from a synthetic family or from a Standard Workload
// Format (SWF) trace file:
//
//	fairsched -family lpc-egee -alg directcontr -orgs 5 -horizon 50000
//	fairsched -swf trace.swf -alg ref -orgs 3 -horizon 10000 -gantt
//
// With -compare, the run is repeated with the exact REF algorithm and
// the unfairness Δψ/p_tot is reported.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vis"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fairsched:", err)
		os.Exit(1)
	}
}

// run is the whole command; split from main so the CLI smoke tests can
// drive flag parsing, instance building and a full simulation without
// spawning a process.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fairsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		family   = fs.String("family", "lpc-egee", "synthetic workload family (lpc-egee, pik-iplex, sharcnet-whale, ricc)")
		swfPath  = fs.String("swf", "", "SWF trace file (overrides -family)")
		algName  = fs.String("alg", "directcontr", "algorithm: ref, rand, directcontr, fairshare, utfairshare, currfairshare, roundrobin, fcfs")
		orgs     = fs.Int("orgs", 5, "number of organizations")
		horizon  = fs.Int64("horizon", 50000, "simulation horizon (time units)")
		seed     = fs.Int64("seed", 1, "random seed")
		samples  = fs.Int("rand-n", 15, "RAND sample count")
		strat    = fs.Bool("rand-stratified", false, "RAND: draw permutations in position-stratified rotations")
		workers  = fs.Int("workers", 0, "worker goroutines for REF/RAND parallel paths (0 = GOMAXPROCS)")
		driver   = fs.String("ref-driver", "heap", "REF event loop: heap (indexed event heap) or scan (legacy full scan)")
		split    = fs.String("split", "zipf", "machine split among organizations: zipf | uniform")
		machines = fs.Int("machines", 0, "total machines when using -swf (0 = #orgs)")
		gantt    = fs.Bool("gantt", false, "print an ASCII Gantt chart (small runs only)")
		compare  = fs.Bool("compare", false, "also run REF and report Δψ/p_tot")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already printed the error and usage to stderr.
		return errors.New("invalid arguments")
	}

	inst, err := buildInstance(*swfPath, *family, *orgs, *split, *machines, model.Time(*horizon), *seed, stderr)
	if err != nil {
		return err
	}
	refDriver, err := core.ParseRefDriver(*driver)
	if err != nil {
		return err
	}
	refOpts := core.RefOptions{Parallel: true, Workers: *workers, Driver: refDriver}
	alg, err := exp.AlgorithmByName(*algName, *samples, refOpts, core.RandOptions{Workers: *workers, Stratified: *strat})
	if err != nil {
		return err
	}

	res := alg.Run(inst, model.Time(*horizon), *seed)
	fmt.Fprintf(stdout, "algorithm   : %s\n", res.Algorithm)
	fmt.Fprintf(stdout, "jobs        : %d started of %d\n", len(res.Starts), len(inst.Jobs))
	fmt.Fprintf(stdout, "machines    : %d\n", inst.TotalMachines())
	fmt.Fprintf(stdout, "horizon     : %d\n", res.Horizon)
	fmt.Fprintf(stdout, "value v(C)  : %d\n", res.Value)
	fmt.Fprintf(stdout, "utilization : %.3f\n\n", res.Utilization)

	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "org\tmachines\tjobs\tψ (utility)\tφ (contribution)")
	perOrg := make([]int, len(inst.Orgs))
	for _, j := range inst.Jobs {
		perOrg[j.Org]++
	}
	for i, o := range inst.Orgs {
		phi := "-"
		if res.Phi != nil {
			phi = fmt.Sprintf("%.1f", res.Phi[i])
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\n", o.Name, o.Machines, perOrg[i], res.Psi[i], phi)
	}
	w.Flush()

	if *compare {
		ref := core.RefAlgorithm{Opts: refOpts}.Run(inst, model.Time(*horizon), *seed)
		fmt.Fprintf(stdout, "\nREF reference value : %d\n", ref.Value)
		fmt.Fprintf(stdout, "Δψ (L1 distance)    : %d\n", metrics.DeltaPsi(res.Psi, ref.Psi))
		fmt.Fprintf(stdout, "Δψ/p_tot            : %.3f\n", metrics.UnfairnessPerUnit(res.Psi, ref.Psi, ref.Ptot))
	}
	if *gantt {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, vis.Gantt(inst, res.Starts, inst.TotalMachines(), model.Time(*horizon), 100))
	}
	return nil
}

func buildInstance(swfPath, family string, orgs int, split string, machines int, horizon model.Time, seed int64, stderr io.Writer) (*model.Instance, error) {
	rng := stats.NewRand(seed)
	if swfPath != "" {
		f, err := os.Open(swfPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, skipped, err := trace.ParseSWF(f)
		if err != nil {
			return nil, err
		}
		if skipped > 0 {
			fmt.Fprintf(stderr, "fairsched: skipped %d unusable trace records\n", skipped)
		}
		tr = tr.Sequentialize().Window(0, horizon)
		if machines <= 0 {
			machines = orgs
		}
		var splits []int
		if split == "uniform" {
			splits = stats.UniformSplit(machines, orgs)
		} else {
			splits = stats.ZipfSplit(machines, orgs, 1)
		}
		return trace.ToInstance(tr, splits, trace.AssignUsers(tr.Users(), orgs, rng))
	}
	fam, err := gen.FamilyByName(family)
	if err != nil {
		return nil, err
	}
	var splits []int
	if split == "uniform" {
		splits = stats.UniformSplit(fam.Procs, orgs)
	} else {
		splits = stats.ZipfSplit(fam.Procs, orgs, 1)
	}
	return fam.Instance(horizon, orgs, splits, rng)
}
