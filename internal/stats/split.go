package stats

import "math"

// ZipfWeights returns n weights proportional to 1/i^exp for i = 1..n,
// normalized to sum to 1. exp = 0 yields the uniform distribution.
func ZipfWeights(n int, exp float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), exp)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Apportion splits total indivisible items into len(weights) parts
// proportional to the weights using the largest-remainder method, giving
// every part with positive weight at least one item when total allows
// (total >= number of positive-weight parts). The result always sums to
// total.
func Apportion(total int, weights []float64) []int {
	n := len(weights)
	out := make([]int, n)
	if n == 0 || total <= 0 {
		return out
	}
	var wsum float64
	positive := 0
	for _, w := range weights {
		if w > 0 {
			wsum += w
			positive++
		}
	}
	if wsum == 0 {
		// Degenerate: spread uniformly.
		for i := range out {
			out[i] = total / n
			if i < total%n {
				out[i]++
			}
		}
		return out
	}
	// Reserve one item per positive-weight part if possible.
	reserve := 0
	if total >= positive {
		reserve = 1
	}
	remaining := total - reserve*positive
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, 0, n)
	assigned := 0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		exact := float64(remaining) * w / wsum
		fl := int(exact)
		out[i] = reserve + fl
		assigned += fl
		fracs = append(fracs, frac{i, exact - float64(fl)})
	}
	// Distribute the leftover to the largest remainders (stable on ties).
	left := remaining - assigned
	for left > 0 {
		best := -1
		for j, f := range fracs {
			if best == -1 || f.rem > fracs[best].rem {
				best = j
			}
		}
		out[fracs[best].idx]++
		fracs[best].rem = -1
		left--
	}
	return out
}

// ZipfSplit apportions total items across n parts with Zipf(exp) weights.
func ZipfSplit(total, n int, exp float64) []int {
	return Apportion(total, ZipfWeights(n, exp))
}

// UniformSplit apportions total items across n near-equal parts.
func UniformSplit(total, n int) []int {
	return Apportion(total, ZipfWeights(n, 0))
}
