package utility

import (
	"testing"

	"repro/internal/model"
)

func TestFuncImplementations(t *testing.T) {
	execs := []Execution{{Start: 0, Size: 3}, {Start: 5, Size: 2}, {Start: 9, Size: 4}}
	cases := []struct {
		f    Func
		name string
		at6  int64
	}{
		{SP{}, "psi_sp", Psi(execs, 6)},
		{Starts{}, "starts", 2},
		{CompletedWork{}, "completed_work", 3 + 1},
	}
	for _, c := range cases {
		if c.f.Name() != c.name {
			t.Errorf("Name = %q, want %q", c.f.Name(), c.name)
		}
		if got := c.f.Eval(execs, 6); got != c.at6 {
			t.Errorf("%s.Eval(6) = %d, want %d", c.name, got, c.at6)
		}
	}
	// Starts counts a job started exactly at t (it reacts to the
	// decision instant), unlike the execution-based utilities.
	if got := (Starts{}).Eval([]Execution{{Start: 6, Size: 1}}, 6); got != 1 {
		t.Errorf("Starts at its own start = %d, want 1", got)
	}
	if got := (SP{}).Eval([]Execution{{Start: 6, Size: 1}}, 6); got != 0 {
		t.Errorf("ψsp at its own start = %d, want 0", got)
	}
}

func TestAddScaledWindowEdges(t *testing.T) {
	// q=1 delegates to the plain window.
	var a, b Account
	a.AddScaledWindow(2, 5, 1, 2, 7)
	b.AddWindow(2, 7)
	if a != b {
		t.Fatalf("q=1 scaled window %+v != plain %+v", a, b)
	}
	// Empty window records nothing.
	var c Account
	c.AddScaledWindow(0, 10, 3, 4, 4)
	if c != (Account{}) {
		t.Fatalf("empty scaled window recorded %+v", c)
	}
	// Exactly divisible sizes: the last slot carries a full q units.
	var d Account
	d.AddScaledWindow(0, 6, 3, 0, 2)
	if d.U != 6 || d.S != 3*0+3*1 {
		t.Fatalf("divisible case = %+v", d)
	}
	// Remainder case: 7 units at speed 3 → slots carry 3, 3, 1.
	var e Account
	e.AddScaledWindow(0, 7, 3, 0, 3)
	if e.U != 7 || e.S != 0+3+2 {
		t.Fatalf("remainder case = %+v", e)
	}
	// Evaluation matches the per-unit definition.
	var eval model.Time = 10
	if got := e.PsiAt(eval); got != 3*10+3*9+1*8 {
		t.Fatalf("ψ = %d", got)
	}
}
