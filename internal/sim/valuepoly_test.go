package sim

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// lowOrgPolicy starts the waiting job of the lowest-index organization —
// the minimal deterministic policy (baseline would import sim back).
type lowOrgPolicy struct{ view *View }

func (p *lowOrgPolicy) Name() string                 { return "low-org" }
func (p *lowOrgPolicy) Attach(v *View, _ *rand.Rand) { p.view = v }
func (p *lowOrgPolicy) Select(_ model.Time, _ int) int {
	for u := 0; u < p.view.Orgs(); u++ {
		if p.view.Waiting(u) > 0 {
			return u
		}
	}
	return -1
}

// A ValuePoly snapshot must evaluate to exactly Value() at every instant
// up to the cluster's next event — including on related machines, where
// a running job's final slot carries a sub-speed remainder. The test
// drives a cluster event by event; between events it compares the frozen
// polynomial against the live (flushing) evaluation at every
// intermediate time.
func TestValuePolyMatchesLiveValueBetweenEvents(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(500 + seed))
		k := 1 + r.Intn(3)
		orgs := make([]model.Org, k)
		for i := range orgs {
			m := 1 + r.Intn(2)
			o := model.Org{Name: string(rune('A' + i)), Machines: m}
			if r.Intn(2) == 0 {
				o.Speeds = make([]int, m)
				for s := range o.Speeds {
					o.Speeds[s] = 1 + r.Intn(3)
				}
			}
			orgs[i] = o
		}
		n := 4 + r.Intn(10)
		jobs := make([]model.Job, n)
		for i := range jobs {
			jobs[i] = model.Job{Org: r.Intn(k), Release: model.Time(r.Intn(10)), Size: model.Time(1 + r.Intn(9))}
		}
		in := model.MustNewInstance(orgs, jobs)
		horizon := in.Horizon() + 2

		c := New(in, in.Grand(), &lowOrgPolicy{}, nil)
		for {
			poly := c.ValuePoly()
			next := c.NextEventTime()
			stop := next
			if stop > horizon {
				stop = horizon
			}
			// The polynomial must be exact at the snapshot instant and at
			// every time strictly before the next event.
			for tm := c.Now(); tm < stop; tm++ {
				c.AdvanceTo(tm)
				if got, want := poly.At(tm), c.Value(); got != want {
					t.Fatalf("seed %d: poly.At(%d) = %d, live value = %d", seed, tm, got, want)
				}
			}
			if next == MaxTime || next > horizon {
				break
			}
			if !c.Step(horizon) {
				break
			}
		}
	}
}

// The zero ValuePoly is the value function of an untouched cluster.
func TestValuePolyZeroValue(t *testing.T) {
	var p ValuePoly
	for _, tm := range []model.Time{0, 1, 17, 1 << 20} {
		if p.At(tm) != 0 {
			t.Fatalf("zero poly at %d = %d, want 0", tm, p.At(tm))
		}
	}
}
