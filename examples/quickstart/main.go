// Quickstart: two organizations share a four-machine pool. Organization
// A contributes three machines but few jobs; organization B contributes
// one machine and floods the system. The Shapley-fair schedulers give
// A's rare jobs immediate service — it "paid" for that with its idle
// machines — while round-robin treats both organizations alike.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/vis"
)

func buildInstance() *model.Instance {
	jobs := []model.Job{}
	// B submits a burst of 30 size-4 jobs at t=0.
	for i := 0; i < 30; i++ {
		jobs = append(jobs, model.Job{Org: 1, Release: 0, Size: 4})
	}
	// A submits a handful of short jobs while B's backlog drains.
	for _, r := range []model.Time{8, 9, 16, 17, 24} {
		jobs = append(jobs, model.Job{Org: 0, Release: r, Size: 2})
	}
	return model.MustNewInstance(
		[]model.Org{
			{Name: "A (3 machines, 5 jobs)", Machines: 3},
			{Name: "B (1 machine, 30 jobs)", Machines: 1},
		},
		jobs,
	)
}

func main() {
	const horizon = 60
	algorithms := []core.Algorithm{
		core.RefAlgorithm{},
		core.DirectContrAlgorithm(),
		core.FromPolicy("RoundRobin", func() sim.Policy { return baseline.NewRoundRobin() }),
	}
	ref := algorithms[0].Run(buildInstance(), horizon, 1)
	for _, alg := range algorithms {
		res := alg.Run(buildInstance(), horizon, 1)
		fmt.Printf("=== %s ===\n", res.Algorithm)
		for i, psi := range res.Psi {
			name := buildInstance().Orgs[i].Name
			if res.Phi != nil {
				fmt.Printf("  %-24s ψ = %5d   φ = %8.1f\n", name, psi, res.Phi[i])
			} else {
				fmt.Printf("  %-24s ψ = %5d\n", name, psi)
			}
		}
		fmt.Printf("  unfairness Δψ/p_tot vs REF = %.2f\n",
			metrics.UnfairnessPerUnit(res.Psi, ref.Psi, ref.Ptot))
		fmt.Printf("  utilization = %.2f\n\n", res.Utilization)
	}
	// Show when A's five jobs started under each algorithm.
	fmt.Println("Start times of A's jobs (released at 8, 9, 16, 17, 24):")
	for _, alg := range algorithms {
		res := alg.Run(buildInstance(), horizon, 1)
		var starts []model.Time
		for _, s := range res.Starts {
			if s.Org == 0 {
				starts = append(starts, s.At)
			}
		}
		fmt.Printf("  %-14s %v\n", res.Algorithm, starts)
	}
	fmt.Println()
	res := core.DirectContrAlgorithm().Run(buildInstance(), horizon, 1)
	fmt.Println("DIRECTCONTR schedule:")
	fmt.Print(vis.Gantt(buildInstance(), res.Starts, 4, horizon, 80))
}
