package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/model"
	"repro/internal/shapley"
	"repro/internal/sim"
)

func randCoreInstance(r *rand.Rand, k int, unit bool) *model.Instance {
	orgs := make([]model.Org, k)
	for i := range orgs {
		orgs[i] = model.Org{Name: string(rune('A' + i)), Machines: 1 + r.Intn(2)}
	}
	n := 3 + r.Intn(12)
	jobs := make([]model.Job, n)
	for i := range jobs {
		size := model.Time(1)
		if !unit {
			size = model.Time(1 + r.Intn(6))
		}
		jobs[i] = model.Job{Org: r.Intn(k), Release: model.Time(r.Intn(15)), Size: size}
	}
	return model.MustNewInstance(orgs, jobs)
}

// REF's subset-formula contributions must agree with the generic Shapley
// evaluator applied to the final coalition values.
func TestRefPhiMatchesGenericShapley(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(3)
		in := randCoreInstance(r, k, false)
		horizon := in.Horizon() + 2
		ref := NewRef(in, RefOptions{})
		res := ref.Run(horizon)
		game := shapley.FuncGame{N: k, F: func(c model.Coalition) float64 {
			return float64(ref.ValueOf(c))
		}}
		want := shapley.Exact(game)
		for u := 0; u < k; u++ {
			if math.Abs(res.Phi[u]-want[u]) > 1e-6 {
				t.Fatalf("seed %d: φ[%d] = %v, generic Shapley %v", seed, u, res.Phi[u], want[u])
			}
		}
	}
}

// Efficiency: the contributions must distribute exactly the grand
// coalition's value (first Shapley axiom, Section 3).
func TestRefEfficiency(t *testing.T) {
	for seed := int64(20); seed < 28; seed++ {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		in := randCoreInstance(r, k, false)
		res := RefAlgorithm{}.Run(in, in.Horizon()+1, 0)
		var sum float64
		for _, p := range res.Phi {
			sum += p
		}
		if math.Abs(sum-float64(res.Value)) > 1e-6*math.Max(1, float64(res.Value)) {
			t.Fatalf("seed %d: Σφ = %v, v(grand) = %d", seed, sum, res.Value)
		}
	}
}

// Proposition 5.5: the instance {a, b with two unit jobs each; c with
// none} has v({a,c}) = v({b,c}) = 4, v({a,b,c}) = 7, v({c}) = 0 at t=2 —
// the game is not supermodular.
func TestNonSupermodularExample(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{
			{Name: "a", Machines: 1},
			{Name: "b", Machines: 1},
			{Name: "c", Machines: 1},
		},
		[]model.Job{
			{Org: 0, Release: 0, Size: 1},
			{Org: 0, Release: 0, Size: 1},
			{Org: 1, Release: 0, Size: 1},
			{Org: 1, Release: 0, Size: 1},
		},
	)
	ref := NewRef(in, RefOptions{})
	ref.Run(2)
	ac := model.Singleton(0).With(2)
	bc := model.Singleton(1).With(2)
	abc := model.Grand(3)
	c := model.Singleton(2)
	if got := ref.ValueOf(ac); got != 4 {
		t.Errorf("v({a,c}) = %d, want 4", got)
	}
	if got := ref.ValueOf(bc); got != 4 {
		t.Errorf("v({b,c}) = %d, want 4", got)
	}
	if got := ref.ValueOf(abc); got != 7 {
		t.Errorf("v({a,b,c}) = %d, want 7", got)
	}
	if got := ref.ValueOf(c); got != 0 {
		t.Errorf("v({c}) = %d, want 0", got)
	}
	// v(union) + v(intersection) < v(ac) + v(bc): not supermodular.
	if ref.ValueOf(abc)+ref.ValueOf(c) >= ref.ValueOf(ac)+ref.ValueOf(bc) {
		t.Error("expected the supermodularity inequality to fail on this instance")
	}
}

// A single organization scheduled by REF gets exactly the utility of a
// plain greedy run: with FIFO and identical machines the start times are
// forced.
func TestRefSingleOrgMatchesGreedy(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	in := randCoreInstance(r, 1, false)
	horizon := in.Horizon() + 1
	res := RefAlgorithm{}.Run(in, horizon, 0)
	plain := FromPolicy("priority", func() sim.Policy { return baseline.NewPriority(0) }).
		Run(in, horizon, 0)
	if res.Psi[0] != plain.Psi[0] {
		t.Fatalf("REF ψ = %d, plain greedy ψ = %d", res.Psi[0], plain.Psi[0])
	}
}

// REF's embedded subcoalition schedules must match running REF on the
// restricted instance — the recursion of Definition 3.1 is self-similar.
func TestRefSubcoalitionSelfSimilar(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	in := randCoreInstance(r, 3, false)
	horizon := in.Horizon() + 1
	ref := NewRef(in, RefOptions{})
	ref.Run(horizon)
	for mask := model.Coalition(1); mask < model.Grand(3); mask++ {
		sub := NewRef(in.Restrict(mask), RefOptions{})
		subRes := sub.Run(horizon)
		embedded := ref.Cluster(mask).PsiVector()
		for u := 0; u < 3; u++ {
			if embedded[u] != subRes.Psi[u] {
				t.Fatalf("coalition %v org %d: embedded ψ=%d, standalone ψ=%d",
					mask, u, embedded[u], subRes.Psi[u])
			}
		}
	}
}

func TestRefParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	in := randCoreInstance(r, 4, false)
	horizon := in.Horizon() + 1
	serial := RefAlgorithm{}.Run(in, horizon, 0)
	parallel := RefAlgorithm{Opts: RefOptions{Parallel: true, Workers: 4}}.Run(in, horizon, 0)
	if len(serial.Starts) != len(parallel.Starts) {
		t.Fatalf("start counts differ: %d vs %d", len(serial.Starts), len(parallel.Starts))
	}
	for i := range serial.Starts {
		if serial.Starts[i] != parallel.Starts[i] {
			t.Fatalf("start %d differs: %+v vs %+v", i, serial.Starts[i], parallel.Starts[i])
		}
	}
	for u := range serial.Psi {
		if serial.Psi[u] != parallel.Psi[u] {
			t.Fatalf("ψ[%d] differs: %d vs %d", u, serial.Psi[u], parallel.Psi[u])
		}
	}
}

// The rotation ablation must equalize perfectly symmetric organizations
// within a single instant: two orgs, one machine each, two unit jobs
// each at t=0. Faithful Figure 3 hands both machines to the lower-index
// org first; rotation alternates.
func TestRefRotationEqualizesSymmetricOrgs(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1}, {Name: "B", Machines: 1}},
		[]model.Job{
			{Org: 0, Release: 0, Size: 1},
			{Org: 0, Release: 0, Size: 1},
			{Org: 1, Release: 0, Size: 1},
			{Org: 1, Release: 0, Size: 1},
		},
	)
	rotate := RefAlgorithm{Opts: RefOptions{Rotate: true}}.Run(in, 2, 0)
	if rotate.Psi[0] != rotate.Psi[1] {
		t.Errorf("rotation: ψ = %v, want equal", rotate.Psi)
	}
	faithful := RefAlgorithm{}.Run(in, 2, 0)
	if faithful.Psi[0] == faithful.Psi[1] {
		t.Log("faithful selection also equalized (acceptable, tie-break dependent)")
	}
	// Both must schedule all four unit jobs with the same total value
	// (Proposition 5.4: unit jobs, greedy ⇒ same coalition value).
	if rotate.Value != faithful.Value {
		t.Errorf("values differ: rotate %d vs faithful %d", rotate.Value, faithful.Value)
	}
}

// REF is deterministic: two runs produce identical schedules.
func TestRefDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	in := randCoreInstance(r, 3, false)
	a := RefAlgorithm{}.Run(in, in.Horizon(), 1)
	b := RefAlgorithm{}.Run(in, in.Horizon(), 2) // seed must not matter
	for i := range a.Starts {
		if a.Starts[i] != b.Starts[i] {
			t.Fatalf("REF not deterministic at start %d", i)
		}
	}
}

// The dummy axiom on the scheduling game: an organization with no jobs
// and no machines contributes nothing and receives nothing.
func TestRefDummyOrganization(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{
			{Name: "A", Machines: 2},
			{Name: "dummy", Machines: 0},
			{Name: "C", Machines: 1},
		},
		[]model.Job{
			{Org: 0, Release: 0, Size: 3},
			{Org: 2, Release: 1, Size: 2},
			{Org: 0, Release: 2, Size: 4},
		},
	)
	res := RefAlgorithm{}.Run(in, in.Horizon()+1, 0)
	if math.Abs(res.Phi[1]) > 1e-9 {
		t.Errorf("dummy organization has φ = %v, want 0", res.Phi[1])
	}
	if res.Psi[1] != 0 {
		t.Errorf("dummy organization has ψ = %d, want 0", res.Psi[1])
	}
}
