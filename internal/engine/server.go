package engine

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/model"
	"repro/internal/sim"
)

// Server exposes a running Engine over HTTP/JSON — the serve-traffic
// path. One engine, one mutex: scheduling state is strictly serialized,
// which matches the engine's single-goroutine contract and keeps every
// response causally consistent.
//
// Endpoints:
//
//	POST /v1/jobs        {"jobs":[{"org":0,"size":5,"release":10}]} → assigned IDs
//	POST /v1/advance     {"until":100} (or {} for the next event)    → new decisions
//	GET  /v1/state                                                  → ψ, φ, value, clock
//	GET  /v1/decisions?since=N                                      → decision log suffix
//	GET  /v1/checkpoint                                             → snapshot JSON
//	POST /v1/restore     (a snapshot)                               → resumed clock
//	GET  /v1/healthz                                                → ok
//
// A job with no "release" field is released at the current engine
// clock: submit-now semantics.
type Server struct {
	mu sync.Mutex
	e  *Engine
}

// NewServer wraps an engine for HTTP serving.
func NewServer(e *Engine) *Server { return &Server{e: e} }

// Handler returns the server's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/advance", s.handleAdvance)
	mux.HandleFunc("/v1/state", s.handleState)
	mux.HandleFunc("/v1/decisions", s.handleDecisions)
	mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/v1/restore", s.handleRestore)
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// JobSubmission is one submitted job. Release is optional: nil means
// "now" (the current engine clock).
type JobSubmission struct {
	Org     int         `json:"org"`
	Size    model.Time  `json:"size"`
	Release *model.Time `json:"release,omitempty"`
}

// Decision is the wire form of one scheduling decision.
type Decision struct {
	Job     int        `json:"job"`
	Org     int        `json:"org"`
	Machine int        `json:"machine"`
	At      model.Time `json:"at"`
}

func toDecisions(starts []sim.Start) []Decision {
	out := make([]Decision, len(starts))
	for i, st := range starts {
		out[i] = Decision{Job: st.Job, Org: st.Org, Machine: st.Machine, At: st.At}
	}
	return out
}

// StateReply is the /v1/state response.
type StateReply struct {
	Algorithm   string      `json:"algorithm"`
	Now         model.Time  `json:"now"`
	NextEvent   *model.Time `json:"next_event,omitempty"` // omitted when drained
	Jobs        int         `json:"jobs"`
	Decisions   int         `json:"decisions"`
	Psi         []int64     `json:"psi"`
	Phi         []float64   `json:"phi,omitempty"`
	Value       int64       `json:"value"`
	Utilization float64     `json:"utilization"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Jobs []JobSubmission `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, "no jobs submitted")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	jobs := make([]model.Job, len(req.Jobs))
	for i, j := range req.Jobs {
		release := s.e.Now()
		if j.Release != nil {
			release = *j.Release
		}
		jobs[i] = model.Job{Org: j.Org, Size: j.Size, Release: release}
	}
	ids, err := s.e.Feed(jobs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ids": ids, "now": s.e.Now()})
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req struct {
		Until *model.Time `json:"until"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var (
		starts []sim.Start
		err    error
	)
	if req.Until != nil {
		starts, err = s.e.Step(*req.Until)
	} else {
		starts, _, err = s.e.StepToNextEvent()
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"now":       s.e.Now(),
		"decisions": toDecisions(starts),
	})
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	res := s.e.Result()
	reply := StateReply{
		Algorithm:   res.Algorithm,
		Now:         s.e.Now(),
		Jobs:        len(s.e.Instance().Jobs),
		Decisions:   len(s.e.Decisions()),
		Psi:         res.Psi,
		Phi:         res.Phi,
		Value:       res.Value,
		Utilization: res.Utilization,
	}
	if next := s.e.NextEventTime(); next != sim.MaxTime {
		reply.NextEvent = &next
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	since := 0
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad since parameter %q", v)
			return
		}
		since = n
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	all := s.e.Decisions()
	if since > len(all) {
		since = len(all)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":     len(all),
		"decisions": toDecisions(all[since:]),
	})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s.mu.Lock()
	data, err := s.e.Snapshot()
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var buf json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&buf); err != nil {
		writeError(w, http.StatusBadRequest, "bad snapshot: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	restored, err := Restore(s.e.Algorithm(), buf)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.e = restored
	writeJSON(w, http.StatusOK, map[string]any{"now": s.e.Now(), "decisions": len(s.e.Decisions())})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
