package exp

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/fed"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/stats"
)

// Admission-table metric columns, in render order. t_decide is the
// mean admission-decision latency in simulation ticks (0 when every
// job is admitted or rejected at its arrival instant — deferred
// retries are what make it positive).
const (
	AdmMetricAdmit   = "admit%"
	AdmMetricReject  = "reject%"
	AdmMetricDelta   = "Δψ/p_tot"
	AdmMetricLatency = "t_decide"
)

// AdmissionVariant is one admission policy under comparison: a display
// name and the ctrl spec the federation's control plane is built from.
type AdmissionVariant struct {
	Name string
	Spec ctrl.PolicySpec
}

// AdmissionConfig describes the admission-control ablation: the
// federated diurnal scenario swept over offered-load multipliers, each
// (variant × load) cell routed under one fixed delegation policy with
// the variant's control plane in front.
type AdmissionConfig struct {
	Scenario  gen.FedScenario
	Horizon   model.Time
	Instances int
	Seed      int64
	Alg       string
	Samples   int
	RefOpts   core.RefOptions
	RandOpts  core.RandOptions
	Workers   int
	// Policy is the delegation policy every run routes under
	// (fed.PolicyByName); the ablation varies admission, not routing.
	Policy string
	// Staleness bounds the age of the exchange snapshot both routing
	// and admission observe.
	Staleness model.Time
	// LoadFactors multiply the scenario's offered load; factors > 1
	// are the overload regimes admission control exists for.
	LoadFactors []float64
}

// DefaultAdmissionConfig returns the -admission experiment's base
// configuration: the federated diurnal scenario under least-loaded
// routing, swept from nominal load to 2× overload.
func DefaultAdmissionConfig() AdmissionConfig {
	return AdmissionConfig{
		Scenario:    DefaultFedConfig().Scenario,
		Horizon:     8000,
		Instances:   10,
		Seed:        1,
		Alg:         "directcontr",
		Samples:     15,
		Policy:      "leastloaded",
		LoadFactors: []float64{1, 1.5, 2},
	}
}

// DefaultAdmissionVariants returns the compared admission policies,
// calibrated to the scenario's capacity: an ungated baseline, a
// size-cost token bucket refilling at each organization's fair share
// of the processor pool, and a queue-depth backpressure valve sized to
// the pool.
func DefaultAdmissionVariants(s gen.FedScenario) []AdmissionVariant {
	meanSize := model.Time(math.Max(1, math.Round(s.Base.Size.Mean())))
	fairShare := int64(s.Base.Procs / s.Orgs)
	if fairShare < 1 {
		fairShare = 1
	}
	return []AdmissionVariant{
		{Name: "always", Spec: ctrl.PolicySpec{Policy: "always"}},
		{Name: "tokenbucket", Spec: ctrl.PolicySpec{
			// Rate work-units per tick = the org's machine share, so the
			// bucket admits ≈ the org's sustainable load and sheds the rest.
			Policy:      "tokenbucket",
			Rate:        fairShare,
			Period:      1,
			Burst:       4 * int64(meanSize),
			SizeCost:    true,
			MaxAttempts: 3,
		}},
		{Name: "backpressure", Spec: ctrl.PolicySpec{
			Policy:      "backpressure",
			MaxWaiting:  s.Base.Procs,
			RetryAfter:  meanSize,
			MaxAttempts: 4,
		}},
	}
}

// admissionRow names one (variant, load factor) table row.
func admissionRow(name string, lf float64) string {
	return fmt.Sprintf("%s ×%.3g", name, lf)
}

// runGatedInstance routes one workload under the configured delegation
// policy with the given admission control plane installed, returning
// the drained ledger and the plane's accounting.
func (cfg AdmissionConfig) runGatedInstance(w *gen.FedWorkload, alg core.StepperAlgorithm, policy fed.Policy, spec ctrl.PolicySpec, seed int64) (*fed.Ledger, *metrics.AdmissionStats, error) {
	specs := make([]fed.ClusterSpec, len(w.Machines))
	for c := range specs {
		specs[c] = fed.ClusterSpec{Name: fmt.Sprintf("site%d", c), Alg: alg, Machines: w.Machines[c]}
	}
	f, err := fed.New(w.Orgs, specs, policy, seed)
	if err != nil {
		return nil, nil, err
	}
	f.SetStaleness(cfg.Staleness)
	if err := f.SetAdmission(&spec); err != nil {
		return nil, nil, err
	}
	for c, js := range w.Jobs {
		if err := f.SubmitJobs(c, js); err != nil {
			return nil, nil, err
		}
	}
	if _, err := f.Step(cfg.Horizon); err != nil {
		return nil, nil, err
	}
	if err := f.CheckConservation(); err != nil {
		return nil, nil, fmt.Errorf("exp: admission %q broke conservation: %w", spec.Policy, err)
	}
	return f.Ledger(), f.AdmissionStats(), nil
}

// AdmissionTable runs the admission-control ablation: every sampled
// scenario instance, at every offered-load multiplier, is routed under
// every admission variant, and the admitted fraction, rejected
// fraction, unfairness Δψ/p_tot (against the ungated run of the same
// instance) and mean admission-decision latency aggregate into a
// (variant × load) × metric table.
func AdmissionTable(cfg AdmissionConfig, variants []AdmissionVariant) (*Table, error) {
	if cfg.Instances < 1 {
		return nil, fmt.Errorf("exp: admission experiment needs at least one instance")
	}
	if len(variants) == 0 {
		return nil, fmt.Errorf("exp: no admission variants selected")
	}
	if len(cfg.LoadFactors) == 0 {
		return nil, fmt.Errorf("exp: no load factors selected")
	}
	for _, lf := range cfg.LoadFactors {
		if lf <= 0 {
			return nil, fmt.Errorf("exp: load factor %v must be positive", lf)
		}
	}
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, err
	}
	// Validate every variant spec up front — a worker failing later
	// wastes the whole sweep.
	for _, v := range variants {
		if _, err := v.Spec.Build(); err != nil {
			return nil, fmt.Errorf("exp: admission variant %q: %w", v.Name, err)
		}
	}
	fedCfg := FedConfig{Alg: cfg.Alg, Samples: cfg.Samples, RefOpts: cfg.RefOpts, RandOpts: cfg.RandOpts}
	alg, err := fedCfg.memberAlg()
	if err != nil {
		return nil, err
	}
	policy, err := fed.PolicyByName(cfg.Policy)
	if err != nil {
		return nil, err
	}
	metricsOf := []string{AdmMetricAdmit, AdmMetricReject, AdmMetricDelta, AdmMetricLatency}
	// values[load][variant][metric][instance]
	values := make([][][][]float64, len(cfg.LoadFactors))
	for l := range values {
		values[l] = make([][][]float64, len(variants))
		for v := range values[l] {
			values[l][v] = make([][]float64, len(metricsOf))
			for m := range values[l][v] {
				values[l][v][m] = make([]float64, cfg.Instances)
			}
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Instances {
		workers = cfg.Instances
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if err := cfg.runAdmissionIdx(idx, alg, policy, variants, values); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for idx := 0; idx < cfg.Instances; idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	t := newTable()
	for m, metric := range metricsOf {
		for l, lf := range cfg.LoadFactors {
			for v, variant := range variants {
				t.add(metric, admissionRow(variant.Name, lf), values[l][v][m])
			}
		}
	}
	return t, nil
}

// runAdmissionIdx generates instance idx at every load factor, runs the
// ungated reference and every variant, and fills
// values[load][variant][metric][idx].
func (cfg AdmissionConfig) runAdmissionIdx(idx int, alg core.StepperAlgorithm, policy fed.Policy, variants []AdmissionVariant, values [][][][]float64) error {
	seed := cfg.Seed + int64(idx)*1009
	for l, lf := range cfg.LoadFactors {
		scen := cfg.Scenario
		// Scale offered load by lf: Load alone is swallowed by the
		// generator's one-session-per-user floor at small scales, so the
		// user population scales with it — per-user calibration stays
		// fixed and total arrival mass grows ∝ lf in both regimes.
		scen.Base.Load *= lf
		scen.Base.Users = int(math.Max(1, math.Round(float64(scen.Base.Users)*lf)))
		w, err := scen.Generate(cfg.Horizon, stats.NewRand(seed))
		if err != nil {
			return fmt.Errorf("exp: admission instance %d ×%g: %w", idx, lf, err)
		}
		// The ungated run of the same instance is the fairness reference:
		// Δψ/p_tot isolates what shedding load does to fairness, load
		// factor by load factor.
		refLedger, _, err := cfg.runGatedInstance(w, alg, policy, ctrl.PolicySpec{Policy: "always"}, seed)
		if err != nil {
			return fmt.Errorf("exp: admission instance %d ×%g reference: %w", idx, lf, err)
		}
		refPsi, refPtot := refLedger.FederationPsi(), refLedger.TotalExecuted()
		for v, variant := range variants {
			if variant.Spec.Policy == "always" || variant.Spec.Policy == "" {
				// Reuse the reference run; its counters are all-admit.
				released := float64(w.TotalJobs())
				values[l][v][0][idx] = pct(released, released)
				values[l][v][1][idx] = 0
				values[l][v][2][idx] = 0
				values[l][v][3][idx] = 0
				continue
			}
			ledger, st, err := cfg.runGatedInstance(w, alg, policy, variant.Spec, seed)
			if err != nil {
				return fmt.Errorf("exp: admission instance %d ×%g %s: %w", idx, lf, variant.Name, err)
			}
			released := float64(st.TotalReleased())
			values[l][v][0][idx] = pct(float64(st.TotalAdmitted()), released)
			values[l][v][1][idx] = pct(float64(st.TotalRejected()), released)
			values[l][v][2][idx] = metrics.UnfairnessPerUnit(ledger.FederationPsi(), refPsi, refPtot)
			values[l][v][3][idx] = st.MeanLatency()
		}
	}
	return nil
}

// pct returns 100·a/b, 0 when b is 0.
func pct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * a / b
}
