package sim

import (
	"testing"

	"repro/internal/model"
	"repro/internal/utility"
)

// orgPriority prefers organizations in the given fixed order.
func orgPriority(order ...int) Policy {
	return &SelectFunc{
		PolicyName: "priority",
		F: func(v *View, _ model.Time, _ int) int {
			for _, org := range order {
				if v.Waiting(org) > 0 {
					return org
				}
			}
			panic("no waiting org")
		},
	}
}

func TestSingleMachineSequence(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1}},
		[]model.Job{
			{Org: 0, Release: 0, Size: 3},
			{Org: 0, Release: 0, Size: 2},
			{Org: 0, Release: 10, Size: 1},
		},
	)
	c := New(in, in.Grand(), orgPriority(0), nil)
	c.Run(20)
	starts := c.Starts()
	if len(starts) != 3 {
		t.Fatalf("starts = %+v", starts)
	}
	wantAt := []model.Time{0, 3, 10}
	for i, s := range starts {
		if s.At != wantAt[i] {
			t.Errorf("start %d at %d, want %d", i, s.At, wantAt[i])
		}
		if s.Machine != 0 {
			t.Errorf("start %d on machine %d", i, s.Machine)
		}
	}
	// ψsp must match the direct closed form.
	want := utility.Psi([]utility.Execution{{Start: 0, Size: 3}, {Start: 3, Size: 2}, {Start: 10, Size: 1}}, 20)
	if got := c.Psi(0); got != want {
		t.Errorf("Psi = %d, want %d", got, want)
	}
	if got := c.ExecutedUnits(); got != 6 {
		t.Errorf("ExecutedUnits = %d", got)
	}
	if got := c.Value(); got != want {
		t.Errorf("Value = %d, want %d", got, want)
	}
}

func TestFIFOWithinOrganization(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 2}},
		[]model.Job{
			{Org: 0, Release: 0, Size: 5},
			{Org: 0, Release: 0, Size: 1},
			{Org: 0, Release: 0, Size: 1},
		},
	)
	c := New(in, in.Grand(), orgPriority(0), nil)
	c.Run(10)
	starts := c.Starts()
	// Job IDs must start in increasing order (FIFO).
	for i := 1; i < len(starts); i++ {
		if starts[i].Job < starts[i-1].Job {
			t.Fatalf("FIFO violated: %+v", starts)
		}
	}
	// The size-5 and first size-1 job start at 0; the second size-1 at 1.
	if starts[2].At != 1 {
		t.Errorf("third start at %d, want 1", starts[2].At)
	}
}

func TestNonClairvoyantView(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1}},
		[]model.Job{{Org: 0, Release: 2, Size: 9}},
	)
	c := New(in, in.Grand(), orgPriority(0), nil)
	v := c.View()
	if _, _, ok := v.Head(0); ok {
		t.Fatal("Head visible before release")
	}
	c.AdvanceTo(2)
	id, rel, ok := v.Head(0)
	if !ok || id != 0 || rel != 2 {
		t.Fatalf("Head = (%d,%d,%v)", id, rel, ok)
	}
	if v.TotalWaiting() != 1 || v.Waiting(0) != 1 {
		t.Fatal("waiting counters wrong")
	}
	c.Dispatch()
	if v.Waiting(0) != 0 || v.Running(0) != 1 {
		t.Fatal("dispatch did not move the job to running")
	}
}

// Figure 7 of the paper: 4 processors, four size-3 jobs of O(1) and two
// size-6 jobs of O(2), all released at 0. Starting O(2) first yields
// 100% utilization at T=6; starting O(1) first leaves two processors
// idle in [3,6) — 18/24 = 75%. This is the tight example behind the
// 3/4-competitiveness bound of Theorem 6.2.
func figure7Instance() *model.Instance {
	return model.MustNewInstance(
		[]model.Org{{Name: "O1", Machines: 2}, {Name: "O2", Machines: 2}},
		[]model.Job{
			{Org: 0, Release: 0, Size: 3},
			{Org: 0, Release: 0, Size: 3},
			{Org: 0, Release: 0, Size: 3},
			{Org: 0, Release: 0, Size: 3},
			{Org: 1, Release: 0, Size: 6},
			{Org: 1, Release: 0, Size: 6},
		},
	)
}

func TestFigure7Utilization(t *testing.T) {
	a := New(figure7Instance(), model.Grand(2), orgPriority(1, 0), nil)
	a.Run(6)
	if got := a.Utilization(); got != 1.0 {
		t.Errorf("O2-first utilization at 6 = %v, want 1.0 (paper, Figure 7a)", got)
	}
	b := New(figure7Instance(), model.Grand(2), orgPriority(0, 1), nil)
	b.Run(6)
	if got := b.Utilization(); got != 0.75 {
		t.Errorf("O1-first utilization at 6 = %v, want 0.75 (paper, Figure 7b)", got)
	}
}

func TestRunIsResumable(t *testing.T) {
	in := figure7Instance()
	whole := New(in, model.Grand(2), orgPriority(0, 1), nil)
	whole.Run(9)
	stepped := New(in, model.Grand(2), orgPriority(0, 1), nil)
	for ti := model.Time(1); ti <= 9; ti++ {
		stepped.Run(ti)
	}
	if whole.Value() != stepped.Value() {
		t.Errorf("resumed run diverged: %d vs %d", stepped.Value(), whole.Value())
	}
	if len(whole.Starts()) != len(stepped.Starts()) {
		t.Errorf("start counts diverged")
	}
}

func TestCoalitionRestriction(t *testing.T) {
	in := figure7Instance()
	c := New(in, model.Singleton(0), orgPriority(0), nil)
	c.Run(100)
	if got := len(c.Starts()); got != 4 {
		t.Fatalf("singleton coalition started %d jobs, want 4", got)
	}
	if c.View().Machines() != 2 {
		t.Fatalf("singleton coalition has %d machines", c.View().Machines())
	}
	if c.Psi(1) != 0 {
		t.Fatal("non-member accrued utility")
	}
	// O1 alone: 4 size-3 jobs on 2 machines: starts at 0,0,3,3.
	want := utility.Psi([]utility.Execution{
		{Start: 0, Size: 3}, {Start: 0, Size: 3}, {Start: 3, Size: 3}, {Start: 3, Size: 3},
	}, 100)
	if got := c.Psi(0); got != want {
		t.Fatalf("Psi(0) = %d, want %d", got, want)
	}
}

func TestMachineOwnersAndShares(t *testing.T) {
	in := figure7Instance()
	c := New(in, model.Grand(2), orgPriority(0, 1), nil)
	v := c.View()
	if v.Machines() != 4 {
		t.Fatalf("machines = %d", v.Machines())
	}
	owners := map[int]int{}
	for m := 0; m < v.Machines(); m++ {
		owners[v.MachineOwner(m)]++
	}
	if owners[0] != 2 || owners[1] != 2 {
		t.Fatalf("owners = %v", owners)
	}
	if v.Share(0) != 0.5 || v.Share(1) != 0.5 {
		t.Fatalf("shares = %v/%v", v.Share(0), v.Share(1))
	}
}

func TestOwnerAccounting(t *testing.T) {
	// One machine owned by B; only A has jobs. A gets the utility, B the
	// contribution.
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 0}, {Name: "B", Machines: 1}},
		[]model.Job{{Org: 0, Release: 0, Size: 4}},
	)
	c := New(in, in.Grand(), orgPriority(0, 1), nil)
	c.Run(10)
	if got := c.Psi(0); got != utility.PsiJob(0, 4, 10) {
		t.Errorf("A's ψ = %d", got)
	}
	if got := c.Psi(1); got != 0 {
		t.Errorf("B's ψ = %d, want 0", got)
	}
	v := c.View()
	if got := v.OwnerPsi(1); got != utility.PsiJob(0, 4, 10) {
		t.Errorf("B's owner-ψ = %d", got)
	}
	if got := v.OwnerUsage(1); got != 4 {
		t.Errorf("B's owner usage = %d", got)
	}
	if got := v.OwnerPsi(0); got != 0 {
		t.Errorf("A's owner-ψ = %d, want 0", got)
	}
}

func TestEmptyCoalitionPool(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 0}, {Name: "B", Machines: 1}},
		[]model.Job{{Org: 0, Release: 0, Size: 4}},
	)
	// Coalition {A} has a job but no machines: nothing ever runs.
	c := New(in, model.Singleton(0), orgPriority(0), nil)
	c.Run(50)
	if c.Value() != 0 || len(c.Starts()) != 0 {
		t.Fatalf("machine-less coalition ran jobs: value=%d", c.Value())
	}
	if c.View().Waiting(0) != 1 {
		t.Fatal("job should still be queued")
	}
}

func TestPanicOnBadPolicy(t *testing.T) {
	in := figure7Instance()
	bad := &SelectFunc{PolicyName: "bad", F: func(*View, model.Time, int) int { return 1 }}
	c := New(in, model.Singleton(0), bad, nil) // org 1 never has jobs here
	defer func() {
		if recover() == nil {
			t.Fatal("engine did not reject selection of org without waiting jobs")
		}
	}()
	c.Run(10)
}

func TestPlacedExport(t *testing.T) {
	in := figure7Instance()
	c := New(in, model.Grand(2), orgPriority(1, 0), nil)
	c.Run(20)
	all := c.Placed(-1)
	if len(all) != 6 {
		t.Fatalf("Placed(-1) = %d records", len(all))
	}
	if got := utility.BusyUnits(all, 20); got != int64(in.TotalWork()) {
		t.Fatalf("busy units = %d, want %d", got, in.TotalWork())
	}
	o2 := c.Placed(1)
	if len(o2) != 2 || o2[0].Size != 6 {
		t.Fatalf("Placed(1) = %+v", o2)
	}
}

func TestAdvanceToPanicsOnPast(t *testing.T) {
	in := figure7Instance()
	c := New(in, model.Grand(2), orgPriority(0, 1), nil)
	c.Run(5)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	c.AdvanceTo(2)
}
