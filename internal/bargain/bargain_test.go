package bargain

import (
	"errors"
	"math"
	"testing"
)

func solve(t *testing.T, w, d, maxs []float64, capacity float64) []float64 {
	t.Helper()
	x, err := Solve(w, d, maxs, capacity)
	if err != nil {
		t.Fatalf("Solve(%v, %v, %v, %v): %v", w, d, maxs, capacity, err)
	}
	return x
}

func TestEqualWeightsSplitEvenly(t *testing.T) {
	x := solve(t, []float64{1, 1}, []float64{0, 0}, nil, 10)
	if x[0] != 5 || x[1] != 5 {
		t.Fatalf("x = %v, want [5 5]", x)
	}
}

func TestWeightsSplitProportionally(t *testing.T) {
	x := solve(t, []float64{3, 1}, []float64{0, 0}, nil, 8)
	if x[0] != 6 || x[1] != 2 {
		t.Fatalf("x = %v, want [6 2]", x)
	}
}

func TestDisagreementPointsAreBaselines(t *testing.T) {
	x := solve(t, []float64{1, 1}, []float64{4, 0}, nil, 10)
	// Surplus 6 splits evenly on top of the baselines.
	if x[0] != 7 || x[1] != 3 {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

func TestCapRedistributes(t *testing.T) {
	// Agent 0's proportional share (5) exceeds its cap (2); the excess
	// flows to agent 1.
	x := solve(t, []float64{1, 1}, []float64{0, 0}, []float64{2, math.Inf(1)}, 10)
	if x[0] != 2 || x[1] != 8 {
		t.Fatalf("x = %v, want [2 8]", x)
	}
}

func TestCascadingCaps(t *testing.T) {
	// First pass pins agent 0 (share 4 > cap 1); the redistribution
	// then pins agent 1 too (share 4.5 > cap 3); agent 2 takes the rest.
	x := solve(t, []float64{1, 1, 1}, []float64{0, 0, 0}, []float64{1, 3, math.Inf(1)}, 12)
	if x[0] != 1 || x[1] != 3 || x[2] != 8 {
		t.Fatalf("x = %v, want [1 3 8]", x)
	}
}

func TestAllCappedLeavesSlack(t *testing.T) {
	x := solve(t, []float64{1, 1}, []float64{0, 0}, []float64{2, 3}, 100)
	if x[0] != 2 || x[1] != 3 {
		t.Fatalf("x = %v, want the caps [2 3]", x)
	}
}

func TestZeroWeightStaysAtDisagreement(t *testing.T) {
	x := solve(t, []float64{0, 1}, []float64{2, 1}, nil, 10)
	if x[0] != 2 || x[1] != 8 {
		t.Fatalf("x = %v, want [2 8]", x)
	}
}

func TestAllZeroWeights(t *testing.T) {
	x := solve(t, []float64{0, 0}, []float64{1, 2}, nil, 10)
	if x[0] != 1 || x[1] != 2 {
		t.Fatalf("x = %v, want the disagreement vector [1 2]", x)
	}
}

func TestSingleAgentDegenerate(t *testing.T) {
	if x := solve(t, []float64{5}, []float64{3}, nil, 11); x[0] != 11 {
		t.Fatalf("uncapped single agent takes all: x = %v, want [11]", x)
	}
	if x := solve(t, []float64{5}, []float64{3}, []float64{7}, 11); x[0] != 7 {
		t.Fatalf("capped single agent stops at the cap: x = %v, want [7]", x)
	}
	if x := solve(t, []float64{0}, []float64{3}, nil, 11); x[0] != 3 {
		t.Fatalf("weightless single agent keeps d: x = %v, want [3]", x)
	}
}

func TestInfeasibleErrors(t *testing.T) {
	if _, err := Solve([]float64{1, 1}, []float64{5, 6}, nil, 10); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Σd > C must return ErrInfeasible, got %v", err)
	}
}

func TestNearFeasibleTolerated(t *testing.T) {
	// Superadditive games round-trip through float64; a few ulps of
	// Σd > C must degrade to the disagreement vector, not error.
	d := []float64{1e15, 2e15}
	x, err := Solve([]float64{1, 1}, d, nil, 3e15-0.25)
	if err != nil {
		t.Fatalf("ulp-level infeasibility must be tolerated: %v", err)
	}
	if x[0] < d[0]-1 || x[1] < d[1]-1 {
		t.Fatalf("x = %v fell below d = %v", x, d)
	}
}

func TestInputValidation(t *testing.T) {
	cases := []struct {
		name     string
		w, d, mx []float64
		c        float64
	}{
		{"mismatched lengths", []float64{1}, []float64{0, 0}, nil, 1},
		{"negative weight", []float64{-1, 1}, []float64{0, 0}, nil, 1},
		{"NaN weight", []float64{math.NaN(), 1}, []float64{0, 0}, nil, 1},
		{"NaN disagreement", []float64{1, 1}, []float64{math.NaN(), 0}, nil, 1},
		{"cap below d", []float64{1, 1}, []float64{3, 0}, []float64{2, 9}, 9},
		{"NaN capacity", []float64{1, 1}, []float64{0, 0}, nil, math.NaN()},
		{"infinite capacity", []float64{1, 1}, []float64{0, 0}, nil, math.Inf(1)},
	}
	for _, c := range cases {
		if _, err := Solve(c.w, c.d, c.mx, c.c); err == nil {
			t.Errorf("%s: expected an error", c.name)
		}
	}
}

func TestSolverReuseMatchesFresh(t *testing.T) {
	var s Solver
	w := []float64{2, 1, 3}
	d := []float64{1, 0, 2}
	mx := []float64{4, math.Inf(1), math.Inf(1)}
	x1 := make([]float64, 3)
	if err := s.SolveInto(x1, w, d, mx, 20); err != nil {
		t.Fatal(err)
	}
	// A second, smaller solve on the same scratch.
	x2 := make([]float64, 2)
	if err := s.SolveInto(x2, []float64{1, 1}, []float64{0, 0}, nil, 2); err != nil {
		t.Fatal(err)
	}
	x3, err := Solve(w, d, mx, 20)
	if err != nil {
		t.Fatal(err)
	}
	x4 := make([]float64, 3)
	if err := s.SolveInto(x4, w, d, mx, 20); err != nil {
		t.Fatal(err)
	}
	for i := range x3 {
		if x1[i] != x3[i] || x4[i] != x3[i] {
			t.Fatalf("scratch reuse diverged: fresh %v, first %v, reused %v", x3, x1, x4)
		}
	}
}

func TestSolveIntoAllocFree(t *testing.T) {
	var s Solver
	const n = 8
	w := make([]float64, n)
	d := make([]float64, n)
	mx := make([]float64, n)
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = float64(1 + i)
		d[i] = float64(i)
		mx[i] = math.Inf(1)
	}
	mx[2], mx[5] = d[2]+1, d[5]+2 // exercise the pinning passes
	if err := s.SolveInto(x, w, d, mx, 1000); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.SolveInto(x, w, d, mx, 1000); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SolveInto allocates %v per solve; the budget is 0", allocs)
	}
}
