package utility

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// randSchedule draws a small random schedule; starts and sizes stay small
// so that closed-form and brute-force evaluations remain cheap.
func randSchedule(r *rand.Rand) []Execution {
	n := r.Intn(8)
	out := make([]Execution, n)
	for i := range out {
		out[i] = Execution{
			Start: model.Time(r.Intn(30)),
			Size:  model.Time(1 + r.Intn(12)),
		}
	}
	return out
}

// bruteForcePsi evaluates ψsp from first principles: each executed unit
// slot τ < t is worth t − τ.
func bruteForcePsi(execs []Execution, t model.Time) int64 {
	var total int64
	for _, e := range execs {
		for tau := e.Start; tau < e.Start+e.Size && tau < t; tau++ {
			total += int64(t - tau)
		}
	}
	return total
}

func TestPsiMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sched := randSchedule(r)
		eval := model.Time(r.Intn(50))
		return Psi(sched, eval) == bruteForcePsi(sched, eval)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Axiom 1 (task anonymity, starting times): delaying a fully executed
// task of size p by one unit costs exactly p, independent of the rest of
// the schedule and of the start time.
func TestAxiomStartTimeAnonymity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sched := randSchedule(r)
		p := model.Time(1 + r.Intn(10))
		s := model.Time(r.Intn(10))
		eval := s + p + 1 + model.Time(r.Intn(20)) // both placements complete before eval
		a := Psi(append(append([]Execution(nil), sched...), Execution{s, p}), eval)
		b := Psi(append(append([]Execution(nil), sched...), Execution{s + 1, p}), eval)
		return a-b == int64(p) && a-b > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Axiom 2 (task anonymity, number of tasks): adding a task increases the
// utility by an amount independent of the schedule it is added to, and
// positive whenever the task starts before eval.
func TestAxiomTaskCountAnonymity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s1, s2 := randSchedule(r), randSchedule(r)
		task := Execution{Start: model.Time(r.Intn(10)), Size: model.Time(1 + r.Intn(10))}
		eval := task.Start + 1 + model.Time(r.Intn(30))
		d1 := Psi(append(append([]Execution(nil), s1...), task), eval) - Psi(s1, eval)
		d2 := Psi(append(append([]Execution(nil), s2...), task), eval) - Psi(s2, eval)
		return d1 == d2 && d1 > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Axiom 3 (strategy-resistance): splitting a job (s, p1+p2) into two
// back-to-back pieces (s, p1) and (s+p1, p2) never changes the utility —
// at any evaluation time, including mid-execution.
func TestAxiomStrategyResistance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sched := randSchedule(r)
		s := model.Time(r.Intn(15))
		p1 := model.Time(1 + r.Intn(8))
		p2 := model.Time(1 + r.Intn(8))
		eval := model.Time(r.Intn(40))
		merged := Psi(append(append([]Execution(nil), sched...), Execution{s, p1 + p2}), eval)
		split := Psi(append(append([]Execution(nil), sched...), Execution{s, p1}, Execution{s + p1, p2}), eval)
		return merged == split
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Delaying a job (larger start) can never raise the utility — so an
// organization gains nothing by withholding jobs (Section 4 discussion).
func TestDelayNeverProfitable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := model.Time(r.Intn(20))
		p := model.Time(1 + r.Intn(10))
		d := model.Time(r.Intn(10))
		eval := model.Time(r.Intn(50))
		return PsiJob(s+d, p, eval) <= PsiJob(s, p, eval)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Proposition 4.2: for equal-size jobs all completed before t,
// ψsp = ‖J‖·(p·t + (p²+p)/2) − p·Σr − p·flow, so maximizing ψsp minimizes
// total flow time. (The paper prints the release term as Σr; re-deriving
// the algebra shows it carries a factor p — the two agree for the p=1
// case and the proposition's conclusion is unaffected.)
func TestFlowEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := model.Time(1 + r.Intn(6))
		n := 1 + r.Intn(6)
		placed := make([]Placed, n)
		execs := make([]Execution, n)
		var maxC model.Time
		var sumR int64
		for i := range placed {
			rel := model.Time(r.Intn(10))
			start := rel + model.Time(r.Intn(10))
			placed[i] = Placed{Release: rel, Start: start, Size: p}
			execs[i] = Execution{Start: start, Size: p}
			if c := start + p; c > maxC {
				maxC = c
			}
			sumR += int64(rel)
		}
		eval := maxC + model.Time(r.Intn(5)) // every job completed
		psi := Psi(execs, eval)
		flow := TotalFlow(placed, eval)
		want := int64(n)*(int64(p)*int64(eval)+(int64(p)*int64(p)+int64(p))/2) - int64(p)*sumR - int64(p)*flow
		return psi == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// The Account accumulator must agree with direct evaluation for arbitrary
// window decompositions of the executions.
func TestAccountMatchesPsi(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		sched := randSchedule(r)
		eval := model.Time(r.Intn(60))
		var acc Account
		for _, e := range sched {
			// Split each execution into random chunks, as an event-driven
			// simulator would.
			cur := e.Start
			end := e.Start + e.Size
			if end > eval {
				end = eval
			}
			for cur < end {
				step := model.Time(1 + r.Intn(4))
				next := cur + step
				if next > end {
					next = end
				}
				acc.AddWindow(cur, next)
				cur = next
			}
		}
		return acc.PsiAt(eval) == Psi(sched, eval)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAddWindowEmpty(t *testing.T) {
	var acc Account
	acc.AddWindow(5, 5)
	acc.AddWindow(7, 3)
	if acc.U != 0 || acc.S != 0 {
		t.Fatalf("empty windows recorded units: %+v", acc)
	}
}

func TestAccountAddAndReset(t *testing.T) {
	var a, b Account
	a.AddWindow(0, 3)
	b.AddWindow(3, 5)
	a.Add(b)
	if a.U != 5 || a.S != 0+1+2+3+4 {
		t.Fatalf("merged account = %+v", a)
	}
	a.Reset()
	if a != (Account{}) {
		t.Fatalf("Reset left %+v", a)
	}
}

func TestPsiJobEdges(t *testing.T) {
	cases := []struct {
		s, p, t model.Time
		want    int64
	}{
		{0, 1, 0, 0},                        // nothing executed yet
		{0, 1, 1, 1},                        // one unit at slot 0 worth 1
		{5, 3, 5, 0},                        // starts exactly at eval
		{5, 3, 6, 1},                        // one executed unit
		{5, 3, 100, 3 * (95 + 94 + 93) / 3}, // fully done long ago
		{10, 4, 8, 0},                       // starts after eval
	}
	for _, c := range cases {
		if got := PsiJob(c.s, c.p, c.t); got != c.want {
			t.Errorf("PsiJob(%d,%d,%d) = %d, want %d", c.s, c.p, c.t, got, c.want)
		}
	}
}

func TestMetrics(t *testing.T) {
	placed := []Placed{
		{Release: 0, Start: 0, Size: 3},
		{Release: 1, Start: 3, Size: 2},
		{Release: 0, Start: 4, Size: 10},
	}
	if got := Makespan(placed); got != 14 {
		t.Errorf("Makespan = %d", got)
	}
	if got := TotalFlow(placed, 6); got != (3-0)+(5-1) {
		t.Errorf("TotalFlow(6) = %d", got)
	}
	if got := TotalFlow(placed, 14); got != 3+4+14 {
		t.Errorf("TotalFlow(14) = %d", got)
	}
	if got := BusyUnits(placed, 6); got != 3+2+2 {
		t.Errorf("BusyUnits(6) = %d", got)
	}
	if got := Utilization(placed, 2, 6); got != 7.0/12.0 {
		t.Errorf("Utilization = %v", got)
	}
	if got := Utilization(placed, 0, 6); got != 0 {
		t.Errorf("Utilization with no machines = %v", got)
	}
	if got := TotalTardiness(placed, 3, 14); got != 0+1+11 {
		t.Errorf("TotalTardiness = %d", got)
	}
}
