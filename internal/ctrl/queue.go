// Package ctrl is the cluster control plane: the layer that decides
// whether and where work enters the system, separated from the data
// plane that executes it. It is modeled on the inference-sim
// ClusterEventQueue design: every released job decomposes into a chain
// of prioritized control events —
//
//	ArrivalEvent (prio 0) → AdmissionDecisionEvent (prio 1) → RoutingDecisionEvent (prio 2)
//
// processed from one min-heap ordered by (timestamp, priority, seqID),
// so all arrivals at an instant precede all admission decisions, which
// precede all routing decisions, and within a priority class events
// resolve in FIFO order. Admission is pluggable (AlwaysAdmit, per-org
// TokenBucket, queue-depth Backpressure) and every admission and
// routing decision acts on an explicitly aged View of system state
// obtained through a SnapshotProvider — the one staleness contract
// that also subsumes the federation's summary-gossip knob.
//
// The package is deliberately owner-agnostic: internal/engine gates a
// single cluster's feed with a Plane, internal/fed gates federated
// routing with one, and both drive the same deterministic, fully
// checkpointable machinery.
package ctrl

import "repro/internal/model"

// Event priorities: the decomposition stages of one released job.
// Priority is the second heap key, so at an instant the whole arrival
// wave lands before any admission verdict, and every verdict before any
// routing — decisions at t act on the complete picture of t's arrivals.
const (
	PrioArrival   uint8 = 0
	PrioAdmission uint8 = 1
	PrioRouting   uint8 = 2
)

// Job is the control plane's view of one unit of work: its identity
// (Seq, assigned by the owner), the submitting organization, the origin
// cluster (0 for single-cluster owners), its size, the release instant
// it arrived with, and Arrived — the instant it entered the control
// plane, from which decision latency is measured. Size is carried for
// feeding the executing side and for size-cost token buckets; routing
// policies never see it.
type Job struct {
	Seq     int64      `json:"seq"`
	Org     int        `json:"org"`
	Origin  int        `json:"origin,omitempty"`
	Size    model.Time `json:"size"`
	Release model.Time `json:"release"`
	Arrived model.Time `json:"arrived"`
}

// Event is one pending control-plane event. ID is the queue-assigned
// push sequence — the third heap key, making same-(At, Prio) events
// FIFO and the whole order total. Attempt counts admission retries
// (0 on the first try), letting policies bound defer loops.
type Event struct {
	At      model.Time `json:"at"`
	Prio    uint8      `json:"prio"`
	ID      int64      `json:"id"`
	Job     Job        `json:"job"`
	Attempt int        `json:"attempt,omitempty"`
}

// less is the control-plane event order: (timestamp, priority, seqID).
func (e Event) less(o Event) bool {
	if e.At != o.At {
		return e.At < o.At
	}
	if e.Prio != o.Prio {
		return e.Prio < o.Prio
	}
	return e.ID < o.ID
}

// EventQueue is the control plane's min-heap. The zero value is ready
// to use. It is a single-goroutine object, like the engines it fronts.
type EventQueue struct {
	h      []Event
	nextID int64
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Push enqueues an event, assigning its queue ID. The caller's ID field
// is overwritten — push order is the FIFO tie-break, not caller input.
func (q *EventQueue) Push(e Event) {
	e.ID = q.nextID
	q.nextID++
	q.h = append(q.h, e)
	q.up(len(q.h) - 1)
}

// Peek returns the earliest event without removing it.
func (q *EventQueue) Peek() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	return q.h[0], true
}

// Pop removes and returns the earliest event.
func (q *EventQueue) Pop() (Event, bool) {
	if len(q.h) == 0 {
		return Event{}, false
	}
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	if last > 0 {
		q.down(0)
	}
	return top, true
}

func (q *EventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.h[i].less(q.h[parent]) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *EventQueue) down(i int) {
	n := len(q.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.h[l].less(q.h[smallest]) {
			smallest = l
		}
		if r < n && q.h[r].less(q.h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.h[i], q.h[smallest] = q.h[smallest], q.h[i]
		i = smallest
	}
}

// queueState is the serialized queue: the raw heap slice (a valid heap
// restores as one) and the ID counter.
type queueState struct {
	Events []Event `json:"events,omitempty"`
	NextID int64   `json:"next_id"`
}

func (q *EventQueue) state() queueState {
	return queueState{Events: q.h, NextID: q.nextID}
}

func (q *EventQueue) restore(st queueState) {
	q.h = append(q.h[:0], st.Events...)
	q.nextID = st.NextID
	// Re-heapify defensively: the serialized slice is heap-ordered as
	// written, but a hand-edited checkpoint must not corrupt the order
	// invariant silently.
	for i := len(q.h)/2 - 1; i >= 0; i-- {
		q.down(i)
	}
}
