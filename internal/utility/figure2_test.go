package utility

import (
	"testing"

	"repro/internal/model"
)

// Figure 2 of the paper: 9 jobs of organization O(1) and one size-5 job
// of O(2) on 3 machines, all released at time 0. The reconstructed Gantt
// (the unique layout consistent with every number quoted in the caption):
//
//	M1: J1(0,3)  J4(3,6)  J^2_1(9,5)
//	M2: J2(0,4)  J6(4,6)  J9(10,4)
//	M3: J3(0,3)  J5(3,3)  J8(6,3)  J7(9,3)
var (
	fig2Org1 = []Execution{
		{Start: 0, Size: 3},  // J1
		{Start: 0, Size: 4},  // J2
		{Start: 0, Size: 3},  // J3
		{Start: 3, Size: 6},  // J4
		{Start: 3, Size: 3},  // J5
		{Start: 4, Size: 6},  // J6
		{Start: 9, Size: 3},  // J7
		{Start: 6, Size: 3},  // J8
		{Start: 10, Size: 4}, // J9
	}
	fig2Org2 = []Execution{{Start: 9, Size: 5}} // J^(2)_1
)

func TestFigure2UtilityAt13(t *testing.T) {
	if got := Psi(fig2Org1, 13); got != 262 {
		t.Errorf("ψsp(O1, 13) = %d, want 262 (paper, Figure 2)", got)
	}
}

func TestFigure2UtilityAt14(t *testing.T) {
	if got := Psi(fig2Org1, 14); got != 297 {
		t.Errorf("ψsp(O1, 14) = %d, want 297 (paper, Figure 2)", got)
	}
}

func TestFigure2FlowTime(t *testing.T) {
	var placed []Placed
	for _, e := range fig2Org1 {
		placed = append(placed, Placed{Release: 0, Start: e.Start, Size: e.Size})
	}
	if got := TotalFlow(placed, 14); got != 70 {
		t.Errorf("flow time at 14 = %d, want 70 (paper, Figure 2)", got)
	}
}

// "If there was no job J^(2)_1, then J9 would be started in time 9
// instead of 10 and the utility ψsp in time 14 would increase by 4."
func TestFigure2EarlierJ9(t *testing.T) {
	moved := append([]Execution(nil), fig2Org1...)
	moved[8].Start = 9
	delta := Psi(moved, 14) - Psi(fig2Org1, 14)
	if delta != 4 {
		t.Errorf("moving J9 to 9 changed ψsp by %d, want +4", delta)
	}
}

// "If, for instance, J6 was started one time unit later, then the utility
// of the schedule would decrease by 6."
func TestFigure2LaterJ6(t *testing.T) {
	moved := append([]Execution(nil), fig2Org1...)
	moved[5].Start = 5
	delta := Psi(moved, 14) - Psi(fig2Org1, 14)
	if delta != -6 {
		t.Errorf("delaying J6 changed ψsp by %d, want -6", delta)
	}
}

// "If the job J9 was not scheduled at all, the utility ψsp would decrease
// by 10."
func TestFigure2WithoutJ9(t *testing.T) {
	without := append([]Execution(nil), fig2Org1[:8]...)
	delta := Psi(without, 14) - Psi(fig2Org1, 14)
	if delta != -10 {
		t.Errorf("dropping J9 changed ψsp by %d, want -10", delta)
	}
}

// The whole system (both organizations) fits 3 machines with no overlap;
// sanity-check the combined value and O2's share.
func TestFigure2CombinedValue(t *testing.T) {
	all := append(append([]Execution(nil), fig2Org1...), fig2Org2...)
	sum := Psi(fig2Org1, 14) + Psi(fig2Org2, 14)
	if got := Psi(all, 14); got != sum {
		t.Errorf("additivity violated: %d != %d", got, sum)
	}
	if got := Psi(fig2Org2, 14); got != PsiJob(9, 5, 14) {
		t.Errorf("O2 utility = %d", got)
	}
	// J^(2)_1 runs units 9..13 valued 5+4+3+2+1 = 15 at t=14.
	if got := PsiJob(9, 5, 14); got != 15 {
		t.Errorf("PsiJob(9,5,14) = %d, want 15", got)
	}
}

func TestFigure2AccountMatchesDirect(t *testing.T) {
	var acc Account
	for _, e := range fig2Org1 {
		end := e.Start + e.Size
		if end > 14 {
			end = 14
		}
		acc.AddWindow(e.Start, end)
	}
	if got := acc.PsiAt(14); got != 297 {
		t.Errorf("Account ψ(14) = %d, want 297", got)
	}
	// Evaluating the same account at a later time shifts every unit by
	// the elapsed amount: ψ(t+Δ) = ψ(t) + Δ·U.
	if got := acc.PsiAt(20); got != 297+6*acc.U {
		t.Errorf("Account ψ(20) = %d", got)
	}
}

func TestFigure2IsValidModelInstance(t *testing.T) {
	// The Figure 2 system expressed as a model.Instance must validate:
	// this keeps the worked example usable by the simulator-level tests.
	jobs := make([]model.Job, 0, 10)
	for _, e := range fig2Org1 {
		jobs = append(jobs, model.Job{Org: 0, Release: 0, Size: e.Size})
	}
	jobs = append(jobs, model.Job{Org: 1, Release: 0, Size: 5})
	if _, err := model.NewInstance([]model.Org{{Name: "O1", Machines: 2}, {Name: "O2", Machines: 1}}, jobs); err != nil {
		t.Fatal(err)
	}
}
