package shapley

import (
	"math/rand"
	"sync"

	"repro/internal/model"
)

// ContribGame is a cooperative game whose coalition values evolve as an
// underlying system advances through time — the object at the heart of
// Algorithm REF. Where Game freezes a characteristic function, a
// ContribGame is queried at an instant: ValueAt(c, t) is coalition c's
// value when the system's clock stands at t.
//
// Implementations must satisfy ValueAt(∅, t) = 0 and be deterministic.
// They are encouraged to serve cached values for coalitions untouched
// since their last event (internal/core's org-level game answers from
// sim.ValuePoly snapshots in O(1); internal/fed's federation-level game
// evaluates a closed form of the exchanged ledger columns). Both REF
// drivers and the estimators below consume this interface, so every new
// game variant plugs into the same contribution machinery.
type ContribGame interface {
	// Players returns the number of players n; coalitions are masks
	// over players 0..n-1.
	Players() int
	// ValueAt returns coalition c's value at time t.
	ValueAt(c model.Coalition, t model.Time) int64
}

// Frozen fixes a dynamic game at one instant, exposing the static Game
// interface every estimator in this package consumes.
func Frozen(g ContribGame, t model.Time) Game {
	return FuncGame{N: g.Players(), F: func(c model.Coalition) float64 {
		if c.Empty() {
			return 0
		}
		return float64(g.ValueAt(c, t))
	}}
}

// ExactAt computes the exact Shapley contributions of the dynamic game
// at time t by the subset formula (Equation 1). Cost: O(n·2ⁿ) plus 2ⁿ
// ValueAt evaluations.
func ExactAt(g ContribGame, t model.Time) []float64 {
	return Exact(Frozen(g, t))
}

// SampleAt estimates the Shapley contributions of the dynamic game at
// time t over `samples` random orderings (the Algorithm RAND estimator).
func SampleAt(g ContribGame, t model.Time, samples int, r *rand.Rand) []float64 {
	return Sample(Frozen(g, t), samples, r)
}

// subsetWeightTables memoizes SubsetWeights across callers: the
// experiment harness builds thousands of REF runs for the same handful
// of player counts, and the tables are immutable once built.
var subsetWeightTables sync.Map // int (k) -> [][]float64

// SubsetWeights returns w[c][s] = (s−1)!·(c−s)!/c! — the weight of the
// marginal term v(S) − v(S∖{u}) for |S| = s inside a coalition of size
// c (the UpdateVals weights of the paper's Figure 1). Tables are shared
// and must not be mutated.
func SubsetWeights(k int) [][]float64 {
	if w, ok := subsetWeightTables.Load(k); ok {
		return w.([][]float64)
	}
	w, _ := subsetWeightTables.LoadOrStore(k, buildSubsetWeights(k))
	return w.([][]float64)
}

func buildSubsetWeights(k int) [][]float64 {
	fact := make([]float64, k+1)
	fact[0] = 1
	for i := 1; i <= k; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	w := make([][]float64, k+1)
	for c := 1; c <= k; c++ {
		w[c] = make([]float64, c+1)
		for s := 1; s <= c; s++ {
			w[c][s] = fact[s-1] * fact[c-s] / fact[c]
		}
	}
	return w
}

// unstamped marks a coalition whose value has not been filled at any
// instant yet.
const unstamped = model.Time(-1)

// Contrib is the incremental contribution engine REF-style schedulers
// drive: a dense per-coalition value snapshot, dispatch stamps for lazy
// dirty-tracked refills, and the memoized subset weight tables, with
// PhiInto computing a coalition's members' exact Shapley contributions
// from the snapshot (the UpdateVals procedure of Figure 1).
//
// The engine is game-agnostic: callers either write values directly
// (SetValue, for drivers that already hold every schedule at the
// current instant) or pull them from a ContribGame (Refresh fills the
// whole table, FillSubsets fills one coalition's subsets lazily — each
// coalition is evaluated at most once per instant, so a driver that
// dispatches many coalitions at the same time moment shares one
// snapshot).
type Contrib struct {
	n       int
	vals    []int64
	stamp   []model.Time
	weights [][]float64
}

// NewContrib builds the engine for an n-player game. All values start
// at zero and all stamps unset.
func NewContrib(n int) *Contrib {
	size := 1 << uint(n)
	ct := &Contrib{
		n:       n,
		vals:    make([]int64, size),
		stamp:   make([]model.Time, size),
		weights: SubsetWeights(n),
	}
	ct.ResetStamps()
	return ct
}

// Players returns the player count n.
func (ct *Contrib) Players() int { return ct.n }

// SetValue writes coalition c's snapshot value directly.
func (ct *Contrib) SetValue(c model.Coalition, v int64) { ct.vals[c] = v }

// Value reads coalition c's snapshot value.
func (ct *Contrib) Value(c model.Coalition) int64 { return ct.vals[c] }

// Refresh snapshots every non-empty coalition's value from the game at
// time t (the scan driver's full re-snapshot).
func (ct *Contrib) Refresh(g ContribGame, t model.Time) {
	ct.vals[0] = 0
	for mask := model.Coalition(1); int(mask) < len(ct.vals); mask++ {
		ct.vals[mask] = g.ValueAt(mask, t)
	}
}

// ResetStamps invalidates the lazy-fill stamps; the next FillSubsets
// re-evaluates every coalition it touches.
func (ct *Contrib) ResetStamps() {
	for i := range ct.stamp {
		ct.stamp[i] = unstamped
	}
}

// FillSubsets snapshots the values of mask's non-empty subsets at time
// t, skipping coalitions already filled at t — the event-heap driver's
// lazy dirty-tracked fill: untouched coalitions answer from the game's
// caches, and a coalition shared by several dispatching masks is
// evaluated once per instant.
func (ct *Contrib) FillSubsets(g ContribGame, mask model.Coalition, t model.Time) {
	ct.vals[0] = 0
	mask.EachNonemptySubset(func(sub model.Coalition) {
		if ct.stamp[sub] == t {
			return
		}
		ct.stamp[sub] = t
		ct.vals[sub] = g.ValueAt(sub, t)
	})
}

// PhiInto fills phi with the exact Shapley contributions of mask's
// members, computed from the current value snapshot by the subset
// formula over mask's subsets (non-members get 0). phi must have length
// ≥ the highest member index + 1; callers reuse one vector per
// coalition across dispatch instants.
func (ct *Contrib) PhiInto(mask model.Coalition, phi []float64) {
	for i := range phi {
		phi[i] = 0
	}
	w := ct.weights[mask.Size()]
	mask.EachNonemptySubset(func(sub model.Coalition) {
		vsub := ct.vals[sub]
		weight := w[sub.Size()]
		sub.EachMember(func(u int) {
			phi[u] += weight * float64(vsub-ct.vals[sub.Without(u)])
		})
	})
}

// Phi returns a freshly allocated full-length contribution vector for
// the coalition (PhiInto for callers without a scratch vector).
func (ct *Contrib) Phi(mask model.Coalition) []float64 {
	phi := make([]float64, ct.n)
	ct.PhiInto(mask, phi)
	return phi
}
