package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildFlagParsing(t *testing.T) {
	var stderr bytes.Buffer
	srv, addr, err := build([]string{"-alg", "directcontr", "-orgs", "4", "-machines", "8", "-addr", ":9999"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if srv == nil || addr != ":9999" {
		t.Fatalf("build: srv=%v addr=%q", srv, addr)
	}
	if _, _, err := build([]string{"-alg", "nope"}, &stderr); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, _, err := build([]string{"-orgs", "0"}, &stderr); err == nil {
		t.Fatal("zero organizations accepted")
	}
	if _, _, err := build([]string{"-ref-driver", "bogus"}, &stderr); err == nil {
		t.Fatal("unknown REF driver accepted")
	}
	if _, _, err := build([]string{"-restore", "/nonexistent/ckpt"}, &stderr); err == nil {
		t.Fatal("missing checkpoint file accepted")
	}
}

// End-to-end daemon smoke: boot from flags, submit jobs over HTTP,
// advance, drain decisions, checkpoint to disk, and boot a second
// daemon from that checkpoint.
func TestDaemonRoundTripAndRestore(t *testing.T) {
	var stderr bytes.Buffer
	srv, _, err := build([]string{"-alg", "ref", "-orgs", "2", "-machines", "3", "-seed", "7"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(path, body string) map[string]any {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d: %s", path, resp.StatusCode, raw)
		}
		var out map[string]any
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	post("/v1/jobs", `{"jobs":[{"org":0,"size":3},{"org":1,"size":2},{"org":1,"size":4,"release":5}]}`)
	adv := post("/v1/advance", `{"until":30}`)
	if n := len(adv["decisions"].([]any)); n != 3 {
		t.Fatalf("daemon made %d decisions, want 3", n)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(ckpt, snap, 0o644); err != nil {
		t.Fatal(err)
	}

	stderr.Reset()
	srv2, _, err := build([]string{"-alg", "ref", "-restore", ckpt}, &stderr)
	if err != nil {
		t.Fatalf("boot from checkpoint: %v", err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, err = ts2.Client().Get(ts2.URL + "/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var state map[string]any
	if err := json.Unmarshal(raw, &state); err != nil {
		t.Fatal(err)
	}
	if state["now"].(float64) != 30 || state["decisions"].(float64) != 3 {
		t.Fatalf("restored daemon state: %v", state)
	}
	if !strings.Contains(stderr.String(), "restored") {
		t.Fatalf("boot log missing restore notice: %q", stderr.String())
	}
	// A restored daemon keeps serving: feed one more job and drain it.
	resp2, err := ts2.Client().Post(ts2.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"jobs":[{"org":0,"size":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	resp3, err := ts2.Client().Post(ts2.URL+"/v1/advance", "application/json", strings.NewReader(`{"until":40}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp3.Body)
	resp3.Body.Close()
	var adv2 map[string]any
	if err := json.Unmarshal(raw, &adv2); err != nil {
		t.Fatal(err)
	}
	if n := len(adv2["decisions"].([]any)); n != 1 {
		t.Fatalf("restored daemon scheduled %d jobs, want 1: %s", n, raw)
	}
}
