package fed

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/model"
	"repro/internal/shapley"
)

// Summary is one member cluster's exported state at a routing instant —
// the information clusters exchange in the federated model. It contains
// queue backlog and capacity (the load signals) and the cluster's
// per-organization ψ and φ vectors (the fairness signals); job sizes
// are never part of it, keeping delegation non-clairvoyant.
type Summary struct {
	Cluster     int        `json:"cluster"`
	Now         model.Time `json:"now"`
	Waiting     int        `json:"waiting"`  // jobs fed to the cluster but not yet started
	Capacity    int64      `json:"capacity"` // total work units per time unit at this cluster
	OrgCapacity []int64    `json:"org_capacity"`
	Psi         []int64    `json:"psi"`           // per-org ψsp earned at this cluster
	Phi         []float64  `json:"phi,omitempty"` // per-org contribution estimate; nil when the algorithm computes none
	Value       int64      `json:"value"`         // Σ ψ — the cluster's coalition value
	Executed    int64      `json:"executed"`      // executed unit slots
	Utilization float64    `json:"utilization"`
}

// Policy decides, at a job's release instant, which member cluster
// executes it. Route receives the owning organization, the origin
// cluster, and the freshly exchanged summaries of every member;
// implementations must be deterministic pure functions of their
// arguments (the federation's determinism and checkpoint guarantees
// depend on it) and must return a valid cluster index.
type Policy interface {
	Name() string
	Route(org, origin int, sums []Summary) int
}

// LedgerPolicy is a Policy that additionally reads the exchanged
// federation-level accounting: the ledger's routed-work matrix
// (routedWork[origin][target], work units) at the same exchange instant
// as the summaries. The federation calls RouteLedger when the policy
// implements it and falls back to Route otherwise; like Route,
// RouteLedger must be a deterministic pure function of its arguments.
type LedgerPolicy interface {
	Policy
	RouteLedger(org, origin int, sums []Summary, routedWork [][]int64) int
}

// LocalOnly never delegates: every job runs at its origin cluster.
// This is the no-federation baseline the other policies are measured
// against.
type LocalOnly struct{}

// Name implements Policy.
func (LocalOnly) Name() string { return "local" }

// Route implements Policy.
func (LocalOnly) Route(_, origin int, _ []Summary) int { return origin }

// LeastLoaded delegates greedily to the cluster with the smallest queue
// backlog per unit of capacity — classic load balancing, blind to
// fairness. Backlog counts waiting jobs, not work (sizes are unknown
// until completion). Ties prefer the origin cluster, then the lowest
// index, so routing is deterministic.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "leastloaded" }

// Route implements Policy.
func (LeastLoaded) Route(_, origin int, sums []Summary) int {
	best := origin
	for i := range sums {
		if i == origin {
			continue
		}
		// waiting_i/cap_i < waiting_best/cap_best, cross-multiplied to
		// stay in exact integer arithmetic.
		if int64(sums[i].Waiting)*sums[best].Capacity < int64(sums[best].Waiting)*sums[i].Capacity {
			best = i
		}
	}
	return best
}

// FairnessAware delegates by contribution credit, the federated analogue
// of REF's largest-deficit rule: the job of organization o goes to the
// cluster where o's deficit — its contribution minus what it has
// consumed — is largest, i.e. where the federation owes o the most
// service. The deficit at cluster c is φ_c[o] − ψ_c[o] when the
// cluster's algorithm exchanges contribution estimates (REF's exact
// Shapley φ, RAND's sampled estimate, DIRECTCONTR's direct one);
// otherwise the capacity-proportional entitlement
// (cap_c[o]/cap_c)·v_c − ψ_c[o] stands in for it. Ties prefer the
// origin cluster, then the lowest index.
type FairnessAware struct{}

// Name implements Policy.
func (FairnessAware) Name() string { return "fairness" }

// Route implements Policy.
func (FairnessAware) Route(org, origin int, sums []Summary) int {
	best, bestDeficit := origin, deficit(org, sums[origin])
	for i := range sums {
		if i == origin {
			continue
		}
		if d := deficit(org, sums[i]); d > bestDeficit {
			best, bestDeficit = i, d
		}
	}
	return best
}

// deficit is organization org's contribution credit at the summarized
// cluster: estimated contribution minus consumed ψ.
func deficit(org int, s Summary) float64 {
	contr := float64(0)
	if s.Phi != nil {
		contr = s.Phi[org]
	} else if s.Capacity > 0 {
		contr = float64(s.OrgCapacity[org]) / float64(s.Capacity) * float64(s.Value)
	}
	return contr - float64(s.Psi[org])
}

// FairnessCapacity is the capacity-normalized pricing ablation of
// FairnessAware: the φ−ψ credit is divided by the cluster's capacity
// before comparison, so one unit of credit at a small site outweighs
// the same credit at a large one — the large site's credit is cheap to
// honor later, the small site's is scarce. Ties prefer the origin, then
// the lowest index.
type FairnessCapacity struct{}

// Name implements Policy.
func (FairnessCapacity) Name() string { return "fairness-capacity" }

// Route implements Policy.
func (FairnessCapacity) Route(org, origin int, sums []Summary) int {
	best, bestDeficit := origin, capDeficit(org, sums[origin])
	for i := range sums {
		if i == origin {
			continue
		}
		if d := capDeficit(org, sums[i]); d > bestDeficit {
			best, bestDeficit = i, d
		}
	}
	return best
}

// capDeficit is the per-unit-capacity contribution credit.
func capDeficit(org int, s Summary) float64 {
	d := deficit(org, s)
	if s.Capacity > 0 {
		return d / float64(s.Capacity)
	}
	return d
}

// DefaultDecayTau is the decay timescale FairnessDecayed uses when its
// Tau field is zero (PolicyByName builds the policy this way).
const DefaultDecayTau = model.Time(5000)

// FairnessDecayed is the time-decayed pricing ablation of
// FairnessAware: contribution credit is perishable. Deficits are scaled
// by τ/(τ+t) before comparison and a delegation away from the current
// best must improve the decayed credit by more than one work unit, so
// early imbalances drive offloading at full strength while the same
// absolute credit differences stop mattering once the federation has
// run long enough — ancient credit cannot bounce late jobs around.
type FairnessDecayed struct {
	// Tau is the decay timescale; ≤ 0 means DefaultDecayTau.
	Tau model.Time
}

// Name implements Policy.
func (FairnessDecayed) Name() string { return "fairness-decay" }

// Route implements Policy.
func (p FairnessDecayed) Route(org, origin int, sums []Summary) int {
	tau := p.Tau
	if tau <= 0 {
		tau = DefaultDecayTau
	}
	decay := float64(tau) / float64(tau+sums[origin].Now)
	best, bestDeficit := origin, deficit(org, sums[origin])*decay
	for i := range sums {
		if i == origin {
			continue
		}
		if d := deficit(org, sums[i]) * decay; d > bestDeficit+1 {
			best, bestDeficit = i, d
		}
	}
	return best
}

// DefaultMigrationBudget is the per-refresh-round migration cap
// PolicyByName gives the "-migrate" policy variants: enough to drain a
// mis-routed burst within a few gossip rounds, small enough that one
// refresh cannot reshuffle a whole backlog on a single stale view.
const DefaultMigrationBudget = 8

// MigratingPolicy is a Policy that opts into the re-delegation pass:
// at each staleness-delimited exchange refresh the federation re-scores
// every still-queued routed job under the policy (with the job's
// current holder as the tie-preferred origin) and migrates up to
// MigrationBudget jobs per refresh to strictly better members.
type MigratingPolicy interface {
	Policy
	// MigrationBudget returns the per-refresh migration cap; values
	// ≤ 0 disable migration (the pass never fires).
	MigrationBudget() int
}

// Migrating wraps any delegation policy with queued-job re-delegation.
// Routing is delegated verbatim to Inner — with Budget 0 a Migrating
// federation is byte-identical to the bare Inner federation — and the
// migration pass reuses the same Route/RouteLedger scoring: a queued
// job held at cluster c migrates exactly when the policy, asked to
// route it with origin c on the freshly refreshed exchange, picks a
// different cluster (every shipped policy breaks ties toward the
// origin, so "different" means "strictly better").
type Migrating struct {
	Inner Policy
	// Budget caps migrations per exchange refresh; ≤ 0 disables.
	Budget int
}

// Name implements Policy: the inner name with a "-migrate" suffix, so
// checkpoints of migrating and non-migrating runs never cross-restore.
func (m Migrating) Name() string { return m.Inner.Name() + "-migrate" }

// Route implements Policy.
func (m Migrating) Route(org, origin int, sums []Summary) int {
	return m.Inner.Route(org, origin, sums)
}

// RouteLedger implements LedgerPolicy, forwarding to the inner policy's
// ledger-aware entry point when it has one.
func (m Migrating) RouteLedger(org, origin int, sums []Summary, routedWork [][]int64) int {
	if lp, ok := m.Inner.(LedgerPolicy); ok {
		return lp.RouteLedger(org, origin, sums, routedWork)
	}
	return m.Inner.Route(org, origin, sums)
}

// MigrationBudget implements MigratingPolicy.
func (m Migrating) MigrationBudget() int { return m.Budget }

// usesLedger reports whether the policy actually reads the exchanged
// routed-work matrix. Migrating implements LedgerPolicy to forward it,
// so a plain interface assertion would make every "-migrate" wrapper
// pay the per-exchange matrix copy (and carry ExRouted in checkpoints)
// even when the inner policy never looks at it; unwrapping answers for
// the policy that really routes.
func usesLedger(p Policy) bool {
	if m, ok := p.(Migrating); ok {
		p = m.Inner
	}
	_, ok := p.(LedgerPolicy)
	return ok
}

// maxExactFedPlayers bounds the member count for which FedREF runs the
// exact O(k·2^k) Shapley evaluator; larger federations fall back to the
// sampled estimator at a fixed permutation budget.
const maxExactFedPlayers = 16

// fedRefSampleBudget is the sampled estimator's permutation budget for
// federations above maxExactFedPlayers members.
const fedRefSampleBudget = 256

// RefPolicy is FedREF: Algorithm REF lifted one level, from
// organizations inside a cluster to clusters inside the federation. At
// each routing instant it evaluates the federation-level cooperative
// game (fed.Game — members as players, v(S,t) the completed-work
// utility the coalition could realize alone), computes each member's
// Shapley contribution φ_c with the generic estimators, and routes the
// job to the member with the largest federation-level deficit
//
//	φ_c − assigned_c,
//
// where assigned_c is the work already routed to c (the routed-work
// column sum): the member whose realized share of the federation's work
// lags its Shapley share of the federation's value the most is the one
// the federation owes utilization to. A saturated origin's assigned
// work exceeds the value share its own capacity supports, so surplus
// flows to under-assigned members exactly when pooling creates value —
// and once every coalition could have completed everything, φ_c decays
// to c's own demand and the rule becomes reciprocity: members that
// exported more than they imported attract the next jobs.
//
// Ties prefer the origin cluster, then the lowest index; a fresh
// federation (all zeros) therefore routes every job home, and a
// 1-member federation reproduces single-cluster behavior exactly.
type RefPolicy struct {
	// Samples overrides the sampled estimator's permutation budget
	// (fedRefSampleBudget when 0). ForceSample routes through the
	// sampled estimator even when the member count admits the exact
	// evaluator — together they are the sampled-Shapley ablation's
	// control knobs (routing quality vs sample budget, EXPERIMENTS.md).
	Samples     int
	ForceSample bool
}

func (p RefPolicy) sampleBudget() int {
	if p.Samples > 0 {
		return p.Samples
	}
	return fedRefSampleBudget
}

// Name implements Policy. Explicitly sampled variants carry the budget
// in the name ("fedref-sample64"), so checkpoints restore the exact
// estimator configuration and ablation tables label rows by budget.
func (p RefPolicy) Name() string {
	if p.ForceSample || p.Samples > 0 {
		return fmt.Sprintf("fedref-sample%d", p.sampleBudget())
	}
	return "fedref"
}

// Route implements Policy. Without the exchanged ledger there is no
// federation game to value, so the degenerate form keeps the job home;
// the federation always calls RouteLedger.
func (RefPolicy) Route(_, origin int, _ []Summary) int { return origin }

// RouteLedger implements LedgerPolicy.
func (p RefPolicy) RouteLedger(_, origin int, sums []Summary, routedWork [][]int64) int {
	if len(sums) <= 1 {
		return origin
	}
	g := GameFromExchange(sums, routedWork)
	t := sums[origin].Now
	var phi []float64
	if len(sums) <= maxExactFedPlayers && !p.ForceSample {
		phi = shapley.ExactAt(g, t)
	} else {
		// Deterministic pure function of the arguments: the sample
		// stream is derived from the exchange instant alone.
		phi = shapley.SampleAt(g, t, p.sampleBudget(), rand.New(rand.NewSource(int64(t))))
	}
	assigned := make([]int64, len(sums))
	for o := range routedWork {
		for c, w := range routedWork[o] {
			assigned[c] += w
		}
	}
	best, bestDeficit := origin, phi[origin]-float64(assigned[origin])
	for c := range sums {
		if c == origin {
			continue
		}
		if d := phi[c] - float64(assigned[c]); d > bestDeficit {
			best, bestDeficit = c, d
		}
	}
	return best
}

// PolicyByName resolves a delegation policy from its wire name.
// "fedref-sample<N>" (optionally "-migrate" suffixed) is the explicitly
// sampled FedREF variant with an N-permutation budget.
func PolicyByName(name string) (Policy, error) {
	low := strings.ToLower(name)
	if rest, ok := strings.CutPrefix(low, "fedref-sample"); ok {
		migrate := false
		if r, ok := strings.CutSuffix(rest, "-migrate"); ok {
			migrate, rest = true, r
		}
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("fed: bad sampled-FedREF policy %q (want fedref-sample<N> with N >= 1)", name)
		}
		p := Policy(RefPolicy{Samples: n, ForceSample: true})
		if migrate {
			p = Migrating{Inner: p, Budget: DefaultMigrationBudget}
		}
		return p, nil
	}
	switch low {
	case "local", "localonly", "local-only":
		return LocalOnly{}, nil
	case "leastloaded", "least-loaded", "greedy":
		return LeastLoaded{}, nil
	case "fairness", "fairness-aware", "fair":
		return FairnessAware{}, nil
	case "fairness-capacity", "capacity":
		return FairnessCapacity{}, nil
	case "fairness-decay", "fairness-decayed", "decay":
		return FairnessDecayed{}, nil
	case "fedref", "ref":
		return RefPolicy{}, nil
	case "fedref-migrate", "ref-migrate":
		return Migrating{Inner: RefPolicy{}, Budget: DefaultMigrationBudget}, nil
	case "fednbs", "nbs":
		return NBSPolicy{}, nil
	case "fednbs-migrate", "nbs-migrate":
		return Migrating{Inner: NBSPolicy{}, Budget: DefaultMigrationBudget}, nil
	case "fairness-migrate", "fair-migrate":
		return Migrating{Inner: FairnessAware{}, Budget: DefaultMigrationBudget}, nil
	default:
		return nil, fmt.Errorf("fed: unknown delegation policy %q (want local, leastloaded, fairness, fairness-capacity, fairness-decay, fedref, fedref-migrate, fednbs, fednbs-migrate or fairness-migrate)", name)
	}
}

// WithMigrationBudget overrides a migrating policy's per-refresh
// budget: positive values replace it, negative values disable
// migration, zero keeps the policy's own. Non-migrating policies are
// returned unchanged — the knob has nothing to turn there.
func WithMigrationBudget(p Policy, budget int) Policy {
	m, ok := p.(Migrating)
	if !ok || budget == 0 {
		return p
	}
	if budget < 0 {
		budget = 0
	}
	m.Budget = budget
	return m
}
