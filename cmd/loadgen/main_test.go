package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/daemon"
)

// TestLoadgenSmoke runs the harness end to end on a toy budget and
// checks the report carries the throughput and latency percentiles.
func TestLoadgenSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-sessions", "40", "-clients", "8", "-steps", "2"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	var rep daemon.LoadReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("output not a LoadReport: %v in %q", err, stdout.String())
	}
	if rep.Sessions != 40 || rep.Advances != 80 {
		t.Fatalf("report counts wrong: %+v", rep)
	}
	if rep.ThroughputPerSec <= 0 || rep.P99Ms < rep.P50Ms {
		t.Fatalf("report metrics implausible: %+v", rep)
	}
	if rep.Decisions == 0 {
		t.Fatalf("load sessions scheduled nothing: %+v", rep)
	}
}

func TestLoadgenBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-sessions", "0"}, &out, &out); err == nil {
		t.Fatal("zero sessions accepted")
	}
	if err := run([]string{"-bogus"}, &out, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
