package fed_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ctrl"
	"repro/internal/fed"
	"repro/internal/metrics"
	"repro/internal/model"
)

// TestControlPlaneDifferential is the tentpole's differential gate:
// with AlwaysAdmit and staleness 0 the control-plane path — releases
// decomposed into prioritized arrival → admission → routing events —
// produces a byte-identical run to the direct pre-control-plane path,
// for every delegation policy shape over a mixed algorithm roster.
func TestControlPlaneDifferential(t *testing.T) {
	algs := []string{"ref", "directcontr", "fairshare"}
	for _, policy := range []fed.Policy{
		fed.LocalOnly{}, fed.LeastLoaded{}, fed.FairnessAware{}, fed.RefPolicy{},
		fed.Migrating{Inner: fed.RefPolicy{}, Budget: fed.DefaultMigrationBudget},
		fed.Migrating{Inner: fed.FairnessAware{}, Budget: fed.DefaultMigrationBudget},
	} {
		t.Run(policy.Name(), func(t *testing.T) {
			direct, _ := buildFederation(t, algs, policy, 11)
			gated, _ := buildFederation(t, algs, policy, 11)
			if err := gated.SetAdmission(&ctrl.PolicySpec{Policy: "always"}); err != nil {
				t.Fatal(err)
			}
			if _, err := direct.Step(6000); err != nil {
				t.Fatal(err)
			}
			if _, err := gated.Step(6000); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fingerprint(t, direct), fingerprint(t, gated)) {
				t.Fatal("always-admit control plane at staleness 0 diverged from the direct path")
			}
			if err := gated.CheckConservation(); err != nil {
				t.Fatal(err)
			}
			st := gated.AdmissionStats()
			if st == nil {
				t.Fatal("gated federation reports no admission stats")
			}
			if st.TotalRejected() != 0 || st.TotalDeferred() != 0 {
				t.Fatalf("always-admit rejected %d / deferred %d jobs", st.TotalRejected(), st.TotalDeferred())
			}
			if st.TotalAdmitted() != gated.Submitted()-int64(gated.PendingCount()) {
				t.Fatalf("admitted %d of %d released jobs", st.TotalAdmitted(), gated.Submitted())
			}
		})
	}
}

// TestControlPlaneStalenessEquivalence: the legacy SetStaleness knob
// and the same staleness expressed through the control plane's
// CachedSnapshotProvider are one mechanism — a gated always-admit run
// at staleness Δt matches the ungated run at the same Δt byte for
// byte, including the migration pass that fires on refresh edges.
func TestControlPlaneStalenessEquivalence(t *testing.T) {
	for _, policy := range []fed.Policy{
		fed.LeastLoaded{}, fed.RefPolicy{},
		fed.Migrating{Inner: fed.RefPolicy{}, Budget: fed.DefaultMigrationBudget},
	} {
		for _, staleness := range []model.Time{40, 250} {
			t.Run(fmt.Sprintf("%s/staleness=%d", policy.Name(), staleness), func(t *testing.T) {
				legacy := stalenessFederation(t, policy, staleness)
				gated := stalenessFederation(t, policy, staleness)
				if err := gated.SetAdmission(&ctrl.PolicySpec{Policy: "always"}); err != nil {
					t.Fatal(err)
				}
				if _, err := legacy.Step(2000); err != nil {
					t.Fatal(err)
				}
				if _, err := gated.Step(2000); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fingerprint(t, legacy), fingerprint(t, gated)) {
					t.Fatal("staleness through the provider diverged from the legacy knob")
				}
			})
		}
	}
}

// TestStalenessMonotoneDegradation: as the gossip grows staler, the
// routing acts on older information and the run's federation-wide ψ
// drifts monotonically further from the always-fresh run's — staleness
// degrades fairness tracking, and more staleness never helps on this
// imbalanced scenario.
func TestStalenessMonotoneDegradation(t *testing.T) {
	psiAt := func(staleness model.Time) []int64 {
		f := stalenessFederation(t, fed.LeastLoaded{}, staleness)
		if _, err := f.Step(2000); err != nil {
			t.Fatal(err)
		}
		if err := f.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		return f.Ledger().FederationPsi()
	}
	fresh := psiAt(0)
	prev := int64(0)
	for _, staleness := range []model.Time{0, 60, 600} {
		drift := metrics.DeltaPsi(psiAt(staleness), fresh)
		if drift < prev {
			t.Fatalf("staleness %d drifted %d from fresh, less than a fresher run's %d", staleness, drift, prev)
		}
		prev = drift
	}
	if prev == 0 {
		t.Fatal("even 600-tick staleness left ψ untouched — the scenario is load-insensitive")
	}
}

// overloadFederation submits λ× the federation's service capacity over
// the horizon: 2 clusters × 3 machines serve 6 units per tick... here 4
// machines total, horizon 400 → capacity 1600 units; λ·capacity units
// are submitted as size-8 jobs round-robin across 2 orgs and origins.
func overloadFederation(t testing.TB, policy fed.Policy, load float64) *fed.Federation {
	t.Helper()
	specs := []fed.ClusterSpec{
		{Name: "a", Alg: algFactory("directcontr"), Machines: []int{1, 1}},
		{Name: "b", Alg: algFactory("directcontr"), Machines: []int{1, 1}},
	}
	f, err := fed.New([]string{"o0", "o1"}, specs, policy, 5)
	if err != nil {
		t.Fatal(err)
	}
	const horizon, size = 400, 8
	units := int64(load * 4 * horizon)
	jobs := int(units / size)
	for i := 0; i < jobs; i++ {
		release := model.Time(i) * horizon / model.Time(jobs)
		if _, err := f.Submit(i%2, i%2, size, release); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// TestControlPlaneOverload is the acceptance overload scenario: at load
// factor 1.5 a token-bucket plane sheds the excess — the run completes,
// rejects are substantial, and the per-organization conservation law
// (admitted + rejected + deferred == released) holds through a full
// drain of everything that was admitted.
func TestControlPlaneOverload(t *testing.T) {
	f := overloadFederation(t, fed.LeastLoaded{}, 1.5)
	// ~1 size-8 job per 16 ticks per org: half the offered per-org rate.
	spec := &ctrl.PolicySpec{Policy: "tokenbucket", Rate: 1, Period: 16, Burst: 2, MaxAttempts: 3}
	if err := f.SetAdmission(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Step(100000); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	st := f.AdmissionStats()
	if st.TotalReleased() != f.Submitted() || f.PendingCount() != 0 {
		t.Fatalf("released %d of %d submitted (%d still pending)",
			st.TotalReleased(), f.Submitted(), f.PendingCount())
	}
	if st.TotalDeferred() != 0 {
		t.Fatalf("%d jobs still deferred after a full drain", st.TotalDeferred())
	}
	if st.TotalRejected() == 0 {
		t.Fatal("a 1.5× overload shed nothing through a half-rate token bucket")
	}
	if st.TotalAdmitted() == 0 {
		t.Fatal("the token bucket admitted nothing")
	}
	for _, org := range []int{0, 1} {
		if st.Admitted[org]+st.Rejected[org]+st.Deferred[org] != st.Released[org] {
			t.Fatalf("org %d: %d + %d + %d != %d released", org,
				st.Admitted[org], st.Rejected[org], st.Deferred[org], st.Released[org])
		}
	}
	// Decision latency is only accrued by deferred-then-resolved jobs.
	if st.Defers == nil || (st.LatencyMax == 0 && st.TotalRejected() > 0 && sumDefers(st) > 0) {
		t.Fatal("deferred admissions accrued no decision latency")
	}
}

func sumDefers(st *metrics.AdmissionStats) int64 {
	var n int64
	for _, d := range st.Defers {
		n += d
	}
	return n
}

// TestControlPlaneBackpressure: the queue-depth policy reads the
// (possibly stale) observed backlog; under overload it defers arrivals
// until the backlog drains below the bound, stays deterministic, and
// conserves.
func TestControlPlaneBackpressure(t *testing.T) {
	build := func() *fed.Federation {
		f := overloadFederation(t, fed.LeastLoaded{}, 1.5)
		if err := f.SetAdmission(&ctrl.PolicySpec{Policy: "backpressure", MaxWaiting: 4, RetryAfter: 10, MaxAttempts: 5}); err != nil {
			t.Fatal(err)
		}
		return f
	}
	a, b := build(), build()
	if _, err := a.Step(100000); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Step(100000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fingerprint(t, a), fingerprint(t, b)) {
		t.Fatal("two identically configured backpressure runs diverged")
	}
	if err := a.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	st := a.AdmissionStats()
	if sumDefers(st) == 0 {
		t.Fatal("a 1.5× overload never tripped a 4-deep backpressure bound")
	}
}

// TestControlPlaneCheckpointRestore is the acceptance checkpoint gate:
// a federation snapshotted mid-round with live control-plane state —
// deferred admission events pending, token buckets partially drained —
// restores and continues byte-identically with the uninterrupted run,
// for every member algorithm (REF and RAND exercising RNG-bearing
// engine checkpoints).
func TestControlPlaneCheckpointRestore(t *testing.T) {
	for _, alg := range []string{"ref", "rand", "directcontr", "fairshare"} {
		t.Run(alg, func(t *testing.T) {
			specs := func() []fed.ClusterSpec {
				return []fed.ClusterSpec{
					{Name: "a", Alg: algFactory(alg), Machines: []int{1, 1}},
					{Name: "b", Alg: algFactory(alg), Machines: []int{1, 1}},
				}
			}
			spec := &ctrl.PolicySpec{Policy: "tokenbucket", Rate: 1, Period: 16, Burst: 2, MaxAttempts: 3}
			build := func() *fed.Federation {
				f, err := fed.New([]string{"o0", "o1"}, specs(), fed.LeastLoaded{}, 5)
				if err != nil {
					t.Fatal(err)
				}
				f.SetStaleness(30)
				if err := f.SetAdmission(spec); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 60; i++ {
					if _, err := f.Submit(i%2, i%2, 8, model.Time(4*i)); err != nil {
						t.Fatal(err)
					}
				}
				return f
			}
			straight := build()
			if _, err := straight.Step(4000); err != nil {
				t.Fatal(err)
			}

			half := build()
			if _, err := half.Step(90); err != nil {
				t.Fatal(err)
			}
			if half.AdmissionStats().TotalDeferred() == 0 {
				t.Fatal("checkpoint instant carries no deferred admissions — the test is not exercising mid-round control state")
			}
			snap, err := half.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := fed.Restore([]string{"o0", "o1"}, specs(), fed.LeastLoaded{}, snap)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Admission() == nil || resumed.Admission().Policy != "tokenbucket" {
				t.Fatal("restored federation lost its admission spec")
			}
			if _, err := resumed.Step(4000); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fingerprint(t, resumed), fingerprint(t, straight)) {
				t.Fatal("restored control-plane federation diverged from uninterrupted run")
			}
			if err := resumed.CheckConservation(); err != nil {
				t.Fatal(err)
			}
			sa, sb := straight.AdmissionStats(), resumed.AdmissionStats()
			if fmt.Sprintf("%+v", sa) != fmt.Sprintf("%+v", sb) {
				t.Fatalf("admission stats diverged:\n%+v\n%+v", sa, sb)
			}
		})
	}
}

// TestSetAdmissionValidation: bad specs fail loudly and a nil spec
// removes the plane.
func TestSetAdmissionValidation(t *testing.T) {
	f := overloadFederation(t, fed.LeastLoaded{}, 0.5)
	if err := f.SetAdmission(&ctrl.PolicySpec{Policy: "tokenbucket"}); err == nil {
		t.Fatal("a token bucket without rate/burst must not install")
	}
	if f.AdmissionStats() != nil {
		t.Fatal("a failed install left a plane behind")
	}
	if err := f.SetAdmission(&ctrl.PolicySpec{Policy: "always"}); err != nil {
		t.Fatal(err)
	}
	if f.Admission() == nil || f.AdmissionStats() == nil {
		t.Fatal("installed plane not visible")
	}
	if err := f.SetAdmission(nil); err != nil {
		t.Fatal(err)
	}
	if f.Admission() != nil || f.AdmissionStats() != nil {
		t.Fatal("nil spec did not remove the plane")
	}
}
