package model

import (
	"math/bits"
	"strconv"
	"strings"
)

// MaxOrgs bounds the number of organizations so that coalitions fit a
// 32-bit mask. The exponential algorithms are practical for far fewer
// organizations anyway (the paper evaluates 2–10).
const MaxOrgs = 30

// Coalition is a set of organizations encoded as a bitmask: bit i set
// means organization i participates. The zero value is the empty
// coalition.
type Coalition uint32

// Grand returns the coalition of organizations 0..k-1.
func Grand(k int) Coalition {
	if k < 0 || k > MaxOrgs {
		panic("model: organization count out of range")
	}
	return Coalition(1)<<uint(k) - 1
}

// Singleton returns the one-member coalition {i}.
func Singleton(i int) Coalition { return Coalition(1) << uint(i) }

// Has reports whether organization i is a member.
func (c Coalition) Has(i int) bool { return c&Singleton(i) != 0 }

// With returns c ∪ {i}.
func (c Coalition) With(i int) Coalition { return c | Singleton(i) }

// Without returns c \ {i}.
func (c Coalition) Without(i int) Coalition { return c &^ Singleton(i) }

// Union returns c ∪ d.
func (c Coalition) Union(d Coalition) Coalition { return c | d }

// Intersect returns c ∩ d.
func (c Coalition) Intersect(d Coalition) Coalition { return c & d }

// SubsetOf reports whether c ⊆ d.
func (c Coalition) SubsetOf(d Coalition) bool { return c&^d == 0 }

// Empty reports whether the coalition has no members.
func (c Coalition) Empty() bool { return c == 0 }

// Size returns the number of members ‖c‖.
func (c Coalition) Size() int { return bits.OnesCount32(uint32(c)) }

// Members returns the member indices in increasing order.
func (c Coalition) Members() []int {
	out := make([]int, 0, c.Size())
	for m := c; m != 0; {
		i := bits.TrailingZeros32(uint32(m))
		out = append(out, i)
		m &= m - 1
	}
	return out
}

// EachMember calls f for every member in increasing order.
func (c Coalition) EachMember(f func(i int)) {
	for m := c; m != 0; {
		f(bits.TrailingZeros32(uint32(m)))
		m &= m - 1
	}
}

// EachSubset calls f for every subset of c, including the empty coalition
// and c itself. The enumeration order is decreasing as masks.
func (c Coalition) EachSubset(f func(sub Coalition)) {
	sub := c
	for {
		f(sub)
		if sub == 0 {
			return
		}
		sub = (sub - 1) & c
	}
}

// EachNonemptySubset calls f for every non-empty subset of c, including c
// itself.
func (c Coalition) EachNonemptySubset(f func(sub Coalition)) {
	c.EachSubset(func(sub Coalition) {
		if sub != 0 {
			f(sub)
		}
	})
}

// String renders the coalition as "{0,2,5}".
func (c Coalition) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	c.EachMember(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}
