package shapley

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/stats"
)

func randomGame(r *rand.Rand, n int) *MapGame {
	g := NewMapGame(n)
	for mask := 1; mask < 1<<uint(n); mask++ {
		g.Set(model.Coalition(mask), math.Floor(r.Float64()*100))
	}
	return g
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func vectorsAlmostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Unanimity game u_T: v(C) = 1 iff T ⊆ C. Its Shapley value is 1/|T| for
// members of T and 0 otherwise — the textbook closed form.
func unanimity(n int, T model.Coalition) FuncGame {
	return FuncGame{N: n, F: func(c model.Coalition) float64 {
		if T.SubsetOf(c) {
			return 1
		}
		return 0
	}}
}

func TestExactUnanimity(t *testing.T) {
	T := model.Coalition(0b1011) // players 0,1,3
	phi := Exact(unanimity(5, T))
	for u := 0; u < 5; u++ {
		want := 0.0
		if T.Has(u) {
			want = 1.0 / 3.0
		}
		if !almostEqual(phi[u], want) {
			t.Errorf("φ[%d] = %v, want %v", u, phi[u], want)
		}
	}
}

func TestExactMajorityGame(t *testing.T) {
	// Three-player majority: v = 1 iff |C| >= 2. By symmetry φ = 1/3 each.
	g := FuncGame{N: 3, F: func(c model.Coalition) float64 {
		if c.Size() >= 2 {
			return 1
		}
		return 0
	}}
	for _, phi := range Exact(g) {
		if !almostEqual(phi, 1.0/3.0) {
			t.Fatalf("majority game φ = %v", Exact(g))
		}
	}
}

// Axiom: efficiency — Σφ(u) = v(grand).
func TestEfficiency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		g := randomGame(r, n)
		phi := Exact(g)
		var sum float64
		for _, p := range phi {
			sum += p
		}
		return almostEqual(sum, g.Value(model.Grand(n)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Axiom: dummy — a player contributing nothing to any coalition gets 0.
func TestDummy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		dummy := r.Intn(n)
		g := NewMapGame(n)
		// Value depends only on the non-dummy members, so the dummy's
		// marginal contribution is 0 to every coalition.
		base := make(map[model.Coalition]float64)
		for mask := 0; mask < 1<<uint(n); mask++ {
			c := model.Coalition(mask)
			if !c.Has(dummy) {
				base[c] = math.Floor(r.Float64() * 50)
			}
		}
		base[0] = 0
		for mask := 0; mask < 1<<uint(n); mask++ {
			c := model.Coalition(mask)
			g.Set(c, base[c.Without(dummy)])
		}
		return almostEqual(Exact(g)[dummy], 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Axiom: symmetry — interchangeable players receive equal shares.
func TestSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(4)
		// Value depends only on coalition size → all players symmetric.
		sizeVal := make([]float64, n+1)
		for i := 1; i <= n; i++ {
			sizeVal[i] = sizeVal[i-1] + math.Floor(r.Float64()*20)
		}
		g := FuncGame{N: n, F: func(c model.Coalition) float64 { return sizeVal[c.Size()] }}
		phi := Exact(g)
		for u := 1; u < n; u++ {
			if !almostEqual(phi[u], phi[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Axiom: additivity — φ(v+w) = φ(v) + φ(w).
func TestAdditivity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		v, w := randomGame(r, n), randomGame(r, n)
		sum := NewMapGame(n)
		for mask := range sum.Values {
			sum.Values[mask] = v.Values[mask] + w.Values[mask]
		}
		pv, pw, ps := Exact(v), Exact(w), Exact(sum)
		for u := 0; u < n; u++ {
			if !almostEqual(ps[u], pv[u]+pw[u]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Equation 1 (subset formula) must equal Equation 2 (average over all
// permutations) — verified exhaustively for small games.
func TestSubsetFormulaEqualsPermutationAverage(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(4)
		g := randomGame(r, n)
		sum := make([]float64, n)
		count := 0
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var walk func(i int)
		walk = func(i int) {
			if i == n {
				m := Marginals(g, perm)
				for u := range sum {
					sum[u] += m[u]
				}
				count++
				return
			}
			for j := i; j < n; j++ {
				perm[i], perm[j] = perm[j], perm[i]
				walk(i + 1)
				perm[i], perm[j] = perm[j], perm[i]
			}
		}
		walk(0)
		exact := Exact(g)
		for u := 0; u < n; u++ {
			if !almostEqual(sum[u]/float64(count), exact[u]) {
				t.Fatalf("trial %d: permutation average %v != exact %v", trial, sum[u]/float64(count), exact[u])
			}
		}
	}
}

func TestExactParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 3, 6, 11} {
		g := randomGame(r, n)
		serial := Exact(g)
		for _, workers := range []int{0, 1, 2, 7} {
			if got := ExactParallel(g, workers); !vectorsAlmostEqual(got, serial) {
				t.Fatalf("n=%d workers=%d: %v != %v", n, workers, got, serial)
			}
		}
	}
}

func TestSampleConverges(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	g := randomGame(r, 5)
	exact := Exact(g)
	est := Sample(g, 20000, stats.NewRand(3))
	for u := range exact {
		if math.Abs(est[u]-exact[u]) > 2.0 {
			t.Errorf("φ[%d]: sample %v vs exact %v", u, est[u], exact[u])
		}
	}
}

func TestSampleZero(t *testing.T) {
	g := NewMapGame(3)
	phi := Sample(g, 0, stats.NewRand(1))
	for _, p := range phi {
		if p != 0 {
			t.Fatal("zero samples must yield zero estimate")
		}
	}
}

func TestWeightsSumOverSubsets(t *testing.T) {
	// Σ over subset sizes s of C(n-1, s)·w[s] must equal 1: every player's
	// marginal weights form a probability distribution.
	for n := 1; n <= 12; n++ {
		w := Weights(n)
		sum := 0.0
		choose := 1.0
		for s := 0; s < n; s++ {
			sum += choose * w[s]
			choose = choose * float64(n-1-s) / float64(s+1)
		}
		if !almostEqual(sum, 1) {
			t.Errorf("n=%d: Σ C(n-1,s)·w[s] = %v", n, sum)
		}
	}
}

func TestSampleSize(t *testing.T) {
	// Theorem 5.6: N = ⌈k²/ε²·ln(k/(1−λ))⌉.
	got := SampleSize(5, 0.1, 0.95)
	want := int(25.0/0.01*math.Log(5/0.05)) + 1
	if got != want {
		t.Errorf("SampleSize = %d, want %d", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("SampleSize with bad parameters must panic")
		}
	}()
	SampleSize(0, 0.1, 0.5)
}
