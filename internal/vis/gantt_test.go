package vis

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

func fig2() (*model.Instance, []sim.Start) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "O1", Machines: 2}, {Name: "O2", Machines: 1}},
		[]model.Job{
			{Org: 0, Release: 0, Size: 3},
			{Org: 0, Release: 0, Size: 4},
			{Org: 0, Release: 0, Size: 3},
			{Org: 0, Release: 0, Size: 6},
			{Org: 0, Release: 0, Size: 3},
			{Org: 0, Release: 0, Size: 6},
			{Org: 0, Release: 0, Size: 3},
			{Org: 0, Release: 0, Size: 3},
			{Org: 0, Release: 0, Size: 4},
			{Org: 1, Release: 0, Size: 5},
		},
	)
	starts := []sim.Start{
		{Job: 0, Org: 0, Machine: 0, At: 0},
		{Job: 3, Org: 0, Machine: 0, At: 3},
		{Job: 9, Org: 1, Machine: 0, At: 9},
		{Job: 1, Org: 0, Machine: 1, At: 0},
		{Job: 5, Org: 0, Machine: 1, At: 4},
		{Job: 8, Org: 0, Machine: 1, At: 10},
		{Job: 2, Org: 0, Machine: 2, At: 0},
		{Job: 4, Org: 0, Machine: 2, At: 3},
		{Job: 7, Org: 0, Machine: 2, At: 6},
		{Job: 6, Org: 0, Machine: 2, At: 9},
	}
	return in, starts
}

func TestGanttFigure2(t *testing.T) {
	in, starts := fig2()
	out := Gantt(in, starts, 3, 14, 80)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Machine 0: aaa bbbbbb ccccc → 14 busy columns, no idle.
	if strings.Contains(lines[1], ".") {
		t.Errorf("M0 shows idle time: %s", lines[1])
	}
	// Machine 1: 4+6+4 = 14 busy columns.
	if strings.Contains(lines[2], ".") {
		t.Errorf("M1 shows idle time: %s", lines[2])
	}
	// Machine 2: 3+3+3+3 = 12 busy, 2 idle at the end.
	if got := strings.Count(lines[3], "."); got != 2 {
		t.Errorf("M2 idle columns = %d, want 2: %s", got, lines[3])
	}
}

func TestGanttCompression(t *testing.T) {
	in, starts := fig2()
	out := Gantt(in, starts, 3, 14, 7)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 14 units over 7 columns → 2 units per column.
	if !strings.Contains(lines[0], "2 unit(s) per column") {
		t.Errorf("header = %s", lines[0])
	}
	if len(lines[1]) > len("M0  |")+7+1 {
		t.Errorf("row too wide: %q", lines[1])
	}
}

func TestLegend(t *testing.T) {
	in, starts := fig2()
	leg := Legend(in, starts)
	if !strings.Contains(leg, "a: org O1 job#0  [0,3) on M0") {
		t.Errorf("legend missing first entry:\n%s", leg)
	}
	if !strings.Contains(leg, "c: org O2 job#9  [9,14) on M0") {
		t.Errorf("legend missing O2 entry:\n%s", leg)
	}
	if got := strings.Count(leg, "\n"); got != len(starts) {
		t.Errorf("legend lines = %d, want %d", got, len(starts))
	}
}
