// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can archive the performance
// trajectory (BENCH_3.json) instead of throwing benchmark numbers away
// in job logs:
//
//	go test -run='^$' -bench=. -benchtime=1x ./... | benchjson > BENCH_3.json
//
// Each benchmark line becomes one record with the raw name, ns/op,
// every further reported metric (B/op, delay/job, offload%, …) keyed
// by unit, and the decomposed sub-benchmark path: `key=value` segments
// (orgs=8, N=15, workers=4) land in "params", the remaining segments
// identify the benchmark and algorithm — enough to plot any metric per
// algorithm and organization count across PRs without re-parsing Go's
// text format.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record is one parsed benchmark measurement.
type Record struct {
	// Name is the full benchmark name with the -GOMAXPROCS suffix
	// stripped, e.g. "BenchmarkAblationREFScaling/orgs=8/heap".
	Name string `json:"name"`
	// Benchmark is the top-level function, e.g. "AblationREFScaling".
	Benchmark string `json:"benchmark"`
	// Algorithm is the sub-benchmark path segment that is not a
	// key=value pair (the algorithm or variant label), if any.
	Algorithm string `json:"algorithm,omitempty"`
	// Params holds the key=value path segments (orgs, N, workers, …).
	Params     map[string]string `json:"params,omitempty"`
	Iterations int64             `json:"iterations"`
	NsPerOp    float64           `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are the -benchmem memory columns,
	// promoted out of Metrics to named fields so the regression gate
	// (cmd/benchdiff) can see memory without string-keyed lookups.
	// Pointers distinguish a measured 0 allocs/op — the hot-path
	// budget this repo enforces — from a run without -benchmem.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	// Metrics holds every further "value unit" pair on the line —
	// Go's own (B/op, allocs/op) and b.ReportMetric customs like
	// "delay/job" (the tables' Δψ/p_tot) or the federation
	// benchmark's "offload%" and "value" — keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document benchjson emits. CPU is the host description
// from the bench output's "cpu:" header, when present — cmd/benchdiff
// only enforces wall-time thresholds between artifacts measured on the
// same hardware.
type Report struct {
	Format     string   `json:"format"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

func main() {
	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output and collects every benchmark
// line. Non-benchmark lines (package headers, PASS/ok, log output) are
// ignored.
func parse(r io.Reader) (*Report, error) {
	report := &Report{Format: "go-bench-json/1", Benchmarks: []Record{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if cpu, found := strings.CutPrefix(line, "cpu:"); found {
			report.CPU = strings.TrimSpace(cpu)
			continue
		}
		rec, ok := parseLine(line)
		if ok {
			report.Benchmarks = append(report.Benchmarks, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}

// parseLine parses one "BenchmarkX-8  N  T ns/op ..." line.
func parseLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	// Benchmark lines are "value unit" pairs after the iteration
	// count: ns/op is required, everything else lands in Metrics.
	ns := -1.0
	var metrics map[string]float64
	for i := 3; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			return Record{}, false
		}
		if fields[i] == "ns/op" {
			ns = v
			continue
		}
		if metrics == nil {
			metrics = map[string]float64{}
		}
		metrics[fields[i]] = v
	}
	if ns < 0 {
		return Record{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix from the last path segment.
	if i := strings.LastIndex(name, "-"); i > 0 && !strings.Contains(name[i:], "/") {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	rec := Record{Name: name, Iterations: iters, NsPerOp: ns, Metrics: metrics}
	if v, ok := metrics["allocs/op"]; ok {
		rec.AllocsPerOp = &v
	}
	if v, ok := metrics["B/op"]; ok {
		rec.BytesPerOp = &v
	}
	segs := strings.Split(strings.TrimPrefix(name, "Benchmark"), "/")
	rec.Benchmark = segs[0]
	for _, seg := range segs[1:] {
		if k, v, found := strings.Cut(seg, "="); found && !strings.Contains(k, "(") {
			if rec.Params == nil {
				rec.Params = map[string]string{}
			}
			rec.Params[k] = v
			continue
		}
		// Non key=value segment: the algorithm / variant label. Join
		// multiple with '/' (rare, but sub-sub-benchmarks exist).
		if rec.Algorithm == "" {
			rec.Algorithm = seg
		} else {
			rec.Algorithm += "/" + seg
		}
	}
	return rec, true
}
