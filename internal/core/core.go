// Package core implements the paper's primary contribution: fair
// scheduling of a multi-organization system by the Shapley value of the
// cooperative game whose coalition value is the sum of the members'
// strategy-proof utilities ψsp.
//
// Three schedulers are provided:
//
//   - Ref — Algorithm REF (Figures 1 and 3): the exact, exponential
//     reference. It maintains a full greedy schedule for every non-empty
//     subcoalition, derives exact Shapley contributions φ from the
//     subcoalition values at every decision instant, and always starts a
//     job of the organization with the largest deficit φ−ψ.
//   - RandSched — Algorithm RAND (Figure 6): the sampled-permutation
//     approximation, an FPRAS for unit-size jobs (Theorems 5.6–5.7) and
//     a practical heuristic otherwise.
//   - DirectContr — Algorithm DIRECTCONTR (Figure 9): the polynomial
//     heuristic that estimates an organization's contribution directly
//     as the ψsp-value of the unit slots executed on its machines.
//
// Every scheduler, and every baseline wrapped with FromPolicy, is
// exposed through the uniform Algorithm interface the experiment harness
// consumes.
package core

import (
	"repro/internal/model"
	"repro/internal/sim"
)

// Result is the outcome of running one scheduling algorithm on one
// instance up to a horizon.
type Result struct {
	Algorithm string
	Horizon   model.Time
	// Psi is each organization's strategy-proof utility ψsp at the
	// horizon in the grand-coalition schedule.
	Psi []int64
	// Phi is each organization's estimated (or exact, for REF) Shapley
	// contribution at the horizon; nil for algorithms that do not
	// compute contributions.
	Phi []float64
	// Value is Σ Psi — the grand coalition's value v(C, horizon).
	Value int64
	// Ptot is the number of executed unit slots — the paper's p_tot
	// when the result comes from the reference algorithm.
	Ptot int64
	// Starts is the full schedule (one record per started job).
	Starts []sim.Start
	// Utilization is the fraction of machine capacity used by the
	// horizon.
	Utilization float64
}

// Algorithm is a complete scheduling algorithm: given an instance it
// produces a grand-coalition schedule and the associated utilities.
// Implementations must be deterministic given (instance, until, seed).
type Algorithm interface {
	Name() string
	Run(inst *model.Instance, until model.Time, seed int64) *Result
}

// FromPolicy wraps a per-decision sim.Policy as an Algorithm running on
// the grand coalition. factory must return a fresh policy per run. The
// returned algorithm is a StepperAlgorithm: it can run incrementally
// under internal/engine.
func FromPolicy(name string, factory func() sim.Policy) StepperAlgorithm {
	return &policyAlgorithm{name: name, factory: factory}
}

type policyAlgorithm struct {
	name    string
	factory func() sim.Policy
}

func (a *policyAlgorithm) Name() string { return a.name }

// Run implements Algorithm as a thin wrapper over the incremental
// stepper: drain every event up to the horizon, finish the clock there,
// report. runStepper is the single driving loop shared by every batch
// entry point, so batch and streaming runs execute identical code.
func (a *policyAlgorithm) Run(inst *model.Instance, until model.Time, seed int64) *Result {
	return runStepper(a.NewStepper(inst, seed), until)
}

// runStepper drains s to the horizon and builds the result — the batch
// contract expressed in the incremental vocabulary.
func runStepper(s Stepper, until model.Time) *Result {
	for s.StepNext(until) {
	}
	s.FinishAt(until)
	return s.ResultAt(until)
}

func resultFromCluster(name string, c *sim.Cluster, until model.Time, phi []float64) *Result {
	return &Result{
		Algorithm:   name,
		Horizon:     until,
		Psi:         c.PsiVector(),
		Phi:         phi,
		Value:       c.Value(),
		Ptot:        c.ExecutedUnits(),
		Starts:      c.Starts(),
		Utilization: c.Utilization(),
	}
}
