// Package baseline implements the scheduling policies the paper compares
// its Shapley-based algorithms against (Section 7.1): ROUNDROBIN,
// FAIRSHARE, UTFAIRSHARE and CURRFAIRSHARE — plus FCFS, the "arbitrary
// greedy algorithm" Algorithm RAND uses for its sampled coalition
// schedules, and a fixed Priority policy used by examples and tests.
//
// All policies are non-clairvoyant: they read only queue state, realized
// usage and utilities through sim.View.
package baseline

import (
	"encoding/json"
	"math/rand"

	"repro/internal/model"
	"repro/internal/sim"
)

// FCFS starts jobs globally in (release, submission) order: the org
// whose head job was released earliest goes first. For unit-size jobs
// any greedy order yields the same coalition value (Proposition 5.4),
// which is why RAND can use FCFS for its sampled subcoalitions.
type FCFS struct{ view *sim.View }

// NewFCFS returns a first-come-first-served policy.
func NewFCFS() *FCFS { return &FCFS{} }

// Name implements sim.Policy.
func (p *FCFS) Name() string { return "FCFS" }

// Attach implements sim.Policy.
func (p *FCFS) Attach(v *sim.View, _ *rand.Rand) { p.view = v }

// Select implements sim.Policy.
func (p *FCFS) Select(_ model.Time, _ int) int {
	best := -1
	bestID := 0
	var bestRel model.Time
	for org := 0; org < p.view.Orgs(); org++ {
		id, rel, ok := p.view.Head(org)
		if !ok {
			continue
		}
		if best == -1 || rel < bestRel || (rel == bestRel && id < bestID) {
			best, bestRel, bestID = org, rel, id
		}
	}
	return best
}

// RoundRobin cycles through the organizations, giving the next waiting
// organization one job start per turn. It optimizes nothing — the paper
// uses it as the fairness floor.
type RoundRobin struct {
	view *sim.View
	next int
}

// NewRoundRobin returns a round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements sim.Policy.
func (p *RoundRobin) Name() string { return "RoundRobin" }

// Attach implements sim.Policy.
func (p *RoundRobin) Attach(v *sim.View, _ *rand.Rand) { p.view = v }

// Select implements sim.Policy.
func (p *RoundRobin) Select(_ model.Time, _ int) int {
	k := p.view.Orgs()
	for i := 0; i < k; i++ {
		org := (p.next + i) % k
		if p.view.Waiting(org) > 0 {
			p.next = (org + 1) % k
			return org
		}
	}
	return -1 // unreachable: the engine calls Select only with waiting jobs
}

// roundRobinState is RoundRobin's serialized checkpoint form.
type roundRobinState struct {
	Next int `json:"next"`
}

// CapturePolicyState implements sim.StatefulPolicy: the rotation cursor
// is the only state a resumed run needs.
func (p *RoundRobin) CapturePolicyState() ([]byte, error) {
	return json.Marshal(roundRobinState{Next: p.next})
}

// RestorePolicyState implements sim.StatefulPolicy.
func (p *RoundRobin) RestorePolicyState(data []byte) error {
	var st roundRobinState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	p.next = st.Next
	return nil
}

// Priority always prefers the earliest organization in its fixed order
// that has a waiting job.
type Priority struct {
	Order []int
	view  *sim.View
}

// NewPriority returns a fixed-priority policy over the given org order.
func NewPriority(order ...int) *Priority { return &Priority{Order: order} }

// Name implements sim.Policy.
func (p *Priority) Name() string { return "Priority" }

// Attach implements sim.Policy.
func (p *Priority) Attach(v *sim.View, _ *rand.Rand) { p.view = v }

// Select implements sim.Policy.
func (p *Priority) Select(_ model.Time, _ int) int {
	for _, org := range p.Order {
		if p.view.Waiting(org) > 0 {
			return org
		}
	}
	return -1
}
