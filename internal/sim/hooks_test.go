package sim

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// hookedPolicy exercises every optional policy extension at once.
type hookedPolicy struct {
	view    *View
	events  []model.Time
	started []int
	ordered int
}

func (p *hookedPolicy) Name() string                 { return "hooked" }
func (p *hookedPolicy) Attach(v *View, _ *rand.Rand) { p.view = v }
func (p *hookedPolicy) OnEvent(t model.Time)         { p.events = append(p.events, t) }
func (p *hookedPolicy) OnStart(_ model.Time, j model.Job, _ int) {
	p.started = append(p.started, j.ID)
}
func (p *hookedPolicy) OrderMachines(_ model.Time, free []int) { p.ordered++ }

func (p *hookedPolicy) Select(_ model.Time, _ int) int {
	for org := 0; org < p.view.Orgs(); org++ {
		if p.view.Waiting(org) > 0 {
			return org
		}
	}
	return -1
}

func TestPolicyHooks(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1}},
		[]model.Job{
			{Org: 0, Release: 0, Size: 2},
			{Org: 0, Release: 5, Size: 1},
		},
	)
	p := &hookedPolicy{}
	c := New(in, in.Grand(), p, nil)
	c.Run(10)
	// Events: release at 0, completion at 2, release at 5, completion 6.
	want := []model.Time{0, 2, 5, 6}
	if len(p.events) != len(want) {
		t.Fatalf("OnEvent times = %v, want %v", p.events, want)
	}
	for i := range want {
		if p.events[i] != want[i] {
			t.Fatalf("OnEvent times = %v, want %v", p.events, want)
		}
	}
	if len(p.started) != 2 || p.started[0] != 0 || p.started[1] != 1 {
		t.Fatalf("OnStart jobs = %v", p.started)
	}
	if p.ordered == 0 {
		t.Fatal("OrderMachines never called")
	}
}

func TestNextEventTimeSentinel(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1}},
		[]model.Job{{Org: 0, Release: 0, Size: 1}},
	)
	c := New(in, in.Grand(), orgPriority(0), nil)
	c.Run(5)
	if got := c.NextEventTime(); got != MaxTime {
		t.Fatalf("NextEventTime after quiescence = %d, want MaxTime", got)
	}
	// Step past quiescence reports no events.
	if c.Step(100) {
		t.Fatal("Step found an event after quiescence")
	}
}

func TestSelectFuncAdapter(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1}},
		[]model.Job{{Org: 0, Release: 0, Size: 1}},
	)
	p := &SelectFunc{PolicyName: "always-zero", F: func(v *View, _ model.Time, _ int) int {
		if v == nil {
			t.Fatal("view not attached")
		}
		return 0
	}}
	if p.Name() != "always-zero" {
		t.Fatalf("Name = %q", p.Name())
	}
	c := New(in, in.Grand(), p, nil)
	c.Run(3)
	if len(c.Starts()) != 1 {
		t.Fatal("SelectFunc policy did not schedule")
	}
}
