package fed_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/fed"
	"repro/internal/model"
)

// TestMigrationDisabledMatchesBase is the migration differential: a
// Migrating wrapper with budget 0 must reproduce the bare inner
// policy's federation byte for byte — identical decision logs, ledger
// and ψ — at every staleness setting. The wrapper may only ever change
// behavior through actual migrations.
func TestMigrationDisabledMatchesBase(t *testing.T) {
	algs := []string{"ref", "directcontr", "fairshare"}
	cases := []struct {
		base  fed.Policy
		inner fed.Policy
	}{
		{fed.RefPolicy{}, fed.RefPolicy{}},
		{fed.FairnessAware{}, fed.FairnessAware{}},
		{fed.LeastLoaded{}, fed.LeastLoaded{}},
	}
	for _, tc := range cases {
		wrapped := fed.Migrating{Inner: tc.inner, Budget: 0}
		for _, staleness := range []model.Time{0, 120} {
			staleness := staleness
			t.Run(fmt.Sprintf("%s/staleness=%d", wrapped.Name(), staleness), func(t *testing.T) {
				a, _ := buildFederation(t, algs, tc.base, 11)
				b, _ := buildFederation(t, algs, wrapped, 11)
				a.SetStaleness(staleness)
				b.SetStaleness(staleness)
				if _, err := a.Step(6000); err != nil {
					t.Fatal(err)
				}
				if _, err := b.Step(6000); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fingerprint(t, a), fingerprint(t, b)) {
					t.Fatalf("budget-0 %s diverged from bare %s", wrapped.Name(), tc.base.Name())
				}
				if got := b.Ledger().Migrations; got != 0 {
					t.Fatalf("budget-0 federation migrated %d jobs", got)
				}
			})
		}
	}
}

// TestOneMemberMigrationMatchesSingleClusterRef: the second migration
// differential — a 1-member federation with migration enabled has
// nowhere to move anything, so it must still reproduce single-cluster
// REF byte for byte, stale gossip and all.
func TestOneMemberMigrationMatchesSingleClusterRef(t *testing.T) {
	assertOneMemberMatchesRef(t, fed.Migrating{Inner: fed.RefPolicy{}, Budget: fed.DefaultMigrationBudget}, 0)
	assertOneMemberMatchesRef(t, fed.Migrating{Inner: fed.RefPolicy{}, Budget: fed.DefaultMigrationBudget}, 35)
}

// TestMigrationMovesQueuedJobs: on the deliberately imbalanced
// stale-gossip federation, the re-delegation pass must actually fire —
// queued jobs leave the saturated origin for the idle peer at gossip
// refreshes — while every conservation invariant keeps holding and the
// run drains completely.
func TestMigrationMovesQueuedJobs(t *testing.T) {
	for _, inner := range []fed.Policy{fed.RefPolicy{}, fed.FairnessAware{}} {
		policy := fed.Migrating{Inner: inner, Budget: fed.DefaultMigrationBudget}
		t.Run(policy.Name(), func(t *testing.T) {
			f := stalenessFederation(t, policy, 30)
			if _, err := f.Step(2000); err != nil {
				t.Fatal(err)
			}
			if err := f.CheckConservation(); err != nil {
				t.Fatal(err)
			}
			l := f.Ledger()
			if l.Migrations == 0 {
				t.Fatal("no queued job migrated off a saturated 2-machine origin with a 4-machine idle peer")
			}
			// Full drain: 40 jobs of size 6 were submitted; conservation
			// of executed units across migration means exactly 240 unit
			// slots ran, each sequence number exactly once.
			if got := l.TotalExecuted(); got != 240 {
				t.Fatalf("executed %d unit slots, submitted 240", got)
			}
			seen := make(map[int64]int)
			for _, d := range f.Decisions() {
				seen[d.Seq]++
			}
			if len(seen) != 40 {
				t.Fatalf("%d distinct jobs started, submitted 40", len(seen))
			}
			for seq, n := range seen {
				if n != 1 {
					t.Fatalf("job %d started %d times", seq, n)
				}
			}
		})
	}
}

// TestMigrationBudgetCaps: the per-round budget really is the throttle —
// a budget-1 federation migrates strictly less than a generous one on
// the same congested scenario, and both conserve.
func TestMigrationBudgetCaps(t *testing.T) {
	run := func(budget int) *fed.Federation {
		f := stalenessFederation(t, fed.Migrating{Inner: fed.RefPolicy{}, Budget: budget}, 20)
		if _, err := f.Step(2000); err != nil {
			t.Fatal(err)
		}
		if err := f.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		return f
	}
	tight, loose := run(1), run(64)
	nt, nl := tight.Ledger().Migrations, loose.Ledger().Migrations
	if nt == 0 || nl == 0 {
		t.Fatalf("migration inert: %d vs %d migrations", nt, nl)
	}
	if nt >= nl {
		t.Fatalf("budget 1 migrated %d jobs, budget 64 only %d — the cap is not binding", nt, nl)
	}
	// Releases stop at t=78, so with staleness 20 at most ~5 refresh
	// rounds exist: a budget-1 run can never exceed one move per round.
	if nt > 5 {
		t.Fatalf("budget-1 run migrated %d jobs in at most 5 refresh rounds", nt)
	}
}

// TestMigrationCheckpointMidRound: a snapshot taken mid-gossip-period
// of a migrating federation — after some jobs already moved, with the
// stale exchange cache live and tombstones in member engines — must
// resume byte-identically with the uninterrupted run.
func TestMigrationCheckpointMidRound(t *testing.T) {
	policy := fed.Migrating{Inner: fed.RefPolicy{}, Budget: fed.DefaultMigrationBudget}
	straight := stalenessFederation(t, policy, 30)
	if _, err := straight.Step(2000); err != nil {
		t.Fatal(err)
	}
	if straight.Ledger().Migrations == 0 {
		t.Fatal("scenario produced no migrations — the checkpoint test would be vacuous")
	}

	half := stalenessFederation(t, policy, 30)
	if _, err := half.Step(47); err != nil { // refreshes at 0 and 30; 47 is mid-period with migrations behind it
		t.Fatal(err)
	}
	snap, err := half.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	specs := []fed.ClusterSpec{
		{Name: "busy", Alg: algFactory("directcontr"), Machines: []int{1, 1}},
		{Name: "idle", Alg: algFactory("directcontr"), Machines: []int{2, 2}},
	}
	resumed, err := fed.Restore([]string{"o0", "o1"}, specs, policy, snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.Step(2000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fingerprint(t, resumed), fingerprint(t, straight)) {
		t.Fatal("resumed migrating federation diverged from uninterrupted run")
	}
	if err := resumed.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestWithMigrationBudget pins the override helper's semantics.
func TestWithMigrationBudget(t *testing.T) {
	base := fed.Migrating{Inner: fed.RefPolicy{}, Budget: fed.DefaultMigrationBudget}
	if got := fed.WithMigrationBudget(base, 3).(fed.Migrating).Budget; got != 3 {
		t.Fatalf("positive override gave budget %d", got)
	}
	if got := fed.WithMigrationBudget(base, -1).(fed.Migrating).Budget; got != 0 {
		t.Fatalf("negative override gave budget %d, want 0 (disabled)", got)
	}
	if got := fed.WithMigrationBudget(base, 0).(fed.Migrating).Budget; got != fed.DefaultMigrationBudget {
		t.Fatalf("zero override gave budget %d, want the policy default", got)
	}
	if p := fed.WithMigrationBudget(fed.LeastLoaded{}, 5); p != (fed.LeastLoaded{}) {
		t.Fatalf("non-migrating policy rewrapped as %T", p)
	}
}

// TestPolicyByNameMigrateVariants: the wire names resolve to enabled
// migrating wrappers.
func TestPolicyByNameMigrateVariants(t *testing.T) {
	for name, inner := range map[string]string{
		"fedref-migrate":   "fedref",
		"fairness-migrate": "fairness",
	} {
		p, err := fed.PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, ok := p.(fed.Migrating)
		if !ok {
			t.Fatalf("%s resolved to %T", name, p)
		}
		if m.Name() != name || m.Inner.Name() != inner || m.MigrationBudget() != fed.DefaultMigrationBudget {
			t.Fatalf("%s resolved to %s over %s with budget %d", name, m.Name(), m.Inner.Name(), m.MigrationBudget())
		}
	}
}
