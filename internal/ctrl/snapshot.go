package ctrl

import "repro/internal/model"

// Load is the standardized load signal every owner exposes to admission
// policies: how many accepted jobs are waiting (queued but not started)
// and the total service capacity, at the snapshot instant. Policies that
// need richer structure (the federation's exchanged summaries) read the
// owner-defined Payload instead.
type Load struct {
	Waiting  int   `json:"waiting"`
	Capacity int64 `json:"capacity"`
}

// View is one observation of system state, explicitly aged: TakenAt is
// when the observation was captured, and a decision at instant t acts
// on a view of age t−TakenAt. Payload carries the owner's full
// observation (internal/fed stores its exchange — member summaries and
// the routed-work matrix); single-cluster owners leave it nil.
type View struct {
	TakenAt model.Time `json:"taken_at"`
	Load    Load       `json:"load"`
	Payload any        `json:"-"`
}

// Age returns the view's staleness at decision instant t.
func (v View) Age(t model.Time) model.Time { return t - v.TakenAt }

// CaptureFunc captures a fresh observation at instant t. The provider
// fills TakenAt; implementations fill Load and Payload.
type CaptureFunc func(t model.Time) View

// SnapshotProvider is the staleness contract: Observe returns the view
// a decision at instant t acts on and reports whether this call
// captured a fresh snapshot (the "gossip arrived" edge owners hook
// re-delegation onto). Implementations must be deterministic: the
// sequence of Observe calls fully determines the views returned.
type SnapshotProvider interface {
	Observe(t model.Time) (View, bool)
	// MaxAge returns the staleness bound Δt: a returned view is never
	// older than Δt at its decision instant (0 = always fresh).
	MaxAge() model.Time
}

// DirectProvider is the zero-staleness provider: every Observe captures
// fresh state. It is the observability model the pre-control-plane code
// paths implicitly used — CachedSnapshotProvider at max age 0 is
// byte-identical to it (TestCachedProviderZeroStalenessDirect).
type DirectProvider struct {
	Capture CaptureFunc
}

// Observe implements SnapshotProvider.
func (p DirectProvider) Observe(t model.Time) (View, bool) {
	v := p.Capture(t)
	v.TakenAt = t
	return v, true
}

// MaxAge implements SnapshotProvider.
func (DirectProvider) MaxAge() model.Time { return 0 }

// CachedSnapshotProvider bounds observation staleness: a captured view
// is reused until it is at least maxAge old, then recaptured — periodic
// gossip, monitoring-scrape or cache-refresh observability, as one
// knob. Max age ≤ 0 degenerates to DirectProvider behavior exactly
// (fresh capture on every Observe, refreshed always true).
//
// The cache is part of the owner's deterministic state: owners persist
// (TakenAt, Load, Payload) in their checkpoints and re-install them
// with Prime on restore, so a run restored mid-staleness-period keeps
// deciding on the same aged view an uninterrupted run would.
type CachedSnapshotProvider struct {
	capture CaptureFunc
	maxAge  model.Time
	valid   bool
	view    View
}

// NewCachedSnapshotProvider returns a provider capturing through fn with
// the given staleness bound.
func NewCachedSnapshotProvider(fn CaptureFunc, maxAge model.Time) *CachedSnapshotProvider {
	if maxAge < 0 {
		maxAge = 0
	}
	return &CachedSnapshotProvider{capture: fn, maxAge: maxAge}
}

// SetCapture installs the capture function (owners with construction
// cycles — a Federation capturing its own exchange — set it after New).
func (p *CachedSnapshotProvider) SetCapture(fn CaptureFunc) { p.capture = fn }

// Observe implements SnapshotProvider.
func (p *CachedSnapshotProvider) Observe(t model.Time) (View, bool) {
	if p.maxAge <= 0 {
		v := p.capture(t)
		v.TakenAt = t
		return v, true
	}
	if !p.valid || t-p.view.TakenAt >= p.maxAge {
		v := p.capture(t)
		v.TakenAt = t
		p.view = v
		p.valid = true
		return v, true
	}
	return p.view, false
}

// MaxAge implements SnapshotProvider.
func (p *CachedSnapshotProvider) MaxAge() model.Time { return p.maxAge }

// SetMaxAge reconfigures the staleness bound. Changing it invalidates
// the cached view (the legacy Federation.SetStaleness semantics, which
// this provider now implements); setting the current value is a no-op.
func (p *CachedSnapshotProvider) SetMaxAge(maxAge model.Time) {
	if maxAge < 0 {
		maxAge = 0
	}
	if maxAge != p.maxAge {
		p.maxAge = maxAge
		p.Invalidate()
	}
}

// Invalidate drops the cached view; the next Observe captures fresh.
func (p *CachedSnapshotProvider) Invalidate() {
	p.valid = false
	p.view = View{}
}

// Cached returns the live cached view, if any — the checkpoint export
// path.
func (p *CachedSnapshotProvider) Cached() (View, bool) { return p.view, p.valid }

// Prime installs a cached view — the checkpoint restore path.
func (p *CachedSnapshotProvider) Prime(v View) {
	p.view = v
	p.valid = true
}
