package core

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// This file defines the incremental driving contract the streaming
// engine (internal/engine) consumes. Every algorithm in this package —
// REF with either driver, RAND, DIRECTCONTR and the policy-backed
// baselines — implements Stepper, and the batch Algorithm.Run entry
// points are thin wrappers over the same stepping code, so the batch
// and streaming paths cannot diverge.

// Stepper is an algorithm run held open: events are processed one
// decision instant at a time, jobs can be injected mid-run, and the
// complete deterministic state can be captured for checkpointing.
// Steppers are single-goroutine objects; the caller serializes access.
type Stepper interface {
	// Name labels the algorithm configuration (same as Algorithm.Name).
	Name() string
	// Instance returns the live instance, including injected jobs. The
	// stepper owns it; callers append jobs only through Inject.
	Instance() *model.Instance
	// NextEventTime returns the earliest pending event across every
	// schedule the stepper maintains, or sim.MaxTime when none remains.
	NextEventTime() model.Time
	// StepNext processes the single earliest pending event at or before
	// until (advance, recompute contributions, dispatch) and reports
	// whether one existed.
	StepNext(until model.Time) bool
	// FinishAt moves every schedule's clock to exactly t after the
	// caller has drained all events at or before t with StepNext. It is
	// safe to call repeatedly with increasing t; stepping can resume
	// afterwards.
	FinishAt(t model.Time)
	// Inject registers jobs already appended to the instance (by ID)
	// with every schedule the stepper maintains.
	Inject(ids []int) error
	// Withdraw removes a not-yet-started job from the decision
	// schedule's wait queue (or pending releases) and, best-effort,
	// from every hypothetical schedule the stepper maintains: a
	// hypothetical schedule that already started the job keeps it —
	// non-preemptive counterfactual work stands — while queued copies
	// are removed alongside. It fails when the decision schedule no
	// longer holds the job (started, finished, or already withdrawn).
	// The job stays in the instance as a tombstone: IDs are positional.
	Withdraw(id int) error
	// Withdrawn returns the number of jobs withdrawn from the decision
	// schedule and not re-injected since.
	Withdrawn() int
	// Starts returns the decision schedule's starts so far.
	Starts() []sim.Start
	// ResultAt builds the standard result at time t. Callers must have
	// drained events to t and called FinishAt(t) first.
	ResultAt(t model.Time) *Result
	// Capture serializes the stepper's complete deterministic state at
	// a step boundary (between StepNext calls). now is the caller's
	// clock, recorded for the resuming side.
	Capture(now model.Time) (*Checkpoint, error)
}

// StepperAlgorithm is an Algorithm that can also run incrementally and
// resume from a checkpoint. The algorithm value carries the static
// configuration (driver, sample count, worker options); the Checkpoint
// carries only dynamic state, so restoring requires the same algorithm
// configuration that captured it.
type StepperAlgorithm interface {
	Algorithm
	// NewStepper starts an incremental run. The stepper takes ownership
	// of inst: online arrivals are appended to it via the engine.
	NewStepper(inst *model.Instance, seed int64) Stepper
	// RestoreStepper rebuilds a stepper from a checkpoint captured by a
	// stepper of the same algorithm configuration.
	RestoreStepper(cp *Checkpoint) (Stepper, error)
}

// CheckpointVersion identifies the serialized checkpoint layout.
const CheckpointVersion = 1

// Checkpoint is the complete serializable state of a stepper mid-run:
// the instance as fed so far (orgs plus every job, including online
// arrivals), one ClusterState per maintained schedule in a
// stepper-defined deterministic order, the positions of the RNG streams
// that influence decisions, and any stateful policy's own capture.
// Driver acceleration state (event-heap keys, cached value polynomials,
// dispatch stamps) is deliberately not serialized: it is rebuilt from
// the cluster states on restore, and the rebuilt caches evaluate to the
// same values — checkpoint/restore is byte-identical to an
// uninterrupted run (see TestCheckpointRestoreDeterminism).
type Checkpoint struct {
	Version   int                `json:"version"`
	Algorithm string             `json:"algorithm"`
	Seed      int64              `json:"seed"`
	Now       model.Time         `json:"now"`
	Orgs      []model.Org        `json:"orgs"`
	Jobs      []model.Job        `json:"jobs"`
	Clusters  []sim.ClusterState `json:"clusters"`
	RNG       []uint64           `json:"rng,omitempty"`
	Policy    json.RawMessage    `json:"policy,omitempty"`
}

// RebuildInstance reconstructs the live instance from the checkpoint.
// Jobs are stored in feed order, which need not be globally sorted by
// release (an arrival fed at time 10 may be released after one fed at
// time 5), so the model-level Validate is not applied — per-job fields
// were validated when they were fed.
func (cp *Checkpoint) RebuildInstance() (*model.Instance, error) {
	if len(cp.Orgs) == 0 {
		return nil, fmt.Errorf("core: checkpoint has no organizations")
	}
	inst := &model.Instance{
		Orgs: append([]model.Org(nil), cp.Orgs...),
		Jobs: append([]model.Job(nil), cp.Jobs...),
	}
	total := 0
	for i := range inst.Orgs {
		inst.Orgs[i].Speeds = append([]int(nil), cp.Orgs[i].Speeds...)
		o := inst.Orgs[i]
		if o.Machines < 0 {
			return nil, fmt.Errorf("core: checkpoint organization %d has negative machine count", i)
		}
		if len(o.Speeds) != 0 {
			if len(o.Speeds) != o.Machines {
				return nil, fmt.Errorf("core: checkpoint organization %d has %d speeds for %d machines", i, len(o.Speeds), o.Machines)
			}
			for _, s := range o.Speeds {
				if s < 1 {
					return nil, fmt.Errorf("core: checkpoint organization %d has speed %d; speeds must be >= 1", i, s)
				}
			}
		}
		total += o.Machines
	}
	if total == 0 {
		return nil, fmt.Errorf("core: checkpoint has no machines")
	}
	for i, j := range inst.Jobs {
		if j.ID != i {
			return nil, fmt.Errorf("core: checkpoint job at position %d has ID %d", i, j.ID)
		}
		if j.Org < 0 || j.Org >= len(inst.Orgs) {
			return nil, fmt.Errorf("core: checkpoint job %d references unknown organization %d", i, j.Org)
		}
		if j.Size < 1 || j.Release < 0 {
			return nil, fmt.Errorf("core: checkpoint job %d has invalid size/release", i)
		}
	}
	return inst, nil
}

// checkpointHeader fills the shared Checkpoint fields.
func checkpointHeader(name string, seed int64, now model.Time, inst *model.Instance) *Checkpoint {
	return &Checkpoint{
		Version:   CheckpointVersion,
		Algorithm: name,
		Seed:      seed,
		Now:       now,
		Orgs:      append([]model.Org(nil), inst.Orgs...),
		Jobs:      append([]model.Job(nil), inst.Jobs...),
	}
}

// policyStepper drives a single grand-coalition cluster under a
// per-decision policy — the incremental form of FromPolicy algorithms
// (DIRECTCONTR, the fair-share family, ROUNDROBIN, FCFS).
type policyStepper struct {
	name string
	seed int64
	c    *sim.Cluster
	src  *stats.Source
}

func newPolicyStepper(name string, p sim.Policy, inst *model.Instance, seed int64) *policyStepper {
	src := stats.NewSource(seed)
	return &policyStepper{
		name: name,
		seed: seed,
		c:    sim.New(inst, inst.Grand(), p, rand.New(src)),
		src:  src,
	}
}

// Name implements Stepper.
func (s *policyStepper) Name() string { return s.name }

// Instance implements Stepper.
func (s *policyStepper) Instance() *model.Instance { return s.c.Instance() }

// NextEventTime implements Stepper.
func (s *policyStepper) NextEventTime() model.Time { return s.c.NextEventTime() }

// StepNext implements Stepper.
func (s *policyStepper) StepNext(until model.Time) bool { return s.c.Step(until) }

// FinishAt implements Stepper.
func (s *policyStepper) FinishAt(t model.Time) { s.c.AdvanceTo(t) }

// Inject implements Stepper.
func (s *policyStepper) Inject(ids []int) error {
	for _, id := range ids {
		if err := s.c.Inject(id); err != nil {
			return err
		}
	}
	return nil
}

// withdrawDecision removes job id from a decision schedule, turning
// "nothing to remove" into an error: the decision schedule is the
// schedule that actually executes work, so a caller withdrawing a job
// that is not waiting there holds a stale view.
func withdrawDecision(c *sim.Cluster, name string, id int) error {
	inst := c.Instance()
	if id < 0 || id >= len(inst.Jobs) {
		return fmt.Errorf("core: %s: withdraw: job %d not in instance", name, id)
	}
	ok, err := c.Withdraw(inst.Jobs[id].Org, id)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("core: %s: withdraw: job %d is not queued (already started, finished or withdrawn)", name, id)
	}
	return nil
}

// Withdraw implements Stepper.
func (s *policyStepper) Withdraw(id int) error { return withdrawDecision(s.c, s.name, id) }

// Withdrawn implements Stepper.
func (s *policyStepper) Withdrawn() int { return s.c.WithdrawnCount() }

// Starts implements Stepper.
func (s *policyStepper) Starts() []sim.Start { return s.c.Starts() }

// ResultAt implements Stepper.
func (s *policyStepper) ResultAt(t model.Time) *Result {
	return resultFromCluster(s.name, s.c, t, nil)
}

// Capture implements Stepper.
func (s *policyStepper) Capture(now model.Time) (*Checkpoint, error) {
	cp := checkpointHeader(s.name, s.seed, now, s.c.Instance())
	cp.Clusters = []sim.ClusterState{s.c.CaptureState()}
	cp.RNG = []uint64{s.src.State()}
	if sp, ok := s.c.Policy().(sim.StatefulPolicy); ok {
		data, err := sp.CapturePolicyState()
		if err != nil {
			return nil, fmt.Errorf("core: capture policy state: %w", err)
		}
		cp.Policy = data
	}
	return cp, nil
}

// NewStepper implements StepperAlgorithm.
func (a *policyAlgorithm) NewStepper(inst *model.Instance, seed int64) Stepper {
	return newPolicyStepper(a.name, a.factory(), inst, seed)
}

// RestoreStepper implements StepperAlgorithm.
func (a *policyAlgorithm) RestoreStepper(cp *Checkpoint) (Stepper, error) {
	if cp.Algorithm != a.name {
		return nil, fmt.Errorf("core: checkpoint for %q restored as %q", cp.Algorithm, a.name)
	}
	if len(cp.Clusters) != 1 {
		return nil, fmt.Errorf("core: policy checkpoint has %d clusters, want 1", len(cp.Clusters))
	}
	inst, err := cp.RebuildInstance()
	if err != nil {
		return nil, err
	}
	s := newPolicyStepper(a.name, a.factory(), inst, cp.Seed)
	if err := s.c.RestoreState(cp.Clusters[0]); err != nil {
		return nil, err
	}
	if len(cp.RNG) > 0 {
		s.src.SetState(cp.RNG[0])
	}
	if sp, ok := s.c.Policy().(sim.StatefulPolicy); ok && len(cp.Policy) > 0 {
		if err := sp.RestorePolicyState(cp.Policy); err != nil {
			return nil, fmt.Errorf("core: restore policy state: %w", err)
		}
	}
	return s, nil
}
