package daemon

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/model"
)

// TestWorkerTakeRoundRobin pins the pipeline's batching and
// rate-limiting semantics deterministically: one queue pass serves
// every queued session at most burst requests, in round-robin order,
// and a hot session's backlog survives to later passes instead of
// starving its stripe — the "one hot session cannot starve a shard"
// guarantee, tested at the queue it is implemented in.
func TestWorkerTakeRoundRobin(t *testing.T) {
	w := &pipelineWorker{pending: make(map[string][]advanceReq)}
	enqueue := func(id string, n int) {
		if _, queued := w.pending[id]; !queued {
			w.order = append(w.order, id)
		}
		for i := 0; i < n; i++ {
			w.pending[id] = append(w.pending[id], advanceReq{sess: &Session{id: id}})
		}
	}
	enqueue("hot", 10) // a deep backlog...
	enqueue("cold", 2) // ...and a session that arrived after it

	const burst = 4
	batch := w.take(burst)
	// First pass: burst from hot, everything from cold — cold is fully
	// served while hot still has 6 queued.
	ids := func(batch []advanceReq) map[string]int {
		count := map[string]int{}
		for _, req := range batch {
			count[req.sess.ID()]++
		}
		return count
	}
	if got := ids(batch); got["hot"] != burst || got["cold"] != 2 || len(batch) != burst+2 {
		t.Fatalf("first pass served %v, want hot=%d cold=2", got, burst)
	}
	// Hot's remainder drains over the following passes; a session that
	// shows up meanwhile is served in the same pass, not behind the
	// whole backlog.
	enqueue("late", 1)
	if got := ids(w.take(burst)); got["hot"] != burst || got["late"] != 1 {
		t.Fatalf("second pass served %v, want hot=%d late=1", got, burst)
	}
	if got := ids(w.take(burst)); got["hot"] != 2 || len(got) != 1 {
		t.Fatalf("third pass served %v, want the remaining hot=2", got)
	}
	if batch := w.take(burst); len(batch) != 0 || len(w.pending) != 0 || len(w.order) != 0 {
		t.Fatalf("queue not empty after draining: batch=%d pending=%d order=%d", len(batch), len(w.pending), len(w.order))
	}
}

// TestProcessCoalescesSameSessionGroups pins the coalescing semantics
// of one queue pass deterministically, at the method that implements
// it: contiguous same-session requests are served through a single
// Session.AdvanceBatch (one lock hold, counted in Coalesced),
// interleaved singles through Advance, and every result — clocks,
// decision batches, error positions — is identical to inline
// sequential advances on twin sessions.
func TestProcessCoalescesSameSessionGroups(t *testing.T) {
	until := func(v model.Time) *model.Time { return &v }
	cfg := SessionConfig{Kind: KindSingle, Alg: "ref", Orgs: 2, Machines: 2, Seed: 7}
	newSess := func(id string) *Session {
		s, err := NewManager().Create(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var jobs []JobSubmission
		for j := 0; j < 6; j++ {
			r := model.Time(2 * j)
			jobs = append(jobs, JobSubmission{Org: j % 2, Size: 3, Release: &r})
		}
		if _, err := s.Submit(jobs); err != nil {
			t.Fatal(err)
		}
		return s
	}
	hot, cold := newSess("hot"), newSess("cold")
	hotTwin, coldTwin := newSess("hot"), newSess("cold")

	req := func(s *Session, u *model.Time) advanceReq {
		return advanceReq{sess: s, until: u, done: make(chan AdvanceResult, 1)}
	}
	// One pass as take would hand it over: a contiguous hot run (with a
	// backwards target mid-group, which must fail in place without
	// poisoning its neighbors), a cold single, a trailing hot single.
	batch := []advanceReq{
		req(hot, until(3)),
		req(hot, nil),
		req(hot, until(2)), // backwards: errors, advances nothing
		req(hot, until(9)),
		req(cold, until(4)),
		req(hot, until(12)),
	}
	p := &Pipeline{burst: DefaultBurst}
	w := &pipelineWorker{pending: make(map[string][]advanceReq)}
	p.process(w, batch)

	if st := p.Stats(); st.Advances != 6 || st.Coalesced != 4 || st.Batches != 0 {
		t.Fatalf("stats after one pass: %+v, want 6 advances with the 4-request hot run coalesced", st)
	}
	for i, r := range batch {
		res := <-r.done
		twin := hotTwin
		if r.sess == cold {
			twin = coldTwin
		}
		now, decs, err := twin.Advance(r.until)
		if (res.Err != nil) != (err != nil) || res.Now != now {
			t.Fatalf("request %d: got (now=%d, err=%v), sequential twin (now=%d, err=%v)", i, res.Now, res.Err, now, err)
		}
		if len(res.Decisions) != len(decs) {
			t.Fatalf("request %d: %d decisions vs twin's %d", i, len(res.Decisions), len(decs))
		}
		for j := range decs {
			if res.Decisions[j] != decs[j] {
				t.Fatalf("request %d decision %d: %+v vs twin's %+v", i, j, res.Decisions[j], decs[j])
			}
		}
	}
	for _, pair := range [][2]*Session{{hot, hotTwin}, {cold, coldTwin}} {
		ja, _ := json.Marshal(pair[0].State())
		jb, _ := json.Marshal(pair[1].State())
		if !bytes.Equal(ja, jb) {
			t.Fatalf("session %s diverged from its sequential twin:\n%s\n%s", pair[0].ID(), ja, jb)
		}
	}
}
