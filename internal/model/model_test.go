package model

import (
	"strings"
	"testing"
)

func twoOrgs() []Org {
	return []Org{{Name: "A", Machines: 2}, {Name: "B", Machines: 1}}
}

func TestNewInstanceSortsAndNumbers(t *testing.T) {
	in, err := NewInstance(twoOrgs(), []Job{
		{Org: 0, Release: 5, Size: 2},
		{Org: 1, Release: 0, Size: 3},
		{Org: 0, Release: 5, Size: 7}, // same release as first: must stay after it
		{Org: 0, Release: 1, Size: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rel []Time
	for _, j := range in.Jobs {
		rel = append(rel, j.Release)
	}
	want := []Time{0, 1, 5, 5}
	for i := range want {
		if rel[i] != want[i] {
			t.Fatalf("releases = %v, want %v", rel, want)
		}
	}
	// FIFO within org 0: sizes must appear 1, 2, 7.
	var sizes []Time
	for _, j := range in.Jobs {
		if j.Org == 0 {
			sizes = append(sizes, j.Size)
		}
	}
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 7 {
		t.Fatalf("org 0 FIFO order of sizes = %v", sizes)
	}
	for i, j := range in.Jobs {
		if j.ID != i {
			t.Fatalf("job %d has ID %d", i, j.ID)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		in   Instance
		want string
	}{
		{"no orgs", Instance{}, "no organizations"},
		{"no machines", Instance{Orgs: []Org{{Machines: 0}}}, "no machines"},
		{"negative machines", Instance{Orgs: []Org{{Machines: -1}}}, "negative machine"},
		{"bad org ref", Instance{
			Orgs: []Org{{Machines: 1}},
			Jobs: []Job{{ID: 0, Org: 3, Size: 1}},
		}, "unknown organization"},
		{"zero size", Instance{
			Orgs: []Org{{Machines: 1}},
			Jobs: []Job{{ID: 0, Org: 0, Size: 0}},
		}, "size"},
		{"negative release", Instance{
			Orgs: []Org{{Machines: 1}},
			Jobs: []Job{{ID: 0, Org: 0, Release: -1, Size: 1}},
		}, "negative release"},
		{"unsorted", Instance{
			Orgs: []Org{{Machines: 1}},
			Jobs: []Job{{ID: 0, Org: 0, Release: 5, Size: 1}, {ID: 1, Org: 0, Release: 2, Size: 1}},
		}, "not sorted"},
		{"bad ids", Instance{
			Orgs: []Org{{Machines: 1}},
			Jobs: []Job{{ID: 4, Org: 0, Size: 1}},
		}, "IDs must equal positions"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.in.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestAggregates(t *testing.T) {
	in := MustNewInstance(twoOrgs(), []Job{
		{Org: 0, Release: 0, Size: 4},
		{Org: 1, Release: 2, Size: 6},
		{Org: 0, Release: 9, Size: 1},
	})
	if got := in.TotalMachines(); got != 3 {
		t.Errorf("TotalMachines = %d", got)
	}
	if got := in.CoalitionMachines(Singleton(0)); got != 2 {
		t.Errorf("CoalitionMachines({0}) = %d", got)
	}
	if got := in.TotalWork(); got != 11 {
		t.Errorf("TotalWork = %d", got)
	}
	if got := in.MaxRelease(); got != 9 {
		t.Errorf("MaxRelease = %d", got)
	}
	if got := in.Horizon(); got != 20 {
		t.Errorf("Horizon = %d", got)
	}
	if got := in.Grand(); got != Grand(2) {
		t.Errorf("Grand = %v", got)
	}
	if got := in.JobsOf(0); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("JobsOf(0) = %v", got)
	}
}

func TestRestrict(t *testing.T) {
	in := MustNewInstance(twoOrgs(), []Job{
		{Org: 0, Release: 0, Size: 4},
		{Org: 1, Release: 2, Size: 6},
		{Org: 0, Release: 9, Size: 1},
	})
	sub := in.Restrict(Singleton(1))
	if sub.TotalMachines() != 1 {
		t.Errorf("restricted machines = %d", sub.TotalMachines())
	}
	if len(sub.Jobs) != 1 || sub.Jobs[0].Org != 1 {
		t.Errorf("restricted jobs = %+v", sub.Jobs)
	}
	if len(sub.Orgs) != 2 {
		t.Errorf("restriction must preserve org indexing, got %d orgs", len(sub.Orgs))
	}
	// Original untouched.
	if in.TotalMachines() != 3 || len(in.Jobs) != 3 {
		t.Error("Restrict mutated the source instance")
	}
}

func TestClone(t *testing.T) {
	in := MustNewInstance(twoOrgs(), []Job{{Org: 0, Release: 0, Size: 4}})
	cp := in.Clone()
	cp.Orgs[0].Machines = 99
	cp.Jobs[0].Size = 99
	if in.Orgs[0].Machines == 99 || in.Jobs[0].Size == 99 {
		t.Fatal("Clone shares memory with source")
	}
}
