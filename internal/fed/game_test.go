package fed_test

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fed"
	"repro/internal/model"
	"repro/internal/shapley"
)

// randFedGame draws a small federation game with random demand and
// capacity columns.
func randFedGame(r *rand.Rand, k int) *fed.Game {
	demand := make([]int64, k)
	capacity := make([]int64, k)
	for c := 0; c < k; c++ {
		demand[c] = int64(r.Intn(400))
		capacity[c] = int64(1 + r.Intn(6))
	}
	return fed.NewGame(demand, capacity)
}

// Efficiency on the federation-level game: the members' exact Shapley
// contributions sum to the grand coalition's completed-work value, at
// every instant — the paper's budget-balance axiom lifted to clusters.
func TestFedGameAxiomEfficiency(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(6000 + seed))
		k := 2 + r.Intn(5)
		g := randFedGame(r, k)
		for _, at := range []model.Time{0, 1, 17, 100, 100000} {
			phi := shapley.ExactAt(g, at)
			var sum float64
			for _, p := range phi {
				sum += p
			}
			want := float64(g.ValueAt(model.Grand(k), at))
			if math.Abs(sum-want) > 1e-9*math.Max(1, want) {
				t.Fatalf("seed %d t=%d: Σφ = %v, v(grand) = %v", seed, at, sum, want)
			}
		}
	}
}

// Symmetry on the federation-level game: two clusters with identical
// demand and capacity are interchangeable in every coalition, so their
// Shapley contributions are equal.
func TestFedGameAxiomSymmetry(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(6100 + seed))
		k := 3 + r.Intn(4)
		g := randFedGame(r, k)
		i, j := 0, 1+r.Intn(k-1)
		g.Demand[j] = g.Demand[i]
		g.Cap[j] = g.Cap[i]
		for _, at := range []model.Time{0, 5, 50, 5000} {
			phi := shapley.ExactAt(g, at)
			if math.Abs(phi[i]-phi[j]) > 1e-9 {
				t.Fatalf("seed %d t=%d: symmetric clusters differ: φ[%d]=%v φ[%d]=%v",
					seed, at, i, phi[i], j, phi[j])
			}
		}
	}
}

// Once t is large enough that every coalition could have finished its
// own demand, the game is additive and each member's contribution is
// exactly its own demand (the dummy/additivity regime).
func TestFedGameDemandBoundIsAdditive(t *testing.T) {
	r := rand.New(rand.NewSource(6200))
	g := randFedGame(r, 4)
	phi := shapley.ExactAt(g, 1<<30)
	for c := range phi {
		if math.Abs(phi[c]-float64(g.Demand[c])) > 1e-9 {
			t.Fatalf("demand-bound regime: φ[%d]=%v, demand %d", c, phi[c], g.Demand[c])
		}
	}
}

// The axioms must also hold on a game derived from a live federation's
// exchanged state, not only on synthetic columns.
func TestFedGameAxiomsOnLiveLedger(t *testing.T) {
	f, _ := buildFederation(t, []string{"directcontr"}, fed.RefPolicy{}, 23)
	if _, err := f.Step(6000); err != nil {
		t.Fatal(err)
	}
	l := f.Ledger()
	k := len(f.Members())
	demand := make([]int64, k)
	capacity := make([]int64, k)
	for c, m := range f.Members() {
		capacity[c] = m.Engine().Instance().TotalCapacity()
		for _, w := range l.RoutedWork[c] {
			demand[c] += w
		}
	}
	g := fed.NewGame(demand, capacity)
	phi := shapley.ExactAt(g, f.Now())
	var sum float64
	for _, p := range phi {
		sum += p
	}
	want := float64(g.ValueAt(model.Grand(k), f.Now()))
	if math.Abs(sum-want) > 1e-6*math.Max(1, want) {
		t.Fatalf("live ledger game: Σφ = %v, v(grand) = %v", sum, want)
	}
	if want == 0 {
		t.Fatal("live federation produced a zero-value game — scenario too small to test anything")
	}
}

// FedREF's routing rule, unit-tested on hand-built exchanges: a fresh
// federation routes home, a saturated origin offloads to the idle
// member with spare Shapley entitlement, and a single member is the
// only choice.
func TestFedRefRouteLedger(t *testing.T) {
	p := fed.RefPolicy{}
	fresh := []fed.Summary{
		{Cluster: 0, Now: 0, Capacity: 2},
		{Cluster: 1, Now: 0, Capacity: 4},
	}
	zero := [][]int64{{0, 0}, {0, 0}}
	if got := p.RouteLedger(0, 0, fresh, zero); got != 0 {
		t.Fatalf("fresh federation routed away from home (got %d)", got)
	}
	// Origin 0 (capacity 2) has been assigned 80 units of work by time
	// 10 — far beyond what it can complete — while cluster 1 (capacity
	// 4) sits idle: the coalition surplus belongs to cluster 1.
	loaded := []fed.Summary{
		{Cluster: 0, Now: 10, Capacity: 2},
		{Cluster: 1, Now: 10, Capacity: 4},
	}
	routed := [][]int64{{80, 0}, {0, 0}}
	if got := p.RouteLedger(0, 0, loaded, routed); got != 1 {
		t.Fatalf("fedref kept the job at the saturated origin (got %d)", got)
	}
	// One member: trivially home.
	if got := p.RouteLedger(0, 0, loaded[:1], [][]int64{{80}}); got != 0 {
		t.Fatalf("1-member federation routed to %d", got)
	}
}

// A 1-member federation under FedREF must reproduce single-cluster REF
// byte for byte: identical decisions, ψ and exact φ — the differential
// anchor tying the federation-level game back to the paper's
// single-cluster algorithm.
func TestOneMemberFedRefMatchesSingleClusterRef(t *testing.T) {
	assertOneMemberMatchesRef(t, fed.RefPolicy{}, 0)
}

// assertOneMemberMatchesRef runs a 1-member federation under the given
// policy/staleness and requires it to reproduce a standalone
// single-cluster REF engine byte for byte. Shared with the migration
// differential: with one member there is nowhere to migrate, so an
// enabled migration pass must be inert.
func assertOneMemberMatchesRef(t *testing.T, policy fed.Policy, staleness model.Time) {
	t.Helper()
	const horizon = 500
	r := rand.New(rand.NewSource(77))
	jobs := make([]model.Job, 60)
	for i := range jobs {
		jobs[i] = model.Job{
			Org:     r.Intn(3),
			Size:    model.Time(1 + r.Intn(9)),
			Release: model.Time(r.Intn(horizon / 2)),
		}
	}
	// Pre-sort by release so federation sequence numbers equal the
	// standalone engine's feed order.
	for i := 1; i < len(jobs); i++ {
		for j := i; j > 0 && jobs[j].Release < jobs[j-1].Release; j-- {
			jobs[j], jobs[j-1] = jobs[j-1], jobs[j]
		}
	}
	machines := []int{2, 1, 1}

	specs := []fed.ClusterSpec{{Name: "solo", Alg: core.RefAlgorithm{}, Machines: machines}}
	f, err := fed.New([]string{"o0", "o1", "o2"}, specs, policy, 5)
	if err != nil {
		t.Fatal(err)
	}
	f.SetStaleness(staleness)
	if err := f.SubmitJobs(0, jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Step(horizon); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if got := f.Ledger().Migrations; got != 0 {
		t.Fatalf("1-member federation migrated %d jobs", got)
	}

	orgs := make([]model.Org, len(machines))
	for i, m := range machines {
		orgs[i] = model.Org{Name: fmt.Sprintf("o%d", i), Machines: m}
	}
	inst, err := model.NewInstance(orgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(core.RefAlgorithm{}, inst, 5)
	if _, err := eng.Feed(jobs); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step(horizon); err != nil {
		t.Fatal(err)
	}

	fedDecs := f.Decisions()
	engDecs := eng.Decisions()
	if len(fedDecs) == 0 {
		t.Fatal("federated run made no decisions")
	}
	if len(fedDecs) != len(engDecs) {
		t.Fatalf("federation made %d decisions, single-cluster REF %d", len(fedDecs), len(engDecs))
	}
	for i := range fedDecs {
		fd, ed := fedDecs[i], engDecs[i]
		if fd.Cluster != 0 || fd.Seq != int64(ed.Job) || fd.Org != ed.Org || fd.Machine != ed.Machine || fd.At != ed.At {
			t.Fatalf("decision %d differs: federation %+v, engine %+v", i, fd, ed)
		}
	}
	fedRes := f.Members()[0].Engine().Result()
	engRes := eng.Result()
	a, err := json.Marshal(fedRes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(engRes)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("1-member FedREF result diverged from single-cluster REF:\n%s\nvs\n%s", a, b)
	}
}
