package fed

import (
	"repro/internal/bargain"
	"repro/internal/model"
)

// NBSPolicy is FedNBS: the Nash-bargaining delegation policy, the
// federation-level counterpart of the in-cluster NBS allocator. It
// values the same federation game as FedREF (members as players,
// v(S,t) = min(Σdemand, t·Σcap)) but replaces the Shapley split with
// the weighted Nash bargaining solution: each member's disagreement
// point d_c is the completed-work value it could realize alone,
// v({c},t) — opting out of the federation costs a member nothing — its
// weight is its contributed capacity, and its allocation is capped at
// t·cap_c (no member can be promised more completed work than its own
// machines could physically have ground through). The job routes to
// the member whose realized assignment lags its bargaining target the
// most,
//
//	x_c − assigned_c,
//
// with assigned_c the routed-work column sum, mirroring FedREF's
// largest-deficit rule with φ swapped for x. Because the min-structured
// game is superadditive, Σd ≤ v(grand) always holds and the solve
// never degenerates on live exchanges. Where FedREF pays O(k·2^k) (or
// samples) per routing instant, the water-filling solve is O(k²) —
// FedNBS is the tractable bargaining ablation of the same two-level
// design.
//
// Ties prefer the origin cluster, then the lowest index; a fresh
// federation (zero time, zero ledger) routes every job home, and a
// 1-member federation reproduces single-cluster behavior exactly.
type NBSPolicy struct{}

// Name implements Policy.
func (NBSPolicy) Name() string { return "fednbs" }

// Route implements Policy. Without the exchanged ledger there is no
// federation game to bargain over, so the degenerate form keeps the
// job home; the federation always calls RouteLedger.
func (NBSPolicy) Route(_, origin int, _ []Summary) int { return origin }

// RouteLedger implements LedgerPolicy.
func (NBSPolicy) RouteLedger(_, origin int, sums []Summary, routedWork [][]int64) int {
	if len(sums) <= 1 {
		return origin
	}
	g := GameFromExchange(sums, routedWork)
	t := sums[origin].Now
	k := len(sums)
	w := make([]float64, k)
	d := make([]float64, k)
	maxs := make([]float64, k)
	x := make([]float64, k)
	for c := 0; c < k; c++ {
		w[c] = float64(g.Cap[c])
		d[c] = float64(g.ValueAt(model.Singleton(c), t))
		maxs[c] = float64(t) * float64(g.Cap[c])
	}
	capacity := float64(g.ValueAt(model.Grand(k), t))
	var s bargain.Solver
	if err := s.SolveInto(x, w, d, maxs, capacity); err != nil {
		// Unreachable on a superadditive exchange; bargain from no
		// surplus if float rounding ever disagrees.
		copy(x, d)
	}
	assigned := make([]int64, k)
	for o := range routedWork {
		for c, work := range routedWork[o] {
			assigned[c] += work
		}
	}
	best, bestDeficit := origin, x[origin]-float64(assigned[origin])
	for c := range sums {
		if c == origin {
			continue
		}
		if def := x[c] - float64(assigned[c]); def > bestDeficit {
			best, bestDeficit = c, def
		}
	}
	return best
}
