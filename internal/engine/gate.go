package engine

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/metrics"
	"repro/internal/model"
)

// This file is the single-cluster admission gate: an optional
// internal/ctrl control plane in front of Feed. When installed, fed
// jobs become ArrivalEvents at their release instants and only
// admitted jobs are injected into the running schedule — rejected ones
// never reach it, deferred ones enter at the instant the policy names.
// With AlwaysAdmit and staleness 0 the gated run's decision trace is
// byte-identical to the ungated engine's (TestGateDifferential); the
// plane==nil path stays the zero-allocation hot path.

// SetAdmission installs (or, with a nil spec, removes) an admission
// gate. The gate observes the engine through a bounded-staleness
// snapshot provider built from spec.Staleness — admission decisions at
// instant t act on a load view at most that old. Configure it on a
// fresh engine, before feeding or stepping: installing a gate mid-run
// would strand already-injected jobs outside its accounting.
func (e *Engine) SetAdmission(spec *ctrl.PolicySpec) error {
	if spec == nil {
		e.plane = nil
		e.admission = nil
		e.gateProvider = nil
		return nil
	}
	policy, err := spec.Build()
	if err != nil {
		return err
	}
	cp := *spec
	e.admission = &cp
	e.gateProvider = ctrl.NewCachedSnapshotProvider(e.captureLoad, spec.Staleness)
	e.plane = ctrl.NewPlane(policy, e.gateProvider, len(e.s.Instance().Orgs))
	return nil
}

// Admission returns the installed admission spec, or nil when the gate
// is off.
func (e *Engine) Admission() *ctrl.PolicySpec { return e.admission }

// AdmissionStats returns the gate's per-organization admission
// accounting, or nil when the gate is off.
func (e *Engine) AdmissionStats() *metrics.AdmissionStats {
	if e.plane == nil {
		return nil
	}
	return e.plane.Stats()
}

// captureLoad is the engine's ctrl.CaptureFunc: the standardized load
// signal queue-depth admission reads, captured fresh.
func (e *Engine) captureLoad(model.Time) ctrl.View {
	return ctrl.View{Load: ctrl.Load{
		Waiting:  e.Waiting(),
		Capacity: e.s.Instance().TotalCapacity(),
	}}
}

// gateSink is the engine's data-plane half: admitted jobs are injected
// into the running schedule at their admission instants, preserving
// the feed-at-release discipline (an admitted job's effective release
// is the instant it cleared admission).
type gateSink struct{ e *Engine }

// Route implements ctrl.Sink.
func (s gateSink) Route(job ctrl.Job, t model.Time, _ ctrl.View) error {
	e := s.e
	inst := e.s.Instance()
	id := len(inst.Jobs)
	inst.Jobs = append(inst.Jobs, model.Job{ID: id, Org: job.Org, Size: job.Size, Release: t})
	e.gateID[0] = id
	return e.s.Inject(e.gateID[:])
}

// Refreshed implements ctrl.Sink. A single cluster has nothing to
// re-delegate on a fresh view; the refresh edge only matters to the
// federation.
func (gateSink) Refreshed(model.Time, ctrl.View) error { return nil }

// drainGate processes every pending control event at or before until.
// Control precedes data within an instant: the schedule is advanced
// only through t−1 before the plane acts at t, so a job admitted at t
// is already queued when the schedule processes instant t — exactly
// the state the ungated engine sees when the same job is fed before
// its release, which is what makes the AlwaysAdmit differential
// byte-identical. The observed view is likewise the instant-t-minus
// state: admission at t sees the backlog as t's dispatches begin, not
// after them.
func (e *Engine) drainGate(until model.Time) error {
	for {
		t, ok := e.plane.NextEventTime()
		if !ok || t > until {
			return nil
		}
		if t > e.now {
			e.advanceTo(t - 1)
		}
		if err := e.plane.Advance(t, gateSink{e}); err != nil {
			return err
		}
	}
}

// GateCheckpointVersion identifies the gated snapshot envelope layout.
const GateCheckpointVersion = 1

// gateView is the serialized snapshot-provider cache: the engine's
// observation payload is pure Load, so the view persists whole.
type gateView struct {
	TakenAt model.Time `json:"taken_at"`
	Load    ctrl.Load  `json:"load"`
}

// gatedCheckpoint is the gated engine's snapshot envelope: the control
// plane's state wrapped around the ordinary core checkpoint. The
// "gate_version" key distinguishes it from a bare core.Checkpoint —
// Restore rejects envelopes, RestoreGated requires them.
type gatedCheckpoint struct {
	GateVersion int              `json:"gate_version"`
	Admission   *ctrl.PolicySpec `json:"admission"`
	Ctrl        json.RawMessage  `json:"ctrl"`
	View        *gateView        `json:"view,omitempty"`
	Core        json.RawMessage  `json:"core"`
}

// snapshotGated wraps the core checkpoint in the control-plane
// envelope.
func (e *Engine) snapshotGated(core []byte) ([]byte, error) {
	st, err := e.plane.State()
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot gate: %w", err)
	}
	cp := gatedCheckpoint{
		GateVersion: GateCheckpointVersion,
		Admission:   e.admission,
		Ctrl:        st,
		Core:        core,
	}
	if v, ok := e.gateProvider.Cached(); ok {
		cp.View = &gateView{TakenAt: v.TakenAt, Load: v.Load}
	}
	return json.Marshal(cp)
}

// RestoreGated rebuilds a gated engine from a gated Snapshot: the core
// run resumes byte-identically and the control plane resumes with its
// pending events (including deferred retries), policy state and
// admission counters — a restore mid-round equals the uninterrupted
// run. The algorithm configuration must match the capturing one; the
// admission spec rides in the envelope.
func RestoreGated(alg core.StepperAlgorithm, data []byte) (*Engine, error) {
	var cp gatedCheckpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("engine: restore gated: %w", err)
	}
	if cp.GateVersion != GateCheckpointVersion {
		return nil, fmt.Errorf("engine: restore gated: envelope version %d, want %d", cp.GateVersion, GateCheckpointVersion)
	}
	if cp.Admission == nil || len(cp.Ctrl) == 0 {
		return nil, fmt.Errorf("engine: restore gated: envelope carries no control-plane state")
	}
	e, err := Restore(alg, cp.Core)
	if err != nil {
		return nil, err
	}
	if err := e.SetAdmission(cp.Admission); err != nil {
		return nil, fmt.Errorf("engine: restore gated: %w", err)
	}
	if err := e.plane.RestoreState(cp.Ctrl); err != nil {
		return nil, fmt.Errorf("engine: restore gated: %w", err)
	}
	if cp.View != nil {
		e.gateProvider.Prime(ctrl.View{TakenAt: cp.View.TakenAt, Load: cp.View.Load})
	}
	return e, nil
}
