// Command paperexp regenerates every table and figure of the paper's
// evaluation section (Skowron & Rzadca, SPAA 2013):
//
//	paperexp -table1            # Table 1: Δψ/p_tot, horizon 5·10⁴
//	paperexp -table2            # Table 2: Δψ/p_tot, horizon 5·10⁵
//	paperexp -fig10             # Figure 10: unfairness vs organizations
//	paperexp -fig7              # Figure 7: greedy utilization gap
//	paperexp -fig2              # Figure 2: worked utility example
//	paperexp -all               # everything above
//
// Workload families are scaled-down replicas of the archive traces by
// default (see DESIGN.md); -scale=full restores the original processor
// counts (slow). -instances controls the number of sampled sub-traces
// per cell (the paper uses 100).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/model"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "reproduce Table 1 (horizon 5e4)")
		table2    = flag.Bool("table2", false, "reproduce Table 2 (horizon 5e5)")
		fig10     = flag.Bool("fig10", false, "reproduce Figure 10 (unfairness vs #organizations)")
		fig7      = flag.Bool("fig7", false, "reproduce Figure 7 (greedy utilization gap)")
		fig2      = flag.Bool("fig2", false, "reproduce Figure 2 (worked utility example)")
		all       = flag.Bool("all", false, "reproduce everything")
		instances = flag.Int("instances", 20, "instances per cell (paper: 100)")
		samples   = flag.Int("rand-n", 15, "RAND sample count N (paper: 15 and 75)")
		seed      = flag.Int64("seed", 1, "base random seed")
		scale     = flag.String("scale", "small", "workload scale: small | full")
		maxOrgs   = flag.Int("max-orgs", 7, "largest organization count for -fig10 (paper: 10)")
		workers   = flag.Int("workers", 0, "parallel instance workers (0 = GOMAXPROCS)")
		rotate    = flag.Bool("rotate", false, "use REF's within-instant rotation mode")
		driver    = flag.String("ref-driver", "heap", "REF event loop: heap (indexed event heap) or scan (legacy full scan)")
	)
	flag.Parse()
	if !(*table1 || *table2 || *fig10 || *fig7 || *fig2 || *all) {
		flag.Usage()
		os.Exit(2)
	}
	refDriver, err := core.ParseRefDriver(*driver)
	fail(err)
	refOpts := core.RefOptions{Rotate: *rotate, Parallel: true, Driver: refDriver}
	configs := func(horizon model.Time) []exp.Config {
		var out []exp.Config
		for _, f := range gen.Families() {
			if *scale == "full" {
				f = f.Scale(gen.FullScaleFactor(f))
			}
			cfg := exp.DefaultConfig(f)
			cfg.Horizon = horizon
			cfg.Instances = *instances
			cfg.Seed = *seed
			cfg.Workers = *workers
			cfg.RefOpts = refOpts
			out = append(out, cfg)
		}
		return out
	}
	algs := exp.DefaultAlgorithms(*samples)

	if *all || *fig2 {
		r := exp.Figure2()
		fmt.Println("=== Figure 2: the strategy-proof utility ψsp on a worked schedule ===")
		fmt.Print(r.Gantt)
		fmt.Print(r.Legend)
		fmt.Printf("ψsp(O1, t=13) = %d   (paper: 262)\n", r.Psi13)
		fmt.Printf("ψsp(O1, t=14) = %d   (paper: 297)\n", r.Psi14)
		fmt.Printf("flow time(14) = %d   (paper: 70)\n\n", r.Flow14)
	}
	if *all || *fig7 {
		r := exp.Figure7()
		fmt.Println("=== Figure 7: greedy algorithms and resource utilization (T=6) ===")
		fmt.Println("O2 scheduled first:")
		fmt.Print(r.GanttO2First)
		fmt.Printf("utilization = %.2f   (paper: 1.00)\n", r.UtilizationO2First)
		fmt.Println("O1 scheduled first:")
		fmt.Print(r.GanttO1First)
		fmt.Printf("utilization = %.2f   (paper: 0.75 — the tight 3/4 bound of Theorem 6.2)\n\n", r.UtilizationO1First)
	}
	if *all || *table1 {
		t, err := exp.UnfairnessTable(configs(50000), algs)
		fail(err)
		fmt.Print(t.Render(fmt.Sprintf(
			"=== Table 1: average job delay Δψ/p_tot, horizon 5·10⁴, %d instances, scale=%s ===",
			*instances, *scale)))
		fmt.Println()
	}
	if *all || *table2 {
		t, err := exp.UnfairnessTable(configs(500000), algs)
		fail(err)
		fmt.Print(t.Render(fmt.Sprintf(
			"=== Table 2: average job delay Δψ/p_tot, horizon 5·10⁵, %d instances, scale=%s ===",
			*instances, *scale)))
		fmt.Println()
	}
	if *all || *fig10 {
		base := exp.DefaultConfig(gen.LPCEGEE())
		base.Instances = *instances
		base.Seed = *seed
		base.Workers = *workers
		base.RefOpts = refOpts
		var ks []int
		for k := 2; k <= *maxOrgs; k++ {
			ks = append(ks, k)
		}
		t, err := exp.OrgCountSweep(base, ks, algs)
		fail(err)
		fmt.Print(t.RenderSeries(fmt.Sprintf(
			"=== Figure 10: Δψ/p_tot vs number of organizations (LPC-EGEE, %d instances) ===",
			*instances)))
		fmt.Println()
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperexp:", err)
		os.Exit(1)
	}
}
