package exp

import (
	"strings"
	"testing"

	"repro/internal/gen"
)

// The federated policy table end to end at a toy budget: every policy
// row fills every metric column, the local-only row is the zero of both
// offload and unfairness, and a delegating policy must move jobs.
func TestFedPolicyTableTiny(t *testing.T) {
	cfg := DefaultFedConfig()
	cfg.Scenario.Base = cfg.Scenario.Base.Scale(0.12)
	cfg.Horizon = 2500
	cfg.Instances = 2
	cfg.Workers = 2
	table, err := FedPolicyTable(cfg, []string{"local", "leastloaded", "fairness", "fedref", "fednbs"})
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{FedMetricOffload, FedMetricValue, FedMetricDelta} {
		for _, policy := range []string{"local", "leastloaded", "fairness", "fedref", "fednbs"} {
			if table.Get(metric, policy) == nil {
				t.Fatalf("missing cell (%s, %s)", metric, policy)
			}
		}
	}
	if got := table.Get(FedMetricOffload, "local").Mean; got != 0 {
		t.Fatalf("local-only offloaded %v%%", got)
	}
	if got := table.Get(FedMetricDelta, "local").Mean; got != 0 {
		t.Fatalf("local-only unfairness vs itself is %v", got)
	}
	if got := table.Get(FedMetricOffload, "leastloaded").Mean; got == 0 {
		t.Fatal("least-loaded never offloaded on the skewed diurnal scenario")
	}
	if got := table.Get(FedMetricValue, "fedref").Mean; got <= 0 {
		t.Fatalf("fedref federation value %v", got)
	}
	if got := table.Get(FedMetricValue, "fednbs").Mean; got <= 0 {
		t.Fatalf("fednbs federation value %v", got)
	}
	out := table.Render("fed")
	for _, want := range []string{"offload%", "value", "fedref", "fednbs", "leastloaded"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

// Config validation surfaces as errors, not panics.
func TestFedPolicyTableValidation(t *testing.T) {
	cfg := DefaultFedConfig()
	cfg.Instances = 0
	if _, err := FedPolicyTable(cfg, []string{"local"}); err == nil {
		t.Error("zero instances accepted")
	}
	cfg = DefaultFedConfig()
	if _, err := FedPolicyTable(cfg, nil); err == nil {
		t.Error("empty policy list accepted")
	}
	cfg.Instances = 1
	if _, err := FedPolicyTable(cfg, []string{"bogus"}); err == nil {
		t.Error("unknown policy accepted")
	}
	cfg.Alg = "bogus"
	if _, err := FedPolicyTable(cfg, []string{"local"}); err == nil {
		t.Error("unknown member algorithm accepted")
	}
	cfg = DefaultFedConfig()
	cfg.Scenario = gen.FedScenario{}
	if _, err := FedPolicyTable(cfg, []string{"local"}); err == nil {
		t.Error("invalid scenario accepted")
	}
}
