package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bargain"
	"repro/internal/model"
	"repro/internal/sim"
)

// Nbs is Algorithm NBS: the Nash-bargaining in-cluster allocator — the
// first non-Shapley solution concept on the ContribGame layer. Where
// REF prices schedules by exact Shapley contribution over all 2^k−1
// subcoalitions, NBS needs only the k standalone schedules plus the
// pooled one: at each dispatch instant it computes per-organization
// allocation targets
//
//	x = NBS(w, d, C)
//
// with disagreement points d_i the value organization i's own machines
// realize alone (its singleton schedule — the same v({i}, t) that
// anchors REF's game), weights w_i its contributed capacity, and C the
// pooled cluster's realized value, then starts the waiting job of the
// organization with the largest target deficit x_i − ψ_i. Maintaining
// k+1 schedules instead of 2^k−1 makes NBS polynomial in the number of
// organizations — it runs where REF's FPT loop cannot.
type Nbs struct {
	inst  *model.Instance
	k     int
	grand model.Coalition
	seed  int64

	// sims[0..k-1] are the singleton schedules ({i} running alone on
	// its own machines); sims[k] is the pooled (grand) schedule, the
	// decision schedule.
	sims []*sim.Cluster

	// Per-organization NBS columns, refreshed once per dispatch
	// instant; preallocated so steady-state stepping allocates nothing.
	w, d, x, maxs []float64
	solver        bargain.Solver
}

// NewNbs builds the Nash-bargaining scheduler for the instance.
func NewNbs(inst *model.Instance) *Nbs {
	k := len(inst.Orgs)
	n := &Nbs{
		inst:  inst,
		k:     k,
		grand: model.Grand(k),
		sims:  make([]*sim.Cluster, k+1),
		w:     make([]float64, k),
		d:     make([]float64, k),
		x:     make([]float64, k),
		maxs:  make([]float64, k),
	}
	for i := 0; i < k; i++ {
		n.sims[i] = sim.New(inst, model.Singleton(i), &soloPolicy{org: i}, nil)
		n.w[i] = float64(inst.Orgs[i].Capacity())
		n.maxs[i] = math.Inf(1)
	}
	n.sims[k] = sim.New(inst, n.grand, &nbsPolicy{n: n}, nil)
	return n
}

// Name implements Stepper.
func (n *Nbs) Name() string { return "NBS" }

// Instance implements Stepper.
func (n *Nbs) Instance() *model.Instance { return n.inst }

// Starts implements Stepper: the pooled schedule is the decision
// schedule.
func (n *Nbs) Starts() []sim.Start { return n.sims[n.k].Starts() }

// Run drives the schedules to the horizon — the batch entry point is
// the stepping loop, so batch and streaming cannot diverge.
func (n *Nbs) Run(until model.Time) *Result { return runStepper(n, until) }

// NextEventTime implements Stepper.
func (n *Nbs) NextEventTime() model.Time {
	t := sim.MaxTime
	for _, c := range n.sims {
		if e := c.NextEventTime(); e < t {
			t = e
		}
	}
	return t
}

// StepNext implements Stepper: process the earliest event at or before
// until across the k+1 schedules. Singletons dispatch first — their
// values at the instant are the disagreement points the pooled
// dispatch bargains from (a job started at t has executed nothing at
// t, so the order inside the instant does not move any value).
func (n *Nbs) StepNext(until model.Time) bool {
	t := n.NextEventTime()
	if t == sim.MaxTime || t > until {
		return false
	}
	n.advanceAll(t)
	for i := 0; i < n.k; i++ {
		if n.sims[i].CanDispatch() {
			n.sims[i].Dispatch()
		}
	}
	if g := n.sims[n.k]; g.CanDispatch() {
		n.refreshTargets()
		g.Dispatch()
	}
	return true
}

// FinishAt implements Stepper.
func (n *Nbs) FinishAt(t model.Time) { n.advanceAll(t) }

func (n *Nbs) advanceAll(t model.Time) {
	for _, c := range n.sims {
		c.AdvanceTo(t)
	}
}

// refreshTargets recomputes the NBS allocation targets from the live
// schedule values; every cluster must stand at the dispatch instant.
// The game is read exactly where REF reads it: d_i = v({i}, t) from
// the singleton schedule, C = the pooled schedule's value. The pooled
// value under NBS dispatch can, in rare instances, dip below the sum
// of the standalone values (Σψ is policy-dependent); the solver
// reports that as infeasibility and the targets degrade to the
// disagreement vector — bargaining from no surplus.
func (n *Nbs) refreshTargets() {
	for i := 0; i < n.k; i++ {
		n.d[i] = float64(n.sims[i].Value())
	}
	capacity := float64(n.sims[n.k].Value())
	if err := n.solver.SolveInto(n.x, n.w, n.d, n.maxs, capacity); err != nil {
		copy(n.x, n.d)
	}
}

// ResultAt implements Stepper: Phi reports the NBS allocation targets
// at t — the solution-concept analogue of REF's Shapley vector.
func (n *Nbs) ResultAt(t model.Time) *Result {
	n.refreshTargets()
	phi := append([]float64(nil), n.x...)
	return resultFromCluster(n.Name(), n.sims[n.k], t, phi)
}

// Inject implements Stepper: register arrivals with every schedule
// (singleton clusters ignore non-member jobs, mirroring REF).
func (n *Nbs) Inject(ids []int) error {
	for _, c := range n.sims {
		for _, id := range ids {
			if err := c.Inject(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// Withdraw implements Stepper: remove the job from the pooled wait
// queue (it must still be waiting there) and, best-effort, from the
// owner's standalone schedule — a standalone schedule that already
// started the job keeps it, exactly as REF's subcoalitions do.
func (n *Nbs) Withdraw(id int) error {
	if err := withdrawDecision(n.sims[n.k], n.Name(), id); err != nil {
		return err
	}
	org := n.inst.Jobs[id].Org
	if _, err := n.sims[org].Withdraw(org, id); err != nil {
		return err
	}
	return nil
}

// Withdrawn implements Stepper.
func (n *Nbs) Withdrawn() int { return n.sims[n.k].WithdrawnCount() }

// Capture implements Stepper: one ClusterState per schedule, the k
// singletons in organization order then the pooled schedule. The NBS
// targets carry no state — they are recomputed at every dispatch
// instant before they are read.
func (n *Nbs) Capture(now model.Time) (*Checkpoint, error) {
	cp := checkpointHeader(n.Name(), n.seed, now, n.inst)
	cp.Clusters = make([]sim.ClusterState, 0, len(n.sims))
	for _, c := range n.sims {
		cp.Clusters = append(cp.Clusters, c.CaptureState())
	}
	return cp, nil
}

// soloPolicy drives a singleton schedule: the only member owns every
// waiting job, so selection is trivial (FCFS order within the
// organization comes from the cluster's own queue discipline).
type soloPolicy struct{ org int }

// Name implements sim.Policy.
func (p *soloPolicy) Name() string { return "NBS-solo" }

// Attach implements sim.Policy.
func (p *soloPolicy) Attach(*sim.View, *rand.Rand) {}

// Select implements sim.Policy.
func (p *soloPolicy) Select(model.Time, int) int { return p.org }

// nbsPolicy selects argmax(x−ψ) among the waiting organizations — the
// bargaining analogue of REF's largest-deficit rule, with the same
// deterministic low-index tie-breaking. Targets are refreshed once per
// dispatch instant (StepNext), not per machine: ψ does not move within
// an instant, so one solve serves the whole batch.
type nbsPolicy struct {
	n    *Nbs
	view *sim.View
}

// Name implements sim.Policy.
func (p *nbsPolicy) Name() string { return "NBS" }

// Attach implements sim.Policy.
func (p *nbsPolicy) Attach(v *sim.View, _ *rand.Rand) { p.view = v }

// Select implements sim.Policy.
func (p *nbsPolicy) Select(_ model.Time, _ int) int {
	best := -1
	var bestDeficit float64
	for u := 0; u < p.n.k; u++ {
		if p.view.Waiting(u) == 0 {
			continue
		}
		deficit := p.n.x[u] - float64(p.view.Psi(u))
		if best == -1 || deficit > bestDeficit {
			best, bestDeficit = u, deficit
		}
	}
	return best
}

// NbsAlgorithm adapts Nbs to the Algorithm interface (NBS is
// deterministic; the seed is recorded in checkpoints and otherwise
// ignored).
type NbsAlgorithm struct{}

// Name implements Algorithm.
func (NbsAlgorithm) Name() string { return "NBS" }

// Run implements Algorithm.
func (NbsAlgorithm) Run(inst *model.Instance, until model.Time, _ int64) *Result {
	return NewNbs(inst).Run(until)
}

// NewStepper implements StepperAlgorithm.
func (NbsAlgorithm) NewStepper(inst *model.Instance, seed int64) Stepper {
	n := NewNbs(inst)
	n.seed = seed
	return n
}

// RestoreStepper implements StepperAlgorithm: rebuild the k+1 clusters
// and overwrite each with its captured state.
func (NbsAlgorithm) RestoreStepper(cp *Checkpoint) (Stepper, error) {
	if cp.Algorithm != (NbsAlgorithm{}).Name() {
		return nil, fmt.Errorf("core: checkpoint for %q restored as NBS", cp.Algorithm)
	}
	inst, err := cp.RebuildInstance()
	if err != nil {
		return nil, err
	}
	n := NewNbs(inst)
	n.seed = cp.Seed
	if len(cp.Clusters) != len(n.sims) {
		return nil, fmt.Errorf("core: NBS checkpoint has %d clusters, want %d", len(cp.Clusters), len(n.sims))
	}
	for i, c := range n.sims {
		if err := c.RestoreState(cp.Clusters[i]); err != nil {
			return nil, err
		}
	}
	return n, nil
}
