package metrics

import "testing"

func TestDeltaPsi(t *testing.T) {
	if got := DeltaPsi([]int64{5, 3, 7}, []int64{3, 3, 10}); got != 5 {
		t.Errorf("DeltaPsi = %d, want 5", got)
	}
	if got := DeltaPsi(nil, nil); got != 0 {
		t.Errorf("empty DeltaPsi = %d", got)
	}
}

func TestDeltaPsiPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths accepted")
		}
	}()
	DeltaPsi([]int64{1}, []int64{1, 2})
}

func TestUnfairnessPerUnit(t *testing.T) {
	if got := UnfairnessPerUnit([]int64{5, 3}, []int64{3, 3}, 4); got != 0.5 {
		t.Errorf("UnfairnessPerUnit = %v", got)
	}
	if got := UnfairnessPerUnit([]int64{5}, []int64{3}, 0); got != 0 {
		t.Errorf("ptot=0 should yield 0, got %v", got)
	}
}

func TestRelativeUnfairness(t *testing.T) {
	if got := RelativeUnfairness([]int64{0, 0}, []int64{5, 5}); got != 1.0 {
		t.Errorf("RelativeUnfairness = %v", got)
	}
	if got := RelativeUnfairness([]int64{1}, []int64{0}); got != 0 {
		t.Errorf("zero norm should yield 0, got %v", got)
	}
}
