package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/baseline"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// RandSched is Algorithm RAND (Figure 6): contributions are estimated by
// sampling N permutations of the organizations; for every organization u
// and sampled permutation, the marginal value of u joining its
// predecessors is measured on simplified (FCFS) schedules of the sampled
// coalitions. For unit-size jobs the coalition value is
// schedule-independent (Proposition 5.4), making the estimate exact in
// expectation and the algorithm an FPRAS (Theorems 5.6–5.7); for general
// jobs it is the paper's strongest heuristic.
type RandSched struct {
	inst    *model.Instance
	k       int
	samples int
	grand   model.Coalition

	decision *sim.Cluster
	masks    []model.Coalition // distinct sampled masks, ascending
	clusters map[model.Coalition]*sim.Cluster
	preds    [][]model.Coalition // per org: N sampled predecessor sets
	phi      []float64
}

// NewRandSched samples the permutations with the given seed and builds
// FCFS clusters for every distinct sampled coalition (Prepare in
// Figure 6).
func NewRandSched(inst *model.Instance, samples int, seed int64) *RandSched {
	if samples < 1 {
		panic("core: RAND needs at least one sampled permutation")
	}
	k := len(inst.Orgs)
	r := &RandSched{
		inst:     inst,
		k:        k,
		samples:  samples,
		grand:    model.Grand(k),
		clusters: make(map[model.Coalition]*sim.Cluster),
		preds:    make([][]model.Coalition, k),
		phi:      make([]float64, k),
	}
	rng := stats.NewRand(seed)
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	need := make(map[model.Coalition]bool)
	for s := 0; s < samples; s++ {
		rng.Shuffle(k, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var c model.Coalition
		for _, u := range perm {
			r.preds[u] = append(r.preds[u], c)
			if !c.Empty() {
				need[c] = true
			}
			c = c.With(u)
			need[c] = true
		}
	}
	for mask := range need {
		r.masks = append(r.masks, mask)
		r.clusters[mask] = sim.New(inst, mask, baseline.NewFCFS(), nil)
	}
	sort.Slice(r.masks, func(i, j int) bool { return r.masks[i] < r.masks[j] })
	r.decision = sim.New(inst, r.grand, &randPolicy{r: r}, rng)
	return r
}

// Run drives the decision schedule and every sampled coalition schedule
// to the horizon and returns the decision schedule's result with the
// final sampled contribution estimates.
func (r *RandSched) Run(until model.Time) *Result {
	for {
		t := r.decision.NextEventTime()
		for _, mask := range r.masks {
			if e := r.clusters[mask].NextEventTime(); e < t {
				t = e
			}
		}
		if t == sim.MaxTime || t > until {
			break
		}
		for _, mask := range r.masks {
			c := r.clusters[mask]
			c.AdvanceTo(t)
			c.Dispatch()
		}
		r.decision.AdvanceTo(t)
		if r.decision.CanDispatch() {
			r.computePhi()
			r.decision.Dispatch()
		}
	}
	for _, mask := range r.masks {
		r.clusters[mask].AdvanceTo(until)
	}
	r.decision.AdvanceTo(until)
	r.computePhi()
	return resultFromCluster(r.name(), r.decision, until, append([]float64(nil), r.phi...))
}

func (r *RandSched) name() string { return fmt.Sprintf("Rand(N=%d)", r.samples) }

// value returns the sampled coalition's value at the current instant.
func (r *RandSched) value(mask model.Coalition) int64 {
	if mask.Empty() {
		return 0
	}
	return r.clusters[mask].Value()
}

// computePhi refreshes the Monte-Carlo contribution estimates:
// φ[u] = (1/N)·Σ over sampled permutations of v(pred∪{u}) − v(pred).
func (r *RandSched) computePhi() {
	for u := 0; u < r.k; u++ {
		var sum float64
		for _, pred := range r.preds[u] {
			sum += float64(r.value(pred.With(u)) - r.value(pred))
		}
		r.phi[u] = sum / float64(r.samples)
	}
}

// randPolicy drives the decision schedule: argmax(φ−ψ) among waiting
// organizations, low index on ties (SelectAndSchedule in Figure 6).
type randPolicy struct {
	r    *RandSched
	view *sim.View
}

// Name implements sim.Policy.
func (p *randPolicy) Name() string { return "RAND" }

// Attach implements sim.Policy.
func (p *randPolicy) Attach(v *sim.View, _ *rand.Rand) { p.view = v }

// Select implements sim.Policy.
func (p *randPolicy) Select(_ model.Time, _ int) int {
	best := -1
	var bestDeficit float64
	for u := 0; u < p.r.k; u++ {
		if p.view.Waiting(u) == 0 {
			continue
		}
		deficit := p.r.phi[u] - float64(p.view.Psi(u))
		if best == -1 || deficit > bestDeficit {
			best, bestDeficit = u, deficit
		}
	}
	return best
}

// RandAlgorithm adapts RandSched to the Algorithm interface.
type RandAlgorithm struct{ Samples int }

// Name implements Algorithm.
func (a RandAlgorithm) Name() string { return fmt.Sprintf("Rand(N=%d)", a.Samples) }

// Run implements Algorithm.
func (a RandAlgorithm) Run(inst *model.Instance, until model.Time, seed int64) *Result {
	return NewRandSched(inst, a.Samples, seed).Run(until)
}
