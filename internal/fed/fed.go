// Package fed federates several member clusters into one scheduling
// system, extending the paper's single-cluster fairness model in the
// direction of its follow-up, "Fair non-monetary scheduling in
// federated clouds" (Pacholczyk & Rzadca): independent clusters — each
// running its own scheduling algorithm on its own machines — offload
// jobs to each other, and fairness is accounted both per cluster and
// federation-wide.
//
// The model: the federation has a fixed universe of organizations. Each
// member cluster contributes machines on behalf of those organizations
// (a [cluster][org] machine grid; zero entries are fine) and runs one
// core.StepperAlgorithm over its own machines through an
// internal/engine.Engine. Jobs are submitted at an origin cluster —
// the site where the owning organization hands them in — and at each
// release instant a pluggable delegation Policy inspects the current
// per-cluster Summaries (queue backlog, capacity, exchanged ψ/φ
// vectors) and picks the cluster that executes the job. A job that has
// started never moves (engines are non-preemptive), but a *queued* job
// can: under a MigratingPolicy, each staleness-delimited exchange
// refresh re-scores every still-queued job on the freshly gossiped
// view and migrates up to a per-round budget of them to strictly
// better members (engine-level queue withdrawal + re-feed, re-pointed
// in the ledger).
//
// All member engines advance in lockstep: Federation.Step(until) moves
// every cluster through the same sequence of release instants, so a
// federated run is a pure function of (member configurations, policy,
// seed, submission sequence) — byte-identical across reruns and across
// Snapshot/Restore (see TestFederationDeterminism).
//
// Two scale knobs leave that function untouched. SetWorkers fans member
// stepping and summary capture out across goroutines — between routing
// instants the engines share nothing, and results merge in
// configuration order, so the worker count never changes an output byte
// (parallel.go). SetSource replaces the materialized pending queue with
// a bounded lookahead window pulled on demand from a JobSource
// (source.go), so replay memory is O(window) in the trace length;
// checkpoints persist only the stream cursor and restore resumes
// mid-stream against a re-opened source.
//
// The Ledger records every routing decision and aggregates per-cluster
// ψ-vectors into federation-wide totals, so the existing
// internal/metrics unfairness measures (Δψ, Δψ/p_tot) apply unchanged
// at either level.
package fed

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
)

// Pending is one job accepted by the federation but not yet released
// (and therefore not yet routed). Size is carried for feeding the
// executing engine; delegation policies never see it — routing is as
// non-clairvoyant as scheduling.
type Pending struct {
	Seq     int64      `json:"seq"`
	Cluster int        `json:"cluster"` // origin (submitting) cluster
	Org     int        `json:"org"`
	Size    model.Time `json:"size"`
	Release model.Time `json:"release"`
}

// Decision is one federated scheduling decision: the job (by federation
// sequence number) started on a machine of the executing cluster.
type Decision struct {
	Seq     int64      `json:"seq"`
	Org     int        `json:"org"`
	Cluster int        `json:"cluster"`
	Machine int        `json:"machine"`
	At      model.Time `json:"at"`
}

// ClusterSpec is the static configuration of one member cluster: its
// name, the algorithm it schedules with, and the machines each
// federation organization contributes at this site (indexed by the
// federation's organization universe; zero entries allowed).
type ClusterSpec struct {
	Name     string
	Alg      core.StepperAlgorithm
	Machines []int
}

// Member is one live member cluster.
type Member struct {
	name     string
	eng      *engine.Engine
	seqOf    []int64 // cluster-local job ID -> federation sequence number; -1 = withdrawn
	originOf []int   // cluster-local job ID -> origin (submitting) cluster; -1 = withdrawn
}

// setSeq records the federation identity of a freshly fed local job.
func (m *Member) setSeq(id int, seq int64, origin int) {
	for len(m.seqOf) <= id {
		m.seqOf = append(m.seqOf, -1)
		m.originOf = append(m.originOf, -1)
	}
	m.seqOf[id] = seq
	m.originOf[id] = origin
}

// Name returns the member's configured name.
func (m *Member) Name() string { return m.name }

// Engine returns the member's scheduling engine. Callers must not feed
// or step it directly — the federation drives all members in lockstep.
func (m *Member) Engine() *engine.Engine { return m.eng }

// Federation drives N member clusters in lockstep under one delegation
// policy. Like engines, federations are single-goroutine objects: the
// caller (the daemon's session lock, a test) serializes access.
type Federation struct {
	orgs     []string
	members  []*Member
	policy   Policy
	seed     int64
	now      model.Time
	nextSeq  int64
	pending  []Pending // sorted by (Release, Seq) once sortPending runs
	decs     []Decision
	reported int
	ledger   *Ledger

	// pendingDirty marks the pending queue as needing a (Release, Seq)
	// sort: Submit and the streaming pull both append in O(1) and the
	// sort happens once per read point, so bulk submission is O(n log n)
	// total instead of the old shift-insert's O(n²).
	pendingDirty bool

	// workers is the data-plane fan-out width (see SetWorkers); <= 1 is
	// the sequential path. stepStarts/stepErrs are the fan-out's
	// per-member scratch slots, reused across advance calls.
	workers    int
	stepStarts [][]sim.Start
	stepErrs   []error

	// Streaming ingestion state (see SetSource). source == nil is the
	// materialized mode: every job arrives through Submit. With a source
	// attached the pending queue is a bounded lookahead window over the
	// stream; srcCursor counts consumed jobs (the checkpoint's resume
	// point), srcLast enforces the nondecreasing-release contract, and
	// srcErr pins the first pull failure (stepping past an unknowable
	// stream suffix would fabricate a different workload). srcNeeded is
	// set by Restore when the checkpoint recorded a live source: the
	// federation refuses to step until SetSource re-attaches one.
	source    JobSource
	srcWindow int
	srcCursor int64
	srcDone   bool
	srcLast   model.Time
	srcErr    error
	srcNeeded bool

	// provider is the staleness contract for every observation routing
	// and admission act on: with max age 0 (the default, the idealized
	// lockstep model) the exchange snapshot — member summaries plus the
	// routed-work matrix — is captured fresh at every decision instant;
	// with max age Δt > 0 the cached snapshot is reused until it is at
	// least Δt old, modeling periodic gossip. The cache is part of the
	// deterministic state and rides in checkpoints.
	provider *ctrl.CachedSnapshotProvider

	// Optional admission control plane. When nil (the default), releases
	// route directly — the pre-control-plane data path, kept verbatim.
	// When set, every release decomposes into prioritized
	// arrival→admission→routing events driven through the plane, and
	// only admitted jobs reach the members.
	plane     *ctrl.Plane
	admission *ctrl.PolicySpec
}

// exchange is the federation's observation payload: what one summary
// gossip carries. It rides in ctrl.View.Payload and, for checkpoints,
// in the ExSums/ExRouted fields.
type exchange struct {
	Sums   []Summary
	Routed [][]int64
}

// captureExchange is the federation's ctrl.CaptureFunc: a fresh
// observation of every member at instant t. The routed-work matrix is
// copied only for ledger-aware policies — everyone else never reads it.
func (f *Federation) captureExchange(model.Time) ctrl.View {
	ex := &exchange{Sums: f.summaries()}
	if usesLedger(f.policy) {
		ex.Routed = f.routedWorkCopy()
	}
	return ctrl.View{Load: loadOf(ex.Sums), Payload: ex}
}

// loadOf aggregates member summaries into the standardized load signal
// queue-depth admission policies read.
func loadOf(sums []Summary) ctrl.Load {
	var l ctrl.Load
	for _, s := range sums {
		l.Waiting += s.Waiting
		l.Capacity += s.Capacity
	}
	return l
}

// New builds a federation over the given organization universe. Each
// spec's Machines has one entry per organization; every cluster needs
// at least one machine in total. seed derives each member engine's
// seed, so two federations built from the same inputs are identical.
func New(orgs []string, specs []ClusterSpec, policy Policy, seed int64) (*Federation, error) {
	if len(orgs) == 0 {
		return nil, fmt.Errorf("fed: no organizations")
	}
	if len(orgs) > model.MaxOrgs {
		return nil, fmt.Errorf("fed: %d organizations exceed the maximum of %d", len(orgs), model.MaxOrgs)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("fed: no member clusters")
	}
	if policy == nil {
		return nil, fmt.Errorf("fed: nil delegation policy")
	}
	f := &Federation{
		orgs:   append([]string(nil), orgs...),
		policy: policy,
		seed:   seed,
		ledger: newLedger(len(specs), len(orgs)),
	}
	f.provider = ctrl.NewCachedSnapshotProvider(f.captureExchange, 0)
	for i, spec := range specs {
		if spec.Alg == nil {
			return nil, fmt.Errorf("fed: cluster %d (%s) has no algorithm", i, spec.Name)
		}
		if len(spec.Machines) != len(orgs) {
			return nil, fmt.Errorf("fed: cluster %d (%s) has %d machine entries for %d organizations",
				i, spec.Name, len(spec.Machines), len(orgs))
		}
		orgList := make([]model.Org, len(orgs))
		total := 0
		for o, name := range orgs {
			if spec.Machines[o] < 0 {
				return nil, fmt.Errorf("fed: cluster %d (%s) has negative machine count for %s", i, spec.Name, name)
			}
			orgList[o] = model.Org{Name: name, Machines: spec.Machines[o]}
			total += spec.Machines[o]
		}
		if total == 0 {
			return nil, fmt.Errorf("fed: cluster %d (%s) has no machines", i, spec.Name)
		}
		inst, err := model.NewInstance(orgList, nil)
		if err != nil {
			return nil, fmt.Errorf("fed: cluster %d (%s): %w", i, spec.Name, err)
		}
		f.members = append(f.members, &Member{
			name: spec.Name,
			eng:  engine.New(spec.Alg, inst, memberSeed(seed, i)),
		})
	}
	return f, nil
}

// memberSeed derives member i's engine seed from the federation seed —
// a SplitMix64-style mix so member streams are decorrelated but fully
// determined by (seed, i).
func memberSeed(seed int64, i int) int64 {
	x := uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return int64(x)
}

// Orgs returns the federation's organization names.
func (f *Federation) Orgs() []string { return f.orgs }

// Members returns the member clusters in configuration order.
func (f *Federation) Members() []*Member { return f.members }

// Policy returns the delegation policy.
func (f *Federation) Policy() Policy { return f.policy }

// Staleness returns the summary-gossip staleness Δt (0 = fresh
// summaries at every release instant).
func (f *Federation) Staleness() model.Time { return f.provider.MaxAge() }

// SetStaleness configures the summary-gossip staleness Δt: member
// summaries (and the exchanged routed-work matrix) refresh only when
// the cached snapshot is at least Δt old, instead of at every release
// instant. Δt ≤ 0 restores the idealized always-fresh exchange.
// Configure it before stepping; changing it mid-run invalidates the
// cached snapshot. It is sugar for SnapshotProvider().SetMaxAge — the
// one staleness contract both routing and admission observe through.
func (f *Federation) SetStaleness(dt model.Time) { f.provider.SetMaxAge(dt) }

// SnapshotProvider returns the bounded-staleness provider every
// routing and admission decision observes the federation through.
func (f *Federation) SnapshotProvider() *ctrl.CachedSnapshotProvider { return f.provider }

// SetAdmission installs (or, with a nil spec, removes) an admission
// control plane: releases then decompose into prioritized
// arrival → admission → routing events, and only admitted jobs reach
// the members — rejected ones leave the system, deferred ones retry at
// the instant the policy names. The plane observes the federation
// through the same bounded-staleness provider routing uses. Configure
// it before stepping: installing a plane mid-run would strand jobs
// already routed outside its accounting.
func (f *Federation) SetAdmission(spec *ctrl.PolicySpec) error {
	if spec == nil {
		f.plane = nil
		f.admission = nil
		return nil
	}
	policy, err := spec.Build()
	if err != nil {
		return err
	}
	cp := *spec
	f.admission = &cp
	f.plane = ctrl.NewPlane(policy, f.provider, len(f.orgs))
	return nil
}

// Admission returns the installed admission spec, or nil when the
// control plane is off.
func (f *Federation) Admission() *ctrl.PolicySpec { return f.admission }

// AdmissionStats returns the control plane's per-organization
// admission accounting, or nil when the plane is off.
func (f *Federation) AdmissionStats() *metrics.AdmissionStats {
	if f.plane == nil {
		return nil
	}
	return f.plane.Stats()
}

// Now returns the federation clock: the instant of the last Step.
func (f *Federation) Now() model.Time { return f.now }

// Seed returns the federation's seed.
func (f *Federation) Seed() int64 { return f.seed }

// PendingCount returns the number of accepted-but-unreleased jobs.
func (f *Federation) PendingCount() int { return len(f.pending) }

// Submitted returns the number of jobs accepted so far.
func (f *Federation) Submitted() int64 { return f.nextSeq }

// Submit accepts one job at the origin cluster and returns its
// federation sequence number. The job must name a valid origin and
// organization, have size ≥ 1, and be released no earlier than the
// federation clock. It stays pending until its release instant, when
// the delegation policy routes it to the executing cluster.
func (f *Federation) Submit(origin, org int, size, release model.Time) (int64, error) {
	if origin < 0 || origin >= len(f.members) {
		return 0, fmt.Errorf("fed: submit: unknown cluster %d", origin)
	}
	if org < 0 || org >= len(f.orgs) {
		return 0, fmt.Errorf("fed: submit: unknown organization %d", org)
	}
	if size < 1 {
		return 0, fmt.Errorf("fed: submit: job size %d; sizes must be >= 1", size)
	}
	if release < f.now {
		return 0, fmt.Errorf("fed: submit: release %d before federation time %d", release, f.now)
	}
	p := Pending{Seq: f.nextSeq, Cluster: origin, Org: org, Size: size, Release: release}
	f.nextSeq++
	f.appendPending(p)
	f.ledger.Submitted++
	return p.Seq, nil
}

// SubmitJobs accepts a batch of jobs at one origin cluster (Job.ID is
// ignored; Release/Size/Org are used). A convenience for feeding
// generated workloads — see internal/gen.FedScenario.
func (f *Federation) SubmitJobs(origin int, jobs []model.Job) error {
	for _, j := range jobs {
		if _, err := f.Submit(origin, j.Org, j.Size, j.Release); err != nil {
			return err
		}
	}
	return nil
}

// appendPending enqueues one accepted job in O(1), marking the queue
// for a lazy sort when the append breaks (Release, Seq) order. The old
// shift-insert paid an O(n) copy per out-of-order submission — O(n²)
// for bulk per-cluster sorted streams, whose interleaving is almost
// never globally sorted.
func (f *Federation) appendPending(p Pending) {
	if n := len(f.pending); n > 0 && !f.pendingDirty {
		q := f.pending[n-1]
		if p.Release < q.Release || (p.Release == q.Release && p.Seq < q.Seq) {
			f.pendingDirty = true
		}
	}
	f.pending = append(f.pending, p)
}

// sortPending restores the (Release, Seq) order every read point
// assumes. Sequence numbers are unique, so the order is total.
func (f *Federation) sortPending() {
	if !f.pendingDirty {
		return
	}
	// slices.SortFunc, not sort.Slice: the closure-through-interface
	// path allocates on every dirty sort, which the control-plane
	// allocation gate (BENCH_8.json) holds this path to zero against.
	slices.SortFunc(f.pending, func(a, b Pending) int {
		if c := cmp.Compare(a.Release, b.Release); c != 0 {
			return c
		}
		return cmp.Compare(a.Seq, b.Seq)
	})
	f.pendingDirty = false
}

// NextEventTime returns the earliest instant at which anything can
// happen: the next pending release (pulling from an attached source if
// the window is empty) or the earliest member event, or sim.MaxTime
// when the federation is drained. A source pull failure here surfaces
// at the next Step — the error is sticky.
func (f *Federation) NextEventTime() model.Time {
	_ = f.fill()
	f.sortPending()
	next := sim.MaxTime
	if len(f.pending) > 0 {
		next = f.pending[0].Release
	}
	if f.plane != nil {
		if t, ok := f.plane.NextEventTime(); ok && t < next {
			next = t
		}
	}
	for _, m := range f.members {
		if t := m.eng.NextEventTime(); t < next {
			next = t
		}
	}
	return next
}

// Step advances the federation to exactly `until`. Members move in
// lockstep through every pending release instant at or before `until`:
// the engines first advance to the instant, the policy then routes the
// releases using fresh per-cluster summaries, the routed jobs are fed
// to their executing engines and dispatched, and the loop continues.
// It returns the federated scheduling decisions made since the
// previous Step (or since Restore).
//
// The returned slice aliases the federation's decision log — the same
// read-only contract engine.Step documents: it is valid until the next
// mutating call and must not be modified. Callers that keep decisions
// across steps copy what they need (the daemon's wire conversion
// already does); the steady-state hot path allocates nothing.
func (f *Federation) Step(until model.Time) ([]Decision, error) {
	if until < f.now {
		return nil, fmt.Errorf("fed: step to %d before federation time %d", until, f.now)
	}
	if f.srcNeeded && !f.srcDone {
		// A drained source (srcDone) needs no re-attachment: the stream
		// has nothing left to pull and stepping is safe without it.
		return nil, fmt.Errorf("%w: restored at source cursor %d; attach the source with SetSource before stepping", ErrNoSource, f.srcCursor)
	}
	if f.plane != nil {
		if err := f.stepPlane(until); err != nil {
			return nil, err
		}
	} else if err := f.stepDirect(until); err != nil {
		return nil, err
	}
	if err := f.advanceMembers(until); err != nil {
		return nil, err
	}
	f.now = until
	fresh := f.decs[f.reported:]
	f.reported = len(f.decs)
	return fresh, nil
}

// stepDirect is the plane-off release loop — the pre-control-plane data
// path, kept verbatim: every release is admitted implicitly and routed
// at its release instant.
func (f *Federation) stepDirect(until model.Time) error {
	for {
		if err := f.fill(); err != nil {
			return err
		}
		f.sortPending()
		if len(f.pending) == 0 || f.pending[0].Release > until {
			return nil
		}
		t := f.pending[0].Release
		// Batch completeness: with a streaming source attached, every job
		// releasing at t must be resident before the instant routes, or
		// the window size would split one exchange-frozen batch in two.
		if err := f.fillThrough(t); err != nil {
			return err
		}
		f.sortPending()
		if err := f.advanceMembers(t); err != nil {
			return err
		}
		n := 0
		for n < len(f.pending) && f.pending[n].Release == t {
			n++
		}
		batch := f.pending[:n]
		sums, routed, refreshed := f.exchangeAt(t)
		// A fresh exchange is the migration trigger: queued jobs are
		// re-scored on the newly gossiped view before the instant's
		// releases route on the same view.
		if refreshed {
			if err := f.redelegate(t, sums, routed); err != nil {
				return err
			}
		}
		// Policies are pure functions of (org, origin, exchange), and
		// the exchange is frozen for the whole batch, so same-instant
		// jobs with the same owner and origin route identically — one
		// policy evaluation covers the burst (FedREF's exact Shapley
		// pass is the expensive case this saves).
		var memo map[[2]int]int
		if n > 1 {
			memo = make(map[[2]int]int, n)
		}
		for _, p := range batch {
			key := [2]int{p.Org, p.Cluster}
			target, seen := memo[key]
			if !seen {
				target = f.route(p, sums, routed)
				if memo != nil {
					memo[key] = target
				}
			}
			if target < 0 || target >= len(f.members) {
				return fmt.Errorf("fed: policy %q routed job %d to unknown cluster %d",
					f.policy.Name(), p.Seq, target)
			}
			m := f.members[target]
			ids, err := m.eng.Feed([]model.Job{{Org: p.Org, Size: p.Size, Release: t}})
			if err != nil {
				return fmt.Errorf("fed: feed cluster %d (%s): %w", target, m.name, err)
			}
			m.setSeq(ids[0], p.Seq, p.Cluster)
			f.ledger.route(p, target)
		}
		f.pending = append(f.pending[:0], f.pending[n:]...)
		// Same-instant dispatch of the freshly routed releases.
		if err := f.advanceMembers(t); err != nil {
			return err
		}
		f.now = t
	}
}

// stepPlane is the plane-on release loop: pending releases enter the
// control plane as ArrivalEvents at their release instants, and the
// plane drives the arrival → admission → routing decomposition in
// (timestamp, priority, seqID) order — deferred admissions wake the
// loop at their retry instants even when no release is due. Members
// advance to each decision instant before the plane acts, exactly as
// the direct path advances them before routing a batch, so with
// AlwaysAdmit and staleness 0 the two paths are byte-identical
// (TestControlPlaneDifferential).
func (f *Federation) stepPlane(until model.Time) error {
	sink := &fedSink{f: f}
	for {
		if err := f.fill(); err != nil {
			return err
		}
		f.sortPending()
		t := sim.MaxTime
		if len(f.pending) > 0 {
			t = f.pending[0].Release
		}
		if pt, ok := f.plane.NextEventTime(); ok && pt < t {
			t = pt
		}
		if t > until {
			return nil
		}
		// Batch completeness, as in the direct path: the whole release
		// burst at t must enter the plane before it advances.
		if err := f.fillThrough(t); err != nil {
			return err
		}
		f.sortPending()
		if err := f.advanceMembers(t); err != nil {
			return err
		}
		n := 0
		for n < len(f.pending) && f.pending[n].Release == t {
			p := f.pending[n]
			f.plane.Arrive(ctrl.Job{Seq: p.Seq, Org: p.Org, Origin: p.Cluster, Size: p.Size, Release: p.Release}, t)
			n++
		}
		f.pending = append(f.pending[:0], f.pending[n:]...)
		if err := f.plane.Advance(t, sink); err != nil {
			return err
		}
		// Same-instant dispatch of the freshly routed admissions.
		if err := f.advanceMembers(t); err != nil {
			return err
		}
		f.now = t
	}
}

// fedSink is the federation's data-plane half: the control plane hands
// it admitted jobs to route and snapshot-refresh edges to re-delegate
// on.
type fedSink struct {
	f      *Federation
	memoAt model.Time
	memoOK bool
	memo   map[[2]int]int
}

// Refreshed fires the queued-job migration pass on each fresh exchange,
// exactly where the direct path fires it: before any of the instant's
// routing decisions act on the new view.
func (s *fedSink) Refreshed(t model.Time, view ctrl.View) error {
	ex := view.Payload.(*exchange)
	return s.f.redelegate(t, ex.Sums, ex.Routed)
}

// Route feeds one admitted job to the cluster the delegation policy
// picks. Policies are pure functions of (org, origin, exchange) and the
// exchange is frozen per instant, so evaluations are memoized per
// (instant, org, origin) — the same burst-collapsing the direct path's
// batch memo does.
func (s *fedSink) Route(job ctrl.Job, t model.Time, view ctrl.View) error {
	f := s.f
	ex := view.Payload.(*exchange)
	if !s.memoOK || s.memoAt != t {
		s.memo, s.memoAt, s.memoOK = nil, t, true
	}
	p := Pending{Seq: job.Seq, Cluster: job.Origin, Org: job.Org, Size: job.Size, Release: job.Release}
	key := [2]int{p.Org, p.Cluster}
	target, seen := s.memo[key]
	if !seen {
		target = f.route(p, ex.Sums, ex.Routed)
		if s.memo == nil {
			s.memo = make(map[[2]int]int)
		}
		s.memo[key] = target
	}
	if target < 0 || target >= len(f.members) {
		return fmt.Errorf("fed: policy %q routed job %d to unknown cluster %d",
			f.policy.Name(), p.Seq, target)
	}
	m := f.members[target]
	ids, err := m.eng.Feed([]model.Job{{Org: p.Org, Size: p.Size, Release: t}})
	if err != nil {
		return fmt.Errorf("fed: feed cluster %d (%s): %w", target, m.name, err)
	}
	m.setSeq(ids[0], p.Seq, p.Cluster)
	f.ledger.route(p, target)
	return nil
}

// StepToNextEvent advances to the next pending event instant, if one
// exists, and returns its decisions. The second result reports whether
// an event existed.
func (f *Federation) StepToNextEvent() ([]Decision, bool, error) {
	t := f.NextEventTime()
	if t == sim.MaxTime {
		return nil, false, nil
	}
	decs, err := f.Step(t)
	return decs, true, err
}

// advanceMembers steps every member engine to t and folds their fresh
// starts into the federated decision log in configuration order. With
// workers > 1 the engines advance concurrently (they share no mutable
// state between routing instants) and the merge preserves the exact
// sequential order — see parallel.go for the determinism argument.
func (f *Federation) advanceMembers(t model.Time) error {
	if f.workers > 1 && len(f.members) > 1 {
		return f.advanceMembersParallel(t)
	}
	for c, m := range f.members {
		starts, err := m.eng.Step(t)
		if err != nil {
			return fmt.Errorf("fed: advance cluster %d (%s): %w", c, m.name, err)
		}
		for _, s := range starts {
			f.decs = append(f.decs, Decision{
				Seq: m.seqOf[s.Job], Org: s.Org, Cluster: c, Machine: s.Machine, At: s.At,
			})
		}
	}
	return nil
}

// Decisions returns the full federated decision log so far.
func (f *Federation) Decisions() []Decision { return f.decs }

// route asks the policy for one job's executing cluster, through the
// ledger-aware entry point when the policy reads federation-level
// accounting (FedREF) and the plain one otherwise.
func (f *Federation) route(p Pending, sums []Summary, routed [][]int64) int {
	if lp, ok := f.policy.(LedgerPolicy); ok {
		return lp.RouteLedger(p.Org, p.Cluster, sums, routed)
	}
	return f.policy.Route(p.Org, p.Cluster, sums)
}

// exchangeAt returns the exchange snapshot the policy routes on at
// instant t, observed through the bounded-staleness provider: fresh at
// every call when staleness is 0, otherwise the cached snapshot,
// refreshed once it is at least Δt old. The snapshot is taken before
// the instant's batch is routed, so every job in a batch routes on the
// same view. The third result reports whether this call took a fresh
// snapshot — the staleness-delimited "gossip arrived" edge the
// migration pass fires on (with staleness 0 every routing instant is
// such an edge).
func (f *Federation) exchangeAt(t model.Time) ([]Summary, [][]int64, bool) {
	view, refreshed := f.provider.Observe(t)
	ex := view.Payload.(*exchange)
	return ex.Sums, ex.Routed, refreshed
}

// redelegate is the migration pass: fired at each exchange refresh, it
// re-scores every still-queued routed job under the delegation policy
// — the job's current holder playing the origin role, so the policies'
// origin-preferring tie-breaks make "stay" the default — and migrates
// it when the policy now picks a different (strictly better) member:
// the queued job is withdrawn from its holder's engine, re-fed to the
// new member at the current instant, and re-pointed in the ledger. At
// most budget jobs move per refresh, in deterministic (member, local
// job ID) order.
//
// The whole pass scores against the one frozen exchange snapshot —
// migrations do not update the view mid-round, exactly as routing a
// same-instant batch doesn't. The budget is what bounds the herd a
// stale view could otherwise stampede.
func (f *Federation) redelegate(t model.Time, sums []Summary, routed [][]int64) error {
	mp, ok := f.policy.(MigratingPolicy)
	if !ok {
		return nil
	}
	budget := mp.MigrationBudget()
	if budget <= 0 || len(f.members) <= 1 {
		return nil
	}
	// Snapshot the queued candidates before moving anything: a job
	// migrated this round must not be re-scored at its new home within
	// the same round.
	type candidate struct{ cluster, id int }
	var cands []candidate
	for c, m := range f.members {
		jobs := m.eng.Instance().Jobs
		started := make([]bool, len(jobs))
		for _, s := range m.eng.Decisions() {
			started[s.Job] = true
		}
		for id, seq := range m.seqOf {
			if seq >= 0 && !started[id] {
				cands = append(cands, candidate{c, id})
			}
		}
	}
	moved := 0
	// The exchange is frozen for the whole pass, so scoring is a pure
	// function of (org, holder) — one policy evaluation covers every
	// queued job of the same owner at the same cluster (FedREF's exact
	// Shapley pass is the expensive case this saves, exactly as the
	// batch-routing memo below).
	memo := make(map[[2]int]int)
	for _, cand := range cands {
		if moved >= budget {
			break
		}
		m := f.members[cand.cluster]
		job := m.eng.Instance().Jobs[cand.id]
		key := [2]int{job.Org, cand.cluster}
		target, seen := memo[key]
		if !seen {
			target = f.route(Pending{Org: job.Org, Cluster: cand.cluster}, sums, routed)
			memo[key] = target
		}
		if target == cand.cluster {
			continue
		}
		if target < 0 || target >= len(f.members) {
			return fmt.Errorf("fed: policy %q migrated a job of organization %d to unknown cluster %d",
				f.policy.Name(), job.Org, target)
		}
		if err := m.eng.Withdraw(cand.id); err != nil {
			return fmt.Errorf("fed: withdraw from cluster %d (%s): %w", cand.cluster, m.name, err)
		}
		seq, origin := m.seqOf[cand.id], m.originOf[cand.id]
		m.seqOf[cand.id], m.originOf[cand.id] = -1, -1
		tm := f.members[target]
		ids, err := tm.eng.Feed([]model.Job{{Org: job.Org, Size: job.Size, Release: t}})
		if err != nil {
			return fmt.Errorf("fed: migrate to cluster %d (%s): %w", target, tm.name, err)
		}
		tm.setSeq(ids[0], seq, origin)
		f.ledger.migrate(origin, cand.cluster, target, int64(job.Size))
		moved++
	}
	return nil
}

// routedWorkCopy snapshots the ledger's routed-work matrix, so the
// exchange stays frozen while routing appends to the live ledger.
func (f *Federation) routedWorkCopy() [][]int64 {
	out := make([][]int64, len(f.ledger.RoutedWork))
	for i, row := range f.ledger.RoutedWork {
		out[i] = append([]int64(nil), row...)
	}
	return out
}

// summaries exports every member's Summary at the current lockstep
// instant. Engines stand exactly at the routing instant, so the
// exchanged ψ/φ vectors are the values a real federation peer would
// have just gossiped. Capture fans out on the worker pool — Result()
// is the expensive per-member call (REF members compute Shapley values
// here), each touches only its own engine, and the slots are indexed
// by member, so the exchange is worker-count invariant too.
func (f *Federation) summaries() []Summary {
	sums := make([]Summary, len(f.members))
	// The sequential branch calls summarizeRange directly: routing the
	// width-1 case through forEachMember would heap-allocate the closure
	// on every exchange capture, which the control-plane allocation gate
	// (BENCH_8.json) forbids.
	if f.workers <= 1 {
		f.summarizeRange(sums, 0, len(f.members))
		return sums
	}
	f.forEachMember(func(lo, hi int) { f.summarizeRange(sums, lo, hi) })
	return sums
}

func (f *Federation) summarizeRange(sums []Summary, lo, hi int) {
	for i := lo; i < hi; i++ {
		m := f.members[i]
		res := m.eng.Result()
		inst := m.eng.Instance()
		orgCap := make([]int64, len(inst.Orgs))
		for o := range inst.Orgs {
			orgCap[o] = inst.Orgs[o].Capacity()
		}
		sums[i] = Summary{
			Cluster:     i,
			Now:         m.eng.Now(),
			Waiting:     m.eng.Waiting(),
			Capacity:    inst.TotalCapacity(),
			OrgCapacity: orgCap,
			Psi:         res.Psi,
			Phi:         res.Phi,
			Value:       res.Value,
			Executed:    res.Ptot,
			Utilization: res.Utilization,
		}
	}
}

// Ledger returns the federation ledger with the per-cluster accounting
// columns (ψ, value, executed units) refreshed from the live engines at
// the current clock.
func (f *Federation) Ledger() *Ledger {
	f.ledger.sync(f)
	return f.ledger
}

// CheckConservation verifies the federation's bookkeeping invariants:
// every accepted job is either still pending or held by exactly one
// cluster (a migrated job leaves only a tombstone behind), routing
// counts match fed counts net of migrations, sequence numbers map
// one-to-one across live jobs, and the ledger's federation-wide totals
// equal the sums of the members' own accounting. It is the executable
// statement of "no job is lost or duplicated under delegation or
// migration".
func (f *Federation) CheckConservation() error {
	l := f.Ledger()
	var fedTotal int64
	for c, m := range f.members {
		fedTotal += l.Fed[c]
		if got := int64(len(m.eng.Instance().Jobs) - m.eng.Withdrawn()); got != l.Fed[c] {
			return fmt.Errorf("fed: cluster %d holds %d live jobs, ledger says %d fed", c, got, l.Fed[c])
		}
	}
	if f.plane == nil {
		if fedTotal+int64(len(f.pending)) != l.Submitted {
			return fmt.Errorf("fed: %d fed + %d pending != %d submitted", fedTotal, len(f.pending), l.Submitted)
		}
	} else {
		// With admission control in the path the accounting splits: a
		// submitted job is pending, or released into the control plane —
		// and then admitted (fed to a member), rejected, or deferred
		// (waiting on a retry event). The plane's own per-organization
		// law (admitted + rejected + deferred == released) composes with
		// the federation-level one here.
		st := f.plane.Stats()
		if err := st.CheckConserved(); err != nil {
			return fmt.Errorf("fed: %w", err)
		}
		if st.TotalAdmitted() != fedTotal {
			return fmt.Errorf("fed: %d admitted != %d fed", st.TotalAdmitted(), fedTotal)
		}
		if st.TotalReleased()+int64(len(f.pending)) != l.Submitted {
			return fmt.Errorf("fed: %d released + %d pending != %d submitted",
				st.TotalReleased(), len(f.pending), l.Submitted)
		}
	}
	var routed int64
	for _, row := range l.Routed {
		for _, n := range row {
			routed += n
		}
	}
	if routed != fedTotal {
		return fmt.Errorf("fed: %d routed != %d fed", routed, fedTotal)
	}
	var migrations int64
	for c := range l.Migrated {
		if l.Migrated[c][c] != 0 {
			return fmt.Errorf("fed: cluster %d migrated %d jobs to itself", c, l.Migrated[c][c])
		}
		for _, n := range l.Migrated[c] {
			if n < 0 {
				return fmt.Errorf("fed: negative migration count")
			}
			migrations += n
		}
	}
	if migrations != l.Migrations {
		return fmt.Errorf("fed: migration matrix sums to %d, counter says %d", migrations, l.Migrations)
	}
	// The routed-work columns — the assigned-work accounting FedREF
	// routes on — must equal the work actually held by each cluster
	// (tombstoned jobs migrated away, so their work counts at their new
	// home, not here).
	for c, m := range f.members {
		var assigned int64
		for o := range l.RoutedWork {
			assigned += l.RoutedWork[o][c]
		}
		var held int64
		for id, j := range m.eng.Instance().Jobs {
			if m.seqOf[id] >= 0 {
				held += int64(j.Size)
			}
		}
		if assigned != held {
			return fmt.Errorf("fed: cluster %d holds %d work units, ledger says %d assigned", c, held, assigned)
		}
	}
	seen := make(map[int64]bool)
	for c, m := range f.members {
		jobs := m.eng.Instance().Jobs
		if len(m.seqOf) != len(jobs) || len(m.originOf) != len(jobs) {
			return fmt.Errorf("fed: cluster %d has %d/%d seq/origin mappings for %d jobs",
				c, len(m.seqOf), len(m.originOf), len(jobs))
		}
		tombstones := 0
		for id, seq := range m.seqOf {
			if seq < 0 {
				tombstones++
				continue
			}
			if seq >= f.nextSeq {
				return fmt.Errorf("fed: cluster %d maps a job to invalid sequence %d", c, seq)
			}
			if m.originOf[id] < 0 || m.originOf[id] >= len(f.members) {
				return fmt.Errorf("fed: cluster %d job %d has invalid origin %d", c, id, m.originOf[id])
			}
			if seen[seq] {
				return fmt.Errorf("fed: job %d fed to more than one cluster", seq)
			}
			seen[seq] = true
		}
		if got := m.eng.Withdrawn(); tombstones != got {
			return fmt.Errorf("fed: cluster %d has %d tombstones but %d withdrawn jobs", c, tombstones, got)
		}
	}
	for c, m := range f.members {
		psi := m.eng.Result().Psi
		for o := range psi {
			if psi[o] != l.Psi[c][o] {
				return fmt.Errorf("fed: ledger ψ[%d][%d]=%d, engine reports %d", c, o, l.Psi[c][o], psi[o])
			}
		}
	}
	return nil
}
