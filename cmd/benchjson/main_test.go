package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkTable1/lpc-egee/Rand(N=15)-8         	       1	 123456789 ns/op
BenchmarkAblationREFScaling/orgs=8/heap-8     	       1	  98765432 ns/op	  1234 B/op	   56 allocs/op
BenchmarkAblationRandWorkers/workers=4-8      	       2	   5000000 ns/op
BenchmarkUtilityPsi-8                         	1000000	       105.3 ns/op
BenchmarkFederation/ref/fairness-8            	       1	   1096000 ns/op	        42.21 offload%	 188284152 value
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if report.Format != "go-bench-json/1" {
		t.Fatalf("format = %q", report.Format)
	}
	if len(report.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(report.Benchmarks))
	}
	b := report.Benchmarks

	if b[0].Benchmark != "Table1" || b[0].Algorithm != "lpc-egee/Rand(N=15)" || b[0].NsPerOp != 123456789 {
		t.Errorf("record 0: %+v", b[0])
	}
	if b[1].Benchmark != "AblationREFScaling" || b[1].Params["orgs"] != "8" || b[1].Algorithm != "heap" {
		t.Errorf("record 1: %+v", b[1])
	}
	if b[1].NsPerOp != 98765432 {
		t.Errorf("record 1 ns/op with extra metrics: %+v", b[1])
	}
	if b[1].Metrics["B/op"] != 1234 || b[1].Metrics["allocs/op"] != 56 {
		t.Errorf("record 1 metrics: %+v", b[1].Metrics)
	}
	if b[4].Benchmark != "Federation" || b[4].Algorithm != "ref/fairness" ||
		b[4].Metrics["offload%"] != 42.21 || b[4].Metrics["value"] != 188284152 {
		t.Errorf("record 4 custom metrics: %+v", b[4])
	}
	if b[2].Params["workers"] != "4" || b[2].Algorithm != "" {
		t.Errorf("record 2: %+v", b[2])
	}
	if b[3].Name != "BenchmarkUtilityPsi" || b[3].Iterations != 1000000 || b[3].NsPerOp != 105.3 {
		t.Errorf("record 3: %+v", b[3])
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	report, err := parse(strings.NewReader("hello\nBenchmarkBroken-8 x y\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Benchmarks) != 0 {
		t.Fatalf("noise parsed as benchmarks: %+v", report.Benchmarks)
	}
}
