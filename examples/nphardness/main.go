// Nphardness: the Theorem 5.1 reduction, executed. Computing an
// organization's exact Shapley contribution is NP-hard because a
// SUBSETSUM instance can be compiled into a scheduling instance whose
// job-less organization `a` has a contribution encoding the number of
// subsets of S summing below x. This example builds the reduction for a
// small set, runs the exact REF scheduler, decodes the count from φ(a),
// and compares with brute force.
//
// Run with:
//
//	go run ./examples/nphardness
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	S := []int64{2, 3}
	for _, x := range []int64{4, 5, 6} {
		red := core.NewSubsetSumReduction(S, x)
		fmt.Printf("=== S = %v, x = %d ===\n", S, x)
		fmt.Printf("reduction instance: %d organizations, %d jobs, largest job L = %d\n",
			len(red.Inst.Orgs), len(red.Inst.Jobs), red.L)
		recovered := red.RecoverCount()
		brute := core.CountOrderings(S, x)
		fmt.Printf("orderings with Σ < %d:  decoded from φ(a) = %d, brute force = %d\n",
			x, recovered, brute)
	}
	for _, x := range []int64{4, 5, 6} {
		fmt.Printf("subset of %v summing to exactly %d? %v\n", S, x, core.HasSubsetSum(S, x))
	}
	fmt.Println("\nBecause REF answers SUBSETSUM, no polynomial algorithm computes")
	fmt.Println("exact contributions unless P = NP — hence the paper's FPRAS (unit")
	fmt.Println("jobs) and the DIRECTCONTR heuristic (general jobs).")
}
