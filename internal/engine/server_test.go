package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

func postJSON(t *testing.T, client *http.Client, url string, body string) map[string]any {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d: %s", url, resp.StatusCode, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("POST %s: bad JSON %q: %v", url, raw, err)
	}
	return out
}

func getJSON(t *testing.T, client *http.Client, url string) map[string]any {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, raw, err)
	}
	return out
}

// The fairschedd round-trip smoke test: submit jobs over HTTP, advance
// the clock, receive scheduling decisions, inspect utilities, and take
// a checkpoint through the API.
func TestServerRoundTrip(t *testing.T) {
	inst := model.MustNewInstance(
		[]model.Org{
			{Name: "org0", Machines: 2},
			{Name: "org1", Machines: 1},
		},
		nil,
	)
	srv := httptest.NewServer(NewServer(New(core.RefAlgorithm{}, inst, 1)).Handler())
	defer srv.Close()
	c := srv.Client()

	if got := getJSON(t, c, srv.URL+"/v1/healthz"); got["status"] != "ok" {
		t.Fatalf("healthz: %v", got)
	}

	// Submit four jobs: three released now (t=0), one in the future.
	sub := postJSON(t, c, srv.URL+"/v1/jobs", `{"jobs":[
		{"org":0,"size":4},
		{"org":0,"size":2},
		{"org":1,"size":3},
		{"org":1,"size":2,"release":6}
	]}`)
	if ids := sub["ids"].([]any); len(ids) != 4 {
		t.Fatalf("submitted 4 jobs, got ids %v", ids)
	}

	// Advance to t=5: the three machines take the three released jobs.
	adv := postJSON(t, c, srv.URL+"/v1/advance", `{"until":5}`)
	if adv["now"].(float64) != 5 {
		t.Fatalf("advance: now = %v", adv["now"])
	}
	if n := len(adv["decisions"].([]any)); n != 3 {
		t.Fatalf("expected 3 decisions by t=5, got %d: %v", n, adv["decisions"])
	}

	// Advance to the next event without naming it.
	postJSON(t, c, srv.URL+"/v1/advance", `{}`)

	// Drain to a generous horizon; the fourth job must start.
	postJSON(t, c, srv.URL+"/v1/advance", `{"until":40}`)
	dec := getJSON(t, c, srv.URL+"/v1/decisions")
	if total := dec["total"].(float64); total != 4 {
		t.Fatalf("decision log: %v", dec)
	}
	suffix := getJSON(t, c, srv.URL+"/v1/decisions?since=3")
	if n := len(suffix["decisions"].([]any)); n != 1 {
		t.Fatalf("since=3 returned %d decisions", n)
	}

	state := getJSON(t, c, srv.URL+"/v1/state")
	if state["algorithm"] != "REF" || state["now"].(float64) != 40 {
		t.Fatalf("state: %v", state)
	}
	if psi := state["psi"].([]any); len(psi) != 2 {
		t.Fatalf("state psi: %v", psi)
	}
	if _, ok := state["phi"]; !ok {
		t.Fatalf("REF state must report φ: %v", state)
	}

	// Checkpoint through the API and restore it — the clock survives.
	resp, err := c.Get(srv.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d: %s", resp.StatusCode, snap)
	}
	restored := postJSON(t, c, srv.URL+"/v1/restore", string(snap))
	if restored["now"].(float64) != 40 || restored["decisions"].(float64) != 4 {
		t.Fatalf("restore reply: %v", restored)
	}
	state2 := getJSON(t, c, srv.URL+"/v1/state")
	if fmt.Sprint(state2["psi"]) != fmt.Sprint(state["psi"]) {
		t.Fatalf("ψ changed across restore: %v vs %v", state2["psi"], state["psi"])
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	inst := model.MustNewInstance([]model.Org{{Name: "A", Machines: 1}}, nil)
	srv := httptest.NewServer(NewServer(New(core.RefAlgorithm{}, inst, 1)).Handler())
	defer srv.Close()
	c := srv.Client()

	for _, tc := range []struct{ url, body string }{
		{"/v1/jobs", `{"jobs":[]}`},
		{"/v1/jobs", `{"jobs":[{"org":5,"size":1}]}`},
		{"/v1/jobs", `not json`},
		{"/v1/advance", `{"until":-3}`},
		{"/v1/restore", `{"version":42}`},
	} {
		resp, err := c.Post(srv.URL+tc.url, "application/json", bytes.NewBufferString(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %q: status %d, want 400", tc.url, tc.body, resp.StatusCode)
		}
	}
	resp, err := c.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/jobs: status %d, want 405", resp.StatusCode)
	}
}
