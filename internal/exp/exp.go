// Package exp is the experiment harness for the paper's evaluation
// (Section 7): it generates workload instances, runs the reference
// algorithm REF and the compared algorithms on each, and aggregates the
// unfairness measure Δψ/p_tot into the paper's table and figure
// layouts.
//
// Instances run concurrently on a worker pool; aggregation is
// deterministic (per-instance values are collected in index order
// before summarizing), so a (config, seed) pair always reproduces the
// same numbers.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config describes one workload-family experiment.
type Config struct {
	Family gen.Family
	// Orgs is the number of organizations (the paper uses 5 for the
	// tables, 2..10 for Figure 10).
	Orgs int
	// MachineDist is "zipf" (the default, exponent ZipfExp) or
	// "uniform" — how processors are split among organizations.
	MachineDist string
	ZipfExp     float64
	Horizon     model.Time
	Instances   int
	Seed        int64
	// Workers bounds the instance-level parallelism; 0 = GOMAXPROCS.
	Workers int
	RefOpts core.RefOptions
}

// DefaultConfig returns the tables' base configuration for a family:
// 5 organizations, Zipf(1) machine split, horizon 5·10⁴.
func DefaultConfig(f gen.Family) Config {
	return Config{
		Family:      f,
		Orgs:        5,
		MachineDist: "zipf",
		ZipfExp:     1,
		Horizon:     50000,
		Instances:   20,
		Seed:        1,
	}
}

// DefaultAlgorithms returns the compared algorithms in the tables' row
// order (Section 7.1). randSamples parameterizes RAND (the paper uses
// 15 and 75). RAND runs serially here: the harness already saturates
// the cores with instance-level parallelism (RunUnfairness), and
// results are worker-count invariant anyway.
func DefaultAlgorithms(randSamples int) []core.Algorithm {
	return []core.Algorithm{
		core.FromPolicy("RoundRobin", func() sim.Policy { return baseline.NewRoundRobin() }),
		core.RandAlgorithm{Samples: randSamples, Opts: core.RandOptions{Workers: 1}},
		core.DirectContrAlgorithm(),
		core.FromPolicy("FairShare", func() sim.Policy { return baseline.NewFairShare() }),
		core.FromPolicy("UtFairShare", func() sim.Policy { return baseline.NewUtFairShare() }),
		core.FromPolicy("CurrFairShare", func() sim.Policy { return baseline.NewCurrFairShare() }),
		core.NbsAlgorithm{},
	}
}

// Cell is one aggregated table entry.
type Cell struct {
	Workload  string
	Algorithm string
	Summary   stats.Summary
}

// Table is a workloads × algorithms grid of unfairness summaries.
type Table struct {
	Workloads  []string
	Algorithms []string
	Cells      map[string]map[string]*stats.Summary // workload -> algorithm -> summary
}

func newTable() *Table {
	return &Table{Cells: map[string]map[string]*stats.Summary{}}
}

func (t *Table) add(workload, alg string, values []float64) {
	if t.Cells[workload] == nil {
		t.Cells[workload] = map[string]*stats.Summary{}
		t.Workloads = append(t.Workloads, workload)
	}
	s := &stats.Summary{}
	for _, v := range values {
		s.Add(v)
	}
	t.Cells[workload][alg] = s
	found := false
	for _, a := range t.Algorithms {
		if a == alg {
			found = true
			break
		}
	}
	if !found {
		t.Algorithms = append(t.Algorithms, alg)
	}
}

// Get returns the summary for a (workload, algorithm) pair, or nil.
func (t *Table) Get(workload, alg string) *stats.Summary {
	if m := t.Cells[workload]; m != nil {
		return m[alg]
	}
	return nil
}

// machineSplit distributes the family's processors over the
// organizations per the config.
func (cfg Config) machineSplit() []int {
	if cfg.MachineDist == "uniform" {
		return stats.UniformSplit(cfg.Family.Procs, cfg.Orgs)
	}
	exp := cfg.ZipfExp
	if exp == 0 {
		exp = 1
	}
	return stats.ZipfSplit(cfg.Family.Procs, cfg.Orgs, exp)
}

// RunUnfairness measures Δψ/p_tot for every algorithm over
// cfg.Instances generated instances. The returned matrix is indexed
// [algorithm][instance].
func RunUnfairness(cfg Config, algs []core.Algorithm) ([][]float64, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Instances {
		workers = cfg.Instances
	}
	values := make([][]float64, len(algs))
	for i := range values {
		values[i] = make([]float64, cfg.Instances)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if err := runInstance(cfg, algs, idx, values); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for idx := 0; idx < cfg.Instances; idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	return values, firstErr
}

// runInstance generates instance idx, computes the REF reference and
// fills values[alg][idx] for every algorithm.
func runInstance(cfg Config, algs []core.Algorithm, idx int, values [][]float64) error {
	seed := cfg.Seed + int64(idx)*1009
	rng := stats.NewRand(seed)
	inst, err := cfg.Family.Instance(cfg.Horizon, cfg.Orgs, cfg.machineSplit(), rng)
	if err != nil {
		return fmt.Errorf("exp: instance %d: %w", idx, err)
	}
	refRes := core.RefAlgorithm{Opts: cfg.RefOpts}.Run(inst, cfg.Horizon, seed)
	for a, alg := range algs {
		res := alg.Run(inst, cfg.Horizon, seed*31+int64(a))
		values[a][idx] = metrics.UnfairnessPerUnit(res.Psi, refRes.Psi, refRes.Ptot)
	}
	return nil
}

// UnfairnessTable runs the full table experiment: every family config
// against every algorithm (Tables 1 and 2 of the paper, depending on
// the configs' horizon).
func UnfairnessTable(cfgs []Config, algs []core.Algorithm) (*Table, error) {
	t := newTable()
	for _, cfg := range cfgs {
		vals, err := RunUnfairness(cfg, algs)
		if err != nil {
			return nil, err
		}
		for a, alg := range algs {
			t.add(cfg.Family.Name, alg.Name(), vals[a])
		}
	}
	return t, nil
}

// OrgCountSweep is the Figure 10 experiment: unfairness as a function
// of the number of organizations, on one family.
func OrgCountSweep(base Config, orgCounts []int, algs []core.Algorithm) (*Table, error) {
	t := newTable()
	for _, k := range orgCounts {
		cfg := base
		cfg.Orgs = k
		vals, err := RunUnfairness(cfg, algs)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("k=%d", k)
		for a, alg := range algs {
			t.add(label, alg.Name(), vals[a])
		}
	}
	return t, nil
}
