package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/baseline"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// RandOptions tunes Algorithm RAND's execution. Results are a pure
// function of (instance, samples, seed): every sampled permutation is
// drawn from its own SplitMix64-derived RNG stream and the sampled
// coalition schedules are independent simulations, so any Workers value
// produces byte-identical output.
type RandOptions struct {
	// Workers bounds the goroutines that draw permutations and advance
	// the sampled coalition schedules; 0 means GOMAXPROCS, 1 runs
	// serially.
	Workers int
	// Stratified draws the N permutations as cyclic rotations of
	// ⌈N/k⌉ uniform base permutations (shapley.SampleStratified's
	// scheme): when k divides N every organization appears at every
	// predecessor-set size equally often (the last round is truncated
	// otherwise), cutting the estimate's variance at an equal
	// permutation budget. Each rotation of a uniform permutation is
	// uniform, so the φ estimate stays unbiased for any N.
	Stratified bool
}

func (o RandOptions) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEachChunk splits [0, n) into contiguous chunks and runs fn on one
// goroutine per chunk, blocking until all complete. With one worker (or
// n ≤ 1) it runs inline.
func forEachChunk(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// RandSched is Algorithm RAND (Figure 6): contributions are estimated by
// sampling N permutations of the organizations; for every organization u
// and sampled permutation, the marginal value of u joining its
// predecessors is measured on simplified (FCFS) schedules of the sampled
// coalitions. For unit-size jobs the coalition value is
// schedule-independent (Proposition 5.4), making the estimate exact in
// expectation and the algorithm an FPRAS (Theorems 5.6–5.7); for general
// jobs it is the paper's strongest heuristic.
type RandSched struct {
	inst    *model.Instance
	k       int
	samples int
	seed    int64
	grand   model.Coalition
	opts    RandOptions

	decision *sim.Cluster
	src      *stats.Source     // decision cluster's RNG stream (checkpointable)
	masks    []model.Coalition // distinct sampled masks, ascending
	clusters map[model.Coalition]*sim.Cluster
	preds    [][]model.Coalition // per org: N sampled predecessor sets
	phi      []float64
}

// NewRandSched samples the permutations with the given seed and builds
// FCFS clusters for every distinct sampled coalition (Prepare in
// Figure 6). Permutation s is drawn from stream (seed, s), so the
// sampled set does not depend on the worker count.
func NewRandSched(inst *model.Instance, samples int, seed int64, opts RandOptions) *RandSched {
	if samples < 1 {
		panic("core: RAND needs at least one sampled permutation")
	}
	k := len(inst.Orgs)
	r := &RandSched{
		inst:     inst,
		k:        k,
		samples:  samples,
		seed:     seed,
		grand:    model.Grand(k),
		opts:     opts,
		clusters: make(map[model.Coalition]*sim.Cluster),
		preds:    make([][]model.Coalition, k),
		phi:      make([]float64, k),
	}
	workers := opts.workerCount()
	perms := make([][]int, samples)
	forEachChunk(workers, samples, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			// Plain mode: permutation s comes from stream s. Stratified
			// mode: s is rotation s%k of the base permutation from
			// stream s/k (re-shuffling the k-element base per rotation
			// is cheaper than sharing it across workers).
			stream, shift := int64(s), 0
			if opts.Stratified {
				stream, shift = int64(s/k), s%k
			}
			rng := stats.NewStreamRand(seed, stream)
			base := make([]int, k)
			for i := range base {
				base[i] = i
			}
			rng.Shuffle(k, func(i, j int) { base[i], base[j] = base[j], base[i] })
			if shift == 0 {
				perms[s] = base
				continue
			}
			perm := make([]int, k)
			for i := range perm {
				perm[i] = base[(i+shift)%k]
			}
			perms[s] = perm
		}
	})
	need := make(map[model.Coalition]bool)
	for _, perm := range perms {
		var c model.Coalition
		for _, u := range perm {
			r.preds[u] = append(r.preds[u], c)
			if !c.Empty() {
				need[c] = true
			}
			c = c.With(u)
			need[c] = true
		}
	}
	for mask := range need {
		r.masks = append(r.masks, mask)
	}
	sort.Slice(r.masks, func(i, j int) bool { return r.masks[i] < r.masks[j] })
	built := make([]*sim.Cluster, len(r.masks))
	forEachChunk(workers, len(r.masks), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			built[i] = sim.New(inst, r.masks[i], baseline.NewFCFS(), nil)
		}
	})
	for i, mask := range r.masks {
		r.clusters[mask] = built[i]
	}
	r.src = stats.NewSource(seed)
	r.decision = sim.New(inst, r.grand, &randPolicy{r: r}, rand.New(r.src))
	return r
}

// Run drives the decision schedule and every sampled coalition schedule
// to the horizon and returns the decision schedule's result with the
// final sampled contribution estimates. It is a thin wrapper over the
// incremental stepping interface — the streaming engine executes
// exactly this code path one event at a time.
func (r *RandSched) Run(until model.Time) *Result {
	return runStepper(r, until)
}

// Name implements Stepper.
func (r *RandSched) Name() string { return r.name() }

// Instance implements Stepper.
func (r *RandSched) Instance() *model.Instance { return r.inst }

// Starts implements Stepper: the decision schedule's starts.
func (r *RandSched) Starts() []sim.Start { return r.decision.Starts() }

// NextEventTime implements Stepper: the earliest pending event across
// the decision schedule and every sampled coalition schedule.
func (r *RandSched) NextEventTime() model.Time {
	t := r.decision.NextEventTime()
	for _, mask := range r.masks {
		if e := r.clusters[mask].NextEventTime(); e < t {
			t = e
		}
	}
	return t
}

// StepNext implements Stepper: process the single earliest global event
// at or before until — advance the sampled schedules (with their FCFS
// dispatch), then the decision schedule with a fresh φ estimate.
func (r *RandSched) StepNext(until model.Time) bool {
	t := r.NextEventTime()
	if t == sim.MaxTime || t > until {
		return false
	}
	r.advanceSampled(t, true)
	r.decision.AdvanceTo(t)
	if r.decision.CanDispatch() {
		r.computePhi()
		r.decision.Dispatch()
	}
	return true
}

// FinishAt implements Stepper: move every schedule's clock to exactly
// t. No dispatch runs — the caller has drained all events at or before
// t, so no dispatch opportunity exists.
func (r *RandSched) FinishAt(t model.Time) {
	r.advanceSampled(t, false)
	r.decision.AdvanceTo(t)
}

// ResultAt implements Stepper: the decision schedule's result with the
// current sampled contribution estimates at time t.
func (r *RandSched) ResultAt(t model.Time) *Result {
	r.computePhi()
	return resultFromCluster(r.name(), r.decision, t, append([]float64(nil), r.phi...))
}

// Inject implements Stepper: register online arrivals with the decision
// schedule and with every sampled coalition containing the owner. The
// sampled permutations — and hence the coalition set — are fixed at
// construction and independent of the job list, so feeding jobs never
// changes which coalitions are simulated.
func (r *RandSched) Inject(ids []int) error {
	for _, id := range ids {
		if err := r.decision.Inject(id); err != nil {
			return err
		}
		for _, mask := range r.masks {
			if err := r.clusters[mask].Inject(id); err != nil {
				return err
			}
		}
	}
	return nil
}

// Withdraw implements Stepper: remove the job from the decision
// schedule's wait queue (it must still be waiting there) and,
// best-effort, from every sampled coalition containing the owner — a
// sampled FCFS schedule that already started the job keeps it, since
// the counterfactual is non-preemptive too.
func (r *RandSched) Withdraw(id int) error {
	if err := withdrawDecision(r.decision, r.name(), id); err != nil {
		return err
	}
	org := r.inst.Jobs[id].Org
	for _, mask := range r.masks {
		if !mask.Has(org) {
			continue
		}
		if _, err := r.clusters[mask].Withdraw(org, id); err != nil {
			return err
		}
	}
	return nil
}

// Withdrawn implements Stepper.
func (r *RandSched) Withdrawn() int { return r.decision.WithdrawnCount() }

// Capture implements Stepper: the decision cluster first, then the
// sampled clusters in ascending mask order (the order NewRandSched
// re-derives deterministically from the seed on restore), plus the
// decision RNG stream position.
func (r *RandSched) Capture(now model.Time) (*Checkpoint, error) {
	cp := checkpointHeader(r.name(), r.seed, now, r.inst)
	cp.Clusters = make([]sim.ClusterState, 0, 1+len(r.masks))
	cp.Clusters = append(cp.Clusters, r.decision.CaptureState())
	for _, mask := range r.masks {
		cp.Clusters = append(cp.Clusters, r.clusters[mask].CaptureState())
	}
	cp.RNG = []uint64{r.src.State()}
	return cp, nil
}

// advanceSampled moves every sampled coalition schedule to time t,
// optionally running its FCFS dispatch, fanned out over the worker
// pool. The clusters share nothing, so the fan-out is deterministic.
func (r *RandSched) advanceSampled(t model.Time, dispatch bool) {
	workers := r.opts.workerCount()
	if workers <= 1 || len(r.masks) < 16 {
		for _, mask := range r.masks {
			c := r.clusters[mask]
			c.AdvanceTo(t)
			if dispatch {
				c.Dispatch()
			}
		}
		return
	}
	forEachChunk(workers, len(r.masks), func(lo, hi int) {
		for _, mask := range r.masks[lo:hi] {
			c := r.clusters[mask]
			c.AdvanceTo(t)
			if dispatch {
				c.Dispatch()
			}
			c.Flush() // accrual work happens on the worker
		}
	})
}

func (r *RandSched) name() string { return randName(r.samples, r.opts) }

// randName labels a RAND configuration; shared by RandSched results and
// RandAlgorithm so the two can never drift apart.
func randName(samples int, opts RandOptions) string {
	if opts.Stratified {
		return fmt.Sprintf("Rand(N=%d,stratified)", samples)
	}
	return fmt.Sprintf("Rand(N=%d)", samples)
}

// value returns the sampled coalition's value at the current instant.
func (r *RandSched) value(mask model.Coalition) int64 {
	if mask.Empty() {
		return 0
	}
	return r.clusters[mask].Value()
}

// computePhi refreshes the Monte-Carlo contribution estimates:
// φ[u] = (1/N)·Σ over sampled permutations of v(pred∪{u}) − v(pred).
func (r *RandSched) computePhi() {
	for u := 0; u < r.k; u++ {
		var sum float64
		for _, pred := range r.preds[u] {
			sum += float64(r.value(pred.With(u)) - r.value(pred))
		}
		r.phi[u] = sum / float64(r.samples)
	}
}

// randPolicy drives the decision schedule: argmax(φ−ψ) among waiting
// organizations, low index on ties (SelectAndSchedule in Figure 6).
type randPolicy struct {
	r    *RandSched
	view *sim.View
}

// Name implements sim.Policy.
func (p *randPolicy) Name() string { return "RAND" }

// Attach implements sim.Policy.
func (p *randPolicy) Attach(v *sim.View, _ *rand.Rand) { p.view = v }

// Select implements sim.Policy.
func (p *randPolicy) Select(_ model.Time, _ int) int {
	best := -1
	var bestDeficit float64
	for u := 0; u < p.r.k; u++ {
		if p.view.Waiting(u) == 0 {
			continue
		}
		deficit := p.r.phi[u] - float64(p.view.Psi(u))
		if best == -1 || deficit > bestDeficit {
			best, bestDeficit = u, deficit
		}
	}
	return best
}

// RandAlgorithm adapts RandSched to the Algorithm interface.
type RandAlgorithm struct {
	Samples int
	Opts    RandOptions
}

// Name implements Algorithm.
func (a RandAlgorithm) Name() string { return randName(a.Samples, a.Opts) }

// Run implements Algorithm.
func (a RandAlgorithm) Run(inst *model.Instance, until model.Time, seed int64) *Result {
	return NewRandSched(inst, a.Samples, seed, a.Opts).Run(until)
}

// NewStepper implements StepperAlgorithm.
func (a RandAlgorithm) NewStepper(inst *model.Instance, seed int64) Stepper {
	return NewRandSched(inst, a.Samples, seed, a.Opts)
}

// RestoreStepper implements StepperAlgorithm: re-derive the sampled
// permutations (a pure function of seed, sample count and options),
// rebuild every cluster, and overwrite each with its captured state.
func (a RandAlgorithm) RestoreStepper(cp *Checkpoint) (Stepper, error) {
	if cp.Algorithm != a.Name() {
		return nil, fmt.Errorf("core: checkpoint for %q restored as %q", cp.Algorithm, a.Name())
	}
	inst, err := cp.RebuildInstance()
	if err != nil {
		return nil, err
	}
	r := NewRandSched(inst, a.Samples, cp.Seed, a.Opts)
	if len(cp.Clusters) != 1+len(r.masks) {
		return nil, fmt.Errorf("core: RAND checkpoint has %d clusters, want %d", len(cp.Clusters), 1+len(r.masks))
	}
	if err := r.decision.RestoreState(cp.Clusters[0]); err != nil {
		return nil, err
	}
	for i, mask := range r.masks {
		if err := r.clusters[mask].RestoreState(cp.Clusters[1+i]); err != nil {
			return nil, err
		}
	}
	if len(cp.RNG) > 0 {
		r.src.SetState(cp.RNG[0])
	}
	return r, nil
}
