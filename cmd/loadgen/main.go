// Command loadgen is the serving-tier load harness: it holds many
// thousands of concurrent federated sessions open in one process and
// drives them all through the async advance pipeline, printing
// throughput and p50/p95/p99 advance-latency as JSON.
//
//	loadgen -sessions 10000 -clients 64 -pipeline-workers 0
//
// Each session is a small two-cluster federation with an overloaded
// origin (so delegation routes on every session); -jobs jobs are
// submitted up front and the session is advanced -steps times by
// -step ticks. Latency is measured enqueue-to-result through the
// pipeline — queueing included, the latency a serving client sees.
// The same harness backs BenchmarkServingTier, whose metrics CI
// archives into the BENCH trajectory.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/daemon"
	"repro/internal/model"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sessions = fs.Int("sessions", 10000, "concurrent federated sessions to hold open")
		clients  = fs.Int("clients", 0, "client goroutines driving traffic (0 = default)")
		workers  = fs.Int("pipeline-workers", 0, "advance pipeline workers (0 = GOMAXPROCS)")
		burst    = fs.Int("burst", 0, "per-session advances per pipeline pass (0 = default)")
		jobs     = fs.Int("jobs", 0, "jobs submitted per session (0 = default)")
		steps    = fs.Int("steps", 0, "advance steps per session (0 = default)")
		step     = fs.Int64("step", 0, "ticks per advance step (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	report, err := daemon.RunLoad(daemon.LoadConfig{
		Sessions:        *sessions,
		Clients:         *clients,
		PipelineWorkers: *workers,
		Burst:           *burst,
		JobsPerSession:  *jobs,
		Steps:           *steps,
		StepSize:        model.Time(*step),
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
