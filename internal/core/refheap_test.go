package core

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/model"
	"repro/internal/sim"
)

// checkHeapMatchesRebuild verifies the live event heap against the
// keying rule rebuildHeap implements — mask present iff its cluster's
// NextEventTime != sim.MaxTime, keyed by it — plus the structural
// invariants the incremental operations (fix/remove/update) must
// maintain: the position index is exact and the heap property holds.
// Content equality under a deterministic total order (key, then mask)
// implies the incremental heap pops the same sequence a fresh rebuild
// would, so this is the incremental-vs-rebuild differential.
func checkHeapMatchesRebuild(t *testing.T, r *Ref) {
	t.Helper()
	if !r.driverReady {
		return
	}
	h := r.h
	for i, m := range h.heap {
		if h.pos[m] != i {
			t.Fatalf("pos[%v] = %d, heap slot is %d", m, h.pos[m], i)
		}
	}
	inHeap := make(map[model.Coalition]bool, len(h.heap))
	for _, m := range h.heap {
		inHeap[m] = true
	}
	for mask := model.Coalition(1); mask <= r.grand; mask++ {
		k := r.sims[mask].NextEventTime()
		if k == sim.MaxTime {
			if inHeap[mask] {
				t.Fatalf("mask %v in heap but its cluster is drained", mask)
			}
			if h.pos[mask] != -1 {
				t.Fatalf("drained mask %v has pos %d, want -1", mask, h.pos[mask])
			}
			continue
		}
		if !inHeap[mask] {
			t.Fatalf("mask %v has next event %d but is missing from the heap", mask, k)
		}
		if h.key[mask] != k {
			t.Fatalf("mask %v keyed %d, cluster's next event is %d", mask, h.key[mask], k)
		}
	}
	for i := 1; i < len(h.heap); i++ {
		if h.less(i, (i-1)/2) {
			t.Fatalf("heap property violated at slot %d (mask %v)", i, h.heap[i])
		}
	}
}

// A randomized interleaving of event stepping, withdrawal and
// re-injection must leave the incrementally maintained event heap in
// exactly the state a fresh rebuildHeap would produce after every
// mutation, and the run must end byte-identical to the scan driver
// under the same mutation sequence (the executable spec: the scan
// driver has no heap to corrupt).
//
// Mutations happen at synchronized instants — drain both drivers to a
// common time T, FinishAt(T), then withdraw/reinject on both. Mid-step
// mutation acceptance is clock-dependent (a reinjection whose release
// is now in the past is rejected per cluster), and the heap driver
// deliberately lets untouched clusters' clocks lag, so only at
// quiesced instants do the two drivers define the same accept/reject
// outcomes to compare.
func TestIncrementalWithdrawHeapDifferential(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(5000 + seed))
		k := 2 + r.Intn(5)
		in := diffInstance(r, k)
		horizon := in.Horizon() + 2
		href := NewRef(in, RefOptions{})
		sref := NewRef(in, RefOptions{Driver: DriverScan})

		var withdrawn []int
		const phases = 8
		for phase := 1; phase <= phases; phase++ {
			target := horizon * model.Time(phase) / phases
			for href.StepNext(target) {
				checkHeapMatchesRebuild(t, href)
			}
			for sref.StepNext(target) {
			}
			href.FinishAt(target)
			sref.FinishAt(target)
			checkHeapMatchesRebuild(t, href)

			for m := 0; m < 5; m++ {
				if r.Intn(2) == 0 || len(withdrawn) == 0 {
					id := r.Intn(len(in.Jobs))
					herr := href.Withdraw(id)
					serr := sref.Withdraw(id)
					if (herr != nil) != (serr != nil) {
						t.Fatalf("seed %d phase %d: withdraw %d: heap err=%v, scan err=%v", seed, phase, id, herr, serr)
					}
					if herr == nil {
						withdrawn = append(withdrawn, id)
					}
				} else {
					j := r.Intn(len(withdrawn))
					id := withdrawn[j]
					herr := href.Inject([]int{id})
					serr := sref.Inject([]int{id})
					if (herr != nil) != (serr != nil) {
						t.Fatalf("seed %d phase %d: reinject %d: heap err=%v, scan err=%v", seed, phase, id, herr, serr)
					}
					if herr == nil {
						// A rejected reinjection (release now in the past)
						// stays withdrawn; it would keep failing.
						withdrawn = append(withdrawn[:j], withdrawn[j+1:]...)
					}
				}
				checkHeapMatchesRebuild(t, href)
			}
		}

		for href.StepNext(horizon) {
			checkHeapMatchesRebuild(t, href)
		}
		for sref.StepNext(horizon) {
		}
		href.FinishAt(horizon)
		sref.FinishAt(horizon)
		assertSameResult(t, "incremental heap vs scan after withdraw/reinject", sref.ResultAt(horizon), href.ResultAt(horizon))
	}
}

// steadyStepper builds a stepper on a workload whose every subcoalition
// starts all of its jobs at release (per-org machines ≥ per-org jobs),
// primed past the release-instant dispatches: the remaining event
// stream is pure completions — the steady serving state.
func steadyStepper(t *testing.T, alg StepperAlgorithm) Stepper {
	t.Helper()
	const k, jobsPerOrg = 3, 3
	orgs := make([]model.Org, k)
	for i := range orgs {
		orgs[i] = model.Org{Name: string(rune('A' + i)), Machines: jobsPerOrg}
	}
	var jobs []model.Job
	for o := 0; o < k; o++ {
		for j := 0; j < jobsPerOrg; j++ {
			jobs = append(jobs, model.Job{Org: o, Release: 0, Size: model.Time(5 + 4*j + o)})
		}
	}
	in, err := model.NewInstance(orgs, jobs)
	if err != nil {
		t.Fatal(err)
	}
	s := alg.NewStepper(in, 1)
	for s.StepNext(0) {
	}
	return s
}

// Steady-state stepping is zero-alloc by budget for every stepper
// family (serial configurations — the parallel paths spawn worker
// goroutines by design): completions, accounting, value re-snapshots,
// heap sifts, φ fills and dispatch probes must all run out of the
// steppers' preallocated scratch. A single new allocation per step is
// a regression BenchmarkHotPath and this budget catch.
func TestSteadyStateStepAllocFree(t *testing.T) {
	const horizon = model.Time(1 << 30)
	cases := []struct {
		name string
		alg  StepperAlgorithm
	}{
		{"REF", RefAlgorithm{}},
		{"RAND", RandAlgorithm{Samples: 15, Opts: RandOptions{Workers: 1}}},
		{"policy-FCFS", FromPolicy("FCFS", func() sim.Policy { return baseline.NewFCFS() })},
		{"policy-DirectContr", DirectContrAlgorithm().(StepperAlgorithm)},
		{"NBS", NbsAlgorithm{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := steadyStepper(t, tc.alg)
			if avg := testing.AllocsPerRun(200, func() { s.StepNext(horizon) }); avg != 0 {
				t.Errorf("steady-state StepNext allocates %.2f times per run, budget is 0", avg)
			}
		})
	}
}
