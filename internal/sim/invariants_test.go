package sim

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/stats"
)

// randInstance builds a random small instance.
func randInstance(r *rand.Rand, unitJobs bool) *model.Instance {
	k := 1 + r.Intn(4)
	orgs := make([]model.Org, k)
	total := 0
	for i := range orgs {
		orgs[i] = model.Org{Name: string(rune('A' + i)), Machines: r.Intn(3)}
		total += orgs[i].Machines
	}
	if total == 0 {
		orgs[0].Machines = 1
	}
	n := 1 + r.Intn(25)
	jobs := make([]model.Job, n)
	for i := range jobs {
		size := model.Time(1)
		if !unitJobs {
			size = model.Time(1 + r.Intn(9))
		}
		jobs[i] = model.Job{Org: r.Intn(k), Release: model.Time(r.Intn(20)), Size: size}
	}
	return model.MustNewInstance(orgs, jobs)
}

// randPolicy selects a waiting organization pseudo-randomly but
// deterministically from its own seed; every such policy is greedy by
// construction of the engine.
func randPolicy(seed int64) Policy {
	r := rand.New(rand.NewSource(seed))
	return &SelectFunc{
		PolicyName: "random",
		F: func(v *View, _ model.Time, _ int) int {
			var waiting []int
			for org := 0; org < v.Orgs(); org++ {
				if v.Waiting(org) > 0 {
					waiting = append(waiting, org)
				}
			}
			return waiting[r.Intn(len(waiting))]
		},
	}
}

// checkInvariants validates a finished simulation against the model's
// structural rules.
func checkInvariants(t *testing.T, in *model.Instance, c *Cluster) {
	t.Helper()
	starts := c.Starts()
	// 1. Starts respect release times.
	for _, s := range starts {
		if s.At < in.Jobs[s.Job].Release {
			t.Fatalf("job %d started at %d before release %d", s.Job, s.At, in.Jobs[s.Job].Release)
		}
	}
	// 2. No overlap per machine.
	perMachine := map[int][]Start{}
	for _, s := range starts {
		perMachine[s.Machine] = append(perMachine[s.Machine], s)
	}
	for m, ss := range perMachine {
		for i := 1; i < len(ss); i++ {
			prevEnd := ss[i-1].At + in.Jobs[ss[i-1].Job].Size
			if ss[i].At < prevEnd {
				t.Fatalf("machine %d overlap: job %d (ends %d) and job %d (starts %d)",
					m, ss[i-1].Job, prevEnd, ss[i].Job, ss[i].At)
			}
		}
	}
	// 3. FIFO per organization: start order follows job ID order.
	lastID := map[int]int{}
	for _, s := range starts {
		if prev, ok := lastID[s.Org]; ok && s.Job < prev {
			t.Fatalf("org %d FIFO violated: job %d after %d", s.Org, s.Job, prev)
		}
		lastID[s.Org] = s.Job
	}
	// 4. Greediness: no machine idle interval may intersect any job's
	// waiting interval [release, start).
	type interval struct{ lo, hi model.Time }
	horizon := c.Now()
	var idles []interval
	for m := 0; m < c.View().Machines(); m++ {
		cur := model.Time(0)
		for _, s := range perMachine[m] {
			if s.At > cur {
				idles = append(idles, interval{cur, s.At})
			}
			cur = s.At + in.Jobs[s.Job].Size
		}
		if cur < horizon {
			idles = append(idles, interval{cur, horizon})
		}
	}
	started := map[int]model.Time{}
	for _, s := range starts {
		started[s.Job] = s.At
	}
	for _, j := range in.Jobs {
		if !c.Coalition().Has(j.Org) {
			continue
		}
		lo := j.Release
		hi, ok := started[j.ID]
		if !ok {
			hi = horizon
		}
		for _, idle := range idles {
			a, b := lo, hi
			if idle.lo > a {
				a = idle.lo
			}
			if idle.hi < b {
				b = idle.hi
			}
			if a < b {
				t.Fatalf("greediness violated: job %d waited during machine idle [%d,%d)", j.ID, a, b)
			}
		}
	}
}

func TestSimulatorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInstance(r, false)
		c := New(in, in.Grand(), randPolicy(seed+1), stats.NewRand(seed+2))
		c.Run(in.Horizon() + 5)
		checkInvariants(t, in, c)
		if got := len(c.Starts()); got != len(in.Jobs) {
			t.Fatalf("only %d of %d jobs started by the horizon", got, len(in.Jobs))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Proposition 5.4: with unit-size jobs, every greedy algorithm yields the
// same coalition value at every time moment.
func TestUnitJobValueScheduleIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInstance(r, true)
		a := New(in, in.Grand(), randPolicy(seed+10), nil)
		b := New(in, in.Grand(), randPolicy(seed+20), nil)
		horizon := in.Horizon() + 3
		for ti := model.Time(0); ti <= horizon; ti++ {
			a.Run(ti)
			b.Run(ti)
			if a.Value() != b.Value() {
				t.Fatalf("seed %d: values diverge at t=%d: %d vs %d", seed, ti, a.Value(), b.Value())
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Theorem 6.2: every greedy algorithm is 3/4-competitive for resource
// utilization; in particular any two greedy schedules' executed-unit
// counts at any time T are within a factor 4/3 of each other.
func TestGreedyThreeQuartersCompetitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInstance(r, false)
		horizon := in.Horizon()
		T := model.Time(1 + r.Int63n(int64(horizon)+1))
		var busies []int64
		for p := 0; p < 4; p++ {
			c := New(in, in.Grand(), randPolicy(seed+int64(p)*7), nil)
			c.Run(T)
			busies = append(busies, c.ExecutedUnits())
		}
		lo, hi := busies[0], busies[0]
		for _, b := range busies {
			if b < lo {
				lo = b
			}
			if b > hi {
				hi = b
			}
		}
		// 4·min ≥ 3·max ⇔ min/max ≥ 3/4.
		if 4*lo < 3*hi {
			t.Fatalf("seed %d: utilization ratio %d/%d < 3/4 at T=%d", seed, lo, hi, T)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// drainHorizon returns a horizon by which any greedy schedule of the
// instance has certainly completed everything.
func drainHorizon(in *model.Instance) model.Time {
	var total, maxRelease model.Time
	for _, j := range in.Jobs {
		total += j.Size
		if j.Release > maxRelease {
			maxRelease = j.Release
		}
	}
	return maxRelease + total + 1
}

// queuedJobs lists the IDs currently waiting in any organization's
// queue, ascending.
func queuedJobs(c *Cluster) []int {
	var out []int
	for org := range c.queues {
		out = append(out, c.queues[org][c.qHead[org]:]...)
	}
	sort.Ints(out)
	return out
}

// checkWithdrawInvariants validates a fully drained run that saw
// withdrawals and re-injections. The FIFO and greediness rules of
// checkInvariants do not survive requeueing (a re-injected job joins
// its queue's tail, behind younger IDs, and spends its withdrawn
// interval legitimately unserved), but the conservation core must:
// starts respect releases, no machine overlaps, every live member job
// runs exactly once, no withdrawn job ever runs, and the executed unit
// slots equal exactly the live jobs' total work.
func checkWithdrawInvariants(t *testing.T, in *model.Instance, c *Cluster, withdrawn map[int]bool) {
	t.Helper()
	starts := c.Starts()
	seen := map[int]int{}
	perMachine := map[int][]Start{}
	for _, s := range starts {
		if s.At < in.Jobs[s.Job].Release {
			t.Fatalf("job %d started at %d before release %d", s.Job, s.At, in.Jobs[s.Job].Release)
		}
		if withdrawn[s.Job] {
			t.Fatalf("withdrawn job %d started at %d", s.Job, s.At)
		}
		seen[s.Job]++
		perMachine[s.Machine] = append(perMachine[s.Machine], s)
	}
	for _, ss := range perMachine {
		for i := 1; i < len(ss); i++ {
			prevEnd := ss[i-1].At + in.Jobs[ss[i-1].Job].Size
			if ss[i].At < prevEnd {
				t.Fatalf("machine %d overlap: job %d (ends %d) and job %d (starts %d)",
					ss[i].Machine, ss[i-1].Job, prevEnd, ss[i].Job, ss[i].At)
			}
		}
	}
	var want int64
	for _, j := range in.Jobs {
		if !c.Coalition().Has(j.Org) || withdrawn[j.ID] {
			continue
		}
		if seen[j.ID] != 1 {
			t.Fatalf("live job %d started %d times after full drain", j.ID, seen[j.ID])
		}
		want += int64(j.Size)
	}
	if got := c.ExecutedUnits(); got != want {
		t.Fatalf("executed %d unit slots, live jobs total %d", got, want)
	}
	if got := c.WithdrawnCount(); got != len(withdrawn) {
		t.Fatalf("cluster reports %d withdrawn jobs, test tracked %d", got, len(withdrawn))
	}
}

// TestWithdrawReinjectConservation: withdrawing queued jobs and
// re-injecting some of them at arbitrary event times never loses,
// duplicates or resurrects work — whatever the interleaving, the
// drained schedule runs exactly the live jobs.
func TestWithdrawReinjectConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInstance(r, false)
		c := New(in, in.Grand(), randPolicy(seed+1), stats.NewRand(seed+2))
		withdrawn := map[int]bool{}
		horizon := drainHorizon(in)
		for step := 0; step < 300 && c.Step(horizon); step++ {
			if q := queuedJobs(c); len(q) > 0 && r.Intn(3) == 0 {
				id := q[r.Intn(len(q))]
				org := in.Jobs[id].Org
				ok, err := c.Withdraw(org, id)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("queued job %d not withdrawable", id)
				}
				if again, _ := c.Withdraw(org, id); again {
					t.Fatalf("job %d withdrawn twice", id)
				}
				withdrawn[id] = true
			}
			if len(withdrawn) > 0 && r.Intn(4) == 0 {
				ids := make([]int, 0, len(withdrawn))
				for id := range withdrawn {
					ids = append(ids, id)
				}
				sort.Ints(ids)
				id := ids[r.Intn(len(ids))]
				if err := c.Inject(id); err != nil {
					t.Fatalf("reinject job %d: %v", id, err)
				}
				delete(withdrawn, id)
			}
		}
		c.Run(horizon)
		checkWithdrawInvariants(t, in, c, withdrawn)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// lowestOrgPolicy is a deterministic stateless policy (lowest waiting
// organization wins) for restore-replay comparisons.
func lowestOrgPolicy() Policy {
	return &SelectFunc{
		PolicyName: "lowest",
		F: func(v *View, _ model.Time, _ int) int {
			for org := 0; org < v.Orgs(); org++ {
				if v.Waiting(org) > 0 {
					return org
				}
			}
			panic("no waiting organization")
		},
	}
}

// TestWithdrawCheckpointRoundTrip: a state capture taken right after a
// withdrawal restores into a fresh cluster byte-identically (withdrawn
// list included) and replays the identical future schedule.
func TestWithdrawCheckpointRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(3000 + seed))
		in := randInstance(r, false)
		a := New(in, in.Grand(), lowestOrgPolicy(), nil)
		a.Run(in.Horizon() / 2)
		q := queuedJobs(a)
		if len(q) == 0 {
			continue
		}
		id := q[len(q)/2]
		if ok, err := a.Withdraw(in.Jobs[id].Org, id); err != nil || !ok {
			t.Fatalf("seed %d: withdraw queued job %d: ok=%v err=%v", seed, id, ok, err)
		}
		st := a.CaptureState()
		b := New(in, in.Grand(), lowestOrgPolicy(), nil)
		if err := b.RestoreState(st); err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		aj, err := json.Marshal(a.CaptureState())
		if err != nil {
			t.Fatal(err)
		}
		bj, err := json.Marshal(b.CaptureState())
		if err != nil {
			t.Fatal(err)
		}
		if string(aj) != string(bj) {
			t.Fatalf("seed %d: restored capture differs:\n%s\nvs\n%s", seed, aj, bj)
		}
		horizon := drainHorizon(in)
		a.Run(horizon)
		b.Run(horizon)
		as, bs := a.Starts(), b.Starts()
		if len(as) != len(bs) {
			t.Fatalf("seed %d: %d vs %d starts after restore", seed, len(as), len(bs))
		}
		for i := range as {
			if as[i] != bs[i] {
				t.Fatalf("seed %d: start %d differs: %+v vs %+v", seed, i, as[i], bs[i])
			}
		}
	}
}

// TestWithdrawArgumentValidation pins the Withdraw error/no-op surface.
func TestWithdrawArgumentValidation(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1}, {Name: "B", Machines: 1}},
		[]model.Job{
			{Org: 0, Release: 0, Size: 3},
			{Org: 0, Release: 0, Size: 3},
			{Org: 0, Release: 0, Size: 3},
			{Org: 1, Release: 5, Size: 2},
		},
	)
	c := New(in, in.Grand(), lowestOrgPolicy(), nil)
	c.Run(0) // jobs 0,1 start (two machines), job 2 queues, job 3 pending
	if _, err := c.Withdraw(0, 99); err == nil {
		t.Error("unknown job accepted")
	}
	if _, err := c.Withdraw(1, 2); err == nil {
		t.Error("mismatched organization accepted")
	}
	if ok, err := c.Withdraw(0, 0); ok || err != nil {
		t.Errorf("running job withdrawable: ok=%v err=%v", ok, err)
	}
	if ok, err := c.Withdraw(0, 2); !ok || err != nil {
		t.Fatalf("queued job not withdrawable: ok=%v err=%v", ok, err)
	}
	if ok, err := c.Withdraw(1, 3); !ok || err != nil {
		t.Fatalf("pending job not withdrawable: ok=%v err=%v", ok, err)
	}
	if got := c.WithdrawnCount(); got != 2 {
		t.Fatalf("withdrawn count %d, want 2", got)
	}
	// Non-member organizations are ignored, mirroring Inject.
	solo := New(in, model.Singleton(0), lowestOrgPolicy(), nil)
	if ok, err := solo.Withdraw(1, 3); ok || err != nil {
		t.Errorf("non-member withdraw: ok=%v err=%v", ok, err)
	}
}

// FuzzWithdrawReinject drives an arbitrary byte-directed interleaving
// of event stepping, withdrawals and re-injections, then drains and
// checks the conservation invariants — the structured-random sibling of
// TestWithdrawReinjectConservation for the corners a uniform RNG rarely
// hits (withdraw storms, immediate reinjection, empty queues).
func FuzzWithdrawReinject(f *testing.F) {
	f.Add(int64(1), []byte{0, 4, 8, 1, 2, 5})
	f.Add(int64(7), []byte{1, 1, 1, 2, 2, 2, 0, 0})
	f.Add(int64(42), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		r := rand.New(rand.NewSource(seed))
		in := randInstance(r, false)
		c := New(in, in.Grand(), randPolicy(seed+1), stats.NewRand(seed+2))
		withdrawn := map[int]bool{}
		horizon := drainHorizon(in)
		if len(ops) > 256 {
			ops = ops[:256]
		}
		for _, b := range ops {
			switch b % 3 {
			case 0:
				c.Step(horizon)
			case 1:
				q := queuedJobs(c)
				if len(q) == 0 {
					continue
				}
				id := q[int(b/3)%len(q)]
				ok, err := c.Withdraw(in.Jobs[id].Org, id)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("queued job %d not withdrawable", id)
				}
				withdrawn[id] = true
			case 2:
				w := c.WithdrawnJobs(nil)
				if len(w) == 0 {
					continue
				}
				id := w[int(b/3)%len(w)]
				if err := c.Inject(id); err != nil {
					t.Fatalf("reinject job %d: %v", id, err)
				}
				delete(withdrawn, id)
			}
		}
		c.Run(horizon)
		checkWithdrawInvariants(t, in, c, withdrawn)
	})
}

// The Figure 7 pair is exactly tight: ratio 3/4. Keep it as the extremal
// witness for the bound above.
func TestFigure7IsTight(t *testing.T) {
	a := New(figure7Instance(), model.Grand(2), orgPriority(1, 0), nil)
	a.Run(6)
	b := New(figure7Instance(), model.Grand(2), orgPriority(0, 1), nil)
	b.Run(6)
	if 4*b.ExecutedUnits() != 3*a.ExecutedUnits() {
		t.Fatalf("Figure 7 not tight: %d vs %d", b.ExecutedUnits(), a.ExecutedUnits())
	}
}
