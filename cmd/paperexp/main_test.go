package main

import (
	"bytes"
	"strings"
	"testing"
)

// tinyRun executes the CLI with scaled-down budgets and returns stdout.
func tinyRun(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v (stderr: %s)", args, err, stderr.String())
	}
	return stdout.String()
}

// The worked examples (Figures 2 and 7) are exact: the smoke test pins
// the paper's numbers, not just the rendering.
func TestRunFigures(t *testing.T) {
	out := tinyRun(t, "-fig2", "-fig7")
	for _, want := range []string{
		"ψsp(O1, t=13) = 262",
		"ψsp(O1, t=14) = 297",
		"flow time(14) = 70",
		"utilization = 1.00",
		"utilization = 0.75",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// The table harness end to end at a toy horizon: every family row
// renders with every algorithm column.
func TestRunTable1Tiny(t *testing.T) {
	out := tinyRun(t, "-table1", "-horizon1", "300", "-instances", "1", "-rand-n", "2")
	for _, want := range []string{"Table 1", "LPC-EGEE", "PIK-IPLEX", "SHARCNET-Whale", "RICC", "Rand(N=2)", "DirectContr", "FairShare"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

// The Figure 10 organization sweep at a toy horizon.
func TestRunFig10Tiny(t *testing.T) {
	out := tinyRun(t, "-fig10", "-horizon1", "200", "-instances", "1", "-rand-n", "2", "-max-orgs", "3")
	for _, want := range []string{"Figure 10", "k=2", "k=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
}

// The federated delegation table at a toy budget: every policy row and
// metric column renders, including the FedREF routing.
func TestRunFedTiny(t *testing.T) {
	out := tinyRun(t, "-fed", "-fed-horizon", "1200", "-instances", "2",
		"-fed-policies", "local,leastloaded,fairness,fairness-decay,fedref")
	for _, want := range []string{"Federated delegation", "offload%", "value", "Δψ/p_tot",
		"local", "leastloaded", "fairness", "fairness-decay", "fedref"} {
		if !strings.Contains(out, want) {
			t.Errorf("federated table missing %q:\n%s", want, out)
		}
	}
}

// The staleness knob reaches the harness: a stale run still renders.
func TestRunFedStaleTiny(t *testing.T) {
	out := tinyRun(t, "-fed", "-fed-horizon", "1000", "-instances", "1",
		"-fed-staleness", "400", "-fed-policies", "local,fedref")
	if !strings.Contains(out, "staleness 400") {
		t.Errorf("staleness not threaded through:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err == nil {
		t.Fatal("empty selection accepted")
	}
	if err := run([]string{"-table1", "-ref-driver", "bogus"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown REF driver accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-fed", "-fed-policies", "bogus", "-instances", "1"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown delegation policy accepted")
	}
}

// The admission ablation at a toy budget: every (variant × load) row
// and metric column renders, and overload rows actually shed load.
func TestRunAdmissionTiny(t *testing.T) {
	out := tinyRun(t, "-admission", "-admission-horizon", "1200", "-instances", "1",
		"-admission-loads", "1,2")
	for _, want := range []string{"Admission control", "admit%", "reject%", "Δψ/p_tot", "t_decide",
		"always ×1", "tokenbucket ×2", "backpressure ×2"} {
		if !strings.Contains(out, want) {
			t.Errorf("admission table missing %q:\n%s", want, out)
		}
	}
}

func TestRunAdmissionRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-admission", "-admission-variants", "bogus", "-instances", "1"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown admission variant accepted")
	}
	if err := run([]string{"-admission", "-admission-loads", "0", "-instances", "1"}, &stdout, &stderr); err == nil {
		t.Fatal("zero load factor accepted")
	}
	if err := run([]string{"-admission", "-admission-routing", "bogus", "-instances", "1"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown routing policy accepted")
	}
}
