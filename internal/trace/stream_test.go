package trace

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

const smallSWF = `; Version: 2.2
; Computer: test cluster
1 0 -1 10 2 -1 -1 2 -1 -1 1 7 -1 -1 -1 -1 -1 -1
2 5 -1 -1 1 -1 -1 1 -1 -1 0 8 -1 -1 -1 -1 -1 -1
3 9 -1 4 1 -1 -1 1 -1 -1 1 7 -1 -1 -1 -1 -1 -1
`

func TestReaderStreamsRecords(t *testing.T) {
	r := NewReader(strings.NewReader(smallSWF))
	var jobs []Job
	for {
		j, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if len(jobs) != 2 {
		t.Fatalf("streamed %d jobs, want 2 (one record has runtime -1)", len(jobs))
	}
	if r.Skipped() != 1 {
		t.Fatalf("skipped = %d, want 1", r.Skipped())
	}
	if len(r.Header()) != 2 || !strings.HasPrefix(r.Header()[0], "Version") {
		t.Fatalf("header = %v", r.Header())
	}
	if jobs[0].ID != 1 || jobs[0].Runtime != 10 || jobs[0].Procs != 2 || jobs[1].Submit != 9 {
		t.Fatalf("records misparsed: %+v", jobs)
	}
	// Exhausted readers keep returning EOF.
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next: %v", err)
	}
}

// The old Scanner-based parser aborted the whole parse on any line over
// 1 MiB — archive traces with long header comments hit that. The
// streaming reader has no line cap.
func TestNoLineLengthCap(t *testing.T) {
	long := "; " + strings.Repeat("x", 3*1024*1024)
	input := long + "\n" + "1 0 -1 10 1 -1 -1 1 -1 -1 1 7 -1 -1 -1 -1 -1 -1\n"

	tr, skipped, err := ParseSWF(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ParseSWF rejected a 3 MiB header line: %v", err)
	}
	if skipped != 0 || len(tr.Jobs) != 1 {
		t.Fatalf("parse after long line: %d jobs, %d skipped", len(tr.Jobs), skipped)
	}
	if len(tr.Header) != 1 || len(tr.Header[0]) != 3*1024*1024 {
		t.Fatalf("long header lost: %d entries", len(tr.Header))
	}
}

func TestReaderMalformedLines(t *testing.T) {
	cases := []string{
		"1 2 3\n",                   // too few fields
		"a b c d e f g h i j k l\n", // non-numeric
	}
	for _, in := range cases {
		r := NewReader(strings.NewReader(in))
		if _, err := r.Next(); err == nil || err == io.EOF {
			t.Errorf("Next(%q) = %v, want parse error", in, err)
		}
	}
}

func TestReaderNoTrailingNewline(t *testing.T) {
	r := NewReader(strings.NewReader("1 0 -1 10 1 -1 -1 1 -1 -1 1 7 -1 -1 -1 -1 -1 -1"))
	j, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != 1 || j.Runtime != 10 {
		t.Fatalf("record misparsed: %+v", j)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// Reader and ParseSWF must agree record for record (ParseSWF is the
// batch wrapper of the reader, plus its submit-order sort).
func TestReaderMatchesParseSWF(t *testing.T) {
	var b strings.Builder
	b.WriteString("; generated\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "%d %d -1 %d %d -1 -1 %d -1 -1 1 %d -1 -1 -1 -1 -1 -1\n",
			i, (i*37)%500, 1+i%9, 1+i%4, 1+i%4, i%13)
	}
	tr, skipped, err := ParseSWF(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(strings.NewReader(b.String()))
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(tr.Jobs) || r.Skipped() != skipped {
		t.Fatalf("reader saw %d jobs (%d skipped), ParseSWF %d (%d)", n, r.Skipped(), len(tr.Jobs), skipped)
	}
}
