package sim

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/utility"
)

// This file is the cluster's online/checkpoint surface: Inject adds
// jobs that were not known when the cluster was built, and
// CaptureState/RestoreState serialize the full simulation state so a
// run can stop, persist, and resume byte-identically. Both are used by
// internal/engine; batch runs never touch them.

// Inject registers a job that was appended to the instance after the
// cluster was built (an online arrival). The job must already be in
// inst.Jobs at index id, must belong to a member organization (non-
// member jobs are ignored, mirroring New), and must not be released in
// the cluster's past: its release becomes a future event exactly as if
// the job had been known from the start. A release equal to the current
// time is allowed — NextEventTime then fires at the current instant and
// the normal event path enqueues and dispatches it.
//
// A withdrawn job may be re-injected: it becomes a pending release
// again and rides the normal event path — NextEventTime clamps a
// by-now-past release to the current instant, so the job is
// re-enqueued (at its queue's tail, exactly where a job released "now"
// would land) and dispatched at the next event, whichever driver runs
// the cluster. This is the unqueue/requeue round-trip federated
// migration is built on.
func (c *Cluster) Inject(id int) error {
	if id < 0 || id >= len(c.inst.Jobs) {
		return fmt.Errorf("sim: inject: job %d not in instance", id)
	}
	j := c.inst.Jobs[id]
	if !c.coal.Has(j.Org) {
		return nil
	}
	if !c.unwithdraw(id) && j.Release < c.now {
		return fmt.Errorf("sim: inject: job %d released at %d, before current time %d", id, j.Release, c.now)
	}
	// Keep releaseOrder[nextRelease:] sorted by (Release, ID): the
	// pending suffix is scanned in order by releaseUpTo.
	pending := c.releaseOrder[c.nextRelease:]
	pos := sort.Search(len(pending), func(i int) bool {
		o := c.inst.Jobs[pending[i]]
		if o.Release != j.Release {
			return o.Release > j.Release
		}
		return o.ID > id
	})
	at := c.nextRelease + pos
	c.releaseOrder = append(c.releaseOrder, 0)
	copy(c.releaseOrder[at+1:], c.releaseOrder[at:])
	c.releaseOrder[at] = id
	return nil
}

// RunEntryState is the serializable form of one executing job.
type RunEntryState struct {
	End     model.Time `json:"end"`
	Machine int        `json:"machine"`
	Job     int        `json:"job"`
	Start   model.Time `json:"start"`
	AccFrom model.Time `json:"acc_from"`
}

// ClusterState is the complete serializable simulation state of one
// cluster. Together with the instance (organizations and the full job
// list including injected arrivals) and the policy/RNG state captured
// by the driver, it determines every future scheduling decision:
// restoring it into a freshly built cluster resumes the run
// byte-identically (queues, the running heap's array layout, free-list
// order and accrual bookkeeping are all preserved verbatim).
type ClusterState struct {
	Coalition     model.Coalition   `json:"coalition"`
	Now           model.Time        `json:"now"`
	FlushedAt     model.Time        `json:"flushed_at"`
	ReleaseOrder  []int             `json:"release_order"`
	NextRelease   int               `json:"next_release"`
	Queues        [][]int           `json:"queues"` // waiting job IDs per org, FIFO
	Free          []int             `json:"free"`
	Running       []RunEntryState   `json:"running"` // heap array order
	RunningPerOrg []int             `json:"running_per_org"`
	OrgAcct       []utility.Account `json:"org_acct"`
	OwnAcct       []utility.Account `json:"own_acct"`
	Total         utility.Account   `json:"total"`
	Starts        []Start           `json:"starts"`
	// Withdrawn lists jobs removed by Withdraw (and not re-injected),
	// in withdrawal order. Empty on clusters that never migrate, so the
	// serialized form of migration-free runs is unchanged.
	Withdrawn []int `json:"withdrawn,omitempty"`
}

// CaptureState snapshots the cluster's full simulation state. The
// cluster is not mutated, so concurrent captures of distinct clusters
// are safe.
func (c *Cluster) CaptureState() ClusterState {
	k := len(c.inst.Orgs)
	st := ClusterState{
		Coalition:     c.coal,
		Now:           c.now,
		FlushedAt:     c.flushedAt,
		ReleaseOrder:  append([]int(nil), c.releaseOrder...),
		NextRelease:   c.nextRelease,
		Queues:        make([][]int, k),
		Free:          append([]int(nil), c.free...),
		Running:       make([]RunEntryState, len(c.running)),
		RunningPerOrg: append([]int(nil), c.runningPerOrg...),
		OrgAcct:       append([]utility.Account(nil), c.orgAcct...),
		OwnAcct:       append([]utility.Account(nil), c.ownAcct...),
		Total:         c.total,
		Starts:        append([]Start(nil), c.starts...),
		Withdrawn:     append([]int(nil), c.withdrawn...),
	}
	for org := 0; org < k; org++ {
		st.Queues[org] = append([]int(nil), c.queues[org][c.qHead[org]:]...)
	}
	for i, r := range c.running {
		st.Running[i] = RunEntryState{End: r.end, Machine: r.machine, Job: r.job, Start: r.start, AccFrom: r.accFrom}
	}
	return st
}

// RestoreState overwrites the cluster's simulation state with a capture
// taken from an identically-configured cluster (same instance including
// injected jobs, same coalition, same policy kind). The policy's own
// state, if any, is restored separately by the driver.
func (c *Cluster) RestoreState(st ClusterState) error {
	k := len(c.inst.Orgs)
	if st.Coalition != c.coal {
		return fmt.Errorf("sim: restore: coalition %v into cluster of %v", st.Coalition, c.coal)
	}
	if len(st.Queues) != k || len(st.RunningPerOrg) != k || len(st.OrgAcct) != k || len(st.OwnAcct) != k {
		return fmt.Errorf("sim: restore: state sized for %d organizations, cluster has %d", len(st.Queues), k)
	}
	if got := len(st.Free) + len(st.Running); got != len(c.owners) {
		return fmt.Errorf("sim: restore: %d machines in state, cluster has %d", got, len(c.owners))
	}
	for _, id := range st.ReleaseOrder {
		if id < 0 || id >= len(c.inst.Jobs) {
			return fmt.Errorf("sim: restore: release order references unknown job %d", id)
		}
	}
	if st.NextRelease < 0 || st.NextRelease > len(st.ReleaseOrder) {
		return fmt.Errorf("sim: restore: next release index %d out of range", st.NextRelease)
	}
	for org, q := range st.Queues {
		for _, id := range q {
			if id < 0 || id >= len(c.inst.Jobs) {
				return fmt.Errorf("sim: restore: queue references unknown job %d", id)
			}
			if c.inst.Jobs[id].Org != org {
				return fmt.Errorf("sim: restore: job %d queued under organization %d, belongs to %d", id, org, c.inst.Jobs[id].Org)
			}
		}
	}
	for _, r := range st.Running {
		if r.Job < 0 || r.Job >= len(c.inst.Jobs) {
			return fmt.Errorf("sim: restore: running entry references unknown job %d", r.Job)
		}
		if r.Machine < 0 || r.Machine >= len(c.owners) {
			return fmt.Errorf("sim: restore: running entry on unknown machine %d", r.Machine)
		}
	}
	for _, id := range st.Withdrawn {
		if id < 0 || id >= len(c.inst.Jobs) {
			return fmt.Errorf("sim: restore: withdrawn list references unknown job %d", id)
		}
		if !c.coal.Has(c.inst.Jobs[id].Org) {
			return fmt.Errorf("sim: restore: withdrawn job %d belongs to non-member organization %d", id, c.inst.Jobs[id].Org)
		}
	}
	c.now = st.Now
	c.flushedAt = st.FlushedAt
	c.releaseOrder = append([]int(nil), st.ReleaseOrder...)
	c.nextRelease = st.NextRelease
	c.totalWaiting = 0
	for org := 0; org < k; org++ {
		c.queues[org] = append([]int(nil), st.Queues[org]...)
		c.qHead[org] = 0
		c.totalWaiting += len(st.Queues[org])
	}
	c.free = append([]int(nil), st.Free...)
	c.running = make(runHeap, len(st.Running))
	for i, r := range st.Running {
		c.running[i] = runEntry{end: r.End, machine: r.Machine, job: r.Job, start: r.Start, accFrom: r.AccFrom}
	}
	copy(c.runningPerOrg, st.RunningPerOrg)
	copy(c.orgAcct, st.OrgAcct)
	copy(c.ownAcct, st.OwnAcct)
	c.total = st.Total
	c.starts = append([]Start(nil), st.Starts...)
	c.withdrawn = append([]int(nil), st.Withdrawn...)
	return nil
}
