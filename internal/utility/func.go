package utility

import "repro/internal/model"

// Func is a pluggable utility function ψ: the value an organization
// derives from the schedule of its own jobs, evaluated at a time moment.
// The paper's framework (Section 3, Algorithm REF of Figure 1) accepts
// any envy-free, non-clairvoyant ψ; Section 4 then argues only ψsp is
// strategy-proof. Alternative utilities are provided for the general
// algorithm and for demonstrating why they fail the axioms.
//
// Implementations must be non-clairvoyant: the value at time t may
// depend only on execution that happened strictly before t plus the
// identity of starts at or before t — never on the unexecuted remainder
// of a job.
type Func interface {
	Name() string
	Eval(execs []Execution, t model.Time) int64
}

// SP is the strategy-proof utility ψsp of Theorem 4.1 (Equation 3) —
// the utility the paper's schedulers optimize.
type SP struct{}

// Name implements Func.
func (SP) Name() string { return "psi_sp" }

// Eval implements Func.
func (SP) Eval(execs []Execution, t model.Time) int64 { return Psi(execs, t) }

// Starts values a schedule by the number of jobs started by t. It
// reacts instantly to scheduling decisions (Δψ = 1 at start time),
// making it the simplest utility for which Figure 1's Distance
// procedure is non-degenerate. It violates strategy-resistance:
// splitting jobs inflates it.
type Starts struct{}

// Name implements Func.
func (Starts) Name() string { return "starts" }

// Eval implements Func.
func (Starts) Eval(execs []Execution, t model.Time) int64 {
	var n int64
	for _, e := range execs {
		if e.Start <= t {
			n++
		}
	}
	return n
}

// CompletedWork values a schedule by its executed unit slots — the
// resource-utilization utility mentioned in Section 2. It satisfies
// strategy-resistance but not start-time anonymity (delaying costs
// nothing once work completes before t).
type CompletedWork struct{}

// Name implements Func.
func (CompletedWork) Name() string { return "completed_work" }

// Eval implements Func.
func (CompletedWork) Eval(execs []Execution, t model.Time) int64 {
	var n int64
	for _, e := range execs {
		n += ExecutedUnits(e.Start, e.Size, t)
	}
	return n
}
