// Consortium: the paper's motivating scenario at realistic scale. Five
// organizations of very different sizes (Zipf machine split) federate
// their clusters; jobs arrive in per-user bursts from a synthetic
// LPC-EGEE-like trace. The example reproduces, on one instance, the
// evaluation pipeline behind the paper's Table 1: run the exact fair
// algorithm REF as reference, then measure how far each practical
// scheduler drifts from it.
//
// Run with:
//
//	go run ./examples/consortium
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/stats"
)

func main() {
	const (
		orgs    = 5
		horizon = model.Time(20000)
		seed    = 42
	)
	family := gen.LPCEGEE()
	machines := stats.ZipfSplit(family.Procs, orgs, 1)
	inst, err := family.Instance(horizon, orgs, machines, stats.NewRand(seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("consortium: %d organizations, %d machines %v, %d jobs over %d time units\n\n",
		orgs, inst.TotalMachines(), machines, len(inst.Jobs), horizon)

	fmt.Println("Reference run (REF, exact Shapley contributions):")
	ref := core.RefAlgorithm{Opts: core.RefOptions{Parallel: true}}.Run(inst, horizon, seed)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "  org\tmachines\tψ (utility)\tφ (contribution)\tφ−ψ")
	for i, o := range inst.Orgs {
		fmt.Fprintf(w, "  %s\t%d\t%d\t%.0f\t%+.0f\n",
			o.Name, o.Machines, ref.Psi[i], ref.Phi[i], ref.Phi[i]-float64(ref.Psi[i]))
	}
	w.Flush()
	fmt.Printf("  (a positive φ−ψ means the organization is still owed service)\n\n")

	fmt.Println("Unfairness Δψ/p_tot of the practical algorithms on this instance:")
	for _, alg := range exp.DefaultAlgorithms(15) {
		res := alg.Run(inst, horizon, seed)
		fmt.Printf("  %-16s %8.2f\n", res.Algorithm,
			metrics.UnfairnessPerUnit(res.Psi, ref.Psi, ref.Ptot))
	}
	fmt.Println("\nThe Shapley-aware schedulers (Rand, DirectContr) track the exact")
	fmt.Println("fair schedule far more closely than static-share fair share — the")
	fmt.Println("paper's central experimental claim.")
}
