package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ctrl"
	"repro/internal/model"
)

// feedStreaming drives an engine through the standard online pattern:
// jobs fed just before their release instants, interleaved with
// 3-tick Steps, then a final Step to the horizon.
func feedStreaming(t *testing.T, e *Engine, jobs []model.Job, horizon model.Time) {
	t.Helper()
	next := 0
	for tm := model.Time(0); tm < horizon; tm += 3 {
		var arrivals []model.Job
		for next < len(jobs) && jobs[next].Release <= tm {
			arrivals = append(arrivals, jobs[next])
			next++
		}
		if _, err := e.Feed(arrivals); err != nil {
			t.Fatalf("feed at %d: %v", tm, err)
		}
		if _, err := e.Step(tm); err != nil {
			t.Fatalf("step to %d: %v", tm, err)
		}
	}
	if next < len(jobs) {
		t.Fatalf("test bug: %d jobs never fed", len(jobs)-next)
	}
	if _, err := e.Step(horizon); err != nil {
		t.Fatal(err)
	}
}

// TestGateDifferential is the single-cluster half of the acceptance
// differential: an engine gated by AlwaysAdmit at staleness 0 produces
// a byte-identical run — same decision trace, ψ, bitwise φ — to the
// ungated engine, for every algorithm.
func TestGateDifferential(t *testing.T) {
	for _, alg := range steppers() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				r := rand.New(rand.NewSource(900 + seed))
				inst := testInstance(r, 2+r.Intn(4))
				horizon := inst.Horizon() + 2

				empty, err := model.NewInstance(inst.Orgs, nil)
				if err != nil {
					t.Fatal(err)
				}
				plain := New(alg, empty.Clone(), seed)
				feedStreaming(t, plain, inst.Jobs, horizon)

				gated := New(alg, empty.Clone(), seed)
				if err := gated.SetAdmission(&ctrl.PolicySpec{Policy: "always"}); err != nil {
					t.Fatal(err)
				}
				feedStreaming(t, gated, inst.Jobs, horizon)

				assertSameRun(t, "gated vs direct", plain.Result(), gated.Result(), plain.Decisions(), gated.Decisions())
				st := gated.AdmissionStats()
				if st.TotalRejected() != 0 || st.TotalDeferred() != 0 {
					t.Fatalf("always-admit rejected %d / deferred %d", st.TotalRejected(), st.TotalDeferred())
				}
				if st.TotalAdmitted() != int64(len(inst.Jobs)) {
					t.Fatalf("admitted %d of %d fed jobs", st.TotalAdmitted(), len(inst.Jobs))
				}
			}
		})
	}
}

// gateWorkload is a deterministic overload: one machine, two orgs,
// size-4 jobs every 2 ticks — 2× the service rate.
func gateWorkload() ([]model.Org, []model.Job) {
	orgs := []model.Org{{Name: "A", Machines: 1}, {Name: "B", Machines: 0}}
	var jobs []model.Job
	for i := 0; i < 40; i++ {
		jobs = append(jobs, model.Job{Org: i % 2, Size: 4, Release: model.Time(2 * i)})
	}
	return orgs, jobs
}

// TestGateTokenBucketOverload: a token bucket in front of a saturated
// engine sheds load — the run completes with substantial rejects and
// the per-organization conservation law intact.
func TestGateTokenBucketOverload(t *testing.T) {
	orgs, jobs := gateWorkload()
	empty, err := model.NewInstance(orgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := New(steppers()[0], empty, 1)
	// ~1 size-4 job per 8 ticks: half the offered rate per org pair.
	if err := e.SetAdmission(&ctrl.PolicySpec{Policy: "tokenbucket", Rate: 1, Period: 8, Burst: 1, MaxAttempts: 2}); err != nil {
		t.Fatal(err)
	}
	feedStreaming(t, e, jobs, 400)
	st := e.AdmissionStats()
	if err := st.CheckConserved(); err != nil {
		t.Fatal(err)
	}
	if st.TotalReleased() != 40 || st.TotalDeferred() != 0 {
		t.Fatalf("released %d (deferred %d) after a full drain, fed 40", st.TotalReleased(), st.TotalDeferred())
	}
	if st.TotalRejected() == 0 || st.TotalAdmitted() == 0 {
		t.Fatalf("overload shed nothing or everything: %d admitted, %d rejected", st.TotalAdmitted(), st.TotalRejected())
	}
	if got := int64(len(e.Instance().Jobs)); got != st.TotalAdmitted() {
		t.Fatalf("%d jobs reached the schedule, %d admitted", got, st.TotalAdmitted())
	}
}

// TestGateBackpressureStaleness: queue-depth admission acting on a
// bounded-staleness load view stays deterministic and conserves; the
// stale view changes decisions relative to the fresh one.
func TestGateBackpressureStaleness(t *testing.T) {
	run := func(staleness model.Time) *Engine {
		orgs, jobs := gateWorkload()
		empty, err := model.NewInstance(orgs, nil)
		if err != nil {
			t.Fatal(err)
		}
		e := New(steppers()[0], empty, 1)
		spec := &ctrl.PolicySpec{Policy: "backpressure", MaxWaiting: 2, RetryAfter: 3, MaxAttempts: 4, Staleness: staleness}
		if err := e.SetAdmission(spec); err != nil {
			t.Fatal(err)
		}
		feedStreaming(t, e, jobs, 400)
		if err := e.AdmissionStats().CheckConserved(); err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := run(20), run(20)
	if fmt.Sprintf("%+v", a.AdmissionStats()) != fmt.Sprintf("%+v", b.AdmissionStats()) {
		t.Fatal("two identically configured stale-view runs diverged")
	}
	fresh := run(0)
	if fmt.Sprintf("%+v", fresh.AdmissionStats()) == fmt.Sprintf("%+v", a.AdmissionStats()) {
		t.Fatal("a 20-tick-stale load view admitted identically to a fresh one — the staleness knob is inert at the gate")
	}
	if fresh.AdmissionStats().TotalDeferred() != 0 || a.AdmissionStats().TotalDeferred() != 0 {
		t.Fatal("jobs left deferred after a full drain")
	}
}

// TestGateCheckpointRestore: a gated engine snapshotted mid-round —
// deferred admissions pending, bucket levels mid-drain, the staleness
// cache live — restores through the envelope and continues identically
// to the uninterrupted run, for every algorithm.
func TestGateCheckpointRestore(t *testing.T) {
	orgs, jobs := gateWorkload()
	for _, alg := range steppers() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			spec := &ctrl.PolicySpec{Policy: "tokenbucket", Rate: 1, Period: 8, Burst: 1, MaxAttempts: 2, Staleness: 10}
			build := func() *Engine {
				empty, err := model.NewInstance(orgs, nil)
				if err != nil {
					t.Fatal(err)
				}
				e := New(alg, empty, 7)
				if err := e.SetAdmission(spec); err != nil {
					t.Fatal(err)
				}
				return e
			}
			straight := build()
			feedStreaming(t, straight, jobs, 400)

			// Replay the same stream, but snapshot/restore at t=45 — an
			// instant with control events in flight.
			half := build()
			next := 0
			restoreAt := model.Time(45)
			var resumed *Engine
			for tm := model.Time(0); tm < 400; tm += 3 {
				e := half
				if resumed != nil {
					e = resumed
				}
				var arrivals []model.Job
				for next < len(jobs) && jobs[next].Release <= tm {
					arrivals = append(arrivals, jobs[next])
					next++
				}
				if _, err := e.Feed(arrivals); err != nil {
					t.Fatal(err)
				}
				if _, err := e.Step(tm); err != nil {
					t.Fatal(err)
				}
				if tm == restoreAt {
					if e.plane.Pending() == 0 {
						t.Fatal("checkpoint instant carries no pending control events — the test is not exercising mid-round state")
					}
					snap, err := e.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					resumed, err = RestoreGated(alg, snap)
					if err != nil {
						t.Fatal(err)
					}
				}
			}
			if resumed == nil {
				t.Fatal("test bug: restore point never reached")
			}
			if _, err := resumed.Step(400); err != nil {
				t.Fatal(err)
			}
			assertSameRun(t, "resumed vs straight", straight.Result(), resumed.Result(), straight.Decisions(), resumed.Decisions())
			if fmt.Sprintf("%+v", straight.AdmissionStats()) != fmt.Sprintf("%+v", resumed.AdmissionStats()) {
				t.Fatalf("admission stats diverged:\n%+v\n%+v", straight.AdmissionStats(), resumed.AdmissionStats())
			}
		})
	}
}

// TestGateSnapshotEnvelopes: gated and bare snapshots are distinct
// formats and each restore entry point rejects the other's.
func TestGateSnapshotEnvelopes(t *testing.T) {
	orgs, jobs := gateWorkload()
	alg := steppers()[0]
	empty, err := model.NewInstance(orgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	bare := New(alg, empty.Clone(), 1)
	if _, err := bare.Feed(jobs[:1]); err != nil {
		t.Fatal(err)
	}
	bareSnap, err := bare.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreGated(alg, bareSnap); err == nil {
		t.Fatal("RestoreGated accepted a bare core checkpoint")
	}

	gated := New(alg, empty.Clone(), 1)
	if err := gated.SetAdmission(&ctrl.PolicySpec{Policy: "always"}); err != nil {
		t.Fatal(err)
	}
	if _, err := gated.Feed(jobs[:1]); err != nil {
		t.Fatal(err)
	}
	gatedSnap, err := gated.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(alg, gatedSnap); err == nil {
		t.Fatal("Restore accepted a gated envelope")
	}
	if _, err := RestoreGated(alg, gatedSnap); err != nil {
		t.Fatal(err)
	}
}
