package model

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestGrand(t *testing.T) {
	for k := 0; k <= 10; k++ {
		g := Grand(k)
		if g.Size() != k {
			t.Errorf("Grand(%d).Size() = %d", k, g.Size())
		}
		for i := 0; i < k; i++ {
			if !g.Has(i) {
				t.Errorf("Grand(%d) missing member %d", k, i)
			}
		}
		if g.Has(k) {
			t.Errorf("Grand(%d) contains %d", k, k)
		}
	}
}

func TestGrandPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Grand(31) did not panic")
		}
	}()
	Grand(MaxOrgs + 1)
}

func TestWithWithout(t *testing.T) {
	var c Coalition
	c = c.With(3).With(5).With(3)
	if got := c.Members(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("Members() = %v, want [3 5]", got)
	}
	c = c.Without(3)
	if c.Has(3) || !c.Has(5) {
		t.Fatalf("after Without(3): %v", c)
	}
	if c.Without(3) != c {
		t.Fatal("Without of absent member changed the coalition")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := Singleton(0).With(2)
	b := Singleton(2).With(4)
	if got := a.Union(b); got.String() != "{0,2,4}" {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got.String() != "{2}" {
		t.Errorf("Intersect = %v", got)
	}
	if !a.Intersect(b).SubsetOf(a) || !a.Intersect(b).SubsetOf(b) {
		t.Error("intersection not a subset of operands")
	}
	if a.SubsetOf(b) {
		t.Error("a should not be subset of b")
	}
	if !Coalition(0).SubsetOf(a) || !Coalition(0).Empty() {
		t.Error("empty coalition misbehaves")
	}
}

func TestEachSubsetCount(t *testing.T) {
	c := Grand(5)
	n := 0
	c.EachSubset(func(Coalition) { n++ })
	if n != 32 {
		t.Fatalf("EachSubset visited %d subsets, want 32", n)
	}
	n = 0
	c.EachNonemptySubset(func(sub Coalition) {
		if sub.Empty() {
			t.Error("EachNonemptySubset yielded the empty coalition")
		}
		n++
	})
	if n != 31 {
		t.Fatalf("EachNonemptySubset visited %d subsets, want 31", n)
	}
}

func TestEachSubsetIsSubset(t *testing.T) {
	f := func(raw uint32) bool {
		c := Coalition(raw & 0x3FF) // keep it small
		ok := true
		seen := map[Coalition]bool{}
		c.EachSubset(func(sub Coalition) {
			if !sub.SubsetOf(c) || seen[sub] {
				ok = false
			}
			seen[sub] = true
		})
		return ok && len(seen) == 1<<uint(c.Size())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMembersMatchesSize(t *testing.T) {
	f := func(raw uint32) bool {
		c := Coalition(raw) & Grand(MaxOrgs)
		members := c.Members()
		if len(members) != c.Size() || c.Size() != bits.OnesCount32(uint32(c)) {
			return false
		}
		rebuilt := Coalition(0)
		for _, i := range members {
			rebuilt = rebuilt.With(i)
		}
		return rebuilt == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	if got := Coalition(0).String(); got != "{}" {
		t.Errorf("empty = %q", got)
	}
	if got := Singleton(7).String(); got != "{7}" {
		t.Errorf("singleton = %q", got)
	}
}
