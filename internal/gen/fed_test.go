package gen

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

func TestFedScenarioMachineGrid(t *testing.T) {
	s := DefaultFedScenario()
	grid := s.MachineGrid()
	if len(grid) != s.Clusters {
		t.Fatalf("grid has %d clusters, want %d", len(grid), s.Clusters)
	}
	total := 0
	for c, row := range grid {
		if len(row) != s.Orgs {
			t.Fatalf("cluster %d row has %d orgs, want %d", c, len(row), s.Orgs)
		}
		sum := 0
		for _, m := range row {
			if m < 0 {
				t.Fatalf("cluster %d has a negative machine count", c)
			}
			sum += m
		}
		if sum == 0 {
			t.Fatalf("cluster %d has no machines", c)
		}
		total += sum
	}
	if total != s.Base.Procs {
		t.Fatalf("grid places %d machines, budget is %d", total, s.Base.Procs)
	}
	// MachineSkew > 0 must actually produce heterogeneous sites.
	first, last := 0, 0
	for _, m := range grid[0] {
		first += m
	}
	for _, m := range grid[len(grid)-1] {
		last += m
	}
	if first <= last {
		t.Fatalf("machine skew %v produced no size gradient: first site %d, last %d", s.MachineSkew, first, last)
	}
	// Each org's machines must concentrate at a different site (the
	// rotated Zipf), so every org has a home where it is the largest
	// contributor.
	for o := 0; o < s.Orgs && o < s.Clusters; o++ {
		row := grid[o]
		for other := range row {
			if other != o && row[other] > row[o] {
				t.Fatalf("at cluster %d, org %d out-contributes the rotated home org %d (%v)", o, other, o, row)
			}
		}
	}
}

func TestFedScenarioGenerateDeterministicAndSkewed(t *testing.T) {
	s := DefaultFedScenario()
	s.Base = s.Base.Scale(0.2)
	w1, err := s.Generate(8000, stats.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := s.Generate(8000, stats.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	if w1.TotalJobs() == 0 {
		t.Fatal("scenario generated no jobs")
	}
	if w1.TotalJobs() != w2.TotalJobs() {
		t.Fatalf("same seed, different job counts: %d vs %d", w1.TotalJobs(), w2.TotalJobs())
	}
	for c := range w1.Jobs {
		if len(w1.Jobs[c]) != len(w2.Jobs[c]) {
			t.Fatalf("same seed, cluster %d stream lengths differ", c)
		}
		for i := range w1.Jobs[c] {
			if w1.Jobs[c][i] != w2.Jobs[c][i] {
				t.Fatalf("same seed, cluster %d job %d differs", c, i)
			}
		}
	}
	// Arrival skew: with LoadSkew 1 the first cluster must receive the
	// largest stream.
	if len(w1.Jobs[0]) <= len(w1.Jobs[s.Clusters-1]) {
		t.Fatalf("load skew %v produced no arrival gradient: %d vs %d jobs",
			s.LoadSkew, len(w1.Jobs[0]), len(w1.Jobs[s.Clusters-1]))
	}
	// Streams are release-sorted and structurally valid.
	for c, js := range w1.Jobs {
		var prev model.Time
		for i, j := range js {
			if j.Release < prev {
				t.Fatalf("cluster %d stream unsorted at %d", c, i)
			}
			prev = j.Release
			if j.Size < 1 || j.Org < 0 || j.Org >= s.Orgs {
				t.Fatalf("cluster %d job %d invalid: %+v", c, i, j)
			}
		}
	}
}

// TestFedScenarioDiurnalPhases: with strong modulation, each cluster's
// arrivals concentrate around its own phase of the period — the load
// peaks are staggered, which is the property delegation exploits.
func TestFedScenarioDiurnalPhases(t *testing.T) {
	s := DefaultFedScenario()
	s.Base = s.Base.Scale(0.4)
	s.LoadSkew = 0 // equal shares, isolate the phase effect
	s.Amplitude = 0.95
	w, err := s.Generate(16000, stats.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	// Mean phase angle per cluster, as a vector average over each
	// job's position within the period.
	for c, js := range w.Jobs {
		if len(js) < 50 {
			t.Fatalf("cluster %d stream too thin (%d jobs) to measure phase", c, len(js))
		}
		var sx, sy float64
		for _, j := range js {
			a := 2 * math.Pi * float64(j.Release%s.Period) / float64(s.Period)
			sx += math.Cos(a)
			sy += math.Sin(a)
		}
		got := math.Atan2(sy, sx)
		// Peak of 1+A·sin(2π(t+phase_c)/P) is at angle π/2 − 2π·c/C.
		want := math.Pi/2 - 2*math.Pi*float64(c)/float64(s.Clusters)
		diff := math.Abs(math.Atan2(math.Sin(got-want), math.Cos(got-want)))
		if diff > math.Pi/3 {
			t.Fatalf("cluster %d arrival phase %.2f rad, want within π/3 of %.2f", c, got, want)
		}
	}
}

func TestFedScenarioValidate(t *testing.T) {
	s := DefaultFedScenario()
	bad := s
	bad.Clusters = 0
	if _, err := bad.Generate(1000, stats.NewRand(1)); err == nil {
		t.Error("zero clusters accepted")
	}
	bad = s
	bad.Orgs = 0
	if _, err := bad.Generate(1000, stats.NewRand(1)); err == nil {
		t.Error("zero orgs accepted")
	}
	bad = s
	bad.Amplitude = 1.5
	if _, err := bad.Generate(1000, stats.NewRand(1)); err == nil {
		t.Error("amplitude >= 1 accepted")
	}
	bad = s
	bad.Base.Procs = bad.Clusters - 1
	if _, err := bad.Generate(1000, stats.NewRand(1)); err == nil {
		t.Error("fewer processors than clusters accepted")
	}
}
