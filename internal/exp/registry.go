package exp

import (
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sim"
)

// AlgorithmByName resolves a command-line algorithm name. randSamples
// and randOpts parameterize "rand"; refOpts parameterizes "ref".
func AlgorithmByName(name string, randSamples int, refOpts core.RefOptions, randOpts core.RandOptions) (core.Algorithm, error) {
	switch strings.ToLower(name) {
	case "ref":
		return core.RefAlgorithm{Opts: refOpts}, nil
	case "rand":
		return core.RandAlgorithm{Samples: randSamples, Opts: randOpts}, nil
	case "directcontr", "direct":
		return core.DirectContrAlgorithm(), nil
	case "nbs":
		return core.NbsAlgorithm{}, nil
	case "fairshare":
		return core.FromPolicy("FairShare", func() sim.Policy { return baseline.NewFairShare() }), nil
	case "utfairshare":
		return core.FromPolicy("UtFairShare", func() sim.Policy { return baseline.NewUtFairShare() }), nil
	case "currfairshare":
		return core.FromPolicy("CurrFairShare", func() sim.Policy { return baseline.NewCurrFairShare() }), nil
	case "roundrobin", "rr":
		return core.FromPolicy("RoundRobin", func() sim.Policy { return baseline.NewRoundRobin() }), nil
	case "fcfs":
		return core.FromPolicy("FCFS", func() sim.Policy { return baseline.NewFCFS() }), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want ref, rand, directcontr, nbs, fairshare, utfairshare, currfairshare, roundrobin or fcfs)", name)
	}
}
