package ctrl

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/model"
)

// TestEventQueueOrder drives random pushes through the queue and checks
// the drain order is exactly (timestamp, priority, seqID) — the
// control-plane decomposition contract: at an instant, every arrival
// precedes every admission verdict precedes every routing decision, and
// ties resolve FIFO.
func TestEventQueueOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q EventQueue
	var pushed []Event
	for i := 0; i < 500; i++ {
		e := Event{
			At:   model.Time(rng.Intn(40)),
			Prio: uint8(rng.Intn(3)),
			Job:  Job{Seq: int64(i)},
		}
		q.Push(e)
		e.ID = int64(i) // Push assigns IDs in push order
		pushed = append(pushed, e)
	}
	sort.SliceStable(pushed, func(a, b int) bool { return pushed[a].less(pushed[b]) })
	for i, want := range pushed {
		got, ok := q.Pop()
		if !ok {
			t.Fatalf("queue drained after %d of %d events", i, len(pushed))
		}
		if got.At != want.At || got.Prio != want.Prio || got.ID != want.ID {
			t.Fatalf("pop %d: got (%d,%d,%d), want (%d,%d,%d)",
				i, got.At, got.Prio, got.ID, want.At, want.Prio, want.ID)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue not empty after draining every push")
	}
}

// TestEventQueueInterleavedPushPop interleaves pushes with pops and
// checks the monotonicity invariant: a popped event is never earlier
// than the previously popped one when nothing earlier was pushed in
// between.
func TestEventQueueStateRoundTrip(t *testing.T) {
	var q EventQueue
	for i := 0; i < 20; i++ {
		q.Push(Event{At: model.Time(20 - i), Prio: uint8(i % 3), Job: Job{Seq: int64(i)}})
	}
	st := q.state()
	var r EventQueue
	r.restore(st)
	for q.Len() > 0 {
		a, _ := q.Pop()
		b, ok := r.Pop()
		if !ok || a != b {
			t.Fatalf("restored queue diverged: %+v vs %+v", a, b)
		}
	}
	if r.Len() != 0 {
		t.Fatal("restored queue has leftover events")
	}
}

// TestTokenBucketAdmission checks the bucket's integer refill/defer
// arithmetic: a full bucket admits a burst, an empty one defers to the
// exact refill instant, and retrying at that instant admits.
func TestTokenBucketAdmission(t *testing.T) {
	b := &TokenBucket{Rate: 1, Period: 10, Burst: 2} // 1 token per 10 ticks, cap 2
	job := Job{Org: 0, Size: 5}
	// Fresh bucket holds Burst tokens: two admits, then a defer.
	for i := 0; i < 2; i++ {
		if d := b.Decide(job, 0, 0, View{}); d.Verdict != Admitted {
			t.Fatalf("admit %d: got %v", i, d.Verdict)
		}
	}
	d := b.Decide(job, 0, 0, View{})
	if d.Verdict != Deferred {
		t.Fatalf("third job at t=0: got %v, want deferred", d.Verdict)
	}
	// Empty bucket at t=0, rate 1/10: one whole token costs 10 ticks.
	if d.RetryAt != 10 {
		t.Fatalf("retry at %d, want 10 (one token at 1/10 per tick)", d.RetryAt)
	}
	// At the retry instant the token is there.
	if d := b.Decide(job, 1, d.RetryAt, View{}); d.Verdict != Admitted {
		t.Fatalf("retry at refill instant: got %v, want admitted", d.Verdict)
	}
	// Partial refill defers by the exact remainder: at t=15 the bucket
	// holds 0.5 tokens, so the next full token lands at t=20.
	if d := b.Decide(job, 0, 15, View{}); d.Verdict != Deferred || d.RetryAt != 20 {
		t.Fatalf("partial refill: got %v retry %d, want deferred retry 20", d.Verdict, d.RetryAt)
	}
}

// TestTokenBucketSizeCostRejectsOversized: with size-based cost, a job
// larger than the bucket capacity can never fit and is rejected, not
// deferred forever.
func TestTokenBucketSizeCostRejectsOversized(t *testing.T) {
	b := &TokenBucket{Rate: 1, Period: 1, Burst: 4, SizeCost: true}
	if d := b.Decide(Job{Org: 0, Size: 3}, 0, 0, View{}); d.Verdict != Admitted {
		t.Fatalf("size 3 under cap 4: got %v", d.Verdict)
	}
	if d := b.Decide(Job{Org: 0, Size: 5}, 0, 0, View{}); d.Verdict != Rejected {
		t.Fatalf("size 5 over cap 4: got %v, want rejected", d.Verdict)
	}
}

// TestTokenBucketSizeCostOverflow: a size whose token cost wraps int64
// used to come out negative or tiny, slip under the capacity check and
// be admitted — exactly the overload job the bucket exists to stop. A
// non-representable cost must fail closed, and must not corrupt the
// bucket's level for later, honest jobs.
func TestTokenBucketSizeCostOverflow(t *testing.T) {
	const period = 1 << 20
	b := &TokenBucket{Rate: 1, Period: period, Burst: 8, SizeCost: true}
	// Size × Period wraps int64 (the old cost was a huge negative).
	huge := Job{Org: 0, Size: model.Time(math.MaxInt64/period + 2)}
	if d := b.Decide(huge, 0, 0, View{}); d.Verdict != Rejected {
		t.Fatalf("wrapping size cost: got %v, want rejected (fail closed)", d.Verdict)
	}
	// MaxInt64-sized jobs (Size × Period where Size itself is extreme).
	if d := b.Decide(Job{Org: 0, Size: model.Time(math.MaxInt64)}, 0, 0, View{}); d.Verdict != Rejected {
		t.Fatalf("MaxInt64 size: got %v, want rejected", d.Verdict)
	}
	// The failed giants consumed nothing: the full burst still admits.
	for i := 0; i < 8; i++ {
		if d := b.Decide(Job{Org: 0, Size: 1}, 0, 0, View{}); d.Verdict != Admitted {
			t.Fatalf("honest job %d after rejected giants: got %v", i, d.Verdict)
		}
	}
	if d := b.Decide(Job{Org: 0, Size: 1}, 0, 0, View{}); d.Verdict != Deferred {
		t.Fatalf("drained bucket: got %v, want deferred", d.Verdict)
	}
}

// TestTokenBucketBoundaryCost: a job costing exactly the bucket
// capacity is the largest admissible job — admitted from a full bucket,
// rejected at one token more.
func TestTokenBucketBoundaryCost(t *testing.T) {
	b := &TokenBucket{Rate: 1, Period: 3, Burst: 5, SizeCost: true}
	if d := b.Decide(Job{Org: 0, Size: 5}, 0, 0, View{}); d.Verdict != Admitted {
		t.Fatalf("cost == capacity from a full bucket: got %v", d.Verdict)
	}
	if d := b.Decide(Job{Org: 1, Size: 6}, 0, 0, View{}); d.Verdict != Rejected {
		t.Fatalf("cost == capacity+1: got %v, want rejected", d.Verdict)
	}
}

// TestTokenBucketRefillOverflowSaturates: an accrual too large to
// represent (enormous idle gap × rate) must clamp the level to the
// capacity, not wrap it negative and starve the organization.
func TestTokenBucketRefillOverflowSaturates(t *testing.T) {
	b := &TokenBucket{Rate: math.MaxInt64 / 4, Period: 1, Burst: 3}
	if d := b.Decide(Job{Org: 0}, 0, 0, View{}); d.Verdict != Admitted {
		t.Fatalf("fresh bucket: got %v", d.Verdict)
	}
	// dt × Rate overflows; the bucket is simply full again.
	if d := b.Decide(Job{Org: 0}, 0, 1000, View{}); d.Verdict != Admitted {
		t.Fatalf("post-overflow refill: got %v, want admitted", d.Verdict)
	}
	// An extreme Burst × Period capacity saturates rather than wrapping.
	b2 := &TokenBucket{Rate: 1, Period: model.Time(math.MaxInt64 / 2), Burst: 4}
	if d := b2.Decide(Job{Org: 0}, 0, 0, View{}); d.Verdict != Admitted {
		t.Fatalf("saturated capacity bucket rejected its first job: %v", d.Verdict)
	}
}

// TestPolicySpecPeriodValidated: Build validates the period like every
// other knob instead of silently clamping it to 1 — a spec that meant
// "rate per 1000 ticks" but dropped the period would otherwise refill
// 1000× too fast.
func TestPolicySpecPeriodValidated(t *testing.T) {
	if _, err := (PolicySpec{Policy: "tokenbucket", Rate: 5, Burst: 10}).Build(); err == nil {
		t.Fatal("token bucket spec without a period accepted")
	}
	if _, err := (PolicySpec{Policy: "tokenbucket", Rate: 5, Period: 1000, Burst: 10}).Build(); err != nil {
		t.Fatalf("valid token bucket spec rejected: %v", err)
	}
}

// TestTokenBucketMaxDefers: a bounded-retry bucket rejects after the
// configured number of defers.
func TestTokenBucketMaxDefers(t *testing.T) {
	b := &TokenBucket{Rate: 1, Period: 100, Burst: 1, MaxDefers: 2}
	if d := b.Decide(Job{}, 0, 0, View{}); d.Verdict != Admitted {
		t.Fatalf("first job: %v", d.Verdict)
	}
	if d := b.Decide(Job{}, 1, 0, View{}); d.Verdict != Deferred {
		t.Fatalf("attempt 1: %v, want deferred", d.Verdict)
	}
	if d := b.Decide(Job{}, 2, 0, View{}); d.Verdict != Rejected {
		t.Fatalf("attempt 2 at max 2: %v, want rejected", d.Verdict)
	}
}

// TestTokenBucketPerOrgIsolation: one organization draining its bucket
// does not touch another's.
func TestTokenBucketPerOrgIsolation(t *testing.T) {
	b := &TokenBucket{Rate: 1, Period: 10, Burst: 1}
	if d := b.Decide(Job{Org: 0}, 0, 0, View{}); d.Verdict != Admitted {
		t.Fatal("org 0 first job should admit")
	}
	if d := b.Decide(Job{Org: 0}, 0, 0, View{}); d.Verdict != Deferred {
		t.Fatal("org 0 second job should defer")
	}
	if d := b.Decide(Job{Org: 1}, 0, 0, View{}); d.Verdict != Admitted {
		t.Fatal("org 1 must be unaffected by org 0's drained bucket")
	}
}

// TestBackpressure checks the queue-depth policy against the observed
// (possibly stale) load signal.
func TestBackpressure(t *testing.T) {
	p := Backpressure{MaxWaiting: 5, RetryAfter: 7, MaxAttempts: 3}
	if d := p.Decide(Job{}, 0, 10, View{Load: Load{Waiting: 4}}); d.Verdict != Admitted {
		t.Fatalf("below bound: %v", d.Verdict)
	}
	d := p.Decide(Job{}, 0, 10, View{Load: Load{Waiting: 5}})
	if d.Verdict != Deferred || d.RetryAt != 17 {
		t.Fatalf("at bound: got %v retry %d, want deferred retry 17", d.Verdict, d.RetryAt)
	}
	if d := p.Decide(Job{}, 3, 10, View{Load: Load{Waiting: 5}}); d.Verdict != Rejected {
		t.Fatalf("attempt 3 of max 3: %v, want rejected", d.Verdict)
	}
}

// TestCachedProviderZeroStalenessDirect is the staleness-contract
// anchor: a CachedSnapshotProvider at max age 0 observes byte-
// identically to direct state reads (DirectProvider) — fresh capture,
// refreshed=true, on every call.
func TestCachedProviderZeroStalenessDirect(t *testing.T) {
	calls := 0
	capture := func(at model.Time) View {
		calls++
		return View{Load: Load{Waiting: calls, Capacity: int64(at)}}
	}
	direct := DirectProvider{Capture: capture}
	cached := NewCachedSnapshotProvider(capture, 0)
	callsDirect := []int{}
	callsCached := []int{}
	for _, at := range []model.Time{0, 3, 3, 10, 11} {
		calls = 0
		v1, r1 := direct.Observe(at)
		callsDirect = append(callsDirect, calls)
		calls = 0
		v2, r2 := cached.Observe(at)
		callsCached = append(callsCached, calls)
		if !reflect.DeepEqual(v1, v2) || r1 != r2 {
			t.Fatalf("at %d: direct (%+v,%v) != cached@0 (%+v,%v)", at, v1, r1, v2, r2)
		}
	}
	if !reflect.DeepEqual(callsDirect, callsCached) {
		t.Fatalf("capture call counts diverge: direct %v, cached@0 %v", callsDirect, callsCached)
	}
}

// TestCachedProviderStaleness: with max age Δt the provider reuses a
// view until it is at least Δt old, then refreshes, and SetMaxAge
// invalidates only on change.
func TestCachedProviderStaleness(t *testing.T) {
	captures := 0
	p := NewCachedSnapshotProvider(func(at model.Time) View {
		captures++
		return View{Load: Load{Waiting: captures}}
	}, 10)
	v, refreshed := p.Observe(0)
	if !refreshed || v.TakenAt != 0 {
		t.Fatalf("first observe: refreshed=%v taken=%d", refreshed, v.TakenAt)
	}
	if v, refreshed = p.Observe(9); refreshed || v.TakenAt != 0 {
		t.Fatalf("age 9 < 10 must reuse: refreshed=%v taken=%d", refreshed, v.TakenAt)
	}
	if v, refreshed = p.Observe(10); !refreshed || v.TakenAt != 10 {
		t.Fatalf("age 10 >= 10 must refresh: refreshed=%v taken=%d", refreshed, v.TakenAt)
	}
	if captures != 2 {
		t.Fatalf("capture ran %d times, want 2", captures)
	}
	p.SetMaxAge(10) // unchanged: cache survives
	if _, refreshed = p.Observe(11); refreshed {
		t.Fatal("SetMaxAge to the current value must not invalidate")
	}
	p.SetMaxAge(20) // changed: cache dropped
	if _, refreshed = p.Observe(11); !refreshed {
		t.Fatal("SetMaxAge to a new value must invalidate")
	}
}

// planeSink collects routed jobs and refresh edges.
type planeSink struct {
	routed    []Job
	routedAt  []model.Time
	refreshes []model.Time
	fail      error
}

func (s *planeSink) Route(job Job, t model.Time, _ View) error {
	if s.fail != nil {
		return s.fail
	}
	s.routed = append(s.routed, job)
	s.routedAt = append(s.routedAt, t)
	return nil
}

func (s *planeSink) Refreshed(t model.Time, _ View) error {
	s.refreshes = append(s.refreshes, t)
	return nil
}

func directLoadProvider() SnapshotProvider {
	return DirectProvider{Capture: func(model.Time) View { return View{} }}
}

// TestPlaneAlwaysAdmitRoutesEverything: the arrival→admission→routing
// chain resolves same-instant and in arrival order under AlwaysAdmit,
// and the conservation law holds.
func TestPlaneAlwaysAdmitRoutesEverything(t *testing.T) {
	p := NewPlane(AlwaysAdmit{}, directLoadProvider(), 2)
	var sink planeSink
	for i := 0; i < 5; i++ {
		p.Arrive(Job{Seq: -1, Org: i % 2, Size: 3}, model.Time(10*i)) // Seq assigned by the plane
	}
	if err := p.Advance(100, &sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.routed) != 5 {
		t.Fatalf("routed %d of 5 jobs", len(sink.routed))
	}
	for i, job := range sink.routed {
		if job.Seq != int64(i) {
			t.Fatalf("route %d carries seq %d — arrival order violated", i, job.Seq)
		}
		if sink.routedAt[i] != model.Time(10*i) {
			t.Fatalf("job %d routed at %d, want its arrival instant %d", i, sink.routedAt[i], 10*i)
		}
	}
	st := p.Stats()
	if st.TotalReleased() != 5 || st.TotalAdmitted() != 5 || st.TotalRejected() != 0 || st.TotalDeferred() != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.LatencyMax != 0 {
		t.Fatalf("always-admit decisions are same-instant; latency max %d", st.LatencyMax)
	}
}

// TestPlaneTokenBucketDefersAndConserves: an overload burst against a
// slow bucket admits what the rate allows, defers the rest to exact
// refill instants, and the counters conserve at every quiescent point.
func TestPlaneTokenBucketDefersAndConserves(t *testing.T) {
	p := NewPlane(&TokenBucket{Rate: 1, Period: 10, Burst: 1}, directLoadProvider(), 1)
	var sink planeSink
	for i := 0; i < 4; i++ {
		p.Arrive(Job{Seq: -1, Org: 0, Size: 1}, 0) // burst of 4 at t=0 against 1 token + 1/10 rate
	}
	if err := p.Advance(0, &sink); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.TotalAdmitted() != 1 || st.TotalDeferred() != 3 {
		t.Fatalf("at t=0: admitted %d deferred %d, want 1/3", st.TotalAdmitted(), st.TotalDeferred())
	}
	// Deferred retries land at refill instants; drain far enough and
	// everything eventually admits, one per refill.
	if err := p.Advance(1000, &sink); err != nil {
		t.Fatal(err)
	}
	if st.TotalAdmitted() != 4 || st.TotalDeferred() != 0 || st.TotalRejected() != 0 {
		t.Fatalf("after drain: %+v", st)
	}
	if len(sink.routed) != 4 {
		t.Fatalf("routed %d of 4", len(sink.routed))
	}
	if st.LatencySum == 0 || st.LatencyMax == 0 {
		t.Fatal("deferred admissions must accrue decision latency")
	}
	if p.Pending() != 0 {
		t.Fatalf("%d events left after drain", p.Pending())
	}
}

// TestPlaneDeterminismAndCheckpoint: a plane advanced in two halves
// with a State/RestoreState round-trip in between matches an
// uninterrupted run event for event.
func TestPlaneDeterminismAndCheckpoint(t *testing.T) {
	build := func() *Plane {
		return NewPlane(&TokenBucket{Rate: 1, Period: 7, Burst: 2, SizeCost: true}, directLoadProvider(), 3)
	}
	feed := func(p *Plane) {
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 40; i++ {
			p.Arrive(Job{Seq: -1, Org: rng.Intn(3), Size: model.Time(1 + rng.Intn(4))}, model.Time(rng.Intn(50)))
		}
	}
	// Uninterrupted run.
	a := build()
	feed(a)
	var sa planeSink
	if err := a.Advance(25, &sa); err != nil {
		t.Fatal(err)
	}
	if err := a.Advance(1000, &sa); err != nil {
		t.Fatal(err)
	}
	// Checkpointed run: same feed, snapshot mid-flight (deferred events
	// pending), restore into a fresh plane, continue.
	b := build()
	feed(b)
	var sb planeSink
	if err := b.Advance(25, &sb); err != nil {
		t.Fatal(err)
	}
	if b.Pending() == 0 {
		t.Fatal("test needs pending control events at the checkpoint")
	}
	st, err := b.State()
	if err != nil {
		t.Fatal(err)
	}
	c := build()
	if err := c.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(1000, &sb); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sa.routed, sb.routed) || !reflect.DeepEqual(sa.routedAt, sb.routedAt) {
		t.Fatal("checkpointed run routed differently from uninterrupted run")
	}
	if !reflect.DeepEqual(a.Stats(), c.Stats()) {
		t.Fatalf("stats diverged:\n%+v\n%+v", a.Stats(), c.Stats())
	}
}

// TestPlaneRestoreRejectsMismatchedPolicy: checkpoints name their
// admission policy and refuse to restore under a different one.
func TestPlaneRestoreRejectsMismatchedPolicy(t *testing.T) {
	p := NewPlane(AlwaysAdmit{}, directLoadProvider(), 1)
	st, err := p.State()
	if err != nil {
		t.Fatal(err)
	}
	q := NewPlane(&TokenBucket{Rate: 1, Period: 1, Burst: 1}, directLoadProvider(), 1)
	if err := q.RestoreState(st); err == nil {
		t.Fatal("restoring an always-admit checkpoint into a token-bucket plane must fail")
	}
}

// TestPlaneRejectsStuckDefer: a policy deferring without advancing time
// is an error, not a wedge.
type stuckPolicy struct{ AlwaysAdmit }

func (stuckPolicy) Name() string { return "stuck" }
func (stuckPolicy) Decide(_ Job, _ int, now model.Time, _ View) Decision {
	return Decision{Verdict: Deferred, RetryAt: now}
}

func TestPlaneRejectsStuckDefer(t *testing.T) {
	p := NewPlane(stuckPolicy{}, directLoadProvider(), 1)
	p.Arrive(Job{Seq: -1}, 0)
	if err := p.Advance(10, &planeSink{}); err == nil {
		t.Fatal("same-instant defer must surface as an error")
	}
}

// TestPolicySpecBuild round-trips the serializable specs.
func TestPolicySpecBuild(t *testing.T) {
	cases := []struct {
		spec PolicySpec
		name string
		ok   bool
	}{
		{PolicySpec{}, "always", true},
		{PolicySpec{Policy: "always"}, "always", true},
		{PolicySpec{Policy: "tokenbucket", Rate: 2, Period: 5, Burst: 10}, "tokenbucket", true},
		{PolicySpec{Policy: "tokenbucket"}, "", false},
		{PolicySpec{Policy: "backpressure", MaxWaiting: 8}, "backpressure", true},
		{PolicySpec{Policy: "backpressure"}, "", false},
		{PolicySpec{Policy: "nonsense"}, "", false},
	}
	for i, c := range cases {
		p, err := c.spec.Build()
		if c.ok && (err != nil || p.Name() != c.name) {
			t.Fatalf("case %d: got (%v, %v), want policy %q", i, p, err, c.name)
		}
		if !c.ok && err == nil {
			t.Fatalf("case %d: expected a build error", i)
		}
	}
}

// TestVerdictString covers the diagnostic formatting.
func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{Admitted: "admitted", Rejected: "rejected", Deferred: "deferred"} {
		if got := v.String(); got != want {
			t.Fatalf("%d: %q != %q", v, got, want)
		}
	}
	if got := Verdict(9).String(); got != fmt.Sprintf("verdict(%d)", 9) {
		t.Fatalf("unknown verdict formatted as %q", got)
	}
}
