package fed

import "fmt"

// Ledger is the federation-wide contribution ledger: every routing
// decision is counted as it happens (Submitted, Routed, RoutedWork,
// Fed), and the per-cluster accounting columns (Psi, Value, Executed)
// are refreshed from the member engines whenever the ledger is read
// through Federation.Ledger. The refreshed columns make the paper's
// fairness metrics computable at both levels with internal/metrics
// unchanged: per cluster from Psi[c], federation-wide from
// FederationPsi.
//
// RoutedWork records job sizes, which delegation policies never see:
// the ledger is accounting — like the simulator's ψsp accounts, it
// tallies work only the executing side would eventually observe —
// not scheduler input.
type Ledger struct {
	Clusters  int   `json:"clusters"`
	Orgs      int   `json:"orgs"`
	Submitted int64 `json:"submitted"`
	// Routed[origin][target] counts jobs submitted at origin and routed
	// to target; the diagonal is the non-delegated traffic.
	Routed [][]int64 `json:"routed"`
	// RoutedWork is Routed weighted by job size (work units).
	RoutedWork [][]int64 `json:"routed_work"`
	// Fed[c] counts jobs fed to cluster c (the column sums of Routed).
	Fed []int64 `json:"fed"`
	// Migrations counts re-delegations of queued jobs (Σ Migrated).
	Migrations int64 `json:"migrations"`
	// Migrated[from][to] counts queued jobs withdrawn from `from` and
	// re-fed to `to` at an exchange refresh. Routed/RoutedWork/Fed are
	// re-pointed at migration time (the job's origin row moves a count
	// from the old column to the new), so they always describe current
	// placement; Migrated records the churn those re-pointings erase.
	Migrated [][]int64 `json:"migrated"`
	// MigratedWork is Migrated weighted by job size (work units).
	MigratedWork [][]int64 `json:"migrated_work"`
	// Psi[c][o] is organization o's ψsp earned at cluster c, refreshed
	// at the federation clock.
	Psi [][]int64 `json:"psi"`
	// Value[c] is cluster c's coalition value Σ_o Psi[c][o].
	Value []int64 `json:"value"`
	// Executed[c] is cluster c's executed unit slots.
	Executed []int64 `json:"executed"`
}

func newLedger(clusters, orgs int) *Ledger {
	l := &Ledger{
		Clusters:   clusters,
		Orgs:       orgs,
		Routed:     make([][]int64, clusters),
		RoutedWork: make([][]int64, clusters),
		Fed:        make([]int64, clusters),
		Psi:        make([][]int64, clusters),
		Value:      make([]int64, clusters),
		Executed:   make([]int64, clusters),
	}
	l.Migrated = make([][]int64, clusters)
	l.MigratedWork = make([][]int64, clusters)
	for c := 0; c < clusters; c++ {
		l.Routed[c] = make([]int64, clusters)
		l.RoutedWork[c] = make([]int64, clusters)
		l.Psi[c] = make([]int64, orgs)
		l.Migrated[c] = make([]int64, clusters)
		l.MigratedWork[c] = make([]int64, clusters)
	}
	return l
}

// validate checks a deserialized ledger's shape against the restoring
// configuration, so a truncated or hand-edited checkpoint fails at
// Restore instead of panicking mid-Step.
func (l *Ledger) validate(clusters, orgs int) error {
	if l == nil {
		return fmt.Errorf("checkpoint has no ledger")
	}
	if l.Clusters != clusters || l.Orgs != orgs {
		return fmt.Errorf("ledger is %d×%d, configuration is %d×%d clusters×orgs", l.Clusters, l.Orgs, clusters, orgs)
	}
	if len(l.Routed) != clusters || len(l.RoutedWork) != clusters || len(l.Fed) != clusters ||
		len(l.Psi) != clusters || len(l.Value) != clusters || len(l.Executed) != clusters {
		return fmt.Errorf("ledger columns truncated")
	}
	if len(l.Migrated) != clusters || len(l.MigratedWork) != clusters {
		return fmt.Errorf("ledger migration columns truncated")
	}
	for c := 0; c < clusters; c++ {
		if len(l.Routed[c]) != clusters || len(l.RoutedWork[c]) != clusters || len(l.Psi[c]) != orgs {
			return fmt.Errorf("ledger row %d truncated", c)
		}
		if len(l.Migrated[c]) != clusters || len(l.MigratedWork[c]) != clusters {
			return fmt.Errorf("ledger migration row %d truncated", c)
		}
	}
	return nil
}

// route records one delegation decision.
func (l *Ledger) route(p Pending, target int) {
	l.Routed[p.Cluster][target]++
	l.RoutedWork[p.Cluster][target] += int64(p.Size)
	l.Fed[target]++
}

// migrate records one re-delegation: the job (submitted at origin,
// sitting queued at from) moves to to. The placement matrices are
// re-pointed so routed==fed and assigned-work==held-work keep holding,
// and the churn is tallied separately in Migrated/MigratedWork.
func (l *Ledger) migrate(origin, from, to int, size int64) {
	l.Routed[origin][from]--
	l.Routed[origin][to]++
	l.RoutedWork[origin][from] -= size
	l.RoutedWork[origin][to] += size
	l.Fed[from]--
	l.Fed[to]++
	l.Migrations++
	l.Migrated[from][to]++
	l.MigratedWork[from][to] += size
}

// sync refreshes the accounting columns from the live member engines.
func (l *Ledger) sync(f *Federation) {
	for c, m := range f.members {
		res := m.eng.Result()
		copy(l.Psi[c], res.Psi)
		l.Value[c] = res.Value
		l.Executed[c] = res.Ptot
	}
}

// Offloaded returns the number of jobs routed away from their origin.
func (l *Ledger) Offloaded() int64 {
	var n int64
	for o, row := range l.Routed {
		for t, count := range row {
			if t != o {
				n += count
			}
		}
	}
	return n
}

// OffloadedFraction returns the fraction of routed jobs that crossed
// cluster boundaries (0 when nothing was routed yet).
func (l *Ledger) OffloadedFraction() float64 {
	var total int64
	for _, n := range l.Fed {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(l.Offloaded()) / float64(total)
}

// FederationPsi returns the federation-wide ψ-vector: each
// organization's ψsp summed over every cluster it consumed service at.
// Feed it to internal/metrics for federation-level Δψ.
func (l *Ledger) FederationPsi() []int64 {
	out := make([]int64, l.Orgs)
	for _, psi := range l.Psi {
		for o, v := range psi {
			out[o] += v
		}
	}
	return out
}

// FederationValue returns the federation-wide coalition value Σ_c v_c.
func (l *Ledger) FederationValue() int64 {
	var v int64
	for _, x := range l.Value {
		v += x
	}
	return v
}

// TotalExecuted returns the executed unit slots across the federation —
// the federation-wide p_tot for Δψ/p_tot.
func (l *Ledger) TotalExecuted() int64 {
	var u int64
	for _, x := range l.Executed {
		u += x
	}
	return u
}
