package engine

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// AdvanceBatch is the amortization seam the daemon's pipeline leans
// on; it must be nothing more than the equivalent sequence of Step /
// StepToNextEvent calls — same starts, clocks, stepped flags and
// error positions, including a rejected backwards target mid-batch
// that fails in place without derailing the requests after it.
func TestAdvanceBatchMatchesSequential(t *testing.T) {
	until := func(v model.Time) *model.Time { return &v }
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(400 + seed))
		in := testInstance(r, 3)
		batched := New(core.RefAlgorithm{}, in, 1)
		sequential := New(core.RefAlgorithm{}, in, 1)

		reqs := []BatchRequest{
			{Until: until(3)},
			{}, // next event
			{},
			{Until: until(2)}, // backwards by now: must error, advance nothing
			{Until: until(9)},
			{},
			{Until: until(in.Horizon() + 1)},
		}
		out := make([]BatchResult, len(reqs))
		batched.AdvanceBatch(reqs, out)

		for i, req := range reqs {
			var want BatchResult
			if req.Until != nil {
				want.Starts, want.Err = sequential.Step(*req.Until)
				want.Stepped = want.Err == nil
			} else {
				want.Starts, want.Stepped, want.Err = sequential.StepToNextEvent()
			}
			want.Now = sequential.Now()
			got := out[i]
			if (got.Err != nil) != (want.Err != nil) || got.Stepped != want.Stepped || got.Now != want.Now {
				t.Fatalf("seed %d request %d: got (now=%d stepped=%v err=%v), sequential (now=%d stepped=%v err=%v)",
					seed, i, got.Now, got.Stepped, got.Err, want.Now, want.Stepped, want.Err)
			}
			if len(got.Starts) != len(want.Starts) {
				t.Fatalf("seed %d request %d: %d starts vs sequential's %d", seed, i, len(got.Starts), len(want.Starts))
			}
			for j := range got.Starts {
				if got.Starts[j] != want.Starts[j] {
					t.Fatalf("seed %d request %d start %d: %+v vs sequential's %+v", seed, i, j, got.Starts[j], want.Starts[j])
				}
			}
		}
		assertSameRun(t, "batched vs sequential", sequential.Result(), batched.Result(), sequential.Decisions(), batched.Decisions())
	}
}
