package core

import "testing"

func bruteHasSubsetSum(S []int64, x int64) bool {
	for mask := 0; mask < 1<<uint(len(S)); mask++ {
		var sum int64
		for i := range S {
			if mask&(1<<uint(i)) != 0 {
				sum += S[i]
			}
		}
		if sum == x {
			return true
		}
	}
	return false
}

func TestCountOrderings(t *testing.T) {
	// S = {1,2}, k+2 = 4 players. Subsets with sum < 2: {} and {1} →
	// n = (0+1)!·2! + (1+1)!·1! = 2 + 2 = 4.
	if got := CountOrderings([]int64{1, 2}, 2); got != 4 {
		t.Errorf("CountOrderings({1,2},2) = %d, want 4", got)
	}
	// Sum < 1: only {} → 1!·2! = 2.
	if got := CountOrderings([]int64{1, 2}, 1); got != 2 {
		t.Errorf("CountOrderings({1,2},1) = %d, want 2", got)
	}
	// Sum < 4: all four subsets → 2 + 2 + 2 + 3!·0! = 12... check:
	// {}:1!2!=2, {1}:2!1!=2, {2}:2!1!=2, {1,2}:3!0!=6 → 12.
	if got := CountOrderings([]int64{1, 2}, 4); got != 12 {
		t.Errorf("CountOrderings({1,2},4) = %d, want 12", got)
	}
}

// The Theorem 5.1 decoding: REF's exact φ(a) on the reduction instance
// recovers the brute-force ordering count. This is the executable form
// of the NP-hardness argument.
func TestHardnessRecoverCount(t *testing.T) {
	if testing.Short() {
		t.Skip("reduction instances have L-sized jobs; skip in -short")
	}
	cases := []struct {
		S []int64
		x int64
	}{
		{[]int64{1, 2}, 2},
		{[]int64{1, 2}, 3},
		{[]int64{2, 3}, 4},
	}
	for _, c := range cases {
		red := NewSubsetSumReduction(c.S, c.x)
		want := CountOrderings(c.S, c.x)
		if got := red.RecoverCount(); got != want {
			t.Errorf("S=%v x=%d: recovered %d orderings, brute force %d", c.S, c.x, got, want)
		}
	}
}

func TestHardnessSubsetSumAnswers(t *testing.T) {
	if testing.Short() {
		t.Skip("reduction instances have L-sized jobs; skip in -short")
	}
	cases := []struct {
		S []int64
		x int64
	}{
		{[]int64{1, 2}, 3},    // yes: 1+2
		{[]int64{1, 2}, 4},    // no
		{[]int64{2, 3}, 5},    // yes
		{[]int64{2, 4}, 3},    // no
		{[]int64{1, 3, 4}, 8}, // yes: 1+3+4
	}
	for _, c := range cases {
		want := bruteHasSubsetSum(c.S, c.x)
		if got := HasSubsetSum(c.S, c.x); got != want {
			t.Errorf("HasSubsetSum(%v, %d) = %v, want %v", c.S, c.x, got, want)
		}
	}
}
