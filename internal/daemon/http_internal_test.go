package daemon

import (
	"errors"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/fed"
)

// advanceStatus distinguishes the federation's sentinel failures from
// garden-variety bad requests, including through wrapping.
func TestAdvanceStatusMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"source failure", fed.ErrSourceFailed, http.StatusInternalServerError},
		{"wrapped source failure", fmt.Errorf("fed: step: %w", fed.ErrSourceFailed), http.StatusInternalServerError},
		{"no source after restore", fed.ErrNoSource, http.StatusConflict},
		{"wrapped no-source", fmt.Errorf("%w: attach it with SetSource", fed.ErrNoSource), http.StatusConflict},
		{"time going backwards", errors.New("fed: step to 5 before federation time 10"), http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := advanceStatus(c.err); got != c.want {
			t.Errorf("%s: advanceStatus = %d, want %d", c.name, got, c.want)
		}
	}
}

// A restore that fails because the session's own stored configuration
// no longer rebuilds (a skewed deploy dropped the algorithm) must be
// tagged as the server's fault, distinguishable from a snapshot the
// session merely rejects.
func TestRestoreConfigFailureTagged(t *testing.T) {
	mgr := NewManager()
	sess, err := mgr.Create("s", SessionConfig{Kind: KindSingle, Alg: "ref", Orgs: 2, Machines: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := sess.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: while the configuration still builds, the snapshot restores.
	if err := sess.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if err := sess.Restore([]byte(`{"version":99}`)); errors.Is(err, errRestoreConfig) {
		t.Fatalf("a rejected snapshot was blamed on the configuration: %v", err)
	}
	sess.cfg.Alg = "vanished-alg"
	err = sess.Restore(snap)
	if err == nil {
		t.Fatal("restore with an unbuildable configuration succeeded")
	}
	if !errors.Is(err, errRestoreConfig) {
		t.Fatalf("config-rebuild failure not tagged errRestoreConfig: %v", err)
	}
}
