package fed_test

import (
	"testing"

	"repro/internal/fed"
)

// FedNBS's routing rule, unit-tested on hand-built exchanges: a fresh
// federation routes home, a saturated origin offloads to the idle
// member whose bargaining target its assignment lags, and a single
// member is the only choice.
func TestFedNbsRouteLedger(t *testing.T) {
	p := fed.NBSPolicy{}
	fresh := []fed.Summary{
		{Cluster: 0, Now: 0, Capacity: 2},
		{Cluster: 1, Now: 0, Capacity: 4},
	}
	zero := [][]int64{{0, 0}, {0, 0}}
	if got := p.RouteLedger(0, 0, fresh, zero); got != 0 {
		t.Fatalf("fresh federation routed away from home (got %d)", got)
	}
	// Origin 0 (capacity 2) has been assigned 80 units of work by time
	// 10 — far beyond the 20 it can complete — while cluster 1 (capacity
	// 4) sits idle: its NBS target is the whole pooled surplus.
	// d = [20, 0], C = 60, caps [20, 40] → x = [20, 40];
	// deficits x − assigned = [−60, 40].
	loaded := []fed.Summary{
		{Cluster: 0, Now: 10, Capacity: 2},
		{Cluster: 1, Now: 10, Capacity: 4},
	}
	routed := [][]int64{{80, 0}, {0, 0}}
	if got := p.RouteLedger(0, 0, loaded, routed); got != 1 {
		t.Fatalf("fednbs kept the job at the saturated origin (got %d)", got)
	}
	// One member: trivially home.
	if got := p.RouteLedger(0, 0, loaded[:1], [][]int64{{80}}); got != 0 {
		t.Fatalf("1-member federation routed to %d", got)
	}
}

// The bargaining targets respect individual rationality: a member is
// never routed away from below its standalone value. Here both members
// are saturated (no pooling surplus at all), so every target collapses
// to the disagreement point and the less-over-assigned origin keeps
// the job even though the peer has more capacity.
func TestFedNbsIndividualRationality(t *testing.T) {
	p := fed.NBSPolicy{}
	sums := []fed.Summary{
		{Cluster: 0, Now: 10, Capacity: 2},
		{Cluster: 1, Now: 10, Capacity: 4},
	}
	// Both drowning: demand 100 each against capacities 20 and 40.
	// d = [20, 40] = x (capacity bound everywhere, C = 60 = Σd);
	// deficits = [20−100, 40−100] — origin wins the tie on deficit.
	routed := [][]int64{{100, 0}, {0, 100}}
	if got := p.RouteLedger(0, 1, sums, routed); got != 1 {
		t.Fatalf("fednbs moved a job with no pooling surplus (got %d)", got)
	}
}

// A 1-member federation under FedNBS must reproduce single-cluster REF
// byte for byte, exactly as FedREF does — the differential anchor for
// the bargaining policy. The migrating composition must be inert with
// nowhere to migrate.
func TestOneMemberFedNbsMatchesSingleClusterRef(t *testing.T) {
	assertOneMemberMatchesRef(t, fed.NBSPolicy{}, 0)
	assertOneMemberMatchesRef(t, fed.Migrating{Inner: fed.NBSPolicy{}, Budget: fed.DefaultMigrationBudget}, 0)
}
