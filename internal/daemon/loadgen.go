package daemon

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/model"
)

// LoadConfig configures RunLoad, the serving-tier load harness. The
// zero value of every field but Sessions picks a sensible default.
type LoadConfig struct {
	// Sessions is the number of concurrent federated sessions to hold
	// open — all of them live in one Manager for the whole run.
	Sessions int
	// Clients is the number of client goroutines driving traffic
	// (default 32).
	Clients int
	// PipelineWorkers and Burst configure the advance pipeline (0 =
	// the pipeline defaults).
	PipelineWorkers int
	Burst           int
	// JobsPerSession jobs are submitted to each session up front
	// (default 4), then the session is advanced Steps times (default
	// 3) by StepSize ticks (default 25).
	JobsPerSession int
	Steps          int
	StepSize       model.Time
}

// LoadReport is the harness outcome: sustained throughput through the
// pipeline plus the advance-latency distribution (enqueue to result,
// i.e. queueing included — the latency a serving client would see).
type LoadReport struct {
	Sessions         int     `json:"sessions"`
	Advances         int64   `json:"advances"`
	Decisions        int64   `json:"decisions"`
	SetupSeconds     float64 `json:"setup_seconds"`
	AdvanceSeconds   float64 `json:"advance_seconds"`
	ThroughputPerSec float64 `json:"advances_per_sec"`
	P50Ms            float64 `json:"p50_ms"`
	P95Ms            float64 `json:"p95_ms"`
	P99Ms            float64 `json:"p99_ms"`
	PipelineWakeups  int64   `json:"pipeline_wakeups"`
	PipelineBatches  int64   `json:"pipeline_batches"`
	// PipelineCoalesced counts the advances served through same-session
	// AdvanceBatch groups — one session lock and one dirty mark per
	// group instead of per request.
	PipelineCoalesced int64 `json:"pipeline_coalesced"`
}

// loadSessionConfig is the per-session workload: a small two-cluster
// federation with an overloaded origin, so delegation actually routes
// (every session exercises the fed exchange path, not just an engine).
func loadSessionConfig(seed int64) SessionConfig {
	return SessionConfig{
		Kind:     KindFederation,
		OrgNames: []string{"alpha", "beta"},
		Policy:   "leastloaded",
		Clusters: []ClusterConfig{
			{Name: "origin", Alg: "directcontr", Machines: []int{1, 0}},
			{Name: "peer", Alg: "directcontr", Machines: []int{1, 1}},
		},
		Seed: seed,
	}
}

// RunLoad creates cfg.Sessions concurrent federated sessions in one
// Manager, then drives every session through cfg.Steps advances via the
// async pipeline, measuring throughput and per-advance latency. It is
// the scale harness behind cmd/loadgen and BenchmarkServingTier — the
// "tens of thousands of concurrent sessions in one process" check, not
// a simulation of it.
func RunLoad(cfg LoadConfig) (LoadReport, error) {
	if cfg.Sessions <= 0 {
		return LoadReport{}, fmt.Errorf("daemon: load harness needs at least one session")
	}
	clients := cfg.Clients
	if clients <= 0 {
		clients = 32
	}
	if clients > cfg.Sessions {
		clients = cfg.Sessions
	}
	jobs := cfg.JobsPerSession
	if jobs <= 0 {
		jobs = 4
	}
	steps := cfg.Steps
	if steps <= 0 {
		steps = 3
	}
	stepSize := cfg.StepSize
	if stepSize <= 0 {
		stepSize = 25
	}

	mgr := NewManager()
	pipe := NewPipeline(PipelineOptions{Workers: cfg.PipelineWorkers, Burst: cfg.Burst})
	defer pipe.Close()

	// Partition sessions across clients; each client owns a contiguous
	// slice for both phases.
	type clientState struct {
		sessions  []*Session
		latencies []time.Duration
		decisions int64
		err       error
	}
	states := make([]*clientState, clients)
	bounds := func(c int) (int, int) {
		per := cfg.Sessions / clients
		extra := cfg.Sessions % clients
		lo := c*per + min(c, extra)
		hi := lo + per
		if c < extra {
			hi++
		}
		return lo, hi
	}

	// Phase 1: create every session and submit its workload. All
	// sessions stay live — concurrency here is real, not time-sliced.
	setupStart := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		st := &clientState{}
		states[c] = st
		lo, hi := bounds(c)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				s, err := mgr.Create(fmt.Sprintf("load-%d", i), loadSessionConfig(int64(i)))
				if err != nil {
					st.err = err
					return
				}
				batch := make([]JobSubmission, jobs)
				for j := range batch {
					release := model.Time(3 * j)
					batch[j] = JobSubmission{Cluster: 0, Org: j % 2, Size: 4, Release: &release}
				}
				if _, err := s.Submit(batch); err != nil {
					st.err = err
					return
				}
				st.sessions = append(st.sessions, s)
			}
		}()
	}
	wg.Wait()
	setup := time.Since(setupStart)
	for _, st := range states {
		if st.err != nil {
			return LoadReport{}, st.err
		}
	}

	// Phase 2: every client enqueues one advance step for all of its
	// sessions, then collects the results — so at any instant the
	// pipeline holds on the order of cfg.Sessions requests in flight.
	advanceStart := time.Now()
	for c := 0; c < clients; c++ {
		st := states[c]
		wg.Add(1)
		go func() {
			defer wg.Done()
			type inflight struct {
				ch    <-chan AdvanceResult
				start time.Time
			}
			pending := make([]inflight, len(st.sessions))
			for step := 1; step <= steps; step++ {
				until := model.Time(step) * stepSize
				for i, s := range st.sessions {
					pending[i] = inflight{ch: pipe.Enqueue(s, &until), start: time.Now()}
				}
				for _, fl := range pending {
					res := <-fl.ch
					if res.Err != nil && st.err == nil {
						st.err = res.Err
					}
					st.latencies = append(st.latencies, time.Since(fl.start))
					st.decisions += int64(len(res.Decisions))
				}
			}
		}()
	}
	wg.Wait()
	advance := time.Since(advanceStart)
	var latencies []time.Duration
	var decisions int64
	for _, st := range states {
		if st.err != nil {
			return LoadReport{}, st.err
		}
		latencies = append(latencies, st.latencies...)
		decisions += st.decisions
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		return float64(latencies[int(q*float64(len(latencies)-1))]) / float64(time.Millisecond)
	}
	pstats := pipe.Stats()
	return LoadReport{
		Sessions:          cfg.Sessions,
		Advances:          int64(len(latencies)),
		Decisions:         decisions,
		SetupSeconds:      setup.Seconds(),
		AdvanceSeconds:    advance.Seconds(),
		ThroughputPerSec:  float64(len(latencies)) / advance.Seconds(),
		P50Ms:             pct(0.50),
		P95Ms:             pct(0.95),
		P99Ms:             pct(0.99),
		PipelineWakeups:   pstats.Wakeups,
		PipelineBatches:   pstats.Batches,
		PipelineCoalesced: pstats.Coalesced,
	}, nil
}
