package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

const sampleSWF = `; Version: 2.2
; Computer: Test Cluster
; MaxProcs: 8

1 0 5 100 1 -1 -1 1 -1 -1 1 10 1 -1 -1 -1 -1 -1
2 30 0 50 2 -1 -1 2 -1 -1 1 11 1 -1 -1 -1 -1 -1
3 60 0 -1 1 -1 -1 1 -1 -1 0 10 1 -1 -1 -1 -1 -1
4 10 0 70 -1 -1 -1 3 -1 -1 1 12 1 -1 -1 -1 -1 -1
`

func parseSample(t *testing.T) *Trace {
	t.Helper()
	tr, skipped, err := ParseSWF(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (the failed job)", skipped)
	}
	return tr
}

func TestParseSWF(t *testing.T) {
	tr := parseSample(t)
	if len(tr.Header) != 3 {
		t.Errorf("header lines = %d", len(tr.Header))
	}
	if len(tr.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(tr.Jobs))
	}
	// Jobs must come out sorted by submit: 1 (0), 4 (10), 2 (30).
	if tr.Jobs[0].ID != 1 || tr.Jobs[1].ID != 4 || tr.Jobs[2].ID != 2 {
		t.Fatalf("job order: %+v", tr.Jobs)
	}
	// Job 4 had allocated=-1: requested (3) must be used.
	if tr.Jobs[1].Procs != 3 {
		t.Errorf("job 4 procs = %d, want 3 (requested fallback)", tr.Jobs[1].Procs)
	}
	if tr.Jobs[2].Procs != 2 || tr.Jobs[2].User != 11 {
		t.Errorf("job 2 parsed wrong: %+v", tr.Jobs[2])
	}
}

func TestParseSWFErrors(t *testing.T) {
	if _, _, err := ParseSWF(strings.NewReader("1 2 3\n")); err == nil {
		t.Error("short line accepted")
	}
	if _, _, err := ParseSWF(strings.NewReader("a b c d e f g h i j k l\n")); err == nil {
		t.Error("non-numeric line accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	tr := parseSample(t)
	var buf bytes.Buffer
	if err := tr.WriteSWF(&buf); err != nil {
		t.Fatal(err)
	}
	back, skipped, err := ParseSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("round-trip skipped %d jobs", skipped)
	}
	if len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("round-trip job count %d != %d", len(back.Jobs), len(tr.Jobs))
	}
	for i := range back.Jobs {
		a, b := tr.Jobs[i], back.Jobs[i]
		if a.Submit != b.Submit || a.Runtime != b.Runtime || a.Procs != b.Procs || a.User != b.User {
			t.Fatalf("job %d changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestUsersAndAggregates(t *testing.T) {
	tr := parseSample(t)
	users := tr.Users()
	if len(users) != 3 || users[0] != 10 || users[1] != 11 || users[2] != 12 {
		t.Fatalf("users = %v", users)
	}
	if got := tr.MaxSubmit(); got != 30 {
		t.Errorf("MaxSubmit = %d", got)
	}
	if got := tr.TotalWork(); got != 100+50*2+70*3 {
		t.Errorf("TotalWork = %d", got)
	}
}

func TestSequentialize(t *testing.T) {
	tr := parseSample(t)
	seq := tr.Sequentialize()
	if len(seq.Jobs) != 1+3+2 {
		t.Fatalf("sequentialized jobs = %d, want 6", len(seq.Jobs))
	}
	for _, j := range seq.Jobs {
		if j.Procs != 1 {
			t.Fatalf("job still parallel: %+v", j)
		}
	}
	if seq.TotalWork() != tr.TotalWork() {
		t.Errorf("work changed: %d vs %d", seq.TotalWork(), tr.TotalWork())
	}
}

func TestWindow(t *testing.T) {
	tr := parseSample(t)
	w := tr.Window(5, 35)
	if len(w.Jobs) != 2 {
		t.Fatalf("window jobs = %d", len(w.Jobs))
	}
	if w.Jobs[0].Submit != 5 || w.Jobs[1].Submit != 25 {
		t.Fatalf("window not shifted: %+v", w.Jobs)
	}
}

func TestAssignUsersBalancedAndDeterministic(t *testing.T) {
	users := make([]int, 20)
	for i := range users {
		users[i] = 100 + i
	}
	a := AssignUsers(users, 4, stats.NewRand(1))
	b := AssignUsers(users, 4, stats.NewRand(1))
	counts := map[int]int{}
	for u, org := range a {
		if b[u] != org {
			t.Fatal("assignment not deterministic")
		}
		counts[org]++
	}
	for org := 0; org < 4; org++ {
		if counts[org] != 5 {
			t.Fatalf("org %d has %d users, want 5 (%v)", org, counts[org], counts)
		}
	}
}

func TestToInstance(t *testing.T) {
	tr := parseSample(t).Sequentialize()
	orgOf := map[int]int{10: 0, 11: 1, 12: 0}
	in, err := ToInstance(tr, []int{2, 1}, orgOf)
	if err != nil {
		t.Fatal(err)
	}
	if in.TotalMachines() != 3 || len(in.Jobs) != 6 {
		t.Fatalf("instance: %d machines, %d jobs", in.TotalMachines(), len(in.Jobs))
	}
	if int64(in.TotalWork()) != tr.TotalWork() {
		t.Errorf("work mismatch")
	}
	// Parallel trace must be rejected.
	if _, err := ToInstance(parseSample(t), []int{2, 1}, orgOf); err == nil {
		t.Error("parallel trace accepted")
	}
	// Unknown user must be rejected.
	if _, err := ToInstance(tr, []int{2, 1}, map[int]int{10: 0}); err == nil {
		t.Error("unknown user accepted")
	}
}
