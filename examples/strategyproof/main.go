// Strategyproof: why the paper rejects flow time as a utility and
// derives ψsp instead (Section 4). An organization that splits one long
// job into many short ones improves its *flow time* standing — classic
// schedulers reward the manipulation — but its ψsp utility is provably
// unchanged, so a Shapley-fair scheduler driven by ψsp gives the
// manipulator nothing.
//
// The second half is the manipulation-resistance battery for the
// admission control plane (internal/ctrl): the same split-your-jobs
// misreport is replayed against a REF-scheduled cluster behind three
// admission gates. Under AlwaysAdmit the ψsp gain is zero (the
// utility's own axiom); under a per-job token bucket the manipulation
// backfires (each fragment spends a token, so most fragments are
// rejected); under a size-cost bucket admission charges work, not job
// count, so the gate itself is repackaging-neutral too.
//
// Run with:
//
//	go run ./examples/strategyproof
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/utility"
)

func main() {
	const t = 40 // evaluation time
	// The honest workload: one job of size 12 started at 4, plus some
	// context jobs.
	honest := []utility.Execution{
		{Start: 0, Size: 5},
		{Start: 4, Size: 12}, // the job under manipulation
		{Start: 9, Size: 3},
	}
	// The manipulated workload: the size-12 job presented as 12
	// back-to-back unit pieces.
	manipulated := []utility.Execution{
		{Start: 0, Size: 5},
		{Start: 9, Size: 3},
	}
	for i := model.Time(0); i < 12; i++ {
		manipulated = append(manipulated, utility.Execution{Start: 4 + i, Size: 1})
	}

	fmt.Println("=== Splitting a size-12 job into 12 unit pieces ===")
	fmt.Printf("ψsp honest      : %d\n", utility.Psi(honest, t))
	fmt.Printf("ψsp manipulated : %d   (identical — strategy-resistance axiom)\n\n",
		utility.Psi(manipulated, t))

	// Flow time tells a different story: the same computation now counts
	// as 14 jobs instead of 3, so both the total and the per-job average
	// flow move — the metric is manipulable by repackaging work.
	honestPlaced := []utility.Placed{
		{Release: 0, Start: 0, Size: 5},
		{Release: 4, Start: 4, Size: 12},
		{Release: 9, Start: 9, Size: 3},
	}
	manipulatedPlaced := []utility.Placed{
		{Release: 0, Start: 0, Size: 5},
		{Release: 9, Start: 9, Size: 3},
	}
	for i := model.Time(0); i < 12; i++ {
		manipulatedPlaced = append(manipulatedPlaced,
			utility.Placed{Release: 4, Start: 4 + i, Size: 1})
	}
	fh, fm := utility.TotalFlow(honestPlaced, t), utility.TotalFlow(manipulatedPlaced, t)
	fmt.Printf("total flow honest      : %d over %d jobs (avg %.2f)\n",
		fh, len(honestPlaced), float64(fh)/float64(len(honestPlaced)))
	fmt.Printf("total flow manipulated : %d over %d jobs (avg %.2f)\n",
		fm, len(manipulatedPlaced), float64(fm)/float64(len(manipulatedPlaced)))
	fmt.Println("flow time moves when work is repackaged — any fairness scheme")
	fmt.Println("built on it can be gamed; ψsp cannot (Proposition 4.2 relates the")
	fmt.Println("two only for jobs of equal size).")
	fmt.Println()

	// Delaying jobs is never profitable under ψsp either.
	fmt.Println("=== Delaying a job ===")
	for _, d := range []model.Time{0, 1, 5} {
		v := utility.PsiJob(4+d, 12, t)
		fmt.Printf("ψsp of the size-12 job started at %2d: %d\n", 4+d, v)
	}
	fmt.Println("\nψsp is the unique utility (up to affine constants) satisfying the")
	fmt.Println("paper's three axioms (Theorem 4.1): task anonymity in start times,")
	fmt.Println("task anonymity in counts, and strategy-resistance.")
	fmt.Println()
	admissionBattery()
}

// workload builds org 0's submission stream: count size-`size` jobs
// every `gap` ticks, either as single jobs (honest) or split into unit
// fragments (the misreport).
func workload(count int, size, gap model.Time, split bool) []model.Job {
	var jobs []model.Job
	for i := 0; i < count; i++ {
		release := model.Time(i) * gap
		if !split {
			jobs = append(jobs, model.Job{Org: 0, Size: size, Release: release})
			continue
		}
		for p := model.Time(0); p < size; p++ {
			jobs = append(jobs, model.Job{Org: 0, Size: 1, Release: release})
		}
	}
	return jobs
}

// runGated schedules org 0's stream alongside a fixed honest bystander
// (org 1) on a REF-fair two-machine cluster behind the given admission
// gate, returning org 0's ψsp at the horizon and its admitted/released
// counts.
func runGated(spec *ctrl.PolicySpec, org0 []model.Job) (psi int64, admitted, released int64) {
	const horizon = 200
	inst, err := model.NewInstance([]model.Org{
		{Name: "manipulator", Machines: 1},
		{Name: "bystander", Machines: 1},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	e := engine.New(core.RefAlgorithm{}, inst, 1)
	if err := e.SetAdmission(spec); err != nil {
		log.Fatal(err)
	}
	jobs := append([]model.Job(nil), org0...)
	for i := 0; i < 6; i++ {
		jobs = append(jobs, model.Job{Org: 1, Size: 8, Release: model.Time(i) * 10})
	}
	if _, err := e.Feed(jobs); err != nil {
		log.Fatal(err)
	}
	if _, err := e.Step(horizon); err != nil {
		log.Fatal(err)
	}
	st := e.AdmissionStats()
	return e.Result().Psi[0], st.Admitted[0], st.Released[0]
}

// admissionBattery replays the split-your-jobs misreport against three
// admission gates and reports the manipulator's ψsp gain under each.
func admissionBattery() {
	fmt.Println("=== Misreporting against the admission control plane ===")
	fmt.Println("org 0 owes 6 size-8 jobs (one per 10 ticks); the misreport splits")
	fmt.Println("each into 8 unit fragments. REF schedules, the gate admits.")
	fmt.Println()
	honest := workload(6, 8, 10, false)
	split := workload(6, 8, 10, true)
	gates := []struct {
		name string
		spec *ctrl.PolicySpec
	}{
		{"always-admit", &ctrl.PolicySpec{Policy: "always"}},
		// One admission token per 10 ticks, small burst: priced per job.
		{"tokenbucket/job", &ctrl.PolicySpec{Policy: "tokenbucket", Rate: 1, Period: 10, Burst: 2, MaxAttempts: 2}},
		// One work-unit per tick, burst one full job: priced per unit of
		// work, so splitting changes nothing.
		{"tokenbucket/work", &ctrl.PolicySpec{Policy: "tokenbucket", Rate: 1, Period: 1, Burst: 8, SizeCost: true, MaxAttempts: 2}},
	}
	fmt.Printf("%-18s %12s %12s %8s %16s\n", "gate", "ψsp honest", "ψsp split", "gain", "split admitted")
	for _, g := range gates {
		ph, _, _ := runGated(g.spec, honest)
		ps, adm, rel := runGated(g.spec, split)
		fmt.Printf("%-18s %12d %12d %8d %10d/%d\n", g.name, ph, ps, ps-ph, adm, rel)
	}
	fmt.Println()
	fmt.Println("Under always-admit the gain is negligible — a few units of")
	fmt.Println("fragment-boundary rounding in the schedule, not a reward: ψsp")
	fmt.Println("itself gives repackaging nothing. The per-job bucket makes the")
	fmt.Println("misreport *costly* — fragments burn tokens and most are rejected,")
	fmt.Println("so the manipulator loses work. The size-cost bucket restores")
	fmt.Println("neutrality at the gate: admission, like the utility, charges for")
	fmt.Println("work rather than for job count.")
}
