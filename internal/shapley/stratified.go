package shapley

import "math/rand"

// SampleStratified estimates the Shapley value with position-stratified
// permutation sampling: every round draws one uniform permutation and
// evaluates all k of its cyclic rotations, so within a round each
// player's marginal contribution is observed exactly once at every
// position. Each rotation of a uniform permutation is itself uniform,
// so the estimator stays unbiased (Equation 2), while the position
// strata are perfectly balanced — the between-position variance
// component that plain Sample leaves in is eliminated, which is the
// dominant term when marginals depend mostly on predecessor-set size
// (as the scheduling game's do: larger coalitions own more machines).
//
// The budget is rounds·k permutations; compare against Sample at an
// equal permutation count. Like Marginals, every evaluated permutation
// telescopes to v(grand), so the efficiency axiom Σφ = v(N) holds for
// the estimate exactly, not just in expectation.
func SampleStratified(g Game, rounds int, r *rand.Rand) []float64 {
	k := g.Players()
	phi := make([]float64, k)
	if rounds <= 0 || k == 0 {
		return phi
	}
	base := make([]int, k)
	rot := make([]int, k)
	for i := range base {
		base[i] = i
	}
	for round := 0; round < rounds; round++ {
		r.Shuffle(k, func(i, j int) { base[i], base[j] = base[j], base[i] })
		for shift := 0; shift < k; shift++ {
			for i := range rot {
				rot[i] = base[(i+shift)%k]
			}
			m := Marginals(g, rot)
			for u := range phi {
				phi[u] += m[u]
			}
		}
	}
	inv := 1 / float64(rounds*k)
	for u := range phi {
		phi[u] *= inv
	}
	return phi
}
