package fed

import (
	"container/heap"
	"errors"
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/trace"
)

// ErrSourceFailed tags every sticky job-source failure — a pull error
// or a stream-contract violation. The workload past the failure point
// is unknowable, so the federation refuses to step until rebuilt;
// callers mapping errors to transport status codes can errors.Is
// against it to tell broken federation state from a bad request.
var ErrSourceFailed = errors.New("fed: job source failed")

// ErrNoSource reports a Step on a federation restored from a streaming
// checkpoint before SetSource re-attached the source: the run cannot
// continue as-is, but re-attaching repairs it — a conflict with the
// session's current state, not a malformed request.
var ErrNoSource = errors.New("fed: streaming checkpoint has no source attached")

// SourceJob is one job yielded by a JobSource: where it was handed in,
// who owns it, how big it is and when it becomes available — the
// streaming counterpart of a Submit call. Aliased from model so that
// source producers (internal/gen) need not import this package.
type SourceJob = model.SourceJob

// JobSource is the pull-based ingestion contract consumed by
// SetSource: jobs in nondecreasing Release order from a deterministic,
// replayable stream. See model.JobSource for the full contract.
type JobSource = model.JobSource

// DefaultSourceWindow is the lookahead window SetSource uses when the
// caller passes window <= 0: deep enough that release-instant batches
// rarely force an overshoot pull, small enough that memory stays flat
// on multi-million-job traces.
const DefaultSourceWindow = 4096

// SetSource attaches a streaming job source with the given lookahead
// window (jobs resident in the pending queue at a time; <= 0 selects
// DefaultSourceWindow). Jobs are pulled and accepted lazily as stepping
// needs them, with sequence numbers assigned in stream order — the same
// numbering an eager Submit loop over the stream would produce, so a
// streamed run is byte-identical to a materialized run of the same
// stream (TestStreamingMatchesEager). The window is a memory/lookahead
// knob only: decisions never depend on it, because a release instant's
// batch is always completed before it routes.
//
// On a federation restored from a streaming checkpoint, SetSource
// fast-forwards the (replayable) source past the consumed prefix and
// resumes mid-stream; the restored window is superseded by the one
// given here. Explicit Submits may still be interleaved with a source.
func (f *Federation) SetSource(src JobSource, window int) error {
	if src == nil {
		return fmt.Errorf("fed: nil job source")
	}
	if f.source != nil {
		return fmt.Errorf("fed: a job source is already attached")
	}
	if window <= 0 {
		window = DefaultSourceWindow
	}
	// Fast-forward past the prefix a restored checkpoint already
	// consumed: those jobs are accounted in the pending queue, the
	// members, or the decision log.
	for skipped := int64(0); skipped < f.srcCursor; skipped++ {
		_, ok, err := src.Next()
		if err != nil {
			return fmt.Errorf("fed: job source failed %d jobs into a checkpoint cursor of %d: %w", skipped, f.srcCursor, err)
		}
		if !ok {
			return fmt.Errorf("fed: job source drained %d jobs into a checkpoint cursor of %d", skipped, f.srcCursor)
		}
	}
	f.source = src
	f.srcWindow = window
	f.srcNeeded = false
	return f.fill()
}

// SourceCursor returns how many jobs have been consumed from the
// attached source (0 when none is attached).
func (f *Federation) SourceCursor() int64 { return f.srcCursor }

// fill tops the pending queue up to the lookahead window. Source
// errors are sticky: once a pull fails the federation refuses to step
// further, because the job stream past the failure is unknowable.
func (f *Federation) fill() error {
	if f.source == nil || f.srcDone || f.srcErr != nil {
		return f.srcErr
	}
	for len(f.pending) < f.srcWindow {
		if err := f.pullOne(); err != nil || f.srcDone {
			return err
		}
	}
	return nil
}

// fillThrough keeps pulling until every job releasing at or before t is
// resident — the batch-completeness guarantee: a release instant routes
// only once all of its jobs are pending, so the exchange snapshot, the
// per-instant memo and therefore every decision are independent of the
// window size. Because sources are nondecreasing in release, the first
// pulled job past t proves completeness; it stays pending.
func (f *Federation) fillThrough(t model.Time) error {
	if f.source == nil || f.srcErr != nil {
		return f.srcErr
	}
	for !f.srcDone && f.srcLast <= t {
		if err := f.pullOne(); err != nil {
			return err
		}
	}
	return nil
}

// pullOne draws and accepts a single job from the source.
func (f *Federation) pullOne() error {
	j, ok, err := f.source.Next()
	if err != nil {
		f.srcErr = fmt.Errorf("%w: %w", ErrSourceFailed, err)
		return f.srcErr
	}
	if !ok {
		f.srcDone = true
		return nil
	}
	if err := f.acceptSourceJob(j); err != nil {
		f.srcErr = fmt.Errorf("%w: %w", ErrSourceFailed, err)
		return f.srcErr
	}
	return nil
}

// acceptSourceJob validates and enqueues one pulled job, assigning the
// next federation sequence number — exactly what Submit does, minus the
// release-after-now check replaced by the stream-order contract.
func (f *Federation) acceptSourceJob(j SourceJob) error {
	if j.Cluster < 0 || j.Cluster >= len(f.members) {
		return fmt.Errorf("fed: job source yielded unknown cluster %d", j.Cluster)
	}
	if j.Org < 0 || j.Org >= len(f.orgs) {
		return fmt.Errorf("fed: job source yielded unknown organization %d", j.Org)
	}
	if j.Size < 1 {
		return fmt.Errorf("fed: job source yielded size %d; sizes must be >= 1", j.Size)
	}
	if j.Release < f.srcLast {
		return fmt.Errorf("fed: job source release went backwards, from %d to %d; sources must be nondecreasing in release",
			f.srcLast, j.Release)
	}
	if j.Release < f.now {
		return fmt.Errorf("fed: job source yielded release %d before federation time %d", j.Release, f.now)
	}
	f.srcLast = j.Release
	p := Pending{Seq: f.nextSeq, Cluster: j.Cluster, Org: j.Org, Size: j.Size, Release: j.Release}
	f.nextSeq++
	f.appendPending(p)
	f.srcCursor++
	f.ledger.Submitted++
	return nil
}

// SliceSource serves a pre-built job slice as a JobSource — the adapter
// for in-memory streams (tests, small scenarios). The slice must be in
// nondecreasing Release order; it is served as-is, not copied.
type SliceSource struct {
	jobs []SourceJob
	i    int
}

// NewSliceSource wraps jobs as a replayable source.
func NewSliceSource(jobs []SourceJob) *SliceSource { return &SliceSource{jobs: jobs} }

// Next implements JobSource.
func (s *SliceSource) Next() (SourceJob, bool, error) {
	if s.i >= len(s.jobs) {
		return SourceJob{}, false, nil
	}
	j := s.jobs[s.i]
	s.i++
	return j, true, nil
}

// DefaultSWFSlack is the reorder buffer NewSWFSource uses: real SWF
// archives are submit-ordered up to small local jitter, and a buffer of
// this many records re-sorts any disorder narrower than itself.
const DefaultSWFSlack = 1024

// SWFSource streams a Standard Workload Format archive as federated
// submissions: record submit times become releases, runtimes become
// sizes (the sequential machine model ignores processor counts, as
// trace.ToInstance does), and each user is hashed deterministically to
// a home (origin) cluster and an owning organization — so one real
// archive exercises the whole delegation plane in O(1) memory. A small
// min-heap reorder buffer absorbs the local submit-order jitter real
// archives contain; disorder wider than the slack is an error at the
// pull that detects it.
type SWFSource struct {
	r        *trace.Reader
	clusters int
	orgs     int
	seed     int64
	slack    int
	buf      swfHeap
	primed   bool
	arrived  int64 // file-order index, the heap's tie-break
	done     bool

	// lastEmit/emitted track the stream-order contract: once a record
	// has been emitted, no later pop may carry an earlier submit. err
	// makes any failure sticky — the stream past it is unknowable.
	lastEmit model.Time
	emitted  bool
	err      error
}

// NewSWFSource streams the SWF archive read from r over the given
// federation shape. seed decorrelates the user→(cluster, org) hashing
// between scenarios built from the same archive.
func NewSWFSource(r io.Reader, clusters, orgs int, seed int64) (*SWFSource, error) {
	if clusters < 1 {
		return nil, fmt.Errorf("fed: swf source needs at least one cluster, got %d", clusters)
	}
	if orgs < 1 {
		return nil, fmt.Errorf("fed: swf source needs at least one organization, got %d", orgs)
	}
	return &SWFSource{
		r:        trace.NewReader(r),
		clusters: clusters,
		orgs:     orgs,
		seed:     seed,
		slack:    DefaultSWFSlack,
	}, nil
}

// SetSlack overrides the reorder buffer size (records held back to
// re-sort local submit-order jitter). Call before the first Next.
func (s *SWFSource) SetSlack(n int) {
	if n < 1 {
		n = 1
	}
	s.slack = n
}

// Skipped returns the number of unusable archive records skipped so far.
func (s *SWFSource) Skipped() int { return s.r.Skipped() }

// Next implements JobSource. Disorder wider than the reorder slack is
// detected here, at the pull: the record about to be emitted cannot
// precede one already emitted, or the downstream federation would see
// a release going backwards mid-stream. Errors are sticky — a source
// that has failed once keeps failing, because every record after the
// failure point is suspect.
func (s *SWFSource) Next() (SourceJob, bool, error) {
	if s.err != nil {
		return SourceJob{}, false, s.err
	}
	if !s.primed {
		s.primed = true
		for len(s.buf) < s.slack {
			if err := s.readOne(); err != nil {
				s.err = err
				return SourceJob{}, false, err
			}
			if s.done {
				break
			}
		}
	}
	if len(s.buf) == 0 {
		return SourceJob{}, false, nil
	}
	it := heap.Pop(&s.buf).(swfItem)
	if s.emitted && it.job.Submit < s.lastEmit {
		s.err = fmt.Errorf("fed: swf source: archive disorder exceeds the reorder slack of %d records: submit %d surfaced after submit %d was already emitted (raise SetSlack or pre-sort the archive)",
			s.slack, it.job.Submit, s.lastEmit)
		return SourceJob{}, false, s.err
	}
	s.lastEmit, s.emitted = it.job.Submit, true
	if !s.done {
		if err := s.readOne(); err != nil {
			s.err = err
			return SourceJob{}, false, err
		}
	}
	return SourceJob{
		Cluster: s.userHash(it.job.User, 0x5348, s.clusters), // distinct salts: a user's
		Org:     s.userHash(it.job.User, 0x4f52, s.orgs),     // site and owner hash independently
		Size:    it.job.Runtime,
		Release: it.job.Submit,
	}, true, nil
}

// readOne pushes the next usable archive record into the reorder buffer.
func (s *SWFSource) readOne() error {
	j, err := s.r.Next()
	if err == io.EOF {
		s.done = true
		return nil
	}
	if err != nil {
		return err
	}
	heap.Push(&s.buf, swfItem{job: j, idx: s.arrived})
	s.arrived++
	return nil
}

// userHash maps an archive user id into [0, n) with a SplitMix64-style
// mix over (seed, user, salt) — deterministic without pre-scanning the
// archive's user universe, which a streaming source cannot do.
func (s *SWFSource) userHash(user int, salt uint64, n int) int {
	x := uint64(s.seed)*0x9E3779B97F4A7C15 + uint64(user+1)*0xBF58476D1CE4E5B9 + salt
	x ^= x >> 30
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(n))
}

// swfItem is one buffered archive record; idx is its file order, the
// deterministic tie-break for equal submit times.
type swfItem struct {
	job trace.Job
	idx int64
}

// swfHeap is a min-heap on (Submit, file order).
type swfHeap []swfItem

func (h swfHeap) Len() int { return len(h) }
func (h swfHeap) Less(i, j int) bool {
	if h[i].job.Submit != h[j].job.Submit {
		return h[i].job.Submit < h[j].job.Submit
	}
	return h[i].idx < h[j].idx
}
func (h swfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *swfHeap) Push(x any)   { *h = append(*h, x.(swfItem)) }
func (h *swfHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
