package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestRunGeneratesParsableSWF(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-family", "lpc-egee", "-horizon", "2000", "-seed", "3", "-scale", "0.1"}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	tr, skipped, err := trace.ParseSWF(bytes.NewReader(stdout.Bytes()))
	if err != nil {
		t.Fatalf("generated trace does not re-parse: %v", err)
	}
	if skipped != 0 {
		t.Fatalf("generated trace has %d unusable records", skipped)
	}
	if len(tr.Jobs) == 0 {
		t.Fatal("generated trace is empty")
	}
	found := false
	for _, h := range tr.Header {
		if strings.HasPrefix(h, "Seed: 3") {
			found = true
		}
	}
	if !found {
		t.Fatalf("header missing seed note: %v", tr.Header)
	}
	if !strings.Contains(stderr.String(), "jobs") {
		t.Fatalf("stderr summary missing: %q", stderr.String())
	}
}

func TestRunWritesOutputFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	path := filepath.Join(t.TempDir(), "out.swf")
	if err := run([]string{"-family", "ricc", "-horizon", "1000", "-scale", "0.05", "-o", path}, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if stdout.Len() != 0 {
		t.Fatalf("with -o, stdout should be empty; got %d bytes", stdout.Len())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, err := trace.ParseSWF(f); err != nil {
		t.Fatalf("output file does not parse: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-family", "nope"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown family accepted")
	}
	if err := run([]string{"-bogus"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	gen := func(seed string) string {
		var stdout, stderr bytes.Buffer
		if err := run([]string{"-horizon", "1500", "-scale", "0.1", "-seed", seed}, &stdout, &stderr); err != nil {
			t.Fatal(err)
		}
		return stdout.String()
	}
	if gen("5") != gen("5") {
		t.Fatal("equal seeds produced different traces")
	}
	if gen("5") == gen("6") {
		t.Fatal("different seeds produced identical traces")
	}
}
