package metrics

import "fmt"

// AdmissionStats is the per-organization admission accounting of a
// control plane (internal/ctrl): how many released jobs were admitted,
// rejected or are currently deferred, plus decision-latency aggregates.
// The counters obey a conservation law the control plane checks after
// every advance —
//
//	Admitted + Rejected + Deferred == Released
//
// per organization at every quiescent instant (no control event is
// mid-flight). Deferred is a gauge (jobs pending an admission retry),
// not a cumulative count; Defers counts the retry events themselves —
// one job bouncing off a drained token bucket three times is one
// Deferred at most but three Defers.
//
// The struct is plain data with JSON tags: it rides inside control-
// plane checkpoints and daemon StateReply payloads unchanged.
type AdmissionStats struct {
	Released []int64 `json:"released"`
	Admitted []int64 `json:"admitted"`
	Rejected []int64 `json:"rejected"`
	Deferred []int64 `json:"deferred"`
	Defers   []int64 `json:"defers"`

	// Decision latency: the event-time span from a job's arrival at the
	// control plane to its terminal verdict (admit or reject). Deferred
	// jobs accrue latency until they resolve. Count/Sum/Max are in the
	// simulation's time units.
	LatencyCount int64 `json:"latency_count"`
	LatencySum   int64 `json:"latency_sum"`
	LatencyMax   int64 `json:"latency_max"`
}

// NewAdmissionStats returns zeroed counters for the given organization
// universe.
func NewAdmissionStats(orgs int) *AdmissionStats {
	return &AdmissionStats{
		Released: make([]int64, orgs),
		Admitted: make([]int64, orgs),
		Rejected: make([]int64, orgs),
		Deferred: make([]int64, orgs),
		Defers:   make([]int64, orgs),
	}
}

// Orgs returns the organization-universe size the stats are shaped for.
func (s *AdmissionStats) Orgs() int { return len(s.Released) }

// Release counts one job arriving at the control plane.
func (s *AdmissionStats) Release(org int) { s.Released[org]++ }

// Admit counts a terminal admit verdict with the given decision latency.
func (s *AdmissionStats) Admit(org int, latency int64) {
	s.Admitted[org]++
	s.latency(latency)
}

// Reject counts a terminal reject verdict with the given decision
// latency.
func (s *AdmissionStats) Reject(org int, latency int64) {
	s.Rejected[org]++
	s.latency(latency)
}

// Defer counts one defer event and marks the job as pending retry.
func (s *AdmissionStats) Defer(org int) {
	s.Deferred[org]++
	s.Defers[org]++
}

// Resume clears a job's pending-retry mark when its deferred admission
// event is picked back up.
func (s *AdmissionStats) Resume(org int) { s.Deferred[org]-- }

func (s *AdmissionStats) latency(l int64) {
	s.LatencyCount++
	s.LatencySum += l
	if l > s.LatencyMax {
		s.LatencyMax = l
	}
}

// MeanLatency returns the mean decision latency over terminal verdicts
// (0 before the first one).
func (s *AdmissionStats) MeanLatency() float64 {
	if s.LatencyCount == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.LatencyCount)
}

// TotalReleased returns Σ Released.
func (s *AdmissionStats) TotalReleased() int64 { return sum(s.Released) }

// TotalAdmitted returns Σ Admitted.
func (s *AdmissionStats) TotalAdmitted() int64 { return sum(s.Admitted) }

// TotalRejected returns Σ Rejected.
func (s *AdmissionStats) TotalRejected() int64 { return sum(s.Rejected) }

// TotalDeferred returns Σ Deferred — the jobs currently parked in the
// control plane awaiting an admission retry.
func (s *AdmissionStats) TotalDeferred() int64 { return sum(s.Deferred) }

func sum(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

// CheckConserved verifies the admission conservation law per
// organization: admitted + rejected + deferred == released, with every
// counter non-negative. The control plane calls it after each advance;
// a violation means a job was dropped or double-counted.
func (s *AdmissionStats) CheckConserved() error {
	n := len(s.Released)
	if len(s.Admitted) != n || len(s.Rejected) != n || len(s.Deferred) != n || len(s.Defers) != n {
		return fmt.Errorf("metrics: admission counters have mismatched organization counts")
	}
	for o := 0; o < n; o++ {
		if s.Released[o] < 0 || s.Admitted[o] < 0 || s.Rejected[o] < 0 || s.Deferred[o] < 0 || s.Defers[o] < 0 {
			return fmt.Errorf("metrics: negative admission counter for organization %d", o)
		}
		if got := s.Admitted[o] + s.Rejected[o] + s.Deferred[o]; got != s.Released[o] {
			return fmt.Errorf("metrics: organization %d: admitted %d + rejected %d + deferred %d != released %d",
				o, s.Admitted[o], s.Rejected[o], s.Deferred[o], s.Released[o])
		}
	}
	return nil
}

// Clone returns an independent copy (StateReply hands stats across the
// session lock boundary).
func (s *AdmissionStats) Clone() *AdmissionStats {
	if s == nil {
		return nil
	}
	c := *s
	c.Released = append([]int64(nil), s.Released...)
	c.Admitted = append([]int64(nil), s.Admitted...)
	c.Rejected = append([]int64(nil), s.Rejected...)
	c.Deferred = append([]int64(nil), s.Deferred...)
	c.Defers = append([]int64(nil), s.Defers...)
	return &c
}
