package engine

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/sim"
)

// steppers returns every incremental algorithm configuration the engine
// must drive byte-identically to the batch path: REF with both drivers,
// RAND, DIRECTCONTR, NBS and the five policy baselines.
func steppers() []core.StepperAlgorithm {
	return []core.StepperAlgorithm{
		core.RefAlgorithm{},
		core.RefAlgorithm{Opts: core.RefOptions{Driver: core.DriverScan}},
		core.RandAlgorithm{Samples: 7},
		core.RandAlgorithm{Samples: 6, Opts: core.RandOptions{Stratified: true}},
		core.DirectContrAlgorithm().(core.StepperAlgorithm),
		core.NbsAlgorithm{},
		core.FromPolicy("RoundRobin", func() sim.Policy { return baseline.NewRoundRobin() }),
		core.FromPolicy("FairShare", func() sim.Policy { return baseline.NewFairShare() }),
		core.FromPolicy("UtFairShare", func() sim.Policy { return baseline.NewUtFairShare() }),
		core.FromPolicy("CurrFairShare", func() sim.Policy { return baseline.NewCurrFairShare() }),
		core.FromPolicy("FCFS", func() sim.Policy { return baseline.NewFCFS() }),
	}
}

// testInstance builds a randomized instance exercising the engine edge
// cases: same-instant release bursts, heterogeneous machine speeds,
// idle stretches, and organizations with no machines or no jobs.
func testInstance(r *rand.Rand, k int) *model.Instance {
	orgs := make([]model.Org, k)
	for i := range orgs {
		m := r.Intn(3)
		o := model.Org{Name: string(rune('A' + i)), Machines: m}
		if m > 0 && r.Intn(2) == 0 {
			o.Speeds = make([]int, m)
			for s := range o.Speeds {
				o.Speeds[s] = 1 + r.Intn(3)
			}
		}
		orgs[i] = o
	}
	if orgs[0].Machines == 0 {
		orgs[0].Machines = 1
		orgs[0].Speeds = nil
	}
	n := 4 + r.Intn(14)
	jobs := make([]model.Job, n)
	for i := range jobs {
		release := model.Time(r.Intn(12))
		if r.Intn(3) == 0 {
			release = model.Time(5)
		}
		jobs[i] = model.Job{Org: r.Intn(k), Release: release, Size: model.Time(1 + r.Intn(6))}
	}
	return model.MustNewInstance(orgs, jobs)
}

func assertSameRun(t *testing.T, label string, want, got *core.Result, wantStarts, gotStarts []sim.Start) {
	t.Helper()
	if len(wantStarts) != len(gotStarts) {
		t.Fatalf("%s: start counts differ: %d vs %d", label, len(wantStarts), len(gotStarts))
	}
	for i := range wantStarts {
		if wantStarts[i] != gotStarts[i] {
			t.Fatalf("%s: start %d differs: %+v vs %+v", label, i, wantStarts[i], gotStarts[i])
		}
	}
	for u := range want.Psi {
		if want.Psi[u] != got.Psi[u] {
			t.Fatalf("%s: ψ[%d] differs: %d vs %d", label, u, want.Psi[u], got.Psi[u])
		}
	}
	if want.Value != got.Value || want.Ptot != got.Ptot {
		t.Fatalf("%s: value/ptot differ: (%d,%d) vs (%d,%d)", label, want.Value, want.Ptot, got.Value, got.Ptot)
	}
	if (want.Phi == nil) != (got.Phi == nil) {
		t.Fatalf("%s: φ presence differs", label)
	}
	for u := range want.Phi {
		if want.Phi[u] != got.Phi[u] {
			t.Fatalf("%s: φ[%d] differs bitwise: %v vs %v", label, u, want.Phi[u], got.Phi[u])
		}
	}
}

// The tentpole equivalence: feeding jobs online — each before its
// release, interleaved with incremental Steps — must reproduce the
// batch Run byte-identically (schedules, ψ, bitwise φ) for every
// algorithm.
func TestStreamingMatchesBatch(t *testing.T) {
	for _, alg := range steppers() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				r := rand.New(rand.NewSource(500 + seed))
				k := 2 + r.Intn(4)
				inst := testInstance(r, k)
				horizon := inst.Horizon() + 2
				batch := alg.Run(inst.Clone(), horizon, seed)

				empty, err := model.NewInstance(inst.Orgs, nil)
				if err != nil {
					t.Fatal(err)
				}
				e := New(alg, empty, seed)
				next := 0
				for tm := model.Time(0); tm < horizon; tm += 3 {
					var arrivals []model.Job
					for next < len(inst.Jobs) && inst.Jobs[next].Release <= tm {
						arrivals = append(arrivals, inst.Jobs[next])
						next++
					}
					ids, err := e.Feed(arrivals)
					if err != nil {
						t.Fatalf("feed at %d: %v", tm, err)
					}
					for i, id := range ids {
						if id != arrivals[i].ID {
							t.Fatalf("fed job got ID %d, batch had %d", id, arrivals[i].ID)
						}
					}
					if _, err := e.Step(tm); err != nil {
						t.Fatalf("step to %d: %v", tm, err)
					}
				}
				if next < len(inst.Jobs) {
					t.Fatalf("test bug: %d jobs never fed", len(inst.Jobs)-next)
				}
				if _, err := e.Step(horizon); err != nil {
					t.Fatal(err)
				}
				assertSameRun(t, "streaming vs batch", batch, e.Result(), batch.Starts, e.Decisions())
			}
		})
	}
}

// Stepping granularity must not matter: one Step to the horizon equals
// many small Steps (the engine's FinishAt-resume path).
func TestStepGranularityInvariance(t *testing.T) {
	for _, alg := range steppers() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(77))
			inst := testInstance(r, 3)
			horizon := inst.Horizon() + 1
			coarse := New(alg, inst.Clone(), 3)
			if _, err := coarse.Step(horizon); err != nil {
				t.Fatal(err)
			}
			fine := New(alg, inst.Clone(), 3)
			var collected []sim.Start
			for tm := model.Time(0); tm <= horizon; tm++ {
				starts, err := fine.Step(tm)
				if err != nil {
					t.Fatal(err)
				}
				collected = append(collected, starts...)
			}
			assertSameRun(t, "fine vs coarse", coarse.Result(), fine.Result(), coarse.Decisions(), collected)
		})
	}
}

func TestFeedValidation(t *testing.T) {
	inst := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1}},
		nil,
	)
	e := New(core.FromPolicy("FCFS", func() sim.Policy { return baseline.NewFCFS() }), inst, 1)
	if _, err := e.Step(10); err != nil {
		t.Fatal(err)
	}
	cases := []model.Job{
		{Org: 1, Release: 20, Size: 1}, // unknown org
		{Org: 0, Release: 20, Size: 0}, // zero size
		{Org: 0, Release: 5, Size: 1},  // released in the past
	}
	for i, j := range cases {
		if _, err := e.Feed([]model.Job{j}); err == nil {
			t.Errorf("case %d: Feed(%+v) accepted", i, j)
		}
	}
	if len(e.Instance().Jobs) != 0 {
		t.Fatalf("rejected feeds mutated the instance: %d jobs", len(e.Instance().Jobs))
	}
	if _, err := e.Feed([]model.Job{{Org: 0, Release: 10, Size: 2}}); err != nil {
		t.Fatalf("same-instant release rejected: %v", err)
	}
	if _, err := e.Step(e.Now()); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Decisions()); got != 1 {
		t.Fatalf("same-instant job not dispatched: %d decisions", got)
	}
	if e.NextEventTime() != model.Time(12) {
		t.Fatalf("next event = %d, want completion at 12", e.NextEventTime())
	}
}

func TestStepBackwardsRejected(t *testing.T) {
	inst := model.MustNewInstance([]model.Org{{Name: "A", Machines: 1}}, nil)
	e := New(core.RefAlgorithm{}, inst, 0)
	if _, err := e.Step(5); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Step(4); err == nil {
		t.Fatal("stepping backwards accepted")
	}
}

// Utilities reported mid-run must equal the batch run truncated at the
// same horizon — the engine's Result is not an approximation.
func TestMidRunResultMatchesTruncatedBatch(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	inst := testInstance(r, 3)
	horizon := inst.Horizon()/2 + 1
	for _, alg := range steppers() {
		batch := alg.Run(inst.Clone(), horizon, 9)
		e := New(alg, inst.Clone(), 9)
		if _, err := e.Step(horizon); err != nil {
			t.Fatal(err)
		}
		res := e.Result()
		assertSameRun(t, alg.Name(), batch, res, batch.Starts, e.Decisions())
		if math.Abs(res.Utilization-batch.Utilization) > 1e-15 {
			t.Fatalf("%s: utilization %v vs %v", alg.Name(), res.Utilization, batch.Utilization)
		}
	}
}
