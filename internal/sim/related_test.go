package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/utility"
)

// On a speed-q machine a size-p job runs for ⌈p/q⌉ time units and its
// work units complete q per slot (remainder in the last slot). ψsp
// counts work units, each worth t − (its completion slot).
func TestRelatedMachineSingleJob(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1, Speeds: []int{3}}},
		[]model.Job{{Org: 0, Release: 0, Size: 10}},
	)
	c := New(in, in.Grand(), orgPriority(0), nil)
	c.Run(20)
	// Duration ⌈10/3⌉ = 4: units 3@0, 3@1, 3@2, 1@3.
	want := int64(3*(20-0) + 3*(20-1) + 3*(20-2) + 1*(20-3))
	if got := c.Psi(0); got != want {
		t.Fatalf("ψ = %d, want %d", got, want)
	}
	if got := c.ExecutedUnits(); got != 10 {
		t.Fatalf("executed units = %d, want 10 (work units, not wall slots)", got)
	}
	placed := c.Placed(0)
	if placed[0].Size != 4 {
		t.Fatalf("realized processing time = %d, want 4", placed[0].Size)
	}
	// Full capacity for 4 of 20 slots at speed 3: utilization 10/(3·20).
	if got := c.Utilization(); got != 10.0/60.0 {
		t.Fatalf("utilization = %v", got)
	}
}

// Mid-execution queries must see exactly the units completed so far.
func TestRelatedMachineMidJobAccounting(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1, Speeds: []int{4}}},
		[]model.Job{{Org: 0, Release: 0, Size: 10}},
	)
	c := New(in, in.Grand(), orgPriority(0), nil)
	c.Run(2) // 2 slots executed: 8 units
	if got := c.ExecutedUnits(); got != 8 {
		t.Fatalf("units after 2 slots = %d, want 8", got)
	}
	want := int64(4*(2-0) + 4*(2-1))
	if got := c.Psi(0); got != want {
		t.Fatalf("ψ(2) = %d, want %d", got, want)
	}
	c.Run(3) // third slot completes the remaining 2 units
	if got := c.ExecutedUnits(); got != 10 {
		t.Fatalf("units after 3 slots = %d, want 10", got)
	}
}

// Speed-1 machines must behave exactly as the identical-machines
// engine: the Speeds field set to all-ones changes nothing.
func TestRelatedSpeedOneEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInstance(r, false)
		ones := in.Clone()
		for i := range ones.Orgs {
			ones.Orgs[i].Speeds = make([]int, ones.Orgs[i].Machines)
			for m := range ones.Orgs[i].Speeds {
				ones.Orgs[i].Speeds[m] = 1
			}
		}
		horizon := in.Horizon() + 1
		a := New(in, in.Grand(), randPolicy(seed), nil)
		a.Run(horizon)
		b := New(ones, ones.Grand(), randPolicy(seed), nil)
		b.Run(horizon)
		if a.Value() != b.Value() || a.ExecutedUnits() != b.ExecutedUnits() {
			return false
		}
		as, bs := a.Starts(), b.Starts()
		if len(as) != len(bs) {
			return false
		}
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Accounting consistency on random related-machine instances: the
// engine's ψ must equal a brute-force per-unit evaluation of the
// recorded schedule.
func TestRelatedAccountingMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInstance(r, false)
		for i := range in.Orgs {
			in.Orgs[i].Speeds = make([]int, in.Orgs[i].Machines)
			for m := range in.Orgs[i].Speeds {
				in.Orgs[i].Speeds[m] = 1 + r.Intn(4)
			}
		}
		horizon := in.Horizon() + 1 // generous: speeds only shorten jobs
		eval := model.Time(1 + r.Int63n(int64(horizon)))
		c := New(in, in.Grand(), randPolicy(seed+3), nil)
		c.Run(eval)
		// Brute force from the recorded starts.
		psi := make([]int64, len(in.Orgs))
		v := c.View()
		for _, s := range c.Starts() {
			j := in.Jobs[s.Job]
			q := model.Time(v.MachineSpeed(s.Machine))
			remaining := j.Size
			for slot := s.At; remaining > 0 && slot < eval; slot++ {
				units := q
				if units > remaining {
					units = remaining
				}
				psi[s.Org] += int64(units) * int64(eval-slot)
				remaining -= units
			}
		}
		for org := range psi {
			if psi[org] != c.Psi(org) {
				t.Fatalf("seed %d: org %d ψ = %d, brute force %d", seed, org, c.Psi(org), psi[org])
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// The paper suspects "in case of related machines the loss of
// efficiency might be significant" (Section 8): on related machines the
// 3/4-competitiveness of Theorem 6.2 indeed fails. One slow and one
// fast machine, one long job: a greedy policy that grabs the slow
// machine processes 10× less work than one preferring the fast machine.
func TestRelatedMachinesBreakThreeQuarterBound(t *testing.T) {
	build := func() *model.Instance {
		return model.MustNewInstance(
			[]model.Org{{Name: "A", Machines: 2, Speeds: []int{1, 10}}},
			[]model.Job{{Org: 0, Release: 0, Size: 100}},
		)
	}
	slowFirst := New(build(), model.Grand(1), orgPriority(0), nil) // default machine order: M0 (slow)
	slowFirst.Run(10)
	fastPref := &SelectFunc{PolicyName: "fast", F: func(v *View, _ model.Time, _ int) int { return 0 }}
	fastCluster := New(build(), model.Grand(1), &machineReverser{fastPref}, nil)
	fastCluster.Run(10)
	lo, hi := slowFirst.ExecutedUnits(), fastCluster.ExecutedUnits()
	if lo != 10 || hi != 100 {
		t.Fatalf("executed units = %d vs %d, want 10 vs 100", lo, hi)
	}
	if 4*lo >= 3*hi {
		t.Fatal("expected the 3/4 bound to fail on related machines")
	}
}

// machineReverser wraps a policy and visits machines fastest-last-ID
// first (reversed order).
type machineReverser struct{ Policy }

func (m *machineReverser) OrderMachines(_ model.Time, free []int) {
	for i, j := 0, len(free)-1; i < j; i, j = i+1, j-1 {
		free[i], free[j] = free[j], free[i]
	}
}

// FairShare's target share is capacity-weighted on related machines:
// one speed-3 machine earns the same share as three speed-1 machines.
func TestRelatedCapacityShares(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{
			{Name: "A", Machines: 1, Speeds: []int{3}},
			{Name: "B", Machines: 3},
		},
		[]model.Job{{Org: 0, Release: 0, Size: 1}},
	)
	c := New(in, in.Grand(), orgPriority(0, 1), nil)
	v := c.View()
	if v.Share(0) != 0.5 || v.Share(1) != 0.5 {
		t.Fatalf("shares = %v/%v, want 0.5/0.5", v.Share(0), v.Share(1))
	}
	if v.MachineSpeed(0) != 3 || v.MachineSpeed(1) != 1 {
		t.Fatalf("speeds = %d/%d", v.MachineSpeed(0), v.MachineSpeed(1))
	}
}

// REF runs unchanged on related machines (the paper: "most of our
// results can be extended to related processors").
func TestRelatedMachinesValidation(t *testing.T) {
	bad := model.Instance{
		Orgs: []model.Org{{Name: "A", Machines: 2, Speeds: []int{1}}},
	}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched speeds length accepted")
	}
	bad2 := model.Instance{
		Orgs: []model.Org{{Name: "A", Machines: 1, Speeds: []int{0}}},
	}
	if err := bad2.Validate(); err == nil {
		t.Error("zero speed accepted")
	}
}

// Scaled-window accrual is exact for arbitrary window decompositions.
func TestAddScaledWindowDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := model.Time(r.Intn(10))
		p := model.Time(1 + r.Intn(30))
		q := 1 + r.Intn(5)
		dur := (p + model.Time(q) - 1) / model.Time(q)
		// Whole-occupancy accrual in one shot.
		var whole utility.Account
		whole.AddScaledWindow(s, p, q, s, s+dur)
		// Random chunked accrual.
		var chunked utility.Account
		cur := s
		for cur < s+dur {
			next := cur + model.Time(1+r.Intn(3))
			if next > s+dur {
				next = s + dur
			}
			chunked.AddScaledWindow(s, p, q, cur, next)
			cur = next
		}
		return whole == chunked && whole.U == int64(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
