package daemon_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/daemon"
)

// TestDirStoreAtomicSave: a save lands as exactly one complete
// envelope — no temp files left behind, and the content round-trips.
func TestDirStoreAtomicSave(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st := daemon.NewDirStore(dir)
	env := daemon.Envelope{ID: "a", Config: singleCfg(), Snapshot: json.RawMessage(`{"v":1}`)}
	if err := st.Save(env); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(env); err != nil { // overwrite in place
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "a.session.json" {
		t.Fatalf("store directory holds %v, want exactly a.session.json", entries)
	}
	envs, quarantined, err := st.Load()
	if err != nil || len(quarantined) != 0 || len(envs) != 1 {
		t.Fatalf("load: envs=%d quarantined=%v err=%v", len(envs), quarantined, err)
	}
	if envs[0].ID != "a" || string(envs[0].Snapshot) != `{"v":1}` {
		t.Fatalf("loaded envelope %+v", envs[0])
	}
}

// TestLoadQuarantinesCorruptEnvelope is the crash-during-flush
// simulation: a truncated envelope on disk (the artifact a bare
// WriteFile crash leaves) no longer poisons the boot — every healthy
// session is restored, the corrupt file is renamed aside and reported.
func TestLoadQuarantinesCorruptEnvelope(t *testing.T) {
	mgr := daemon.NewManager()
	for _, id := range []string{"a-first", "m-corrupt", "z-last"} {
		s, err := mgr.Create(id, singleCfg())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit([]daemon.JobSubmission{{Org: 0, Size: 5}}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Advance(timePtr(10)); err != nil {
			t.Fatal(err)
		}
	}
	dir := filepath.Join(t.TempDir(), "ckpts")
	if _, err := mgr.FlushAll(dir); err != nil {
		t.Fatal(err)
	}
	// Simulate the mid-write crash: truncate the middle envelope so
	// every alphabetically-later session used to be lost with it, and
	// leave a stale temp file from an interrupted atomic write.
	corrupt := filepath.Join(dir, "m-corrupt.session.json")
	data, err := os.ReadFile(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(corrupt, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".tmp-z-last-123"), []byte("partial"), 0o600); err != nil {
		t.Fatal(err)
	}

	reborn := daemon.NewManager()
	ids, quarantined, err := reborn.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ids) != "[a-first z-last]" {
		t.Fatalf("restored %v, want the two healthy sessions", ids)
	}
	if len(quarantined) != 1 || !strings.Contains(quarantined[0].ID, "m-corrupt") {
		t.Fatalf("quarantined %v, want the corrupt envelope", quarantined)
	}
	for _, id := range []string{"a-first", "z-last"} {
		got, ok := reborn.Get(id)
		if !ok {
			t.Fatalf("session %s not restored", id)
		}
		want, _ := mgr.Get(id)
		if !sameState(got.State(), want.State()) {
			t.Fatalf("session %s state drifted across the crash", id)
		}
	}
	// The corrupt envelope was renamed aside, the temp file swept, so
	// the next boot sees a clean directory.
	if _, err := os.Stat(corrupt + ".corrupt"); err != nil {
		t.Fatalf("corrupt envelope not renamed: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("stale temp file %s not swept", e.Name())
		}
	}
	if ids2, quarantined2, err := daemon.NewManager().LoadDir(dir); err != nil || len(ids2) != 2 || len(quarantined2) != 0 {
		t.Fatalf("second boot: ids=%v quarantined=%v err=%v", ids2, quarantined2, err)
	}
}

// TestLoadQuarantinesUnrestorableEnvelope: an envelope that parses but
// cannot be rebuilt (unknown algorithm) is quarantined the same way.
func TestLoadQuarantinesUnrestorableEnvelope(t *testing.T) {
	dir := t.TempDir()
	st := daemon.NewDirStore(dir)
	bad := singleCfg()
	bad.Alg = "no-such-algorithm"
	if err := st.Save(daemon.Envelope{ID: "bad", Config: bad, Snapshot: json.RawMessage(`{}`)}); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(daemon.Envelope{ID: "noid", Config: singleCfg(), Snapshot: json.RawMessage(`{}`)}); err != nil {
		t.Fatal(err)
	}
	// Blank the second envelope's id: restoring it would auto-assign a
	// fresh session id, silently renaming the session.
	path := filepath.Join(dir, "noid.session.json")
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, []byte(strings.Replace(string(data), `"id":"noid"`, `"id":""`, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	mgr := daemon.NewManager()
	ids, quarantined, err := mgr.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 || len(quarantined) != 2 {
		t.Fatalf("ids=%v quarantined=%v", ids, quarantined)
	}
	if len(mgr.List()) != 0 {
		t.Fatal("quarantined envelopes still created sessions")
	}
	if _, err := os.Stat(filepath.Join(dir, "bad.session.json.corrupt")); err != nil {
		t.Fatalf("unrestorable envelope not quarantined: %v", err)
	}
}

// failingStore fails Save for one session id and delegates the rest.
type failingStore struct {
	daemon.CheckpointStore
	failID string
}

func (f failingStore) Save(env daemon.Envelope) error {
	if env.ID == f.failID {
		return fmt.Errorf("injected write failure for %q", env.ID)
	}
	return f.CheckpointStore.Save(env)
}

// TestFlushToContinuesPastFailures: one session failing to flush no
// longer silently skips every remaining session — all are attempted
// and the failure is reported, with the failed session left dirty for
// the next pass.
func TestFlushToContinuesPastFailures(t *testing.T) {
	mgr := daemon.NewManager()
	for _, id := range []string{"a", "b", "c"} {
		if _, err := mgr.Create(id, singleCfg()); err != nil {
			t.Fatal(err)
		}
	}
	inner := daemon.NewDirStore(t.TempDir())
	st := failingStore{CheckpointStore: inner, failID: "b"}
	ids, err := mgr.FlushTo(st, false)
	if err == nil || !strings.Contains(err.Error(), `"b"`) {
		t.Fatalf("flush error %v, want the injected failure for b", err)
	}
	if fmt.Sprint(ids) != "[a c]" {
		t.Fatalf("flushed %v, want the two healthy sessions", ids)
	}
	// The failed session stayed dirty: a dirty-only retry picks up
	// exactly it.
	ids, err = mgr.FlushTo(inner, true)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ids) != "[b]" {
		t.Fatalf("retry flushed %v, want just b", ids)
	}
}

// TestDirtyFlushRestartByteIdentity reuses the PR 5 load-test session
// shape for the periodic-flush contract: advance, flush dirty, keep a
// reference of the flushed state; a clean dirty pass flushes nothing;
// after more traffic only the touched sessions re-flush; and a manager
// booted from the store is byte-identical to the last flushed states.
func TestDirtyFlushRestartByteIdentity(t *testing.T) {
	mgr := daemon.NewManager()
	st := daemon.NewDirStore(filepath.Join(t.TempDir(), "store"))
	const sessions = 8
	for i := 0; i < sessions; i++ {
		s, err := mgr.Create(fmt.Sprintf("s%d", i), loadFedCfg(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		var jobs []daemon.JobSubmission
		for j := 0; j < 12; j++ {
			jobs = append(jobs, daemon.JobSubmission{Cluster: 0, Org: j % 2, Size: 4})
		}
		if _, err := s.Submit(jobs); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Advance(timePtr(60)); err != nil {
			t.Fatal(err)
		}
	}
	if ids, err := mgr.FlushTo(st, true); err != nil || len(ids) != sessions {
		t.Fatalf("first dirty flush: ids=%v err=%v", ids, err)
	}
	if ids, err := mgr.FlushTo(st, true); err != nil || len(ids) != 0 {
		t.Fatalf("clean table still flushed %v (err=%v)", ids, err)
	}
	// Touch half the sessions; only they are dirty.
	for i := 0; i < sessions; i += 2 {
		s, _ := mgr.Get(fmt.Sprintf("s%d", i))
		if _, _, err := s.Advance(timePtr(200)); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := mgr.FlushTo(st, true)
	if err != nil || len(ids) != sessions/2 {
		t.Fatalf("incremental flush: ids=%v err=%v", ids, err)
	}
	// "Kill" the process here (no final flush) and boot from the store:
	// every session resumes exactly at its last flushed state.
	want := map[string]daemon.StateReply{}
	for _, s := range mgr.List() {
		want[s.ID()] = s.State()
	}
	reborn := daemon.NewManager()
	got, quarantined, err := reborn.LoadStore(st)
	if err != nil || len(quarantined) != 0 || len(got) != sessions {
		t.Fatalf("boot: ids=%v quarantined=%v err=%v", got, quarantined, err)
	}
	for id, wantState := range want {
		s, ok := reborn.Get(id)
		if !ok {
			t.Fatalf("session %s lost across restart", id)
		}
		if !sameState(s.State(), wantState) {
			t.Fatalf("session %s not byte-identical after restart", id)
		}
	}
	// Restored sessions boot clean: nothing to flush until new traffic.
	if ids, err := reborn.FlushTo(st, true); err != nil || len(ids) != 0 {
		t.Fatalf("freshly booted table flushed %v (err=%v)", ids, err)
	}
}

// TestDeletePropagatesToStore: deleting a session drops its envelope,
// so the next boot does not resurrect it.
func TestDeletePropagatesToStore(t *testing.T) {
	dir := t.TempDir()
	st := daemon.NewDirStore(dir)
	mgr := daemon.NewManager()
	mgr.SetStore(st)
	if _, err := mgr.Create("keep", singleCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Create("drop", singleCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.FlushTo(st, false); err != nil {
		t.Fatal(err)
	}
	if !mgr.Delete("drop") {
		t.Fatal("delete failed")
	}
	if ids, _, err := daemon.NewManager().LoadDir(dir); err != nil || fmt.Sprint(ids) != "[keep]" {
		t.Fatalf("boot after delete restored %v (err=%v)", ids, err)
	}
}

// TestFlusherBackgroundFlush: the background flusher persists dirty
// sessions without any shutdown, and Stop halts it without a final
// write.
func TestFlusherBackgroundFlush(t *testing.T) {
	dir := t.TempDir()
	st := daemon.NewDirStore(dir)
	mgr := daemon.NewManager()
	s, err := mgr.Create("bg", singleCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit([]daemon.JobSubmission{{Org: 0, Size: 5}}); err != nil {
		t.Fatal(err)
	}
	f := daemon.StartFlusher(mgr, st, time.Millisecond, nil)
	deadline := time.Now().Add(5 * time.Second)
	for f.Flushed() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flusher wrote nothing within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	f.Stop()
	flushedAt := f.Flushed()
	// Post-Stop mutations stay unflushed (Stop takes no final write).
	if _, _, err := s.Advance(timePtr(10)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if f.Flushed() != flushedAt {
		t.Fatal("flusher kept writing after Stop")
	}
	if ids, _, err := daemon.NewManager().LoadDir(dir); err != nil || len(ids) != 1 {
		t.Fatalf("background-flushed envelope unreadable: ids=%v err=%v", ids, err)
	}
}

// TestServingTierLoadSmoke is the CI-sized run of the 10k-session load
// harness (BenchmarkServingTier runs the full scale): small session
// count, full pipeline, race-detector friendly.
func TestServingTierLoadSmoke(t *testing.T) {
	sessions := 400
	if testing.Short() {
		sessions = 80
	}
	rep, err := daemon.RunLoad(daemon.LoadConfig{Sessions: sessions, Clients: 16, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Advances != int64(2*sessions) {
		t.Fatalf("harness ran %d advances, want %d", rep.Advances, 2*sessions)
	}
	if rep.Decisions == 0 || rep.ThroughputPerSec <= 0 {
		t.Fatalf("harness did no work: %+v", rep)
	}
	if rep.P50Ms > rep.P95Ms || rep.P95Ms > rep.P99Ms {
		t.Fatalf("latency percentiles out of order: %+v", rep)
	}
}
