// Package model defines the basic vocabulary of the multi-organization
// scheduling problem: discrete time, organizations, sequential jobs,
// coalitions of organizations and problem instances.
//
// The model follows Section 2 of Skowron & Rzadca (SPAA 2013): each
// organization owns a number of identical machines and submits sequential
// jobs that, once started, run to completion (no preemption, no
// migration). Jobs of a single organization must be started in submission
// (FIFO) order. Scheduling is online and non-clairvoyant: a job's size is
// unknown to schedulers until the job completes.
package model

import (
	"errors"
	"fmt"
	"sort"
)

// Time is a discrete time moment or duration, in abstract time units
// (the paper's set T). Negative times are invalid.
type Time int64

// Job is a sequential job. Size is the processing time p; Release is the
// release (submission) time r. ID is the job's index in Instance.Jobs and
// doubles as the global submission sequence: for two jobs of the same
// organization, the one with the smaller ID must start first.
//
// Schedulers must not read Size before the job completes (the model is
// non-clairvoyant); the simulator enforces this by exposing only queue
// positions, never sizes, to policies.
type Job struct {
	ID      int
	Org     int  // index into Instance.Orgs
	Release Time // r >= 0
	Size    Time // p >= 1
}

// Org is a participating organization contributing Machines processors
// to the common pool.
//
// Speeds optionally assigns each machine a speed: the number of work
// units it completes per time unit. Empty means every machine has speed
// 1 — the identical-machines model of the paper's evaluation. Non-empty
// Speeds (length Machines, entries >= 1) enable the related-machines
// extension the paper sketches in Sections 2 and 8: a job of size p on
// a speed-q machine occupies it for ⌈p/q⌉ time units.
type Org struct {
	Name     string
	Machines int
	Speeds   []int
}

// Speed returns the speed of the org's i-th machine (1 when Speeds is
// unset).
func (o Org) Speed(i int) int {
	if len(o.Speeds) == 0 {
		return 1
	}
	return o.Speeds[i]
}

// Capacity returns the total work units per time unit the organization
// contributes.
func (o Org) Capacity() int64 {
	if len(o.Speeds) == 0 {
		return int64(o.Machines)
	}
	var c int64
	for _, s := range o.Speeds {
		c += int64(s)
	}
	return c
}

// Instance is one complete scheduling problem: the organizations with
// their machine counts and every job that will ever be released. Jobs are
// sorted by (Release, ID); per-organization relative order is the FIFO
// submission order.
type Instance struct {
	Orgs []Org
	Jobs []Job
}

// NewInstance builds a normalized instance from organizations and jobs.
// Job IDs are (re)assigned in submission order: jobs are stably sorted by
// release time, preserving the caller's relative order of equal-release
// jobs, and then numbered 0..n-1.
func NewInstance(orgs []Org, jobs []Job) (*Instance, error) {
	in := &Instance{
		Orgs: append([]Org(nil), orgs...),
		Jobs: append([]Job(nil), jobs...),
	}
	sort.SliceStable(in.Jobs, func(i, j int) bool {
		return in.Jobs[i].Release < in.Jobs[j].Release
	})
	for i := range in.Jobs {
		in.Jobs[i].ID = i
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// MustNewInstance is NewInstance that panics on invalid input. Intended
// for tests and hand-built examples.
func MustNewInstance(orgs []Org, jobs []Job) *Instance {
	in, err := NewInstance(orgs, jobs)
	if err != nil {
		panic(err)
	}
	return in
}

// Validate checks structural invariants: at least one organization, at
// least one machine in total, job fields in range and jobs sorted by
// (Release, ID).
func (in *Instance) Validate() error {
	if len(in.Orgs) == 0 {
		return errors.New("model: instance has no organizations")
	}
	if len(in.Orgs) > MaxOrgs {
		return fmt.Errorf("model: %d organizations exceed the maximum of %d", len(in.Orgs), MaxOrgs)
	}
	total := 0
	for i, o := range in.Orgs {
		if o.Machines < 0 {
			return fmt.Errorf("model: organization %d (%s) has negative machine count %d", i, o.Name, o.Machines)
		}
		if len(o.Speeds) != 0 {
			if len(o.Speeds) != o.Machines {
				return fmt.Errorf("model: organization %d (%s) has %d speeds for %d machines", i, o.Name, len(o.Speeds), o.Machines)
			}
			for m, s := range o.Speeds {
				if s < 1 {
					return fmt.Errorf("model: organization %d (%s) machine %d has speed %d; speeds must be >= 1", i, o.Name, m, s)
				}
			}
		}
		total += o.Machines
	}
	if total == 0 {
		return errors.New("model: instance has no machines")
	}
	for i, j := range in.Jobs {
		if j.ID != i {
			return fmt.Errorf("model: job at position %d has ID %d; IDs must equal positions", i, j.ID)
		}
		if j.Org < 0 || j.Org >= len(in.Orgs) {
			return fmt.Errorf("model: job %d references unknown organization %d", i, j.Org)
		}
		if j.Release < 0 {
			return fmt.Errorf("model: job %d has negative release time %d", i, j.Release)
		}
		if j.Size < 1 {
			return fmt.Errorf("model: job %d has size %d; sizes must be >= 1", i, j.Size)
		}
		if i > 0 && in.Jobs[i-1].Release > j.Release {
			return fmt.Errorf("model: jobs not sorted by release time at position %d", i)
		}
	}
	return nil
}

// TotalMachines returns the machine count of the whole system (the grand
// coalition's pool).
func (in *Instance) TotalMachines() int {
	total := 0
	for _, o := range in.Orgs {
		total += o.Machines
	}
	return total
}

// CoalitionMachines returns the number of machines contributed by the
// members of c.
func (in *Instance) CoalitionMachines(c Coalition) int {
	total := 0
	for i, o := range in.Orgs {
		if c.Has(i) {
			total += o.Machines
		}
	}
	return total
}

// Grand returns the grand coalition of all organizations.
func (in *Instance) Grand() Coalition { return Grand(len(in.Orgs)) }

// JobsOf returns the IDs of org's jobs in FIFO order.
func (in *Instance) JobsOf(org int) []int {
	var ids []int
	for _, j := range in.Jobs {
		if j.Org == org {
			ids = append(ids, j.ID)
		}
	}
	return ids
}

// TotalWork returns the sum of job sizes (total processing demand).
func (in *Instance) TotalWork() Time {
	var w Time
	for _, j := range in.Jobs {
		w += j.Size
	}
	return w
}

// MaxRelease returns the latest release time, or 0 for an empty job set.
func (in *Instance) MaxRelease() Time {
	var m Time
	for _, j := range in.Jobs {
		if j.Release > m {
			m = j.Release
		}
	}
	return m
}

// Horizon returns a time by which every job has certainly completed in
// any greedy schedule: max release plus total work.
func (in *Instance) Horizon() Time { return in.MaxRelease() + in.TotalWork() }

// TotalCapacity returns the system's work units per time unit (equal to
// TotalMachines in the identical-machines model).
func (in *Instance) TotalCapacity() int64 {
	var c int64
	for _, o := range in.Orgs {
		c += o.Capacity()
	}
	return c
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{
		Orgs: append([]Org(nil), in.Orgs...),
		Jobs: append([]Job(nil), in.Jobs...),
	}
	for i := range out.Orgs {
		out.Orgs[i].Speeds = append([]int(nil), in.Orgs[i].Speeds...)
	}
	return out
}

// Restrict returns the sub-instance visible to coalition c: only the
// members' organizations keep machines and only their jobs remain. The
// organization indexing is preserved (non-members keep their slots with
// zero machines) so that coalition masks remain comparable across
// sub-instances.
func (in *Instance) Restrict(c Coalition) *Instance {
	out := &Instance{Orgs: append([]Org(nil), in.Orgs...)}
	for i := range out.Orgs {
		if !c.Has(i) {
			out.Orgs[i].Machines = 0
			out.Orgs[i].Speeds = nil
		}
	}
	for _, j := range in.Jobs {
		if c.Has(j.Org) {
			j.ID = len(out.Jobs) // renumber: IDs must equal positions
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}
