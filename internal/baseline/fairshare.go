package baseline

import (
	"math"
	"math/rand"

	"repro/internal/model"
	"repro/internal/sim"
)

// shareRatioPolicy is the common core of the fair-share family: pick the
// waiting organization with the smallest metric/share ratio, where the
// share is the fraction of machines the organization contributes
// (Section 7.1: "we set the target share to the fraction of processors
// contributed by an organization"). Organizations with zero share rank
// last but remain schedulable — greediness must hold.
type shareRatioPolicy struct {
	name   string
	metric func(v *sim.View, org int) float64
	view   *sim.View
}

// Name implements sim.Policy.
func (p *shareRatioPolicy) Name() string { return p.name }

// Attach implements sim.Policy.
func (p *shareRatioPolicy) Attach(v *sim.View, _ *rand.Rand) { p.view = v }

// Select implements sim.Policy.
func (p *shareRatioPolicy) Select(_ model.Time, _ int) int {
	best := -1
	bestRatio := math.Inf(1)
	for org := 0; org < p.view.Orgs(); org++ {
		if p.view.Waiting(org) == 0 {
			continue
		}
		share := p.view.Share(org)
		var ratio float64
		if share == 0 {
			ratio = math.Inf(1)
		} else {
			ratio = p.metric(p.view, org) / share
		}
		if best == -1 || ratio < bestRatio {
			best, bestRatio = org, ratio
		}
	}
	return best
}

// NewFairShare returns the classic fair-share policy (Kay & Lauder): the
// organization with the least consumed CPU time relative to its share
// goes first. Usage is executed unit slots — the only usage notion
// available non-clairvoyantly.
func NewFairShare() sim.Policy {
	return &shareRatioPolicy{
		name:   "FairShare",
		metric: func(v *sim.View, org int) float64 { return float64(v.Usage(org)) },
	}
}

// NewUtFairShare returns the utility-balancing variant: fair share's
// allocation rule applied to the strategy-proof utility ψsp instead of
// consumed CPU time.
func NewUtFairShare() sim.Policy {
	return &shareRatioPolicy{
		name:   "UtFairShare",
		metric: func(v *sim.View, org int) float64 { return float64(v.Psi(org)) },
	}
}

// NewCurrFairShare returns the history-less variant: only the number of
// currently executing jobs counts, kept proportional to the shares.
func NewCurrFairShare() sim.Policy {
	return &shareRatioPolicy{
		name:   "CurrFairShare",
		metric: func(v *sim.View, org int) float64 { return float64(v.Running(org)) },
	}
}
