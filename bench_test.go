// Benchmarks regenerating every table and figure of the paper's
// evaluation section, plus ablations for the design choices called out
// in DESIGN.md.
//
//	go test -bench=Table1 -benchmem        # Table 1 rows (Δψ/p_tot)
//	go test -bench=Table2 -benchmem        # Table 2 rows (longer horizon)
//	go test -bench=Figure10 -benchmem      # Figure 10 series (orgs sweep)
//	go test -bench=Figure7 -benchmem       # Figure 7 utilization pair
//	go test -bench=Figure2 -benchmem       # Figure 2 worked example
//	go test -bench=Ablation -benchmem      # REF parallel/rotate ablations
//
// Each (workload, algorithm) sub-benchmark reports the paper's metric as
// "delay/job" (the average unjustified per-job delay Δψ/p_tot). The
// workloads are scaled-down replicas — see DESIGN.md §3; absolute
// values differ from the paper, the ordering and trends are the
// reproduction target. cmd/paperexp regenerates the full-size tables.
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bargain"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/daemon"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/fed"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/shapley"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/utility"
)

const (
	benchScale    = 0.35 // family scale factor for bench-speed workloads
	benchOrgs     = 5
	benchHorizon1 = model.Time(15000)  // Table 1 horizon (paper: 5·10⁴)
	benchHorizon2 = model.Time(150000) // Table 2 horizon (paper: 5·10⁵), ×10 like the paper
)

// benchKey identifies a memoized instance + REF reference run.
type benchKey struct {
	family  string
	horizon model.Time
	orgs    int
	seed    int64
}

type benchRef struct {
	inst *model.Instance
	ref  *core.Result
}

var benchCache sync.Map

// referenceFor generates (once) the instance for the key and its REF
// reference result.
func referenceFor(b *testing.B, fam gen.Family, horizon model.Time, orgs int, seed int64) benchRef {
	key := benchKey{fam.Name, horizon, orgs, seed}
	if v, ok := benchCache.Load(key); ok {
		return v.(benchRef)
	}
	machines := stats.ZipfSplit(fam.Procs, orgs, 1)
	inst, err := fam.Instance(horizon, orgs, machines, stats.NewRand(seed))
	if err != nil {
		b.Fatal(err)
	}
	ref := core.RefAlgorithm{Opts: core.RefOptions{Parallel: true}}.Run(inst, horizon, seed)
	v := benchRef{inst: inst, ref: ref}
	benchCache.Store(key, v)
	return v
}

// benchUnfairness is the shared body of the table/figure benchmarks:
// every iteration runs the algorithm on a fresh seeded instance and the
// average Δψ/p_tot is reported as delay/job.
func benchUnfairness(b *testing.B, fam gen.Family, horizon model.Time, orgs int, alg core.Algorithm) {
	var sum float64
	for i := 0; i < b.N; i++ {
		r := referenceFor(b, fam, horizon, orgs, int64(1+i%4)) // cycle 4 instances
		res := alg.Run(r.inst, horizon, int64(i))
		sum += metrics.UnfairnessPerUnit(res.Psi, r.ref.Psi, r.ref.Ptot)
	}
	b.ReportMetric(sum/float64(b.N), "delay/job")
}

func benchFamilies() []gen.Family {
	fams := gen.Families()
	for i := range fams {
		fams[i] = fams[i].Scale(benchScale)
	}
	return fams
}

// BenchmarkTable1 regenerates Table 1: Δψ/p_tot per (workload,
// algorithm) at the short horizon.
func BenchmarkTable1(b *testing.B) {
	for _, fam := range benchFamilies() {
		for _, alg := range exp.DefaultAlgorithms(15) {
			b.Run(fmt.Sprintf("%s/%s", fam.Name, alg.Name()), func(b *testing.B) {
				benchUnfairness(b, fam, benchHorizon1, benchOrgs, alg)
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2: the same grid at a 10× longer
// horizon — the paper's observation is that unfairness grows with trace
// length.
func BenchmarkTable2(b *testing.B) {
	for _, fam := range benchFamilies() {
		for _, alg := range exp.DefaultAlgorithms(15) {
			b.Run(fmt.Sprintf("%s/%s", fam.Name, alg.Name()), func(b *testing.B) {
				benchUnfairness(b, fam, benchHorizon2, benchOrgs, alg)
			})
		}
	}
}

// BenchmarkFigure10 regenerates Figure 10: unfairness versus the number
// of organizations on the LPC-EGEE-like family.
func BenchmarkFigure10(b *testing.B) {
	fam := gen.LPCEGEE().Scale(benchScale)
	for k := 2; k <= 6; k++ {
		for _, alg := range exp.DefaultAlgorithms(15) {
			b.Run(fmt.Sprintf("orgs=%d/%s", k, alg.Name()), func(b *testing.B) {
				benchUnfairness(b, fam, benchHorizon1, k, alg)
			})
		}
	}
}

// BenchmarkFigure7 regenerates the greedy-utilization gap: the two
// priority orders of the Figure 7 instance, reporting utilization.
func BenchmarkFigure7(b *testing.B) {
	orders := map[string][]int{"O2first": {1, 0}, "O1first": {0, 1}}
	for name, order := range orders {
		order := order
		b.Run(name, func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				r := exp.Figure7()
				if order[0] == 1 {
					util = r.UtilizationO2First
				} else {
					util = r.UtilizationO1First
				}
			}
			b.ReportMetric(util, "utilization")
		})
	}
}

// BenchmarkFigure2 evaluates the worked utility example (and doubles as
// a ψsp micro-benchmark).
func BenchmarkFigure2(b *testing.B) {
	var psi int64
	for i := 0; i < b.N; i++ {
		r := exp.Figure2()
		psi = r.Psi14
	}
	b.ReportMetric(float64(psi), "psi14")
}

// BenchmarkAblationREF compares the REF driver variants DESIGN.md calls
// out: the indexed event-heap driver vs the legacy full-scan driver,
// serial vs parallel subcoalition advancement, and the faithful Figure 3
// selection vs the Distance-style rotation. heap and scan produce
// identical schedules (see TestHeapDriverMatchesScanDriver); only
// wall-clock time differs.
func BenchmarkAblationREF(b *testing.B) {
	fam := gen.LPCEGEE().Scale(benchScale)
	machines := stats.ZipfSplit(fam.Procs, benchOrgs, 1)
	inst, err := fam.Instance(benchHorizon1, benchOrgs, machines, stats.NewRand(3))
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		opts core.RefOptions
	}{
		{"heap/serial", core.RefOptions{}},
		{"heap/parallel", core.RefOptions{Parallel: true}},
		{"scan/serial", core.RefOptions{Driver: core.DriverScan}},
		{"scan/parallel", core.RefOptions{Driver: core.DriverScan, Parallel: true}},
		{"rotate", core.RefOptions{Rotate: true}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.RefAlgorithm{Opts: v.opts}.Run(inst, benchHorizon1, 0)
			}
		})
	}
}

// BenchmarkAblationREFScaling measures REF's FPT scaling in the number
// of organizations (Proposition 3.4: O(k·3^k) per decision) for both
// drivers. The scan driver's per-event O(2^k) scan-and-advance overtakes
// the dispatch work as k grows; the heap driver only touches the
// clusters whose events fire, so its advantage widens with k (≥2× at
// k = 8 is the DESIGN.md acceptance line).
func BenchmarkAblationREFScaling(b *testing.B) {
	fam := gen.LPCEGEE().Scale(0.2)
	drivers := []core.RefDriver{core.DriverHeap, core.DriverScan}
	for k := 2; k <= 8; k++ {
		for _, d := range drivers {
			k, d := k, d
			b.Run(fmt.Sprintf("orgs=%d/%s", k, d), func(b *testing.B) {
				machines := stats.ZipfSplit(fam.Procs, k, 1)
				inst, err := fam.Instance(5000, k, machines, stats.NewRand(4))
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					core.RefAlgorithm{Opts: core.RefOptions{Driver: d}}.Run(inst, 5000, 0)
				}
			})
		}
	}
}

// BenchmarkAblationRandSamples sweeps RAND's permutation budget (the
// paper evaluates N=15 and N=75): fairness improves and cost grows with
// N.
func BenchmarkAblationRandSamples(b *testing.B) {
	fam := gen.LPCEGEE().Scale(benchScale)
	for _, n := range []int{5, 15, 75} {
		alg := core.RandAlgorithm{Samples: n}
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			benchUnfairness(b, fam, benchHorizon1, benchOrgs, alg)
		})
	}
}

// BenchmarkAblationRandWorkers sweeps RAND's worker-pool size at a
// fixed sample budget. Results are byte-identical across the sweep
// (TestRandWorkerCountInvariance); only wall-clock time changes.
func BenchmarkAblationRandWorkers(b *testing.B) {
	fam := gen.LPCEGEE().Scale(benchScale)
	machines := stats.ZipfSplit(fam.Procs, benchOrgs, 1)
	inst, err := fam.Instance(benchHorizon1, benchOrgs, machines, stats.NewRand(6))
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 0} {
		alg := core.RandAlgorithm{Samples: 75, Opts: core.RandOptions{Workers: w}}
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alg.Run(inst, benchHorizon1, int64(i))
			}
		})
	}
}

// BenchmarkAblationShapley compares the generic Shapley evaluators on a
// 14-player random game: exact, parallel exact, and the two Monte-Carlo
// samplers (plain and position-stratified) at the theorem's sample size.
func BenchmarkAblationShapley(b *testing.B) {
	const n = 14
	rng := stats.NewRand(9)
	g := shapley.NewMapGame(n)
	for mask := 1; mask < 1<<n; mask++ {
		g.Set(model.Coalition(mask), float64(rng.Intn(1000)))
	}
	b.Run("Exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shapley.Exact(g)
		}
	})
	b.Run("ExactParallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			shapley.ExactParallel(g, 0)
		}
	})
	b.Run("Sample", func(b *testing.B) {
		n := shapley.SampleSize(n, 0.1, 0.95)
		r := stats.NewRand(11)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			shapley.Sample(g, n, r)
		}
	})
	b.Run("SampleStratified", func(b *testing.B) {
		// Same permutation budget as Sample: rounds·k ≈ SampleSize.
		rounds := (shapley.SampleSize(n, 0.1, 0.95) + n - 1) / n
		r := stats.NewRand(11)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			shapley.SampleStratified(g, rounds, r)
		}
	})
}

// BenchmarkFederation measures federated multi-cluster scheduling
// end-to-end: the default three-cluster diurnal scenario is generated
// once, then driven through internal/fed under each delegation policy
// — the baselines, the pricing ablations (capacity-normalized and
// time-decayed φ−ψ credit), the federation-level Shapley router FedREF
// and the re-delegating "-migrate" variants (queued jobs re-scored and
// migrated at each gossip refresh) — with two per-cluster algorithm
// rosters (the polynomial DIRECTCONTR everywhere, and exponential REF
// everywhere). Reported metrics: "offload%" (jobs crossing cluster
// boundaries, migrations re-pointed), "value" (the federation-wide
// coalition value Σ_c v_c) and "migrations" (queued-job
// re-delegations).
func BenchmarkFederation(b *testing.B) {
	scen := gen.DefaultFedScenario()
	scen.Base = scen.Base.Scale(0.15)
	const fedHorizon = model.Time(4000)
	w, err := scen.Generate(fedHorizon, stats.NewRand(42))
	if err != nil {
		b.Fatal(err)
	}
	algs := map[string]func() core.StepperAlgorithm{
		"directcontr": func() core.StepperAlgorithm { return core.DirectContrAlgorithm().(core.StepperAlgorithm) },
		"ref":         func() core.StepperAlgorithm { return core.RefAlgorithm{} },
	}
	for _, algName := range []string{"directcontr", "ref"} {
		for _, policy := range []fed.Policy{
			fed.LocalOnly{}, fed.LeastLoaded{}, fed.FairnessAware{},
			fed.FairnessCapacity{}, fed.FairnessDecayed{}, fed.RefPolicy{},
			fed.Migrating{Inner: fed.FairnessAware{}, Budget: fed.DefaultMigrationBudget},
			fed.Migrating{Inner: fed.RefPolicy{}, Budget: fed.DefaultMigrationBudget},
		} {
			policy := policy
			mk := algs[algName]
			b.Run(fmt.Sprintf("%s/%s", algName, policy.Name()), func(b *testing.B) {
				var offload, value, migrations float64
				for i := 0; i < b.N; i++ {
					specs := make([]fed.ClusterSpec, len(w.Machines))
					for c := range specs {
						specs[c] = fed.ClusterSpec{
							Name: fmt.Sprintf("site%d", c), Alg: mk(), Machines: w.Machines[c],
						}
					}
					f, err := fed.New(w.Orgs, specs, policy, 42)
					if err != nil {
						b.Fatal(err)
					}
					// Migration is most interesting in the realistic
					// stale-gossip regime: refreshes every 100 ticks
					// delimit the re-delegation rounds.
					f.SetStaleness(100)
					for c, js := range w.Jobs {
						if err := f.SubmitJobs(c, js); err != nil {
							b.Fatal(err)
						}
					}
					if _, err := f.Step(fedHorizon); err != nil {
						b.Fatal(err)
					}
					l := f.Ledger()
					offload = 100 * l.OffloadedFraction()
					value = float64(l.FederationValue())
					migrations = float64(l.Migrations)
				}
				b.ReportMetric(offload, "offload%")
				b.ReportMetric(value, "value")
				b.ReportMetric(migrations, "migrations")
			})
		}
	}
}

// BenchmarkFederationParallel measures the federation data plane's two
// scale knobs (ISSUE 9):
//
//   - step/members=M/workers=W: end-to-end federated stepping
//     throughput (jobs routed and executed per second) over a
//     members × workers grid. Results are byte-identical at every
//     width (TestFederationWorkerInvariance); only jobs/s moves, and
//     only on multi-core hosts — on a single-core runner the parallel
//     rows measure pure fan-out overhead.
//   - memory/{eager,stream}/horizon=H: ingestion residency at trace
//     length H and 10×H. The eager rows materialize the whole stream
//     in the pending queue before stepping (peak-pending-jobs grows
//     with the trace); the stream rows attach the same stream as a
//     fed.JobSource with a 256-job window (peak-pending-jobs stays
//     flat). peak-heap-MB is sampled alongside for the absolute
//     footprint; member engines keep the full decision history by
//     design, so only the ingestion side is expected to flatten.
//
// The memory rows are sequential and deterministic; CI's benchdiff
// gate holds their allocs/op to the committed BENCH_9.json baseline.
func BenchmarkFederationParallel(b *testing.B) {
	mkPolicy := func() fed.Policy {
		return fed.Migrating{Inner: fed.FairnessAware{}, Budget: fed.DefaultMigrationBudget}
	}
	const stepHorizon = model.Time(3000)
	for _, members := range []int{4, 8, 17} {
		sc := gen.DefaultFedScenario()
		sc.Clusters = members
		sc.Base = sc.Base.Scale(0.12)
		w, err := sc.Generate(stepHorizon, stats.NewRand(42))
		if err != nil {
			b.Fatal(err)
		}
		total := 0
		for _, js := range w.Jobs {
			total += len(js)
		}
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("step/members=%d/workers=%d", members, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					specs := make([]fed.ClusterSpec, len(w.Machines))
					for c := range specs {
						specs[c] = fed.ClusterSpec{
							Name: fmt.Sprintf("site%d", c), Alg: core.RefAlgorithm{}, Machines: w.Machines[c],
						}
					}
					f, err := fed.New(w.Orgs, specs, mkPolicy(), 42)
					if err != nil {
						b.Fatal(err)
					}
					f.SetStaleness(100)
					f.SetWorkers(workers)
					for c, js := range w.Jobs {
						if err := f.SubmitJobs(c, js); err != nil {
							b.Fatal(err)
						}
					}
					if _, err := f.Step(stepHorizon); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
			})
		}
	}

	memScenario := gen.DefaultFedScenario()
	memScenario.Base = memScenario.Base.Scale(0.12)
	for _, mode := range []string{"eager", "stream"} {
		for _, horizon := range []model.Time{6000, 60000} {
			mode, horizon := mode, horizon
			b.Run(fmt.Sprintf("memory/%s/horizon=%d", mode, horizon), func(b *testing.B) {
				// Machines/orgs come from the eager generator; the job
				// stream itself comes from the equivalent streaming
				// source in both modes, so the two rows ingest the
				// identical trace.
				w, err := memScenario.Generate(horizon, stats.NewRand(42))
				if err != nil {
					b.Fatal(err)
				}
				var peakPending, peakHeapMB float64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					runtime.GC()
					b.StartTimer()
					specs := make([]fed.ClusterSpec, len(w.Machines))
					for c := range specs {
						specs[c] = fed.ClusterSpec{
							Name:     fmt.Sprintf("site%d", c),
							Alg:      core.FromPolicy("FairShare", func() sim.Policy { return baseline.NewFairShare() }),
							Machines: w.Machines[c],
						}
					}
					f, err := fed.New(w.Orgs, specs, fed.LocalOnly{}, 42)
					if err != nil {
						b.Fatal(err)
					}
					src, err := memScenario.Source(horizon, 42)
					if err != nil {
						b.Fatal(err)
					}
					if mode == "eager" {
						for {
							j, ok, err := src.Next()
							if err != nil {
								b.Fatal(err)
							}
							if !ok {
								break
							}
							if _, err := f.Submit(j.Cluster, j.Org, j.Size, j.Release); err != nil {
								b.Fatal(err)
							}
						}
					} else if err := f.SetSource(src, 256); err != nil {
						b.Fatal(err)
					}
					peakPending, peakHeapMB = 0, 0
					var ms runtime.MemStats
					sample := func() {
						if n := float64(f.PendingCount()); n > peakPending {
							peakPending = n
						}
						runtime.ReadMemStats(&ms)
						if mb := float64(ms.HeapAlloc) / (1 << 20); mb > peakHeapMB {
							peakHeapMB = mb
						}
					}
					sample()
					const chunks = 16
					for s := 1; s <= chunks; s++ {
						if _, err := f.Step(horizon * model.Time(s) / chunks); err != nil {
							b.Fatal(err)
						}
						sample()
					}
				}
				b.ReportMetric(peakPending, "peak-pending-jobs")
				b.ReportMetric(peakHeapMB, "peak-heap-MB")
			})
		}
	}
}

// BenchmarkServingTier drives the daemon's sharded async serving tier
// at the north-star scale: the load harness holds the configured number
// of concurrent federated sessions open in one Manager and advances all
// of them through the pipeline (internal/daemon.RunLoad, the same
// harness behind cmd/loadgen). Reported metrics: sustained advance
// throughput and the p50/p95/p99 advance latency a serving client sees
// (enqueue to result, queueing included). The 10000-session row is the
// ISSUE 6 acceptance scale.
func BenchmarkServingTier(b *testing.B) {
	for _, sessions := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			var rep daemon.LoadReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = daemon.RunLoad(daemon.LoadConfig{Sessions: sessions, Clients: 64})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.ThroughputPerSec, "advances/s")
			b.ReportMetric(rep.P50Ms, "p50ms")
			b.ReportMetric(rep.P95Ms, "p95ms")
			b.ReportMetric(rep.P99Ms, "p99ms")
		})
	}
}

// BenchmarkSimulator measures raw engine throughput (job starts per
// second) for each per-decision policy on a fixed loaded workload.
func BenchmarkSimulator(b *testing.B) {
	fam := gen.RICC().Scale(0.2)
	machines := stats.ZipfSplit(fam.Procs, benchOrgs, 1)
	inst, err := fam.Instance(20000, benchOrgs, machines, stats.NewRand(5))
	if err != nil {
		b.Fatal(err)
	}
	policies := []struct {
		name string
		mk   func() sim.Policy
	}{
		{"FCFS", func() sim.Policy { return baseline.NewFCFS() }},
		{"RoundRobin", func() sim.Policy { return baseline.NewRoundRobin() }},
		{"FairShare", func() sim.Policy { return baseline.NewFairShare() }},
		{"UtFairShare", func() sim.Policy { return baseline.NewUtFairShare() }},
		{"CurrFairShare", func() sim.Policy { return baseline.NewCurrFairShare() }},
		{"DirectContr", func() sim.Policy { return core.NewDirectContr() }},
	}
	for _, p := range policies {
		p := p
		b.Run(p.name, func(b *testing.B) {
			var starts int
			for i := 0; i < b.N; i++ {
				c := sim.New(inst, inst.Grand(), p.mk(), stats.NewRand(1))
				c.Run(20000)
				starts = len(c.Starts())
			}
			b.ReportMetric(float64(starts), "jobs")
		})
	}
}

// hotPathInstance builds the steady-state workload of the hot-path
// set: k organizations, each with enough machines for its own jobs, so
// every subcoalition schedule starts everything at release and the
// remaining event stream is pure completions — the regime the zero-
// alloc stepping budget (internal/core's AllocsPerRun tests) covers.
func hotPathInstance(b *testing.B, k, jobsPerOrg int) *model.Instance {
	orgs := make([]model.Org, k)
	for i := range orgs {
		orgs[i] = model.Org{Name: fmt.Sprintf("org%d", i), Machines: jobsPerOrg}
	}
	jobs := make([]model.Job, 0, k*jobsPerOrg)
	for o := 0; o < k; o++ {
		for j := 0; j < jobsPerOrg; j++ {
			jobs = append(jobs, model.Job{Org: o, Release: 0, Size: model.Time(5 + 4*j + o)})
		}
	}
	inst, err := model.NewInstance(orgs, jobs)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// hotPathStep measures steady-state StepNext throughput for one
// stepper: prime past the release-instant dispatches, then step one
// completion event per iteration, re-priming (off the clock) when the
// run drains. These are the benchmarks the CI regression gate
// (cmd/benchdiff) holds to a ns/op threshold and an allocs/op ceiling
// — steady-state stepping is zero-alloc by budget.
func hotPathStep(b *testing.B, alg core.StepperAlgorithm, inst *model.Instance) {
	const horizon = model.Time(1 << 30)
	var s core.Stepper
	prime := func() {
		s = alg.NewStepper(inst, 1)
		for s.StepNext(0) {
		}
	}
	prime()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.StepNext(horizon) {
			b.StopTimer()
			prime()
			b.StartTimer()
		}
	}
}

// BenchmarkHotPath is the named hot-path set of the bench-regression
// gate: steady-state stepping for each stepper family, the incremental
// withdraw/reinject path, and the engine's per-advance overhead.
// Run with -benchmem; cmd/benchdiff diffs these rows across successive
// BENCH_N.json artifacts.
func BenchmarkHotPath(b *testing.B) {
	b.Run("ref-step", func(b *testing.B) {
		hotPathStep(b, core.RefAlgorithm{}, hotPathInstance(b, 4, 3))
	})
	b.Run("rand-step", func(b *testing.B) {
		hotPathStep(b, core.RandAlgorithm{Samples: 15, Opts: core.RandOptions{Workers: 1}}, hotPathInstance(b, 4, 3))
	})
	b.Run("policy-step", func(b *testing.B) {
		hotPathStep(b, core.FromPolicy("FCFS", func() sim.Policy { return baseline.NewFCFS() }), hotPathInstance(b, 4, 3))
	})

	// The incremental Withdraw path: one withdraw + reinject cycle of a
	// queued job per iteration. Six organizations mean 63 subcoalition
	// schedules, 32 of which contain the owner — each cycle re-keys
	// those masks with in-place heap sifts (the old implementation
	// rebuilt the whole heap from all 63 keys twice per cycle).
	b.Run("ref-withdraw", func(b *testing.B) {
		orgs := make([]model.Org, 6)
		for i := range orgs {
			orgs[i] = model.Org{Name: fmt.Sprintf("org%d", i), Machines: 1}
		}
		jobs := make([]model.Job, 0, 6*6)
		for o := 0; o < 6; o++ {
			for j := 0; j < 6; j++ {
				jobs = append(jobs, model.Job{Org: o, Release: 0, Size: model.Time(40 + j)})
			}
		}
		inst, err := model.NewInstance(orgs, jobs)
		if err != nil {
			b.Fatal(err)
		}
		s := core.RefAlgorithm{}.NewStepper(inst, 1)
		for s.StepNext(0) { // dispatch the release instant; queues stay deep
		}
		id := inst.Jobs[len(inst.Jobs)-1].ID // last job: queued everywhere
		reinject := []int{id}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Withdraw(id); err != nil {
				b.Fatal(err)
			}
			if err := s.Inject(reinject); err != nil {
				b.Fatal(err)
			}
		}
	})

	// The serving tier's per-advance engine overhead: a Step to the
	// next completion through the engine (decision-log bookkeeping and
	// the zero-copy starts return included).
	b.Run("engine-step", func(b *testing.B) {
		var e *engine.Engine
		prime := func() {
			e = engine.New(core.RefAlgorithm{}, hotPathInstance(b, 4, 3), 1)
			if _, err := e.Step(1); err != nil {
				b.Fatal(err)
			}
		}
		prime()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, stepped, err := e.StepToNextEvent()
			if err != nil {
				b.Fatal(err)
			}
			if !stepped {
				b.StopTimer()
				prime()
				b.StartTimer()
			}
		}
	})
}

// BenchmarkNBS measures the Nash-bargaining allocator: the bare
// water-filling solver (SolveInto on a reusable scratch is the
// per-dispatch-instant cost the NBS stepper pays on top of REF-style
// simulation), and steady-state NBS stepping under the same hot-path
// protocol as the BenchmarkHotPath rows. The nbs-step row is gated by
// cmd/benchdiff against the committed BENCH_10.json baseline; the
// solver rows record the k-scaling trajectory.
func BenchmarkNBS(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("solve/k=%d", k), func(b *testing.B) {
			w := make([]float64, k)
			d := make([]float64, k)
			maxs := make([]float64, k)
			x := make([]float64, k)
			var capacity float64
			for i := 0; i < k; i++ {
				w[i] = float64(1 + i%5)
				d[i] = float64(i % 7)
				// Half the agents cap out below their proportional
				// share, so the water-filling loop runs several
				// pinning passes instead of returning after one.
				maxs[i] = d[i] + float64(2+i%3)
				capacity += d[i] + 1.5
			}
			var s bargain.Solver
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.SolveInto(x, w, d, maxs, capacity); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("nbs-step", func(b *testing.B) {
		hotPathStep(b, core.NbsAlgorithm{}, hotPathInstance(b, 4, 3))
	})
}

// BenchmarkControlPlane measures the admission control plane's cost:
// a fixed overload stream (two organizations, 2× one machine's service
// rate) is fed through a policy-scheduled engine with the gate off,
// with AlwaysAdmit (the pure event-decomposition overhead — Arrival →
// Admission → Routing per job), and with the shedding policies; plus
// the federated plane over the diurnal scenario. The "engine/off" row
// is the PR 7 hot-path contract's control: with the plane off, Feed
// and Step take the legacy zero-allocation branches untouched.
func BenchmarkControlPlane(b *testing.B) {
	gateOrgs := []model.Org{{Name: "A", Machines: 1}, {Name: "B", Machines: 0}}
	var gateJobs []model.Job
	for i := 0; i < 40; i++ {
		gateJobs = append(gateJobs, model.Job{Org: i % 2, Size: 4, Release: model.Time(2 * i)})
	}
	engineRun := func(b *testing.B, spec *ctrl.PolicySpec) {
		var admitted float64
		for i := 0; i < b.N; i++ {
			inst, err := model.NewInstance(gateOrgs, nil)
			if err != nil {
				b.Fatal(err)
			}
			e := engine.New(core.FromPolicy("FCFS", func() sim.Policy { return baseline.NewFCFS() }), inst, 1)
			if err := e.SetAdmission(spec); err != nil {
				b.Fatal(err)
			}
			if _, err := e.Feed(gateJobs); err != nil {
				b.Fatal(err)
			}
			if _, err := e.Step(400); err != nil {
				b.Fatal(err)
			}
			if st := e.AdmissionStats(); st != nil {
				admitted = float64(st.TotalAdmitted())
			} else {
				admitted = float64(len(e.Decisions()))
			}
		}
		b.ReportMetric(admitted, "admitted")
	}
	b.Run("engine/off", func(b *testing.B) { engineRun(b, nil) })
	b.Run("engine/always", func(b *testing.B) {
		engineRun(b, &ctrl.PolicySpec{Policy: "always"})
	})
	b.Run("engine/tokenbucket", func(b *testing.B) {
		engineRun(b, &ctrl.PolicySpec{Policy: "tokenbucket", Rate: 1, Period: 8, Burst: 1, MaxAttempts: 2})
	})
	b.Run("engine/backpressure-stale", func(b *testing.B) {
		engineRun(b, &ctrl.PolicySpec{Policy: "backpressure", MaxWaiting: 2, RetryAfter: 3, MaxAttempts: 4, Staleness: 20})
	})

	scen := gen.DefaultFedScenario()
	scen.Base = scen.Base.Scale(0.1)
	const fedHorizon = model.Time(3000)
	w, err := scen.Generate(fedHorizon, stats.NewRand(42))
	if err != nil {
		b.Fatal(err)
	}
	fedRun := func(b *testing.B, spec *ctrl.PolicySpec) {
		var admitted float64
		for i := 0; i < b.N; i++ {
			specs := make([]fed.ClusterSpec, len(w.Machines))
			for c := range specs {
				specs[c] = fed.ClusterSpec{
					Name: fmt.Sprintf("site%d", c),
					Alg:  core.DirectContrAlgorithm().(core.StepperAlgorithm), Machines: w.Machines[c],
				}
			}
			f, err := fed.New(w.Orgs, specs, fed.LeastLoaded{}, 42)
			if err != nil {
				b.Fatal(err)
			}
			f.SetStaleness(100)
			if err := f.SetAdmission(spec); err != nil {
				b.Fatal(err)
			}
			for c, js := range w.Jobs {
				if err := f.SubmitJobs(c, js); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := f.Step(fedHorizon); err != nil {
				b.Fatal(err)
			}
			if st := f.AdmissionStats(); st != nil {
				admitted = float64(st.TotalAdmitted())
			} else {
				admitted = float64(f.Submitted())
			}
		}
		b.ReportMetric(admitted, "admitted")
	}
	b.Run("fed/off", func(b *testing.B) { fedRun(b, nil) })
	b.Run("fed/always", func(b *testing.B) { fedRun(b, &ctrl.PolicySpec{Policy: "always"}) })
	b.Run("fed/tokenbucket", func(b *testing.B) {
		fedRun(b, &ctrl.PolicySpec{Policy: "tokenbucket", Rate: 1, Period: 12, Burst: 2, MaxAttempts: 3})
	})
}

// BenchmarkUtilityPsi is the ψsp closed-form micro-benchmark.
func BenchmarkUtilityPsi(b *testing.B) {
	execs := make([]utility.Execution, 1000)
	for i := range execs {
		execs[i] = utility.Execution{Start: model.Time(i), Size: model.Time(1 + i%17)}
	}
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += utility.Psi(execs, 5000)
	}
	_ = sink
}
