package engine

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/model"
)

// The withdrawal acceptance criterion: for every algorithm, withdrawing
// a queued job mid-run leaves the engine in a state that (a) snapshots
// byte-identically across a restore — the withdrawn tombstone is part
// of the deterministic state — and (b) replays the identical future
// schedule whether or not the run was interrupted at the withdrawal
// point. The withdrawn job must never start, and Waiting must not count
// it.
func TestWithdrawCheckpointDeterminism(t *testing.T) {
	for _, alg := range steppers() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			exercised := false
			for seed := int64(0); seed < 6; seed++ {
				r := rand.New(rand.NewSource(4200 + seed))
				inst := testInstance(r, 2+r.Intn(3))
				horizon := inst.Horizon() + 2
				// testInstance releases everything by t=12 and Horizon()
				// is a drain bound, so pause early enough that some jobs
				// are still queued or pending.
				mid := model.Time(4)

				// notStarted picks the lowest fed job with no decision yet.
				notStarted := func(e *Engine) int {
					started := make(map[int]bool)
					for _, s := range e.Decisions() {
						started[s.Job] = true
					}
					for id := range e.Instance().Jobs {
						if !started[id] {
							return id
						}
					}
					return -1
				}

				straight := New(alg, inst.Clone(), seed)
				if _, err := straight.Step(mid); err != nil {
					t.Fatal(err)
				}
				id := notStarted(straight)
				if id < 0 {
					continue // everything already started by mid — try another seed
				}
				exercised = true
				waitingBefore := straight.Waiting()
				if err := straight.Withdraw(id); err != nil {
					t.Fatalf("seed %d: withdraw job %d: %v", seed, id, err)
				}
				if got := straight.Waiting(); got != waitingBefore-1 {
					t.Fatalf("seed %d: waiting %d after withdraw, want %d", seed, got, waitingBefore-1)
				}
				if straight.Withdrawn() != 1 {
					t.Fatalf("seed %d: withdrawn count %d, want 1", seed, straight.Withdrawn())
				}
				if err := straight.Withdraw(id); err == nil {
					t.Fatalf("seed %d: double withdraw accepted", seed)
				}
				if err := straight.Withdraw(len(inst.Jobs) + 5); err == nil {
					t.Fatalf("seed %d: unknown job withdrawn", seed)
				}
				if started := straight.Decisions(); len(started) > 0 {
					if err := straight.Withdraw(started[0].Job); err == nil {
						t.Fatalf("seed %d: started job withdrawn", seed)
					}
				}

				// Interrupted twin: same prefix, withdraw, snapshot,
				// restore, and the snapshot of the restored engine must be
				// byte-identical — the tombstone survives serialization.
				paused := New(alg, inst.Clone(), seed)
				if _, err := paused.Step(mid); err != nil {
					t.Fatal(err)
				}
				if err := paused.Withdraw(id); err != nil {
					t.Fatal(err)
				}
				snap, err := paused.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				resumed, err := Restore(alg, snap)
				if err != nil {
					t.Fatalf("seed %d: restore after withdraw: %v", seed, err)
				}
				if resumed.Withdrawn() != 1 {
					t.Fatalf("seed %d: restored withdrawn count %d, want 1", seed, resumed.Withdrawn())
				}
				resnap, err := resumed.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(snap, resnap) {
					t.Fatalf("seed %d: snapshot not byte-identical across restore after withdraw", seed)
				}

				if _, err := straight.Step(horizon); err != nil {
					t.Fatal(err)
				}
				if _, err := resumed.Step(horizon); err != nil {
					t.Fatal(err)
				}
				assertSameRun(t, "resumed-after-withdraw vs uninterrupted",
					straight.Result(), resumed.Result(), straight.Decisions(), resumed.Decisions())
				for _, s := range straight.Decisions() {
					if s.Job == id {
						t.Fatalf("seed %d: withdrawn job %d started at %d", seed, id, s.At)
					}
				}
			}
			if !exercised {
				t.Fatal("no seed left a queued job at mid-run — fixture too small")
			}
		})
	}
}
