package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/utility"
)

// The paper's Figure 3 claim: for ψsp, the general Distance rule of
// Figure 1 reduces to argmax(φ−ψ). The two implementations must
// produce identical schedules.
func TestGeneralRefMatchesRefForPsiSP(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(60 + seed))
		k := 2 + r.Intn(3)
		in := randCoreInstance(r, k, false)
		horizon := in.Horizon() + 1
		a := RefAlgorithm{}.Run(in, horizon, 0)
		b := GeneralRefAlgorithm{Util: utility.SP{}}.Run(in, horizon, 0)
		if len(a.Starts) != len(b.Starts) {
			t.Fatalf("seed %d: start counts %d vs %d", seed, len(a.Starts), len(b.Starts))
		}
		for i := range a.Starts {
			if a.Starts[i] != b.Starts[i] {
				t.Fatalf("seed %d: schedules diverge at start %d: %+v vs %+v",
					seed, i, a.Starts[i], b.Starts[i])
			}
		}
		for u := range a.Psi {
			if a.Psi[u] != b.Psi[u] {
				t.Fatalf("seed %d: ψ[%d] = %d vs %d", seed, u, a.Psi[u], b.Psi[u])
			}
		}
	}
}

// With the Starts utility, Δψ = 1 at every start, so Figure 1's
// Distance procedure is non-degenerate: within a single instant the
// machines spread across organizations instead of draining one queue.
func TestGeneralRefStartsUtilitySpreads(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1}, {Name: "B", Machines: 1}},
		[]model.Job{
			{Org: 0, Release: 0, Size: 4},
			{Org: 0, Release: 0, Size: 4},
			{Org: 1, Release: 0, Size: 4},
			{Org: 1, Release: 0, Size: 4},
		},
	)
	res := GeneralRefAlgorithm{Util: utility.Starts{}}.Run(in, 8, 0)
	// At t=0 both machines are free; the Distance rule must give one to
	// each organization (draining A's queue would unbalance ψ vs φ).
	first := map[int]int{}
	for _, s := range res.Starts {
		if s.At == 0 {
			first[s.Org]++
		}
	}
	if first[0] != 1 || first[1] != 1 {
		t.Fatalf("t=0 starts per org = %v, want one each", first)
	}
	// Utilities are start counts: 2 each at the horizon.
	if res.Psi[0] != 2 || res.Psi[1] != 2 {
		t.Fatalf("starts-utility ψ = %v", res.Psi)
	}
}

// Efficiency holds for any utility: Σφ = v(grand).
func TestGeneralRefEfficiency(t *testing.T) {
	for _, util := range []utility.Func{utility.SP{}, utility.Starts{}, utility.CompletedWork{}} {
		r := rand.New(rand.NewSource(77))
		in := randCoreInstance(r, 3, false)
		res := GeneralRefAlgorithm{Util: util}.Run(in, in.Horizon()+1, 0)
		var sum float64
		for _, p := range res.Phi {
			sum += p
		}
		if math.Abs(sum-float64(res.Value)) > 1e-6*math.Max(1, math.Abs(float64(res.Value))) {
			t.Errorf("%s: Σφ = %v, value = %d", util.Name(), sum, res.Value)
		}
	}
}

// The Result of a GeneralRef run reports the configured utility, not
// ψsp: with CompletedWork, Σψ at a generous horizon equals total work.
func TestGeneralRefReportsConfiguredUtility(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	in := randCoreInstance(r, 2, false)
	res := GeneralRefAlgorithm{Util: utility.CompletedWork{}}.Run(in, in.Horizon()+1, 0)
	var sum int64
	for _, p := range res.Psi {
		sum += p
	}
	if sum != int64(in.TotalWork()) {
		t.Fatalf("completed-work Σψ = %d, want %d", sum, in.TotalWork())
	}
}

func TestUtilityFuncs(t *testing.T) {
	execs := []utility.Execution{{Start: 0, Size: 3}, {Start: 5, Size: 2}}
	if got := (utility.SP{}).Eval(execs, 6); got != utility.Psi(execs, 6) {
		t.Errorf("SP.Eval = %d", got)
	}
	if got := (utility.Starts{}).Eval(execs, 6); got != 2 {
		t.Errorf("Starts.Eval = %d", got)
	}
	if got := (utility.Starts{}).Eval(execs, 3); got != 1 {
		t.Errorf("Starts.Eval(3) = %d", got)
	}
	if got := (utility.CompletedWork{}).Eval(execs, 6); got != 3+1 {
		t.Errorf("CompletedWork.Eval = %d", got)
	}
	for _, f := range []utility.Func{utility.SP{}, utility.Starts{}, utility.CompletedWork{}} {
		if f.Name() == "" {
			t.Error("unnamed utility")
		}
	}
}
