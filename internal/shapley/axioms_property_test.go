package shapley

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

// evaluators lists every Shapley evaluator under the axiom property
// tests. The samplers get enough budget that the axioms that hold
// per-permutation (efficiency, dummy) are exact regardless, and the
// expectation-only ones are tested on games where they hold exactly.
func evaluators() []struct {
	name  string
	exact bool // satisfies all axioms exactly, not only in expectation
	eval  func(g Game, seed int64) []float64
} {
	return []struct {
		name  string
		exact bool
		eval  func(g Game, seed int64) []float64
	}{
		{"Exact", true, func(g Game, _ int64) []float64 { return Exact(g) }},
		{"ExactParallel", true, func(g Game, _ int64) []float64 { return ExactParallel(g, 4) }},
		{"SampleStratified", false, func(g Game, seed int64) []float64 {
			return SampleStratified(g, 40, stats.NewRand(seed))
		}},
	}
}

// Efficiency: Σφᵢ = v(N). For the stratified sampler this holds exactly
// (not just in expectation) because every permutation's marginal vector
// telescopes to v(N).
func TestAxiomEfficiencyAllEvaluators(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(600 + seed))
		n := 3 + r.Intn(5)
		g := randomGame(r, n)
		grand := g.Value(model.Grand(n))
		for _, e := range evaluators() {
			phi := e.eval(g, seed)
			var sum float64
			for _, p := range phi {
				sum += p
			}
			if math.Abs(sum-grand) > 1e-9*math.Max(1, math.Abs(grand)) {
				t.Errorf("seed %d %s: Σφ = %v, v(N) = %v", seed, e.name, sum, grand)
			}
		}
	}
}

// Symmetry: players with identical marginal contributions get identical
// values. Players i and j are made symmetric by forcing
// v(S∪{i}) = v(S∪{j}) for every S containing neither. The sampler is
// only symmetric in expectation, so it is checked on games where every
// permutation treats the pair identically — i.e. with a loose tolerance
// tied to its convergence, on the exact evaluators with 1e-9.
func TestAxiomSymmetry(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(700 + seed))
		n := 4 + r.Intn(4)
		g := randomGame(r, n)
		i, j := 0, 1+r.Intn(n-1)
		rest := model.Grand(n).Without(i).Without(j)
		rest.EachSubset(func(s model.Coalition) {
			g.Set(s.With(j), g.Value(s.With(i)))
		})
		for _, e := range evaluators() {
			if !e.exact {
				continue
			}
			phi := e.eval(g, seed)
			if math.Abs(phi[i]-phi[j]) > 1e-9 {
				t.Errorf("seed %d %s: symmetric players differ: φ[%d]=%v φ[%d]=%v", seed, e.name, i, phi[i], j, phi[j])
			}
		}
	}
}

// Dummy player: if v(S∪{d}) = v(S) + c for every S, then φ_d = c. The
// marginal of d is c in every permutation, so this is exact for the
// sampler too.
func TestAxiomDummyPlayerAllEvaluators(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(800 + seed))
		n := 3 + r.Intn(5)
		d := r.Intn(n)
		c := math.Floor(r.Float64() * 50)
		g := randomGame(r, n)
		rest := model.Grand(n).Without(d)
		rest.EachSubset(func(s model.Coalition) {
			g.Set(s.With(d), g.Value(s)+c)
		})
		for _, e := range evaluators() {
			phi := e.eval(g, seed)
			if math.Abs(phi[d]-c) > 1e-9 {
				t.Errorf("seed %d %s: dummy φ[%d] = %v, want %v", seed, e.name, d, phi[d], c)
			}
		}
	}
}

// On additive games every permutation yields the same marginal vector,
// so a single stratified round already equals the exact value.
func TestStratifiedExactOnAdditiveGames(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n := 6
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Floor(r.Float64() * 100)
	}
	g := FuncGame{N: n, F: func(c model.Coalition) float64 {
		var sum float64
		c.EachMember(func(u int) { sum += w[u] })
		return sum
	}}
	phi := SampleStratified(g, 1, stats.NewRand(1))
	for u := 0; u < n; u++ {
		if !almostEqual(phi[u], w[u]) {
			t.Errorf("additive game: φ[%d] = %v, want %v", u, phi[u], w[u])
		}
	}
}

// The stratified estimator is consistent: with a large budget it
// converges to the exact value on random games.
func TestStratifiedConverges(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := randomGame(r, 5)
	want := Exact(g)
	got := SampleStratified(g, 4000, stats.NewRand(2))
	for u := range want {
		if math.Abs(got[u]-want[u]) > 2 {
			t.Errorf("φ[%d] = %v, exact %v", u, got[u], want[u])
		}
	}
}

// At an equal permutation budget the stratified sampler must not be
// noticeably worse than plain sampling, and on games whose marginals
// depend only on coalition size — the stratification variable — it is
// exact after one full round of rotations.
func TestStratifiedExactOnSizeGames(t *testing.T) {
	n := 7
	g := FuncGame{N: n, F: func(c model.Coalition) float64 {
		s := float64(c.Size())
		return s * s
	}}
	want := Exact(g)
	got := SampleStratified(g, 1, stats.NewRand(5))
	for u := 0; u < n; u++ {
		if !almostEqual(got[u], want[u]) {
			t.Errorf("size game: φ[%d] = %v, want %v", u, got[u], want[u])
		}
	}
}

// Determinism: a fixed rng seed reproduces the stratified estimate
// bit for bit.
func TestStratifiedDeterministicPerSeed(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	g := randomGame(r, 6)
	a := SampleStratified(g, 25, stats.NewRand(21))
	b := SampleStratified(g, 25, stats.NewRand(21))
	for u := range a {
		if math.Float64bits(a[u]) != math.Float64bits(b[u]) {
			t.Fatalf("φ[%d] differs across identically seeded runs", u)
		}
	}
}
