package sim

import (
	"math/rand"

	"repro/internal/model"
)

// Policy decides, at each scheduling opportunity, which organization's
// head job a free machine should take. Policies see the cluster only
// through a View, which deliberately hides job sizes: the model is
// non-clairvoyant (Section 2 of the paper).
//
// The engine calls Select only when at least one organization has a
// waiting job; the returned organization must have one (the engine
// panics otherwise — it is a programming error, not a runtime
// condition).
type Policy interface {
	Name() string
	// Attach is called once, before any event, handing the policy its
	// read-only view of the cluster and a deterministic random source.
	Attach(view *View, rng *rand.Rand)
	// Select returns the organization whose head job starts now on the
	// given machine.
	Select(t model.Time, machine int) int
}

// MachineOrderer is an optional Policy extension: before the dispatch
// loop consumes the free machines (sorted ascending), the policy may
// reorder them in place. DIRECTCONTR uses this to visit processors in
// random order, per Figure 9 of the paper.
type MachineOrderer interface {
	OrderMachines(t model.Time, free []int)
}

// StartObserver is an optional Policy extension notified after every job
// start.
type StartObserver interface {
	OnStart(t model.Time, job model.Job, machine int)
}

// EventObserver is an optional Policy extension notified at every event
// instant after accounting has been advanced and before dispatch.
type EventObserver interface {
	OnEvent(t model.Time)
}

// StatefulPolicy is an optional Policy extension for policies carrying
// mutable decision state that must survive checkpoint/restore (e.g.
// RoundRobin's rotation cursor). Stateless policies — and policies
// whose state is derived from the cluster or driver at every decision —
// need not implement it.
type StatefulPolicy interface {
	// CapturePolicyState serializes the policy's mutable state.
	CapturePolicyState() ([]byte, error)
	// RestorePolicyState resumes from a capture.
	RestorePolicyState(data []byte) error
}

// SelectFunc adapts a plain function (plus a name) to the Policy
// interface; handy for tests and simple priority rules.
type SelectFunc struct {
	PolicyName string
	F          func(v *View, t model.Time, machine int) int

	view *View
}

// Name implements Policy.
func (p *SelectFunc) Name() string { return p.PolicyName }

// Attach implements Policy.
func (p *SelectFunc) Attach(view *View, _ *rand.Rand) { p.view = view }

// Select implements Policy.
func (p *SelectFunc) Select(t model.Time, machine int) int { return p.F(p.view, t, machine) }

// View is the read-only window a Policy gets onto a Cluster. All queries
// are evaluated at the cluster's current time.
type View struct{ c *Cluster }

// Now returns the cluster's current time.
func (v *View) Now() model.Time { return v.c.now }

// Orgs returns the number of organizations in the instance (including
// coalition non-members, which always show empty queues and no
// machines).
func (v *View) Orgs() int { return len(v.c.inst.Orgs) }

// Coalition returns the coalition this cluster simulates.
func (v *View) Coalition() model.Coalition { return v.c.coal }

// Machines returns the number of machines in the coalition pool.
func (v *View) Machines() int { return len(v.c.owners) }

// MachineOwner returns the organization owning machine m.
func (v *View) MachineOwner(m int) int { return v.c.owners[m] }

// Waiting returns the number of released, not yet started jobs of org.
func (v *View) Waiting(org int) int { return len(v.c.queues[org]) - v.c.qHead[org] }

// TotalWaiting returns the number of waiting jobs across organizations.
func (v *View) TotalWaiting() int { return v.c.totalWaiting }

// Head returns the ID and release time of org's next job in FIFO order.
// The job's size is deliberately not exposed (non-clairvoyance).
func (v *View) Head(org int) (id int, release model.Time, ok bool) {
	if v.Waiting(org) == 0 {
		return 0, 0, false
	}
	j := v.c.inst.Jobs[v.c.queues[org][v.c.qHead[org]]]
	return j.ID, j.Release, true
}

// Psi returns org's strategy-proof utility ψsp at the current time.
func (v *View) Psi(org int) int64 {
	v.c.Flush()
	return v.c.orgAcct[org].PsiAt(v.c.now)
}

// Usage returns the number of unit slots executed so far by org's jobs —
// the consumed-CPU-time notion of usage that fair-share policies meter.
func (v *View) Usage(org int) int64 {
	v.c.Flush()
	return v.c.orgAcct[org].U
}

// OwnerPsi returns the ψsp-style value of the unit slots executed on
// org's machines (by anyone's jobs) — DIRECTCONTR's direct contribution
// estimate.
func (v *View) OwnerPsi(org int) int64 {
	v.c.Flush()
	return v.c.ownAcct[org].PsiAt(v.c.now)
}

// OwnerUsage returns the unit slots executed on org's machines.
func (v *View) OwnerUsage(org int) int64 {
	v.c.Flush()
	return v.c.ownAcct[org].U
}

// Running returns how many of org's jobs are currently executing.
func (v *View) Running(org int) int { return v.c.runningPerOrg[org] }

// Share returns org's fraction of the coalition's work capacity — the
// target share used by the fair-share family (0 when the pool is
// empty). With identical machines this is the fraction of processors
// contributed, exactly as in Section 7.1; with related machines it is
// speed-weighted.
func (v *View) Share(org int) float64 {
	if v.c.capacity == 0 {
		return 0
	}
	return float64(v.c.capacityPerOrg[org]) / float64(v.c.capacity)
}

// MachineSpeed returns machine m's speed (1 on identical machines).
func (v *View) MachineSpeed(m int) int { return v.c.speeds[m] }
