package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/shapley"
	"repro/internal/stats"
)

// diffInstance builds a randomized instance exercising the driver edge
// cases: same-instant release bursts, heterogeneous machine speeds
// (remainder slots are where a stale value polynomial would first go
// wrong), idle stretches and organizations with no machines or no jobs.
func diffInstance(r *rand.Rand, k int) *model.Instance {
	orgs := make([]model.Org, k)
	for i := range orgs {
		m := r.Intn(3) // 0 machines is a legal, interesting degenerate
		o := model.Org{Name: string(rune('A' + i)), Machines: m}
		if m > 0 && r.Intn(2) == 0 {
			o.Speeds = make([]int, m)
			for s := range o.Speeds {
				o.Speeds[s] = 1 + r.Intn(3)
			}
		}
		orgs[i] = o
	}
	if orgs[0].Machines == 0 {
		orgs[0].Machines = 1 // keep the instance schedulable
		orgs[0].Speeds = nil
	}
	n := 4 + r.Intn(16)
	jobs := make([]model.Job, n)
	for i := range jobs {
		release := model.Time(r.Intn(12))
		if r.Intn(3) == 0 {
			release = model.Time(5) // cluster several releases on one instant
		}
		jobs[i] = model.Job{
			Org:     r.Intn(k),
			Release: release,
			Size:    model.Time(1 + r.Intn(7)),
		}
	}
	return model.MustNewInstance(orgs, jobs)
}

func assertSameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Starts) != len(b.Starts) {
		t.Fatalf("%s: start counts differ: %d vs %d", label, len(a.Starts), len(b.Starts))
	}
	for i := range a.Starts {
		if a.Starts[i] != b.Starts[i] {
			t.Fatalf("%s: start %d differs: %+v vs %+v", label, i, a.Starts[i], b.Starts[i])
		}
	}
	for u := range a.Psi {
		if a.Psi[u] != b.Psi[u] {
			t.Fatalf("%s: ψ[%d] differs: %d vs %d", label, u, a.Psi[u], b.Psi[u])
		}
	}
	if a.Value != b.Value || a.Ptot != b.Ptot {
		t.Fatalf("%s: value/ptot differ: (%d,%d) vs (%d,%d)", label, a.Value, a.Ptot, b.Value, b.Ptot)
	}
	for u := range a.Phi {
		if math.Abs(a.Phi[u]-b.Phi[u]) > 1e-9 {
			t.Fatalf("%s: φ[%d] differs: %v vs %v", label, u, a.Phi[u], b.Phi[u])
		}
	}
}

// The event-heap driver must reproduce the scan driver's schedules,
// utilities and contributions exactly on every instance with n ≤ 6
// organizations — the scan driver is the executable spec of Figure 1.
func TestHeapDriverMatchesScanDriver(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		k := 2 + r.Intn(5) // 2..6 organizations
		in := diffInstance(r, k)
		horizon := in.Horizon() + 2
		scan := RefAlgorithm{Opts: RefOptions{Driver: DriverScan}}.Run(in, horizon, 0)
		heap := RefAlgorithm{Opts: RefOptions{Driver: DriverHeap}}.Run(in, horizon, 0)
		assertSameResult(t, "heap vs scan", scan, heap)
		heapPar := RefAlgorithm{Opts: RefOptions{Driver: DriverHeap, Parallel: true, Workers: 4}}.Run(in, horizon, 0)
		assertSameResult(t, "heap-parallel vs scan", scan, heapPar)
	}
}

// The two drivers must also agree mid-trace (a horizon cutting through
// running jobs), not only after every job completed.
func TestHeapDriverMatchesScanDriverTruncatedHorizon(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(2000 + seed))
		k := 2 + r.Intn(5)
		in := diffInstance(r, k)
		horizon := in.Horizon()/2 + 1
		scan := RefAlgorithm{Opts: RefOptions{Driver: DriverScan}}.Run(in, horizon, 0)
		heap := RefAlgorithm{}.Run(in, horizon, 0)
		assertSameResult(t, "truncated horizon", scan, heap)
	}
}

// On a realistic generated workload (bursty sessions, heavy-tailed
// sizes, Zipf machine split) the drivers must agree as well; rotation
// mode is included since it perturbs within-instant selection.
func TestHeapDriverMatchesScanDriverOnFamilyWorkload(t *testing.T) {
	fam := gen.LPCEGEE().Scale(0.1)
	const orgs, horizon = 5, 3000
	machines := stats.ZipfSplit(fam.Procs, orgs, 1)
	inst, err := fam.Instance(horizon, orgs, machines, stats.NewRand(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, rotate := range []bool{false, true} {
		scan := RefAlgorithm{Opts: RefOptions{Driver: DriverScan, Rotate: rotate}}.Run(inst, horizon, 0)
		heap := RefAlgorithm{Opts: RefOptions{Rotate: rotate}}.Run(inst, horizon, 0)
		assertSameResult(t, "family workload", scan, heap)
	}
}

// The heap driver's φ must equal the generic Shapley value of the
// induced game (the MapGame tabulating every coalition's final value)
// within 1e-9 — Figure 1's incremental computation against Equation 1.
func TestHeapDriverPhiMatchesExactShapleyOnMapGame(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(3000 + seed))
		k := 2 + r.Intn(5)
		in := diffInstance(r, k)
		horizon := in.Horizon() + 2
		ref := NewRef(in, RefOptions{})
		res := ref.Run(horizon)
		game := shapley.NewMapGame(k)
		for mask := model.Coalition(1); mask <= model.Grand(k); mask++ {
			game.Set(mask, float64(ref.ValueOf(mask)))
		}
		exact := shapley.Exact(game)
		for u := 0; u < k; u++ {
			if math.Abs(res.Phi[u]-exact[u]) > 1e-9 {
				t.Fatalf("seed %d: φ[%d] = %v, Exact(MapGame) = %v", seed, u, res.Phi[u], exact[u])
			}
		}
	}
}

// Coalition values — not just the grand result — must agree between the
// drivers: the Cluster accessor exposes every embedded subschedule.
func TestHeapDriverSubcoalitionValuesMatchScan(t *testing.T) {
	r := rand.New(rand.NewSource(4000))
	for trial := 0; trial < 8; trial++ {
		k := 2 + r.Intn(5)
		in := diffInstance(r, k)
		horizon := in.Horizon() + 1
		scan := NewRef(in, RefOptions{Driver: DriverScan})
		scan.Run(horizon)
		heap := NewRef(in, RefOptions{})
		heap.Run(horizon)
		for mask := model.Coalition(1); mask <= model.Grand(k); mask++ {
			if sv, hv := scan.ValueOf(mask), heap.ValueOf(mask); sv != hv {
				t.Fatalf("trial %d: v(%v) scan=%d heap=%d", trial, mask, sv, hv)
			}
			ss, hs := scan.Cluster(mask).Starts(), heap.Cluster(mask).Starts()
			if len(ss) != len(hs) {
				t.Fatalf("trial %d: coalition %v start counts differ", trial, mask)
			}
			for i := range ss {
				if ss[i] != hs[i] {
					t.Fatalf("trial %d: coalition %v start %d differs: %+v vs %+v", trial, mask, i, ss[i], hs[i])
				}
			}
		}
	}
}
