// Command benchdiff is the benchmark-regression gate: it compares two
// benchjson artifacts (cmd/benchjson output, successive BENCH_N.json
// files in the performance trajectory) and fails when the named
// hot-path benchmark set regressed.
//
//	benchdiff BENCH_7.json BENCH_7.ci.json
//
// For every benchmark whose name matches one of the -hot prefixes and
// that appears in both artifacts:
//
//   - allocs/op may never increase. The hot-path set is held to an
//     allocation budget (most of it to zero), allocs/op is
//     hardware-independent, and a single new allocation per op is
//     exactly the class of regression this gate exists to catch.
//   - ns/op may regress by at most -max-ns-regress (default 15%). Wall
//     time is only comparable on identical hardware, so this check is
//     enforced when both artifacts record the same "cpu:" header (or
//     under -force-ns) and reported as a warning otherwise.
//
// Repeated measurements of the same benchmark (go test -count=N) are
// collapsed to their best ns/op and worst allocs/op before diffing —
// best-of-N is the standard way to cut scheduler noise out of
// sub-microsecond benchmarks, and the worst allocation count is the
// honest one to hold a zero budget against.
//
// Hot-path benchmarks present only in the new artifact are reported as
// newly seeded; a baseline with no matching benchmarks passes (the
// first artifact in a trajectory has nothing to diff against). Any
// other outcome mismatch — a hot benchmark that lost its -benchmem
// columns, or a matched regression — exits non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type record struct {
	Name        string   `json:"name"`
	NsPerOp     float64  `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
}

type report struct {
	Format     string   `json:"format"`
	CPU        string   `json:"cpu"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	var (
		hot     = flag.String("hot", "BenchmarkHotPath", "comma-separated name prefixes of the gated hot-path set")
		maxNs   = flag.Float64("max-ns-regress", 0.15, "maximum tolerated relative ns/op regression (0.15 = +15%)")
		forceNs = flag.Bool("force-ns", false, "enforce the ns/op threshold even when the artifacts' cpu headers differ")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] OLD.json NEW.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), splitPrefixes(*hot), *maxNs, *forceNs); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func splitPrefixes(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func isHot(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// reduce keeps the hot-path records, collapsing -count=N repeats of a
// benchmark to one record with the minimum ns/op and the maximum
// allocs/op and B/op, in first-seen order.
func reduce(recs []record, prefixes []string) []record {
	index := map[string]int{}
	var out []record
	for _, r := range recs {
		if !isHot(r.Name, prefixes) {
			continue
		}
		i, seen := index[r.Name]
		if !seen {
			index[r.Name] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsPerOp < out[i].NsPerOp {
			out[i].NsPerOp = r.NsPerOp
		}
		out[i].AllocsPerOp = maxMetric(out[i].AllocsPerOp, r.AllocsPerOp)
		out[i].BytesPerOp = maxMetric(out[i].BytesPerOp, r.BytesPerOp)
	}
	return out
}

// maxMetric merges two optional -benchmem readings: a missing column
// in any repeat poisons the merge (the gate must see it), otherwise
// the worst reading wins.
func maxMetric(a, b *float64) *float64 {
	if a == nil || b == nil {
		return nil
	}
	if *b > *a {
		return b
	}
	return a
}

func run(oldPath, newPath string, prefixes []string, maxNs float64, forceNs bool) error {
	oldRep, err := load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := load(newPath)
	if err != nil {
		return err
	}
	baseline := map[string]record{}
	for _, r := range reduce(oldRep.Benchmarks, prefixes) {
		baseline[r.Name] = r
	}
	current := reduce(newRep.Benchmarks, prefixes)
	enforceNs := forceNs || (oldRep.CPU != "" && oldRep.CPU == newRep.CPU)
	if !enforceNs {
		fmt.Printf("cpu headers differ (old %q, new %q): ns/op checked as warning only\n", oldRep.CPU, newRep.CPU)
	}

	var failures []string
	matched, seeded := 0, 0
	for _, nr := range current {
		or, ok := baseline[nr.Name]
		if !ok {
			seeded++
			fmt.Printf("NEW   %-60s %12.1f ns/op (no baseline)\n", nr.Name, nr.NsPerOp)
			continue
		}
		matched++
		verdict := "ok"
		switch {
		case or.AllocsPerOp == nil:
			verdict = "ok (baseline has no allocs/op)"
		case nr.AllocsPerOp == nil:
			verdict = "FAIL: new run lost allocs/op (run with -benchmem)"
		case *nr.AllocsPerOp > *or.AllocsPerOp:
			verdict = fmt.Sprintf("FAIL: allocs/op %.0f -> %.0f", *or.AllocsPerOp, *nr.AllocsPerOp)
		}
		if !strings.HasPrefix(verdict, "FAIL") && or.NsPerOp > 0 {
			if ratio := nr.NsPerOp/or.NsPerOp - 1; ratio > maxNs {
				if enforceNs {
					verdict = fmt.Sprintf("FAIL: ns/op %+.1f%% (limit %+.1f%%)", ratio*100, maxNs*100)
				} else {
					verdict = fmt.Sprintf("warn: ns/op %+.1f%% on different hardware", ratio*100)
				}
			}
		}
		fmt.Printf("%-60s %12.1f -> %-12.1f ns/op  %s\n", nr.Name, or.NsPerOp, nr.NsPerOp, verdict)
		if strings.HasPrefix(verdict, "FAIL") {
			failures = append(failures, fmt.Sprintf("%s: %s", nr.Name, verdict))
		}
	}
	fmt.Printf("%d hot-path benchmarks compared, %d newly seeded, %d regressions\n", matched, seeded, len(failures))
	if len(failures) > 0 {
		return fmt.Errorf("%d hot-path regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}
