package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"

	"repro/internal/model"
	"repro/internal/shapley"
	"repro/internal/sim"
)

// RefDriver selects the event loop driving the 2^k−1 subcoalition
// schedules.
type RefDriver int

const (
	// DriverHeap (the default) keeps the coalitions in an indexed
	// event min-heap and pops the globally earliest event, advancing
	// and re-evaluating only the clusters that event touches; every
	// other coalition's value is read from a cached ValuePoly in O(1).
	DriverHeap RefDriver = iota
	// DriverScan is the original reference loop: scan all 2^k−1 masks
	// for the minimum event time and advance every cluster to it, then
	// re-snapshot every coalition value at each dispatch instant. It
	// is kept as the oracle for differential testing; schedules and φ
	// are identical to DriverHeap's.
	DriverScan
)

// ParseRefDriver resolves a command-line driver name.
func ParseRefDriver(name string) (RefDriver, error) {
	switch strings.ToLower(name) {
	case "", "heap":
		return DriverHeap, nil
	case "scan":
		return DriverScan, nil
	default:
		return 0, fmt.Errorf("unknown REF driver %q (want heap or scan)", name)
	}
}

// String renders the driver name.
func (d RefDriver) String() string {
	if d == DriverScan {
		return "scan"
	}
	return "heap"
}

// RefOptions tunes the reference algorithm.
type RefOptions struct {
	// Driver selects the event loop; see RefDriver. The zero value is
	// the event-heap driver.
	Driver RefDriver
	// Rotate enables the within-instant deficit rotation ablation: after
	// each start, the chosen organization's standing is provisionally
	// charged one unit (Δψ = 1) and every member's contribution is
	// provisionally credited Δψ/‖C‖, following the Distance procedure of
	// Figure 1. The faithful Figure 3 behaviour (default) recomputes
	// φ and ψ only once per time moment.
	Rotate bool
	// Parallel advances the 2^k−1 subcoalition clusters on worker
	// goroutines between events. The result is identical to the serial
	// run; only wall-clock time changes.
	Parallel bool
	// Workers bounds the parallel worker count; 0 means GOMAXPROCS.
	Workers int
}

// Ref is Algorithm REF: the exact, exponential (FPT in the number of
// organizations, Corollary 3.5) fair scheduler. It is the fairness
// reference every other algorithm is measured against.
type Ref struct {
	inst  *model.Instance
	k     int
	grand model.Coalition
	opts  RefOptions
	seed  int64 // recorded in checkpoints; REF itself ignores it

	sims   []*sim.Cluster // indexed by coalition mask; [0] is nil
	bySize []model.Coalition
	phi    [][]float64 // per mask: contribution vector
	adj    [][]float64 // per mask: within-instant rotation adjustments
	// ct is the game-generic contribution engine: the dense coalition
	// value snapshot, dispatch stamps and memoized weight tables live
	// there; this file only decides when to refresh and which coalition
	// to compute φ for. The engine reads values through game, the
	// org-level ContribGame instance (built once — per-step interface
	// construction would be an allocation on the dispatch path).
	ct   *shapley.Contrib
	game shapley.ContribGame

	// Event-heap driver state, persistent across StepNext calls so a
	// run can be held open, fed and checkpointed. Rebuilt from the
	// cluster states lazily (ensureDriver) — never serialized.
	h           *eventHeap
	polys       []sim.ValuePoly
	driverReady bool
	touched     []model.Coalition // scratch for stepHeap
}

// NewRef builds the reference scheduler for the instance.
func NewRef(inst *model.Instance, opts RefOptions) *Ref {
	k := len(inst.Orgs)
	r := &Ref{
		inst:  inst,
		k:     k,
		grand: model.Grand(k),
		opts:  opts,
		sims:  make([]*sim.Cluster, 1<<uint(k)),
		phi:   make([][]float64, 1<<uint(k)),
		adj:   make([][]float64, 1<<uint(k)),
		ct:    shapley.NewContrib(k),
	}
	r.game = orgGame{r}
	for mask := model.Coalition(1); mask <= r.grand; mask++ {
		r.sims[mask] = sim.New(inst, mask, &refPolicy{r: r, mask: mask}, nil)
		r.phi[mask] = make([]float64, k)
		r.adj[mask] = make([]float64, k)
	}
	// Size-ordered masks: the paper completes schedules for smaller
	// coalitions first (their values feed the larger ones' φ).
	for s := 1; s <= k; s++ {
		for mask := model.Coalition(1); mask <= r.grand; mask++ {
			if mask.Size() == s {
				r.bySize = append(r.bySize, mask)
			}
		}
	}
	return r
}

// orgGame is the org-level instance of shapley.ContribGame — the game
// the paper's Section 2 defines, with organizations as players and
// v(C, t) the ψsp-sum of coalition C's own greedy schedule at t. A
// coalition's value is answered from its live cluster when the cluster
// stands at t, and from its cached sim.ValuePoly otherwise (the
// event-heap driver's dirty tracking: only clusters whose own events
// fired since the last snapshot are ever flushed).
//
// The poly path is reachable only while the heap driver is live (the
// scan driver and ResultAt always align every cluster with the queried
// instant first), so callers outside this package should query at the
// clusters' current instant — e.g. the horizon, after Run.
type orgGame struct{ r *Ref }

// Players implements shapley.ContribGame.
func (g orgGame) Players() int { return g.r.k }

// ValueAt implements shapley.ContribGame.
func (g orgGame) ValueAt(c model.Coalition, t model.Time) int64 {
	if c.Empty() {
		return 0
	}
	if s := g.r.sims[c]; s.Now() == t {
		return s.Value()
	}
	return g.r.polys[c].At(t)
}

// Game exposes REF's org-level cooperative game so the generic Shapley
// estimators (shapley.ExactAt, shapley.SampleAt) can consume the same
// coalition values the drivers schedule by.
func (r *Ref) Game() shapley.ContribGame { return r.game }

// Run drives every subcoalition schedule to the horizon and returns the
// grand coalition's result, with exact Shapley contributions. It is a
// thin wrapper over the incremental stepping interface — the streaming
// engine executes exactly this code path one event at a time.
func (r *Ref) Run(until model.Time) *Result {
	return runStepper(r, until)
}

// Instance implements Stepper.
func (r *Ref) Instance() *model.Instance { return r.inst }

// Starts implements Stepper: the grand coalition's schedule is the
// decision schedule.
func (r *Ref) Starts() []sim.Start { return r.sims[r.grand].Starts() }

// NextEventTime implements Stepper: the earliest pending event across
// all 2^k−1 subcoalition schedules.
func (r *Ref) NextEventTime() model.Time {
	t := sim.MaxTime
	for mask := model.Coalition(1); mask <= r.grand; mask++ {
		if e := r.sims[mask].NextEventTime(); e < t {
			t = e
		}
	}
	return t
}

// StepNext implements Stepper: process the single earliest global event
// at or before until with the configured driver.
func (r *Ref) StepNext(until model.Time) bool {
	if r.opts.Driver == DriverScan {
		return r.stepScan(until)
	}
	return r.stepHeap(until)
}

// FinishAt implements Stepper: move every cluster's clock to exactly t.
// Callers must have drained events at or before t first, so only clocks
// (and lazy accrual) move — stepping can resume afterwards.
func (r *Ref) FinishAt(t model.Time) { r.advanceAll(t) }

// ResultAt implements Stepper: the grand coalition's result with exact
// contributions at time t (clocks must already stand at t).
func (r *Ref) ResultAt(t model.Time) *Result {
	r.ct.Refresh(r.Game(), t)
	r.computePhi(r.grand)
	phi := append([]float64(nil), r.phi[r.grand]...)
	return resultFromCluster(r.Name(), r.sims[r.grand], t, phi)
}

// Inject implements Stepper: register online arrivals (already appended
// to the instance) with every subcoalition containing the owner. Cached
// value polynomials stay exact — a pending release changes no executed
// work — but event-heap keys go stale, so each mask is re-keyed in
// place (an O(1) no-op for the masks the arrivals don't advance).
func (r *Ref) Inject(ids []int) error {
	for mask := model.Coalition(1); mask <= r.grand; mask++ {
		for _, id := range ids {
			if err := r.sims[mask].Inject(id); err != nil {
				return err
			}
		}
		if r.driverReady {
			r.h.update(mask, r.sims[mask].NextEventTime())
		}
	}
	return nil
}

// Withdraw implements Stepper: remove the job from the grand
// coalition's wait queue (it must still be waiting there — the grand
// schedule is the decision schedule) and, best-effort, from every
// subcoalition containing the owner. A subcoalition whose hypothetical
// schedule already started the job keeps it: non-preemptive
// counterfactual work stands, exactly as it would had the coalition
// been running alone. Withdrawal moves no executed work, so cached
// value polynomials stay exact, but a pending-release removal can push
// a cluster's next event later — only the 2^(k−1) masks containing the
// owner can change, and each is re-keyed in place with an incremental
// heap sift (removal included, when the withdrawal drained the
// cluster's last pending event) instead of a full rebuild. Migration
// rounds withdraw one job at a time, so this is the hot path the
// indexed heap exists for.
func (r *Ref) Withdraw(id int) error {
	if err := withdrawDecision(r.sims[r.grand], r.Name(), id); err != nil {
		return err
	}
	if r.driverReady {
		r.h.update(r.grand, r.sims[r.grand].NextEventTime())
	}
	org := r.inst.Jobs[id].Org
	for mask := model.Coalition(1); mask < r.grand; mask++ {
		if !mask.Has(org) {
			continue
		}
		removed, err := r.sims[mask].Withdraw(org, id)
		if err != nil {
			return err
		}
		if removed && r.driverReady {
			r.h.update(mask, r.sims[mask].NextEventTime())
		}
	}
	return nil
}

// Withdrawn implements Stepper.
func (r *Ref) Withdrawn() int { return r.sims[r.grand].WithdrawnCount() }

// stepScan is one iteration of the original driver: scan all 2^k−1
// masks for the minimum event time, advance every cluster to it, and
// re-snapshot every coalition value at each dispatch instant.
func (r *Ref) stepScan(until model.Time) bool {
	t := r.NextEventTime()
	if t == sim.MaxTime || t > until {
		return false
	}
	r.advanceAll(t)
	r.dispatchAll(t)
	return true
}

// Name implements Algorithm (via RefAlgorithm); exported here for
// symmetric reporting.
func (r *Ref) Name() string { return "REF" }

// advanceAll moves every subcoalition cluster to time t.
func (r *Ref) advanceAll(t model.Time) {
	if !r.opts.Parallel {
		for mask := model.Coalition(1); mask <= r.grand; mask++ {
			r.sims[mask].AdvanceTo(t)
		}
		return
	}
	workers := r.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	forEachChunk(workers, int(r.grand), func(lo, hi int) {
		for mask := lo + 1; mask <= hi; mask++ { // masks are 1-based
			c := r.sims[mask]
			c.AdvanceTo(t)
			c.Flush() // accrual work happens on the worker
		}
	})
}

// dispatchAll lets every coalition with a free machine and waiting jobs
// schedule, smallest coalitions first (Figure 1's FairAlgorithm loop).
// Coalition values at the current instant are unaffected by same-instant
// starts (a job started at t has executed nothing before t), so one
// value snapshot serves all coalitions. Every cluster stands at t here
// (advanceAll ran), so the snapshot reads live values.
func (r *Ref) dispatchAll(t model.Time) {
	any := false
	for _, mask := range r.bySize {
		if r.sims[mask].CanDispatch() {
			any = true
			break
		}
	}
	if !any {
		return
	}
	r.ct.Refresh(r.Game(), t)
	for _, mask := range r.bySize {
		c := r.sims[mask]
		if !c.CanDispatch() {
			continue
		}
		r.computePhi(mask)
		c.Dispatch()
	}
}

// computePhi fills r.phi[mask] with the exact Shapley contributions of
// the coalition's members, computed by the contribution engine from the
// current subcoalition value snapshot (the UpdateVals procedure of
// Figure 1). Rotation adjustments are reset alongside.
func (r *Ref) computePhi(mask model.Coalition) {
	r.ct.PhiInto(mask, r.phi[mask])
	adj := r.adj[mask]
	for i := range adj {
		adj[i] = 0
	}
}

// PhiOf returns the most recently computed contribution vector for a
// coalition (valid after Run for the grand coalition, or mid-run for
// any coalition that has dispatched).
func (r *Ref) PhiOf(mask model.Coalition) []float64 {
	return append([]float64(nil), r.phi[mask]...)
}

// ValueOf returns coalition mask's value at the cluster's current time.
// The empty coalition has value 0.
func (r *Ref) ValueOf(mask model.Coalition) int64 {
	if mask.Empty() {
		return 0
	}
	return r.sims[mask].Value()
}

// Cluster exposes a subcoalition's cluster (read-only use intended);
// tests compare subcoalition schedules against independent simulations.
func (r *Ref) Cluster(mask model.Coalition) *sim.Cluster { return r.sims[mask] }

// refPolicy selects argmax(φ−ψ) among the coalition's waiting members —
// the SelectAndSchedule rule of Figure 3, with deterministic low-index
// tie-breaking.
type refPolicy struct {
	r    *Ref
	mask model.Coalition
	view *sim.View
}

// Name implements sim.Policy.
func (p *refPolicy) Name() string { return "REF" }

// Attach implements sim.Policy.
func (p *refPolicy) Attach(v *sim.View, _ *rand.Rand) { p.view = v }

// Select implements sim.Policy.
func (p *refPolicy) Select(_ model.Time, _ int) int {
	phi := p.r.phi[p.mask]
	adj := p.r.adj[p.mask]
	best := -1
	var bestDeficit float64
	p.mask.EachMember(func(u int) {
		if p.view.Waiting(u) == 0 {
			return
		}
		deficit := phi[u] + adj[u] - float64(p.view.Psi(u))
		if best == -1 || deficit > bestDeficit {
			best, bestDeficit = u, deficit
		}
	})
	if p.r.opts.Rotate {
		size := float64(p.mask.Size())
		p.mask.EachMember(func(u int) { adj[u] += 1 / size })
		adj[best]--
	}
	return best
}

// Capture implements Stepper: one ClusterState per subcoalition, in
// mask order. Driver caches are rebuilt on restore, not serialized; φ
// and the rotation adjustments are recomputed at every dispatch instant
// before they are read, so they carry no state either.
func (r *Ref) Capture(now model.Time) (*Checkpoint, error) {
	cp := checkpointHeader(r.Name(), r.seed, now, r.inst)
	cp.Clusters = make([]sim.ClusterState, 0, int(r.grand))
	for mask := model.Coalition(1); mask <= r.grand; mask++ {
		cp.Clusters = append(cp.Clusters, r.sims[mask].CaptureState())
	}
	return cp, nil
}

// RefAlgorithm adapts Ref to the Algorithm interface (REF is
// deterministic; the seed is ignored).
type RefAlgorithm struct{ Opts RefOptions }

// Name implements Algorithm.
func (a RefAlgorithm) Name() string { return "REF" }

// Run implements Algorithm.
func (a RefAlgorithm) Run(inst *model.Instance, until model.Time, _ int64) *Result {
	return NewRef(inst, a.Opts).Run(until)
}

// NewStepper implements StepperAlgorithm.
func (a RefAlgorithm) NewStepper(inst *model.Instance, seed int64) Stepper {
	r := NewRef(inst, a.Opts)
	r.seed = seed
	return r
}

// RestoreStepper implements StepperAlgorithm: rebuild the 2^k−1
// clusters and overwrite each with its captured state; the event heap
// and value-polynomial caches are reconstructed lazily on the next
// StepNext.
func (a RefAlgorithm) RestoreStepper(cp *Checkpoint) (Stepper, error) {
	if cp.Algorithm != (RefAlgorithm{}).Name() {
		return nil, fmt.Errorf("core: checkpoint for %q restored as REF", cp.Algorithm)
	}
	inst, err := cp.RebuildInstance()
	if err != nil {
		return nil, err
	}
	r := NewRef(inst, a.Opts)
	r.seed = cp.Seed
	if len(cp.Clusters) != int(r.grand) {
		return nil, fmt.Errorf("core: REF checkpoint has %d clusters, want %d", len(cp.Clusters), int(r.grand))
	}
	for i, mask := 0, model.Coalition(1); mask <= r.grand; mask++ {
		if err := r.sims[mask].RestoreState(cp.Clusters[i]); err != nil {
			return nil, err
		}
		i++
	}
	return r, nil
}
