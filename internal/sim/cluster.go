// Package sim is the event-driven simulator of one coalition's cluster:
// identical machines contributed by the member organizations, per-
// organization FIFO job queues, greedy non-preemptive dispatch through a
// pluggable Policy, and exact integer ψsp accounting per job owner and
// per machine owner.
//
// The engine exposes two driving styles:
//
//   - Run(until): self-driving loop for standalone policies
//     (round-robin, fair share, DIRECTCONTR, …).
//   - NextEventTime / AdvanceTo / Dispatch: the primitives the REF and
//     RAND drivers use to keep 2^k−1 coalition clusters in lockstep and
//     interleave Shapley computations between event processing and
//     dispatch.
//
// Greediness (no machine idles while a job waits) is an engine
// invariant, not a policy obligation: the dispatch loop keeps starting
// jobs while both a free machine and a waiting job exist.
//
// Utility accounting is lazy: execution windows of running jobs are
// folded into the ψsp accounts only at completions and at value queries
// (Flush), so advancing a cluster through an uneventful period costs
// O(1). This matters to the exponential REF driver, which advances up to
// 2^k−1 clusters per global event but queries values only at dispatch
// instants.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/model"
	"repro/internal/utility"
)

// MaxTime is the sentinel returned by NextEventTime when no event will
// ever occur again.
const MaxTime = model.Time(math.MaxInt64)

// Start records one scheduling decision: job (by ID) started at At on
// Machine.
type Start struct {
	Job     int
	Org     int
	Machine int
	At      model.Time
}

// Cluster simulates one coalition. Create with New; the zero value is
// not usable.
type Cluster struct {
	inst *model.Instance
	coal model.Coalition

	owners         []int // machine -> owning org
	speeds         []int // machine -> work units per time unit
	capacity       int64 // Σ speeds
	machinesPerOrg []int
	capacityPerOrg []int64
	free           []int // free machine IDs, sorted at dispatch
	running        runHeap

	releaseOrder []int // job IDs of members, by (Release, ID)
	nextRelease  int
	queues       [][]int // per-org FIFO of job IDs
	qHead        []int
	totalWaiting int
	withdrawn    []int // job IDs withdrawn via Withdraw, in withdrawal order

	runningPerOrg []int

	now       model.Time
	flushedAt model.Time
	orgAcct   []utility.Account // per job owner
	ownAcct   []utility.Account // per machine owner
	total     utility.Account

	policy Policy
	rng    *rand.Rand
	starts []Start
}

// New builds a cluster for the given coalition of the instance, driven
// by the policy. rng may be nil when the policy is deterministic.
func New(inst *model.Instance, coal model.Coalition, p Policy, rng *rand.Rand) *Cluster {
	k := len(inst.Orgs)
	c := &Cluster{
		inst:           inst,
		coal:           coal,
		machinesPerOrg: make([]int, k),
		capacityPerOrg: make([]int64, k),
		queues:         make([][]int, k),
		qHead:          make([]int, k),
		runningPerOrg:  make([]int, k),
		orgAcct:        make([]utility.Account, k),
		ownAcct:        make([]utility.Account, k),
		policy:         p,
		rng:            rng,
	}
	for org := 0; org < k; org++ {
		if !coal.Has(org) {
			continue
		}
		o := inst.Orgs[org]
		c.machinesPerOrg[org] = o.Machines
		c.capacityPerOrg[org] = o.Capacity()
		c.capacity += o.Capacity()
		for i := 0; i < o.Machines; i++ {
			m := len(c.owners)
			c.owners = append(c.owners, org)
			c.speeds = append(c.speeds, o.Speed(i))
			c.free = append(c.free, m)
		}
	}
	for _, j := range inst.Jobs {
		if coal.Has(j.Org) {
			c.releaseOrder = append(c.releaseOrder, j.ID)
		}
	}
	if p != nil {
		p.Attach(&View{c}, rng)
	}
	return c
}

// Policy returns the driving policy.
func (c *Cluster) Policy() Policy { return c.policy }

// Coalition returns the simulated coalition.
func (c *Cluster) Coalition() model.Coalition { return c.coal }

// Instance returns the instance being simulated. It is a driver-level
// accessor; policies see only the non-clairvoyant View.
func (c *Cluster) Instance() *model.Instance { return c.inst }

// Now returns the current simulation time.
func (c *Cluster) Now() model.Time { return c.now }

// View returns a read-only view of the cluster (the same one policies
// receive).
func (c *Cluster) View() *View { return &View{c} }

// NextEventTime returns the earliest future release or completion, or
// MaxTime when neither exists. A pending release in the clock's past —
// only possible for a withdrawn job re-injected after time moved on —
// fires at the current instant: no event precedes now.
func (c *Cluster) NextEventTime() model.Time {
	next := MaxTime
	if c.nextRelease < len(c.releaseOrder) {
		next = c.inst.Jobs[c.releaseOrder[c.nextRelease]].Release
		if next < c.now {
			next = c.now
		}
	}
	if len(c.running) > 0 && c.running[0].end < next {
		next = c.running[0].end
	}
	return next
}

// AdvanceTo moves the clock to t, processing every release and
// completion with time ≤ t, but performs no dispatch. External drivers
// must advance event by event (t = the global minimum NextEventTime) so
// that no dispatch opportunity is skipped; Run and Step do this
// automatically.
func (c *Cluster) AdvanceTo(t model.Time) {
	if t < c.now {
		panic(fmt.Sprintf("sim: AdvanceTo(%d) before current time %d", t, c.now))
	}
	for len(c.running) > 0 && c.running[0].end <= t {
		top := c.running.pop()
		c.account(top, top.end)
		c.free = append(c.free, top.machine)
		c.runningPerOrg[c.inst.Jobs[top.job].Org]--
	}
	c.now = t
	c.releaseUpTo(t)
}

// account folds the entry's execution window [accFrom, upTo) into the
// owner accounts, scaled by the machine's speed.
func (c *Cluster) account(r runEntry, upTo model.Time) {
	if upTo <= r.accFrom {
		return
	}
	j := c.inst.Jobs[r.job]
	q := c.speeds[r.machine]
	c.orgAcct[j.Org].AddScaledWindow(r.start, j.Size, q, r.accFrom, upTo)
	c.ownAcct[c.owners[r.machine]].AddScaledWindow(r.start, j.Size, q, r.accFrom, upTo)
	c.total.AddScaledWindow(r.start, j.Size, q, r.accFrom, upTo)
}

// Flush folds the partial execution of still-running jobs into the
// accounts up to the current time. Value queries call it implicitly;
// parallel drivers may call it explicitly to move the accrual work onto
// worker goroutines.
func (c *Cluster) Flush() {
	if c.flushedAt == c.now {
		return
	}
	for i := range c.running {
		r := &c.running[i]
		c.account(*r, c.now) // running entries always satisfy end > now
		r.accFrom = c.now
	}
	c.flushedAt = c.now
}

// releaseUpTo enqueues every job with Release ≤ t.
func (c *Cluster) releaseUpTo(t model.Time) {
	for c.nextRelease < len(c.releaseOrder) {
		id := c.releaseOrder[c.nextRelease]
		j := c.inst.Jobs[id]
		if j.Release > t {
			return
		}
		c.queues[j.Org] = append(c.queues[j.Org], id)
		c.totalWaiting++
		c.nextRelease++
	}
}

// CanDispatch reports whether the cluster currently has both a free
// machine and a waiting job, i.e. Dispatch would start at least one job.
func (c *Cluster) CanDispatch() bool { return c.totalWaiting > 0 && len(c.free) > 0 }

// Withdraw removes a not-yet-started job from the cluster: from the
// organization's wait queue if it has been released, or from the
// pending release order if it has not. The job's identity is retained
// on a withdrawn list (checkpointed, and consulted by Inject for
// re-injection), and no account is touched — a queued job has executed
// nothing, so ψsp bookkeeping is unaffected by construction.
//
// The first result reports whether the job was removed: false with a
// nil error means the job is not withdrawable here — it already
// started (dispatch is non-preemptive), was already withdrawn, or its
// organization is not a coalition member (mirroring Inject, non-member
// jobs are ignored). Errors are reserved for malformed arguments.
func (c *Cluster) Withdraw(org, id int) (bool, error) {
	if id < 0 || id >= len(c.inst.Jobs) {
		return false, fmt.Errorf("sim: withdraw: job %d not in instance", id)
	}
	if j := c.inst.Jobs[id]; j.Org != org {
		return false, fmt.Errorf("sim: withdraw: job %d belongs to organization %d, not %d", id, j.Org, org)
	}
	if !c.coal.Has(org) {
		return false, nil
	}
	q := c.queues[org]
	for i := c.qHead[org]; i < len(q); i++ {
		if q[i] != id {
			continue
		}
		copy(q[i:], q[i+1:])
		c.queues[org] = q[:len(q)-1]
		c.totalWaiting--
		c.withdrawn = append(c.withdrawn, id)
		return true, nil
	}
	for i := c.nextRelease; i < len(c.releaseOrder); i++ {
		if c.releaseOrder[i] != id {
			continue
		}
		copy(c.releaseOrder[i:], c.releaseOrder[i+1:])
		c.releaseOrder = c.releaseOrder[:len(c.releaseOrder)-1]
		c.withdrawn = append(c.withdrawn, id)
		return true, nil
	}
	return false, nil
}

// WithdrawnCount returns the number of jobs withdrawn from this
// cluster (and not re-injected since).
func (c *Cluster) WithdrawnCount() int { return len(c.withdrawn) }

// WithdrawnJobs appends the IDs of withdrawn (and not re-injected)
// jobs, in withdrawal order, to buf and returns the result. Callers
// polling every step pass a reused buffer (buf[:0]) to keep the read
// allocation-free; pass nil for a fresh copy. Callers that only need
// the count should use WithdrawnCount.
func (c *Cluster) WithdrawnJobs(buf []int) []int { return append(buf, c.withdrawn...) }

// unwithdraw removes id from the withdrawn list, reporting whether it
// was there.
func (c *Cluster) unwithdraw(id int) bool {
	for i, w := range c.withdrawn {
		if w == id {
			c.withdrawn = append(c.withdrawn[:i], c.withdrawn[i+1:]...)
			return true
		}
	}
	return false
}

// Dispatch runs the greedy loop at the current instant: while a free
// machine and a waiting job exist, ask the policy and start the job.
func (c *Cluster) Dispatch() {
	if c.totalWaiting == 0 || len(c.free) == 0 {
		return
	}
	sort.Ints(c.free)
	if mo, ok := c.policy.(MachineOrderer); ok {
		mo.OrderMachines(c.now, c.free)
	}
	used := 0
	for _, m := range c.free {
		if c.totalWaiting == 0 {
			break
		}
		org := c.policy.Select(c.now, m)
		c.startHead(org, m)
		used++
	}
	// Compact in place instead of reslicing forward: c.free[used:] would
	// permanently surrender the consumed capacity, so steady-state
	// completion appends (AdvanceTo) reallocate forever.
	n := copy(c.free, c.free[used:])
	c.free = c.free[:n]
}

// startHead starts org's head job on machine m at the current time.
func (c *Cluster) startHead(org int, m int) {
	if len(c.queues[org])-c.qHead[org] == 0 {
		panic(fmt.Sprintf("sim: policy %q selected organization %d with no waiting jobs", c.policy.Name(), org))
	}
	id := c.queues[org][c.qHead[org]]
	c.qHead[org]++
	// Compact the queue occasionally so memory does not grow unbounded.
	if c.qHead[org] > 64 && c.qHead[org]*2 > len(c.queues[org]) {
		c.queues[org] = append(c.queues[org][:0], c.queues[org][c.qHead[org]:]...)
		c.qHead[org] = 0
	}
	c.totalWaiting--
	j := c.inst.Jobs[id]
	q := model.Time(c.speeds[m])
	dur := (j.Size + q - 1) / q
	c.running.push(runEntry{end: c.now + dur, machine: m, job: id, start: c.now, accFrom: c.now})
	c.runningPerOrg[org]++
	c.starts = append(c.starts, Start{Job: id, Org: org, Machine: m, At: c.now})
	if so, ok := c.policy.(StartObserver); ok {
		so.OnStart(c.now, j, m)
	}
}

// Step processes the single earliest pending event: advance, notify,
// dispatch. It reports whether an event existed at or before `until`.
func (c *Cluster) Step(until model.Time) bool {
	e := c.NextEventTime()
	if e == MaxTime || e > until {
		return false
	}
	c.AdvanceTo(e)
	if eo, ok := c.policy.(EventObserver); ok {
		eo.OnEvent(e)
	}
	c.Dispatch()
	return true
}

// Run drives the simulation until no event remains at or before `until`,
// then advances the clock to exactly `until` so that utilities are
// evaluated at the experiment horizon. Run is resumable: calling it
// again with a later horizon continues the same simulation.
func (c *Cluster) Run(until model.Time) {
	for c.Step(until) {
	}
	c.AdvanceTo(until)
}

// ValuePoly is the coalition value frozen as a closed-form function of
// the evaluation time: with flushed account totals (U, S) and the
// running set {(qᵣ, aᵣ)} of machine speeds and not-yet-accounted window
// starts,
//
//	v(t) = t·U − S + Σᵣ qᵣ·(t−aᵣ)(t−aᵣ+1)/2.
//
// The form is exact for any t in [Now, NextEventTime): past that, a
// completion may cut a running job's final (remainder) slot short or a
// release may precede a dispatch, so callers must re-snapshot after
// every event or start in the cluster. The event-heap REF driver caches
// one ValuePoly per coalition and re-snapshots only dirty clusters —
// the untouched 2^k−O(1) coalitions cost O(1) per value query instead
// of an O(#running) flush.
type ValuePoly struct {
	U, S    int64 // flushed ψsp account totals
	A, B, C int64 // Σq, Σq·a, Σq·a² over running entries
}

// At evaluates the polynomial at time t ≥ the snapshot time. The
// numerator Σ q(t−a)(t−a+1) is a sum of products of consecutive
// integers, hence even — the division is exact.
func (p ValuePoly) At(t model.Time) int64 {
	tt := int64(t)
	return tt*p.U - p.S + (p.A*tt*tt+(p.A-2*p.B)*tt+(p.C-p.B))/2
}

// ValuePoly snapshots the value function at the cluster's current
// state. It does not mutate the cluster, so concurrent snapshots of
// distinct clusters are safe.
func (c *Cluster) ValuePoly() ValuePoly {
	p := ValuePoly{U: c.total.U, S: c.total.S}
	for i := range c.running {
		r := &c.running[i]
		q := int64(c.speeds[r.machine])
		a := int64(r.accFrom)
		p.A += q
		p.B += q * a
		p.C += q * a * a
	}
	return p
}

// Psi returns organization org's ψsp at the current time.
func (c *Cluster) Psi(org int) int64 {
	c.Flush()
	return c.orgAcct[org].PsiAt(c.now)
}

// PsiVector returns every organization's ψsp at the current time.
func (c *Cluster) PsiVector() []int64 {
	c.Flush()
	out := make([]int64, len(c.orgAcct))
	for i := range out {
		out[i] = c.orgAcct[i].PsiAt(c.now)
	}
	return out
}

// Value returns the coalition value v(C, now) = Σ ψsp (Section 2).
func (c *Cluster) Value() int64 {
	c.Flush()
	return c.total.PsiAt(c.now)
}

// ExecutedUnits returns the total executed unit slots before now — the
// paper's p_tot when evaluated on the reference schedule.
func (c *Cluster) ExecutedUnits() int64 {
	c.Flush()
	return c.total.U
}

// Starts returns the recorded scheduling decisions in start order.
func (c *Cluster) Starts() []Start { return c.starts }

// Placed converts the recorded schedule to utility.Placed records, for
// the classic metrics. Only jobs of the given org are returned; pass a
// negative org for all jobs. On related machines, Size is the realized
// processing time ⌈p/q⌉ on the assigned machine (the paper's "p is a
// function of the schedule"), so completion times stay correct.
func (c *Cluster) Placed(org int) []utility.Placed {
	var out []utility.Placed
	for _, s := range c.starts {
		if org >= 0 && s.Org != org {
			continue
		}
		j := c.inst.Jobs[s.Job]
		q := model.Time(c.speeds[s.Machine])
		out = append(out, utility.Placed{Release: j.Release, Start: s.At, Size: (j.Size + q - 1) / q})
	}
	return out
}

// Utilization returns the fraction of work capacity (Σ machine speeds ×
// time) used up to the current time.
func (c *Cluster) Utilization() float64 {
	if c.capacity == 0 || c.now == 0 {
		return 0
	}
	c.Flush()
	return float64(c.total.U) / (float64(c.capacity) * float64(c.now))
}

// runEntry is one executing job in the completion heap. accFrom is the
// start of its not-yet-accounted execution window; start the job's
// start time (needed to place the remainder slot on fast machines).
type runEntry struct {
	end     model.Time
	machine int
	job     int
	start   model.Time
	accFrom model.Time
}

// runHeap is a binary min-heap ordered by (end, machine) for
// deterministic completion processing.
type runHeap []runEntry

func (h runHeap) less(i, j int) bool {
	if h[i].end != h[j].end {
		return h[i].end < h[j].end
	}
	return h[i].machine < h[j].machine
}

func (h *runHeap) push(e runEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *runHeap) pop() runEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h).less(l, smallest) {
			smallest = l
		}
		if r < n && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}
