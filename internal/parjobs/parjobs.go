// Package parjobs is the rigid parallel-jobs extension sketched in the
// paper's Sections 6 and 8: jobs may require several processors
// simultaneously ("our fair scheduling algorithm is also applicable for
// parallel jobs; however, the loss of the global efficiency of an
// arbitrary greedy algorithm can be higher").
//
// The package provides a small dedicated simulator for rigid jobs —
// width-w jobs occupy w machines for their whole duration, organizations
// keep FIFO order, and greedy dispatch starts the first fitting head —
// plus the ψsp valuation for parallel jobs (a width-w job is w·p unit
// pieces). Its tests construct the starvation witness showing that
// Theorem 6.2's 3/4 utilization bound does not survive parallel jobs.
package parjobs

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/utility"
)

// Job is a rigid parallel job: it needs Width machines simultaneously
// for Size time units.
type Job struct {
	ID      int
	Org     int
	Release model.Time
	Size    model.Time
	Width   int
}

// Instance is a parallel-jobs scheduling problem on a pool of identical
// machines. FIFO order per organization follows job positions.
type Instance struct {
	Machines int
	Orgs     int
	Jobs     []Job
}

// Validate checks the structural invariants.
func (in *Instance) Validate() error {
	if in.Machines < 1 {
		return fmt.Errorf("parjobs: %d machines", in.Machines)
	}
	if in.Orgs < 1 {
		return fmt.Errorf("parjobs: %d organizations", in.Orgs)
	}
	for i, j := range in.Jobs {
		if j.ID != i {
			return fmt.Errorf("parjobs: job %d has ID %d", i, j.ID)
		}
		if j.Org < 0 || j.Org >= in.Orgs {
			return fmt.Errorf("parjobs: job %d references org %d", i, j.Org)
		}
		if j.Size < 1 || j.Width < 1 || j.Width > in.Machines {
			return fmt.Errorf("parjobs: job %d has size %d width %d", i, j.Size, j.Width)
		}
		if j.Release < 0 {
			return fmt.Errorf("parjobs: job %d released at %d", i, j.Release)
		}
		if i > 0 && in.Jobs[i-1].Release > j.Release {
			return fmt.Errorf("parjobs: jobs not sorted by release at %d", i)
		}
	}
	return nil
}

// Start records one scheduling decision.
type Start struct {
	Job int
	At  model.Time
}

// Result is a finished simulation.
type Result struct {
	Instance *Instance
	Starts   []Start
	Horizon  model.Time
}

// Simulate runs greedy rigid-job scheduling with a fixed organization
// priority order: at every event, organizations are scanned in priority
// order and an organization's head job starts whenever enough machines
// are free. Heads that do not fit block their own queue (no
// backfilling — jobs of an organization must start in FIFO order,
// Section 2).
func Simulate(in *Instance, priority []int, until model.Time) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(priority) != in.Orgs {
		return nil, fmt.Errorf("parjobs: priority order has %d entries for %d orgs", len(priority), in.Orgs)
	}
	res := &Result{Instance: in, Horizon: until}
	queues := make([][]int, in.Orgs)
	next := 0
	free := in.Machines
	type running struct {
		end   model.Time
		width int
	}
	var active []running
	now := model.Time(0)
	for {
		// Next event: earliest completion or release after/at now.
		event := model.Time(-1)
		if next < len(in.Jobs) {
			event = in.Jobs[next].Release
		}
		for _, r := range active {
			if event < 0 || r.end < event {
				event = r.end
			}
		}
		if event < 0 || event > until {
			break
		}
		now = event
		// Completions at now.
		keep := active[:0]
		for _, r := range active {
			if r.end <= now {
				free += r.width
			} else {
				keep = append(keep, r)
			}
		}
		active = keep
		// Releases at now.
		for next < len(in.Jobs) && in.Jobs[next].Release <= now {
			j := in.Jobs[next]
			queues[j.Org] = append(queues[j.Org], j.ID)
			next++
		}
		// Greedy dispatch: keep starting fitting heads in priority order.
		for {
			started := false
			for _, org := range priority {
				if len(queues[org]) == 0 {
					continue
				}
				j := in.Jobs[queues[org][0]]
				if j.Width <= free {
					queues[org] = queues[org][1:]
					free -= j.Width
					active = append(active, running{end: now + j.Size, width: j.Width})
					res.Starts = append(res.Starts, Start{Job: j.ID, At: now})
					started = true
				}
			}
			if !started {
				break
			}
		}
	}
	sort.Slice(res.Starts, func(a, b int) bool {
		if res.Starts[a].At != res.Starts[b].At {
			return res.Starts[a].At < res.Starts[b].At
		}
		return res.Starts[a].Job < res.Starts[b].Job
	})
	return res, nil
}

// BusyUnits returns the machine·time units consumed before t: each
// started job contributes width × executed slots.
func (r *Result) BusyUnits(t model.Time) int64 {
	var total int64
	for _, s := range r.Starts {
		j := r.Instance.Jobs[s.Job]
		total += int64(j.Width) * utility.ExecutedUnits(s.At, j.Size, t)
	}
	return total
}

// Utilization returns the used fraction of machine capacity before t.
func (r *Result) Utilization(t model.Time) float64 {
	if t <= 0 {
		return 0
	}
	return float64(r.BusyUnits(t)) / (float64(r.Instance.Machines) * float64(t))
}

// Psi returns an organization's ψsp at t: a width-w job is w·p unit
// pieces, so its value is w times the sequential value of its window.
func (r *Result) Psi(org int, t model.Time) int64 {
	var total int64
	for _, s := range r.Starts {
		j := r.Instance.Jobs[s.Job]
		if j.Org != org {
			continue
		}
		total += int64(j.Width) * utility.PsiJob(s.At, j.Size, t)
	}
	return total
}
