package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/utility"
)

// The instance behind Theorem 5.3's inapproximability argument: m
// organizations, one machine, one identical job each. σ_ord schedules
// them in index order, σ_rev in reverse. The relative Manhattan distance
// between the two utility vectors tends to 1 as m grows, so a
// (1/2−ε)-approximate fair schedule cannot tell which order is the fair
// one.
func TestInapproximabilityGapGrowsWithOrgs(t *testing.T) {
	const p = model.Time(5)
	prev := 0.0
	for _, m := range []int{2, 4, 8, 16, 32} {
		eval := model.Time(int64(m))*p + 1
		ord := make([]int64, m)
		rev := make([]int64, m)
		var total int64
		for i := 0; i < m; i++ {
			ord[i] = utility.PsiJob(model.Time(int64(i))*p, p, eval)
			rev[m-1-i] = ord[i]
			total += ord[i]
		}
		gap := float64(metrics.DeltaPsi(ord, rev)) / float64(total)
		if gap <= prev {
			t.Fatalf("m=%d: relative gap %v did not grow (prev %v)", m, gap, prev)
		}
		prev = gap
	}
	// By m=32 the gap must be well past the 1/2 approximation threshold.
	if prev <= 0.5 {
		t.Fatalf("relative gap at m=32 is %v, expected > 1/2", prev)
	}
}

// Definition 5.2's α for the trivial case: a schedule compared with
// itself is a 0-approximation.
func TestSelfDistanceZero(t *testing.T) {
	psi := []int64{10, 20, 30}
	if got := metrics.RelativeUnfairness(psi, psi); got != 0 {
		t.Fatalf("self distance = %v", got)
	}
}
