package fed_test

import (
	"testing"

	"repro/internal/fed"
	"repro/internal/model"
)

// sums2 builds a two-cluster summary pair for direct policy unit tests.
func sums2(a, b fed.Summary) []fed.Summary {
	a.Cluster, b.Cluster = 0, 1
	return []fed.Summary{a, b}
}

func TestLocalOnlyRoutesHome(t *testing.T) {
	s := sums2(fed.Summary{Waiting: 100, Capacity: 1}, fed.Summary{Waiting: 0, Capacity: 100})
	if got := (fed.LocalOnly{}).Route(0, 0, s); got != 0 {
		t.Fatalf("local-only routed to %d", got)
	}
}

func TestLeastLoadedPrefersEmptierCluster(t *testing.T) {
	p := fed.LeastLoaded{}
	// Origin 0 has 6 waiting on 2 machines; cluster 1 has 1 waiting on
	// 4 machines — offload.
	s := sums2(fed.Summary{Waiting: 6, Capacity: 2}, fed.Summary{Waiting: 1, Capacity: 4})
	if got := p.Route(0, 0, s); got != 1 {
		t.Fatalf("least-loaded kept the job at the overloaded origin (got %d)", got)
	}
	// Exact tie (same backlog per capacity): stay at the origin.
	s = sums2(fed.Summary{Waiting: 2, Capacity: 4}, fed.Summary{Waiting: 1, Capacity: 2})
	if got := p.Route(0, 0, s); got != 0 {
		t.Fatalf("least-loaded moved the job on a tie (got %d)", got)
	}
	if got := p.Route(0, 1, s); got != 1 {
		t.Fatalf("least-loaded moved the job on a tie from origin 1 (got %d)", got)
	}
}

func TestFairnessAwareFollowsDeficit(t *testing.T) {
	p := fed.FairnessAware{}
	// With exchanged φ: org 0 contributed much at cluster 1 (φ=50) but
	// consumed little there (ψ=10); at its origin it already overdrew
	// (φ=5, ψ=30). The job goes where the credit is.
	s := sums2(
		fed.Summary{Psi: []int64{30, 0}, Phi: []float64{5, 0}, Capacity: 2, OrgCapacity: []int64{1, 1}},
		fed.Summary{Psi: []int64{10, 0}, Phi: []float64{50, 0}, Capacity: 2, OrgCapacity: []int64{2, 0}},
	)
	if got := p.Route(0, 0, s); got != 1 {
		t.Fatalf("fairness-aware ignored the φ−ψ credit (got %d)", got)
	}
	// Without φ the capacity-proportional entitlement stands in: org 0
	// owns all of cluster 1's machines (entitlement = full value 40,
	// consumed 10 → deficit 30) and none at the origin.
	s = sums2(
		fed.Summary{Psi: []int64{20, 5}, Phi: nil, Value: 25, Capacity: 3, OrgCapacity: []int64{0, 3}},
		fed.Summary{Psi: []int64{10, 30}, Phi: nil, Value: 40, Capacity: 2, OrgCapacity: []int64{2, 0}},
	)
	if got := p.Route(0, 0, s); got != 1 {
		t.Fatalf("fairness-aware ignored the capacity entitlement (got %d)", got)
	}
	// All deficits zero (fresh federation): stay at the origin.
	s = sums2(
		fed.Summary{Psi: []int64{0, 0}, Value: 0, Capacity: 2, OrgCapacity: []int64{1, 1}},
		fed.Summary{Psi: []int64{0, 0}, Value: 0, Capacity: 2, OrgCapacity: []int64{1, 1}},
	)
	if got := p.Route(0, 1, s); got != 1 {
		t.Fatalf("fairness-aware left a fresh origin (got %d)", got)
	}
}

// TestFairnessCapacityNormalizes: the capacity-normalized variant
// prefers the site where the credit is scarce relative to capacity,
// flipping the raw-credit choice when a big site holds slightly more
// absolute credit.
func TestFairnessCapacityNormalizes(t *testing.T) {
	// Raw deficits: 12 at the 8-capacity origin, 9 at the 2-capacity
	// peer. FairnessAware keeps the job home (12 > 9); per unit of
	// capacity the peer's credit is denser (4.5 > 1.5), so the
	// normalized variant delegates.
	s := sums2(
		fed.Summary{Psi: []int64{0, 0}, Phi: []float64{12, 0}, Capacity: 8, OrgCapacity: []int64{4, 4}},
		fed.Summary{Psi: []int64{0, 0}, Phi: []float64{9, 0}, Capacity: 2, OrgCapacity: []int64{1, 1}},
	)
	if got := (fed.FairnessAware{}).Route(0, 0, s); got != 0 {
		t.Fatalf("raw fairness delegated on larger absolute credit at home (got %d)", got)
	}
	if got := (fed.FairnessCapacity{}).Route(0, 0, s); got != 1 {
		t.Fatalf("capacity-normalized fairness ignored credit density (got %d)", got)
	}
}

// TestFairnessDecayedExpires: the decayed variant delegates on a young
// federation's credit but not on the same absolute credit aged far past
// the decay timescale — and never for advantages below one work unit.
func TestFairnessDecayedExpires(t *testing.T) {
	p := fed.FairnessDecayed{Tau: 100}
	credit := func(now model.Time) []fed.Summary {
		return sums2(
			fed.Summary{Now: now, Psi: []int64{30, 0}, Phi: []float64{5, 0}, Capacity: 2, OrgCapacity: []int64{1, 1}},
			fed.Summary{Now: now, Psi: []int64{10, 0}, Phi: []float64{50, 0}, Capacity: 2, OrgCapacity: []int64{2, 0}},
		)
	}
	if got := p.Route(0, 0, credit(0)); got != 1 {
		t.Fatalf("young credit not honored (got %d)", got)
	}
	if got := p.Route(0, 0, credit(100000)); got != 0 {
		t.Fatalf("ancient credit still bounced the job (got %d)", got)
	}
}

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"local":             "local",
		"Local-Only":        "local",
		"leastloaded":       "leastloaded",
		"greedy":            "leastloaded",
		"fairness":          "fairness",
		"FAIR":              "fairness",
		"fairness-capacity": "fairness-capacity",
		"capacity":          "fairness-capacity",
		"fairness-decay":    "fairness-decay",
		"decay":             "fairness-decay",
		"fedref":            "fedref",
		"REF":               "fedref",
		"fednbs":            "fednbs",
		"NBS":               "fednbs",
		"fednbs-migrate":    "fednbs-migrate",
	} {
		p, err := fed.PolicyByName(name)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("PolicyByName(%q) = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := fed.PolicyByName("bogus"); err == nil {
		t.Fatal("unknown policy name accepted")
	}
}

// TestLeastLoadedOffloadsEndToEnd drives a real two-cluster federation
// into imbalance: every submission arrives at cluster 0, and the
// least-loaded policy must spill a strict majority of the second wave
// to the idle cluster 1 while local-only leaves it idle.
func TestLeastLoadedOffloadsEndToEnd(t *testing.T) {
	build := func(policy fed.Policy) *fed.Federation {
		specs := []fed.ClusterSpec{
			{Name: "busy", Alg: algFactory("fairshare"), Machines: []int{1, 1}},
			{Name: "idle", Alg: algFactory("fairshare"), Machines: []int{2, 2}},
		}
		f, err := fed.New([]string{"o0", "o1"}, specs, policy, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 24; i++ {
			if _, err := f.Submit(0, i%2, 8, model.Time(i)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := f.Step(400); err != nil {
			t.Fatal(err)
		}
		if err := f.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		return f
	}
	ll := build(fed.LeastLoaded{}).Ledger()
	if ll.Routed[0][1] <= ll.Routed[0][0] {
		t.Fatalf("least-loaded kept %d at the 2-machine origin, offloaded %d to the 4-machine idle site",
			ll.Routed[0][0], ll.Routed[0][1])
	}
	lo := build(fed.LocalOnly{}).Ledger()
	if lo.Routed[0][1] != 0 || lo.Executed[1] != 0 {
		t.Fatalf("local-only touched the idle cluster: routed %d, executed %d", lo.Routed[0][1], lo.Executed[1])
	}
}
