// Strategyproof: why the paper rejects flow time as a utility and
// derives ψsp instead (Section 4). An organization that splits one long
// job into many short ones improves its *flow time* standing — classic
// schedulers reward the manipulation — but its ψsp utility is provably
// unchanged, so a Shapley-fair scheduler driven by ψsp gives the
// manipulator nothing.
//
// Run with:
//
//	go run ./examples/strategyproof
package main

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/utility"
)

func main() {
	const t = 40 // evaluation time
	// The honest workload: one job of size 12 started at 4, plus some
	// context jobs.
	honest := []utility.Execution{
		{Start: 0, Size: 5},
		{Start: 4, Size: 12}, // the job under manipulation
		{Start: 9, Size: 3},
	}
	// The manipulated workload: the size-12 job presented as 12
	// back-to-back unit pieces.
	manipulated := []utility.Execution{
		{Start: 0, Size: 5},
		{Start: 9, Size: 3},
	}
	for i := model.Time(0); i < 12; i++ {
		manipulated = append(manipulated, utility.Execution{Start: 4 + i, Size: 1})
	}

	fmt.Println("=== Splitting a size-12 job into 12 unit pieces ===")
	fmt.Printf("ψsp honest      : %d\n", utility.Psi(honest, t))
	fmt.Printf("ψsp manipulated : %d   (identical — strategy-resistance axiom)\n\n",
		utility.Psi(manipulated, t))

	// Flow time tells a different story: the same computation now counts
	// as 14 jobs instead of 3, so both the total and the per-job average
	// flow move — the metric is manipulable by repackaging work.
	honestPlaced := []utility.Placed{
		{Release: 0, Start: 0, Size: 5},
		{Release: 4, Start: 4, Size: 12},
		{Release: 9, Start: 9, Size: 3},
	}
	manipulatedPlaced := []utility.Placed{
		{Release: 0, Start: 0, Size: 5},
		{Release: 9, Start: 9, Size: 3},
	}
	for i := model.Time(0); i < 12; i++ {
		manipulatedPlaced = append(manipulatedPlaced,
			utility.Placed{Release: 4, Start: 4 + i, Size: 1})
	}
	fh, fm := utility.TotalFlow(honestPlaced, t), utility.TotalFlow(manipulatedPlaced, t)
	fmt.Printf("total flow honest      : %d over %d jobs (avg %.2f)\n",
		fh, len(honestPlaced), float64(fh)/float64(len(honestPlaced)))
	fmt.Printf("total flow manipulated : %d over %d jobs (avg %.2f)\n",
		fm, len(manipulatedPlaced), float64(fm)/float64(len(manipulatedPlaced)))
	fmt.Println("flow time moves when work is repackaged — any fairness scheme")
	fmt.Println("built on it can be gamed; ψsp cannot (Proposition 4.2 relates the")
	fmt.Println("two only for jobs of equal size).")
	fmt.Println()

	// Delaying jobs is never profitable under ψsp either.
	fmt.Println("=== Delaying a job ===")
	for _, d := range []model.Time{0, 1, 5} {
		v := utility.PsiJob(4+d, 12, t)
		fmt.Printf("ψsp of the size-12 job started at %2d: %d\n", 4+d, v)
	}
	fmt.Println("\nψsp is the unique utility (up to affine constants) satisfying the")
	fmt.Println("paper's three axioms (Theorem 4.1): task anonymity in start times,")
	fmt.Println("task anonymity in counts, and strategy-resistance.")
}
