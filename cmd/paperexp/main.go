// Command paperexp regenerates every table and figure of the paper's
// evaluation section (Skowron & Rzadca, SPAA 2013):
//
//	paperexp -table1            # Table 1: Δψ/p_tot, horizon 5·10⁴
//	paperexp -table2            # Table 2: Δψ/p_tot, horizon 5·10⁵
//	paperexp -fig10             # Figure 10: unfairness vs organizations
//	paperexp -fig7              # Figure 7: greedy utilization gap
//	paperexp -fig2              # Figure 2: worked utility example
//	paperexp -fed               # federated delegation-policy comparison
//	paperexp -admission         # admission-control ablation under overload
//	paperexp -all               # everything above
//
// -fed extends the evaluation toward the federated-clouds follow-up:
// the default three-cluster diurnal scenario is routed under every
// policy named by -fed-policies (local / leastloaded / fairness /
// fairness-capacity / fairness-decay / fedref / fedref-sample<N> /
// fednbs — the Nash-bargaining split of the same federation game —
// plus the re-delegating fedref-migrate / fairness-migrate /
// fednbs-migrate variants tuned by
// -fed-migration-budget), reporting offloaded fraction, federation-wide
// value and federation-level Δψ/p_tot against the local-only routing
// of the same instances.
//
// -admission sweeps the internal/ctrl admission-control variants
// (always / tokenbucket / backpressure, -admission-variants) over
// offered-load multipliers (-admission-loads), reporting admitted and
// rejected fractions, Δψ/p_tot against the ungated run of the same
// instance, and mean admission-decision latency; -admission-routing
// picks the delegation policy under the gate and -admission-staleness
// the age bound of the load view decisions observe. -fed-clusters and -fed-orgs resize the grid;
// above 16 members FedREF's exact Shapley evaluator is infeasible and
// the fedref-sample<N> budgets are the sampled-Shapley ablation
// (routing quality vs estimator budget, EXPERIMENTS.md §3).
//
// Workload families are scaled-down replicas of the archive traces by
// default (see DESIGN.md); -scale=full restores the original processor
// counts (slow). -instances controls the number of sampled sub-traces
// per cell (the paper uses 100). -horizon1/-horizon2 override the two
// table horizons — the paper's values are the defaults; tiny values
// make smoke runs cheap.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/model"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "paperexp:", err)
		os.Exit(1)
	}
}

// run executes the experiment selection; split from main so the CLI
// smoke tests drive the full path with tiny budgets.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("paperexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		table1    = fs.Bool("table1", false, "reproduce Table 1 (horizon 5e4)")
		table2    = fs.Bool("table2", false, "reproduce Table 2 (horizon 5e5)")
		fig10     = fs.Bool("fig10", false, "reproduce Figure 10 (unfairness vs #organizations)")
		fig7      = fs.Bool("fig7", false, "reproduce Figure 7 (greedy utilization gap)")
		fig2      = fs.Bool("fig2", false, "reproduce Figure 2 (worked utility example)")
		all       = fs.Bool("all", false, "reproduce everything")
		instances = fs.Int("instances", 20, "instances per cell (paper: 100)")
		samples   = fs.Int("rand-n", 15, "RAND sample count N (paper: 15 and 75)")
		seed      = fs.Int64("seed", 1, "base random seed")
		scale     = fs.String("scale", "small", "workload scale: small | full")
		maxOrgs   = fs.Int("max-orgs", 7, "largest organization count for -fig10 (paper: 10)")
		workers   = fs.Int("workers", 0, "parallel instance workers (0 = GOMAXPROCS)")
		rotate    = fs.Bool("rotate", false, "use REF's within-instant rotation mode")
		driver    = fs.String("ref-driver", "heap", "REF event loop: heap (indexed event heap) or scan (legacy full scan)")
		horizon1  = fs.Int64("horizon1", 50000, "Table 1 / Figure 10 horizon")
		horizon2  = fs.Int64("horizon2", 500000, "Table 2 horizon")

		fedTable     = fs.Bool("fed", false, "compare delegation policies on the federated diurnal grid")
		fedHorizon   = fs.Int64("fed-horizon", 8000, "federated experiment horizon")
		fedPolicies  = fs.String("fed-policies", "local,leastloaded,fairness,fedref,fedref-migrate,fednbs", "comma-separated delegation policies for -fed")
		fedAlg       = fs.String("fed-alg", "directcontr", "member-cluster algorithm for -fed")
		fedStaleness = fs.Int64("fed-staleness", 0, "summary gossip staleness Δt for -fed (0 = fresh every release)")
		fedMigBudget = fs.Int("fed-migration-budget", 0, "per-refresh migration cap for -migrate policies (0 = policy default, negative disables)")
		fedClusters  = fs.Int("fed-clusters", 0, "member-cluster count for -fed (0 = scenario default; >16 forces FedREF onto the sampled estimator)")
		fedOrgs      = fs.Int("fed-orgs", 0, "organization count for -fed (0 = scenario default)")
		fedWorkers   = fs.Int("fed-workers", 1, "data-plane goroutines per federation for -fed (results identical at any width)")

		admTable     = fs.Bool("admission", false, "run the admission-control ablation on the federated diurnal grid")
		admHorizon   = fs.Int64("admission-horizon", 8000, "admission ablation horizon")
		admVariants  = fs.String("admission-variants", "always,tokenbucket,backpressure", "comma-separated admission variants for -admission")
		admLoads     = fs.String("admission-loads", "1,1.5,2", "comma-separated offered-load multipliers for -admission")
		admRouting   = fs.String("admission-routing", "leastloaded", "delegation policy the admission ablation routes under")
		admStaleness = fs.Int64("admission-staleness", 0, "snapshot staleness Δt admission decisions observe (0 = fresh)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !(*table1 || *table2 || *fig10 || *fig7 || *fig2 || *fedTable || *admTable || *all) {
		fs.Usage()
		return fmt.Errorf("nothing selected (want -table1, -table2, -fig10, -fig7, -fig2, -fed, -admission or -all)")
	}
	refDriver, err := core.ParseRefDriver(*driver)
	if err != nil {
		return err
	}
	refOpts := core.RefOptions{Rotate: *rotate, Parallel: true, Driver: refDriver}
	configs := func(horizon model.Time) []exp.Config {
		var out []exp.Config
		for _, f := range gen.Families() {
			if *scale == "full" {
				f = f.Scale(gen.FullScaleFactor(f))
			}
			cfg := exp.DefaultConfig(f)
			cfg.Horizon = horizon
			cfg.Instances = *instances
			cfg.Seed = *seed
			cfg.Workers = *workers
			cfg.RefOpts = refOpts
			out = append(out, cfg)
		}
		return out
	}
	algs := exp.DefaultAlgorithms(*samples)

	if *all || *fig2 {
		r := exp.Figure2()
		fmt.Fprintln(stdout, "=== Figure 2: the strategy-proof utility ψsp on a worked schedule ===")
		fmt.Fprint(stdout, r.Gantt)
		fmt.Fprint(stdout, r.Legend)
		fmt.Fprintf(stdout, "ψsp(O1, t=13) = %d   (paper: 262)\n", r.Psi13)
		fmt.Fprintf(stdout, "ψsp(O1, t=14) = %d   (paper: 297)\n", r.Psi14)
		fmt.Fprintf(stdout, "flow time(14) = %d   (paper: 70)\n\n", r.Flow14)
	}
	if *all || *fig7 {
		r := exp.Figure7()
		fmt.Fprintln(stdout, "=== Figure 7: greedy algorithms and resource utilization (T=6) ===")
		fmt.Fprintln(stdout, "O2 scheduled first:")
		fmt.Fprint(stdout, r.GanttO2First)
		fmt.Fprintf(stdout, "utilization = %.2f   (paper: 1.00)\n", r.UtilizationO2First)
		fmt.Fprintln(stdout, "O1 scheduled first:")
		fmt.Fprint(stdout, r.GanttO1First)
		fmt.Fprintf(stdout, "utilization = %.2f   (paper: 0.75 — the tight 3/4 bound of Theorem 6.2)\n\n", r.UtilizationO1First)
	}
	if *all || *table1 {
		t, err := exp.UnfairnessTable(configs(model.Time(*horizon1)), algs)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, t.Render(fmt.Sprintf(
			"=== Table 1: average job delay Δψ/p_tot, horizon %d, %d instances, scale=%s ===",
			*horizon1, *instances, *scale)))
		fmt.Fprintln(stdout)
	}
	if *all || *table2 {
		t, err := exp.UnfairnessTable(configs(model.Time(*horizon2)), algs)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, t.Render(fmt.Sprintf(
			"=== Table 2: average job delay Δψ/p_tot, horizon %d, %d instances, scale=%s ===",
			*horizon2, *instances, *scale)))
		fmt.Fprintln(stdout)
	}
	if *all || *fig10 {
		base := exp.DefaultConfig(gen.LPCEGEE())
		base.Horizon = model.Time(*horizon1)
		base.Instances = *instances
		base.Seed = *seed
		base.Workers = *workers
		base.RefOpts = refOpts
		var ks []int
		for k := 2; k <= *maxOrgs; k++ {
			ks = append(ks, k)
		}
		t, err := exp.OrgCountSweep(base, ks, algs)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, t.RenderSeries(fmt.Sprintf(
			"=== Figure 10: Δψ/p_tot vs number of organizations (LPC-EGEE, %d instances) ===",
			*instances)))
		fmt.Fprintln(stdout)
	}
	if *all || *fedTable {
		cfg := exp.DefaultFedConfig()
		if *scale != "full" {
			cfg.Scenario.Base = cfg.Scenario.Base.Scale(0.2)
		}
		if *fedClusters > 0 {
			cfg.Scenario.Clusters = *fedClusters
		}
		if *fedOrgs > 0 {
			cfg.Scenario.Orgs = *fedOrgs
		}
		cfg.Horizon = model.Time(*fedHorizon)
		cfg.Instances = *instances
		cfg.Seed = *seed
		cfg.Alg = *fedAlg
		cfg.Samples = *samples
		cfg.RefOpts = refOpts
		cfg.Workers = *workers
		cfg.Staleness = model.Time(*fedStaleness)
		cfg.MigrationBudget = *fedMigBudget
		cfg.FedWorkers = *fedWorkers
		var names []string
		for _, name := range strings.Split(*fedPolicies, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		t, err := exp.FedPolicyTable(cfg, names)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, t.Render(fmt.Sprintf(
			"=== Federated delegation: %d clusters, %s members, horizon %d, staleness %d, %d instances, scale=%s ===",
			cfg.Scenario.Clusters, cfg.Alg, cfg.Horizon, cfg.Staleness, cfg.Instances, *scale)))
		fmt.Fprintln(stdout)
	}
	if *all || *admTable {
		cfg := exp.DefaultAdmissionConfig()
		if *scale != "full" {
			cfg.Scenario.Base = cfg.Scenario.Base.Scale(0.2)
		}
		cfg.Horizon = model.Time(*admHorizon)
		cfg.Instances = *instances
		cfg.Seed = *seed
		cfg.Alg = *fedAlg
		cfg.Samples = *samples
		cfg.RefOpts = refOpts
		cfg.Workers = *workers
		cfg.Policy = *admRouting
		cfg.Staleness = model.Time(*admStaleness)
		loads, err := parseLoads(*admLoads)
		if err != nil {
			return err
		}
		cfg.LoadFactors = loads
		variants, err := pickVariants(exp.DefaultAdmissionVariants(cfg.Scenario), *admVariants)
		if err != nil {
			return err
		}
		t, err := exp.AdmissionTable(cfg, variants)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, t.Render(fmt.Sprintf(
			"=== Admission control: %s routing, horizon %d, staleness %d, loads %s, %d instances, scale=%s ===",
			cfg.Policy, cfg.Horizon, cfg.Staleness, *admLoads, cfg.Instances, *scale)))
		fmt.Fprintln(stdout)
	}
	return nil
}

// parseLoads parses the comma-separated load-multiplier list.
func parseLoads(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad load factor %q (want a positive number)", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no load factors in %q", s)
	}
	return out, nil
}

// pickVariants selects admission variants by name from the calibrated
// defaults, preserving the order given on the command line.
func pickVariants(all []exp.AdmissionVariant, names string) ([]exp.AdmissionVariant, error) {
	var out []exp.AdmissionVariant
	for _, name := range strings.Split(names, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		found := false
		for _, v := range all {
			if v.Name == name {
				out = append(out, v)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown admission variant %q (want always, tokenbucket or backpressure)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no admission variants selected")
	}
	return out, nil
}
