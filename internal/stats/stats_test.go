package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Population variance of this classic sequence is 4; sample variance
	// is 4·8/7.
	want := math.Sqrt(4 * 8.0 / 7.0)
	if math.Abs(s.Std()-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std(), want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
}

func TestSummaryFewObservations(t *testing.T) {
	var s Summary
	if s.Std() != 0 {
		t.Error("empty Std != 0")
	}
	s.Add(3)
	if s.Std() != 0 || s.Mean != 3 {
		t.Error("single-observation summary wrong")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		var whole, left, right Summary
		for _, x := range a {
			sane := math.Mod(x, 1e6)
			whole.Add(sane)
			left.Add(sane)
		}
		for _, x := range b {
			sane := math.Mod(x, 1e6)
			whole.Add(sane)
			right.Add(sane)
		}
		left.Merge(right)
		if left.N != whole.N {
			return false
		}
		if whole.N == 0 {
			return true
		}
		return math.Abs(left.Mean-whole.Mean) < 1e-6 &&
			math.Abs(left.Std()-whole.Std()) < 1e-6 &&
			left.Min == whole.Min && left.Max == whole.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(4, 1)
	var sum float64
	for i, x := range w {
		sum += x
		if i > 0 && x >= w[i-1] {
			t.Errorf("weights not decreasing: %v", w)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v", sum)
	}
	u := ZipfWeights(5, 0)
	for _, x := range u {
		if math.Abs(x-0.2) > 1e-12 {
			t.Errorf("uniform weights = %v", u)
		}
	}
	if ZipfWeights(0, 1) != nil {
		t.Error("n=0 should yield nil")
	}
}

func TestApportionSumsAndFloors(t *testing.T) {
	f := func(total uint16, n uint8, tenthExp uint8) bool {
		tt := int(total%5000) + 1
		nn := int(n%12) + 1
		exp := float64(tenthExp%30) / 10
		parts := ZipfSplit(tt, nn, exp)
		sum := 0
		for _, p := range parts {
			if p < 0 {
				return false
			}
			sum += p
		}
		if sum != tt {
			return false
		}
		if tt >= nn {
			for _, p := range parts {
				if p == 0 {
					return false // every org must own at least one machine
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestApportionKnown(t *testing.T) {
	got := UniformSplit(10, 4)
	want := []int{3, 3, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UniformSplit(10,4) = %v, want %v", got, want)
		}
	}
	z := ZipfSplit(70, 5, 1)
	// Zipf(1) over 5 orgs: weights ∝ 1, 1/2, 1/3, 1/4, 1/5.
	if z[0] <= z[1] || z[1] < z[2] || z[2] < z[3] || z[3] < z[4] {
		t.Fatalf("ZipfSplit not decreasing: %v", z)
	}
	sum := 0
	for _, x := range z {
		sum += x
	}
	if sum != 70 {
		t.Fatalf("ZipfSplit sums to %d", sum)
	}
}

func TestApportionDegenerate(t *testing.T) {
	if got := Apportion(0, []float64{1, 2}); got[0] != 0 || got[1] != 0 {
		t.Errorf("total=0: %v", got)
	}
	if got := Apportion(5, nil); len(got) != 0 {
		t.Errorf("no weights: %v", got)
	}
	got := Apportion(5, []float64{0, 0})
	if got[0]+got[1] != 5 {
		t.Errorf("zero weights must still sum: %v", got)
	}
	// Fewer items than parts: sum must still hold, zeros allowed.
	got = Apportion(2, []float64{1, 1, 1, 1})
	sum := 0
	for _, x := range got {
		sum += x
	}
	if sum != 2 {
		t.Errorf("small total: %v", got)
	}
}

func TestDistributionsDeterministicAndSane(t *testing.T) {
	r1, r2 := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		a, b := LogNormal(r1, 1, 0.5), LogNormal(r2, 1, 0.5)
		if a != b {
			t.Fatal("LogNormal not deterministic under equal seeds")
		}
		if a <= 0 {
			t.Fatal("LogNormal produced non-positive value")
		}
	}
	r := NewRand(7)
	var s Summary
	for i := 0; i < 20000; i++ {
		s.Add(Exponential(r, 10))
	}
	if math.Abs(s.Mean-10) > 0.5 {
		t.Errorf("Exponential mean = %v, want ≈10", s.Mean)
	}
	var g Summary
	for i := 0; i < 20000; i++ {
		g.Add(float64(Geometric(r, 4)))
	}
	if math.Abs(g.Mean-4) > 0.25 {
		t.Errorf("Geometric mean = %v, want ≈4", g.Mean)
	}
	if Geometric(r, 0.5) != 1 {
		t.Error("Geometric with mean <= 1 must return 1")
	}
}
