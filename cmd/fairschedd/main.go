// Command fairschedd is the serving daemon: one process holds many
// concurrent scheduling runs open — single-cluster engine runs and
// federated multi-cluster runs — managed as sessions over HTTP/JSON.
//
//	fairschedd -addr :8080 -alg ref -orgs 3 -machines 6
//
// The flags above boot a classic single run as the session named
// "default", served both at /v1/sessions/default/... and at the
// legacy single-run paths (/v1/jobs, /v1/advance, ...). Further
// sessions — including federations — are created at runtime:
//
//	curl -X POST localhost:8080/v1/sessions -d '{"id":"f1","kind":"federation",
//	  "org_names":["a","b"],"policy":"fairness",
//	  "clusters":[{"name":"east","alg":"ref","machines":[2,0]},
//	              {"name":"west","alg":"directcontr","machines":[0,2]}]}'
//	curl -X POST localhost:8080/v1/sessions/f1/jobs -d '{"jobs":[{"cluster":0,"org":0,"size":5}]}'
//	curl -X POST localhost:8080/v1/sessions/f1/advance -d '{"until":100}'
//	curl localhost:8080/v1/sessions/f1/state
//
// With -checkpoint-dir, a SIGINT/SIGTERM triggers a graceful shutdown
// that flushes a final checkpoint envelope for every live session
// before exit, and the next boot with the same directory resumes them
// all. -restore preloads the default session from a raw engine
// checkpoint (the pre-session format).
//
// See internal/daemon for the endpoint reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/daemon"
)

// app is a built daemon: the session manager plus the serving options.
type app struct {
	srv     *daemon.Server
	addr    string
	ckptDir string
}

func main() {
	a, err := build(os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	fail(err)
	httpSrv := &http.Server{Addr: a.addr, Handler: a.srv.Handler()}
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		<-sig
		a.shutdown(httpSrv, os.Stderr)
	}()
	fmt.Fprintf(os.Stderr, "fairschedd: serving on %s\n", a.addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	<-done
}

// shutdown drains the HTTP server, then flushes a final checkpoint for
// every live session (when a checkpoint directory is configured) so no
// run state is lost on SIGINT/SIGTERM.
func (a *app) shutdown(httpSrv *http.Server, stderr io.Writer) {
	fmt.Fprintln(stderr, "fairschedd: shutting down")
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, "fairschedd: http shutdown:", err)
		}
	}
	if a.ckptDir == "" {
		return
	}
	paths, err := a.srv.Manager().FlushAll(a.ckptDir)
	if err != nil {
		fmt.Fprintln(stderr, "fairschedd: final checkpoint flush:", err)
	}
	fmt.Fprintf(stderr, "fairschedd: flushed %d session checkpoint(s) to %s\n", len(paths), a.ckptDir)
}

// build constructs the daemon from command-line arguments; split from
// main so tests exercise the full boot path — including session
// reload — without binding a socket.
func build(args []string, stderr io.Writer) (*app, error) {
	fs := flag.NewFlagSet("fairschedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8080", "HTTP listen address")
		algName  = fs.String("alg", "ref", "default session algorithm: ref, rand, directcontr, fairshare, utfairshare, currfairshare, roundrobin, fcfs")
		orgs     = fs.Int("orgs", 3, "default session: number of organizations")
		machines = fs.Int("machines", 0, "default session: total machines (0 = #orgs)")
		split    = fs.String("split", "zipf", "default session machine split: zipf | uniform")
		seed     = fs.Int64("seed", 1, "default session random seed")
		samples  = fs.Int("rand-n", 15, "RAND sample count")
		strat    = fs.Bool("rand-stratified", false, "RAND: draw permutations in position-stratified rotations")
		workers  = fs.Int("workers", 0, "worker goroutines for REF/RAND parallel paths (0 = GOMAXPROCS)")
		driver   = fs.String("ref-driver", "heap", "REF event loop: heap or scan")
		restore  = fs.String("restore", "", "engine checkpoint file to resume the default session from")
		ckptDir  = fs.String("checkpoint-dir", "", "directory for session checkpoints: reloaded at boot, flushed on graceful shutdown")
		noDef    = fs.Bool("no-default-session", false, "start with an empty session table (sessions created via the API only)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil, err
		}
		// The FlagSet already printed the error and usage to stderr.
		return nil, errors.New("invalid arguments")
	}
	mgr := daemon.NewManager()
	if *ckptDir != "" {
		ids, err := mgr.LoadDir(*ckptDir)
		if err != nil {
			return nil, err
		}
		if len(ids) > 0 {
			fmt.Fprintf(stderr, "fairschedd: restored session(s) %s from %s\n", strings.Join(ids, ", "), *ckptDir)
		}
	}
	if _, exists := mgr.Get(daemon.DefaultSession); !exists && !*noDef {
		if *orgs < 1 {
			return nil, fmt.Errorf("need at least one organization")
		}
		cfg := daemon.SessionConfig{
			Kind:        daemon.KindSingle,
			Alg:         *algName,
			Orgs:        *orgs,
			Machines:    *machines,
			Split:       *split,
			Seed:        *seed,
			RandSamples: *samples,
			Stratified:  *strat,
			RefDriver:   *driver,
			Workers:     *workers,
		}
		sess, err := mgr.Create(daemon.DefaultSession, cfg)
		if err != nil {
			return nil, err
		}
		if *restore != "" {
			data, err := os.ReadFile(*restore)
			if err != nil {
				return nil, err
			}
			if err := sess.Restore(data); err != nil {
				return nil, err
			}
			st := sess.State()
			fmt.Fprintf(stderr, "fairschedd: restored %s at t=%d with %d jobs\n", st.Algorithm, st.Now, st.Jobs)
		}
	} else if *restore != "" {
		// -restore targets a fresh default session only: refusing beats
		// silently serving a -checkpoint-dir state the operator did not
		// ask for (or dropping the file under -no-default-session).
		return nil, fmt.Errorf("-restore conflicts with an existing %q session (reloaded from -checkpoint-dir?) or -no-default-session", daemon.DefaultSession)
	}
	return &app{srv: daemon.NewServer(mgr), addr: *addr, ckptDir: *ckptDir}, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fairschedd:", err)
		os.Exit(1)
	}
}
