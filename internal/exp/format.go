package exp

import (
	"fmt"
	"strings"
)

// Render prints the table in the paper's layout: one row per algorithm,
// one Avg/StDev column pair per workload.
func (t *Table) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	colw := 11
	roww := t.rowLabelWidth()
	fmt.Fprintf(&b, "%-*s", roww, "")
	for _, w := range t.Workloads {
		fmt.Fprintf(&b, " | %-*s", 2*colw+1, w)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-*s", roww, "Algorithm")
	for range t.Workloads {
		fmt.Fprintf(&b, " | %*s %*s", colw, "Avg", colw, "St.dev")
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", roww+len(t.Workloads)*(2*colw+4)) + "\n")
	for _, alg := range t.Algorithms {
		fmt.Fprintf(&b, "%-*s", roww, alg)
		for _, w := range t.Workloads {
			s := t.Get(w, alg)
			if s == nil {
				fmt.Fprintf(&b, " | %*s %*s", colw, "-", colw, "-")
				continue
			}
			fmt.Fprintf(&b, " | %*s %*s", colw, formatVal(s.Mean), colw, formatVal(s.Std()))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// rowLabelWidth sizes the row-label column: the paper tables' classic
// 16 characters, widened when a row name (a long policy name in the
// federated table) would overflow it.
func (t *Table) rowLabelWidth() int {
	w := 16
	for _, alg := range t.Algorithms {
		if len(alg)+1 > w {
			w = len(alg) + 1
		}
	}
	return w
}

// RenderSeries prints the table as one series per algorithm over the
// workload axis — the Figure 10 layout (x = number of organizations).
func (t *Table) RenderSeries(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-16s", "Algorithm")
	for _, w := range t.Workloads {
		fmt.Fprintf(&b, " %10s", w)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 16+len(t.Workloads)*11) + "\n")
	for _, alg := range t.Algorithms {
		fmt.Fprintf(&b, "%-16s", alg)
		for _, w := range t.Workloads {
			s := t.Get(w, alg)
			if s == nil {
				fmt.Fprintf(&b, " %10s", "-")
				continue
			}
			fmt.Fprintf(&b, " %10s", formatVal(s.Mean))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// formatVal renders a value the way the paper's tables do: small values
// keep decimals, large ones round to integers.
func formatVal(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 0.1:
		return fmt.Sprintf("%.3f", v)
	case v < 10:
		return fmt.Sprintf("%.2f", v)
	case v < 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
