package shapley

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

// intGame is a deterministic integer-valued dynamic game for the
// contrib-engine tests: v(c, t) = t·Σ_{u∈c} base[u] + pair bonuses for
// every pair present — non-additive, monotone in t.
type intGame struct {
	base  []int64
	bonus int64
}

func (g intGame) Players() int { return len(g.base) }

func (g intGame) ValueAt(c model.Coalition, t model.Time) int64 {
	var v int64
	c.EachMember(func(u int) { v += int64(t) * g.base[u] })
	s := int64(c.Size())
	return v + g.bonus*s*(s-1)/2
}

func randomIntGame(r *rand.Rand, n int) intGame {
	g := intGame{base: make([]int64, n), bonus: int64(r.Intn(7))}
	for i := range g.base {
		g.base[i] = int64(r.Intn(50))
	}
	return g
}

// The subset weight table must match the per-player weights the direct
// evaluators use: Σ_s (#subsets of size s containing u)·w[c][s] telescopes
// to the Shapley formula, so PhiInto on a full snapshot must equal Exact
// on the frozen game.
func TestContribPhiMatchesExact(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(4000 + seed))
		n := 2 + r.Intn(5)
		g := randomIntGame(r, n)
		at := model.Time(1 + r.Intn(100))
		ct := NewContrib(n)
		ct.Refresh(g, at)
		got := ct.Phi(model.Grand(n))
		want := ExactAt(g, at)
		for u := range want {
			if math.Abs(got[u]-want[u]) > 1e-9 {
				t.Fatalf("seed %d: φ[%d] = %v from Contrib, %v from ExactAt", seed, u, got[u], want[u])
			}
		}
	}
}

// PhiInto on a strict subcoalition must equal Exact on the game
// restricted to that coalition's members.
func TestContribPhiSubcoalition(t *testing.T) {
	r := rand.New(rand.NewSource(4100))
	n := 5
	g := randomIntGame(r, n)
	at := model.Time(17)
	ct := NewContrib(n)
	ct.Refresh(g, at)
	mask := model.Coalition(0b10110) // players 1, 2, 4
	phi := make([]float64, n)
	ct.PhiInto(mask, phi)
	// Σ_{u∈mask} φ[u] = v(mask) (efficiency on the subgame); outsiders 0.
	var sum float64
	for u := 0; u < n; u++ {
		if !mask.Has(u) && phi[u] != 0 {
			t.Fatalf("non-member %d got φ=%v", u, phi[u])
		}
		sum += phi[u]
	}
	if want := float64(g.ValueAt(mask, at)); math.Abs(sum-want) > 1e-9 {
		t.Fatalf("Σφ over mask = %v, v(mask) = %v", sum, want)
	}
}

// FillSubsets must be equivalent to Refresh for the filled coalition's
// subsets, evaluate each coalition once per instant, and re-evaluate
// after ResetStamps.
func TestContribFillSubsetsLazy(t *testing.T) {
	n := 4
	calls := map[model.Coalition]int{}
	base := intGame{base: []int64{3, 1, 4, 1}, bonus: 5}
	counting := countingGame{g: base, calls: calls}
	ct := NewContrib(n)
	grand := model.Grand(n)
	ct.FillSubsets(counting, grand, 10)
	ct.FillSubsets(counting, grand, 10) // same instant: all cached
	for c, k := range calls {
		if k != 1 {
			t.Fatalf("coalition %v evaluated %d times at one instant", c, k)
		}
	}
	for mask := model.Coalition(1); mask <= grand; mask++ {
		if got, want := ct.Value(mask), base.ValueAt(mask, 10); got != want {
			t.Fatalf("value[%v] = %d, want %d", mask, got, want)
		}
	}
	ct.FillSubsets(counting, grand, 11) // new instant: refill
	if got, want := ct.Value(grand), base.ValueAt(grand, 11); got != want {
		t.Fatalf("value[grand] = %d after new instant, want %d", got, want)
	}
	ct.ResetStamps()
	before := calls[grand]
	ct.FillSubsets(counting, grand, 11)
	if calls[grand] != before+1 {
		t.Fatal("ResetStamps did not invalidate the fill stamps")
	}
}

type countingGame struct {
	g     intGame
	calls map[model.Coalition]int
}

func (c countingGame) Players() int { return c.g.Players() }

func (c countingGame) ValueAt(m model.Coalition, t model.Time) int64 {
	c.calls[m]++
	return c.g.ValueAt(m, t)
}

// The dynamic estimators agree with the static ones on the frozen game,
// and SampleAt is deterministic per seed.
func TestDynamicEstimatorsMatchStatic(t *testing.T) {
	r := rand.New(rand.NewSource(4200))
	g := randomIntGame(r, 6)
	at := model.Time(42)
	exact := ExactAt(g, at)
	static := Exact(Frozen(g, at))
	for u := range exact {
		if !almostEqual(exact[u], static[u]) {
			t.Fatalf("ExactAt and Exact∘Frozen differ at %d", u)
		}
	}
	a := SampleAt(g, at, 50, stats.NewRand(7))
	b := SampleAt(g, at, 50, stats.NewRand(7))
	for u := range a {
		if math.Float64bits(a[u]) != math.Float64bits(b[u]) {
			t.Fatalf("SampleAt not deterministic per seed at %d", u)
		}
	}
}

// SubsetWeights agrees with the per-predecessor Weights table:
// w[c][s] (subset form, |S|=s including u) equals Weights(c)[s-1]
// (predecessor form, |S\{u}| = s−1).
func TestSubsetWeightsMatchWeights(t *testing.T) {
	for c := 1; c <= 10; c++ {
		sub := SubsetWeights(c)[c]
		pred := Weights(c)
		for s := 1; s <= c; s++ {
			if !almostEqual(sub[s], pred[s-1]) {
				t.Fatalf("c=%d s=%d: subset weight %v, predecessor weight %v", c, s, sub[s], pred[s-1])
			}
		}
	}
}
