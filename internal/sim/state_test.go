package sim

import (
	"testing"

	"repro/internal/model"
)

// fifoByID starts the waiting job with the globally smallest ID.
func fifoByID() Policy {
	return &SelectFunc{
		PolicyName: "fifo",
		F: func(v *View, _ model.Time, _ int) int {
			best, bestID := -1, 0
			for org := 0; org < v.Orgs(); org++ {
				if id, _, ok := v.Head(org); ok && (best == -1 || id < bestID) {
					best, bestID = org, id
				}
			}
			return best
		},
	}
}

// Injecting a job whose release precedes already-pending future
// releases must slot it into release order: the injected job (released
// earlier) runs before the batch job that was known from the start.
func TestInjectBeforePendingRelease(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1}},
		[]model.Job{{Org: 0, Release: 20, Size: 2}},
	)
	c := New(in, in.Grand(), fifoByID(), nil)
	c.Run(5)

	in.Jobs = append(in.Jobs, model.Job{ID: 1, Org: 0, Release: 10, Size: 3})
	if err := c.Inject(1); err != nil {
		t.Fatal(err)
	}
	if got := c.NextEventTime(); got != 10 {
		t.Fatalf("next event = %d, want the injected release 10", got)
	}
	c.Run(30)
	starts := c.Starts()
	if len(starts) != 2 {
		t.Fatalf("%d starts, want 2", len(starts))
	}
	if starts[0].Job != 1 || starts[0].At != 10 {
		t.Fatalf("injected job should start first at 10: %+v", starts[0])
	}
	if starts[1].Job != 0 || starts[1].At != 20 {
		t.Fatalf("batch job should start at its release 20: %+v", starts[1])
	}
}

func TestInjectValidation(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1}, {Name: "B", Machines: 0}},
		[]model.Job{{Org: 0, Release: 0, Size: 2}},
	)
	c := New(in, model.Singleton(0), fifoByID(), nil)
	c.Run(6)

	if err := c.Inject(7); err == nil {
		t.Error("unknown job ID accepted")
	}
	in.Jobs = append(in.Jobs, model.Job{ID: 1, Org: 0, Release: 3, Size: 1})
	if err := c.Inject(1); err == nil {
		t.Error("past release accepted")
	}
	// A non-member's job is ignored without error (mirrors New).
	in.Jobs = append(in.Jobs, model.Job{ID: 2, Org: 1, Release: 10, Size: 1})
	if err := c.Inject(2); err != nil {
		t.Errorf("non-member injection errored: %v", err)
	}
	if got := c.NextEventTime(); got != MaxTime {
		t.Errorf("non-member injection created an event at %d", got)
	}
}

// State capture/restore round-trips through an identically built
// cluster: the restored simulation finishes exactly like the original.
func TestCaptureRestoreMidRun(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1, Speeds: []int{2}}, {Name: "B", Machines: 1}},
		[]model.Job{
			{Org: 0, Release: 0, Size: 5},
			{Org: 1, Release: 1, Size: 4},
			{Org: 0, Release: 2, Size: 3},
			{Org: 1, Release: 8, Size: 2},
		},
	)
	run := func(pause model.Time) *Cluster {
		c := New(in, in.Grand(), fifoByID(), nil)
		c.Run(pause)
		st := c.CaptureState()
		restored := New(in, in.Grand(), fifoByID(), nil)
		if err := restored.RestoreState(st); err != nil {
			t.Fatal(err)
		}
		restored.Run(40)
		return restored
	}
	want := New(in, in.Grand(), fifoByID(), nil)
	want.Run(40)
	for pause := model.Time(0); pause <= 12; pause++ {
		got := run(pause)
		if len(got.Starts()) != len(want.Starts()) {
			t.Fatalf("pause %d: %d starts, want %d", pause, len(got.Starts()), len(want.Starts()))
		}
		for i := range want.Starts() {
			if got.Starts()[i] != want.Starts()[i] {
				t.Fatalf("pause %d: start %d = %+v, want %+v", pause, i, got.Starts()[i], want.Starts()[i])
			}
		}
		for org := 0; org < 2; org++ {
			if got.Psi(org) != want.Psi(org) {
				t.Fatalf("pause %d: ψ[%d] = %d, want %d", pause, org, got.Psi(org), want.Psi(org))
			}
		}
		if got.Value() != want.Value() {
			t.Fatalf("pause %d: value %d, want %d", pause, got.Value(), want.Value())
		}
	}
}

func TestRestoreRejectsMismatchedState(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1}, {Name: "B", Machines: 1}},
		[]model.Job{{Org: 0, Release: 0, Size: 1}},
	)
	c := New(in, in.Grand(), fifoByID(), nil)
	st := c.CaptureState()

	other := New(in, model.Singleton(0), fifoByID(), nil)
	if err := other.RestoreState(st); err == nil {
		t.Error("coalition mismatch accepted")
	}
	bad := st
	bad.ReleaseOrder = []int{99}
	if err := c.RestoreState(bad); err == nil {
		t.Error("unknown job in release order accepted")
	}
	bad = st
	bad.Free = nil
	if err := c.RestoreState(bad); err == nil {
		t.Error("machine count mismatch accepted")
	}
	bad = st
	bad.Free = nil
	bad.Running = []RunEntryState{{End: 5, Machine: 0, Job: 999}}
	if err := c.RestoreState(bad); err == nil {
		t.Error("running entry with unknown job accepted")
	}
	bad = st
	bad.Queues = [][]int{nil, {0}} // job 0 belongs to org 0, queued under org 1
	if err := c.RestoreState(bad); err == nil {
		t.Error("job queued under wrong organization accepted")
	}
	bad = st
	bad.Queues = [][]int{{42}, nil}
	if err := c.RestoreState(bad); err == nil {
		t.Error("queue with unknown job accepted")
	}
}
