package utility

import "repro/internal/model"

// Placed is a job with its realized start, used by the classic metrics
// that — unlike ψsp — need release times.
type Placed struct {
	Release model.Time
	Start   model.Time
	Size    model.Time
}

// Completion returns the job's completion time.
func (p Placed) Completion() model.Time { return p.Start + p.Size }

// TotalFlow returns the summed flow time (completion − release) of the
// jobs completed by t. Flow time is the minimization objective the paper
// compares ψsp against (Proposition 4.2); jobs still running at t are
// excluded, mirroring the paper's Figure 2 accounting.
func TotalFlow(placed []Placed, t model.Time) int64 {
	var total int64
	for _, p := range placed {
		if c := p.Completion(); c <= t {
			total += int64(c - p.Release)
		}
	}
	return total
}

// Makespan returns the latest completion time, or 0 for an empty set.
func Makespan(placed []Placed) model.Time {
	var m model.Time
	for _, p := range placed {
		if c := p.Completion(); c > m {
			m = c
		}
	}
	return m
}

// BusyUnits returns the number of machine·time units consumed before t:
// the total executed unit slots across the placed jobs.
func BusyUnits(placed []Placed, t model.Time) int64 {
	var total int64
	for _, p := range placed {
		total += ExecutedUnits(p.Start, p.Size, t)
	}
	return total
}

// Utilization returns the fraction of machine capacity m·t used before t
// (Definition in Section 6 of the paper). It returns 0 for t == 0 or
// machines == 0.
func Utilization(placed []Placed, machines int, t model.Time) float64 {
	if machines <= 0 || t <= 0 {
		return 0
	}
	return float64(BusyUnits(placed, t)) / (float64(machines) * float64(t))
}

// TotalTardiness returns Σ max(0, completion − due) over jobs completed
// by t, with a single due date offset applied to each job's release
// (release + slack). The paper lists tardiness as an alternative utility;
// it is provided for completeness of the metric suite.
func TotalTardiness(placed []Placed, slack, t model.Time) int64 {
	var total int64
	for _, p := range placed {
		if c := p.Completion(); c <= t {
			if late := c - (p.Release + slack); late > 0 {
				total += int64(late)
			}
		}
	}
	return total
}
