// Examples smoke harness: every examples/* main must build and run to
// completion within a small budget, so the demos cannot silently rot
// as the packages underneath them evolve. The examples are tiny by
// design (sub-second runs); the generous timeout only guards against
// hangs. Run by plain `go test` at the module root and therefore by
// the CI race job.
package repro_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke spawns the go tool; skipped in -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if _, err := os.Stat(filepath.Join("examples", name, "main.go")); err != nil {
			continue
		}
		ran++
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, "go", "run", "./examples/"+name)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("example %s exceeded its time budget", name)
			}
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", name)
			}
		})
	}
	if ran < 6 {
		t.Fatalf("smoke ran %d examples; the repo ships at least 6", ran)
	}
}
