// Package shapley implements generic Shapley-value machinery over
// transferable-utility cooperative games: the exact subset formula
// (Equation 1 of the paper), the permutation formulation (Equation 2),
// Monte-Carlo sampling over orderings (the basis of Algorithm RAND), and
// a parallel exact evaluator.
//
// Values are float64 because Shapley weights are fractional even when the
// characteristic function is integral.
package shapley

import (
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/model"
)

// Game is a characteristic-function game over n players. Value must be
// defined for every coalition mask over players 0..n-1 with Value(∅) = 0.
// Implementations must be safe for concurrent Value calls if used with
// ExactParallel.
type Game interface {
	Players() int
	Value(c model.Coalition) float64
}

// MapGame is an in-memory game backed by a dense table indexed by
// coalition mask. It implements Game.
type MapGame struct {
	N      int
	Values []float64 // length 1<<N, Values[0] must be 0
}

// NewMapGame allocates a zero game over n players.
func NewMapGame(n int) *MapGame {
	return &MapGame{N: n, Values: make([]float64, 1<<uint(n))}
}

// Players implements Game.
func (g *MapGame) Players() int { return g.N }

// Value implements Game.
func (g *MapGame) Value(c model.Coalition) float64 { return g.Values[c] }

// Set assigns the coalition's value.
func (g *MapGame) Set(c model.Coalition, v float64) { g.Values[c] = v }

// FuncGame adapts a plain function to the Game interface.
type FuncGame struct {
	N int
	F func(model.Coalition) float64
}

// Players implements Game.
func (g FuncGame) Players() int { return g.N }

// Value implements Game.
func (g FuncGame) Value(c model.Coalition) float64 { return g.F(c) }

// Weights returns the Shapley subset weights for an n-player game:
// w[s] = s!·(n−s−1)!/n! — the weight of a marginal contribution to a
// predecessor coalition of size s (Equation 1).
func Weights(n int) []float64 {
	w := make([]float64, n)
	// w[s] = s!(n-s-1)!/n!. Computed iteratively to avoid factorial
	// overflow: w[0] = (n-1)!/n! = 1/n; w[s+1] = w[s]·(s+1)/(n-s-1).
	w[0] = 1 / float64(n)
	for s := 0; s+1 < n; s++ {
		w[s+1] = w[s] * float64(s+1) / float64(n-s-1)
	}
	return w
}

// tabulate evaluates the game on every coalition once.
func tabulate(g Game) []float64 {
	n := g.Players()
	vals := make([]float64, 1<<uint(n))
	for mask := model.Coalition(1); int(mask) < len(vals); mask++ {
		vals[mask] = g.Value(mask)
	}
	return vals
}

// Exact computes the Shapley value of every player by the subset formula
// (Equation 1). Cost: O(n·2ⁿ) plus 2ⁿ Value evaluations.
func Exact(g Game) []float64 {
	return exactFromTable(g.Players(), tabulate(g))
}

func exactFromTable(n int, vals []float64) []float64 {
	w := Weights(n)
	phi := make([]float64, n)
	for mask := 0; mask < len(vals); mask++ {
		c := model.Coalition(mask)
		s := c.Size()
		if s == n {
			continue
		}
		weight := w[s]
		for u := 0; u < n; u++ {
			if !c.Has(u) {
				phi[u] += weight * (vals[c.With(u)] - vals[c])
			}
		}
	}
	return phi
}

// ExactParallel is Exact with the subset loop fanned out over workers
// (0 means GOMAXPROCS). Results are deterministic: each worker owns a
// disjoint mask range and partial vectors are summed in worker order.
func ExactParallel(g Game, workers int) []float64 {
	n := g.Players()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	vals := tabulate(g)
	if workers == 1 || len(vals) < 1024 {
		return exactFromTable(n, vals)
	}
	w := Weights(n)
	partials := make([][]float64, workers)
	var wg sync.WaitGroup
	chunk := (len(vals) + workers - 1) / workers
	for i := 0; i < workers; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(vals) {
			hi = len(vals)
		}
		partials[i] = make([]float64, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(out []float64, lo, hi int) {
			defer wg.Done()
			for mask := lo; mask < hi; mask++ {
				c := model.Coalition(mask)
				s := c.Size()
				if s == n {
					continue
				}
				weight := w[s]
				for u := 0; u < n; u++ {
					if !c.Has(u) {
						out[u] += weight * (vals[c.With(u)] - vals[c])
					}
				}
			}
		}(partials[i], lo, hi)
	}
	wg.Wait()
	phi := make([]float64, n)
	for _, p := range partials {
		for u := range phi {
			phi[u] += p[u]
		}
	}
	return phi
}

// Marginals returns the marginal-contribution vector of one ordering
// (the inner term of Equation 2): player perm[i] receives
// v(perm[0..i]) − v(perm[0..i−1]).
func Marginals(g Game, perm []int) []float64 {
	phi := make([]float64, g.Players())
	var c model.Coalition
	prev := 0.0
	for _, u := range perm {
		c = c.With(u)
		cur := g.Value(c)
		phi[u] = cur - prev
		prev = cur
	}
	return phi
}

// Sample estimates the Shapley value as the average marginal vector over
// n random orderings (the estimator of Liben-Nowell et al. adapted in
// Theorem 5.6). The estimate is unbiased for any game.
func Sample(g Game, samples int, r *rand.Rand) []float64 {
	k := g.Players()
	phi := make([]float64, k)
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	for s := 0; s < samples; s++ {
		r.Shuffle(k, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		m := Marginals(g, perm)
		for u := range phi {
			phi[u] += m[u]
		}
	}
	if samples > 0 {
		for u := range phi {
			phi[u] /= float64(samples)
		}
	}
	return phi
}

// SampleSize returns the number of permutations N the FPRAS of Theorem
// 5.6 prescribes for k players, accuracy ε and confidence λ:
// N = ⌈k²/ε² · ln(k/(1−λ))⌉.
func SampleSize(k int, eps, lambda float64) int {
	if k <= 0 || eps <= 0 || lambda <= 0 || lambda >= 1 {
		panic("shapley: invalid FPRAS parameters")
	}
	n := float64(k) * float64(k) / (eps * eps) * math.Log(float64(k)/(1-lambda))
	if n < 1 {
		return 1
	}
	return int(n) + 1
}
