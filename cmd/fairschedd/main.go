// Command fairschedd is the serving daemon: it holds one incremental
// scheduling run open and accepts job submissions over HTTP/JSON,
// streaming scheduling decisions back as the clock is advanced.
//
//	fairschedd -addr :8080 -alg ref -orgs 3 -machines 6
//
// Jobs arrive online (the machine pool is fixed at startup, the job
// list starts empty), the engine clock advances on request, and the
// full deterministic state can be checkpointed and restored through
// the API or preloaded at boot:
//
//	curl -X POST localhost:8080/v1/jobs -d '{"jobs":[{"org":0,"size":5}]}'
//	curl -X POST localhost:8080/v1/advance -d '{"until":100}'
//	curl localhost:8080/v1/state
//	curl localhost:8080/v1/checkpoint > run.ckpt
//	fairschedd -addr :8080 -alg ref -orgs 3 -machines 6 -restore run.ckpt
//
// See internal/engine for the endpoint reference.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/model"
	"repro/internal/stats"
)

func main() {
	srv, addr, err := build(os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	fail(err)
	fmt.Fprintf(os.Stderr, "fairschedd: serving on %s\n", addr)
	fail(http.ListenAndServe(addr, srv.Handler()))
}

// build constructs the server from command-line arguments; split from
// main so the smoke tests exercise the full boot path without binding
// a socket.
func build(args []string, stderr io.Writer) (*engine.Server, string, error) {
	fs := flag.NewFlagSet("fairschedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8080", "HTTP listen address")
		algName  = fs.String("alg", "ref", "algorithm: ref, rand, directcontr, fairshare, utfairshare, currfairshare, roundrobin, fcfs")
		orgs     = fs.Int("orgs", 3, "number of organizations")
		machines = fs.Int("machines", 0, "total machines (0 = #orgs)")
		split    = fs.String("split", "zipf", "machine split among organizations: zipf | uniform")
		seed     = fs.Int64("seed", 1, "random seed")
		samples  = fs.Int("rand-n", 15, "RAND sample count")
		strat    = fs.Bool("rand-stratified", false, "RAND: draw permutations in position-stratified rotations")
		workers  = fs.Int("workers", 0, "worker goroutines for REF/RAND parallel paths (0 = GOMAXPROCS)")
		driver   = fs.String("ref-driver", "heap", "REF event loop: heap or scan")
		restore  = fs.String("restore", "", "checkpoint file to resume from")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil, "", err
		}
		// The FlagSet already printed the error and usage to stderr.
		return nil, "", errors.New("invalid arguments")
	}
	refDriver, err := core.ParseRefDriver(*driver)
	if err != nil {
		return nil, "", err
	}
	alg, err := exp.AlgorithmByName(*algName, *samples,
		core.RefOptions{Parallel: true, Workers: *workers, Driver: refDriver},
		core.RandOptions{Workers: *workers, Stratified: *strat})
	if err != nil {
		return nil, "", err
	}
	stepper, ok := alg.(core.StepperAlgorithm)
	if !ok {
		return nil, "", fmt.Errorf("algorithm %q cannot run incrementally", alg.Name())
	}

	var e *engine.Engine
	if *restore != "" {
		data, err := os.ReadFile(*restore)
		if err != nil {
			return nil, "", err
		}
		if e, err = engine.Restore(stepper, data); err != nil {
			return nil, "", err
		}
		fmt.Fprintf(stderr, "fairschedd: restored %s at t=%d with %d jobs\n",
			stepper.Name(), e.Now(), len(e.Instance().Jobs))
	} else {
		if *orgs < 1 {
			return nil, "", fmt.Errorf("need at least one organization")
		}
		total := *machines
		if total <= 0 {
			total = *orgs
		}
		var splits []int
		if *split == "uniform" {
			splits = stats.UniformSplit(total, *orgs)
		} else {
			splits = stats.ZipfSplit(total, *orgs, 1)
		}
		orgList := make([]model.Org, *orgs)
		for i := range orgList {
			orgList[i] = model.Org{Name: fmt.Sprintf("org%d", i), Machines: splits[i]}
		}
		inst, err := model.NewInstance(orgList, nil)
		if err != nil {
			return nil, "", err
		}
		e = engine.New(stepper, inst, *seed)
	}
	return engine.NewServer(e), *addr, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fairschedd:", err)
		os.Exit(1)
	}
}
