// Package metrics computes the paper's fairness measure: the Manhattan
// distance between an algorithm's utility vector and the reference fair
// vector, normalized by the executed unit parts of the reference
// schedule. Δψ/p_tot reads as "the average unjustified delay (or
// speed-up) of a job due to the unfairness of the algorithm"
// (Section 7.2).
package metrics

import "fmt"

// DeltaPsi returns ‖ψ−ψ*‖₁.
func DeltaPsi(psi, ref []int64) int64 {
	if len(psi) != len(ref) {
		panic(fmt.Sprintf("metrics: vector lengths differ: %d vs %d", len(psi), len(ref)))
	}
	var d int64
	for i := range psi {
		diff := psi[i] - ref[i]
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return d
}

// UnfairnessPerUnit returns Δψ/p_tot — the table metric. p_tot must be
// the executed unit parts of the reference schedule; 0 yields 0 (an
// empty experiment is perfectly fair).
func UnfairnessPerUnit(psi, ref []int64, ptot int64) float64 {
	if ptot <= 0 {
		return 0
	}
	return float64(DeltaPsi(psi, ref)) / float64(ptot)
}

// RelativeUnfairness returns Δψ/‖ψ*‖₁ — the α of the approximation
// definition (Definition 5.2).
func RelativeUnfairness(psi, ref []int64) float64 {
	var norm int64
	for _, p := range ref {
		norm += p
	}
	if norm <= 0 {
		return 0
	}
	return float64(DeltaPsi(psi, ref)) / float64(norm)
}
