package fed_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/model"
)

// TestFederatedSteadyStateStepAllocFree extends the zero-alloc budget
// of core.TestSteadyStateStepAllocFree one layer up: once every pending
// release has been routed, a plane-off sequential federation steps
// through pure-completion events without allocating — fill is a nil
// check, the pending sort is a clean-flag check, member advances run
// out of the engines' preallocated scratch, and the decision log grows
// only when something starts. The parallel path is exempt by design
// (fan-out spawns goroutines), as is the control plane.
func TestFederatedSteadyStateStepAllocFree(t *testing.T) {
	const (
		clusters = 2
		orgs     = 2
		perOrg   = 60 // machines = jobs per (cluster, org): everything starts at 0
	)
	specs := make([]fed.ClusterSpec, clusters)
	for c := range specs {
		specs[c] = fed.ClusterSpec{
			Name:     fmt.Sprintf("site%d", c),
			Alg:      core.RefAlgorithm{},
			Machines: []int{perOrg, perOrg},
		}
	}
	f, err := fed.New([]string{"a", "b"}, specs, fed.LocalOnly{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Globally unique sizes: one completion event per instant, so every
	// measured StepToNextEvent processes real work.
	size := model.Time(1)
	for c := 0; c < clusters; c++ {
		for o := 0; o < orgs; o++ {
			for j := 0; j < perOrg; j++ {
				if _, err := f.Submit(c, o, size, 0); err != nil {
					t.Fatal(err)
				}
				size++
			}
		}
	}
	if _, err := f.Step(0); err != nil {
		t.Fatal(err)
	}
	if got, want := len(f.Decisions()), clusters*orgs*perOrg; got != want {
		t.Fatalf("%d jobs started at t=0, want %d — the steady loop would not be pure completions", got, want)
	}
	for i := 0; i < 3; i++ { // settle any lazily sized scratch
		if _, ok, err := f.StepToNextEvent(); err != nil || !ok {
			t.Fatalf("warmup step %d: ok=%v err=%v", i, ok, err)
		}
	}
	if avg := testing.AllocsPerRun(150, func() {
		if _, _, err := f.StepToNextEvent(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("steady-state federated StepToNextEvent allocates %.2f times per run, budget is 0", avg)
	}
	// The budget only means something if events never ran dry.
	if _, ok, err := f.StepToNextEvent(); err != nil || !ok {
		t.Fatalf("events drained during measurement: ok=%v err=%v", ok, err)
	}
}
