// Command fairschedd is the serving daemon: one process holds many
// concurrent scheduling runs open — single-cluster engine runs and
// federated multi-cluster runs — managed as sessions over HTTP/JSON.
//
//	fairschedd -addr :8080 -alg ref -orgs 3 -machines 6
//
// The flags above boot a classic single run as the session named
// "default", served both at /v1/sessions/default/... and at the
// legacy single-run paths (/v1/jobs, /v1/advance, ...). Further
// sessions — including federations — are created at runtime:
//
//	curl -X POST localhost:8080/v1/sessions -d '{"id":"f1","kind":"federation",
//	  "org_names":["a","b"],"policy":"fairness",
//	  "clusters":[{"name":"east","alg":"ref","machines":[2,0]},
//	              {"name":"west","alg":"directcontr","machines":[0,2]}]}'
//	curl -X POST localhost:8080/v1/sessions/f1/jobs -d '{"jobs":[{"cluster":0,"org":0,"size":5}]}'
//	curl -X POST localhost:8080/v1/sessions/f1/advance -d '{"until":100}'
//	curl localhost:8080/v1/sessions/f1/state
//
// Persistence: with -checkpoint-dir, session state lives in a
// crash-safe disk store (atomic temp-file + rename envelope writes).
// A SIGINT/SIGTERM triggers a graceful shutdown that flushes a final
// checkpoint envelope for every live session before exit, and the next
// boot with the same directory resumes them all — corrupt envelopes
// are quarantined as "<name>.corrupt" and reported instead of blocking
// the boot. -flush-interval additionally flushes dirty sessions in the
// background at that period, bounding what a hard crash can lose to
// one interval per session. -restore preloads the default session from
// a raw engine checkpoint (the pre-session format).
//
// Serving: with -pipeline-workers N, advance requests run through the
// async serving pipeline — requests enqueue onto the session table's
// shard stripes and N workers batch many sessions per wakeup, with
// -pipeline-burst capping how many advances one hot session may
// consume per pass before the rest of its stripe is served.
//
// See internal/daemon for the endpoint reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/ctrl"
	"repro/internal/daemon"
	"repro/internal/model"
)

// app is a built daemon: the session manager plus the serving options.
type app struct {
	srv     *daemon.Server
	addr    string
	ckptDir string
	store   daemon.CheckpointStore
	flusher *daemon.Flusher
	pipe    *daemon.Pipeline
}

func main() {
	a, err := build(os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	fail(err)
	httpSrv := &http.Server{Addr: a.addr, Handler: a.srv.Handler()}
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		<-sig
		a.shutdown(httpSrv, os.Stderr)
	}()
	fmt.Fprintf(os.Stderr, "fairschedd: serving on %s\n", a.addr)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	<-done
}

// shutdown drains the HTTP server, stops the background flusher and
// the advance pipeline, then flushes a final checkpoint for every live
// session (when a checkpoint directory is configured) so no run state
// is lost on SIGINT/SIGTERM.
func (a *app) shutdown(httpSrv *http.Server, stderr io.Writer) {
	fmt.Fprintln(stderr, "fairschedd: shutting down")
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, "fairschedd: http shutdown:", err)
		}
	}
	if a.flusher != nil {
		a.flusher.Stop()
	}
	if a.pipe != nil {
		a.pipe.Close()
	}
	if a.store == nil {
		return
	}
	ids, err := a.srv.Manager().FlushTo(a.store, false)
	if err != nil {
		fmt.Fprintln(stderr, "fairschedd: final checkpoint flush:", err)
	}
	fmt.Fprintf(stderr, "fairschedd: flushed %d session checkpoint(s) to %s\n", len(ids), a.ckptDir)
}

// build constructs the daemon from command-line arguments; split from
// main so tests exercise the full boot path — including session
// reload — without binding a socket.
func build(args []string, stderr io.Writer) (*app, error) {
	fs := flag.NewFlagSet("fairschedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8080", "HTTP listen address")
		algName  = fs.String("alg", "ref", "default session algorithm: ref, rand, directcontr, fairshare, utfairshare, currfairshare, roundrobin, fcfs")
		orgs     = fs.Int("orgs", 3, "default session: number of organizations")
		machines = fs.Int("machines", 0, "default session: total machines (0 = #orgs)")
		split    = fs.String("split", "zipf", "default session machine split: zipf | uniform")
		seed     = fs.Int64("seed", 1, "default session random seed")
		samples  = fs.Int("rand-n", 15, "RAND sample count")
		strat    = fs.Bool("rand-stratified", false, "RAND: draw permutations in position-stratified rotations")
		workers  = fs.Int("workers", 0, "worker goroutines for REF/RAND parallel paths (0 = GOMAXPROCS)")
		fedW     = fs.Int("fed-workers", 1, "federation data-plane goroutines per session (applied to federation sessions created without an explicit fed_workers; results are identical at any width)")
		driver   = fs.String("ref-driver", "heap", "REF event loop: heap or scan")
		restore  = fs.String("restore", "", "engine checkpoint file to resume the default session from")
		admPol   = fs.String("admission", "", "default session admission policy: always | tokenbucket | backpressure (empty = no admission gate)")
		admRate  = fs.Int64("admission-rate", 1, "token bucket: jobs admitted per period")
		admPer   = fs.Int64("admission-period", 1, "token bucket: refill period in simulation ticks")
		admBurst = fs.Int64("admission-burst", 1, "token bucket: burst capacity in jobs")
		admSize  = fs.Bool("admission-size-cost", false, "token bucket: charge tokens proportional to job size")
		admWait  = fs.Int("admission-max-waiting", 0, "backpressure: defer admissions while this many jobs wait (0 = admit only an empty queue)")
		admRetry = fs.Int64("admission-retry-after", 1, "backpressure: ticks until a deferred admission retries")
		admMax   = fs.Int("admission-max-attempts", 0, "admission retries before a deferred job is rejected (0 = unbounded)")
		admStale = fs.Int64("admission-staleness", 0, "admission gate: max age of the load view decisions observe (0 = fresh)")
		ckptDir  = fs.String("checkpoint-dir", "", "directory for session checkpoints: reloaded at boot, flushed on graceful shutdown")
		flushInt = fs.Duration("flush-interval", 0, "background flush period for dirty sessions (0 = flush only at shutdown; needs -checkpoint-dir)")
		pipeW    = fs.Int("pipeline-workers", 0, "async advance pipeline workers (0 = advance synchronously in the handler)")
		pipeB    = fs.Int("pipeline-burst", 0, "per-session advances per pipeline pass before other sessions are served (0 = default)")
		noDef    = fs.Bool("no-default-session", false, "start with an empty session table (sessions created via the API only)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil, err
		}
		// The FlagSet already printed the error and usage to stderr.
		return nil, errors.New("invalid arguments")
	}
	if *flushInt < 0 || *pipeW < 0 || *pipeB < 0 {
		return nil, fmt.Errorf("-flush-interval, -pipeline-workers and -pipeline-burst must be non-negative")
	}
	if *flushInt > 0 && *ckptDir == "" {
		return nil, fmt.Errorf("-flush-interval needs -checkpoint-dir")
	}
	mgr := daemon.NewManager()
	// Before LoadStore: reloaded federation envelopes that never pinned
	// a width pick up the process default too.
	mgr.SetDefaultFedWorkers(*fedW)
	var store daemon.CheckpointStore
	if *ckptDir != "" {
		store = daemon.NewDirStore(*ckptDir)
		mgr.SetStore(store)
		ids, quarantined, err := mgr.LoadStore(store)
		if err != nil {
			return nil, err
		}
		for _, q := range quarantined {
			fmt.Fprintf(stderr, "fairschedd: quarantined corrupt envelope %s: %v\n", q.ID, q.Err)
		}
		if len(ids) > 0 {
			fmt.Fprintf(stderr, "fairschedd: restored session(s) %s from %s\n", strings.Join(ids, ", "), *ckptDir)
		}
	}
	if _, exists := mgr.Get(daemon.DefaultSession); !exists && !*noDef {
		if *orgs < 1 {
			return nil, fmt.Errorf("need at least one organization")
		}
		cfg := daemon.SessionConfig{
			Kind:        daemon.KindSingle,
			Alg:         *algName,
			Orgs:        *orgs,
			Machines:    *machines,
			Split:       *split,
			Seed:        *seed,
			RandSamples: *samples,
			Stratified:  *strat,
			RefDriver:   *driver,
			Workers:     *workers,
		}
		if *admPol != "" {
			cfg.Admission = &ctrl.PolicySpec{
				Policy:      *admPol,
				Rate:        *admRate,
				Period:      model.Time(*admPer),
				Burst:       *admBurst,
				SizeCost:    *admSize,
				MaxWaiting:  *admWait,
				RetryAfter:  model.Time(*admRetry),
				MaxAttempts: *admMax,
				Staleness:   model.Time(*admStale),
			}
		}
		sess, err := mgr.Create(daemon.DefaultSession, cfg)
		if err != nil {
			return nil, err
		}
		if *restore != "" {
			data, err := os.ReadFile(*restore)
			if err != nil {
				return nil, err
			}
			if err := sess.Restore(data); err != nil {
				return nil, err
			}
			st := sess.State()
			fmt.Fprintf(stderr, "fairschedd: restored %s at t=%d with %d jobs\n", st.Algorithm, st.Now, st.Jobs)
		}
	} else if *restore != "" {
		// -restore targets a fresh default session only: refusing beats
		// silently serving a -checkpoint-dir state the operator did not
		// ask for (or dropping the file under -no-default-session).
		return nil, fmt.Errorf("-restore conflicts with an existing %q session (reloaded from -checkpoint-dir?) or -no-default-session", daemon.DefaultSession)
	}
	a := &app{srv: daemon.NewServer(mgr), addr: *addr, ckptDir: *ckptDir, store: store}
	a.srv.SetLogf(func(format string, args ...any) {
		fmt.Fprintf(stderr, "fairschedd: "+format+"\n", args...)
	})
	if *pipeW > 0 {
		a.pipe = daemon.NewPipeline(daemon.PipelineOptions{Workers: *pipeW, Burst: *pipeB})
		a.srv.UsePipeline(a.pipe)
	}
	if *flushInt > 0 {
		a.flusher = daemon.StartFlusher(mgr, store, *flushInt, func(format string, args ...any) {
			fmt.Fprintf(stderr, "fairschedd: "+format+"\n", args...)
		})
	}
	return a, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fairschedd:", err)
		os.Exit(1)
	}
}
