package exp

import (
	"repro/internal/baseline"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/utility"
	"repro/internal/vis"
)

// Figure2Result carries the worked utility example of the paper's
// Figure 2: the exact schedule, its ψsp values at t=13 and t=14, the
// flow time, and a rendered Gantt chart.
type Figure2Result struct {
	Instance *model.Instance
	Starts   []sim.Start
	Psi13    int64
	Psi14    int64
	Flow14   int64
	Gantt    string
	Legend   string
}

// Figure2 reconstructs the Figure 2 schedule (the unique layout
// consistent with every number in the caption) and evaluates it.
func Figure2() Figure2Result {
	in := model.MustNewInstance(
		[]model.Org{{Name: "O1", Machines: 2}, {Name: "O2", Machines: 1}},
		[]model.Job{
			{Org: 0, Release: 0, Size: 3}, // J1
			{Org: 0, Release: 0, Size: 4}, // J2
			{Org: 0, Release: 0, Size: 3}, // J3
			{Org: 0, Release: 0, Size: 6}, // J4
			{Org: 0, Release: 0, Size: 3}, // J5
			{Org: 0, Release: 0, Size: 6}, // J6
			{Org: 0, Release: 0, Size: 3}, // J7
			{Org: 0, Release: 0, Size: 3}, // J8
			{Org: 0, Release: 0, Size: 4}, // J9
			{Org: 1, Release: 0, Size: 5}, // J^(2)_1
		},
	)
	starts := []sim.Start{
		{Job: 0, Org: 0, Machine: 0, At: 0},
		{Job: 1, Org: 0, Machine: 1, At: 0},
		{Job: 2, Org: 0, Machine: 2, At: 0},
		{Job: 3, Org: 0, Machine: 0, At: 3},
		{Job: 4, Org: 0, Machine: 2, At: 3},
		{Job: 5, Org: 0, Machine: 1, At: 4},
		{Job: 7, Org: 0, Machine: 2, At: 6},
		{Job: 9, Org: 1, Machine: 0, At: 9},
		{Job: 6, Org: 0, Machine: 2, At: 9},
		{Job: 8, Org: 0, Machine: 1, At: 10},
	}
	var execs []utility.Execution
	var placed []utility.Placed
	for _, s := range starts {
		if s.Org != 0 {
			continue
		}
		j := in.Jobs[s.Job]
		execs = append(execs, utility.Execution{Start: s.At, Size: j.Size})
		placed = append(placed, utility.Placed{Release: j.Release, Start: s.At, Size: j.Size})
	}
	return Figure2Result{
		Instance: in,
		Starts:   starts,
		Psi13:    utility.Psi(execs, 13),
		Psi14:    utility.Psi(execs, 14),
		Flow14:   utility.TotalFlow(placed, 14),
		Gantt:    vis.Gantt(in, starts, 3, 14, 80),
		Legend:   vis.Legend(in, starts),
	}
}

// Figure7Result carries the greedy-utilization gap example: the same
// instance scheduled O2-first (perfect packing) and O1-first (the tight
// 3/4 witness of Theorem 6.2).
type Figure7Result struct {
	Instance           *model.Instance
	UtilizationO2First float64
	UtilizationO1First float64
	GanttO2First       string
	GanttO1First       string
}

// Figure7 runs the paper's Figure 7 instance both ways and reports the
// utilizations at T=6 (1.00 and 0.75).
func Figure7() Figure7Result {
	build := func() *model.Instance {
		return model.MustNewInstance(
			[]model.Org{{Name: "O1", Machines: 2}, {Name: "O2", Machines: 2}},
			[]model.Job{
				{Org: 0, Release: 0, Size: 3},
				{Org: 0, Release: 0, Size: 3},
				{Org: 0, Release: 0, Size: 3},
				{Org: 0, Release: 0, Size: 3},
				{Org: 1, Release: 0, Size: 6},
				{Org: 1, Release: 0, Size: 6},
			},
		)
	}
	const T = 6
	a := sim.New(build(), model.Grand(2), baseline.NewPriority(1, 0), nil)
	a.Run(T)
	b := sim.New(build(), model.Grand(2), baseline.NewPriority(0, 1), nil)
	b.Run(T)
	return Figure7Result{
		Instance:           build(),
		UtilizationO2First: a.Utilization(),
		UtilizationO1First: b.Utilization(),
		GanttO2First:       vis.Gantt(a.Instance(), a.Starts(), 4, T, 80),
		GanttO1First:       vis.Gantt(b.Instance(), b.Starts(), 4, T, 80),
	}
}
