package fed

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Summary is one member cluster's exported state at a routing instant —
// the information clusters exchange in the federated model. It contains
// queue backlog and capacity (the load signals) and the cluster's
// per-organization ψ and φ vectors (the fairness signals); job sizes
// are never part of it, keeping delegation non-clairvoyant.
type Summary struct {
	Cluster     int
	Now         model.Time
	Waiting     int   // jobs fed to the cluster but not yet started
	Capacity    int64 // total work units per time unit at this cluster
	OrgCapacity []int64
	Psi         []int64   // per-org ψsp earned at this cluster
	Phi         []float64 // per-org contribution estimate; nil when the algorithm computes none
	Value       int64     // Σ ψ — the cluster's coalition value
	Executed    int64     // executed unit slots
	Utilization float64
}

// Policy decides, at a job's release instant, which member cluster
// executes it. Route receives the owning organization, the origin
// cluster, and the freshly exchanged summaries of every member;
// implementations must be deterministic pure functions of their
// arguments (the federation's determinism and checkpoint guarantees
// depend on it) and must return a valid cluster index.
type Policy interface {
	Name() string
	Route(org, origin int, sums []Summary) int
}

// LocalOnly never delegates: every job runs at its origin cluster.
// This is the no-federation baseline the other policies are measured
// against.
type LocalOnly struct{}

// Name implements Policy.
func (LocalOnly) Name() string { return "local" }

// Route implements Policy.
func (LocalOnly) Route(_, origin int, _ []Summary) int { return origin }

// LeastLoaded delegates greedily to the cluster with the smallest queue
// backlog per unit of capacity — classic load balancing, blind to
// fairness. Backlog counts waiting jobs, not work (sizes are unknown
// until completion). Ties prefer the origin cluster, then the lowest
// index, so routing is deterministic.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "leastloaded" }

// Route implements Policy.
func (LeastLoaded) Route(_, origin int, sums []Summary) int {
	best := origin
	for i := range sums {
		if i == origin {
			continue
		}
		// waiting_i/cap_i < waiting_best/cap_best, cross-multiplied to
		// stay in exact integer arithmetic.
		if int64(sums[i].Waiting)*sums[best].Capacity < int64(sums[best].Waiting)*sums[i].Capacity {
			best = i
		}
	}
	return best
}

// FairnessAware delegates by contribution credit, the federated analogue
// of REF's largest-deficit rule: the job of organization o goes to the
// cluster where o's deficit — its contribution minus what it has
// consumed — is largest, i.e. where the federation owes o the most
// service. The deficit at cluster c is φ_c[o] − ψ_c[o] when the
// cluster's algorithm exchanges contribution estimates (REF's exact
// Shapley φ, RAND's sampled estimate, DIRECTCONTR's direct one);
// otherwise the capacity-proportional entitlement
// (cap_c[o]/cap_c)·v_c − ψ_c[o] stands in for it. Ties prefer the
// origin cluster, then the lowest index.
type FairnessAware struct{}

// Name implements Policy.
func (FairnessAware) Name() string { return "fairness" }

// Route implements Policy.
func (FairnessAware) Route(org, origin int, sums []Summary) int {
	best, bestDeficit := origin, deficit(org, sums[origin])
	for i := range sums {
		if i == origin {
			continue
		}
		if d := deficit(org, sums[i]); d > bestDeficit {
			best, bestDeficit = i, d
		}
	}
	return best
}

// deficit is organization org's contribution credit at the summarized
// cluster: estimated contribution minus consumed ψ.
func deficit(org int, s Summary) float64 {
	contr := float64(0)
	if s.Phi != nil {
		contr = s.Phi[org]
	} else if s.Capacity > 0 {
		contr = float64(s.OrgCapacity[org]) / float64(s.Capacity) * float64(s.Value)
	}
	return contr - float64(s.Psi[org])
}

// PolicyByName resolves a delegation policy from its wire name.
func PolicyByName(name string) (Policy, error) {
	switch strings.ToLower(name) {
	case "local", "localonly", "local-only":
		return LocalOnly{}, nil
	case "leastloaded", "least-loaded", "greedy":
		return LeastLoaded{}, nil
	case "fairness", "fairness-aware", "fair":
		return FairnessAware{}, nil
	default:
		return nil, fmt.Errorf("fed: unknown delegation policy %q (want local, leastloaded or fairness)", name)
	}
}
