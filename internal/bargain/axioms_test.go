package bargain

import (
	"math"
	"math/rand"
	"testing"
)

// The Nash bargaining axiom battery, mirroring the Shapley axiom suites
// (internal/shapley): randomized problems are solved and the four NBS
// axioms checked on each — Pareto optimality, individual rationality,
// symmetry, and independence of irrelevant alternatives. Problems are
// drawn with random weights, disagreement points and caps, plus the
// degenerate single-agent games the issue calls out.

const axiomTol = 1e-7

// randomProblem draws a feasible problem: Σd ≤ C by construction.
func randomProblem(rng *rand.Rand) (w, d, maxs []float64, capacity float64) {
	n := 1 + rng.Intn(7)
	w = make([]float64, n)
	d = make([]float64, n)
	maxs = make([]float64, n)
	sumD := 0.0
	for i := 0; i < n; i++ {
		if rng.Intn(5) == 0 {
			w[i] = 0 // some agents carry no bargaining weight
		} else {
			w[i] = 1 + rng.Float64()*9
		}
		d[i] = rng.Float64() * 50
		sumD += d[i]
		if rng.Intn(3) == 0 {
			maxs[i] = math.Inf(1)
		} else {
			maxs[i] = d[i] + rng.Float64()*60
		}
	}
	capacity = sumD + rng.Float64()*100
	return
}

func checkAxioms(t *testing.T, trial int, w, d, maxs []float64, capacity float64, x []float64) {
	t.Helper()
	n := len(w)

	// Individual rationality: nobody falls below their outside option.
	for i := 0; i < n; i++ {
		if x[i] < d[i]-axiomTol {
			t.Fatalf("trial %d: IR violated: x[%d] = %v < d[%d] = %v", trial, i, x[i], i, d[i])
		}
		if x[i] > maxs[i]+axiomTol {
			t.Fatalf("trial %d: cap violated: x[%d] = %v > max[%d] = %v", trial, i, x[i], i, maxs[i])
		}
	}

	// Pareto optimality: no agent can be improved without hurting
	// another — the capacity is exhausted, or every agent that could
	// still absorb surplus (positive weight, below its cap) is pinned.
	sumX := 0.0
	for _, v := range x {
		sumX += v
	}
	if sumX > capacity+axiomTol {
		t.Fatalf("trial %d: capacity exceeded: Σx = %v > C = %v", trial, sumX, capacity)
	}
	if sumX < capacity-axiomTol {
		for i := 0; i < n; i++ {
			if w[i] > 0 && x[i] < maxs[i]-axiomTol {
				t.Fatalf("trial %d: Pareto violated: slack %v left while agent %d (w=%v) sits below its cap (%v < %v)",
					trial, capacity-sumX, i, w[i], x[i], maxs[i])
			}
		}
	}

	// Symmetry: identical agents receive identical allocations.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if w[i] == w[j] && d[i] == d[j] && maxs[i] == maxs[j] {
				if math.Abs(x[i]-x[j]) > axiomTol {
					t.Fatalf("trial %d: symmetry violated: agents %d and %d are identical but x = %v vs %v",
						trial, i, j, x[i], x[j])
				}
			}
		}
	}
}

func TestAxiomsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s Solver
	for trial := 0; trial < 500; trial++ {
		w, d, maxs, capacity := randomProblem(rng)
		x := make([]float64, len(w))
		if err := s.SolveInto(x, w, d, maxs, capacity); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkAxioms(t, trial, w, d, maxs, capacity, x)
	}
}

// Weighted symmetry: doubling an agent's weight can only raise its
// surplus share, and equal-weight agents split surplus equally even
// when their disagreement points differ.
func TestWeightedSymmetry(t *testing.T) {
	x := solve(t, []float64{2, 2}, []float64{10, 0}, nil, 30)
	if math.Abs((x[0]-10)-(x[1]-0)) > axiomTol {
		t.Fatalf("equal weights must split surplus equally: surpluses %v, %v", x[0]-10, x[1])
	}
	y := solve(t, []float64{4, 2}, []float64{10, 0}, nil, 30)
	if y[0]-10 <= x[0]-10 {
		t.Fatalf("raising agent 0's weight must raise its surplus: %v -> %v", x[0]-10, y[0]-10)
	}
}

// Independence of irrelevant alternatives: shrinking the feasible set
// around the solution (tightening caps while keeping the solution
// feasible) leaves the solution unchanged.
func TestIIARandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var s Solver
	for trial := 0; trial < 300; trial++ {
		w, d, maxs, capacity := randomProblem(rng)
		n := len(w)
		x := make([]float64, n)
		if err := s.SolveInto(x, w, d, maxs, capacity); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		shrunk := make([]float64, n)
		for i := 0; i < n; i++ {
			// Tighten each cap to a random point between the solution
			// and the old cap: the feasible set shrinks but still
			// contains x.
			if math.IsInf(maxs[i], 1) {
				if rng.Intn(2) == 0 {
					shrunk[i] = x[i] + rng.Float64()*10
				} else {
					shrunk[i] = math.Inf(1)
				}
			} else {
				shrunk[i] = x[i] + rng.Float64()*(maxs[i]-x[i])
			}
		}
		y := make([]float64, n)
		if err := s.SolveInto(y, w, d, shrunk, capacity); err != nil {
			t.Fatalf("trial %d (shrunk): %v", trial, err)
		}
		for i := 0; i < n; i++ {
			if math.Abs(x[i]-y[i]) > 1e-6*(1+math.Abs(x[i])) {
				t.Fatalf("trial %d: IIA violated at agent %d: %v -> %v (caps %v -> %v)",
					trial, i, x[i], y[i], maxs[i], shrunk[i])
			}
		}
	}
}

// Scale covariance (a consequence of the Nash axioms for this utility
// family): scaling capacity, disagreement points and caps by α scales
// the solution by α.
func TestScaleCovariance(t *testing.T) {
	w := []float64{3, 1, 2}
	d := []float64{2, 0, 5}
	maxs := []float64{9, math.Inf(1), math.Inf(1)}
	x := solve(t, w, d, maxs, 30)
	const alpha = 4.0
	ds := []float64{2 * alpha, 0, 5 * alpha}
	ms := []float64{9 * alpha, math.Inf(1), math.Inf(1)}
	y := solve(t, w, ds, ms, 30*alpha)
	for i := range x {
		if math.Abs(y[i]-alpha*x[i]) > axiomTol*alpha {
			t.Fatalf("scale covariance violated at %d: %v vs α·%v", i, y[i], x[i])
		}
	}
}
