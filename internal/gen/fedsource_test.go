package gen

import (
	"testing"

	"repro/internal/model"

	"repro/internal/stats"
)

func drainFedSource(t *testing.T, s *FedSource) []model.SourceJob {
	t.Helper()
	var jobs []model.SourceJob
	for {
		j, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return jobs
		}
		jobs = append(jobs, j)
	}
}

// TestFedSourceReplayable: the streaming scenario source is a pure
// function of (scenario, horizon, seed) — two drains are identical —
// and honors the JobSource contract: nondecreasing releases inside the
// horizon, valid (cluster, org, size) coordinates.
func TestFedSourceReplayable(t *testing.T) {
	sc := DefaultFedScenario()
	sc.Base = sc.Base.Scale(0.12)
	const horizon = 6000
	mk := func(seed int64) *FedSource {
		src, err := sc.Source(horizon, seed)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	jobs := drainFedSource(t, mk(11))
	if len(jobs) < 20 {
		t.Fatalf("source yielded only %d jobs — too sparse to exercise anything", len(jobs))
	}
	for i, j := range jobs {
		if i > 0 && j.Release < jobs[i-1].Release {
			t.Fatalf("release order violated at %d: %d after %d", i, j.Release, jobs[i-1].Release)
		}
		if j.Release < 0 || j.Release >= horizon {
			t.Fatalf("job %d released at %d, outside [0, %d)", i, j.Release, horizon)
		}
		if j.Cluster < 0 || j.Cluster >= sc.Clusters || j.Org < 0 || j.Org >= sc.Orgs {
			t.Fatalf("job %d mapped outside the %d×%d grid: %+v", i, sc.Clusters, sc.Orgs, j)
		}
		if j.Size < 1 {
			t.Fatalf("job %d has size %d", i, j.Size)
		}
	}
	again := drainFedSource(t, mk(11))
	if len(again) != len(jobs) {
		t.Fatalf("replay yielded %d jobs, first drain %d", len(again), len(jobs))
	}
	for i := range jobs {
		if jobs[i] != again[i] {
			t.Fatalf("replay diverged at job %d: %+v vs %+v", i, jobs[i], again[i])
		}
	}
	other := drainFedSource(t, mk(12))
	same := len(other) == len(jobs)
	if same {
		for i := range jobs {
			if jobs[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 11 and 12 produced identical streams")
	}
}

// TestFedSourceCoversGrid: every cluster sees traffic and the diurnal
// keep-filter leaves a workload of the same order as the eager
// generator's (the two samplers share the calibration, not the rng
// schedule, so counts are close but not equal).
func TestFedSourceCoversGrid(t *testing.T) {
	sc := DefaultFedScenario()
	sc.Base = sc.Base.Scale(0.12)
	src, err := sc.Source(6000, 11)
	if err != nil {
		t.Fatal(err)
	}
	jobs := drainFedSource(t, src)
	perCluster := make([]int, sc.Clusters)
	for _, j := range jobs {
		perCluster[j.Cluster]++
	}
	for c, n := range perCluster {
		if n == 0 {
			t.Errorf("cluster %d received no jobs", c)
		}
	}
	w, err := sc.Generate(6000, stats.NewRand(11))
	if err != nil {
		t.Fatal(err)
	}
	eager := 0
	for _, js := range w.Jobs {
		eager += len(js)
	}
	if streamed := len(jobs); streamed < eager/2 || streamed > eager*2 {
		t.Errorf("streamed %d jobs vs %d eager — the samplers drifted apart in offered load", streamed, eager)
	}
}

// TestFedSourceRejectsInvalidScenario mirrors Generate's validation.
func TestFedSourceRejectsInvalidScenario(t *testing.T) {
	sc := DefaultFedScenario()
	sc.Clusters = 0
	if _, err := sc.Source(6000, 1); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}
