package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyRun executes the CLI with a scaled-down workload and returns its
// stdout.
func tinyRun(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	base := []string{"-horizon", "1500", "-orgs", "3"}
	if err := run(append(base, args...), &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v (stderr: %s)", args, err, stderr.String())
	}
	return stdout.String()
}

func TestRunFamilyEndToEnd(t *testing.T) {
	out := tinyRun(t, "-alg", "directcontr", "-family", "lpc-egee")
	for _, want := range []string{"algorithm   : DirectContr", "machines", "value v(C)", "org0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRefWithCompareAndGantt(t *testing.T) {
	out := tinyRun(t, "-alg", "ref", "-family", "pik-iplex", "-horizon", "800", "-compare", "-gantt")
	for _, want := range []string{"algorithm   : REF", "REF reference value", "Δψ/p_tot"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// φ must be numeric for REF, not the "-" placeholder.
	if strings.Contains(out, "\t-\n") {
		t.Errorf("REF run reports no φ:\n%s", out)
	}
}

// -swf + instance building: generate a tiny trace with the tracegen
// library path, then schedule it.
func TestRunFromSWFTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tiny.swf")
	swf := `; tiny test trace
1 0 -1 3 1 -1 -1 1 -1 -1 1 1 -1 -1 -1 -1 -1 -1
2 1 -1 2 2 -1 -1 2 -1 -1 1 2 -1 -1 -1 -1 -1 -1
3 4 -1 5 1 -1 -1 1 -1 -1 1 3 -1 -1 -1 -1 -1 -1
`
	if err := os.WriteFile(path, []byte(swf), 0o644); err != nil {
		t.Fatal(err)
	}
	out := tinyRun(t, "-alg", "fcfs", "-swf", path, "-machines", "4", "-horizon", "100", "-split", "uniform")
	if !strings.Contains(out, "algorithm   : FCFS") {
		t.Errorf("SWF run output:\n%s", out)
	}
	// Job 2 needs 2 processors -> sequentialized into 2 copies: 4 jobs.
	if !strings.Contains(out, "4 started of 4") {
		t.Errorf("expected all 4 sequentialized jobs to start:\n%s", out)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-alg", "nope"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-ref-driver", "bogus", "-alg", "ref"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown driver accepted")
	}
	if err := run([]string{"-swf", "/nonexistent.swf"}, &stdout, &stderr); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
