package daemon_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/daemon"
	"repro/internal/model"
)

// TestPipelineMatchesSyncAdvance: advancing through the pipeline is
// behaviorally identical to calling Session.Advance inline — same
// clocks, same decision logs, requests per session in order.
func TestPipelineMatchesSyncAdvance(t *testing.T) {
	run := func(viaPipe bool) []daemon.StateReply {
		m := daemon.NewManager()
		p := daemon.NewPipeline(daemon.PipelineOptions{Workers: 4, Burst: 2})
		defer p.Close()
		var sessions []*daemon.Session
		for i := 0; i < 12; i++ {
			s, err := m.Create(fmt.Sprintf("p%d", i), loadFedCfg(int64(i)))
			if err != nil {
				t.Fatal(err)
			}
			var jobs []daemon.JobSubmission
			for j := 0; j < 8; j++ {
				jobs = append(jobs, daemon.JobSubmission{Cluster: 0, Org: j % 2, Size: 4, Release: timePtr(model.Time(3 * j))})
			}
			if _, err := s.Submit(jobs); err != nil {
				t.Fatal(err)
			}
			sessions = append(sessions, s)
		}
		var wg sync.WaitGroup
		for _, s := range sessions {
			wg.Add(1)
			go func(s *daemon.Session) {
				defer wg.Done()
				for _, until := range []model.Time{30, 60, 120} {
					until := until
					var err error
					if viaPipe {
						_, _, err = p.Advance(s, &until)
					} else {
						_, _, err = s.Advance(&until)
					}
					if err != nil {
						t.Errorf("advance %s: %v", s.ID(), err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		var states []daemon.StateReply
		for _, s := range sessions {
			states = append(states, s.State())
		}
		return states
	}
	direct, piped := run(false), run(true)
	for i := range direct {
		if !sameState(direct[i], piped[i]) {
			t.Fatalf("session %d diverged between sync and pipelined advance", i)
		}
	}
}

// TestPipelineBatchesPerWakeup: a backlog spanning many sessions is
// drained in far fewer queue passes than requests — the amortization
// the pipeline exists for.
func TestPipelineBatchesPerWakeup(t *testing.T) {
	m := daemon.NewManager()
	p := daemon.NewPipeline(daemon.PipelineOptions{Workers: 1, Burst: 4})
	defer p.Close()
	var chans []<-chan daemon.AdvanceResult
	const sessions, stepsEach = 24, 3
	for i := 0; i < sessions; i++ {
		s, err := m.Create(fmt.Sprintf("b%d", i), singleCfg())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit([]daemon.JobSubmission{{Org: 0, Size: 2}}); err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= stepsEach; k++ {
			chans = append(chans, p.Enqueue(s, timePtr(model.Time(10*k))))
		}
	}
	for _, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	st := p.Stats()
	if st.Advances != sessions*stepsEach {
		t.Fatalf("pipeline processed %d advances, want %d", st.Advances, sessions*stepsEach)
	}
	// The per-pass batch composition (many sessions per pass, at most
	// burst requests each) is asserted deterministically in the
	// white-box TestWorkerTakeRoundRobin; here only the counters'
	// consistency is observable — the pass count depends on how
	// enqueues interleave with drains.
	if st.Batches == 0 || st.Wakeups == 0 || st.Batches > st.Advances {
		t.Fatalf("implausible pipeline stats: %+v", st)
	}
}

// TestPipelineClose: a closed pipeline fails new and pending requests
// with ErrPipelineClosed rather than hanging them.
func TestPipelineClose(t *testing.T) {
	m := daemon.NewManager()
	p := daemon.NewPipeline(daemon.PipelineOptions{Workers: 1})
	s, err := m.Create("c", singleCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Advance(s, timePtr(5)); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if _, _, err := p.Advance(s, timePtr(10)); !errors.Is(err, daemon.ErrPipelineClosed) {
		t.Fatalf("advance on closed pipeline: %v, want ErrPipelineClosed", err)
	}
}
