package daemon_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/daemon"
	"repro/internal/fed"
	"repro/internal/model"
)

func singleCfg() daemon.SessionConfig {
	return daemon.SessionConfig{Kind: daemon.KindSingle, Alg: "ref", Orgs: 2, Machines: 3, Seed: 7}
}

func fedCfg() daemon.SessionConfig {
	return daemon.SessionConfig{
		Kind:     daemon.KindFederation,
		OrgNames: []string{"alpha", "beta"},
		Policy:   "leastloaded",
		Clusters: []daemon.ClusterConfig{
			{Name: "east", Alg: "ref", Machines: []int{2, 0}},
			{Name: "west", Alg: "directcontr", Machines: []int{0, 2}},
		},
		Seed: 7,
	}
}

// api is a tiny JSON client against the handler under test.
type api struct {
	t  *testing.T
	ts *httptest.Server
}

func newAPI(t *testing.T) api {
	t.Helper()
	ts := httptest.NewServer(daemon.NewServer(daemon.NewManager()).Handler())
	t.Cleanup(ts.Close)
	return api{t: t, ts: ts}
}

func (a api) do(method, path, body string, wantStatus int) map[string]any {
	a.t.Helper()
	req, err := http.NewRequest(method, a.ts.URL+path, strings.NewReader(body))
	if err != nil {
		a.t.Fatal(err)
	}
	resp, err := a.ts.Client().Do(req)
	if err != nil {
		a.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		a.t.Fatalf("%s %s: status %d, want %d: %s", method, path, resp.StatusCode, wantStatus, raw)
	}
	var out map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			a.t.Fatalf("%s %s: %v in %q", method, path, err, raw)
		}
	}
	return out
}

func (a api) raw(path string) []byte {
	a.t.Helper()
	resp, err := a.ts.Client().Get(a.ts.URL + path)
	if err != nil {
		a.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		a.t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, raw)
	}
	return raw
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestMultiSessionDaemon is the acceptance path: one daemon serves a
// single-run session and a federated session concurrently, driving
// both through submit → advance → checkpoint → restore, with the two
// sessions progressing independently.
func TestMultiSessionDaemon(t *testing.T) {
	a := newAPI(t)

	a.do("POST", "/v1/sessions", `{"id":"solo",`+mustJSON(t, singleCfg())[1:], http.StatusCreated)
	a.do("POST", "/v1/sessions", `{"id":"fleet",`+mustJSON(t, fedCfg())[1:], http.StatusCreated)

	list := a.do("GET", "/v1/sessions", "", http.StatusOK)
	if n := len(list["sessions"].([]any)); n != 2 {
		t.Fatalf("daemon lists %d sessions, want 2", n)
	}

	// Drive both sessions concurrently: different sessions must not
	// serialize against each other (and the race detector watches).
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		a.do("POST", "/v1/sessions/solo/jobs",
			`{"jobs":[{"org":0,"size":3},{"org":1,"size":2},{"org":1,"size":4,"release":5}]}`, http.StatusOK)
		adv := a.do("POST", "/v1/sessions/solo/advance", `{"until":30}`, http.StatusOK)
		if n := len(adv["decisions"].([]any)); n != 3 {
			t.Errorf("solo session made %d decisions, want 3", n)
		}
	}()
	go func() {
		defer wg.Done()
		// Submissions arrive at the east cluster; beta's jobs should
		// spill west under least-loaded routing.
		a.do("POST", "/v1/sessions/fleet/jobs",
			`{"jobs":[{"cluster":0,"org":0,"size":4},{"cluster":0,"org":1,"size":4},{"cluster":0,"org":1,"size":4,"release":2}]}`,
			http.StatusOK)
		adv := a.do("POST", "/v1/sessions/fleet/advance", `{"until":40}`, http.StatusOK)
		if n := len(adv["decisions"].([]any)); n != 3 {
			t.Errorf("fleet session made %d decisions, want 3", n)
		}
	}()
	wg.Wait()

	soloState := a.do("GET", "/v1/sessions/solo/state", "", http.StatusOK)
	if soloState["kind"] != "single" || soloState["now"].(float64) != 30 {
		t.Fatalf("solo state: %v", soloState)
	}
	fleetState := a.do("GET", "/v1/sessions/fleet/state", "", http.StatusOK)
	if fleetState["kind"] != "federation" || fleetState["now"].(float64) != 40 {
		t.Fatalf("fleet state: %v", fleetState)
	}
	if len(fleetState["clusters"].([]any)) != 2 {
		t.Fatalf("fleet state has no per-cluster rows: %v", fleetState)
	}

	// Checkpoint both, keep advancing the originals, then roll both
	// back via restore: the clocks must rewind to the checkpoints.
	soloSnap := a.raw("/v1/sessions/solo/checkpoint")
	fleetSnap := a.raw("/v1/sessions/fleet/checkpoint")
	a.do("POST", "/v1/sessions/solo/advance", `{"until":100}`, http.StatusOK)
	a.do("POST", "/v1/sessions/fleet/advance", `{"until":100}`, http.StatusOK)
	res := a.do("POST", "/v1/sessions/solo/restore", string(soloSnap), http.StatusOK)
	if res["now"].(float64) != 30 {
		t.Fatalf("solo restore landed at %v, want 30", res["now"])
	}
	res = a.do("POST", "/v1/sessions/fleet/restore", string(fleetSnap), http.StatusOK)
	if res["now"].(float64) != 40 {
		t.Fatalf("fleet restore landed at %v, want 40", res["now"])
	}

	// Restored sessions keep serving: a submit-now job dispatches on the
	// next-event advance (same instant — a machine is free at t=40).
	a.do("POST", "/v1/sessions/fleet/jobs", `{"jobs":[{"cluster":1,"org":0,"size":1}]}`, http.StatusOK)
	adv := a.do("POST", "/v1/sessions/fleet/advance", `{}`, http.StatusOK)
	if n := len(adv["decisions"].([]any)); n != 1 {
		t.Fatalf("restored fleet did not schedule the new job: %v", adv)
	}

	// Decision logs are queryable with suffixes.
	decs := a.do("GET", "/v1/sessions/fleet/decisions?since=2", "", http.StatusOK)
	if total := decs["total"].(float64); total < 3 {
		t.Fatalf("fleet decision log too short: %v", decs)
	}

	// Delete one session; the other keeps running.
	a.do("DELETE", "/v1/sessions/solo", "", http.StatusOK)
	a.do("GET", "/v1/sessions/solo/state", "", http.StatusNotFound)
	a.do("GET", "/v1/sessions/fleet/state", "", http.StatusOK)
}

// TestSessionAPIValidation covers the create/restore error surface.
func TestSessionAPIValidation(t *testing.T) {
	a := newAPI(t)
	a.do("POST", "/v1/sessions", `{"kind":"bogus"}`, http.StatusBadRequest)
	a.do("POST", "/v1/sessions", `{"kind":"single","alg":"nope"}`, http.StatusBadRequest)
	a.do("POST", "/v1/sessions", `{"kind":"federation","org_names":["a"],"policy":"bogus",
	  "clusters":[{"name":"x","alg":"ref","machines":[1]}]}`, http.StatusBadRequest)
	a.do("POST", "/v1/sessions", `{"kind":"federation","org_names":["a"],
	  "clusters":[{"name":"x","alg":"ref","machines":[0]}]}`, http.StatusBadRequest)
	a.do("POST", "/v1/sessions", `{"id":"has space","kind":"single"}`, http.StatusBadRequest)
	a.do("POST", "/v1/sessions", `{"id":"dup","kind":"single"}`, http.StatusCreated)
	a.do("POST", "/v1/sessions", `{"id":"dup","kind":"single"}`, http.StatusBadRequest)
	a.do("GET", "/v1/sessions/ghost/state", "", http.StatusNotFound)
	a.do("DELETE", "/v1/sessions/ghost", "", http.StatusNotFound)
	a.do("POST", "/v1/sessions/dup/jobs", `{"jobs":[]}`, http.StatusBadRequest)
	a.do("POST", "/v1/sessions/dup/jobs", `{"jobs":[{"org":99,"size":1}]}`, http.StatusBadRequest)
	a.do("POST", "/v1/sessions/dup/restore", `{"version":99}`, http.StatusBadRequest)
	// No default session was created: legacy aliases 404 rather than
	// silently touching some other session.
	a.do("POST", "/v1/jobs", `{"jobs":[{"org":0,"size":1}]}`, http.StatusNotFound)

	// Delete + recreate under the same id must not duplicate the
	// listing (the creation-order index forgets deleted ids).
	a.do("DELETE", "/v1/sessions/dup", "", http.StatusOK)
	a.do("POST", "/v1/sessions", `{"id":"dup","kind":"single"}`, http.StatusCreated)
	list := a.do("GET", "/v1/sessions", "", http.StatusOK)
	if n := len(list["sessions"].([]any)); n != 1 {
		t.Fatalf("after delete+recreate the daemon lists %d sessions, want 1", n)
	}
	// Auto-generated ids skip over taken names instead of colliding.
	a.do("POST", "/v1/sessions", `{"id":"s1","kind":"single"}`, http.StatusCreated)
	created := a.do("POST", "/v1/sessions", `{"kind":"single"}`, http.StatusCreated)
	if id := created["id"].(string); id == "s1" {
		t.Fatalf("auto-generated id collided with the taken %q", id)
	}
}

// TestHTTPStatusCodes: advance and restore failures map onto distinct
// statuses — client mistakes stay 400, while stepping a session
// restored from a streaming checkpoint before its source is back is a
// repairable conflict (409). The old handler folded every failure into
// 400, so clients could not tell a bad request from a session that
// needed repair.
func TestHTTPStatusCodes(t *testing.T) {
	a := newAPI(t)
	a.do("POST", "/v1/sessions", `{"id":"fleet",`+mustJSON(t, fedCfg())[1:], http.StatusCreated)

	// Client errors keep their 400s.
	a.do("POST", "/v1/sessions/fleet/advance", `{"until":`, http.StatusBadRequest)
	a.do("POST", "/v1/sessions/fleet/advance", `{"until":50}`, http.StatusOK)
	a.do("POST", "/v1/sessions/fleet/advance", `{"until":10}`, http.StatusBadRequest)
	a.do("POST", "/v1/sessions/fleet/restore", `{"version":99}`, http.StatusBadRequest)

	// A snapshot of the same configuration captured mid-stream restores
	// fine, but stepping it again needs the job source the checkpoint
	// cannot carry: that is the session's state conflicting with the
	// request, not a malformed request.
	snap := streamingSnapshot(t)
	a.do("POST", "/v1/sessions/fleet/restore", string(snap), http.StatusOK)
	a.do("POST", "/v1/sessions/fleet/advance", `{"until":2000}`, http.StatusConflict)
}

// streamingSnapshot captures a federation matching fedCfg mid-stream:
// its checkpoint carries a source cursor, so a daemon session restored
// from it refuses to step until the source is re-attached.
func streamingSnapshot(t *testing.T) []byte {
	t.Helper()
	policy, err := fed.PolicyByName("leastloaded")
	if err != nil {
		t.Fatal(err)
	}
	specs := []fed.ClusterSpec{
		{Name: "east", Alg: core.RefAlgorithm{}, Machines: []int{2, 0}},
		{Name: "west", Alg: core.DirectContrAlgorithm().(core.StepperAlgorithm), Machines: []int{0, 2}},
	}
	f, err := fed.New([]string{"alpha", "beta"}, specs, policy, 7)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []fed.SourceJob{
		{Cluster: 0, Org: 0, Size: 3, Release: 0},
		{Cluster: 0, Org: 1, Size: 3, Release: 1},
		{Cluster: 1, Org: 0, Size: 3, Release: 50},
		{Cluster: 1, Org: 1, Size: 3, Release: 900},
	}
	if err := f.SetSource(fed.NewSliceSource(jobs), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Step(10); err != nil {
		t.Fatal(err)
	}
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestFlushAllAndLoadDir round-trips a whole session table through a
// checkpoint directory — the graceful-shutdown persistence path.
func TestFlushAllAndLoadDir(t *testing.T) {
	mgr := daemon.NewManager()
	solo, err := mgr.Create("solo", singleCfg())
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := mgr.Create("fleet", fedCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solo.Submit([]daemon.JobSubmission{{Org: 0, Size: 5}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := solo.Advance(timePtr(20)); err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.Submit([]daemon.JobSubmission{{Cluster: 0, Org: 1, Size: 3}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fleet.Advance(timePtr(15)); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "ckpts")
	paths, err := mgr.FlushAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("flushed %d envelopes, want 2", len(paths))
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Fatal(err)
		}
	}

	reborn := daemon.NewManager()
	ids, quarantined, err := reborn.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 0 {
		t.Fatalf("healthy directory quarantined %v", quarantined)
	}
	if len(ids) != 2 {
		t.Fatalf("reloaded %d sessions, want 2", len(ids))
	}
	s2, ok := reborn.Get("solo")
	if !ok {
		t.Fatal("solo session not reloaded")
	}
	if got, want := s2.State(), solo.State(); !sameState(got, want) {
		t.Fatalf("reloaded solo state %+v, want %+v", got, want)
	}
	f2, ok := reborn.Get("fleet")
	if !ok {
		t.Fatal("fleet session not reloaded")
	}
	if got, want := f2.State(), fleet.State(); !sameState(got, want) {
		t.Fatalf("reloaded fleet state %+v, want %+v", got, want)
	}
	// The reloaded federation keeps scheduling deterministically.
	if _, _, err := f2.Advance(timePtr(50)); err != nil {
		t.Fatal(err)
	}

	// An empty/missing directory is not an error.
	if ids, _, err := daemon.NewManager().LoadDir(filepath.Join(t.TempDir(), "nope")); err != nil || len(ids) != 0 {
		t.Fatalf("missing dir: ids=%v err=%v", ids, err)
	}
}

// TestDecisionsNegativeSince: Session.Decisions is a library API, so a
// negative since must clamp to the full log instead of panicking (only
// the HTTP handler validates the query parameter).
func TestDecisionsNegativeSince(t *testing.T) {
	m := daemon.NewManager()
	for name, cfg := range map[string]daemon.SessionConfig{"single": singleCfg(), "fed": fedCfg()} {
		s, err := m.Create(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Submit([]daemon.JobSubmission{{Org: 0, Size: 3}, {Org: 1, Size: 2}}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Advance(timePtr(20)); err != nil {
			t.Fatal(err)
		}
		total, decs := s.Decisions(-5)
		if total != 2 || len(decs) != 2 {
			t.Fatalf("%s: Decisions(-5) = (%d, %d decisions), want the full log of 2", name, total, len(decs))
		}
		if total, decs := s.Decisions(99); total != 2 || len(decs) != 0 {
			t.Fatalf("%s: Decisions(99) = (%d, %d decisions), want (2, 0)", name, total, len(decs))
		}
	}
}

// TestAdvanceEmptyBody: POST /advance with an empty body is the
// documented advance-to-next-event form, equivalent to {} — not a 400.
func TestAdvanceEmptyBody(t *testing.T) {
	a := newAPI(t)
	a.do("POST", "/v1/sessions", `{"id":"e",`+mustJSON(t, singleCfg())[1:], http.StatusCreated)
	a.do("POST", "/v1/sessions/e/jobs", `{"jobs":[{"org":0,"size":3,"release":5}]}`, http.StatusOK)
	adv := a.do("POST", "/v1/sessions/e/advance", "", http.StatusOK)
	if adv["now"].(float64) != 5 || len(adv["decisions"].([]any)) != 1 {
		t.Fatalf("empty-body advance: %v", adv)
	}
	if res := a.do("POST", "/v1/sessions/e/advance", `{}`, http.StatusOK); res["now"].(float64) != 8 {
		t.Fatalf("{} advance after empty-body advance: %v", res)
	}
	// A truncated JSON document is still a client error.
	a.do("POST", "/v1/sessions/e/advance", `{"until":`, http.StatusBadRequest)
}

func timePtr(v model.Time) *model.Time { return &v }

func sameState(a, b daemon.StateReply) bool {
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return bytes.Equal(ja, jb)
}

// TestManagerConcurrentSessions hammers the sharded session table from
// many goroutines at once — explicit-id and auto-id creation, submits,
// advances, deletes and listings interleaved — and then checks the
// table is consistent: every surviving session is retrievable, listed
// exactly once, and auto-assigned ids never collided. Run under -race
// in CI, this is the regression test for the striped-lock Manager.
func TestManagerConcurrentSessions(t *testing.T) {
	m := daemon.NewManager()
	const goroutines, perG = 8, 20
	var wg sync.WaitGroup
	var autoMu sync.Mutex
	autoIDs := make(map[string]int)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := ""
				if i%2 == 0 { // half explicit, half auto-assigned
					id = fmt.Sprintf("w%d-%d", g, i)
				}
				s, err := m.Create(id, singleCfg())
				if err != nil {
					t.Errorf("create %q: %v", id, err)
					return
				}
				if id == "" {
					autoMu.Lock()
					autoIDs[s.ID()]++
					autoMu.Unlock()
				}
				if _, err := s.Submit([]daemon.JobSubmission{{Org: 0, Size: 3}}); err != nil {
					t.Errorf("submit %q: %v", s.ID(), err)
					return
				}
				if _, _, err := s.Advance(timePtr(10)); err != nil {
					t.Errorf("advance %q: %v", s.ID(), err)
					return
				}
				if got, ok := m.Get(s.ID()); !ok || got != s {
					t.Errorf("created session %q not retrievable", s.ID())
					return
				}
				if i%3 == 0 {
					if !m.Delete(s.ID()) {
						t.Errorf("delete %q reported missing", s.ID())
						return
					}
				}
				m.List() // concurrent listings must not race
			}
		}(g)
	}
	wg.Wait()
	for id, n := range autoIDs {
		if n != 1 {
			t.Fatalf("auto id %q assigned %d times", id, n)
		}
	}
	// Consistency after the storm: the listing is duplicate-free and
	// every listed session resolves.
	seen := make(map[string]bool)
	for _, s := range m.List() {
		if seen[s.ID()] {
			t.Fatalf("session %q listed twice", s.ID())
		}
		seen[s.ID()] = true
		if _, ok := m.Get(s.ID()); !ok {
			t.Fatalf("listed session %q not retrievable", s.ID())
		}
	}
	// Deleting a deleted or unknown session reports false, once.
	if m.Delete("definitely-not-there") {
		t.Fatal("deleting an unknown session reported success")
	}
}

// TestFederationSessionStaleness: the staleness knob reaches federated
// sessions through the wire config and changes routing behavior
// deterministically.
func TestFederationSessionStaleness(t *testing.T) {
	run := func(staleness model.Time) daemon.StateReply {
		cfg := fedCfg()
		cfg.Staleness = staleness
		m := daemon.NewManager()
		s, err := m.Create("f", cfg)
		if err != nil {
			t.Fatal(err)
		}
		var jobs []daemon.JobSubmission
		for i := 0; i < 30; i++ {
			jobs = append(jobs, daemon.JobSubmission{Cluster: 0, Org: i % 2, Size: 5, Release: timePtr(model.Time(2 * i))})
		}
		if _, err := s.Submit(jobs); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Advance(timePtr(300)); err != nil {
			t.Fatal(err)
		}
		return s.State()
	}
	fresh, stale := run(0), run(200)
	if sameState(fresh, stale) {
		t.Fatal("a 200-tick summary staleness routed identically to fresh gossip")
	}
	if again := run(200); !sameState(stale, again) {
		t.Fatal("stale-gossip session not deterministic")
	}
}

// gatedSingleCfg is singleCfg squeezed to one machine behind a token
// bucket: the overload serving configuration.
func gatedSingleCfg() daemon.SessionConfig {
	cfg := singleCfg()
	cfg.Orgs = 2
	cfg.Machines = 1
	cfg.Admission = &ctrl.PolicySpec{Policy: "tokenbucket", Rate: 1, Period: 8, Burst: 1, MaxAttempts: 2, Staleness: 10}
	return cfg
}

// gatedFedCfg is fedCfg with a backpressure control plane in front of
// the federation's routing.
func gatedFedCfg() daemon.SessionConfig {
	cfg := fedCfg()
	cfg.Admission = &ctrl.PolicySpec{Policy: "backpressure", MaxWaiting: 3, RetryAfter: 5, MaxAttempts: 4}
	cfg.Staleness = 20
	return cfg
}

// overloadJobs is 40 size-4 submissions, alternating orgs, every 2
// ticks — 2× a single machine's service rate.
func overloadJobs(cluster int) []daemon.JobSubmission {
	var jobs []daemon.JobSubmission
	for i := 0; i < 40; i++ {
		jobs = append(jobs, daemon.JobSubmission{Cluster: cluster, Org: i % 2, Size: 4, Release: timePtr(model.Time(2 * i))})
	}
	return jobs
}

// checkAdmissionReply asserts a StateReply surfaces a conserved
// admission section for the expected policy.
func checkAdmissionReply(t *testing.T, reply daemon.StateReply, policy string) *daemon.AdmissionState {
	t.Helper()
	adm := reply.Admission
	if adm == nil {
		t.Fatalf("gated session state carries no admission section: %+v", reply)
	}
	if adm.Policy != policy {
		t.Fatalf("admission policy %q in state, want %q", adm.Policy, policy)
	}
	if err := adm.Stats.CheckConserved(); err != nil {
		t.Fatal(err)
	}
	return adm
}

// TestAdmissionSessions drives a token-bucket-gated single session and
// a backpressure-gated federated session through overload, asserting
// the per-org conservation law surfaces through StateReply, survives a
// mid-round flush/reload with deferred admissions pending, and that
// reloaded sessions continue deterministically.
func TestAdmissionSessions(t *testing.T) {
	mgr := daemon.NewManager()
	solo, err := mgr.Create("solo", gatedSingleCfg())
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := mgr.Create("fleet", gatedFedCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solo.Submit(overloadJobs(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.Submit(overloadJobs(0)); err != nil {
		t.Fatal(err)
	}

	// Land mid-round: deferred admissions pending in the gated engine.
	if _, _, err := solo.Advance(timePtr(45)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := fleet.Advance(timePtr(45)); err != nil {
		t.Fatal(err)
	}
	adm := checkAdmissionReply(t, solo.State(), "tokenbucket")
	if adm.Stats.TotalDeferred() == 0 {
		t.Fatal("flush instant carries no deferred admissions — the test is not exercising mid-round state")
	}
	checkAdmissionReply(t, fleet.State(), "backpressure")

	// Flush the live control planes and reload them elsewhere.
	dir := filepath.Join(t.TempDir(), "ckpts")
	if _, err := mgr.FlushAll(dir); err != nil {
		t.Fatal(err)
	}
	reborn := daemon.NewManager()
	ids, quarantined, err := reborn.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != 0 || len(ids) != 2 {
		t.Fatalf("reload: ids=%v quarantined=%v", ids, quarantined)
	}

	// Both daemons drain the stream; the reloaded sessions must match
	// the originals state-for-state, admission counters included.
	for _, name := range []string{"solo", "fleet"} {
		orig, _ := mgr.Get(name)
		loaded, ok := reborn.Get(name)
		if !ok {
			t.Fatalf("session %q not reloaded", name)
		}
		if !sameState(orig.State(), loaded.State()) {
			t.Fatalf("%s: reloaded state differs:\n%s\n%s", name, mustJSON(t, orig.State()), mustJSON(t, loaded.State()))
		}
		if _, _, err := orig.Advance(timePtr(400)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := loaded.Advance(timePtr(400)); err != nil {
			t.Fatal(err)
		}
		if !sameState(orig.State(), loaded.State()) {
			t.Fatalf("%s: post-reload run diverged:\n%s\n%s", name, mustJSON(t, orig.State()), mustJSON(t, loaded.State()))
		}
	}

	// After the full drain the overloaded single session shed load:
	// rejects happened, nothing is left deferred, and the law holds.
	adm = checkAdmissionReply(t, solo.State(), "tokenbucket")
	if adm.Stats.TotalReleased() != 40 {
		t.Fatalf("released %d, submitted 40", adm.Stats.TotalReleased())
	}
	if adm.Stats.TotalRejected() == 0 || adm.Stats.TotalAdmitted() == 0 {
		t.Fatalf("overload shed nothing or everything: %+v", adm.Stats)
	}
	if adm.Stats.TotalDeferred() != 0 {
		t.Fatalf("%d jobs still deferred after a full drain", adm.Stats.TotalDeferred())
	}
	fadm := checkAdmissionReply(t, fleet.State(), "backpressure")
	if fadm.Stats.TotalReleased() != 40 {
		t.Fatalf("federation released %d, submitted 40", fadm.Stats.TotalReleased())
	}

	// Ungated sessions carry no admission section.
	plain, err := mgr.Create("plain", singleCfg())
	if err != nil {
		t.Fatal(err)
	}
	if plain.State().Admission != nil {
		t.Fatal("ungated session state carries an admission section")
	}
}

// TestAdmissionSessionHTTP: the admission section and its conservation
// law are visible through the HTTP state endpoint, and gated sessions
// are creatable over the wire.
func TestAdmissionSessionHTTP(t *testing.T) {
	a := newAPI(t)
	a.do("POST", "/v1/sessions", `{"id":"gated",`+mustJSON(t, gatedSingleCfg())[1:], http.StatusCreated)
	var subs []string
	for i := 0; i < 20; i++ {
		subs = append(subs, fmt.Sprintf(`{"org":%d,"size":4,"release":%d}`, i%2, 2*i))
	}
	a.do("POST", "/v1/sessions/gated/jobs", `{"jobs":[`+strings.Join(subs, ",")+`]}`, http.StatusOK)
	a.do("POST", "/v1/sessions/gated/advance", `{"until":300}`, http.StatusOK)
	state := a.do("GET", "/v1/sessions/gated/state", "", http.StatusOK)
	admAny, ok := state["admission"].(map[string]any)
	if !ok {
		t.Fatalf("state reply carries no admission object: %v", state)
	}
	if admAny["policy"] != "tokenbucket" {
		t.Fatalf("admission policy over the wire: %v", admAny["policy"])
	}
	stats := admAny["stats"].(map[string]any)
	sumOf := func(key string) float64 {
		var total float64
		for _, v := range stats[key].([]any) {
			total += v.(float64)
		}
		return total
	}
	released, admitted, rejected, deferred := sumOf("released"), sumOf("admitted"), sumOf("rejected"), sumOf("deferred")
	if released != 20 || admitted+rejected+deferred != released {
		t.Fatalf("wire counters violate conservation: released %v = %v admitted + %v rejected + %v deferred",
			released, admitted, rejected, deferred)
	}
	if rejected == 0 {
		t.Fatalf("token bucket rejected nothing under 2x overload: %v", stats)
	}

	// A bad admission spec fails session creation with a client error.
	a.do("POST", "/v1/sessions", `{"id":"bad","kind":"single","admission":{"policy":"tokenbucket","rate":0}}`, http.StatusBadRequest)
	a.do("POST", "/v1/sessions", `{"id":"worse","kind":"single","admission":{"policy":"nope"}}`, http.StatusBadRequest)
}
