package fed

import (
	"repro/internal/model"
	"repro/internal/shapley"
)

// Game is the federation-level instance of shapley.ContribGame — the
// two-level structure of the federated-clouds follow-up paper: the
// member clusters are the players, and a coalition's value is the
// completed-work utility the coalition could have realized on its own
// by time t,
//
//	v(S, t) = min( Σ_{c∈S} Demand_c , t · Σ_{c∈S} Cap_c ),
//
// with Demand_c the work units released at origin c so far (the
// ledger's routed-work row sums) and Cap_c the cluster's work capacity
// per time unit. A coalition completes at most what its members'
// machines can grind through (t·cap) and at most what its members'
// users have asked for (demand), whichever binds.
//
// The min structure is what makes the game genuinely cooperative: a
// saturated cluster (demand above own capacity) and an idle one create
// surplus value together that neither has alone, so the Shapley value
// splits the gains from pooling — capacity-bound early on, it degrades
// to the additive demand game once every coalition could have finished
// everything, where each member's contribution is exactly its own
// demand.
//
// Values are read from an exchange snapshot (see Federation's staleness
// knob), so the game is a pure function of gossiped state — exactly
// what a real federation peer could compute.
type Game struct {
	// Demand[c] is the work released at origin cluster c (work units).
	Demand []int64
	// Cap[c] is cluster c's total work capacity per time unit.
	Cap []int64
}

var _ shapley.ContribGame = (*Game)(nil)

// NewGame builds the federation game from per-member demand and
// capacity columns. The slices are retained, not copied.
func NewGame(demand, capacity []int64) *Game {
	if len(demand) != len(capacity) {
		panic("fed: demand and capacity columns differ in length")
	}
	return &Game{Demand: demand, Cap: capacity}
}

// GameFromExchange derives the game from one exchanged snapshot: the
// routed-work matrix supplies per-origin demand (row sums), the member
// summaries supply capacity.
func GameFromExchange(sums []Summary, routedWork [][]int64) *Game {
	demand := make([]int64, len(sums))
	capacity := make([]int64, len(sums))
	for c := range sums {
		capacity[c] = sums[c].Capacity
		for _, w := range routedWork[c] {
			demand[c] += w
		}
	}
	return &Game{Demand: demand, Cap: capacity}
}

// Players implements shapley.ContribGame.
func (g *Game) Players() int { return len(g.Demand) }

// ValueAt implements shapley.ContribGame.
func (g *Game) ValueAt(c model.Coalition, t model.Time) int64 {
	var demand, capacity int64
	c.EachMember(func(m int) {
		demand += g.Demand[m]
		capacity += g.Cap[m]
	})
	if work := int64(t) * capacity; work < demand {
		return work
	}
	return demand
}
