package fed_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/fed"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/stats"
)

// emptyFederation builds a federation over the test scenario's
// machines without submitting any jobs — the caller attaches a source
// or submits explicitly.
func emptyFederation(t testing.TB, algs []string, policy fed.Policy, seed int64) (*fed.Federation, *gen.FedWorkload) {
	t.Helper()
	w, err := testScenario().Generate(6000, stats.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]fed.ClusterSpec, len(w.Machines))
	for c := range specs {
		specs[c] = fed.ClusterSpec{
			Name:     fmt.Sprintf("site%d", c),
			Alg:      algFactory(algs[c%len(algs)]),
			Machines: w.Machines[c],
		}
	}
	f, err := fed.New(w.Orgs, specs, policy, seed)
	if err != nil {
		t.Fatal(err)
	}
	return f, w
}

// drainGenSource materializes the streaming scenario source — the
// eager submission order the streamed run must reproduce exactly.
func drainGenSource(t testing.TB, seed int64) []fed.SourceJob {
	t.Helper()
	src, err := testScenario().Source(6000, seed)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []fed.SourceJob
	for {
		j, ok, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return jobs
		}
		jobs = append(jobs, j)
	}
}

// TestStreamingMatchesEager: attaching a JobSource is byte-identical
// to eagerly Submitting the same stream upfront — sequence numbers are
// assigned in stream order either way, so the lookahead window only
// changes memory, never decisions, ledger or ψ.
func TestStreamingMatchesEager(t *testing.T) {
	algs := []string{"ref", "directcontr", "fairshare"}
	jobs := drainGenSource(t, 11)
	if len(jobs) == 0 {
		t.Fatal("scenario source yielded no jobs")
	}
	for _, policy := range []fed.Policy{
		fed.RefPolicy{},
		fed.Migrating{Inner: fed.FairnessAware{}, Budget: fed.DefaultMigrationBudget},
	} {
		t.Run(policy.Name(), func(t *testing.T) {
			eager, _ := emptyFederation(t, algs, policy, 11)
			for _, j := range jobs {
				if _, err := eager.Submit(j.Cluster, j.Org, j.Size, j.Release); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := eager.Step(6000); err != nil {
				t.Fatal(err)
			}

			streamed, _ := emptyFederation(t, algs, policy, 11)
			src, err := testScenario().Source(6000, 11)
			if err != nil {
				t.Fatal(err)
			}
			if err := streamed.SetSource(src, 64); err != nil {
				t.Fatal(err)
			}
			if _, err := streamed.Step(6000); err != nil {
				t.Fatal(err)
			}

			if !bytes.Equal(fingerprint(t, eager), fingerprint(t, streamed)) {
				t.Fatal("streamed run diverged from the eager run of the same stream")
			}
			if len(streamed.Decisions()) == 0 {
				t.Fatal("streamed run made no decisions")
			}
			if got, want := streamed.SourceCursor(), int64(len(jobs)); got != want {
				t.Fatalf("source cursor = %d, want %d", got, want)
			}
		})
	}
}

// TestStreamingWindowInvariance: the lookahead window is a pure memory
// knob — every window size (including the pathological 1) and any
// worker count produce the same bytes.
func TestStreamingWindowInvariance(t *testing.T) {
	algs := []string{"ref", "directcontr", "fairshare"}
	policy := fed.Migrating{Inner: fed.RefPolicy{}, Budget: fed.DefaultMigrationBudget}
	var want []byte
	for _, tc := range []struct {
		window  int
		workers int
	}{{1, 1}, {7, 1}, {64, 3}, {0, 1}} { // 0 selects DefaultSourceWindow
		f, _ := emptyFederation(t, algs, policy, 11)
		f.SetWorkers(tc.workers)
		src, err := testScenario().Source(6000, 11)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.SetSource(src, tc.window); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Step(6000); err != nil {
			t.Fatal(err)
		}
		if err := f.CheckConservation(); err != nil {
			t.Fatalf("window=%d: %v", tc.window, err)
		}
		print := fingerprint(t, f)
		if want == nil {
			want = print
			continue
		}
		if !bytes.Equal(print, want) {
			t.Fatalf("window=%d workers=%d diverged", tc.window, tc.workers)
		}
	}
}

// TestStreamingMemoryBound: with a window of W the pending queue never
// holds more than W + (largest same-instant batch) + 1 jobs — the O(W)
// residency claim, against an eager run that would hold the whole
// stream.
func TestStreamingMemoryBound(t *testing.T) {
	const window = 16
	jobs := drainGenSource(t, 11)
	maxBatch, run := 0, 0
	for i := range jobs {
		if i > 0 && jobs[i].Release == jobs[i-1].Release {
			run++
		} else {
			run = 1
		}
		if run > maxBatch {
			maxBatch = run
		}
	}
	bound := window + maxBatch + 1
	if len(jobs) < 4*bound {
		t.Fatalf("stream of %d jobs is too short to distinguish O(window) from O(n) residency (bound %d)", len(jobs), bound)
	}

	f, _ := emptyFederation(t, []string{"fairshare"}, fed.FairnessAware{}, 11)
	src, err := testScenario().Source(6000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetSource(src, window); err != nil {
		t.Fatal(err)
	}
	maxPending := f.PendingCount()
	for {
		_, ok, err := f.StepToNextEvent()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if n := f.PendingCount(); n > maxPending {
			maxPending = n
		}
	}
	if maxPending > bound {
		t.Fatalf("pending peaked at %d jobs; window %d bounds it by %d", maxPending, window, bound)
	}
	if got, want := f.SourceCursor(), int64(len(jobs)); got != want {
		t.Fatalf("source cursor = %d, want %d (stream not fully consumed)", got, want)
	}
}

// TestStreamingCheckpointRestore: a mid-stream checkpoint records only
// the source cursor; restoring, re-attaching a fresh replay of the
// source and stepping on reproduces the uninterrupted run byte for
// byte. Stepping before re-attaching is refused.
//
// The uninterrupted control run steps through the same instants as the
// checkpointed one: the decision log records starts in discovery order
// (one advanceMembers burst per stepped instant, member-major), so the
// step sequence is part of the log's byte layout — for any run, with
// or without a source. Snapshot/Restore must be the only perturbation.
func TestStreamingCheckpointRestore(t *testing.T) {
	algs := []string{"ref", "directcontr", "fairshare"}
	policy := fed.Migrating{Inner: fed.FairnessAware{}, Budget: fed.DefaultMigrationBudget}
	newSource := func() fed.JobSource {
		src, err := testScenario().Source(6000, 11)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}

	straight, _ := emptyFederation(t, algs, policy, 11)
	if err := straight.SetSource(newSource(), 16); err != nil {
		t.Fatal(err)
	}
	if _, err := straight.Step(2500); err != nil {
		t.Fatal(err)
	}
	if _, err := straight.Step(6000); err != nil {
		t.Fatal(err)
	}

	interrupted, w := emptyFederation(t, algs, policy, 11)
	if err := interrupted.SetSource(newSource(), 16); err != nil {
		t.Fatal(err)
	}
	if _, err := interrupted.Step(2500); err != nil {
		t.Fatal(err)
	}
	if interrupted.SourceCursor() == 0 {
		t.Fatal("no jobs consumed by t=2500 — checkpoint would not be mid-stream")
	}
	snap, err := interrupted.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	specs := make([]fed.ClusterSpec, len(w.Machines))
	for c := range specs {
		specs[c] = fed.ClusterSpec{
			Name:     fmt.Sprintf("site%d", c),
			Alg:      algFactory(algs[c%len(algs)]),
			Machines: w.Machines[c],
		}
	}
	restored, err := fed.Restore(w.Orgs, specs, policy, snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Step(2600); err == nil || !strings.Contains(err.Error(), "SetSource") {
		t.Fatalf("stepping a restored streaming run without its source: err = %v, want re-attachment refusal", err)
	}
	if err := restored.SetSource(newSource(), 16); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.SourceCursor(), interrupted.SourceCursor(); got != want {
		t.Fatalf("restored cursor = %d, want %d", got, want)
	}
	if _, err := restored.Step(6000); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(fingerprint(t, restored), fingerprint(t, straight)) {
		t.Fatal("restored mid-stream run diverged from the uninterrupted run")
	}
	snapA, err := straight.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := restored.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapA, snapB) {
		t.Fatal("final checkpoints of the straight and restored runs differ")
	}
}

// TestSourceValidation: attachment and stream-contract violations are
// surfaced, and a source failure is sticky — the federation refuses to
// step past an unknowable stream.
func TestSourceValidation(t *testing.T) {
	build := func() *fed.Federation {
		f, _ := emptyFederation(t, []string{"fairshare"}, fed.LocalOnly{}, 3)
		return f
	}
	t.Run("nil source", func(t *testing.T) {
		if err := build().SetSource(nil, 0); err == nil {
			t.Fatal("nil source accepted")
		}
	})
	t.Run("duplicate attach", func(t *testing.T) {
		f := build()
		if err := f.SetSource(fed.NewSliceSource(nil), 0); err != nil {
			t.Fatal(err)
		}
		if err := f.SetSource(fed.NewSliceSource(nil), 0); err == nil {
			t.Fatal("second source accepted")
		}
	})
	for name, jobs := range map[string][]fed.SourceJob{
		"decreasing release": {{Cluster: 0, Org: 0, Size: 1, Release: 10}, {Cluster: 0, Org: 0, Size: 1, Release: 5}},
		"unknown cluster":    {{Cluster: 99, Org: 0, Size: 1, Release: 0}},
		"unknown org":        {{Cluster: 0, Org: 99, Size: 1, Release: 0}},
		"zero size":          {{Cluster: 0, Org: 0, Size: 0, Release: 0}},
	} {
		t.Run(name, func(t *testing.T) {
			f := build()
			// The first window fills during SetSource, so the violation
			// surfaces immediately...
			if err := f.SetSource(fed.NewSliceSource(jobs), 8); err == nil {
				t.Fatal("invalid stream accepted")
			}
			// ...and stays sticky: the run cannot be stepped past it.
			if _, err := f.Step(100); err == nil {
				t.Fatal("stepping past a failed source succeeded")
			}
		})
	}
}

// TestStreamingWithExplicitSubmits: Submit stays usable alongside an
// attached source (the serving tier interleaves API submissions with a
// replay feed); the merged run is deterministic.
func TestStreamingWithExplicitSubmits(t *testing.T) {
	run := func() []byte {
		f, _ := emptyFederation(t, []string{"ref", "fairshare"}, fed.FairnessAware{}, 5)
		src, err := testScenario().Source(6000, 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.SetSource(src, 32); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			if _, err := f.Step(model.Time(i * 150)); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Submit(i%3, i%3, model.Time(1+i%7), model.Time(i*150)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := f.Step(6000); err != nil {
			t.Fatal(err)
		}
		if err := f.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		return fingerprint(t, f)
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("interleaved Submit + source runs diverged")
	}
}

// swfFixture is a small jittered SWF fragment: submits arrive slightly
// out of order (archives log at completion), one record is unusable.
// Fields: id submit wait runtime procs ... status user ...
const swfFixture = `; Version: 2.2
; Computer: fixture
1 0 -1 10 1 -1 -1 1 -1 -1 1 7 -1 -1 -1 -1 -1 -1
2 9 -1 6 1 -1 -1 1 -1 -1 1 8 -1 -1 -1 -1 -1 -1
3 5 -1 4 1 -1 -1 1 -1 -1 1 9 -1 -1 -1 -1 -1 -1
4 5 -1 -1 1 -1 -1 -1 -1 -1 0 7 -1 -1 -1 -1 -1 -1
5 3 -1 2 1 -1 -1 1 -1 -1 1 10 -1 -1 -1 -1 -1 -1
6 12 -1 8 1 -1 -1 1 -1 -1 1 8 -1 -1 -1 -1 -1 -1
7 11 -1 3 1 -1 -1 1 -1 -1 1 11 -1 -1 -1 -1 -1 -1
`

// TestSWFSource: the archive adapter reorders jittered submits inside
// its slack buffer into a valid nondecreasing stream, hashes users to
// stable (cluster, org) assignments, and drives a federation through
// a conserving, deterministic run.
func TestSWFSource(t *testing.T) {
	const clusters, orgs = 2, 3
	drain := func() []fed.SourceJob {
		src, err := fed.NewSWFSource(strings.NewReader(swfFixture), clusters, orgs, 42)
		if err != nil {
			t.Fatal(err)
		}
		src.SetSlack(4)
		var jobs []fed.SourceJob
		for {
			j, ok, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				if src.Skipped() != 1 {
					t.Fatalf("skipped = %d, want 1 (record 4 is unusable)", src.Skipped())
				}
				return jobs
			}
			jobs = append(jobs, j)
		}
	}
	jobs := drain()
	if len(jobs) != 6 {
		t.Fatalf("drained %d jobs, want 6", len(jobs))
	}
	for i, j := range jobs {
		if i > 0 && j.Release < jobs[i-1].Release {
			t.Fatalf("release order violated at %d: %d after %d", i, j.Release, jobs[i-1].Release)
		}
		if j.Cluster < 0 || j.Cluster >= clusters || j.Org < 0 || j.Org >= orgs {
			t.Fatalf("job %d mapped outside the grid: %+v", i, j)
		}
	}
	// Same user, same assignment: fixture records 2 and 6 (sizes 6 and
	// 8) both belong to user 8.
	var u8 [][2]int
	for _, j := range jobs {
		if j.Size == 6 || j.Size == 8 {
			u8 = append(u8, [2]int{j.Cluster, j.Org})
		}
	}
	if len(u8) != 2 || u8[0] != u8[1] {
		t.Fatalf("user 8's jobs mapped inconsistently: %v", u8)
	}
	again := drain()
	for i := range jobs {
		if jobs[i] != again[i] {
			t.Fatalf("replay diverged at job %d: %+v vs %+v", i, jobs[i], again[i])
		}
	}

	// Route the archive through a real federation.
	run := func() []byte {
		specs := make([]fed.ClusterSpec, clusters)
		machines := [][]int{{1, 1, 0}, {0, 1, 1}}
		for c := range specs {
			specs[c] = fed.ClusterSpec{Name: fmt.Sprintf("site%d", c), Alg: algFactory("fairshare"), Machines: machines[c]}
		}
		f, err := fed.New([]string{"a", "b", "c"}, specs, fed.LeastLoaded{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		src, err := fed.NewSWFSource(strings.NewReader(swfFixture), clusters, orgs, 42)
		if err != nil {
			t.Fatal(err)
		}
		src.SetSlack(4)
		if err := f.SetSource(src, 4); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Step(100); err != nil {
			t.Fatal(err)
		}
		if err := f.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		return fingerprint(t, f)
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("SWF-fed federation runs diverged")
	}
}

// TestSWFSourceDisorderBeyondSlack: an archive whose submit disorder is
// wider than the reorder buffer must fail the pull that detects it, not
// silently emit a release going backwards (the old behavior handed the
// out-of-order job downstream and let the federation blame the source
// contract). Whatever was emitted before the failure stays nondecreasing,
// and the error is sticky.
func TestSWFSourceDisorderBeyondSlack(t *testing.T) {
	// Record 4's submit (5) is 95 behind records already emitted; with a
	// slack of 2 it surfaces only after submits 100 and 101 are out.
	const wild = `; Version: 2.2
1 100 -1 10 1 -1 -1 1 -1 -1 1 7 -1 -1 -1 -1 -1 -1
2 101 -1 6 1 -1 -1 1 -1 -1 1 8 -1 -1 -1 -1 -1 -1
3 102 -1 4 1 -1 -1 1 -1 -1 1 9 -1 -1 -1 -1 -1 -1
4 5 -1 2 1 -1 -1 1 -1 -1 1 10 -1 -1 -1 -1 -1 -1
`
	src, err := fed.NewSWFSource(strings.NewReader(wild), 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	src.SetSlack(2)
	var emitted []fed.SourceJob
	var pullErr error
	for {
		j, ok, err := src.Next()
		if err != nil {
			pullErr = err
			break
		}
		if !ok {
			break
		}
		emitted = append(emitted, j)
	}
	if pullErr == nil {
		t.Fatalf("disorder wider than the slack drained cleanly: %+v", emitted)
	}
	if !strings.Contains(pullErr.Error(), "slack") {
		t.Fatalf("error does not point at the slack knob: %v", pullErr)
	}
	for i := 1; i < len(emitted); i++ {
		if emitted[i].Release < emitted[i-1].Release {
			t.Fatalf("release went backwards before the failure: %+v", emitted)
		}
	}
	if _, _, err := src.Next(); err == nil {
		t.Fatal("source error is not sticky")
	}

	// The same archive with enough slack drains cleanly, sorted.
	src2, err := fed.NewSWFSource(strings.NewReader(wild), 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	src2.SetSlack(4)
	var last model.Time
	for n := 0; ; n++ {
		j, ok, err := src2.Next()
		if err != nil {
			t.Fatalf("wide-enough slack still failed: %v", err)
		}
		if !ok {
			if n != 4 {
				t.Fatalf("drained %d jobs, want 4", n)
			}
			break
		}
		if j.Release < last {
			t.Fatalf("sorted stream went backwards: %d after %d", j.Release, last)
		}
		last = j.Release
	}
}

// FuzzFedStreamStep interleaves stepping, explicit submissions and
// migration-driven withdrawals against a streaming source and asserts
// the two invariants everything else rests on: job conservation, and
// determinism — the same op sequence replays to identical bytes.
func FuzzFedStreamStep(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, int64(1))
	f.Add([]byte{2, 2, 2, 9, 0, 7, 1}, int64(3))
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1}, int64(7))
	f.Add([]byte{}, int64(5))
	f.Fuzz(func(t *testing.T, ops []byte, seed int64) {
		if len(ops) > 48 {
			ops = ops[:48]
		}
		sc := testScenario()
		run := func() []byte {
			w, err := sc.Generate(6000, stats.NewRand(seed))
			if err != nil {
				t.Skip("scenario rejected seed")
			}
			specs := make([]fed.ClusterSpec, len(w.Machines))
			for c := range specs {
				specs[c] = fed.ClusterSpec{Name: fmt.Sprintf("site%d", c), Alg: algFactory("fairshare"), Machines: w.Machines[c]}
			}
			fd, err := fed.New(w.Orgs, specs, fed.Migrating{Inner: fed.FairnessAware{}, Budget: fed.DefaultMigrationBudget}, seed)
			if err != nil {
				t.Fatal(err)
			}
			fd.SetWorkers(int(seed%4) + 1) // width must not matter
			src, err := sc.Source(6000, seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := fd.SetSource(src, 16); err != nil {
				t.Fatal(err)
			}
			for _, b := range ops {
				switch b % 3 {
				case 0:
					if _, _, err := fd.StepToNextEvent(); err != nil {
						t.Fatal(err)
					}
				case 1:
					if _, err := fd.Step(fd.Now() + model.Time(b)); err != nil {
						t.Fatal(err)
					}
				case 2:
					org := int(b/3) % len(w.Orgs)
					cluster := int(b/5) % len(specs)
					size := model.Time(1 + b%9)
					if _, err := fd.Submit(cluster, org, size, fd.Now()+model.Time(b%17)); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Drain everything, including submits released past 6000.
			for {
				if _, ok, err := fd.StepToNextEvent(); err != nil {
					t.Fatal(err)
				} else if !ok {
					break
				}
			}
			if err := fd.CheckConservation(); err != nil {
				t.Fatal(err)
			}
			return fingerprint(t, fd)
		}
		if !bytes.Equal(run(), run()) {
			t.Fatal("identical op sequences diverged")
		}
	})
}
