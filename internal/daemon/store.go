package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// CheckpointStore persists session envelopes between daemon lifetimes.
// The Manager flushes through a store (periodically for dirty sessions,
// completely at graceful shutdown) and reloads from it at boot. A store
// must tolerate crashes mid-Save: a partial write may never surface as
// a corrupt envelope at the next Load.
type CheckpointStore interface {
	// Save durably persists one envelope, replacing any previous
	// envelope with the same ID.
	Save(env Envelope) error
	// Load returns every readable envelope, in deterministic order,
	// alongside the envelopes it quarantined as unreadable. A corrupt
	// envelope must not fail the whole Load — it is set aside and
	// reported so the remaining sessions still boot.
	Load() ([]Envelope, []Quarantined, error)
	// Delete removes the envelope for id. Deleting an absent envelope
	// is not an error.
	Delete(id string) error
	// Quarantine sets the envelope for id aside so the next Load skips
	// it (used when an envelope parses but fails to restore).
	Quarantine(id string) error
}

// Quarantined reports one envelope set aside during Load or restore:
// the session (or file) it belonged to, where it was moved, and why.
type Quarantined struct {
	ID   string
	Path string
	Err  error
}

const (
	envelopeSuffix = ".session.json"
	corruptSuffix  = ".corrupt"
	tmpPrefix      = ".tmp-"
)

// DirStore is the crash-safe disk CheckpointStore: one
// "<id>.session.json" envelope per session in a flat directory. Writes
// go to a temp file in the same directory and are renamed into place,
// so a crash mid-write leaves only a stale temp file (swept at the next
// Load), never a truncated envelope under the live name. Envelopes that
// do turn up unreadable are renamed to "<name>.corrupt" and reported
// instead of blocking the boot.
type DirStore struct {
	dir string
}

// NewDirStore returns a store over dir. The directory is created lazily
// at the first Save; a missing directory Loads as empty.
func NewDirStore(dir string) *DirStore { return &DirStore{dir: dir} }

// Dir returns the store's directory.
func (st *DirStore) Dir() string { return st.dir }

func (st *DirStore) pathFor(id string) string {
	return filepath.Join(st.dir, id+envelopeSuffix)
}

// Save writes the envelope atomically: marshal, write + fsync a temp
// file in the target directory, then rename over the live name.
func (st *DirStore) Save(env Envelope) error {
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(env)
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(st.dir, tmpPrefix+env.ID+"-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Chmod(tmp, 0o644)
	}
	if werr == nil {
		werr = os.Rename(tmp, st.pathFor(env.ID))
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	return nil
}

// Load reads every "*.session.json" envelope in name order. Stale temp
// files from a crashed Save are swept; envelopes that fail to parse (or
// carry no session id) are renamed aside with Quarantine semantics and
// reported, not returned as errors — one bad file must not hold every
// alphabetically-later session hostage.
func (st *DirStore) Load() ([]Envelope, []Quarantined, error) {
	entries, err := os.ReadDir(st.dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			os.Remove(filepath.Join(st.dir, e.Name()))
			continue
		}
		if strings.HasSuffix(e.Name(), envelopeSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var envs []Envelope
	var quarantined []Quarantined
	for _, name := range names {
		path := filepath.Join(st.dir, name)
		quarantine := func(reason error) {
			dst := path + corruptSuffix
			if rerr := os.Rename(path, dst); rerr != nil {
				reason = errors.Join(reason, rerr)
				dst = path
			}
			quarantined = append(quarantined, Quarantined{ID: name, Path: dst, Err: reason})
		}
		data, err := os.ReadFile(path)
		if err != nil {
			quarantine(err)
			continue
		}
		var env Envelope
		if err := json.Unmarshal(data, &env); err != nil {
			quarantine(fmt.Errorf("daemon: envelope %s: %w", name, err))
			continue
		}
		if env.ID == "" {
			quarantine(fmt.Errorf("daemon: envelope %s: missing session id", name))
			continue
		}
		envs = append(envs, env)
	}
	return envs, quarantined, nil
}

// Delete removes the envelope for id; an absent envelope is fine.
func (st *DirStore) Delete(id string) error {
	if err := os.Remove(st.pathFor(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// Quarantine renames the envelope for id to "<name>.corrupt".
func (st *DirStore) Quarantine(id string) error {
	path := st.pathFor(id)
	if err := os.Rename(path, path+corruptSuffix); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// Flusher periodically flushes dirty sessions to a store in the
// background, so a crash between graceful shutdowns loses at most one
// flush interval of progress per session instead of everything since
// boot. Stop halts the ticker without a final write — the shutdown path
// flushes every session itself.
type Flusher struct {
	mgr      *Manager
	store    CheckpointStore
	interval time.Duration
	logf     func(format string, args ...any)
	stop     chan struct{}
	done     chan struct{}
	flushed  atomic.Int64
}

// StartFlusher begins flushing mgr's dirty sessions into store every
// interval. logf (optional) receives flush errors; a flush error never
// stops the flusher — the failed sessions stay dirty and are retried
// next tick.
func StartFlusher(mgr *Manager, store CheckpointStore, interval time.Duration, logf func(format string, args ...any)) *Flusher {
	f := &Flusher{
		mgr:      mgr,
		store:    store,
		interval: interval,
		logf:     logf,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go f.run()
	return f
}

func (f *Flusher) run() {
	defer close(f.done)
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			ids, err := f.mgr.FlushTo(f.store, true)
			f.flushed.Add(int64(len(ids)))
			if err != nil && f.logf != nil {
				f.logf("background flush: %v", err)
			}
		}
	}
}

// Flushed returns the number of envelopes written so far.
func (f *Flusher) Flushed() int64 { return f.flushed.Load() }

// Stop halts the periodic flush and waits for an in-progress pass to
// finish. It does not flush: callers wanting a final complete snapshot
// call Manager.FlushTo afterwards.
func (f *Flusher) Stop() {
	close(f.stop)
	<-f.done
}
