package fed_test

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/fed"
	"repro/internal/model"
)

// workerCounts is the fan-out grid the invariance tests sweep: the
// sequential baseline, a fixed multi-worker width, and whatever the
// host actually has (which exercises the chunking remainder paths on
// odd core counts).
func workerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// TestFederationWorkerInvariance: the parallel data plane is a pure
// throughput knob — for every delegation policy, staleness and
// migration budget, a federated run produces byte-identical decisions,
// ledger, per-member ψ and checkpoint bytes at every worker count.
// This is the lockstep differential test backing the determinism
// argument in parallel.go: member engines share no mutable state
// between routing instants, and the merge is in configuration order.
func TestFederationWorkerInvariance(t *testing.T) {
	algs := []string{"ref", "directcontr", "fairshare"}
	type grid struct {
		policy fed.Policy
		stale  model.Time
	}
	var cases []grid
	for _, budget := range []int{fed.DefaultMigrationBudget, 2} {
		for _, stale := range []model.Time{0, 100} {
			cases = append(cases,
				grid{fed.Migrating{Inner: fed.RefPolicy{}, Budget: budget}, stale},
				grid{fed.Migrating{Inner: fed.FairnessAware{}, Budget: budget}, stale},
			)
		}
	}
	// One non-migrating policy to cover the plain routing path too.
	cases = append(cases, grid{fed.RefPolicy{}, 0})
	for _, tc := range cases {
		budget := 0
		if m, ok := tc.policy.(fed.Migrating); ok {
			budget = m.Budget
		}
		name := fmt.Sprintf("%s/stale=%d/budget=%d", tc.policy.Name(), tc.stale, budget)
		t.Run(name, func(t *testing.T) {
			var wantPrint, wantSnap []byte
			for _, w := range workerCounts() {
				f, _ := buildFederation(t, algs, tc.policy, 11)
				f.SetStaleness(tc.stale)
				f.SetWorkers(w)
				if got := f.Workers(); got != w && !(w < 1 && got == 1) {
					t.Fatalf("Workers() = %d after SetWorkers(%d)", got, w)
				}
				if _, err := f.Step(6000); err != nil {
					t.Fatal(err)
				}
				if err := f.CheckConservation(); err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				print := fingerprint(t, f)
				snap, err := f.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if wantPrint == nil {
					wantPrint, wantSnap = print, snap
					if len(f.Decisions()) == 0 {
						t.Fatal("run made no decisions — scenario too small to test anything")
					}
					continue
				}
				if !bytes.Equal(print, wantPrint) {
					t.Errorf("workers=%d: decisions/ledger/ψ diverged from workers=1", w)
				}
				if !bytes.Equal(snap, wantSnap) {
					t.Errorf("workers=%d: checkpoint bytes diverged from workers=1", w)
				}
			}
		})
	}
}

// TestFederationWorkerChangeMidRun: SetWorkers may be called at any
// point — including mid-run — without disturbing the trajectory,
// because the fan-out width is not part of the deterministic state.
func TestFederationWorkerChangeMidRun(t *testing.T) {
	algs := []string{"ref", "directcontr", "fairshare"}
	policy := fed.Migrating{Inner: fed.FairnessAware{}, Budget: fed.DefaultMigrationBudget}

	// The baseline steps through the same instants sequentially: the
	// decision log records starts in discovery order, so the step
	// sequence is part of the log's layout — only the worker widths may
	// differ between the runs under comparison.
	base, _ := buildFederation(t, algs, policy, 7)
	for _, until := range []model.Time{2000, 4000, 6000} {
		if _, err := base.Step(until); err != nil {
			t.Fatal(err)
		}
	}

	f, _ := buildFederation(t, algs, policy, 7)
	f.SetWorkers(4)
	if _, err := f.Step(2000); err != nil {
		t.Fatal(err)
	}
	f.SetWorkers(1)
	if _, err := f.Step(4000); err != nil {
		t.Fatal(err)
	}
	f.SetWorkers(3)
	if _, err := f.Step(6000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fingerprint(t, f), fingerprint(t, base)) {
		t.Fatal("changing the worker count mid-run altered the trajectory")
	}
}

// TestFederationWorkersSurviveRestore: a snapshot taken from a
// parallel-stepped federation restores into a sequential one (the
// width is deliberately absent from checkpoints) and both futures
// agree; re-widening the restored federation changes nothing.
func TestFederationWorkersSurviveRestore(t *testing.T) {
	algs := []string{"ref", "directcontr", "fairshare"}
	policy := fed.Migrating{Inner: fed.RefPolicy{}, Budget: fed.DefaultMigrationBudget}

	f, w := buildFederation(t, algs, policy, 13)
	f.SetWorkers(4)
	if _, err := f.Step(3000); err != nil {
		t.Fatal(err)
	}
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	specs := make([]fed.ClusterSpec, len(w.Machines))
	for c := range specs {
		specs[c] = fed.ClusterSpec{
			Name:     fmt.Sprintf("site%d", c),
			Alg:      algFactory(algs[c%len(algs)]),
			Machines: w.Machines[c],
		}
	}
	restored, err := fed.Restore(w.Orgs, specs, policy, snap)
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Workers(); got != 1 {
		t.Fatalf("restored federation has %d workers; the width must not round-trip through checkpoints", got)
	}
	restored.SetWorkers(2)

	if _, err := f.Step(6000); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Step(6000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fingerprint(t, f), fingerprint(t, restored)) {
		t.Fatal("restored run diverged from the original under different worker counts")
	}
}
