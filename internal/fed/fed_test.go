package fed_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// testScenario is a small saturated federated workload: 3 clusters,
// 3 orgs, staggered diurnal peaks, heterogeneous sites.
func testScenario() gen.FedScenario {
	s := gen.DefaultFedScenario()
	s.Base = s.Base.Scale(0.12)
	return s
}

// algFactories builds fresh per-cluster algorithms by short name —
// fresh values per federation so no state is shared across runs.
func algFactory(name string) core.StepperAlgorithm {
	switch name {
	case "ref":
		return core.RefAlgorithm{}
	case "rand":
		return core.RandAlgorithm{Samples: 5}
	case "directcontr":
		return core.DirectContrAlgorithm().(core.StepperAlgorithm)
	case "fairshare":
		return core.FromPolicy("FairShare", func() sim.Policy { return baseline.NewFairShare() })
	default:
		panic("unknown test algorithm " + name)
	}
}

// buildFederation wires a generated workload into a fresh federation
// and submits every cluster's stream upfront (arrivals stay pending
// until their release instants).
func buildFederation(t testing.TB, algs []string, policy fed.Policy, seed int64) (*fed.Federation, *gen.FedWorkload) {
	t.Helper()
	w, err := testScenario().Generate(6000, stats.NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]fed.ClusterSpec, len(w.Machines))
	for c := range specs {
		specs[c] = fed.ClusterSpec{
			Name:     fmt.Sprintf("site%d", c),
			Alg:      algFactory(algs[c%len(algs)]),
			Machines: w.Machines[c],
		}
	}
	f, err := fed.New(w.Orgs, specs, policy, seed)
	if err != nil {
		t.Fatal(err)
	}
	for c, js := range w.Jobs {
		if err := f.SubmitJobs(c, js); err != nil {
			t.Fatal(err)
		}
	}
	return f, w
}

// fingerprint serializes everything observable about a federation at
// its current clock: the full decision log, the synced ledger, and each
// member's ψ vector.
func fingerprint(t testing.TB, f *fed.Federation) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(f.Decisions()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(f.Ledger()); err != nil {
		t.Fatal(err)
	}
	for _, m := range f.Members() {
		if err := enc.Encode(m.Engine().Result().Psi); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestFederationDeterminism: a federated run is a pure function of its
// seed — rerunning the identical configuration yields byte-identical
// decisions, ledger and ψ, for every delegation policy and a mixed
// per-cluster algorithm roster.
func TestFederationDeterminism(t *testing.T) {
	algs := []string{"ref", "directcontr", "fairshare"}
	for _, policy := range []fed.Policy{
		fed.LocalOnly{}, fed.LeastLoaded{}, fed.FairnessAware{},
		fed.FairnessCapacity{}, fed.FairnessDecayed{}, fed.RefPolicy{},
		fed.Migrating{Inner: fed.RefPolicy{}, Budget: fed.DefaultMigrationBudget},
		fed.Migrating{Inner: fed.FairnessAware{}, Budget: fed.DefaultMigrationBudget},
	} {
		t.Run(policy.Name(), func(t *testing.T) {
			f1, _ := buildFederation(t, algs, policy, 11)
			f2, _ := buildFederation(t, algs, policy, 11)
			if _, err := f1.Step(6000); err != nil {
				t.Fatal(err)
			}
			if _, err := f2.Step(6000); err != nil {
				t.Fatal(err)
			}
			if got, want := fingerprint(t, f1), fingerprint(t, f2); !bytes.Equal(got, want) {
				t.Fatal("two identically configured federated runs diverged")
			}
			if len(f1.Decisions()) == 0 {
				t.Fatal("federated run made no decisions — scenario too small to test anything")
			}
		})
	}
}

// TestFederationCheckpointRestore: stopping a federated run mid-flight,
// serializing it, and resuming in a fresh federation continues
// byte-identically with an uninterrupted run — across every policy,
// with REF and RAND members exercising multi-cluster and RNG-bearing
// engine checkpoints.
func TestFederationCheckpointRestore(t *testing.T) {
	algs := []string{"ref", "rand", "directcontr"}
	for _, policy := range []fed.Policy{
		fed.LocalOnly{}, fed.LeastLoaded{}, fed.FairnessAware{}, fed.RefPolicy{},
		fed.Migrating{Inner: fed.RefPolicy{}, Budget: fed.DefaultMigrationBudget},
	} {
		t.Run(policy.Name(), func(t *testing.T) {
			straight, w := buildFederation(t, algs, policy, 17)
			if _, err := straight.Step(6000); err != nil {
				t.Fatal(err)
			}

			half, _ := buildFederation(t, algs, policy, 17)
			if _, err := half.Step(3000); err != nil {
				t.Fatal(err)
			}
			snap, err := half.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			specs := make([]fed.ClusterSpec, len(w.Machines))
			for c := range specs {
				specs[c] = fed.ClusterSpec{
					Name:     fmt.Sprintf("site%d", c),
					Alg:      algFactory(algs[c%len(algs)]),
					Machines: w.Machines[c],
				}
			}
			resumed, err := fed.Restore(w.Orgs, specs, policy, snap)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Now() != 3000 {
				t.Fatalf("resumed clock %d, want 3000", resumed.Now())
			}
			if _, err := resumed.Step(6000); err != nil {
				t.Fatal(err)
			}
			if got, want := fingerprint(t, resumed), fingerprint(t, straight); !bytes.Equal(got, want) {
				t.Fatal("resumed federation diverged from uninterrupted run")
			}
		})
	}
}

// TestFederationRestoreRejectsMismatch: a snapshot only restores into
// the configuration that captured it.
func TestFederationRestoreRejectsMismatch(t *testing.T) {
	f, w := buildFederation(t, []string{"directcontr"}, fed.LeastLoaded{}, 3)
	if _, err := f.Step(1000); err != nil {
		t.Fatal(err)
	}
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	goodSpecs := func() []fed.ClusterSpec {
		specs := make([]fed.ClusterSpec, len(w.Machines))
		for c := range specs {
			specs[c] = fed.ClusterSpec{
				Name:     fmt.Sprintf("site%d", c),
				Alg:      algFactory("directcontr"),
				Machines: w.Machines[c],
			}
		}
		return specs
	}
	if _, err := fed.Restore(w.Orgs, goodSpecs(), fed.LocalOnly{}, snap); err == nil {
		t.Error("restore with a different policy accepted")
	}
	if _, err := fed.Restore(w.Orgs[:len(w.Orgs)-1], goodSpecs(), fed.LeastLoaded{}, snap); err == nil {
		t.Error("restore with a different org universe accepted")
	}
	bad := goodSpecs()
	bad[0].Name = "imposter"
	if _, err := fed.Restore(w.Orgs, bad, fed.LeastLoaded{}, snap); err == nil {
		t.Error("restore with a renamed cluster accepted")
	}
	bad = goodSpecs()
	bad[1].Machines = append([]int(nil), bad[1].Machines...)
	bad[1].Machines[0]++
	if _, err := fed.Restore(w.Orgs, bad, fed.LeastLoaded{}, snap); err == nil {
		t.Error("restore with a different machine grid accepted")
	}
	if _, err := fed.Restore(w.Orgs, goodSpecs(), fed.LeastLoaded{}, snap[:len(snap)/2]); err == nil {
		t.Error("restore from truncated snapshot accepted")
	}
	// A structurally valid checkpoint with a gutted ledger must fail at
	// Restore, not panic at the next Step.
	var cp map[string]json.RawMessage
	if err := json.Unmarshal(snap, &cp); err != nil {
		t.Fatal(err)
	}
	cp["ledger"] = json.RawMessage(`{}`)
	gutted, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fed.Restore(w.Orgs, goodSpecs(), fed.LeastLoaded{}, gutted); err == nil {
		t.Error("restore with an empty ledger accepted")
	}
}

// TestFederationConservation: under every delegation policy, total
// executed units are conserved — every offloaded job runs exactly once,
// the routed counts add up, and ledger totals match the engines' own ψ
// accounting. The run is drained past every job's completion so total
// executed work must equal total submitted work.
func TestFederationConservation(t *testing.T) {
	for _, policy := range []fed.Policy{
		fed.LocalOnly{}, fed.LeastLoaded{}, fed.FairnessAware{},
		fed.FairnessCapacity{}, fed.FairnessDecayed{}, fed.RefPolicy{},
		fed.Migrating{Inner: fed.RefPolicy{}, Budget: fed.DefaultMigrationBudget},
		fed.Migrating{Inner: fed.FairnessAware{}, Budget: fed.DefaultMigrationBudget},
	} {
		t.Run(policy.Name(), func(t *testing.T) {
			f, w := buildFederation(t, []string{"directcontr", "fairshare"}, policy, 29)
			var totalWork, maxRelease model.Time
			for _, js := range w.Jobs {
				for _, j := range js {
					totalWork += j.Size
					if j.Release > maxRelease {
						maxRelease = j.Release
					}
				}
			}
			// Horizon by which any greedy schedule of any split has
			// certainly finished everything.
			if _, err := f.Step(maxRelease + totalWork); err != nil {
				t.Fatal(err)
			}
			if err := f.CheckConservation(); err != nil {
				t.Fatal(err)
			}
			if f.PendingCount() != 0 {
				t.Fatalf("%d jobs still pending after full drain", f.PendingCount())
			}
			l := f.Ledger()
			if got := l.TotalExecuted(); got != int64(totalWork) {
				t.Fatalf("executed %d unit slots, submitted %d", got, totalWork)
			}
			if got, want := int64(len(f.Decisions())), l.Submitted; got != want {
				t.Fatalf("%d decisions for %d submitted jobs", got, want)
			}
			// Every sequence number started exactly once.
			seen := make(map[int64]int)
			for _, d := range f.Decisions() {
				seen[d.Seq]++
			}
			for seq, n := range seen {
				if n != 1 {
					t.Fatalf("job %d started %d times", seq, n)
				}
			}
			// Ledger ψ columns must sum to the federation-wide vector.
			fedPsi := l.FederationPsi()
			var fromClusters int64
			for c := range l.Psi {
				for _, v := range l.Psi[c] {
					fromClusters += v
				}
			}
			var fromFed int64
			for _, v := range fedPsi {
				fromFed += v
			}
			if fromClusters != fromFed || fromFed != l.FederationValue() {
				t.Fatalf("ψ totals disagree: clusters %d, federation %d, value %d",
					fromClusters, fromFed, l.FederationValue())
			}
		})
	}
}

// TestFederationWideMetrics: the ledger's federation-wide ψ plugs
// straight into internal/metrics, and the local-only baseline gives the
// reference vector a delegating policy is compared against.
func TestFederationWideMetrics(t *testing.T) {
	run := func(policy fed.Policy) *fed.Ledger {
		f, _ := buildFederation(t, []string{"directcontr"}, policy, 41)
		if _, err := f.Step(12000); err != nil {
			t.Fatal(err)
		}
		return f.Ledger()
	}
	local := run(fed.LocalOnly{})
	balanced := run(fed.LeastLoaded{})
	if balanced.Offloaded() == 0 {
		t.Fatal("least-loaded policy never offloaded on a skewed scenario")
	}
	if local.Offloaded() != 0 {
		t.Fatal("local-only policy offloaded jobs")
	}
	d := metrics.DeltaPsi(balanced.FederationPsi(), local.FederationPsi())
	perUnit := metrics.UnfairnessPerUnit(balanced.FederationPsi(), local.FederationPsi(), local.TotalExecuted())
	if d < 0 || perUnit < 0 {
		t.Fatalf("metrics on federation vectors: Δψ=%d per-unit=%v", d, perUnit)
	}
	// On a saturated, skewed scenario load balancing must increase the
	// federation-wide value (more work completed earlier somewhere).
	if balanced.FederationValue() <= local.FederationValue() {
		t.Fatalf("least-loaded value %d not above local-only %d — delegation did nothing",
			balanced.FederationValue(), local.FederationValue())
	}
}

// TestFederationSubmitValidation covers the routing layer's input
// checks and the lockstep clock contract.
func TestFederationSubmitValidation(t *testing.T) {
	specs := []fed.ClusterSpec{
		{Name: "a", Alg: algFactory("directcontr"), Machines: []int{1, 0}},
		{Name: "b", Alg: algFactory("directcontr"), Machines: []int{0, 1}},
	}
	f, err := fed.New([]string{"o0", "o1"}, specs, fed.LocalOnly{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(-1, 0, 1, 0); err == nil {
		t.Error("unknown origin accepted")
	}
	if _, err := f.Submit(0, 5, 1, 0); err == nil {
		t.Error("unknown org accepted")
	}
	if _, err := f.Submit(0, 0, 0, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := f.Submit(0, 0, 3, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Step(20); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(0, 0, 3, 5); err == nil {
		t.Error("release in the federation's past accepted")
	}
	if _, err := f.Step(10); err == nil {
		t.Error("step backwards accepted")
	}
	if err := f.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFederationNewValidation covers configuration validation.
func TestFederationNewValidation(t *testing.T) {
	alg := algFactory("directcontr")
	ok := []fed.ClusterSpec{{Name: "a", Alg: alg, Machines: []int{1}}}
	if _, err := fed.New(nil, ok, fed.LocalOnly{}, 1); err == nil {
		t.Error("empty org universe accepted")
	}
	if _, err := fed.New([]string{"o"}, nil, fed.LocalOnly{}, 1); err == nil {
		t.Error("empty cluster list accepted")
	}
	if _, err := fed.New([]string{"o"}, ok, nil, 1); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := fed.New([]string{"o"}, []fed.ClusterSpec{{Name: "a", Machines: []int{1}}}, fed.LocalOnly{}, 1); err == nil {
		t.Error("nil algorithm accepted")
	}
	if _, err := fed.New([]string{"o"}, []fed.ClusterSpec{{Name: "a", Alg: alg, Machines: []int{1, 2}}}, fed.LocalOnly{}, 1); err == nil {
		t.Error("machine grid width mismatch accepted")
	}
	if _, err := fed.New([]string{"o"}, []fed.ClusterSpec{{Name: "a", Alg: alg, Machines: []int{0}}}, fed.LocalOnly{}, 1); err == nil {
		t.Error("machineless cluster accepted")
	}
}
