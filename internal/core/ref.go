package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"repro/internal/model"
	"repro/internal/sim"
)

// RefDriver selects the event loop driving the 2^k−1 subcoalition
// schedules.
type RefDriver int

const (
	// DriverHeap (the default) keeps the coalitions in an indexed
	// event min-heap and pops the globally earliest event, advancing
	// and re-evaluating only the clusters that event touches; every
	// other coalition's value is read from a cached ValuePoly in O(1).
	DriverHeap RefDriver = iota
	// DriverScan is the original reference loop: scan all 2^k−1 masks
	// for the minimum event time and advance every cluster to it, then
	// re-snapshot every coalition value at each dispatch instant. It
	// is kept as the oracle for differential testing; schedules and φ
	// are identical to DriverHeap's.
	DriverScan
)

// ParseRefDriver resolves a command-line driver name.
func ParseRefDriver(name string) (RefDriver, error) {
	switch strings.ToLower(name) {
	case "", "heap":
		return DriverHeap, nil
	case "scan":
		return DriverScan, nil
	default:
		return 0, fmt.Errorf("unknown REF driver %q (want heap or scan)", name)
	}
}

// String renders the driver name.
func (d RefDriver) String() string {
	if d == DriverScan {
		return "scan"
	}
	return "heap"
}

// RefOptions tunes the reference algorithm.
type RefOptions struct {
	// Driver selects the event loop; see RefDriver. The zero value is
	// the event-heap driver.
	Driver RefDriver
	// Rotate enables the within-instant deficit rotation ablation: after
	// each start, the chosen organization's standing is provisionally
	// charged one unit (Δψ = 1) and every member's contribution is
	// provisionally credited Δψ/‖C‖, following the Distance procedure of
	// Figure 1. The faithful Figure 3 behaviour (default) recomputes
	// φ and ψ only once per time moment.
	Rotate bool
	// Parallel advances the 2^k−1 subcoalition clusters on worker
	// goroutines between events. The result is identical to the serial
	// run; only wall-clock time changes.
	Parallel bool
	// Workers bounds the parallel worker count; 0 means GOMAXPROCS.
	Workers int
}

// Ref is Algorithm REF: the exact, exponential (FPT in the number of
// organizations, Corollary 3.5) fair scheduler. It is the fairness
// reference every other algorithm is measured against.
type Ref struct {
	inst  *model.Instance
	k     int
	grand model.Coalition
	opts  RefOptions

	sims    []*sim.Cluster // indexed by coalition mask; [0] is nil
	bySize  []model.Coalition
	phi     [][]float64 // per mask: contribution vector
	adj     [][]float64 // per mask: within-instant rotation adjustments
	vals    []int64     // scratch: coalition values at the current event
	weights [][]float64 // weights[c][s] = (s−1)!(c−s)!/c!
}

// NewRef builds the reference scheduler for the instance.
func NewRef(inst *model.Instance, opts RefOptions) *Ref {
	k := len(inst.Orgs)
	r := &Ref{
		inst:    inst,
		k:       k,
		grand:   model.Grand(k),
		opts:    opts,
		sims:    make([]*sim.Cluster, 1<<uint(k)),
		phi:     make([][]float64, 1<<uint(k)),
		adj:     make([][]float64, 1<<uint(k)),
		vals:    make([]int64, 1<<uint(k)),
		weights: shapleyWeightTable(k),
	}
	for mask := model.Coalition(1); mask <= r.grand; mask++ {
		r.sims[mask] = sim.New(inst, mask, &refPolicy{r: r, mask: mask}, nil)
		r.phi[mask] = make([]float64, k)
		r.adj[mask] = make([]float64, k)
	}
	// Size-ordered masks: the paper completes schedules for smaller
	// coalitions first (their values feed the larger ones' φ).
	for s := 1; s <= k; s++ {
		for mask := model.Coalition(1); mask <= r.grand; mask++ {
			if mask.Size() == s {
				r.bySize = append(r.bySize, mask)
			}
		}
	}
	return r
}

// weightTables memoizes shapleyWeightTable across Ref instances: the
// experiment harness builds thousands of Refs for the same handful of
// organization counts, and the tables are immutable once built.
var weightTables sync.Map // int (k) -> [][]float64

// shapleyWeightTable returns w[c][s] = (s−1)!·(c−s)!/c! — the weight of
// the marginal term v(S) − v(S∖{u}) for |S| = s inside a coalition of
// size c (the UpdateVals weights of Figure 1). Tables are shared and
// must not be mutated.
func shapleyWeightTable(k int) [][]float64 {
	if w, ok := weightTables.Load(k); ok {
		return w.([][]float64)
	}
	w, _ := weightTables.LoadOrStore(k, buildWeightTable(k))
	return w.([][]float64)
}

func buildWeightTable(k int) [][]float64 {
	fact := make([]float64, k+1)
	fact[0] = 1
	for i := 1; i <= k; i++ {
		fact[i] = fact[i-1] * float64(i)
	}
	w := make([][]float64, k+1)
	for c := 1; c <= k; c++ {
		w[c] = make([]float64, c+1)
		for s := 1; s <= c; s++ {
			w[c][s] = fact[s-1] * fact[c-s] / fact[c]
		}
	}
	return w
}

// Run drives every subcoalition schedule to the horizon and returns the
// grand coalition's result, with exact Shapley contributions.
func (r *Ref) Run(until model.Time) *Result {
	if r.opts.Driver == DriverScan {
		r.runScan(until)
	} else {
		r.runHeap(until)
	}
	r.advanceAll(until)
	grand := r.sims[r.grand]
	r.refreshValues()
	r.computePhi(r.grand)
	phi := append([]float64(nil), r.phi[r.grand]...)
	return resultFromCluster(r.Name(), grand, until, phi)
}

// runScan is the original driver: every step scans all 2^k−1 masks for
// the minimum event time, advances every cluster to it, and re-snapshots
// every coalition value at each dispatch instant.
func (r *Ref) runScan(until model.Time) {
	for {
		t := sim.MaxTime
		for mask := model.Coalition(1); mask <= r.grand; mask++ {
			if e := r.sims[mask].NextEventTime(); e < t {
				t = e
			}
		}
		if t == sim.MaxTime || t > until {
			break
		}
		r.advanceAll(t)
		r.dispatchAll()
	}
}

// Name implements Algorithm (via RefAlgorithm); exported here for
// symmetric reporting.
func (r *Ref) Name() string { return "REF" }

// advanceAll moves every subcoalition cluster to time t.
func (r *Ref) advanceAll(t model.Time) {
	if !r.opts.Parallel {
		for mask := model.Coalition(1); mask <= r.grand; mask++ {
			r.sims[mask].AdvanceTo(t)
		}
		return
	}
	workers := r.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	forEachChunk(workers, int(r.grand), func(lo, hi int) {
		for mask := lo + 1; mask <= hi; mask++ { // masks are 1-based
			c := r.sims[mask]
			c.AdvanceTo(t)
			c.Flush() // accrual work happens on the worker
		}
	})
}

// refreshValues snapshots every coalition's value at the current time.
func (r *Ref) refreshValues() {
	r.vals[0] = 0
	for mask := model.Coalition(1); mask <= r.grand; mask++ {
		r.vals[mask] = r.sims[mask].Value()
	}
}

// dispatchAll lets every coalition with a free machine and waiting jobs
// schedule, smallest coalitions first (Figure 1's FairAlgorithm loop).
// Coalition values at the current instant are unaffected by same-instant
// starts (a job started at t has executed nothing before t), so one
// value snapshot serves all coalitions.
func (r *Ref) dispatchAll() {
	any := false
	for _, mask := range r.bySize {
		if r.sims[mask].CanDispatch() {
			any = true
			break
		}
	}
	if !any {
		return
	}
	r.refreshValues()
	for _, mask := range r.bySize {
		c := r.sims[mask]
		if !c.CanDispatch() {
			continue
		}
		r.computePhi(mask)
		c.Dispatch()
	}
}

// computePhi fills r.phi[mask] with the exact Shapley contributions of
// the coalition's members, computed from the current subcoalition value
// snapshot (the UpdateVals procedure of Figure 1). Rotation adjustments
// are reset alongside.
func (r *Ref) computePhi(mask model.Coalition) {
	phi := r.phi[mask]
	adj := r.adj[mask]
	for i := range phi {
		phi[i] = 0
		adj[i] = 0
	}
	w := r.weights[mask.Size()]
	mask.EachNonemptySubset(func(sub model.Coalition) {
		vsub := r.vals[sub]
		weight := w[sub.Size()]
		sub.EachMember(func(u int) {
			phi[u] += weight * float64(vsub-r.vals[sub.Without(u)])
		})
	})
}

// PhiOf returns the most recently computed contribution vector for a
// coalition (valid after Run for the grand coalition, or mid-run for
// any coalition that has dispatched).
func (r *Ref) PhiOf(mask model.Coalition) []float64 {
	return append([]float64(nil), r.phi[mask]...)
}

// ValueOf returns coalition mask's value at the cluster's current time.
// The empty coalition has value 0.
func (r *Ref) ValueOf(mask model.Coalition) int64 {
	if mask.Empty() {
		return 0
	}
	return r.sims[mask].Value()
}

// Cluster exposes a subcoalition's cluster (read-only use intended);
// tests compare subcoalition schedules against independent simulations.
func (r *Ref) Cluster(mask model.Coalition) *sim.Cluster { return r.sims[mask] }

// refPolicy selects argmax(φ−ψ) among the coalition's waiting members —
// the SelectAndSchedule rule of Figure 3, with deterministic low-index
// tie-breaking.
type refPolicy struct {
	r    *Ref
	mask model.Coalition
	view *sim.View
}

// Name implements sim.Policy.
func (p *refPolicy) Name() string { return "REF" }

// Attach implements sim.Policy.
func (p *refPolicy) Attach(v *sim.View, _ *rand.Rand) { p.view = v }

// Select implements sim.Policy.
func (p *refPolicy) Select(_ model.Time, _ int) int {
	phi := p.r.phi[p.mask]
	adj := p.r.adj[p.mask]
	best := -1
	var bestDeficit float64
	p.mask.EachMember(func(u int) {
		if p.view.Waiting(u) == 0 {
			return
		}
		deficit := phi[u] + adj[u] - float64(p.view.Psi(u))
		if best == -1 || deficit > bestDeficit {
			best, bestDeficit = u, deficit
		}
	})
	if p.r.opts.Rotate {
		size := float64(p.mask.Size())
		p.mask.EachMember(func(u int) { adj[u] += 1 / size })
		adj[best]--
	}
	return best
}

// RefAlgorithm adapts Ref to the Algorithm interface (REF is
// deterministic; the seed is ignored).
type RefAlgorithm struct{ Opts RefOptions }

// Name implements Algorithm.
func (a RefAlgorithm) Name() string { return "REF" }

// Run implements Algorithm.
func (a RefAlgorithm) Run(inst *model.Instance, until model.Time, _ int64) *Result {
	return NewRef(inst, a.Opts).Run(until)
}
