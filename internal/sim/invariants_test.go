package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/stats"
)

// randInstance builds a random small instance.
func randInstance(r *rand.Rand, unitJobs bool) *model.Instance {
	k := 1 + r.Intn(4)
	orgs := make([]model.Org, k)
	total := 0
	for i := range orgs {
		orgs[i] = model.Org{Name: string(rune('A' + i)), Machines: r.Intn(3)}
		total += orgs[i].Machines
	}
	if total == 0 {
		orgs[0].Machines = 1
	}
	n := 1 + r.Intn(25)
	jobs := make([]model.Job, n)
	for i := range jobs {
		size := model.Time(1)
		if !unitJobs {
			size = model.Time(1 + r.Intn(9))
		}
		jobs[i] = model.Job{Org: r.Intn(k), Release: model.Time(r.Intn(20)), Size: size}
	}
	return model.MustNewInstance(orgs, jobs)
}

// randPolicy selects a waiting organization pseudo-randomly but
// deterministically from its own seed; every such policy is greedy by
// construction of the engine.
func randPolicy(seed int64) Policy {
	r := rand.New(rand.NewSource(seed))
	return &SelectFunc{
		PolicyName: "random",
		F: func(v *View, _ model.Time, _ int) int {
			var waiting []int
			for org := 0; org < v.Orgs(); org++ {
				if v.Waiting(org) > 0 {
					waiting = append(waiting, org)
				}
			}
			return waiting[r.Intn(len(waiting))]
		},
	}
}

// checkInvariants validates a finished simulation against the model's
// structural rules.
func checkInvariants(t *testing.T, in *model.Instance, c *Cluster) {
	t.Helper()
	starts := c.Starts()
	// 1. Starts respect release times.
	for _, s := range starts {
		if s.At < in.Jobs[s.Job].Release {
			t.Fatalf("job %d started at %d before release %d", s.Job, s.At, in.Jobs[s.Job].Release)
		}
	}
	// 2. No overlap per machine.
	perMachine := map[int][]Start{}
	for _, s := range starts {
		perMachine[s.Machine] = append(perMachine[s.Machine], s)
	}
	for m, ss := range perMachine {
		for i := 1; i < len(ss); i++ {
			prevEnd := ss[i-1].At + in.Jobs[ss[i-1].Job].Size
			if ss[i].At < prevEnd {
				t.Fatalf("machine %d overlap: job %d (ends %d) and job %d (starts %d)",
					m, ss[i-1].Job, prevEnd, ss[i].Job, ss[i].At)
			}
		}
	}
	// 3. FIFO per organization: start order follows job ID order.
	lastID := map[int]int{}
	for _, s := range starts {
		if prev, ok := lastID[s.Org]; ok && s.Job < prev {
			t.Fatalf("org %d FIFO violated: job %d after %d", s.Org, s.Job, prev)
		}
		lastID[s.Org] = s.Job
	}
	// 4. Greediness: no machine idle interval may intersect any job's
	// waiting interval [release, start).
	type interval struct{ lo, hi model.Time }
	horizon := c.Now()
	var idles []interval
	for m := 0; m < c.View().Machines(); m++ {
		cur := model.Time(0)
		for _, s := range perMachine[m] {
			if s.At > cur {
				idles = append(idles, interval{cur, s.At})
			}
			cur = s.At + in.Jobs[s.Job].Size
		}
		if cur < horizon {
			idles = append(idles, interval{cur, horizon})
		}
	}
	started := map[int]model.Time{}
	for _, s := range starts {
		started[s.Job] = s.At
	}
	for _, j := range in.Jobs {
		if !c.Coalition().Has(j.Org) {
			continue
		}
		lo := j.Release
		hi, ok := started[j.ID]
		if !ok {
			hi = horizon
		}
		for _, idle := range idles {
			a, b := lo, hi
			if idle.lo > a {
				a = idle.lo
			}
			if idle.hi < b {
				b = idle.hi
			}
			if a < b {
				t.Fatalf("greediness violated: job %d waited during machine idle [%d,%d)", j.ID, a, b)
			}
		}
	}
}

func TestSimulatorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInstance(r, false)
		c := New(in, in.Grand(), randPolicy(seed+1), stats.NewRand(seed+2))
		c.Run(in.Horizon() + 5)
		checkInvariants(t, in, c)
		if got := len(c.Starts()); got != len(in.Jobs) {
			t.Fatalf("only %d of %d jobs started by the horizon", got, len(in.Jobs))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Proposition 5.4: with unit-size jobs, every greedy algorithm yields the
// same coalition value at every time moment.
func TestUnitJobValueScheduleIndependent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInstance(r, true)
		a := New(in, in.Grand(), randPolicy(seed+10), nil)
		b := New(in, in.Grand(), randPolicy(seed+20), nil)
		horizon := in.Horizon() + 3
		for ti := model.Time(0); ti <= horizon; ti++ {
			a.Run(ti)
			b.Run(ti)
			if a.Value() != b.Value() {
				t.Fatalf("seed %d: values diverge at t=%d: %d vs %d", seed, ti, a.Value(), b.Value())
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Theorem 6.2: every greedy algorithm is 3/4-competitive for resource
// utilization; in particular any two greedy schedules' executed-unit
// counts at any time T are within a factor 4/3 of each other.
func TestGreedyThreeQuartersCompetitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInstance(r, false)
		horizon := in.Horizon()
		T := model.Time(1 + r.Int63n(int64(horizon)+1))
		var busies []int64
		for p := 0; p < 4; p++ {
			c := New(in, in.Grand(), randPolicy(seed+int64(p)*7), nil)
			c.Run(T)
			busies = append(busies, c.ExecutedUnits())
		}
		lo, hi := busies[0], busies[0]
		for _, b := range busies {
			if b < lo {
				lo = b
			}
			if b > hi {
				hi = b
			}
		}
		// 4·min ≥ 3·max ⇔ min/max ≥ 3/4.
		if 4*lo < 3*hi {
			t.Fatalf("seed %d: utilization ratio %d/%d < 3/4 at T=%d", seed, lo, hi, T)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// The Figure 7 pair is exactly tight: ratio 3/4. Keep it as the extremal
// witness for the bound above.
func TestFigure7IsTight(t *testing.T) {
	a := New(figure7Instance(), model.Grand(2), orgPriority(1, 0), nil)
	a.Run(6)
	b := New(figure7Instance(), model.Grand(2), orgPriority(0, 1), nil)
	b.Run(6)
	if 4*b.ExecutedUnits() != 3*a.ExecutedUnits() {
		t.Fatalf("Figure 7 not tight: %d vs %d", b.ExecutedUnits(), a.ExecutedUnits())
	}
}
