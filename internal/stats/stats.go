// Package stats provides the small statistical toolkit the experiments
// need: seeded random sources, the distributions used by the workload
// generator (Zipf machine splits, lognormal sizes, exponential gaps,
// geometric burst lengths) and streaming mean/stddev summaries for table
// aggregation.
package stats

import (
	"math"
	"math/rand"
)

// Source is a SplitMix64 random source (Steele, Lea & Flood): each draw
// advances an odd-gamma Weyl sequence and avalanches it. Unlike the
// math/rand built-in source, its entire state is one exported word, so
// a mid-stream position can be checkpointed with State and resumed
// byte-identically with SetState — the property the engine's
// Snapshot/Restore machinery needs for every RNG that influences
// scheduling decisions.
type Source struct{ state uint64 }

// NewSource returns a Source seeded deterministically from seed.
func NewSource(seed int64) *Source { return &Source{state: uint64(seed)} }

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source.
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// State returns the current stream position for checkpointing.
func (s *Source) State() uint64 { return s.state }

// SetState resumes the source at a position captured with State.
func (s *Source) SetState(state uint64) { s.state = state }

// NewRand returns a deterministic random source for the given seed.
// Every stochastic component of the module takes a *rand.Rand so that
// experiments are exactly reproducible. The underlying Source is
// checkpointable; callers that need to snapshot mid-stream keep their
// own *Source and wrap it with rand.New themselves.
func NewRand(seed int64) *rand.Rand { return rand.New(NewSource(seed)) }

// NewStreamRand returns the stream-th deterministic substream of the
// seed: every stream is a pure function of (seed, stream) — independent
// of how many streams exist or which goroutine draws from them.
// Parallel samplers give each logical sample its own stream and stay
// byte-identical for any worker count. The seed is avalanched before
// the stream index is added, so colliding streams across two seeds
// would need the seeds' SplitMix64 images to differ by exactly the
// stream offset — unlike a linear seed+c·stream mix, where seeds a
// fixed constant apart share shifted stream sequences.
func NewStreamRand(seed, stream int64) *rand.Rand {
	return rand.New(NewSource(int64(splitmix64(splitmix64(uint64(seed)) + uint64(stream)))))
}

// splitmix64 is the SplitMix64 finalizer (Steele, Lea & Flood): a
// bijective avalanche mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Summary accumulates a stream of observations with Welford's online
// algorithm. The zero value is an empty summary.
type Summary struct {
	N    int
	Mean float64
	m2   float64
	Min  float64
	Max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.N++
	if s.N == 1 {
		s.Min, s.Max = x, x
	} else {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	delta := x - s.Mean
	s.Mean += delta / float64(s.N)
	s.m2 += delta * (x - s.Mean)
}

// Std returns the sample standard deviation (n−1 denominator), or 0 for
// fewer than two observations.
func (s *Summary) Std() float64 {
	if s.N < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.N-1))
}

// Merge folds another summary into s (order-independent up to floating
// point). Used to combine per-worker partial summaries.
func (s *Summary) Merge(o Summary) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	n1, n2 := float64(s.N), float64(o.N)
	delta := o.Mean - s.Mean
	total := n1 + n2
	s.m2 += o.m2 + delta*delta*n1*n2/total
	s.Mean += delta * n2 / total
	s.N += o.N
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// LogNormal draws exp(N(mu, sigma²)).
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// Exponential draws an exponential variate with the given mean.
func Exponential(r *rand.Rand, mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Geometric draws a geometric variate with the given mean, always >= 1
// (number of trials up to and including the first success).
func Geometric(r *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for r.Float64() > p && n < 1<<20 {
		n++
	}
	return n
}
