package fed_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/fed"
	"repro/internal/model"
)

// stalenessFederation builds a deliberately imbalanced two-cluster
// federation (every submission at the small origin) whose routing is
// sensitive to how fresh the exchanged summaries are.
func stalenessFederation(t *testing.T, policy fed.Policy, staleness model.Time) *fed.Federation {
	t.Helper()
	specs := []fed.ClusterSpec{
		{Name: "busy", Alg: algFactory("directcontr"), Machines: []int{1, 1}},
		{Name: "idle", Alg: algFactory("directcontr"), Machines: []int{2, 2}},
	}
	f, err := fed.New([]string{"o0", "o1"}, specs, policy, 9)
	if err != nil {
		t.Fatal(err)
	}
	f.SetStaleness(staleness)
	for i := 0; i < 40; i++ {
		if _, err := f.Submit(0, i%2, 6, model.Time(2*i)); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// TestStalenessDeterminism: a run with a staleness knob is still a pure
// function of its configuration — reruns are byte-identical — and the
// knob round-trips through the accessor.
func TestStalenessDeterminism(t *testing.T) {
	for _, policy := range []fed.Policy{
		fed.LeastLoaded{}, fed.FairnessAware{}, fed.RefPolicy{},
		fed.Migrating{Inner: fed.RefPolicy{}, Budget: fed.DefaultMigrationBudget},
	} {
		t.Run(policy.Name(), func(t *testing.T) {
			a := stalenessFederation(t, policy, 50)
			if got := a.Staleness(); got != 50 {
				t.Fatalf("staleness accessor returned %d, want 50", got)
			}
			b := stalenessFederation(t, policy, 50)
			if _, err := a.Step(600); err != nil {
				t.Fatal(err)
			}
			if _, err := b.Step(600); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fingerprint(t, a), fingerprint(t, b)) {
				t.Fatal("two identically configured stale-gossip runs diverged")
			}
			if err := a.CheckConservation(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStalenessDegradesRouting: with summaries frozen for most of the
// run, load-based routing acts on obsolete backlog information and the
// decision log diverges from the always-fresh run — the realistic
// federated regime the staleness knob models. Conservation holds
// regardless: staleness degrades quality, never correctness.
func TestStalenessDegradesRouting(t *testing.T) {
	fresh := stalenessFederation(t, fed.LeastLoaded{}, 0)
	stale := stalenessFederation(t, fed.LeastLoaded{}, 300)
	if _, err := fresh.Step(600); err != nil {
		t.Fatal(err)
	}
	if _, err := stale.Step(600); err != nil {
		t.Fatal(err)
	}
	if err := stale.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(fingerprint(t, fresh), fingerprint(t, stale)) {
		t.Fatal("a 300-tick-stale exchange routed identically to a fresh one — the knob is inert")
	}
	// The always-fresh run reacts to the origin's backlog immediately;
	// the stale run keeps routing on the cached view between refreshes,
	// so its per-instant choices can't track the queue. Both must still
	// place every job exactly once.
	if fresh.Ledger().Submitted != stale.Ledger().Submitted {
		t.Fatal("staleness changed the number of accepted jobs")
	}
}

// TestStalenessCheckpointRestore: a snapshot taken mid-gossip-period
// carries the cached exchange, so the resumed run routes on the same
// stale view an uninterrupted run would — byte-identically.
func TestStalenessCheckpointRestore(t *testing.T) {
	for _, policy := range []fed.Policy{
		fed.LeastLoaded{}, fed.RefPolicy{},
		fed.Migrating{Inner: fed.RefPolicy{}, Budget: fed.DefaultMigrationBudget},
		fed.Migrating{Inner: fed.FairnessAware{}, Budget: fed.DefaultMigrationBudget},
	} {
		t.Run(policy.Name(), func(t *testing.T) {
			straight := stalenessFederation(t, policy, 37)
			if _, err := straight.Step(600); err != nil {
				t.Fatal(err)
			}

			half := stalenessFederation(t, policy, 37)
			if _, err := half.Step(41); err != nil { // mid-period: cache refreshed at 0, next refresh ≥ 37
				t.Fatal(err)
			}
			snap, err := half.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			specs := []fed.ClusterSpec{
				{Name: "busy", Alg: algFactory("directcontr"), Machines: []int{1, 1}},
				{Name: "idle", Alg: algFactory("directcontr"), Machines: []int{2, 2}},
			}
			resumed, err := fed.Restore([]string{"o0", "o1"}, specs, policy, snap)
			if err != nil {
				t.Fatal(err)
			}
			if got := resumed.Staleness(); got != 37 {
				t.Fatalf("restored staleness %d, want 37", got)
			}
			if _, err := resumed.Step(600); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fingerprint(t, resumed), fingerprint(t, straight)) {
				t.Fatal("resumed stale-gossip federation diverged from uninterrupted run")
			}
		})
	}
}

// TestMigrationConservationDeterminism is the property battery of the
// re-delegation PR: for every delegation policy shape (bare baselines,
// FedREF, and the migrating wrappers at several budgets) crossed with
// every gossip-staleness regime, two identically configured runs must
// stay in lockstep byte for byte, conserve executed units exactly
// through a full drain (every submitted unit slot runs exactly once,
// wherever migration put it), and pass every ledger invariant.
func TestMigrationConservationDeterminism(t *testing.T) {
	policies := []fed.Policy{
		fed.LeastLoaded{},
		fed.FairnessAware{},
		fed.RefPolicy{},
		fed.Migrating{Inner: fed.RefPolicy{}, Budget: fed.DefaultMigrationBudget},
		fed.Migrating{Inner: fed.FairnessAware{}, Budget: fed.DefaultMigrationBudget},
		fed.Migrating{Inner: fed.LeastLoaded{}, Budget: 2},
	}
	for _, policy := range policies {
		for _, staleness := range []model.Time{0, 40, 250} {
			policy, staleness := policy, staleness
			t.Run(fmt.Sprintf("%s/staleness=%d", policy.Name(), staleness), func(t *testing.T) {
				a := stalenessFederation(t, policy, staleness)
				b := stalenessFederation(t, policy, staleness)
				if _, err := a.Step(2000); err != nil {
					t.Fatal(err)
				}
				if _, err := b.Step(2000); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fingerprint(t, a), fingerprint(t, b)) {
					t.Fatal("two identically configured runs diverged")
				}
				if err := a.CheckConservation(); err != nil {
					t.Fatal(err)
				}
				l := a.Ledger()
				// Full drain of the 40×6 workload: executed-units
				// conservation must hold to the last slot.
				if got := l.TotalExecuted(); got != 240 {
					t.Fatalf("executed %d unit slots, submitted 240", got)
				}
				seen := make(map[int64]int)
				for _, d := range a.Decisions() {
					seen[d.Seq]++
				}
				if len(seen) != 40 {
					t.Fatalf("%d distinct jobs started, submitted 40", len(seen))
				}
				for seq, n := range seen {
					if n != 1 {
						t.Fatalf("job %d started %d times", seq, n)
					}
				}
			})
		}
	}
}

// TestFedRefOffloadsEndToEnd: FedREF on a live imbalanced federation
// must actually delegate — the federation-level deficit sends the
// saturated origin's surplus to the idle member — while keeping every
// invariant.
func TestFedRefOffloadsEndToEnd(t *testing.T) {
	f := stalenessFederation(t, fed.RefPolicy{}, 0)
	if _, err := f.Step(600); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	l := f.Ledger()
	if l.Offloaded() == 0 {
		t.Fatal("fedref never offloaded from a saturated 2-machine origin with a 4-machine idle peer")
	}
	lo := stalenessFederation(t, fed.LocalOnly{}, 0)
	if _, err := lo.Step(600); err != nil {
		t.Fatal(err)
	}
	if l.FederationValue() <= lo.Ledger().FederationValue() {
		t.Fatalf("fedref value %d not above local-only %d on a saturated skewed workload",
			l.FederationValue(), lo.Ledger().FederationValue())
	}
	if msg := fmt.Sprintf("%d/%d offloaded", l.Offloaded(), l.Submitted); msg == "" {
		t.Fatal("unreachable")
	}
}
