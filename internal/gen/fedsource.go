package gen

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/stats"
)

// OrgNames returns the scenario's organization-name universe — the
// same names Generate puts in FedWorkload.Orgs — so streaming callers
// can build a federation from (OrgNames, MachineGrid) without ever
// materializing a workload.
func (s FedScenario) OrgNames() []string {
	names := make([]string, s.Orgs)
	for o := range names {
		names[o] = fmt.Sprintf("org%d", o)
	}
	return names
}

// FedSource streams a FedScenario as a model.JobSource: each user is an
// independent lazy burst process on its own decorrelated substream
// (stats.NewStreamRand), and a release-keyed min-heap merges the user
// processes into one globally nondecreasing job stream. Memory is
// O(Users), independent of horizon and therefore of trace length — the
// property that lets federated replays run multi-million-job scenarios
// under the O(window) ingestion path.
//
// The stream is deterministic and replayable: two sources built from
// the same (scenario, horizon, seed) yield identical streams, which is
// what lets a restored checkpoint fast-forward a fresh source to its
// cursor. It is a workload of the scenario's family — same burst
// structure, size distribution, diurnal thinning, cluster/org homing
// distributions — but not byte-identical to Generate's output: the
// batch generator draws every user from one shared rng in trace order,
// which is exactly the coupling a lazy per-user merge cannot replay.
type FedSource struct {
	sc      FedScenario
	horizon model.Time
	seed    int64

	gapMean        float64
	clusterWeights []float64

	users []fedUser
	h     fedUserHeap
}

// fedUser is one user's lazy burst process.
type fedUser struct {
	rng     *rand.Rand
	cluster int
	org     int
	t       model.Time // next candidate submit instant
	burst   int        // jobs left in the current burst (0 = draw a new burst)
	staged  model.SourceJob
	ok      bool
}

// Source returns a streaming generator of the scenario over
// [0, horizon). seed decorrelates scenario instances, playing the role
// Generate's rng argument does for the batch path.
func (s FedScenario) Source(horizon model.Time, seed int64) (*FedSource, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	src := &FedSource{
		sc:             s,
		horizon:        horizon,
		seed:           seed,
		clusterWeights: stats.ZipfWeights(s.Clusters, s.LoadSkew),
	}
	// The same offered-load calibration Generate uses: sessions per user
	// spaced so the family's load is met in expectation.
	targetWork := s.Base.Load * float64(s.Base.Procs) * float64(horizon)
	jobsTotal := targetWork / s.Base.Size.Mean()
	jobsPerUser := jobsTotal / float64(s.Base.Users)
	if jobsPerUser < 1 {
		jobsPerUser = 1
	}
	sessionsPerUser := jobsPerUser / s.Base.SessionJobs
	if sessionsPerUser < 1 {
		sessionsPerUser = 1
	}
	src.gapMean = float64(horizon) / sessionsPerUser

	src.users = make([]fedUser, s.Base.Users)
	for u := range src.users {
		fu := &src.users[u]
		fu.rng = stats.NewStreamRand(seed, int64(u))
		fu.cluster = weightedPick(fu.rng, src.clusterWeights)
		fu.org = fu.rng.Intn(s.Orgs)
		// First session starts at a uniform offset so users are not
		// synchronized at t=0 (as in Family.Generate).
		fu.t = model.Time(fu.rng.Float64() * src.gapMean)
		src.advance(fu)
		if fu.ok {
			heap.Push(&src.h, fedUserRef{at: fu.staged.Release, u: u})
		}
	}
	return src, nil
}

// Next implements model.JobSource: pop the earliest staged job, restage
// its user, and re-insert. Ties break on user index, a fixed key, so
// the merge order is deterministic.
func (s *FedSource) Next() (model.SourceJob, bool, error) {
	if len(s.h) == 0 {
		return model.SourceJob{}, false, nil
	}
	ref := s.h[0]
	fu := &s.users[ref.u]
	job := fu.staged
	s.advance(fu)
	if fu.ok {
		s.h[0] = fedUserRef{at: fu.staged.Release, u: ref.u}
		heap.Fix(&s.h, 0)
	} else {
		heap.Pop(&s.h)
	}
	return job, true, nil
}

// advance generates the user's next surviving job: candidates follow
// the family's burst process (geometric burst lengths, exponential
// think times and session gaps) and each candidate is thinned by the
// home cluster's phase-shifted diurnal rate, consuming the user's own
// rng — one draw per candidate, as the batch generator does.
func (s *FedSource) advance(fu *fedUser) {
	fu.ok = false
	for fu.t < s.horizon {
		if fu.burst == 0 {
			fu.burst = stats.Geometric(fu.rng, s.sc.Base.SessionJobs)
		}
		at := fu.t
		size := s.sc.Base.Size.Draw(fu.rng)
		fu.burst--
		fu.t += model.Time(stats.Exponential(fu.rng, s.sc.Base.ThinkTime)) + 1
		if fu.burst == 0 {
			fu.t += model.Time(stats.Exponential(fu.rng, s.gapMean))
		}
		if s.sc.keep(fu.cluster, at, fu.rng) {
			fu.staged = model.SourceJob{Cluster: fu.cluster, Org: fu.org, Size: size, Release: at}
			fu.ok = true
			return
		}
	}
}

// fedUserRef is one heap entry: a user's staged release instant and
// index.
type fedUserRef struct {
	at model.Time
	u  int
}

// fedUserHeap is a min-heap on (release, user index).
type fedUserHeap []fedUserRef

func (h fedUserHeap) Len() int { return len(h) }
func (h fedUserHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].u < h[j].u
}
func (h fedUserHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *fedUserHeap) Push(x any)   { *h = append(*h, x.(fedUserRef)) }
func (h *fedUserHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
