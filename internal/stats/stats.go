// Package stats provides the small statistical toolkit the experiments
// need: seeded random sources, the distributions used by the workload
// generator (Zipf machine splits, lognormal sizes, exponential gaps,
// geometric burst lengths) and streaming mean/stddev summaries for table
// aggregation.
package stats

import (
	"math"
	"math/rand"
)

// NewRand returns a deterministic random source for the given seed.
// Every stochastic component of the module takes a *rand.Rand so that
// experiments are exactly reproducible.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Summary accumulates a stream of observations with Welford's online
// algorithm. The zero value is an empty summary.
type Summary struct {
	N    int
	Mean float64
	m2   float64
	Min  float64
	Max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.N++
	if s.N == 1 {
		s.Min, s.Max = x, x
	} else {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	delta := x - s.Mean
	s.Mean += delta / float64(s.N)
	s.m2 += delta * (x - s.Mean)
}

// Std returns the sample standard deviation (n−1 denominator), or 0 for
// fewer than two observations.
func (s *Summary) Std() float64 {
	if s.N < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.N-1))
}

// Merge folds another summary into s (order-independent up to floating
// point). Used to combine per-worker partial summaries.
func (s *Summary) Merge(o Summary) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	n1, n2 := float64(s.N), float64(o.N)
	delta := o.Mean - s.Mean
	total := n1 + n2
	s.m2 += o.m2 + delta*delta*n1*n2/total
	s.Mean += delta * n2 / total
	s.N += o.N
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// LogNormal draws exp(N(mu, sigma²)).
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// Exponential draws an exponential variate with the given mean.
func Exponential(r *rand.Rand, mean float64) float64 {
	return r.ExpFloat64() * mean
}

// Geometric draws a geometric variate with the given mean, always >= 1
// (number of trials up to and including the first success).
func Geometric(r *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for r.Float64() > p && n < 1<<20 {
		n++
	}
	return n
}
