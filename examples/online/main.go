// Example online demonstrates the streaming scheduler engine: jobs are
// produced live by a submitter goroutine (the engine never sees the
// future), scheduling decisions print as the clock advances, and the
// run is checkpointed to bytes and resumed mid-flight — the resumed
// engine picks up exactly where the original stopped.
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/sim"
)

// arrival is one submission event produced by the workload goroutine.
type arrival struct {
	at  model.Time // submission instant
	job model.Job
}

func main() {
	// Two organizations share a 3-machine cluster; REF keeps the
	// schedule fair by exact Shapley contributions.
	inst, err := model.NewInstance([]model.Org{
		{Name: "alpha", Machines: 2},
		{Name: "beta", Machines: 1},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	e := engine.New(core.RefAlgorithm{}, inst, 1)

	// The submitter goroutine plays a live workload into a channel:
	// bursts from alpha, a steady trickle from beta. The scheduler
	// learns of each job only when it arrives.
	arrivals := make(chan arrival)
	go func() {
		defer close(arrivals)
		for t := model.Time(0); t < 40; t += 8 {
			arrivals <- arrival{at: t, job: model.Job{Org: 0, Release: t, Size: 6}}
			arrivals <- arrival{at: t, job: model.Job{Org: 0, Release: t, Size: 3}}
			arrivals <- arrival{at: t + 4, job: model.Job{Org: 1, Release: t + 4, Size: 5}}
		}
	}()

	report := func(starts []sim.Start, err error) {
		if err != nil {
			log.Fatal(err)
		}
		printStarts(inst, starts)
	}

	fmt.Println("== live run: decisions as they happen ==")
	var snapshot []byte
	for a := range arrivals {
		// Advance the engine to the submission instant, then feed.
		report(e.Step(a.at))
		if _, err := e.Feed([]model.Job{a.job}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%-3d submit  org=%s size=%d\n", a.at, inst.Orgs[a.job.Org].Name, a.job.Size)
		report(e.Step(a.at)) // same-instant dispatch, if a machine is free

		// Halfway through, checkpoint the whole run to bytes — as
		// fairschedd would before a planned restart.
		if a.at >= 20 && snapshot == nil {
			if snapshot, err = e.Snapshot(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("t=%-3d checkpoint taken (%d bytes, %d decisions so far)\n",
				e.Now(), len(snapshot), len(e.Decisions()))
			// Resume from the snapshot and continue with the restored
			// engine: the original is abandoned mid-run.
			if e, err = engine.Restore(core.RefAlgorithm{}, snapshot); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("t=%-3d resumed from checkpoint\n", e.Now())
		}
	}

	// Drain: no more arrivals, run every remaining event to completion.
	for {
		starts, ok, err := e.StepToNextEvent()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		printStarts(inst, starts)
	}

	res := e.Result()
	fmt.Println("\n== final accounting ==")
	fmt.Printf("horizon t=%d, %d jobs scheduled, utilization %.2f\n",
		e.Now(), len(res.Starts), res.Utilization)
	for i, o := range inst.Orgs {
		fmt.Printf("%-6s ψ=%-6d φ=%.1f\n", o.Name, res.Psi[i], res.Phi[i])
	}
}

// printStarts prints each decision in "t= start org on machine" form.
func printStarts(inst *model.Instance, starts []sim.Start) {
	for _, s := range starts {
		fmt.Printf("t=%-3d start   job#%d of %s on machine %d\n",
			s.At, s.Job, inst.Orgs[s.Org].Name, s.Machine)
	}
}
