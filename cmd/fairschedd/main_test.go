package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/daemon"
)

func TestBuildFlagParsing(t *testing.T) {
	var stderr bytes.Buffer
	a, err := build([]string{"-alg", "directcontr", "-orgs", "4", "-machines", "8", "-addr", ":9999"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if a == nil || a.addr != ":9999" {
		t.Fatalf("build: app=%v", a)
	}
	if _, ok := a.srv.Manager().Get(daemon.DefaultSession); !ok {
		t.Fatal("boot did not create the default session")
	}
	if _, err := build([]string{"-alg", "nope"}, &stderr); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := build([]string{"-orgs", "0"}, &stderr); err == nil {
		t.Fatal("zero organizations accepted")
	}
	if _, err := build([]string{"-no-default-session", "-restore", "whatever.ckpt"}, &stderr); err == nil {
		t.Fatal("-restore without a fresh default session accepted")
	}
	if _, err := build([]string{"-rand-stratified", "-alg", "rand"}, &stderr); err != nil {
		t.Fatalf("-rand-stratified rejected: %v", err)
	}
	if _, err := build([]string{"-ref-driver", "bogus"}, &stderr); err == nil {
		t.Fatal("unknown REF driver accepted")
	}
	if _, err := build([]string{"-restore", "/nonexistent/ckpt"}, &stderr); err == nil {
		t.Fatal("missing checkpoint file accepted")
	}
	a, err = build([]string{"-no-default-session"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.srv.Manager().Get(daemon.DefaultSession); ok {
		t.Fatal("-no-default-session still created a default session")
	}
	if _, err := build([]string{"-flush-interval", "1s"}, &stderr); err == nil {
		t.Fatal("-flush-interval without -checkpoint-dir accepted")
	}
	if _, err := build([]string{"-pipeline-workers", "-1"}, &stderr); err == nil {
		t.Fatal("negative -pipeline-workers accepted")
	}
	a, err = build([]string{"-pipeline-workers", "2", "-pipeline-burst", "4"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if a.pipe == nil {
		t.Fatal("-pipeline-workers did not start the advance pipeline")
	}
	a.shutdown(nil, &stderr)
}

// End-to-end daemon smoke over the legacy single-run endpoints: boot
// from flags, submit jobs over HTTP, advance, drain decisions,
// checkpoint to disk, and boot a second daemon from that checkpoint.
// These are the pre-session paths, kept as aliases of the "default"
// session.
func TestDaemonRoundTripAndRestore(t *testing.T) {
	var stderr bytes.Buffer
	a, err := build([]string{"-alg", "ref", "-orgs", "2", "-machines", "3", "-seed", "7"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(a.srv.Handler())
	defer ts.Close()

	post := func(path, body string) map[string]any {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d: %s", path, resp.StatusCode, raw)
		}
		var out map[string]any
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	post("/v1/jobs", `{"jobs":[{"org":0,"size":3},{"org":1,"size":2},{"org":1,"size":4,"release":5}]}`)
	adv := post("/v1/advance", `{"until":30}`)
	if n := len(adv["decisions"].([]any)); n != 3 {
		t.Fatalf("daemon made %d decisions, want 3", n)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(ckpt, snap, 0o644); err != nil {
		t.Fatal(err)
	}

	stderr.Reset()
	a2, err := build([]string{"-alg", "ref", "-restore", ckpt}, &stderr)
	if err != nil {
		t.Fatalf("boot from checkpoint: %v", err)
	}
	ts2 := httptest.NewServer(a2.srv.Handler())
	defer ts2.Close()
	resp, err = ts2.Client().Get(ts2.URL + "/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var state map[string]any
	if err := json.Unmarshal(raw, &state); err != nil {
		t.Fatal(err)
	}
	if state["now"].(float64) != 30 || state["decisions"].(float64) != 3 {
		t.Fatalf("restored daemon state: %v", state)
	}
	if !strings.Contains(stderr.String(), "restored") {
		t.Fatalf("boot log missing restore notice: %q", stderr.String())
	}
	// A restored daemon keeps serving: feed one more job and drain it.
	resp2, err := ts2.Client().Post(ts2.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"jobs":[{"org":0,"size":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	adv2 := post2(t, ts2, "/v1/advance", `{"until":40}`)
	if n := len(adv2["decisions"].([]any)); n != 1 {
		t.Fatalf("restored daemon scheduled %d jobs, want 1: %v", n, adv2)
	}
}

func post2(t *testing.T, ts *httptest.Server, path, body string) map[string]any {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %d: %s", path, resp.StatusCode, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestGracefulShutdownFlushesSessions: on SIGINT/SIGTERM the daemon
// flushes a final checkpoint for every live session, and a later boot
// pointed at the same directory resumes them all mid-run.
func TestGracefulShutdownFlushesSessions(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpts")
	var stderr bytes.Buffer
	a, err := build([]string{"-alg", "directcontr", "-orgs", "2", "-checkpoint-dir", dir}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(a.srv.Handler())

	// A second, federated session alongside the default one.
	post2(t, ts, "/v1/jobs", `{"jobs":[{"org":0,"size":4},{"org":1,"size":2}]}`)
	post2(t, ts, "/v1/advance", `{"until":10}`)
	resp, err := ts.Client().Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader(`{
	  "id":"fedrun","kind":"federation","org_names":["a","b"],"policy":"leastloaded","seed":3,
	  "clusters":[{"name":"east","alg":"directcontr","machines":[2,0]},
	              {"name":"west","alg":"directcontr","machines":[0,1]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("create federated session: %d: %s", resp.StatusCode, raw)
	}
	resp.Body.Close()
	post2(t, ts, "/v1/sessions/fedrun/jobs", `{"jobs":[{"cluster":0,"org":0,"size":5},{"cluster":0,"org":1,"size":3}]}`)
	post2(t, ts, "/v1/sessions/fedrun/advance", `{"until":6}`)
	ts.Close()

	// The signal path: shutdown drains HTTP and flushes every session.
	a.shutdown(nil, &stderr)
	if !strings.Contains(stderr.String(), "flushed 2 session checkpoint(s)") {
		t.Fatalf("shutdown log missing flush notice: %q", stderr.String())
	}
	for _, name := range []string{"default.session.json", "fedrun.session.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing flushed envelope: %v", err)
		}
	}

	// Next boot resumes both sessions exactly where they stopped.
	stderr.Reset()
	b, err := build([]string{"-checkpoint-dir", dir}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr.String(), "restored session(s) default, fedrun") {
		t.Fatalf("boot log missing reload notice: %q", stderr.String())
	}
	def, _ := b.srv.Manager().Get(daemon.DefaultSession)
	if st := def.State(); st.Now != 10 || st.Jobs != 2 {
		t.Fatalf("default session resumed wrong: %+v", st)
	}
	fr, ok := b.srv.Manager().Get("fedrun")
	if !ok {
		t.Fatal("federated session not resumed")
	}
	if st := fr.State(); st.Now != 6 || st.Kind != daemon.KindFederation || st.Jobs != 2 {
		t.Fatalf("federated session resumed wrong: %+v", st)
	}
}

// TestKillAndRestartUnderPeriodicFlush: with -flush-interval the store
// persists dirty sessions in the background, so a hard kill (no
// graceful shutdown, no final flush) loses nothing that was flushed —
// and a truncated envelope planted in the directory is quarantined at
// boot instead of blocking it.
func TestKillAndRestartUnderPeriodicFlush(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpts")
	var stderr bytes.Buffer
	a, err := build([]string{"-alg", "directcontr", "-orgs", "2",
		"-checkpoint-dir", dir, "-flush-interval", "2ms", "-pipeline-workers", "2"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(a.srv.Handler())
	post2(t, ts, "/v1/jobs", `{"jobs":[{"org":0,"size":4},{"org":1,"size":2}]}`)
	post2(t, ts, "/v1/advance", `{"until":10}`)
	ts.Close()

	// Wait until the envelope on disk reflects the advanced state (the
	// flusher may legitimately have flushed a pre-advance snapshot
	// first), then kill: stop only the goroutines (so the test does
	// not leak them) — no graceful shutdown, no final flush.
	deadline := time.Now().Add(5 * time.Second)
	for {
		scratch := daemon.NewManager()
		if ids, _, err := scratch.LoadDir(dir); err == nil && len(ids) == 1 {
			if s, ok := scratch.Get(daemon.DefaultSession); ok && s.State().Now == 10 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("background flusher never persisted the advanced state within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	a.flusher.Stop()
	a.pipe.Close()

	// A corrupt envelope appears in the directory (a crashed foreign
	// writer, say): the next boot must quarantine it, not die.
	if err := os.WriteFile(filepath.Join(dir, "broken.session.json"), []byte(`{"id":"bro`), 0o644); err != nil {
		t.Fatal(err)
	}

	stderr.Reset()
	b, err := build([]string{"-checkpoint-dir", dir}, &stderr)
	if err != nil {
		t.Fatalf("boot after kill: %v", err)
	}
	if !strings.Contains(stderr.String(), "quarantined corrupt envelope") {
		t.Fatalf("boot log missing quarantine notice: %q", stderr.String())
	}
	def, ok := b.srv.Manager().Get(daemon.DefaultSession)
	if !ok {
		t.Fatal("default session lost across the kill")
	}
	if st := def.State(); st.Now != 10 || st.Jobs != 2 || st.Decisions != 2 {
		t.Fatalf("session resumed at %+v, want the last flushed state", st)
	}
}
