package exp

import (
	"testing"

	"repro/internal/ctrl"
)

// tinyAdmissionConfig shrinks the ablation to smoke-test size.
func tinyAdmissionConfig() AdmissionConfig {
	cfg := DefaultAdmissionConfig()
	cfg.Scenario.Base = cfg.Scenario.Base.Scale(0.15)
	cfg.Horizon = 1500
	cfg.Instances = 2
	cfg.LoadFactors = []float64{1, 2}
	return cfg
}

// TestAdmissionTable: the ablation renders every (variant × load) row,
// the shares are sane percentages, the ungated baseline admits
// everything, and the calibrated token bucket sheds load at 2×.
func TestAdmissionTable(t *testing.T) {
	cfg := tinyAdmissionConfig()
	variants := DefaultAdmissionVariants(cfg.Scenario)
	tab, err := AdmissionTable(cfg, variants)
	if err != nil {
		t.Fatal(err)
	}
	for _, lf := range cfg.LoadFactors {
		for _, v := range variants {
			row := admissionRow(v.Name, lf)
			admit := tab.Get(AdmMetricAdmit, row)
			reject := tab.Get(AdmMetricReject, row)
			if admit == nil || reject == nil {
				t.Fatalf("row %q missing", row)
			}
			if admit.Mean < 0 || admit.Mean > 100 || reject.Mean < 0 || reject.Mean > 100 {
				t.Fatalf("row %q: shares out of range: admit %v reject %v", row, admit.Mean, reject.Mean)
			}
		}
	}
	if got := tab.Get(AdmMetricAdmit, admissionRow("always", 1)).Mean; got != 100 {
		t.Fatalf("ungated baseline admitted %v%%, want 100", got)
	}
	if got := tab.Get(AdmMetricReject, admissionRow("tokenbucket", 2)).Mean; got <= 0 {
		t.Fatalf("token bucket rejected %v%% at 2x overload, want > 0", got)
	}
	if got := tab.Get(AdmMetricDelta, admissionRow("always", 1)).Mean; got != 0 {
		t.Fatalf("baseline unfairness vs itself is %v, want 0", got)
	}
}

// TestAdmissionTableValidation covers the error surface.
func TestAdmissionTableValidation(t *testing.T) {
	cfg := tinyAdmissionConfig()
	good := DefaultAdmissionVariants(cfg.Scenario)
	if _, err := AdmissionTable(cfg, nil); err == nil {
		t.Fatal("no variants accepted")
	}
	bad := cfg
	bad.LoadFactors = nil
	if _, err := AdmissionTable(bad, good); err == nil {
		t.Fatal("no load factors accepted")
	}
	bad = cfg
	bad.LoadFactors = []float64{-1}
	if _, err := AdmissionTable(bad, good); err == nil {
		t.Fatal("negative load factor accepted")
	}
	bad = cfg
	bad.Policy = "bogus"
	if _, err := AdmissionTable(bad, good); err == nil {
		t.Fatal("unknown routing policy accepted")
	}
	broken := []AdmissionVariant{{Name: "x", Spec: ctrl.PolicySpec{Policy: "tokenbucket", Rate: 0}}}
	if _, err := AdmissionTable(cfg, broken); err == nil {
		t.Fatal("unbuildable variant accepted")
	}
}
