package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/stats"
)

// RAND's output is a pure function of (instance, samples, seed): every
// permutation comes from its own SplitMix64 stream and the sampled
// clusters are independent, so any worker count must yield byte-identical
// results — schedules, utilities, and bit-for-bit equal φ estimates.
func TestRandWorkerCountInvariance(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(700 + seed))
		in := randCoreInstance(r, 4, false)
		horizon := in.Horizon() + 1
		stratified := seed%2 == 1 // cover both sampling schemes
		base := RandAlgorithm{Samples: 20, Opts: RandOptions{Workers: 1, Stratified: stratified}}.Run(in, horizon, seed)
		for _, workers := range []int{4, 16} {
			got := RandAlgorithm{Samples: 20, Opts: RandOptions{Workers: workers, Stratified: stratified}}.Run(in, horizon, seed)
			if len(got.Starts) != len(base.Starts) {
				t.Fatalf("seed %d workers %d: start counts differ: %d vs %d", seed, workers, len(got.Starts), len(base.Starts))
			}
			for i := range base.Starts {
				if got.Starts[i] != base.Starts[i] {
					t.Fatalf("seed %d workers %d: start %d differs: %+v vs %+v", seed, workers, i, got.Starts[i], base.Starts[i])
				}
			}
			for u := range base.Psi {
				if got.Psi[u] != base.Psi[u] {
					t.Fatalf("seed %d workers %d: ψ[%d] differs: %d vs %d", seed, workers, u, got.Psi[u], base.Psi[u])
				}
				if math.Float64bits(got.Phi[u]) != math.Float64bits(base.Phi[u]) {
					t.Fatalf("seed %d workers %d: φ[%d] differs bitwise: %v vs %v", seed, workers, u, got.Phi[u], base.Phi[u])
				}
			}
			if got.Value != base.Value || got.Ptot != base.Ptot {
				t.Fatalf("seed %d workers %d: value/ptot differ", seed, workers)
			}
		}
	}
}

// Invariance must also hold on a realistic workload large enough to
// actually cross the parallel-advancement threshold (many sampled
// coalitions, thousands of events).
func TestRandWorkerCountInvarianceOnFamilyWorkload(t *testing.T) {
	fam := gen.LPCEGEE().Scale(0.1)
	const orgs, horizon = 5, 2000
	machines := stats.ZipfSplit(fam.Procs, orgs, 1)
	inst, err := fam.Instance(horizon, orgs, machines, stats.NewRand(11))
	if err != nil {
		t.Fatal(err)
	}
	base := RandAlgorithm{Samples: 30, Opts: RandOptions{Workers: 1}}.Run(inst, horizon, 3)
	for _, workers := range []int{4, 16} {
		got := RandAlgorithm{Samples: 30, Opts: RandOptions{Workers: workers}}.Run(inst, horizon, 3)
		for i := range base.Starts {
			if got.Starts[i] != base.Starts[i] {
				t.Fatalf("workers %d: start %d differs", workers, i)
			}
		}
		for u := range base.Phi {
			if math.Float64bits(got.Phi[u]) != math.Float64bits(base.Phi[u]) {
				t.Fatalf("workers %d: φ[%d] differs bitwise", workers, u)
			}
		}
	}
}
