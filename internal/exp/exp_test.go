package exp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gen"
)

// tinyFamily is a scaled-down workload so the end-to-end pipeline stays
// fast in unit tests.
func tinyFamily() gen.Family {
	f := gen.LPCEGEE().Scale(0.15) // ~10 procs, ~8 users
	f.Name = "tiny"
	return f
}

func tinyConfig() Config {
	cfg := DefaultConfig(tinyFamily())
	cfg.Horizon = 3000
	cfg.Instances = 4
	cfg.Orgs = 3
	cfg.Workers = 2
	return cfg
}

func TestRunUnfairnessPipeline(t *testing.T) {
	cfg := tinyConfig()
	algs := DefaultAlgorithms(10)
	vals, err := RunUnfairness(cfg, algs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(algs) {
		t.Fatalf("algorithms = %d", len(vals))
	}
	for a := range vals {
		if len(vals[a]) != cfg.Instances {
			t.Fatalf("instances = %d", len(vals[a]))
		}
		for i, v := range vals[a] {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("%s instance %d: unfairness %v", algs[a].Name(), i, v)
			}
		}
	}
}

func TestRunUnfairnessDeterministic(t *testing.T) {
	cfg := tinyConfig()
	algs := DefaultAlgorithms(5)
	a, err := RunUnfairness(cfg, algs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1 // parallelism must not change results
	b, err := RunUnfairness(cfg, algs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("value [%d][%d] differs across worker counts: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestUnfairnessTableAndRender(t *testing.T) {
	cfg := tinyConfig()
	cfg.Instances = 2
	table, err := UnfairnessTable([]Config{cfg}, DefaultAlgorithms(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Workloads) != 1 || len(table.Algorithms) != 7 {
		t.Fatalf("table shape: %v × %v", table.Workloads, table.Algorithms)
	}
	out := table.Render("Table test")
	for _, alg := range table.Algorithms {
		if !strings.Contains(out, alg) {
			t.Errorf("rendered table missing %q:\n%s", alg, out)
		}
	}
	if !strings.Contains(out, "tiny") || !strings.Contains(out, "St.dev") {
		t.Errorf("rendered table malformed:\n%s", out)
	}
}

func TestOrgCountSweep(t *testing.T) {
	cfg := tinyConfig()
	cfg.Instances = 2
	table, err := OrgCountSweep(cfg, []int{2, 3}, DefaultAlgorithms(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Workloads) != 2 || table.Workloads[0] != "k=2" || table.Workloads[1] != "k=3" {
		t.Fatalf("sweep labels: %v", table.Workloads)
	}
	out := table.RenderSeries("Figure 10 test")
	if !strings.Contains(out, "k=2") || !strings.Contains(out, "RoundRobin") {
		t.Errorf("series render malformed:\n%s", out)
	}
}

func TestFigure2Values(t *testing.T) {
	r := Figure2()
	if r.Psi13 != 262 {
		t.Errorf("ψ(13) = %d, want 262", r.Psi13)
	}
	if r.Psi14 != 297 {
		t.Errorf("ψ(14) = %d, want 297", r.Psi14)
	}
	if r.Flow14 != 70 {
		t.Errorf("flow = %d, want 70", r.Flow14)
	}
	if !strings.Contains(r.Gantt, "M0") || !strings.Contains(r.Legend, "O2") {
		t.Error("figure 2 rendering incomplete")
	}
}

func TestFigure7Values(t *testing.T) {
	r := Figure7()
	if r.UtilizationO2First != 1.0 {
		t.Errorf("O2-first utilization = %v, want 1.0", r.UtilizationO2First)
	}
	if r.UtilizationO1First != 0.75 {
		t.Errorf("O1-first utilization = %v, want 0.75", r.UtilizationO1First)
	}
	if !strings.Contains(r.GanttO1First, ".") {
		t.Error("O1-first Gantt shows no idle time")
	}
	if strings.Contains(strings.SplitN(r.GanttO2First, "\n", 2)[1], ".") {
		t.Error("O2-first Gantt shows idle time on machine 0")
	}
}

func TestFormatVal(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		0.014:  "0.014",
		1.3:    "1.30",
		26:     "26.0",
		2839.4: "2839",
	}
	for v, want := range cases {
		if got := formatVal(v); got != want {
			t.Errorf("formatVal(%v) = %q, want %q", v, got, want)
		}
	}
}

// The qualitative headline of the paper: ROUNDROBIN is much less fair
// than the Shapley-aware algorithms on a loaded workload. Run a small
// but non-trivial configuration and check the ordering.
func TestRoundRobinLeastFair(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering check needs a loaded workload; skip in -short")
	}
	f := gen.RICC().Scale(0.1) // ~26 procs
	f.Name = "ricc-tiny"
	cfg := DefaultConfig(f)
	cfg.Horizon = 10000
	cfg.Instances = 6
	cfg.Workers = 0
	algs := DefaultAlgorithms(15)
	vals, err := RunUnfairness(cfg, algs)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(a int) float64 {
		var s float64
		for _, v := range vals[a] {
			s += v
		}
		return s / float64(len(vals[a]))
	}
	rr := mean(0)     // RoundRobin
	randM := mean(1)  // Rand(N=15)
	direct := mean(2) // DirectContr
	if rr <= randM || rr <= direct {
		t.Errorf("expected RoundRobin least fair: RR=%.2f Rand=%.2f Direct=%.2f", rr, randM, direct)
	}
}
