package fed

import (
	"encoding/json"
	"fmt"

	"repro/internal/ctrl"
	"repro/internal/engine"
	"repro/internal/model"
)

// CheckpointVersion identifies the serialized federation checkpoint
// layout. Member engine snapshots carry their own core.CheckpointVersion.
// Version 2 added the migration bookkeeping: per-member origin columns
// and the ledger's Migrated/MigratedWork matrices. Version 3 added the
// control plane: the admission spec and the plane's serialized state
// (event queue, policy state, per-organization admission counters).
// Version 4 added streaming ingestion: the job-source cursor block,
// absent for materialized runs. Version 3 checkpoints (necessarily
// sourceless) still restore.
const CheckpointVersion = 4

// minCheckpointVersion is the oldest layout Restore accepts: version 3
// differs from 4 only by never carrying a source block.
const minCheckpointVersion = 3

// Checkpoint is the complete serializable state of a federation: the
// routing layer (pending queue, sequence counter, ledger counters,
// decision log) plus one embedded engine snapshot per member. Like
// engine checkpoints, it carries only dynamic state — restoring
// requires the same static configuration (organization universe,
// cluster specs, delegation policy) that captured it.
type Checkpoint struct {
	Version int                `json:"version"`
	Policy  string             `json:"policy"`
	Seed    int64              `json:"seed"`
	Now     model.Time         `json:"now"`
	Orgs    []string           `json:"orgs"`
	NextSeq int64              `json:"next_seq"`
	Pending []Pending          `json:"pending,omitempty"`
	Decs    []Decision         `json:"decisions,omitempty"`
	Ledger  *Ledger            `json:"ledger"`
	Members []MemberCheckpoint `json:"members"`

	// Summary-gossip staleness state: the knob itself and, when a
	// cached exchange snapshot is live, the snapshot and its timestamp —
	// restoring mid-gossip-period must route on the same stale view an
	// uninterrupted run would. The cached view lives in the snapshot
	// provider; it is persisted here (not in Ctrl) because only the
	// federation knows its payload type.
	Staleness model.Time `json:"staleness,omitempty"`
	ExAt      model.Time `json:"ex_at,omitempty"`
	ExSums    []Summary  `json:"ex_sums,omitempty"`
	ExRouted  [][]int64  `json:"ex_routed,omitempty"`

	// Control-plane state: the admission spec that was installed and the
	// plane's serialized dynamic state (pending control events including
	// deferred retries, mutable policy state, admission counters). Both
	// empty when the plane is off.
	Admission *ctrl.PolicySpec `json:"admission,omitempty"`
	Ctrl      json.RawMessage  `json:"ctrl,omitempty"`

	// Streaming-ingestion state (version 4): present when a job source
	// was attached. Only the consumption cursor is persisted — sources
	// are replayable by contract, so restore re-opens the source and
	// skips Cursor jobs rather than serializing the unconsumed stream
	// (which may be millions of jobs, the thing streaming exists to
	// never materialize).
	Source *SourceCheckpoint `json:"source,omitempty"`
}

// SourceCheckpoint is the streaming-ingestion cursor: how far into the
// job stream the capturing run had consumed, the lookahead window, and
// the order-contract watermark.
type SourceCheckpoint struct {
	Cursor int64      `json:"cursor"`
	Window int        `json:"window"`
	Done   bool       `json:"done,omitempty"`
	Last   model.Time `json:"last,omitempty"`
}

// MemberCheckpoint is one member cluster's state: identity, machine
// grid row, the local-ID→sequence and local-ID→origin mappings (−1 =
// migrated-away tombstone), and the engine snapshot.
type MemberCheckpoint struct {
	Name     string          `json:"name"`
	Machines []int           `json:"machines"`
	SeqOf    []int64         `json:"seq_of,omitempty"`
	OriginOf []int           `json:"origin_of,omitempty"`
	Engine   json.RawMessage `json:"engine"`
}

// Snapshot serializes the federation's complete deterministic state as
// JSON. Restoring it — in this process or another — resumes the run
// byte-identically: same future routing, same decisions, same ψ.
func (f *Federation) Snapshot() ([]byte, error) {
	if f.srcErr != nil {
		return nil, fmt.Errorf("fed: snapshot after job source failure: %w", f.srcErr)
	}
	f.sortPending() // checkpoints always carry the canonical order
	cp := Checkpoint{
		Version:   CheckpointVersion,
		Policy:    f.policy.Name(),
		Seed:      f.seed,
		Now:       f.now,
		Orgs:      f.orgs,
		NextSeq:   f.nextSeq,
		Pending:   f.pending,
		Decs:      f.decs,
		Ledger:    f.Ledger(),
		Staleness: f.provider.MaxAge(),
		Admission: f.admission,
	}
	if v, ok := f.provider.Cached(); ok {
		ex := v.Payload.(*exchange)
		cp.ExAt = v.TakenAt
		cp.ExSums = ex.Sums
		cp.ExRouted = ex.Routed
	}
	if f.plane != nil {
		st, err := f.plane.State()
		if err != nil {
			return nil, fmt.Errorf("fed: snapshot control plane: %w", err)
		}
		cp.Ctrl = st
	}
	if f.source != nil || f.srcNeeded {
		cp.Source = &SourceCheckpoint{
			Cursor: f.srcCursor,
			Window: f.srcWindow,
			Done:   f.srcDone,
			Last:   f.srcLast,
		}
	}
	for i, m := range f.members {
		snap, err := m.eng.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("fed: snapshot cluster %d (%s): %w", i, m.name, err)
		}
		machines := make([]int, len(f.orgs))
		for o, org := range m.eng.Instance().Orgs {
			machines[o] = org.Machines
		}
		cp.Members = append(cp.Members, MemberCheckpoint{
			Name:     m.name,
			Machines: machines,
			SeqOf:    m.seqOf,
			OriginOf: m.originOf,
			Engine:   snap,
		})
	}
	return json.Marshal(cp)
}

// Restore rebuilds a federation from a Snapshot. The static
// configuration — organization universe, cluster count/names/machine
// grids, per-cluster algorithms and the delegation policy — must match
// the one that captured the snapshot.
func Restore(orgs []string, specs []ClusterSpec, policy Policy, data []byte) (*Federation, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("fed: restore: %w", err)
	}
	if cp.Version < minCheckpointVersion || cp.Version > CheckpointVersion {
		return nil, fmt.Errorf("fed: restore: checkpoint version %d, want %d..%d", cp.Version, minCheckpointVersion, CheckpointVersion)
	}
	if policy == nil {
		return nil, fmt.Errorf("fed: restore: nil delegation policy")
	}
	if cp.Policy != policy.Name() {
		return nil, fmt.Errorf("fed: restore: checkpoint routed by %q, federation configured with %q", cp.Policy, policy.Name())
	}
	if len(cp.Orgs) != len(orgs) {
		return nil, fmt.Errorf("fed: restore: checkpoint has %d organizations, configuration %d", len(cp.Orgs), len(orgs))
	}
	for i := range orgs {
		if cp.Orgs[i] != orgs[i] {
			return nil, fmt.Errorf("fed: restore: organization %d is %q in checkpoint, %q in configuration", i, cp.Orgs[i], orgs[i])
		}
	}
	if len(cp.Members) != len(specs) {
		return nil, fmt.Errorf("fed: restore: checkpoint has %d clusters, configuration %d", len(cp.Members), len(specs))
	}
	if err := cp.Ledger.validate(len(specs), len(orgs)); err != nil {
		return nil, fmt.Errorf("fed: restore: %w", err)
	}
	f := &Federation{
		orgs:     append([]string(nil), orgs...),
		policy:   policy,
		seed:     cp.Seed,
		now:      cp.Now,
		nextSeq:  cp.NextSeq,
		pending:  cp.Pending,
		decs:     cp.Decs,
		reported: len(cp.Decs),
		ledger:   cp.Ledger,
	}
	f.provider = ctrl.NewCachedSnapshotProvider(f.captureExchange, cp.Staleness)
	if len(cp.ExSums) > 0 {
		if len(cp.ExSums) != len(specs) {
			return nil, fmt.Errorf("fed: restore: exchange snapshot has %d summaries for %d clusters",
				len(cp.ExSums), len(specs))
		}
		// The routed-work matrix is captured only for ledger-aware
		// policies; the policy name match above guarantees the restoring
		// policy reads exactly what the capturing one did.
		if usesLedger(policy) || len(cp.ExRouted) > 0 {
			if len(cp.ExRouted) != len(specs) {
				return nil, fmt.Errorf("fed: restore: exchange routed-work is %d×? for %d clusters",
					len(cp.ExRouted), len(specs))
			}
			for c := range cp.ExRouted {
				if len(cp.ExRouted[c]) != len(specs) {
					return nil, fmt.Errorf("fed: restore: exchange routed-work row %d truncated", c)
				}
			}
		}
		// Re-prime the provider's cache: a run restored mid-staleness-
		// period keeps deciding on the same aged view an uninterrupted
		// run would. The Load column is a pure function of the summaries,
		// so it is recomputed rather than persisted.
		f.provider.Prime(ctrl.View{
			TakenAt: cp.ExAt,
			Load:    loadOf(cp.ExSums),
			Payload: &exchange{Sums: cp.ExSums, Routed: cp.ExRouted},
		})
	}
	if cp.Admission != nil {
		if err := f.SetAdmission(cp.Admission); err != nil {
			return nil, fmt.Errorf("fed: restore: %w", err)
		}
		if len(cp.Ctrl) == 0 {
			return nil, fmt.Errorf("fed: restore: checkpoint names admission policy %q but carries no control-plane state", cp.Admission.Policy)
		}
		if err := f.plane.RestoreState(cp.Ctrl); err != nil {
			return nil, fmt.Errorf("fed: restore: %w", err)
		}
	} else if len(cp.Ctrl) > 0 {
		return nil, fmt.Errorf("fed: restore: checkpoint carries control-plane state but no admission spec")
	}
	if cp.Source != nil {
		if cp.Source.Cursor < 0 || cp.Source.Window < 1 {
			return nil, fmt.Errorf("fed: restore: invalid source cursor %d / window %d", cp.Source.Cursor, cp.Source.Window)
		}
		f.srcCursor = cp.Source.Cursor
		f.srcWindow = cp.Source.Window
		f.srcDone = cp.Source.Done
		f.srcLast = cp.Source.Last
		// The stream itself is not in the checkpoint: stepping stays
		// refused until the caller re-attaches a replayable source.
		f.srcNeeded = true
	}
	for i, spec := range specs {
		mc := cp.Members[i]
		if spec.Name != mc.Name {
			return nil, fmt.Errorf("fed: restore: cluster %d is %q in checkpoint, %q in configuration", i, mc.Name, spec.Name)
		}
		if spec.Alg == nil {
			return nil, fmt.Errorf("fed: restore: cluster %d (%s) has no algorithm", i, spec.Name)
		}
		if len(spec.Machines) != len(orgs) {
			return nil, fmt.Errorf("fed: restore: cluster %d (%s) has %d machine entries for %d organizations",
				i, spec.Name, len(spec.Machines), len(orgs))
		}
		for o := range spec.Machines {
			if o < len(mc.Machines) && spec.Machines[o] != mc.Machines[o] {
				return nil, fmt.Errorf("fed: restore: cluster %d (%s) machine grid differs from checkpoint at organization %d", i, spec.Name, o)
			}
		}
		eng, err := engine.Restore(spec.Alg, mc.Engine)
		if err != nil {
			return nil, fmt.Errorf("fed: restore cluster %d (%s): %w", i, spec.Name, err)
		}
		if got := len(eng.Instance().Jobs); len(mc.SeqOf) != got || len(mc.OriginOf) != got {
			return nil, fmt.Errorf("fed: restore: cluster %d (%s) has %d/%d sequence/origin mappings for %d jobs",
				i, spec.Name, len(mc.SeqOf), len(mc.OriginOf), got)
		}
		for id, origin := range mc.OriginOf {
			if origin >= len(specs) || (origin < 0 && mc.SeqOf[id] >= 0) || (origin >= 0 && mc.SeqOf[id] < 0) {
				return nil, fmt.Errorf("fed: restore: cluster %d (%s) job %d has inconsistent origin %d for sequence %d",
					i, spec.Name, id, origin, mc.SeqOf[id])
			}
		}
		f.members = append(f.members, &Member{name: mc.Name, eng: eng, seqOf: mc.SeqOf, originOf: mc.OriginOf})
	}
	return f, nil
}
