package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/shapley"
)

// "Most of our results can be extended to related processors"
// (Section 2): REF runs unchanged on machines with speeds, and its
// contributions still match the generic Shapley evaluator and satisfy
// efficiency.
func TestRefOnRelatedMachines(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(200 + seed))
		k := 2 + r.Intn(2)
		in := randCoreInstance(r, k, false)
		for i := range in.Orgs {
			in.Orgs[i].Speeds = make([]int, in.Orgs[i].Machines)
			for m := range in.Orgs[i].Speeds {
				in.Orgs[i].Speeds[m] = 1 + r.Intn(3)
			}
		}
		horizon := in.Horizon() + 1
		ref := NewRef(in, RefOptions{})
		res := ref.Run(horizon)
		var sum float64
		for _, p := range res.Phi {
			sum += p
		}
		if math.Abs(sum-float64(res.Value)) > 1e-6*math.Max(1, float64(res.Value)) {
			t.Fatalf("seed %d: Σφ = %v, value = %d", seed, sum, res.Value)
		}
		want := shapley.Exact(shapley.FuncGame{N: k, F: func(c model.Coalition) float64 {
			return float64(ref.ValueOf(c))
		}})
		for u := 0; u < k; u++ {
			if math.Abs(res.Phi[u]-want[u]) > 1e-6 {
				t.Fatalf("seed %d: φ[%d] = %v, generic %v", seed, u, res.Phi[u], want[u])
			}
		}
		// All work completes by the generous horizon in every coalition
		// (speeds only shorten jobs).
		if res.Ptot != int64(in.TotalWork()) {
			t.Fatalf("seed %d: executed %d of %d work units", seed, res.Ptot, in.TotalWork())
		}
	}
}
