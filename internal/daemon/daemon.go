// Package daemon is the multi-session serving layer behind
// cmd/fairschedd: one process holds many concurrent scheduling runs
// open — each session either a single-cluster engine run or a
// federated multi-cluster run — created, inspected, advanced,
// checkpointed and deleted over HTTP/JSON.
//
// Sessions are built from serializable SessionConfigs (algorithm and
// policy names, not live values), so a session's full identity —
// configuration plus engine snapshot — round-trips through a flushed
// checkpoint Envelope: the daemon can stop, persist every live
// session, and resume them all at next boot (see Manager.FlushAll and
// Manager.LoadDir, wired to SIGINT/SIGTERM in cmd/fairschedd).
//
// Locking: the Manager stripes the session table over sessionShards
// independently locked shards keyed by a hash of the session id, so
// create/look-up/delete traffic against different sessions rarely
// contends on a shared mutex (the north-star's hundreds-of-concurrent-
// sessions regime); a small separate lock guards only the creation-
// order listing and the id counter. Each Session guards its own run.
// Requests against different sessions proceed in parallel, requests
// against one session serialize — the engine and federation types are
// single-goroutine objects by contract.
package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/fed"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Kinds of sessions.
const (
	KindSingle     = "single"
	KindFederation = "federation"
)

// ClusterConfig is the wire form of one federation member cluster.
type ClusterConfig struct {
	Name     string `json:"name"`
	Alg      string `json:"alg"`
	Machines []int  `json:"machines"`
}

// SessionConfig is the serializable static configuration of a session.
// Single-run fields mirror the classic fairschedd flags; federation
// fields mirror fed.New. Algorithms and policies are referenced by
// name so configurations survive checkpoint files.
type SessionConfig struct {
	Kind string `json:"kind"`

	// Single-run configuration.
	Alg      string `json:"alg,omitempty"`
	Orgs     int    `json:"orgs,omitempty"`
	Machines int    `json:"machines,omitempty"`
	Split    string `json:"split,omitempty"`

	// Federation configuration. Staleness is the summary-gossip
	// staleness Δt (0 = fresh summaries at every release instant).
	OrgNames  []string        `json:"org_names,omitempty"`
	Clusters  []ClusterConfig `json:"clusters,omitempty"`
	Policy    string          `json:"policy,omitempty"`
	Staleness model.Time      `json:"staleness,omitempty"`
	// MigrationBudget overrides a "-migrate" policy's per-refresh
	// re-delegation cap: positive replaces the default, negative
	// disables migration, zero keeps the policy's own
	// (fed.WithMigrationBudget semantics); it is ignored for policies
	// that never migrate.
	MigrationBudget int `json:"migration_budget,omitempty"`
	// FedWorkers is the federation data-plane fan-out width
	// (fed.SetWorkers): member engines advance on up to this many
	// goroutines. Results are byte-identical at any width; <= 1 keeps
	// the sequential path, 0 additionally defers to the manager-level
	// default (fairschedd -fed-workers).
	FedWorkers int `json:"fed_workers,omitempty"`

	// Admission, when set, installs an internal/ctrl admission control
	// plane in front of the session: releases decompose into prioritized
	// arrival → admission → routing events and only admitted jobs reach
	// the schedule (engine gate for single runs, federation control
	// plane for federated ones). Spec.Staleness bounds the age of the
	// load view admission decisions observe.
	Admission *ctrl.PolicySpec `json:"admission,omitempty"`

	// Shared algorithm options.
	Seed        int64  `json:"seed,omitempty"`
	RandSamples int    `json:"rand_samples,omitempty"`
	Stratified  bool   `json:"rand_stratified,omitempty"`
	RefDriver   string `json:"ref_driver,omitempty"`
	Workers     int    `json:"workers,omitempty"`
}

// buildAlg resolves an algorithm name with the config's shared options
// into a stepper-capable algorithm.
func (c SessionConfig) buildAlg(name string) (core.StepperAlgorithm, error) {
	samples := c.RandSamples
	if samples <= 0 {
		samples = 15
	}
	driver, err := core.ParseRefDriver(defaultStr(c.RefDriver, "heap"))
	if err != nil {
		return nil, err
	}
	alg, err := exp.AlgorithmByName(name, samples,
		core.RefOptions{Parallel: true, Workers: c.Workers, Driver: driver},
		core.RandOptions{Workers: c.Workers, Stratified: c.Stratified})
	if err != nil {
		return nil, err
	}
	stepper, ok := alg.(core.StepperAlgorithm)
	if !ok {
		return nil, fmt.Errorf("daemon: algorithm %q cannot run incrementally", alg.Name())
	}
	return stepper, nil
}

func defaultStr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// singleInstance builds the machine pool of a single-run session.
func (c SessionConfig) singleInstance() (*model.Instance, error) {
	orgs := c.Orgs
	if orgs == 0 {
		orgs = 3
	}
	if orgs < 1 {
		return nil, fmt.Errorf("daemon: need at least one organization")
	}
	total := c.Machines
	if total <= 0 {
		total = orgs
	}
	var splits []int
	switch defaultStr(c.Split, "zipf") {
	case "uniform":
		splits = stats.UniformSplit(total, orgs)
	case "zipf":
		splits = stats.ZipfSplit(total, orgs, 1)
	default:
		return nil, fmt.Errorf("daemon: unknown machine split %q (want zipf or uniform)", c.Split)
	}
	orgList := make([]model.Org, orgs)
	for i := range orgList {
		orgList[i] = model.Org{Name: fmt.Sprintf("org%d", i), Machines: splits[i]}
	}
	return model.NewInstance(orgList, nil)
}

// fedSpecs builds the federation member specs from the config.
func (c SessionConfig) fedSpecs() ([]fed.ClusterSpec, error) {
	if len(c.Clusters) == 0 {
		return nil, fmt.Errorf("daemon: federation session needs at least one cluster")
	}
	specs := make([]fed.ClusterSpec, len(c.Clusters))
	for i, cl := range c.Clusters {
		alg, err := c.buildAlg(defaultStr(cl.Alg, "ref"))
		if err != nil {
			return nil, fmt.Errorf("daemon: cluster %d (%s): %w", i, cl.Name, err)
		}
		specs[i] = fed.ClusterSpec{
			Name:     defaultStr(cl.Name, fmt.Sprintf("cluster%d", i)),
			Alg:      alg,
			Machines: cl.Machines,
		}
	}
	return specs, nil
}

// fedPolicy resolves the configured delegation policy with the
// migration-budget override applied.
func (c SessionConfig) fedPolicy() (fed.Policy, error) {
	policy, err := fed.PolicyByName(defaultStr(c.Policy, "fairness"))
	if err != nil {
		return nil, err
	}
	return fed.WithMigrationBudget(policy, c.MigrationBudget), nil
}

// Session is one live scheduling run. Exactly one of eng/fedn is set.
type Session struct {
	id  string
	cfg SessionConfig

	// dirty is set (under mu) by every mutating call and cleared by
	// Manager.FlushTo, so the background flusher only re-serializes
	// sessions that changed since their last flush.
	dirty atomic.Bool

	mu   sync.Mutex
	eng  *engine.Engine
	fedn *fed.Federation
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Kind returns KindSingle or KindFederation.
func (s *Session) Kind() string { return s.cfg.Kind }

// Config returns the session's static configuration.
func (s *Session) Config() SessionConfig { return s.cfg }

// newSession builds a fresh session from its configuration.
func newSession(id string, cfg SessionConfig) (*Session, error) {
	s := &Session{id: id, cfg: cfg}
	switch cfg.Kind {
	case KindSingle:
		alg, err := cfg.buildAlg(defaultStr(cfg.Alg, "ref"))
		if err != nil {
			return nil, err
		}
		inst, err := cfg.singleInstance()
		if err != nil {
			return nil, err
		}
		s.eng = engine.New(alg, inst, cfg.Seed)
		if err := s.eng.SetAdmission(cfg.Admission); err != nil {
			return nil, err
		}
	case KindFederation:
		specs, err := cfg.fedSpecs()
		if err != nil {
			return nil, err
		}
		policy, err := cfg.fedPolicy()
		if err != nil {
			return nil, err
		}
		f, err := fed.New(cfg.OrgNames, specs, policy, cfg.Seed)
		if err != nil {
			return nil, err
		}
		f.SetStaleness(cfg.Staleness)
		f.SetWorkers(cfg.FedWorkers)
		if err := f.SetAdmission(cfg.Admission); err != nil {
			return nil, err
		}
		s.fedn = f
	default:
		return nil, fmt.Errorf("daemon: unknown session kind %q (want %q or %q)", cfg.Kind, KindSingle, KindFederation)
	}
	s.dirty.Store(true) // never flushed yet
	return s, nil
}

// JobSubmission is one submitted job. Release nil means "now" (the
// session clock); Cluster names the origin cluster of a federated
// submission and is ignored for single runs.
type JobSubmission struct {
	Cluster int         `json:"cluster,omitempty"`
	Org     int         `json:"org"`
	Size    model.Time  `json:"size"`
	Release *model.Time `json:"release,omitempty"`
}

// Decision is the wire form of one scheduling decision. Job is the
// engine job ID for single runs and the federation sequence number for
// federated runs; Cluster identifies the executing cluster (always 0
// for single runs).
type Decision struct {
	Job     int64      `json:"job"`
	Org     int        `json:"org"`
	Cluster int        `json:"cluster"`
	Machine int        `json:"machine"`
	At      model.Time `json:"at"`
}

func fromStarts(starts []sim.Start) []Decision {
	out := make([]Decision, len(starts))
	for i, st := range starts {
		out[i] = Decision{Job: int64(st.Job), Org: st.Org, Machine: st.Machine, At: st.At}
	}
	return out
}

func fromFedDecisions(decs []fed.Decision) []Decision {
	out := make([]Decision, len(decs))
	for i, d := range decs {
		out[i] = Decision{Job: d.Seq, Org: d.Org, Cluster: d.Cluster, Machine: d.Machine, At: d.At}
	}
	return out
}

// Submit feeds jobs into the session and returns their IDs (engine job
// IDs or federation sequence numbers).
func (s *Session) Submit(jobs []JobSubmission) ([]int64, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("daemon: no jobs submitted")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirty.Store(true)
	if s.eng != nil {
		batch := make([]model.Job, len(jobs))
		for i, j := range jobs {
			release := s.eng.Now()
			if j.Release != nil {
				release = *j.Release
			}
			batch[i] = model.Job{Org: j.Org, Size: j.Size, Release: release}
		}
		ids, err := s.eng.Feed(batch)
		if err != nil {
			return nil, err
		}
		out := make([]int64, len(ids))
		for i, id := range ids {
			out[i] = int64(id)
		}
		return out, nil
	}
	out := make([]int64, 0, len(jobs))
	for _, j := range jobs {
		release := s.fedn.Now()
		if j.Release != nil {
			release = *j.Release
		}
		seq, err := s.fedn.Submit(j.Cluster, j.Org, j.Size, release)
		if err != nil {
			return out, err
		}
		out = append(out, seq)
	}
	return out, nil
}

// Advance moves the session clock to *until, or to the next pending
// event when until is nil, returning the fresh decisions.
func (s *Session) Advance(until *model.Time) (model.Time, []Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirty.Store(true)
	return s.advanceLocked(until)
}

// AdvanceBatch runs several advance requests under one lock acquisition
// and one checkpoint-dirty mark — the pipeline's per-wakeup coalescing
// path. out[i] receives untils[i]'s outcome; out must be at least as
// long as untils. A failing request fails alone and later requests
// still run, so the observable per-request results match len(untils)
// sequential Advance calls exactly.
func (s *Session) AdvanceBatch(untils []*model.Time, out []AdvanceResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirty.Store(true)
	for i, until := range untils {
		now, decs, err := s.advanceLocked(until)
		out[i] = AdvanceResult{Now: now, Decisions: decs, Err: err}
	}
}

func (s *Session) advanceLocked(until *model.Time) (model.Time, []Decision, error) {
	if s.eng != nil {
		var (
			starts []sim.Start
			err    error
		)
		if until != nil {
			starts, err = s.eng.Step(*until)
		} else {
			starts, _, err = s.eng.StepToNextEvent()
		}
		if err != nil {
			return 0, nil, err
		}
		return s.eng.Now(), fromStarts(starts), nil
	}
	var (
		decs []fed.Decision
		err  error
	)
	if until != nil {
		decs, err = s.fedn.Step(*until)
	} else {
		decs, _, err = s.fedn.StepToNextEvent()
	}
	if err != nil {
		return 0, nil, err
	}
	return s.fedn.Now(), fromFedDecisions(decs), nil
}

// ClusterState is one member cluster's row in a federated session's
// state reply.
type ClusterState struct {
	Name      string     `json:"name"`
	Now       model.Time `json:"now"`
	Jobs      int        `json:"jobs"`
	Waiting   int        `json:"waiting"`
	Decisions int        `json:"decisions"`
	Psi       []int64    `json:"psi"`
	Value     int64      `json:"value"`
	Executed  int64      `json:"executed"`
}

// StateReply is a session's state. Single runs fill Algorithm/Phi/
// Utilization; federated runs fill Policy/Clusters/Pending/Offloaded,
// with Psi the federation-wide vector and Value the federation-wide
// coalition value.
type StateReply struct {
	ID          string         `json:"id,omitempty"`
	Kind        string         `json:"kind,omitempty"`
	Algorithm   string         `json:"algorithm,omitempty"`
	Policy      string         `json:"policy,omitempty"`
	Now         model.Time     `json:"now"`
	NextEvent   *model.Time    `json:"next_event,omitempty"`
	Jobs        int            `json:"jobs"`
	Pending     int            `json:"pending,omitempty"`
	Decisions   int            `json:"decisions"`
	Psi         []int64        `json:"psi"`
	Phi         []float64      `json:"phi,omitempty"`
	Value       int64          `json:"value"`
	Utilization float64        `json:"utilization,omitempty"`
	Offloaded   int64          `json:"offloaded,omitempty"`
	Migrations  int64          `json:"migrations,omitempty"`
	Clusters    []ClusterState `json:"clusters,omitempty"`
	Admission   *AdmissionState `json:"admission,omitempty"`
}

// AdmissionState is the admission-control section of a StateReply,
// present only when the session runs an admission control plane. Stats
// carries the per-organization counters, which obey the conservation
// law admitted + rejected + deferred == released at every quiescent
// instant.
type AdmissionState struct {
	Policy string                  `json:"policy"`
	Stats  *metrics.AdmissionStats `json:"stats"`
}

// admissionState builds the StateReply section from a live plane's
// accounting (nil stats means the plane is off).
func admissionState(spec *ctrl.PolicySpec, st *metrics.AdmissionStats) *AdmissionState {
	if st == nil {
		return nil
	}
	name := spec.Policy
	if name == "" {
		name = "always"
	}
	return &AdmissionState{Policy: name, Stats: st.Clone()}
}

// State evaluates the session at its current clock.
func (s *Session) State() StateReply {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng != nil {
		res := s.eng.Result()
		reply := StateReply{
			ID:          s.id,
			Kind:        KindSingle,
			Algorithm:   res.Algorithm,
			Now:         s.eng.Now(),
			Jobs:        len(s.eng.Instance().Jobs),
			Decisions:   len(s.eng.Decisions()),
			Psi:         res.Psi,
			Phi:         res.Phi,
			Value:       res.Value,
			Utilization: res.Utilization,
		}
		if next := s.eng.NextEventTime(); next != sim.MaxTime {
			reply.NextEvent = &next
		}
		reply.Admission = admissionState(s.eng.Admission(), s.eng.AdmissionStats())
		return reply
	}
	l := s.fedn.Ledger()
	reply := StateReply{
		ID:         s.id,
		Kind:       KindFederation,
		Policy:     s.fedn.Policy().Name(),
		Now:        s.fedn.Now(),
		Jobs:       int(s.fedn.Submitted()),
		Pending:    s.fedn.PendingCount(),
		Decisions:  len(s.fedn.Decisions()),
		Psi:        l.FederationPsi(),
		Value:      l.FederationValue(),
		Offloaded:  l.Offloaded(),
		Migrations: l.Migrations,
	}
	if next := s.fedn.NextEventTime(); next != sim.MaxTime {
		reply.NextEvent = &next
	}
	reply.Admission = admissionState(s.fedn.Admission(), s.fedn.AdmissionStats())
	for c, m := range s.fedn.Members() {
		eng := m.Engine()
		reply.Clusters = append(reply.Clusters, ClusterState{
			Name:      m.Name(),
			Now:       eng.Now(),
			Jobs:      len(eng.Instance().Jobs),
			Waiting:   eng.Waiting(),
			Decisions: len(eng.Decisions()),
			Psi:       l.Psi[c],
			Value:     l.Value[c],
			Executed:  l.Executed[c],
		})
	}
	return reply
}

// Decisions returns the decision log suffix from `since` and the total
// count. since is clamped to [0, len(log)], so out-of-range values from
// library callers return the full (or empty) suffix instead of
// panicking — the HTTP handler's validation is a courtesy, not a
// precondition.
func (s *Session) Decisions(since int) (int, []Decision) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if since < 0 {
		since = 0
	}
	if s.eng != nil {
		all := s.eng.Decisions()
		if since > len(all) {
			since = len(all)
		}
		return len(all), fromStarts(all[since:])
	}
	all := s.fedn.Decisions()
	if since > len(all) {
		since = len(all)
	}
	return len(all), fromFedDecisions(all[since:])
}

// DecisionCount returns the decision-log length without materializing
// the wire-format slice — the read path for callers that only count
// (pollers checking for news, session listings). Decisions(since)
// rebuilds a Decision per log entry; this is a length read under the
// lock.
func (s *Session) DecisionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng != nil {
		return len(s.eng.Decisions())
	}
	return len(s.fedn.Decisions())
}

// Checkpoint serializes the session's run state (engine snapshot or
// federation snapshot).
func (s *Session) Checkpoint() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng != nil {
		return s.eng.Snapshot()
	}
	return s.fedn.Snapshot()
}

// errRestoreConfig marks a restore failure caused by the session's own
// stored configuration failing to rebuild — server state gone bad, not
// a problem with the snapshot the client sent. The HTTP layer maps it
// to a 500 where snapshot rejections stay 400s.
var errRestoreConfig = errors.New("daemon: session configuration no longer builds")

// Restore replaces the session's run state with a snapshot captured by
// a session of the same configuration.
func (s *Session) Restore(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirty.Store(true)
	return s.restoreLocked(data)
}

func (s *Session) restoreLocked(data []byte) error {
	if s.eng != nil {
		alg, err := s.cfg.buildAlg(defaultStr(s.cfg.Alg, "ref"))
		if err != nil {
			return fmt.Errorf("%w: %w", errRestoreConfig, err)
		}
		var (
			restored *engine.Engine
		)
		// A gated configuration captured a gated envelope; restore
		// through the matching entry point (each rejects the other's
		// format, so a config/snapshot mismatch fails loudly here).
		if s.cfg.Admission != nil {
			restored, err = engine.RestoreGated(alg, data)
		} else {
			restored, err = engine.Restore(alg, data)
		}
		if err != nil {
			return err
		}
		s.eng = restored
		return nil
	}
	specs, err := s.cfg.fedSpecs()
	if err != nil {
		return fmt.Errorf("%w: %w", errRestoreConfig, err)
	}
	policy, err := s.cfg.fedPolicy()
	if err != nil {
		return fmt.Errorf("%w: %w", errRestoreConfig, err)
	}
	restored, err := fed.Restore(s.cfg.OrgNames, specs, policy, data)
	if err != nil {
		return err
	}
	// The fan-out width is a pure throughput knob, absent from
	// checkpoints by design — reapply the configured one.
	restored.SetWorkers(s.cfg.FedWorkers)
	s.fedn = restored
	return nil
}

// sessionShards is the number of independently locked stripes of the
// session table. A power of two so the hash folds cheaply; 16 stripes
// keep contention negligible far past the concurrency one process
// serves.
const sessionShards = 16

// sessionShard is one stripe of the session table.
type sessionShard struct {
	mu       sync.Mutex
	sessions map[string]*Session
}

// Manager is the session table: create, look up, list, delete, and
// flush/reload every session. Sessions live in sessionShards striped
// maps keyed by an FNV hash of the session id; only the creation-order
// listing and the auto-id counter share a lock.
type Manager struct {
	shards [sessionShards]sessionShard

	// mu guards order, nextID and store. Lock order: a shard's mutex
	// may be held while taking mu (Create and Delete update the shard
	// map and the listing atomically), never the reverse — List
	// snapshots order under mu alone and resolves sessions afterwards.
	mu     sync.Mutex
	order  []string // creation order, for stable listings
	nextID int
	store  CheckpointStore // optional; Delete drops envelopes through it

	// defFedWorkers is the fan-out width applied to federation sessions
	// whose config leaves FedWorkers at 0 (fairschedd -fed-workers).
	defFedWorkers int
}

// SetDefaultFedWorkers sets the federation fan-out width applied to
// sessions created without an explicit FedWorkers — the process-level
// knob fairschedd -fed-workers turns. n <= 1 means sequential.
func (m *Manager) SetDefaultFedWorkers(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.defFedWorkers = n
}

// NewManager returns an empty session manager.
func NewManager() *Manager {
	m := &Manager{}
	for i := range m.shards {
		m.shards[i].sessions = make(map[string]*Session)
	}
	return m
}

// shardIndex hashes a session id onto its stripe. The advance pipeline
// uses the same hash, so a worker's stripes are exactly the shards it
// serves.
func shardIndex(id string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(id))
	return h.Sum32() % sessionShards
}

// shard returns the stripe owning the id.
func (m *Manager) shard(id string) *sessionShard {
	return &m.shards[shardIndex(id)]
}

// SetStore attaches the checkpoint store session deletions propagate
// to, so a deleted session's envelope does not resurrect it at the
// next boot. Flushing still names its store explicitly (FlushTo).
func (m *Manager) SetStore(store CheckpointStore) {
	m.mu.Lock()
	m.store = store
	m.mu.Unlock()
}

// freshID reserves the next auto-assigned "s<N>" identifier. The
// counter is monotonic under m.mu, so concurrent auto-id creations get
// distinct ids; collisions with explicit ids are re-drawn by Create.
func (m *Manager) freshID() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	return fmt.Sprintf("s%d", m.nextID)
}

// Create builds a new session from cfg. id may be empty, in which case
// a fresh "s<N>" identifier is assigned. Identifiers must be usable in
// URL paths: one path segment, no slashes.
func (m *Manager) Create(id string, cfg SessionConfig) (*Session, error) {
	if cfg.Kind == KindFederation && cfg.FedWorkers == 0 {
		// The resolved width is stored (and persisted) in the session's
		// config; it is results-neutral, so envelopes written under one
		// default reload correctly under another.
		m.mu.Lock()
		cfg.FedWorkers = m.defFedWorkers
		m.mu.Unlock()
	}
	auto := id == ""
	if auto {
		id = m.freshID()
	}
	if strings.ContainsAny(id, "/ ") {
		return nil, fmt.Errorf("daemon: session id %q contains a slash or space", id)
	}
	if _, exists := m.Get(id); exists && !auto {
		// Cheap pre-check so a duplicate id fails before the session —
		// possibly a whole federation — is built. The insert below
		// re-checks authoritatively.
		return nil, fmt.Errorf("daemon: session %q already exists", id)
	}
	s, err := newSession(id, cfg)
	if err != nil {
		return nil, err
	}
	for {
		sh := m.shard(id)
		sh.mu.Lock()
		if _, exists := sh.sessions[id]; exists {
			sh.mu.Unlock()
			if auto { // an explicit id squatted on the counter: draw again
				id = m.freshID()
				s.id = id
				continue
			}
			return nil, fmt.Errorf("daemon: session %q already exists", id)
		}
		sh.sessions[id] = s
		// Shard insert and order append are atomic under the shard lock,
		// so a concurrent Delete can never observe one without the other.
		m.mu.Lock()
		m.order = append(m.order, id)
		m.mu.Unlock()
		sh.mu.Unlock()
		return s, nil
	}
}

// Get returns the session with the given id.
func (m *Manager) Get(id string) (*Session, bool) {
	sh := m.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.sessions[id]
	return s, ok
}

// List returns every live session in creation order. A session created
// or deleted concurrently with List may or may not appear; sessions
// present for the whole call always do.
func (m *Manager) List() []*Session {
	m.mu.Lock()
	order := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]*Session, 0, len(order))
	for _, id := range order {
		if s, ok := m.Get(id); ok {
			out = append(out, s)
		}
	}
	return out
}

// Delete removes a session. The run is simply dropped — callers wanting
// its final state checkpoint first. With a store attached, the
// session's envelope is removed too (best-effort: a stale envelope only
// resurrects the session at the next boot, it cannot corrupt it).
func (m *Manager) Delete(id string) bool {
	sh := m.shard(id)
	sh.mu.Lock()
	if _, ok := sh.sessions[id]; !ok {
		sh.mu.Unlock()
		return false
	}
	delete(sh.sessions, id)
	m.mu.Lock()
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	store := m.store
	m.mu.Unlock()
	sh.mu.Unlock()
	if store != nil {
		store.Delete(id)
	}
	return true
}

// Envelope is one flushed session: its identity, its full static
// configuration, and its run snapshot. Envelopes are what FlushAll
// writes and LoadDir reads — a daemon's complete persistent state is a
// directory of them.
type Envelope struct {
	ID       string          `json:"id"`
	Config   SessionConfig   `json:"config"`
	Snapshot json.RawMessage `json:"snapshot"`
}

// FlushTo checkpoints live sessions into the store and returns the
// flushed session ids. With dirtyOnly, sessions unchanged since their
// last flush are skipped — the periodic background flush path. A
// session whose checkpoint or write fails stays dirty and does not
// stop the flush: every remaining session is still attempted and the
// failures come back joined into one error.
func (m *Manager) FlushTo(store CheckpointStore, dirtyOnly bool) ([]string, error) {
	var flushed []string
	var errs []error
	for _, s := range m.List() {
		// Claim the dirty bit before snapshotting: a mutation landing
		// after the claim re-marks the session, so the next pass
		// re-flushes it; a mutation before the snapshot is simply
		// included. Either way no update is lost.
		if dirtyOnly {
			if !s.dirty.CompareAndSwap(true, false) {
				continue
			}
		} else {
			s.dirty.Store(false)
		}
		snap, err := s.Checkpoint()
		if err != nil {
			s.dirty.Store(true)
			errs = append(errs, fmt.Errorf("daemon: flush session %q: %w", s.ID(), err))
			continue
		}
		if err := store.Save(Envelope{ID: s.ID(), Config: s.Config(), Snapshot: snap}); err != nil {
			s.dirty.Store(true)
			errs = append(errs, fmt.Errorf("daemon: flush session %q: %w", s.ID(), err))
			continue
		}
		flushed = append(flushed, s.ID())
	}
	return flushed, errors.Join(errs...)
}

// FlushAll checkpoints every live session into dir (one atomically
// written "<id>.session.json" envelope each) and returns the written
// paths. Used for the final flush on graceful shutdown; sessions stay
// live. Per-session failures are aggregated, not short-circuiting —
// every healthy session is flushed even when one is not.
func (m *Manager) FlushAll(dir string) ([]string, error) {
	st := NewDirStore(dir)
	ids, err := m.FlushTo(st, false)
	paths := make([]string, len(ids))
	for i, id := range ids {
		paths[i] = st.pathFor(id)
	}
	return paths, err
}

// LoadStore restores every envelope the store yields. Envelopes that
// fail to recreate or restore are quarantined in the store and reported
// alongside the ones the store itself set aside — a poisoned envelope
// costs one session, never the whole boot. Restored sessions start
// clean (not dirty): their disk state already matches.
func (m *Manager) LoadStore(store CheckpointStore) ([]string, []Quarantined, error) {
	envs, quarantined, err := store.Load()
	if err != nil {
		return nil, quarantined, err
	}
	var ids []string
	for _, env := range envs {
		s, err := m.Create(env.ID, env.Config)
		if err != nil {
			err = fmt.Errorf("daemon: recreate session %q: %w", env.ID, err)
			if qerr := store.Quarantine(env.ID); qerr != nil {
				err = errors.Join(err, qerr)
			}
			quarantined = append(quarantined, Quarantined{ID: env.ID, Err: err})
			continue
		}
		if err := s.Restore(env.Snapshot); err != nil {
			m.Delete(env.ID)
			err = fmt.Errorf("daemon: restore session %q: %w", env.ID, err)
			if qerr := store.Quarantine(env.ID); qerr != nil {
				err = errors.Join(err, qerr)
			}
			quarantined = append(quarantined, Quarantined{ID: env.ID, Err: err})
			continue
		}
		s.dirty.Store(false)
		ids = append(ids, env.ID)
	}
	return ids, quarantined, nil
}

// LoadDir restores every "*.session.json" envelope in dir into the
// manager (skipped silently when the directory does not exist) and
// returns the restored session ids in deterministic (sorted) order
// plus the corrupt envelopes it quarantined along the way.
func (m *Manager) LoadDir(dir string) ([]string, []Quarantined, error) {
	return m.LoadStore(NewDirStore(dir))
}
