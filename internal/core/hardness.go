package core

import (
	"fmt"

	"repro/internal/model"
)

// SubsetSumReduction is the Theorem 5.1 construction: an instance of the
// fair-scheduling contribution problem whose organization `a` has a
// Shapley contribution that encodes the number of subsets of S summing
// below x. Computing φ(a) therefore answers SUBSETSUM — the proof that
// computing contributions is NP-hard.
type SubsetSumReduction struct {
	S []int64
	X int64
	// Inst has k+2 organizations: 0..k-1 mirror the elements of S, k is
	// the job-less organization `a`, k+1 is `b` with the dominating job.
	Inst *model.Instance
	A, B int
	// L is the size of b's large job; Fact is (k+2)!.
	L    int64
	Fact int64
}

// NewSubsetSumReduction builds the reduction instance for set S and
// target x. Sizes grow as 4·k·xtot²·(k+2)!, so only small sets are
// practical — which is the point: the reduction certifies hardness, and
// here doubles as an executable verification on brute-force-checkable
// sizes.
func NewSubsetSumReduction(S []int64, x int64) *SubsetSumReduction {
	k := len(S)
	if k == 0 || k > 6 {
		panic(fmt.Sprintf("core: reduction supports 1..6 elements, got %d", k))
	}
	var xtot int64 = 2
	for _, xi := range S {
		if xi <= 0 {
			panic("core: SUBSETSUM elements must be positive")
		}
		xtot += xi
	}
	fact := int64(1)
	for i := int64(2); i <= int64(k+2); i++ {
		fact *= i
	}
	L := 4*int64(k)*xtot*xtot*fact + 1

	orgs := make([]model.Org, k+2)
	var jobs []model.Job
	for i := 0; i < k; i++ {
		orgs[i] = model.Org{Name: fmt.Sprintf("S%d", i), Machines: 1}
		jobs = append(jobs,
			model.Job{Org: i, Release: 0, Size: 1},
			model.Job{Org: i, Release: 0, Size: 1},
			model.Job{Org: i, Release: 3, Size: model.Time(2 * xtot)},
			model.Job{Org: i, Release: 4, Size: model.Time(2 * S[i])},
		)
	}
	a, b := k, k+1
	orgs[a] = model.Org{Name: "a", Machines: 1}
	orgs[b] = model.Org{Name: "b", Machines: 1}
	jobs = append(jobs,
		model.Job{Org: b, Release: 2, Size: model.Time(2*x + 2)},
		model.Job{Org: b, Release: model.Time(2*x + 3), Size: model.Time(L)},
	)
	return &SubsetSumReduction{
		S: append([]int64(nil), S...), X: x,
		Inst: model.MustNewInstance(orgs, jobs),
		A:    a, B: b, L: L, Fact: fact,
	}
}

// Horizon returns a time by which every job has completed in every
// coalition's schedule.
func (r *SubsetSumReduction) Horizon() model.Time { return r.Inst.Horizon() + 8 }

// CountOrderings returns n_<x(S): the number of orderings of S ∪ {a,b}
// in which a is immediately preceded by exactly {b} ∪ S′ for some
// S′ ⊆ S with ΣS′ < x — the quantity the proof extracts from φ(a),
// computed here by brute force as Σ_{S′∈S_<x} (‖S′‖+1)!·(‖S‖−‖S′‖)!.
func CountOrderings(S []int64, x int64) int64 {
	k := len(S)
	fact := make([]int64, k+2)
	fact[0] = 1
	for i := 1; i <= k+1; i++ {
		fact[i] = fact[i-1] * int64(i)
	}
	var total int64
	for mask := 0; mask < 1<<uint(k); mask++ {
		var sum int64
		size := 0
		for i := 0; i < k; i++ {
			if mask&(1<<uint(i)) != 0 {
				sum += S[i]
				size++
			}
		}
		if sum < x {
			total += fact[size+1] * fact[k-size]
		}
	}
	return total
}

// RecoverCount runs REF on the reduction instance and extracts
// ⌊(k+2)!·φ(a)/L⌋ — the proof's decoding of n_<x(S) from the exact
// contribution of organization a.
//
// The construction's schedule analysis (Figure 4) assumes the general
// Figure 1 Distance behaviour, under which simultaneous free machines
// are spread across organizations within a single instant; REF's
// rotation mode implements exactly that, and with it the decoding is
// exact (remainder R ∈ [0, L/(k+2)!) as the proof bounds). Under the
// plain Figure 3 rule, one organization may take several machines in
// the same instant and the delicate L-job start-time gadget shifts.
func (r *SubsetSumReduction) RecoverCount() int64 {
	res := RefAlgorithm{Opts: RefOptions{Rotate: true}}.Run(r.Inst, r.Horizon(), 0)
	v := float64(r.Fact) * res.Phi[r.A] / float64(r.L)
	if v < 0 {
		return 0
	}
	return int64(v)
}

// HasSubsetSum answers the original SUBSETSUM question by the proof's
// comparison: some S′ ⊆ S sums to exactly x iff n_<x(S) < n_<x+1(S),
// using Shapley contributions computed by REF on the two reduction
// instances.
func HasSubsetSum(S []int64, x int64) bool {
	below := NewSubsetSumReduction(S, x).RecoverCount()
	belowNext := NewSubsetSumReduction(S, x+1).RecoverCount()
	return belowNext > below
}
