// Command fairsched runs one multi-organization scheduling simulation
// and reports per-organization utilities, contributions and fairness.
//
// Workloads come from a synthetic family or from a Standard Workload
// Format (SWF) trace file:
//
//	fairsched -family lpc-egee -alg directcontr -orgs 5 -horizon 50000
//	fairsched -swf trace.swf -alg ref -orgs 3 -horizon 10000 -gantt
//
// With -compare, the run is repeated with the exact REF algorithm and
// the unfairness Δψ/p_tot is reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vis"
)

func main() {
	var (
		family   = flag.String("family", "lpc-egee", "synthetic workload family (lpc-egee, pik-iplex, sharcnet-whale, ricc)")
		swfPath  = flag.String("swf", "", "SWF trace file (overrides -family)")
		algName  = flag.String("alg", "directcontr", "algorithm: ref, rand, directcontr, fairshare, utfairshare, currfairshare, roundrobin, fcfs")
		orgs     = flag.Int("orgs", 5, "number of organizations")
		horizon  = flag.Int64("horizon", 50000, "simulation horizon (time units)")
		seed     = flag.Int64("seed", 1, "random seed")
		samples  = flag.Int("rand-n", 15, "RAND sample count")
		strat    = flag.Bool("rand-stratified", false, "RAND: draw permutations in position-stratified rotations")
		workers  = flag.Int("workers", 0, "worker goroutines for REF/RAND parallel paths (0 = GOMAXPROCS)")
		driver   = flag.String("ref-driver", "heap", "REF event loop: heap (indexed event heap) or scan (legacy full scan)")
		split    = flag.String("split", "zipf", "machine split among organizations: zipf | uniform")
		machines = flag.Int("machines", 0, "total machines when using -swf (0 = #orgs)")
		gantt    = flag.Bool("gantt", false, "print an ASCII Gantt chart (small runs only)")
		compare  = flag.Bool("compare", false, "also run REF and report Δψ/p_tot")
	)
	flag.Parse()

	inst, err := buildInstance(*swfPath, *family, *orgs, *split, *machines, model.Time(*horizon), *seed)
	fail(err)
	refDriver, err := core.ParseRefDriver(*driver)
	fail(err)
	refOpts := core.RefOptions{Parallel: true, Workers: *workers, Driver: refDriver}
	alg, err := exp.AlgorithmByName(*algName, *samples, refOpts, core.RandOptions{Workers: *workers, Stratified: *strat})
	fail(err)

	res := alg.Run(inst, model.Time(*horizon), *seed)
	fmt.Printf("algorithm   : %s\n", res.Algorithm)
	fmt.Printf("jobs        : %d started of %d\n", len(res.Starts), len(inst.Jobs))
	fmt.Printf("machines    : %d\n", inst.TotalMachines())
	fmt.Printf("horizon     : %d\n", res.Horizon)
	fmt.Printf("value v(C)  : %d\n", res.Value)
	fmt.Printf("utilization : %.3f\n\n", res.Utilization)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "org\tmachines\tjobs\tψ (utility)\tφ (contribution)")
	perOrg := make([]int, len(inst.Orgs))
	for _, j := range inst.Jobs {
		perOrg[j.Org]++
	}
	for i, o := range inst.Orgs {
		phi := "-"
		if res.Phi != nil {
			phi = fmt.Sprintf("%.1f", res.Phi[i])
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%s\n", o.Name, o.Machines, perOrg[i], res.Psi[i], phi)
	}
	w.Flush()

	if *compare {
		ref := core.RefAlgorithm{Opts: refOpts}.Run(inst, model.Time(*horizon), *seed)
		fmt.Printf("\nREF reference value : %d\n", ref.Value)
		fmt.Printf("Δψ (L1 distance)    : %d\n", metrics.DeltaPsi(res.Psi, ref.Psi))
		fmt.Printf("Δψ/p_tot            : %.3f\n", metrics.UnfairnessPerUnit(res.Psi, ref.Psi, ref.Ptot))
	}
	if *gantt {
		fmt.Println()
		fmt.Print(vis.Gantt(inst, res.Starts, inst.TotalMachines(), model.Time(*horizon), 100))
	}
}

func buildInstance(swfPath, family string, orgs int, split string, machines int, horizon model.Time, seed int64) (*model.Instance, error) {
	rng := stats.NewRand(seed)
	if swfPath != "" {
		f, err := os.Open(swfPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, skipped, err := trace.ParseSWF(f)
		if err != nil {
			return nil, err
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "fairsched: skipped %d unusable trace records\n", skipped)
		}
		tr = tr.Sequentialize().Window(0, horizon)
		if machines <= 0 {
			machines = orgs
		}
		var splits []int
		if split == "uniform" {
			splits = stats.UniformSplit(machines, orgs)
		} else {
			splits = stats.ZipfSplit(machines, orgs, 1)
		}
		return trace.ToInstance(tr, splits, trace.AssignUsers(tr.Users(), orgs, rng))
	}
	fam, err := gen.FamilyByName(family)
	if err != nil {
		return nil, err
	}
	var splits []int
	if split == "uniform" {
		splits = stats.UniformSplit(fam.Procs, orgs)
	} else {
		splits = stats.ZipfSplit(fam.Procs, orgs, 1)
	}
	return fam.Instance(horizon, orgs, splits, rng)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fairsched:", err)
		os.Exit(1)
	}
}
