// Package vis renders schedules as ASCII Gantt charts — the form the
// paper's Figures 2 and 7 take. One row per machine, one column per
// time-unit bucket, each job drawn with a stable letter.
package vis

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/sim"
)

// Gantt renders the schedule up to `until`. Each machine is a row; jobs
// are labelled a, b, c, … by start order (wrapping after 52 jobs); idle
// time is '.'. width limits the number of character columns; each
// column then covers ceil(until/width) time units and shows the job
// occupying the column's first unit.
func Gantt(inst *model.Instance, starts []sim.Start, machines int, until model.Time, width int) string {
	if width <= 0 {
		width = 80
	}
	cols := int(until)
	unitsPerCol := model.Time(1)
	if cols > width {
		unitsPerCol = (until + model.Time(width) - 1) / model.Time(width)
		cols = int((until + unitsPerCol - 1) / unitsPerCol)
	}
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	rows := make([][]byte, machines)
	for m := range rows {
		rows[m] = []byte(strings.Repeat(".", cols))
	}
	for i, s := range starts {
		if s.Machine >= machines {
			continue
		}
		label := letters[i%len(letters)]
		end := s.At + inst.Jobs[s.Job].Size
		if end > until {
			end = until
		}
		for t := s.At; t < end; t += unitsPerCol {
			col := int(t / unitsPerCol)
			if col < cols {
				rows[s.Machine][col] = label
			}
		}
	}
	var b strings.Builder
	header := fmt.Sprintf("t=0 .. t=%d (%d unit(s) per column)\n", until, unitsPerCol)
	b.WriteString(header)
	for m, row := range rows {
		fmt.Fprintf(&b, "M%-2d |%s|\n", m, row)
	}
	return b.String()
}

// Legend lists each start with its label, organization, interval and
// machine, matching Gantt's lettering.
func Legend(inst *model.Instance, starts []sim.Start) string {
	const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	var b strings.Builder
	for i, s := range starts {
		j := inst.Jobs[s.Job]
		fmt.Fprintf(&b, "%c: org %s job#%d  [%d,%d) on M%d\n",
			letters[i%len(letters)], inst.Orgs[s.Org].Name, s.Job, s.At, s.At+j.Size, s.Machine)
	}
	return b.String()
}
