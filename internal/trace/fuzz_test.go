package trace

import (
	"bytes"
	"testing"

	"repro/internal/model"
)

// FuzzParseSWF asserts the SWF reader is total: any byte stream either
// parses or returns an error — malformed headers, truncated records,
// non-numeric fields, negative and non-monotonic submit times must never
// panic. Successfully parsed traces must survive the standard
// post-processing pipeline (round-trip, windowing, sequentialization)
// without panicking either.
//
// Run continuously with:
//
//	go test -run='^$' -fuzz=FuzzParseSWF ./internal/trace
func FuzzParseSWF(f *testing.F) {
	seeds := []string{
		// Well-formed: header plus two records.
		"; Computer: fuzzbox\n; MaxJobs: 2\n1 0 -1 10 1 -1 -1 1 -1 -1 1 3 -1 -1 -1 -1 -1 -1\n2 5 -1 4 2 -1 -1 2 -1 -1 1 4 -1 -1 -1 -1 -1 -1\n",
		// Non-monotonic submit times (record 2 released before record 1).
		"1 50 -1 10 1 -1 -1 1 -1 -1 1 3 -1 -1 -1 -1 -1 -1\n2 5 -1 4 1 -1 -1 1 -1 -1 1 4 -1 -1 -1 -1 -1 -1\n",
		// Malformed header marker inside a record line.
		"1 0 -1 10 ; 1 -1 -1 1 -1 -1 1 3\n",
		// Truncated record (too few fields).
		"1 0 -1 10 1\n",
		// Non-numeric fields.
		"a b c d e f g h i j k l\n",
		// Failed/invalid jobs the archive marks with -1.
		"1 -3 -1 -1 -1 -1 -1 -1 -1 -1 0 7 -1 -1 -1 -1 -1 -1\n",
		// Empty and whitespace-only input.
		"",
		"\n\n  \n;\n",
		// Huge numbers (overflow paths).
		"1 9223372036854775807 -1 9223372036854775807 1 -1 -1 1 -1 -1 1 3 -1 -1 -1 -1 -1 -1\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, _, err := ParseSWF(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input is the correct outcome
		}
		if tr == nil {
			t.Fatal("nil trace with nil error")
		}
		for i := 1; i < len(tr.Jobs); i++ {
			if tr.Jobs[i].Submit < tr.Jobs[i-1].Submit {
				t.Fatalf("jobs not sorted by submit time at %d", i)
			}
		}
		for _, j := range tr.Jobs {
			if j.Runtime <= 0 || j.Procs <= 0 || j.Submit < 0 {
				t.Fatalf("unusable record survived parsing: %+v", j)
			}
		}
		// Round-trip: writing and re-reading must preserve every record.
		var buf bytes.Buffer
		if err := tr.WriteSWF(&buf); err != nil {
			t.Fatalf("WriteSWF: %v", err)
		}
		tr2, skipped, err := ParseSWF(&buf)
		if err != nil {
			t.Fatalf("round-trip re-parse: %v", err)
		}
		if skipped != 0 || len(tr2.Jobs) != len(tr.Jobs) {
			t.Fatalf("round-trip lost records: %d skipped, %d of %d jobs", skipped, len(tr2.Jobs), len(tr.Jobs))
		}
		_ = tr.Users()
		_ = tr.MaxSubmit()
		_ = tr.Window(0, tr.MaxSubmit())
		// Sequentialize duplicates each record Procs times; cap the
		// expansion so the fuzzer cannot request gigabytes.
		var expanded int64
		for _, j := range tr.Jobs {
			expanded += int64(j.Procs)
		}
		if expanded > 0 && expanded < 1<<16 {
			seq := tr.Sequentialize()
			if int64(len(seq.Jobs)) != expanded {
				t.Fatalf("Sequentialize produced %d jobs, want %d", len(seq.Jobs), expanded)
			}
			_ = seq.TotalWork()
			for _, j := range seq.Jobs {
				if j.Procs != 1 {
					t.Fatalf("sequentialized job still needs %d processors", j.Procs)
				}
			}
		}
	})
}

// The fuzz corpus cases double as regression tests in normal -run mode;
// this guards the specific ISSUE cases even when fuzzing never runs.
func TestParseSWFHostileInputs(t *testing.T) {
	cases := map[string]string{
		"truncated":     "1 0 -1 10 1\n",
		"non-numeric":   "x y z 1 2 3 4 5 6 7 8 9\n",
		"bad-header":    ";;; ;; ;\n1 0 -1\n",
		"negative-time": "1 -1 -1 5 1 -1 -1 1 -1 -1 1 3 -1 -1 -1 -1 -1 -1\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseSWF panicked: %v", r)
				}
			}()
			_, _, _ = ParseSWF(bytes.NewReader([]byte(in)))
		})
	}
	// Non-monotonic submit times parse fine and come out sorted.
	tr, _, err := ParseSWF(bytes.NewReader([]byte(
		"1 50 -1 10 1 -1 -1 1 -1 -1 1 3 -1 -1 -1 -1 -1 -1\n" +
			"2 5 -1 4 1 -1 -1 1 -1 -1 1 4 -1 -1 -1 -1 -1 -1\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 2 || tr.Jobs[0].Submit != model.Time(5) {
		t.Fatalf("non-monotonic trace not sorted: %+v", tr.Jobs)
	}
}
