package core

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// An organization that has long lent its machine to others must win the
// next scheduling decision once it finally submits: its deficit φ̃−ψ is
// large and positive, while the flooding organization's is negative.
func TestDirectContrRewardsLenders(t *testing.T) {
	jobs := []model.Job{}
	// B floods the system from t=0 with unit jobs.
	for i := 0; i < 40; i++ {
		jobs = append(jobs, model.Job{Org: 1, Release: 0, Size: 1})
	}
	// A submits its first job at t=10; both machines are busy with B's
	// backlog at that point.
	jobs = append(jobs, model.Job{Org: 0, Release: 10, Size: 1})
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1}, {Name: "B", Machines: 1}},
		jobs,
	)
	res := DirectContrAlgorithm().Run(in, 60, 1)
	var aStart model.Time = -1
	for _, s := range res.Starts {
		if s.Org == 0 {
			aStart = s.At
		}
	}
	if aStart != 10 {
		t.Fatalf("A's job started at %d, want 10 (immediate service for the lender)", aStart)
	}
}

func TestDirectContrDeterministicPerSeed(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	in := randCoreInstance(r, 4, false)
	horizon := in.Horizon()
	a := DirectContrAlgorithm().Run(in, horizon, 9)
	b := DirectContrAlgorithm().Run(in, horizon, 9)
	for i := range a.Starts {
		if a.Starts[i] != b.Starts[i] {
			t.Fatalf("DIRECTCONTR with equal seeds diverged at start %d", i)
		}
	}
}

// Utilities reported by the Result must sum to its Value for every
// algorithm (the characteristic function is the sum of utilities).
func TestResultValueConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	in := randCoreInstance(r, 3, false)
	horizon := in.Horizon() + 3
	for _, a := range []Algorithm{RefAlgorithm{}, RandAlgorithm{Samples: 8}, DirectContrAlgorithm()} {
		res := a.Run(in, horizon, 2)
		var sum int64
		for _, p := range res.Psi {
			sum += p
		}
		if sum != res.Value {
			t.Errorf("%s: Σψ = %d, Value = %d", a.Name(), sum, res.Value)
		}
		if res.Horizon != horizon {
			t.Errorf("%s: horizon = %d", a.Name(), res.Horizon)
		}
	}
}
