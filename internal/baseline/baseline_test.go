package baseline

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

func instance(jobs []model.Job, machines ...int) *model.Instance {
	orgs := make([]model.Org, len(machines))
	for i, m := range machines {
		orgs[i] = model.Org{Name: string(rune('A' + i)), Machines: m}
	}
	return model.MustNewInstance(orgs, jobs)
}

func TestFCFSOrdersByReleaseThenID(t *testing.T) {
	in := instance([]model.Job{
		{Org: 1, Release: 0, Size: 5},
		{Org: 0, Release: 1, Size: 5},
		{Org: 1, Release: 1, Size: 5},
	}, 1, 1)
	// One machine only (give org B zero): rebuild with a single machine.
	in = instance(in.Jobs, 1, 0)
	c := sim.New(in, in.Grand(), NewFCFS(), nil)
	c.Run(100)
	starts := c.Starts()
	wantOrgs := []int{1, 0, 1}
	for i, s := range starts {
		if s.Org != wantOrgs[i] {
			t.Fatalf("start order orgs = %v, want %v", starts, wantOrgs)
		}
	}
}

func TestRoundRobinAlternates(t *testing.T) {
	var jobs []model.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, model.Job{Org: i % 3, Release: 0, Size: 10})
	}
	in := instance(jobs, 1, 1, 1)
	// Single machine: all three orgs always waiting → strict rotation.
	in = instance(jobs, 1, 0, 0)
	c := sim.New(in, in.Grand(), NewRoundRobin(), nil)
	c.Run(100)
	var orgs []int
	for _, s := range c.Starts() {
		orgs = append(orgs, s.Org)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if orgs[i] != want[i] {
			t.Fatalf("round robin order = %v, want %v", orgs, want)
		}
	}
}

func TestRoundRobinSkipsEmpty(t *testing.T) {
	jobs := []model.Job{
		{Org: 0, Release: 0, Size: 2},
		{Org: 2, Release: 0, Size: 2},
		{Org: 2, Release: 0, Size: 2},
	}
	in := instance(jobs, 1, 0, 0)
	c := sim.New(in, in.Grand(), NewRoundRobin(), nil)
	c.Run(100)
	var orgs []int
	for _, s := range c.Starts() {
		orgs = append(orgs, s.Org)
	}
	want := []int{0, 2, 2}
	for i := range want {
		if orgs[i] != want[i] {
			t.Fatalf("orgs = %v, want %v", orgs, want)
		}
	}
}

// FairShare: the organization owning 3 of 4 machines must receive ~3/4
// of the CPU time when both organizations have unbounded backlogs.
func TestFairShareProportionalUsage(t *testing.T) {
	var jobs []model.Job
	for i := 0; i < 200; i++ {
		jobs = append(jobs, model.Job{Org: i % 2, Release: 0, Size: 4})
	}
	in := instance(jobs, 3, 1)
	c := sim.New(in, in.Grand(), NewFairShare(), nil)
	c.Run(100)
	v := c.View()
	u0, u1 := float64(v.Usage(0)), float64(v.Usage(1))
	ratio := u0 / (u0 + u1)
	if ratio < 0.70 || ratio > 0.80 {
		t.Fatalf("org A usage share = %v, want ≈0.75", ratio)
	}
}

// UtFairShare balances ψ/share instead of usage/share; with equal
// shares and equal backlogs the utilities must come out near equal.
func TestUtFairShareBalancesUtility(t *testing.T) {
	var jobs []model.Job
	for i := 0; i < 100; i++ {
		jobs = append(jobs, model.Job{Org: i % 2, Release: 0, Size: 3})
	}
	in := instance(jobs, 1, 1)
	c := sim.New(in, in.Grand(), NewUtFairShare(), nil)
	c.Run(120)
	p0, p1 := c.Psi(0), c.Psi(1)
	diff := p0 - p1
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.1*float64(p0+p1) {
		t.Fatalf("ψ = %d vs %d: not balanced", p0, p1)
	}
}

// CurrFairShare keeps the running-job counts proportional to shares.
func TestCurrFairShareRunningCounts(t *testing.T) {
	var jobs []model.Job
	for i := 0; i < 40; i++ {
		jobs = append(jobs, model.Job{Org: i % 2, Release: 0, Size: 50})
	}
	in := instance(jobs, 3, 1)
	c := sim.New(in, in.Grand(), NewCurrFairShare(), nil)
	c.Run(10)
	v := c.View()
	if v.Running(0) != 3 || v.Running(1) != 1 {
		t.Fatalf("running = %d/%d, want 3/1", v.Running(0), v.Running(1))
	}
}

// Zero-share organizations must still be schedulable (greediness).
func TestFairShareZeroShareOrgStillRuns(t *testing.T) {
	jobs := []model.Job{{Org: 1, Release: 0, Size: 2}}
	in := instance(jobs, 1, 0)
	for _, p := range []sim.Policy{NewFairShare(), NewUtFairShare(), NewCurrFairShare()} {
		c := sim.New(in, in.Grand(), p, nil)
		c.Run(10)
		if len(c.Starts()) != 1 {
			t.Fatalf("%s did not run the zero-share org's job", p.Name())
		}
	}
}

func TestPriorityOrder(t *testing.T) {
	jobs := []model.Job{
		{Org: 0, Release: 0, Size: 2},
		{Org: 1, Release: 0, Size: 2},
	}
	in := instance(jobs, 1, 0)
	c := sim.New(in, in.Grand(), NewPriority(1, 0), nil)
	c.Run(10)
	if c.Starts()[0].Org != 1 {
		t.Fatalf("priority(1,0) started org %d first", c.Starts()[0].Org)
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]sim.Policy{
		"FCFS":          NewFCFS(),
		"RoundRobin":    NewRoundRobin(),
		"FairShare":     NewFairShare(),
		"UtFairShare":   NewUtFairShare(),
		"CurrFairShare": NewCurrFairShare(),
		"Priority":      NewPriority(0),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}
