// Package repro is a production-quality Go reproduction of
// "Non-monetary fair scheduling — a cooperative game theory approach"
// (Skowron & Rzadca, SPAA 2013).
//
// The module implements the paper's Shapley-value based fair schedulers
// (REF, RAND, DIRECTCONTR), the strategy-proof utility function ψsp, the
// distributive-fairness baselines it is evaluated against, an event-driven
// multi-organization cluster simulator, synthetic workload generators
// modeled after the Parallel Workload Archive traces used in the paper,
// and an experiment harness that regenerates every table and figure of
// the evaluation section.
//
// Layout:
//
//	internal/model    — organizations, jobs, coalitions, instances
//	internal/utility  — ψsp and classic scheduling metrics
//	internal/shapley  — generic Shapley-value machinery, plus the
//	                    dynamic-game layer (ContribGame, Contrib) the
//	                    REF drivers and FedREF both run on
//	internal/sim      — event-driven cluster simulator with greedy dispatch,
//	                    online job injection/withdrawal and state
//	                    capture/restore
//	internal/core     — the paper's contribution: REF, RAND, DIRECTCONTR,
//	                    each runnable incrementally (core.Stepper), plus
//	                    the NBS stepper dispatching toward Nash-bargaining
//	                    targets
//	internal/bargain  — deterministic weighted Nash Bargaining Solution
//	                    solver (water-filling with disagreement points
//	                    and per-agent caps, zero-alloc SolveInto)
//	internal/baseline — RoundRobin, FairShare, UtFairShare, CurrFairShare, FCFS
//	internal/engine   — incremental run engine: Feed/Step/Snapshot/Restore
//	                    plus the single-run HTTP serving layer
//	internal/ctrl     — cluster control plane: prioritized admission/
//	                    routing event queue, pluggable admission
//	                    policies (always-admit, per-org token bucket,
//	                    queue-depth backpressure) and the
//	                    bounded-staleness SnapshotProvider contract;
//	                    gates engine.Feed and federation submission
//	internal/fed      — federated multi-cluster scheduling: N member
//	                    clusters, pluggable delegation policies (local,
//	                    least-loaded, fairness-aware + pricing ablations,
//	                    federation-level Shapley routing via fed.Game and
//	                    RefPolicy, Nash-bargaining routing via
//	                    NBSPolicy), summary-gossip staleness, queued-job
//	                    migration at gossip refreshes (Migrating
//	                    policies), federation-wide contribution ledger,
//	                    lockstep checkpoints, a parallel member-stepping
//	                    data plane (SetWorkers — byte-identical at any
//	                    width) and pull-based streaming ingestion
//	                    (JobSource/SetSource with bounded lookahead,
//	                    SWF adapter, cursor checkpointing)
//	internal/daemon   — multi-session serving layer: many concurrent
//	                    runs (single or federated) over HTTP on a
//	                    sharded session table, persisted through a
//	                    crash-safe CheckpointStore (atomic writes,
//	                    corrupt-envelope quarantine, periodic dirty
//	                    flusher) and served by an async batching
//	                    advance pipeline with per-session rate limits
//	internal/trace    — Standard Workload Format (SWF) reader/writer and
//	                    the O(1)-memory streaming Reader
//	internal/gen      — synthetic workload families and federated
//	                    scenario generation (arrival skew, diurnal
//	                    phase offsets, heterogeneous sites), both eager
//	                    and as a replayable streaming fed.JobSource
//	internal/exp      — Table 1/2, Figure 7/10, federated delegation
//	                    (policy × metric) and admission-control
//	                    (variant × load) experiment runners
//	cmd/...           — fairsched, fairschedd (multi-session daemon),
//	                    loadgen (serving-tier load harness), paperexp,
//	                    tracegen, benchjson executables
//	examples/...      — runnable scenarios built on the public API
//
// See DESIGN.md for the full system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package repro
