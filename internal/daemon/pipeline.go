package daemon

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
)

// ErrPipelineClosed is returned for advances enqueued onto (or still
// pending in) a closed pipeline.
var ErrPipelineClosed = errors.New("daemon: advance pipeline closed")

// DefaultBurst is the per-session advance budget of one worker wakeup.
const DefaultBurst = 16

// PipelineOptions configures NewPipeline.
type PipelineOptions struct {
	// Workers is the number of worker goroutines. Each worker owns a
	// fixed subset of the sessionShards stripes (stripe % workers), so
	// requests for one session always serialize onto one worker and
	// different stripes advance in parallel. 0 means min(GOMAXPROCS,
	// sessionShards); values above sessionShards are capped — extra
	// workers would own no stripe.
	Workers int
	// Burst is the per-session advance rate limit: the most requests
	// one session may consume per queue pass before the worker moves
	// on to the stripe's other sessions. A hot session with a deep
	// backlog therefore shares its worker round-robin instead of
	// starving every session hashed onto the same stripes. 0 means
	// DefaultBurst.
	Burst int
}

// AdvanceResult is the outcome of one asynchronous advance.
type AdvanceResult struct {
	Now       model.Time
	Decisions []Decision
	Err       error
}

type advanceReq struct {
	sess  *Session
	until *model.Time
	done  chan AdvanceResult
}

// pipelineWorker is one worker's request queue: per-session FIFOs plus
// the round-robin order sessions are drained in.
type pipelineWorker struct {
	mu      sync.Mutex
	pending map[string][]advanceReq
	order   []string
	notify  chan struct{}

	// Scratch for process's coalesced groups, reused across batches.
	// Owned by the worker goroutine; no lock.
	untils  []*model.Time
	results []AdvanceResult
}

// Pipeline is the async advance path of the serving tier: requests
// enqueue per session, workers wake up and batch many sessions per
// wakeup, bounded to Burst advances per session per pass. Results are
// delivered on per-request channels; Advance is the synchronous
// convenience wrapper the HTTP handler uses.
//
// The amortization target: at high session counts each worker wakeup
// drains a batch spanning many sessions, so scheduler wakeups and
// channel operations are paid once per batch instead of once per
// request.
type Pipeline struct {
	burst   int
	workers []*pipelineWorker
	wg      sync.WaitGroup
	stop    chan struct{}
	closed  atomic.Bool

	advances  atomic.Int64
	wakeups   atomic.Int64
	batches   atomic.Int64
	coalesced atomic.Int64
}

// PipelineStats are cumulative counters: total advances processed,
// worker wakeups, non-empty queue passes (batches), and advances served
// through coalesced same-session AdvanceBatch groups. Advances per
// batch is the amortization the pipeline exists for; Coalesced measures
// how much of it the single-lock batch path captured.
type PipelineStats struct {
	Advances  int64
	Wakeups   int64
	Batches   int64
	Coalesced int64
}

// NewPipeline starts the workers and returns the running pipeline.
// Close it when done.
func NewPipeline(opts PipelineOptions) *Pipeline {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > sessionShards {
		workers = sessionShards
	}
	burst := opts.Burst
	if burst <= 0 {
		burst = DefaultBurst
	}
	p := &Pipeline{
		burst:   burst,
		workers: make([]*pipelineWorker, workers),
		stop:    make(chan struct{}),
	}
	for i := range p.workers {
		p.workers[i] = &pipelineWorker{
			pending: make(map[string][]advanceReq),
			notify:  make(chan struct{}, 1),
		}
		p.wg.Add(1)
		go p.run(p.workers[i])
	}
	return p
}

// workerFor maps a session onto its worker via the session-table shard
// hash: stripe shardIndex(id) belongs to worker stripe % len(workers).
func (p *Pipeline) workerFor(id string) *pipelineWorker {
	return p.workers[int(shardIndex(id))%len(p.workers)]
}

// Enqueue submits an asynchronous advance (until nil = next event) and
// returns the channel its result is delivered on (buffered: the worker
// never blocks on a slow consumer). Requests for one session complete
// in enqueue order.
func (p *Pipeline) Enqueue(sess *Session, until *model.Time) <-chan AdvanceResult {
	done := make(chan AdvanceResult, 1)
	w := p.workerFor(sess.ID())
	w.mu.Lock()
	// The closed check must happen under the queue lock: Close sets
	// the flag before workers drain, so either this request lands
	// before the drain (and is failed by it) or it observes closed.
	if p.closed.Load() {
		w.mu.Unlock()
		done <- AdvanceResult{Err: ErrPipelineClosed}
		return done
	}
	id := sess.ID()
	if _, queued := w.pending[id]; !queued {
		w.order = append(w.order, id)
	}
	w.pending[id] = append(w.pending[id], advanceReq{sess: sess, until: until, done: done})
	w.mu.Unlock()
	select {
	case w.notify <- struct{}{}:
	default:
	}
	return done
}

// Advance runs one advance through the pipeline synchronously.
func (p *Pipeline) Advance(sess *Session, until *model.Time) (model.Time, []Decision, error) {
	res := <-p.Enqueue(sess, until)
	return res.Now, res.Decisions, res.Err
}

// Stats snapshots the pipeline's cumulative counters.
func (p *Pipeline) Stats() PipelineStats {
	return PipelineStats{
		Advances:  p.advances.Load(),
		Wakeups:   p.wakeups.Load(),
		Batches:   p.batches.Load(),
		Coalesced: p.coalesced.Load(),
	}
}

// Close stops the workers. Pending and in-flight enqueues fail with
// ErrPipelineClosed; Close waits for the workers to exit.
func (p *Pipeline) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.stop)
	p.wg.Wait()
}

func (p *Pipeline) run(w *pipelineWorker) {
	defer p.wg.Done()
	for {
		select {
		case <-p.stop:
			w.fail(ErrPipelineClosed)
			return
		case <-w.notify:
		}
		for {
			batch := w.take(p.burst)
			if len(batch) == 0 {
				break
			}
			p.batches.Add(1)
			p.process(w, batch)
			// Re-check stop between passes so a deep backlog cannot
			// delay shutdown for its full length.
			select {
			case <-p.stop:
				w.fail(ErrPipelineClosed)
				return
			default:
			}
		}
		p.wakeups.Add(1)
	}
}

// process serves one queue pass. take returns one session's requests
// contiguously, so one scan groups them. A group runs as a single
// AdvanceBatch: the session lock, the checkpoint-dirty mark and the
// engine's per-call bookkeeping are paid once per group instead of
// once per request.
func (p *Pipeline) process(w *pipelineWorker, batch []advanceReq) {
	for start := 0; start < len(batch); {
		end := start + 1
		for end < len(batch) && batch[end].sess == batch[start].sess {
			end++
		}
		group := batch[start:end]
		if len(group) == 1 {
			req := group[0]
			now, decs, err := req.sess.Advance(req.until)
			req.done <- AdvanceResult{Now: now, Decisions: decs, Err: err}
		} else {
			w.untils = w.untils[:0]
			for _, req := range group {
				w.untils = append(w.untils, req.until)
			}
			if cap(w.results) < len(group) {
				w.results = make([]AdvanceResult, len(group))
			}
			res := w.results[:len(group)]
			group[0].sess.AdvanceBatch(w.untils, res)
			for i, req := range group {
				req.done <- res[i]
			}
			p.coalesced.Add(int64(len(group)))
		}
		p.advances.Add(int64(len(group)))
		start = end
	}
}

// take drains one pass of the queue: for each queued session, in
// round-robin order, up to burst requests; sessions with a deeper
// backlog keep their remainder and go again next pass after everyone
// else has been served.
func (w *pipelineWorker) take(burst int) []advanceReq {
	w.mu.Lock()
	defer w.mu.Unlock()
	var batch []advanceReq
	var keep []string
	for _, id := range w.order {
		q := w.pending[id]
		n := burst
		if n > len(q) {
			n = len(q)
		}
		batch = append(batch, q[:n]...)
		if len(q) > n {
			w.pending[id] = q[n:]
			keep = append(keep, id)
		} else {
			delete(w.pending, id)
		}
	}
	w.order = keep
	return batch
}

// fail drains every pending request with err (the shutdown path).
func (w *pipelineWorker) fail(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for id, q := range w.pending {
		for _, req := range q {
			req.done <- AdvanceResult{Err: err}
		}
		delete(w.pending, id)
	}
	w.order = nil
}
