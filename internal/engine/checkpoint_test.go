package engine

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// The checkpoint acceptance criterion: for every algorithm, stop at a
// mid-run instant, serialize the engine, restore it (through JSON, as a
// cold process would), finish — schedules, ψ and φ must be byte-
// identical to the uninterrupted run.
func TestCheckpointRestoreDeterminism(t *testing.T) {
	for _, alg := range steppers() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				r := rand.New(rand.NewSource(900 + seed))
				k := 2 + r.Intn(4)
				inst := testInstance(r, k)
				horizon := inst.Horizon() + 2
				mid := horizon / 2

				uninterrupted := New(alg, inst.Clone(), seed)
				if _, err := uninterrupted.Step(horizon); err != nil {
					t.Fatal(err)
				}

				paused := New(alg, inst.Clone(), seed)
				if _, err := paused.Step(mid); err != nil {
					t.Fatal(err)
				}
				snap, err := paused.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				resumed, err := Restore(alg, snap)
				if err != nil {
					t.Fatalf("restore: %v", err)
				}
				if resumed.Now() != mid {
					t.Fatalf("restored clock %d, want %d", resumed.Now(), mid)
				}
				if _, err := resumed.Step(horizon); err != nil {
					t.Fatal(err)
				}
				assertSameRun(t, "resumed vs uninterrupted",
					uninterrupted.Result(), resumed.Result(),
					uninterrupted.Decisions(), resumed.Decisions())
			}
		})
	}
}

// A snapshot must also survive online arrivals on both sides of the
// checkpoint: feed some jobs, checkpoint, feed more into the restored
// engine — and the whole run must match an unpaused engine given the
// same feed schedule.
func TestCheckpointWithOnlineArrivals(t *testing.T) {
	for _, alg := range steppers() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(1300))
			k := 3
			inst := testInstance(r, k)
			horizon := inst.Horizon() + 2
			mid := horizon / 2
			empty, err := model.NewInstance(inst.Orgs, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Feed plan: everything released before mid arrives at t=0,
			// the rest arrives right after the checkpoint at mid.
			var early, late []model.Job
			for _, j := range inst.Jobs {
				if j.Release < mid {
					early = append(early, j)
				} else {
					late = append(late, j)
				}
			}

			run := func(pause bool) *Engine {
				e := New(alg, empty.Clone(), 5)
				if _, err := e.Feed(early); err != nil {
					t.Fatal(err)
				}
				if _, err := e.Step(mid); err != nil {
					t.Fatal(err)
				}
				if pause {
					snap, err := e.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					if e, err = Restore(alg, snap); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := e.Feed(late); err != nil {
					t.Fatal(err)
				}
				if _, err := e.Step(horizon); err != nil {
					t.Fatal(err)
				}
				return e
			}
			plain, paused := run(false), run(true)
			assertSameRun(t, "paused vs plain",
				plain.Result(), paused.Result(), plain.Decisions(), paused.Decisions())
		})
	}
}

// Snapshots are versioned JSON and refuse to restore under a different
// algorithm configuration.
func TestSnapshotValidation(t *testing.T) {
	inst := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1}},
		[]model.Job{{Org: 0, Release: 0, Size: 3}},
	)
	e := New(core.RefAlgorithm{}, inst, 0)
	if _, err := e.Step(1); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var cp core.Checkpoint
	if err := json.Unmarshal(snap, &cp); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if cp.Version != core.CheckpointVersion || cp.Algorithm != "REF" {
		t.Fatalf("snapshot header: %+v", cp)
	}
	if _, err := Restore(core.RandAlgorithm{Samples: 3}, snap); err == nil {
		t.Fatal("REF snapshot restored as RAND")
	}
	cp.Version = 99
	bad, _ := json.Marshal(cp)
	if _, err := Restore(core.RefAlgorithm{}, bad); err == nil {
		t.Fatal("future checkpoint version accepted")
	}
}

// Crafted or corrupt checkpoints must be rejected with an error, never
// accepted into a state that panics on the next step — /v1/restore is
// an untrusted input surface.
func TestRestoreRejectsCorruptCheckpoints(t *testing.T) {
	inst := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 2}},
		[]model.Job{{Org: 0, Release: 0, Size: 4}},
	)
	e := New(core.RefAlgorithm{}, inst, 0)
	if _, err := e.Step(1); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(cp *core.Checkpoint)) []byte {
		var cp core.Checkpoint
		if err := json.Unmarshal(snap, &cp); err != nil {
			t.Fatal(err)
		}
		mutate(&cp)
		out, _ := json.Marshal(&cp)
		return out
	}
	cases := map[string][]byte{
		"running entry with unknown job": corrupt(func(cp *core.Checkpoint) {
			cp.Clusters[0].Running[0].Job = 999999
		}),
		"speeds shorter than machines": corrupt(func(cp *core.Checkpoint) {
			cp.Orgs[0].Speeds = []int{2}
		}),
		"zero machines total": corrupt(func(cp *core.Checkpoint) {
			cp.Orgs[0].Machines = 0
			cp.Clusters[0].Free = nil
			cp.Clusters[0].Running = nil
		}),
		"job for unknown org": corrupt(func(cp *core.Checkpoint) {
			cp.Jobs[0].Org = 7
		}),
	}
	for name, data := range cases {
		if _, err := Restore(core.RefAlgorithm{}, data); err == nil {
			t.Errorf("%s: corrupt checkpoint accepted", name)
		}
	}
}
