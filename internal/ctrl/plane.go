package ctrl

import (
	"encoding/json"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/model"
)

// Sink is the data-plane half of a control plane: the owner-supplied
// executor the Plane hands admitted work to.
type Sink interface {
	// Route executes one admitted job at instant t, acting on view —
	// pick a target and feed the job. Called at RoutingDecisionEvents,
	// in (timestamp, priority, seqID) order.
	Route(job Job, t model.Time, view View) error
	// Refreshed fires when an observation captured a fresh snapshot,
	// before any decision of the instant acts on it — the
	// staleness-delimited edge internal/fed hooks its queued-job
	// re-delegation pass onto.
	Refreshed(t model.Time, view View) error
}

// Plane is one control plane: the prioritized event queue, the
// admission policy, the snapshot provider the decisions observe
// through, and the per-organization accounting. Single-goroutine, like
// the engines it fronts; the owner serializes access and drives it
// from its own step loop.
type Plane struct {
	q        EventQueue
	policy   AdmissionPolicy
	provider SnapshotProvider
	stats    *metrics.AdmissionStats
	nextSeq  int64
}

// NewPlane builds a control plane over the given policy and provider
// for an organization universe of the given size.
func NewPlane(policy AdmissionPolicy, provider SnapshotProvider, orgs int) *Plane {
	return &Plane{policy: policy, provider: provider, stats: metrics.NewAdmissionStats(orgs)}
}

// Policy returns the admission policy.
func (p *Plane) Policy() AdmissionPolicy { return p.policy }

// Provider returns the snapshot provider decisions observe through.
func (p *Plane) Provider() SnapshotProvider { return p.provider }

// Stats returns the live admission accounting.
func (p *Plane) Stats() *metrics.AdmissionStats { return p.stats }

// Pending returns the number of queued control events (arrivals,
// verdicts and routings not yet processed, including deferred retries).
func (p *Plane) Pending() int { return p.q.Len() }

// Arrive admits one job into the control plane at instant at: an
// ArrivalEvent is queued and the job's sequence number returned. A
// negative job.Seq asks the plane to assign one from its own counter
// (single-cluster owners); non-negative sequence numbers pass through
// (the federation numbers jobs itself).
func (p *Plane) Arrive(job Job, at model.Time) int64 {
	if job.Seq < 0 {
		job.Seq = p.nextSeq
		p.nextSeq++
	}
	job.Arrived = at
	p.q.Push(Event{At: at, Prio: PrioArrival, Job: job})
	return job.Seq
}

// NextEventTime returns the earliest pending control event's instant.
func (p *Plane) NextEventTime() (model.Time, bool) {
	e, ok := p.q.Peek()
	if !ok {
		return 0, false
	}
	return e.At, true
}

// Advance processes every control event at or before now, in
// (timestamp, priority, seqID) order: arrivals spawn admission
// decisions, admission decisions consult the policy on the instant's
// view and spawn routing decisions (or reject / defer), and routing
// decisions hand the job to the sink. One view is observed per event
// instant — all of an instant's decisions act on the same observation,
// exactly as a batch routed on one exchange did pre-control-plane —
// and a fresh observation fires sink.Refreshed before any decision
// uses it. After the drain the admission conservation law is checked:
// admitted + rejected + deferred == released, per organization.
func (p *Plane) Advance(now model.Time, sink Sink) error {
	var (
		view    View
		viewAt  model.Time
		haveRef bool
	)
	for {
		ev, ok := p.q.Peek()
		if !ok || ev.At > now {
			break
		}
		p.q.Pop()
		t := ev.At
		if !haveRef || viewAt != t {
			var refreshed bool
			view, refreshed = p.provider.Observe(t)
			viewAt, haveRef = t, true
			if refreshed {
				if err := sink.Refreshed(t, view); err != nil {
					return err
				}
			}
		}
		switch ev.Prio {
		case PrioArrival:
			// Release is counted here, not at Arrive: an arrival still
			// queued is not yet in the system, and every processed
			// arrival reaches a same-instant verdict within this drain —
			// which is what keeps the conservation check below exact at
			// every quiescent instant.
			p.stats.Release(ev.Job.Org)
			p.q.Push(Event{At: t, Prio: PrioAdmission, Job: ev.Job})
		case PrioAdmission:
			if ev.Attempt > 0 {
				p.stats.Resume(ev.Job.Org)
			}
			d := p.policy.Decide(ev.Job, ev.Attempt, t, view)
			switch d.Verdict {
			case Admitted:
				p.q.Push(Event{At: t, Prio: PrioRouting, Job: ev.Job})
				p.stats.Admit(ev.Job.Org, int64(t-ev.Job.Arrived))
			case Rejected:
				p.stats.Reject(ev.Job.Org, int64(t-ev.Job.Arrived))
			case Deferred:
				if d.RetryAt <= t {
					return fmt.Errorf("ctrl: policy %q deferred job %d to %d without advancing past %d",
						p.policy.Name(), ev.Job.Seq, d.RetryAt, t)
				}
				p.stats.Defer(ev.Job.Org)
				p.q.Push(Event{At: d.RetryAt, Prio: PrioAdmission, Job: ev.Job, Attempt: ev.Attempt + 1})
			default:
				return fmt.Errorf("ctrl: policy %q returned unknown verdict %d", p.policy.Name(), d.Verdict)
			}
		case PrioRouting:
			if err := sink.Route(ev.Job, t, view); err != nil {
				return err
			}
		default:
			return fmt.Errorf("ctrl: unknown event priority %d", ev.Prio)
		}
	}
	return p.stats.CheckConserved()
}

// CheckpointVersion identifies the serialized control-plane layout.
const CheckpointVersion = 1

// Checkpoint is the plane's complete serializable dynamic state. The
// snapshot provider's cached view is owner state (the owner knows its
// payload type) and is persisted by the owner, not here.
type Checkpoint struct {
	Version int                     `json:"version"`
	Policy  string                  `json:"policy"`
	Queue   queueState              `json:"queue"`
	NextSeq int64                   `json:"next_seq,omitempty"`
	PolicyS json.RawMessage         `json:"policy_state,omitempty"`
	Stats   *metrics.AdmissionStats `json:"stats"`
}

// State serializes the plane's dynamic state.
func (p *Plane) State() (json.RawMessage, error) {
	ps, err := p.policy.StateJSON()
	if err != nil {
		return nil, fmt.Errorf("ctrl: serialize policy %q: %w", p.policy.Name(), err)
	}
	return json.Marshal(Checkpoint{
		Version: CheckpointVersion,
		Policy:  p.policy.Name(),
		Queue:   p.q.state(),
		NextSeq: p.nextSeq,
		PolicyS: ps,
		Stats:   p.stats,
	})
}

// RestoreState rebuilds the plane's dynamic state from a State
// serialization. The configured policy must match the one that
// captured it.
func (p *Plane) RestoreState(data json.RawMessage) error {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return fmt.Errorf("ctrl: restore plane: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("ctrl: restore plane: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	if cp.Policy != p.policy.Name() {
		return fmt.Errorf("ctrl: restore plane: checkpoint admitted by %q, plane configured with %q", cp.Policy, p.policy.Name())
	}
	if cp.Stats == nil {
		return fmt.Errorf("ctrl: restore plane: checkpoint has no admission stats")
	}
	if cp.Stats.Orgs() != p.stats.Orgs() {
		return fmt.Errorf("ctrl: restore plane: checkpoint counts %d organizations, plane %d", cp.Stats.Orgs(), p.stats.Orgs())
	}
	if err := cp.Stats.CheckConserved(); err != nil {
		return fmt.Errorf("ctrl: restore plane: %w", err)
	}
	if err := p.policy.RestoreState(cp.PolicyS); err != nil {
		return err
	}
	p.q.restore(cp.Queue)
	p.nextSeq = cp.NextSeq
	p.stats = cp.Stats
	return nil
}
