// Package trace reads and writes workloads in the Standard Workload
// Format (SWF) used by the Parallel Workload Archive — the source of the
// paper's evaluation traces (LPC-EGEE, PIK-IPLEX, SHARCNET-Whale, RICC)
// — and converts them into model instances: parallel jobs are expanded
// into sequential copies and users are distributed among organizations,
// exactly as described in Section 7.2.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"repro/internal/model"
)

// Job is one SWF record, reduced to the fields the experiments use.
type Job struct {
	ID      int        // SWF job number
	Submit  model.Time // SWF field 2
	Runtime model.Time // SWF field 4
	Procs   int        // SWF field 5 (allocated), falling back to field 8 (requested)
	User    int        // SWF field 12
	Status  int        // SWF field 11; 1 = completed
}

// Trace is a parsed workload: header comment lines (without the leading
// ';') plus job records in submission order.
type Trace struct {
	Header []string
	Jobs   []Job
}

// ParseSWF reads a whole SWF stream into memory. Comment lines (';')
// become the header; records with non-positive runtime or unparsable
// fields are skipped (the archive marks failed jobs with -1), counting
// them in skipped. It is the batch form of the streaming Reader — same
// grammar, no line-length cap — for workloads that fit in memory; the
// incremental engine feeds from a Reader directly instead.
func ParseSWF(r io.Reader) (t *Trace, skipped int, err error) {
	t = &Trace{}
	sr := NewReader(r)
	for {
		j, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, sr.Skipped(), err
		}
		t.Jobs = append(t.Jobs, j)
	}
	t.Header = append(t.Header, sr.Header()...)
	sort.SliceStable(t.Jobs, func(a, b int) bool { return t.Jobs[a].Submit < t.Jobs[b].Submit })
	return t, sr.Skipped(), nil
}

// WriteSWF emits the trace in SWF: 18 fields per record, unknown fields
// as -1. The output round-trips through ParseSWF.
func (t *Trace) WriteSWF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, h := range t.Header {
		if _, err := fmt.Fprintf(bw, "; %s\n", h); err != nil {
			return err
		}
	}
	for _, j := range t.Jobs {
		if _, err := fmt.Fprintf(bw, "%d %d -1 %d %d -1 -1 %d -1 -1 %d %d -1 -1 -1 -1 -1 -1\n",
			j.ID, j.Submit, j.Runtime, j.Procs, j.Procs, j.Status, j.User); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Users returns the distinct user IDs in ascending order.
func (t *Trace) Users() []int {
	seen := map[int]bool{}
	for _, j := range t.Jobs {
		seen[j.User] = true
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Sequentialize expands every job requiring q > 1 processors into q
// sequential copies with the same submit time, runtime and user — the
// paper's preprocessing of the archive traces (Section 7.2).
func (t *Trace) Sequentialize() *Trace {
	out := &Trace{Header: append([]string(nil), t.Header...)}
	for _, j := range t.Jobs {
		for q := 0; q < j.Procs; q++ {
			c := j
			c.Procs = 1
			out.Jobs = append(out.Jobs, c)
		}
	}
	return out
}

// Window keeps the jobs submitted in [start, end) and shifts their
// submit times so the window begins at 0 — the paper's random sub-trace
// extraction.
func (t *Trace) Window(start, end model.Time) *Trace {
	out := &Trace{Header: append([]string(nil), t.Header...)}
	for _, j := range t.Jobs {
		if j.Submit >= start && j.Submit < end {
			c := j
			c.Submit -= start
			out.Jobs = append(out.Jobs, c)
		}
	}
	return out
}

// MaxSubmit returns the latest submission time (0 when empty).
func (t *Trace) MaxSubmit() model.Time {
	var m model.Time
	for _, j := range t.Jobs {
		if j.Submit > m {
			m = j.Submit
		}
	}
	return m
}

// TotalWork returns Σ runtime·procs.
func (t *Trace) TotalWork() int64 {
	var w int64
	for _, j := range t.Jobs {
		w += int64(j.Runtime) * int64(j.Procs)
	}
	return w
}

// AssignUsers maps each user ID to one of k organizations: the user list
// is shuffled and dealt round-robin, the paper's uniform distribution of
// user identifiers over organizations.
func AssignUsers(users []int, k int, rng *rand.Rand) map[int]int {
	shuffled := append([]int(nil), users...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	out := make(map[int]int, len(shuffled))
	for i, u := range shuffled {
		out[u] = i % k
	}
	return out
}

// ToInstance builds a model instance from a sequentialized trace:
// machines[i] processors go to organization i and each job goes to its
// user's organization. Jobs of unknown users are rejected.
func ToInstance(t *Trace, machines []int, orgOfUser map[int]int) (*model.Instance, error) {
	orgs := make([]model.Org, len(machines))
	for i, m := range machines {
		orgs[i] = model.Org{Name: fmt.Sprintf("org%d", i), Machines: m}
	}
	jobs := make([]model.Job, 0, len(t.Jobs))
	for _, j := range t.Jobs {
		if j.Procs != 1 {
			return nil, fmt.Errorf("trace: job %d needs %d processors; Sequentialize first", j.ID, j.Procs)
		}
		org, ok := orgOfUser[j.User]
		if !ok {
			return nil, fmt.Errorf("trace: job %d has unassigned user %d", j.ID, j.User)
		}
		jobs = append(jobs, model.Job{Org: org, Release: j.Submit, Size: j.Runtime})
	}
	return model.NewInstance(orgs, jobs)
}
