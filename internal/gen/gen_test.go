package gen

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/stats"
)

func TestGenerateLoadCalibration(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			horizon := model.Time(50000)
			var got float64
			const runs = 3
			for seed := int64(0); seed < runs; seed++ {
				tr := f.Generate(horizon, stats.NewRand(seed))
				got += float64(tr.TotalWork()) / (float64(f.Procs) * float64(horizon)) / runs
			}
			// Clipping and burst truncation push realized load a bit off
			// target; the regime (lightly loaded vs saturated) must hold.
			if got < f.Load*0.6 || got > f.Load*1.6 {
				t.Fatalf("realized load %.3f too far from target %.3f", got, f.Load)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	f := LPCEGEE()
	a := f.Generate(10000, stats.NewRand(5))
	b := f.Generate(10000, stats.NewRand(5))
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestGenerateWithinHorizon(t *testing.T) {
	f := RICC()
	horizon := model.Time(20000)
	tr := f.Generate(horizon, stats.NewRand(9))
	for _, j := range tr.Jobs {
		if j.Submit < 0 || j.Submit >= horizon {
			t.Fatalf("job submitted at %d outside [0,%d)", j.Submit, horizon)
		}
		if j.Runtime < 1 {
			t.Fatalf("job runtime %d", j.Runtime)
		}
		if j.Procs != 1 {
			t.Fatalf("generator must emit sequential jobs")
		}
	}
	users := tr.Users()
	if len(users) < f.Users/2 {
		t.Fatalf("only %d of %d users submitted", len(users), f.Users)
	}
}

func TestSizeDistClipping(t *testing.T) {
	d := SizeDist{Mu: math.Log(100), Sigma: 2, Min: 5, Max: 500}
	rng := stats.NewRand(3)
	for i := 0; i < 5000; i++ {
		s := d.Draw(rng)
		if s < 5 || s > 500 {
			t.Fatalf("size %d outside clip range", s)
		}
	}
	if m := d.Mean(); math.Abs(m-100*math.Exp(2)) > 1e-9 {
		t.Errorf("Mean = %v", m)
	}
}

func TestInstancePipeline(t *testing.T) {
	f := LPCEGEE()
	k := 5
	machines := stats.ZipfSplit(f.Procs, k, 1)
	in, err := f.Instance(5000, k, machines, stats.NewRand(11))
	if err != nil {
		t.Fatal(err)
	}
	if in.TotalMachines() != f.Procs {
		t.Fatalf("machines = %d", in.TotalMachines())
	}
	if len(in.Orgs) != k {
		t.Fatalf("orgs = %d", len(in.Orgs))
	}
	if len(in.Jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	// Every org should own some jobs with 56 users over 5 orgs.
	perOrg := make([]int, k)
	for _, j := range in.Jobs {
		perOrg[j.Org]++
	}
	for org, n := range perOrg {
		if n == 0 {
			t.Fatalf("org %d has no jobs: %v", org, perOrg)
		}
	}
}

func TestScale(t *testing.T) {
	f := RICC()
	s := f.Scale(0.5)
	if s.Procs != 128 || s.Users != 88 {
		t.Fatalf("Scale(0.5): %d procs, %d users", s.Procs, s.Users)
	}
	if s.Load != f.Load || s.Size != f.Size {
		t.Fatal("Scale must preserve load and sizes")
	}
	tiny := f.Scale(0.0001)
	if tiny.Procs < 1 || tiny.Users < 1 {
		t.Fatal("Scale must keep at least one proc and user")
	}
}

func TestFullScaleFactor(t *testing.T) {
	for _, f := range Families() {
		full := f.Scale(FullScaleFactor(f))
		switch f.Name {
		case "LPC-EGEE":
			if full.Procs != 70 {
				t.Errorf("LPC full = %d", full.Procs)
			}
		case "PIK-IPLEX":
			if full.Procs != 2560 {
				t.Errorf("PIK full = %d", full.Procs)
			}
		case "SHARCNET-Whale":
			if full.Procs != 3072 {
				t.Errorf("SHARCNET full = %d", full.Procs)
			}
		case "RICC":
			if full.Procs != 8192 {
				t.Errorf("RICC full = %d", full.Procs)
			}
		}
	}
}
