package exp

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/stats"
)

// Federated-table metric columns, in render order.
const (
	FedMetricOffload = "offload%"
	FedMetricValue   = "value"
	FedMetricDelta   = "Δψ/p_tot"
)

// FedConfig describes one federated-delegation experiment: a
// gen.FedScenario (the diurnal multi-cluster grid), a horizon, and the
// member algorithm every cluster runs. Each sampled instance is routed
// under every compared policy, with the local-only run of the same
// instance as the fairness reference.
type FedConfig struct {
	Scenario  gen.FedScenario
	Horizon   model.Time
	Instances int
	Seed      int64
	// Alg names the per-member scheduling algorithm (AlgorithmByName);
	// Samples, RefOpts and RandOpts parameterize it.
	Alg      string
	Samples  int
	RefOpts  core.RefOptions
	RandOpts core.RandOptions
	// Workers bounds instance-level parallelism; 0 = GOMAXPROCS.
	Workers int
	// Staleness is the summary-gossip staleness Δt passed to every
	// federation (0 = idealized fresh exchange).
	Staleness model.Time
	// MigrationBudget overrides the per-refresh re-delegation cap of
	// "-migrate" policies (fed.WithMigrationBudget semantics: positive
	// replaces, negative disables, zero keeps the policy default).
	MigrationBudget int
	// FedWorkers is the per-federation data-plane fan-out width
	// (fed.SetWorkers); results are byte-identical at any width, so it
	// composes freely with the instance-level Workers parallelism.
	FedWorkers int
}

// DefaultFedConfig returns the -fed experiment's base configuration:
// the default three-cluster diurnal scenario under DIRECTCONTR members.
func DefaultFedConfig() FedConfig {
	return FedConfig{
		Scenario:  gen.DefaultFedScenario(),
		Horizon:   8000,
		Instances: 10,
		Seed:      1,
		Alg:       "directcontr",
		Samples:   15,
	}
}

// memberAlg resolves the configured member algorithm.
func (cfg FedConfig) memberAlg() (core.StepperAlgorithm, error) {
	samples := cfg.Samples
	if samples <= 0 {
		samples = 15
	}
	alg, err := AlgorithmByName(cfg.Alg, samples, cfg.RefOpts, cfg.RandOpts)
	if err != nil {
		return nil, err
	}
	stepper, ok := alg.(core.StepperAlgorithm)
	if !ok {
		return nil, fmt.Errorf("exp: member algorithm %q cannot run incrementally", alg.Name())
	}
	return stepper, nil
}

// runFedInstance routes one generated workload under one policy and
// returns the drained ledger.
func (cfg FedConfig) runFedInstance(w *gen.FedWorkload, alg core.StepperAlgorithm, policy fed.Policy, seed int64) (*fed.Ledger, error) {
	specs := make([]fed.ClusterSpec, len(w.Machines))
	for c := range specs {
		specs[c] = fed.ClusterSpec{Name: fmt.Sprintf("site%d", c), Alg: alg, Machines: w.Machines[c]}
	}
	f, err := fed.New(w.Orgs, specs, policy, seed)
	if err != nil {
		return nil, err
	}
	f.SetStaleness(cfg.Staleness)
	f.SetWorkers(cfg.FedWorkers)
	for c, js := range w.Jobs {
		if err := f.SubmitJobs(c, js); err != nil {
			return nil, err
		}
	}
	if _, err := f.Step(cfg.Horizon); err != nil {
		return nil, err
	}
	if err := f.CheckConservation(); err != nil {
		return nil, fmt.Errorf("exp: policy %q broke conservation: %w", policy.Name(), err)
	}
	return f.Ledger(), nil
}

// FedPolicyTable runs the federated policy comparison: every sampled
// scenario instance is routed under every named delegation policy, and
// the offloaded fraction, federation-wide value and federation-level
// unfairness Δψ/p_tot (against the local-only routing of the same
// instance) are aggregated into a policy × metric table.
func FedPolicyTable(cfg FedConfig, policyNames []string) (*Table, error) {
	if cfg.Instances < 1 {
		return nil, fmt.Errorf("exp: federated experiment needs at least one instance")
	}
	if len(policyNames) == 0 {
		return nil, fmt.Errorf("exp: no delegation policies selected")
	}
	if err := cfg.Scenario.Validate(); err != nil {
		return nil, err
	}
	alg, err := cfg.memberAlg()
	if err != nil {
		return nil, err
	}
	policies := make([]fed.Policy, len(policyNames))
	for i, name := range policyNames {
		if policies[i], err = fed.PolicyByName(name); err != nil {
			return nil, err
		}
		policies[i] = fed.WithMigrationBudget(policies[i], cfg.MigrationBudget)
	}
	metricsOf := []string{FedMetricOffload, FedMetricValue, FedMetricDelta}
	// values[policy][metric][instance]
	values := make([][][]float64, len(policies))
	for p := range values {
		values[p] = make([][]float64, len(metricsOf))
		for m := range values[p] {
			values[p][m] = make([]float64, cfg.Instances)
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Instances {
		workers = cfg.Instances
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if err := cfg.runFedIdx(idx, alg, policies, values); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for idx := 0; idx < cfg.Instances; idx++ {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	t := newTable()
	for m, metric := range metricsOf {
		for p, policy := range policies {
			t.add(metric, policy.Name(), values[p][m])
		}
	}
	return t, nil
}

// runFedIdx generates instance idx, computes its local-only reference
// and fills values[policy][metric][idx].
func (cfg FedConfig) runFedIdx(idx int, alg core.StepperAlgorithm, policies []fed.Policy, values [][][]float64) error {
	seed := cfg.Seed + int64(idx)*1009
	w, err := cfg.Scenario.Generate(cfg.Horizon, stats.NewRand(seed))
	if err != nil {
		return fmt.Errorf("exp: federated instance %d: %w", idx, err)
	}
	ref, err := cfg.runFedInstance(w, alg, fed.LocalOnly{}, seed)
	if err != nil {
		return fmt.Errorf("exp: federated instance %d reference: %w", idx, err)
	}
	refPsi, refPtot := ref.FederationPsi(), ref.TotalExecuted()
	for p, policy := range policies {
		var l *fed.Ledger
		if policy.Name() == (fed.LocalOnly{}).Name() {
			l = ref // the reference run is the local-only row
		} else if l, err = cfg.runFedInstance(w, alg, policy, seed); err != nil {
			return fmt.Errorf("exp: federated instance %d: %w", idx, err)
		}
		values[p][0][idx] = 100 * l.OffloadedFraction()
		values[p][1][idx] = float64(l.FederationValue())
		values[p][2][idx] = metrics.UnfairnessPerUnit(l.FederationPsi(), refPsi, refPtot)
	}
	return nil
}
