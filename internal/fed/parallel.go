// Parallel member stepping: between routing instants the member
// engines share no mutable state — each schedules its own instance with
// its own seed — so advancing them is embarrassingly parallel. The
// worker pool reuses the deterministic fan-out pattern RAND's sampler
// established in internal/core: members are split into contiguous
// chunks with a fixed chunk-to-goroutine assignment, per-member results
// land in slots indexed by member position, and the single-threaded
// merge folds them into the decision log in configuration order — the
// exact order the sequential loop produces, so the worker count never
// changes a single output byte (TestFederationWorkerInvariance).
package fed

import (
	"fmt"
	"sync"

	"repro/internal/model"
	"repro/internal/sim"
)

// SetWorkers configures the data-plane fan-out width: member engines
// advance (and exchange summaries capture) on up to n goroutines.
// n <= 1 keeps the sequential path — the default, and the only mode the
// steady-state 0-allocs/op budget holds in, since fan-out spawns
// goroutines. Safe to change at any point: parallel and sequential
// stepping are byte-identical, so the worker count is a pure throughput
// knob and is deliberately absent from checkpoints.
func (f *Federation) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	f.workers = n
}

// Workers returns the effective data-plane fan-out width: 1 (the
// sequential default) until SetWorkers raises it.
func (f *Federation) Workers() int {
	if f.workers < 1 {
		return 1
	}
	return f.workers
}

// forEachMember runs fn over contiguous member-index chunks on up to
// f.workers goroutines, inline when the pool is off or trivial. fn must
// touch only per-member state (slots indexed by member position).
func (f *Federation) forEachMember(fn func(lo, hi int)) {
	n := len(f.members)
	if n == 0 {
		return
	}
	workers := f.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// advanceMembersParallel is advanceMembers' fan-out path: every member
// steps to t on the pool, fresh starts land in per-member scratch
// slots, and the merge appends them to the federated decision log in
// configuration order — byte-identical to the sequential loop. The
// scratch slices are reused across calls; the start slices themselves
// alias each engine's decision log (the engine.Step contract), so the
// merge copies nothing.
func (f *Federation) advanceMembersParallel(t model.Time) error {
	n := len(f.members)
	if cap(f.stepStarts) < n {
		f.stepStarts = make([][]sim.Start, n)
		f.stepErrs = make([]error, n)
	}
	starts := f.stepStarts[:n]
	errs := f.stepErrs[:n]
	f.forEachMember(func(lo, hi int) {
		for c := lo; c < hi; c++ {
			starts[c], errs[c] = f.members[c].eng.Step(t)
		}
	})
	for c, m := range f.members {
		if err := errs[c]; err != nil {
			return fmt.Errorf("fed: advance cluster %d (%s): %w", c, m.name, err)
		}
		for _, s := range starts[c] {
			f.decs = append(f.decs, Decision{
				Seq: m.seqOf[s.Job], Org: s.Org, Cluster: c, Machine: s.Machine, At: s.At,
			})
		}
		starts[c] = nil
	}
	return nil
}
