package core

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/shapley"
)

func l1(a, b []int64) int64 {
	var d int64
	for i := range a {
		diff := a[i] - b[i]
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return d
}

// Theorem 5.6: for unit-size jobs, RAND with N = ⌈k²/ε²·ln(k/(1−λ))⌉
// permutations yields ‖ψ−ψ*‖₁ ≤ ε·v* with probability λ. We check the
// bound across several seeded runs; with λ = 0.9 an occasional single
// failure is tolerated, more than one in eight runs is not.
func TestRandFPRASBoundUnitJobs(t *testing.T) {
	const eps, lambda = 0.3, 0.9
	failures := 0
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(100 + seed))
		k := 3
		in := randCoreInstance(r, k, true)
		horizon := in.Horizon() + 1
		refRes := RefAlgorithm{}.Run(in, horizon, 0)
		n := shapley.SampleSize(k, eps, lambda)
		randRes := RandAlgorithm{Samples: n}.Run(in, horizon, seed)
		if float64(l1(randRes.Psi, refRes.Psi)) > eps*float64(refRes.Value) {
			failures++
		}
	}
	if failures > 1 {
		t.Fatalf("FPRAS bound violated in %d of 8 runs", failures)
	}
}

// For unit jobs the sampled coalition values are schedule-independent
// (Proposition 5.4), so RAND's φ estimate is the plain Monte-Carlo
// Shapley estimate of the true game — with every permutation sampled
// many times it converges to REF's exact φ.
func TestRandPhiConvergesToExact(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	in := randCoreInstance(r, 3, true)
	horizon := in.Horizon() + 1
	refRes := RefAlgorithm{}.Run(in, horizon, 0)
	randRes := RandAlgorithm{Samples: 4000}.Run(in, horizon, 7)
	for u := range refRes.Phi {
		diff := refRes.Phi[u] - randRes.Phi[u]
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05*float64(refRes.Value)+1 {
			t.Errorf("φ[%d]: RAND %v vs REF %v", u, randRes.Phi[u], refRes.Phi[u])
		}
	}
}

// Stratified RAND stays an unbiased estimator: for unit jobs (where
// coalition values are schedule-independent, Proposition 5.4) a large
// budget converges to REF's exact φ just like plain sampling — and each
// full round of k rotations balances the position strata, so it may
// only converge faster.
func TestRandStratifiedPhiConvergesToExact(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	in := randCoreInstance(r, 3, true)
	horizon := in.Horizon() + 1
	refRes := RefAlgorithm{}.Run(in, horizon, 0)
	randRes := RandAlgorithm{Samples: 4000, Opts: RandOptions{Stratified: true}}.Run(in, horizon, 7)
	for u := range refRes.Phi {
		diff := refRes.Phi[u] - randRes.Phi[u]
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05*float64(refRes.Value)+1 {
			t.Errorf("φ[%d]: stratified RAND %v vs REF %v", u, randRes.Phi[u], refRes.Phi[u])
		}
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	in := randCoreInstance(r, 4, false)
	horizon := in.Horizon()
	a := RandAlgorithm{Samples: 15}.Run(in, horizon, 5)
	b := RandAlgorithm{Samples: 15}.Run(in, horizon, 5)
	for i := range a.Starts {
		if a.Starts[i] != b.Starts[i] {
			t.Fatalf("RAND with equal seeds diverged at start %d", i)
		}
	}
	c := RandAlgorithm{Samples: 15}.Run(in, horizon, 6)
	if len(c.Starts) != len(a.Starts) {
		t.Fatalf("different job counts across seeds: %d vs %d", len(c.Starts), len(a.Starts))
	}
}

// All algorithms schedule every job eventually: at a generous horizon
// the executed units equal the total work.
func TestAllAlgorithmsCompleteAllJobs(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	in := randCoreInstance(r, 3, false)
	horizon := in.Horizon() + 1
	algs := []Algorithm{
		RefAlgorithm{},
		RandAlgorithm{Samples: 10},
		DirectContrAlgorithm(),
	}
	for _, a := range algs {
		res := a.Run(in, horizon, 1)
		if res.Ptot != int64(in.TotalWork()) {
			t.Errorf("%s executed %d units, want %d", a.Name(), res.Ptot, in.TotalWork())
		}
		if len(res.Starts) != len(in.Jobs) {
			t.Errorf("%s started %d jobs, want %d", a.Name(), len(res.Starts), len(in.Jobs))
		}
	}
}

func TestRandRejectsZeroSamples(t *testing.T) {
	in := model.MustNewInstance(
		[]model.Org{{Name: "A", Machines: 1}},
		[]model.Job{{Org: 0, Release: 0, Size: 1}},
	)
	defer func() {
		if recover() == nil {
			t.Fatal("RAND with zero samples must panic")
		}
	}()
	NewRandSched(in, 0, 1, RandOptions{})
}
