package model

import "testing"

func TestOrgSpeedAndCapacity(t *testing.T) {
	plain := Org{Name: "A", Machines: 3}
	if plain.Speed(0) != 1 || plain.Speed(2) != 1 {
		t.Error("default speed must be 1")
	}
	if plain.Capacity() != 3 {
		t.Errorf("Capacity = %d", plain.Capacity())
	}
	fast := Org{Name: "B", Machines: 2, Speeds: []int{4, 1}}
	if fast.Speed(0) != 4 || fast.Speed(1) != 1 {
		t.Error("explicit speeds misread")
	}
	if fast.Capacity() != 5 {
		t.Errorf("Capacity = %d", fast.Capacity())
	}
}

func TestInstanceTotalCapacity(t *testing.T) {
	in := MustNewInstance(
		[]Org{
			{Name: "A", Machines: 2, Speeds: []int{3, 2}},
			{Name: "B", Machines: 1},
		},
		[]Job{{Org: 0, Release: 0, Size: 1}},
	)
	if got := in.TotalCapacity(); got != 6 {
		t.Errorf("TotalCapacity = %d", got)
	}
	if got := in.TotalMachines(); got != 3 {
		t.Errorf("TotalMachines = %d", got)
	}
}

func TestValidateSpeeds(t *testing.T) {
	bad := Instance{Orgs: []Org{{Name: "A", Machines: 2, Speeds: []int{1, 2, 3}}}}
	if err := bad.Validate(); err == nil {
		t.Error("length-mismatched speeds accepted")
	}
	bad2 := Instance{Orgs: []Org{{Name: "A", Machines: 1, Speeds: []int{-1}}}}
	if err := bad2.Validate(); err == nil {
		t.Error("negative speed accepted")
	}
}

func TestCloneDeepCopiesSpeeds(t *testing.T) {
	in := MustNewInstance(
		[]Org{{Name: "A", Machines: 1, Speeds: []int{2}}},
		[]Job{{Org: 0, Release: 0, Size: 1}},
	)
	cp := in.Clone()
	cp.Orgs[0].Speeds[0] = 99
	if in.Orgs[0].Speeds[0] == 99 {
		t.Fatal("Clone shares the Speeds slice")
	}
}

func TestRestrictClearsSpeeds(t *testing.T) {
	in := MustNewInstance(
		[]Org{
			{Name: "A", Machines: 1, Speeds: []int{2}},
			{Name: "B", Machines: 1},
		},
		[]Job{{Org: 0, Release: 0, Size: 1}},
	)
	sub := in.Restrict(Singleton(1))
	if sub.Orgs[0].Machines != 0 || sub.Orgs[0].Speeds != nil {
		t.Fatalf("non-member keeps machines/speeds: %+v", sub.Orgs[0])
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}
