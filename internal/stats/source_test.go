package stats

import (
	"math/rand"
	"testing"
)

func TestSourceDeterministicPerSeed(t *testing.T) {
	a, b := NewSource(42), NewSource(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("equal seeds diverged at draw %d", i)
		}
	}
	if NewSource(1).Uint64() == NewSource(2).Uint64() {
		t.Fatal("different seeds produced equal first draws")
	}
}

// The property the checkpoint machinery relies on: capturing State
// mid-stream and resuming with SetState continues the exact sequence —
// including through the rand.Rand distribution methods layered on top.
func TestSourceStateRoundTrip(t *testing.T) {
	src := NewSource(7)
	rng := rand.New(src)
	for i := 0; i < 37; i++ {
		rng.Intn(1000)
	}
	state := src.State()
	var want []int
	for i := 0; i < 50; i++ {
		want = append(want, rng.Intn(1000))
	}

	resumedSrc := NewSource(0)
	resumedSrc.SetState(state)
	resumed := rand.New(resumedSrc)
	for i, w := range want {
		if got := resumed.Intn(1000); got != w {
			t.Fatalf("resumed stream diverged at draw %d: %d vs %d", i, got, w)
		}
	}
}

func TestNewRandUsesCheckpointableSource(t *testing.T) {
	// NewRand(seed) and rand.New(NewSource(seed)) must be the same
	// stream: steppers keep their own Source for checkpointing while
	// the batch path goes through NewRand — byte-identical behavior
	// between the two depends on this.
	a := NewRand(5)
	b := rand.New(NewSource(5))
	for i := 0; i < 64; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("NewRand and rand.New(NewSource) diverged at draw %d", i)
		}
	}
}
