package core

import (
	"math/rand"

	"repro/internal/model"
	"repro/internal/sim"
)

// DirectContr is Algorithm DIRECTCONTR (Figure 9): a polynomial
// heuristic that skips subcoalitions entirely. An organization's
// contribution estimate φ̃ is the ψsp-value of the unit slots executed
// on its machines (whoever owned the jobs); its utility ψ is the usual
// job-owner value. Free processors are visited in random order and each
// takes a job of the organization with the largest deficit φ̃−ψ.
//
// Both quantities come straight from the simulator's per-owner accounts,
// so the policy is O(k) per decision.
type DirectContr struct {
	view *sim.View
	rng  *rand.Rand
}

// NewDirectContr returns a fresh DIRECTCONTR policy.
func NewDirectContr() *DirectContr { return &DirectContr{} }

// Name implements sim.Policy.
func (p *DirectContr) Name() string { return "DirectContr" }

// Attach implements sim.Policy.
func (p *DirectContr) Attach(v *sim.View, rng *rand.Rand) {
	p.view = v
	p.rng = rng
}

// Select implements sim.Policy: argmax(φ̃−ψ) among waiting
// organizations, low index on ties.
func (p *DirectContr) Select(_ model.Time, _ int) int {
	best := -1
	var bestDeficit int64
	for u := 0; u < p.view.Orgs(); u++ {
		if p.view.Waiting(u) == 0 {
			continue
		}
		deficit := p.view.OwnerPsi(u) - p.view.Psi(u)
		if best == -1 || deficit > bestDeficit {
			best, bestDeficit = u, deficit
		}
	}
	return best
}

// OrderMachines implements sim.MachineOrderer: Figure 9 considers the
// processors in a random order on each scheduling event.
func (p *DirectContr) OrderMachines(_ model.Time, free []int) {
	if p.rng == nil {
		return
	}
	p.rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
}

// DirectContrAlgorithm returns DIRECTCONTR as an Algorithm.
func DirectContrAlgorithm() Algorithm {
	return FromPolicy("DirectContr", func() sim.Policy { return NewDirectContr() })
}
