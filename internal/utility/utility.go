// Package utility implements the strategy-proof utility function ψsp of
// Skowron & Rzadca (Theorem 4.1, Equation 3) together with the classic
// scheduling metrics the paper contrasts it with (flow time, makespan,
// resource utilization).
//
// ψsp admits an exact integer formulation: a job (s, p) evaluated at time
// t corresponds to min(p, t−s) executed unit slots τ = s, s+1, …, and each
// executed slot τ is worth t − τ. The closed form of Equation 3 is the
// arithmetic-series sum of those unit values. All code in this module
// therefore works in int64 — there is no floating-point error anywhere in
// utility accounting.
package utility

import "repro/internal/model"

// Execution is one started job inside a schedule: the pair (s, p) of the
// paper. Release times are irrelevant to ψsp (only starts matter), so the
// type carries none; see Placed for metrics that need releases.
type Execution struct {
	Start model.Time
	Size  model.Time
}

// ExecutedUnits returns min(p, t−s) clamped at 0: the number of unit
// slots of a job (s, p) that finished executing strictly before t.
func ExecutedUnits(s, p, t model.Time) int64 {
	e := t - s
	if e <= 0 {
		return 0
	}
	if e > p {
		e = p
	}
	return int64(e)
}

// PsiJob returns the ψsp value at time t of a single job started at s
// with size p:
//
//	ψ = Σ_{τ=s}^{s+e−1} (t − τ)   where e = min(p, t−s)
//
// equal to Equation 3's min(p,t−s)·(t − (s+min(s+p−1,t−1))/2). The value
// is always a non-negative integer.
func PsiJob(s, p, t model.Time) int64 {
	e := ExecutedUnits(s, p, t)
	if e == 0 {
		return 0
	}
	// e·t − Σ τ = e·t − (2s+e−1)·e/2 = e·(2(t−s) − e + 1)/2.
	return e * (2*int64(t-s) - e + 1) / 2
}

// Psi returns ψsp of a whole schedule at time t: the sum of PsiJob over
// its executions. ψsp is additive across jobs by construction.
func Psi(execs []Execution, t model.Time) int64 {
	var total int64
	for _, e := range execs {
		total += PsiJob(e.Start, e.Size, t)
	}
	return total
}

// Account is an incremental ψsp accumulator. It stores
//
//	U = number of executed unit slots recorded so far
//	S = sum of their slot indices
//
// so that ψsp at any evaluation time t ≥ (all recorded slots)+1 is
// t·U − S. Simulators call AddWindow as jobs execute; PsiAt is O(1).
// The zero value is an empty account, ready to use.
type Account struct {
	U int64
	S int64
}

// AddWindow records execution of unit slots τ ∈ [from, to). A window with
// to ≤ from records nothing.
func (a *Account) AddWindow(from, to model.Time) {
	if to <= from {
		return
	}
	n := int64(to - from)
	a.U += n
	a.S += (int64(from) + int64(to) - 1) * n / 2
}

// AddScaledWindow records the work units a job executes during the
// wall-clock slots [from, to) on a speed-q machine (related-machines
// extension). The job started at s with p work units; it completes q
// units in each slot except possibly its last one, which carries the
// remainder. With q = 1 this is AddWindow over the clipped window.
// Callers must clip [from, to) to the job's occupancy
// [s, s+⌈p/q⌉).
func (a *Account) AddScaledWindow(s, p model.Time, q int, from, to model.Time) {
	if to <= from {
		return
	}
	if q <= 1 {
		a.AddWindow(from, to)
		return
	}
	dur := (p + model.Time(q) - 1) / model.Time(q)
	last := s + dur - 1
	hi := to
	if hi > last {
		hi = last
	}
	if hi > from {
		n := int64(hi - from)
		a.U += int64(q) * n
		a.S += int64(q) * (int64(from) + int64(hi) - 1) * n / 2
	}
	if to > last && from <= last {
		rem := int64(p) - int64(q)*int64(dur-1)
		a.U += rem
		a.S += rem * int64(last)
	}
}

// Add merges another account into a.
func (a *Account) Add(b Account) {
	a.U += b.U
	a.S += b.S
}

// PsiAt evaluates ψsp at time t given the recorded slots. Every recorded
// slot must satisfy τ < t for the value to correspond to Equation 3.
func (a *Account) PsiAt(t model.Time) int64 {
	return int64(t)*a.U - a.S
}

// Reset returns the account to its zero state.
func (a *Account) Reset() { *a = Account{} }
