package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/trace"
)

// FedScenario generates federated multi-cluster workloads for
// internal/fed: one job stream per member cluster (each user submits at
// a single home site), a heterogeneous [cluster][org] machine grid, and
// optional diurnal modulation with per-cluster phase offsets — the
// "clusters in different time zones" effect that makes offloading
// profitable in the federated-clouds follow-up paper.
type FedScenario struct {
	// Base supplies the job-size distribution, burst structure, user
	// count and total processor budget; its Procs are divided among the
	// clusters by MachineSkew.
	Base     Family
	Clusters int
	Orgs     int
	// LoadSkew is the Zipf exponent of the per-cluster arrival shares:
	// 0 spreads users uniformly, larger values concentrate submissions
	// on the first clusters (arrival skew).
	LoadSkew float64
	// MachineSkew is the Zipf exponent of the per-cluster machine
	// counts: 0 gives equal sites, larger values a few big sites and
	// many small ones (heterogeneous machine counts).
	MachineSkew float64
	// Period, when positive, modulates each cluster's arrivals
	// diurnally with period Period and relative amplitude Amplitude in
	// [0,1); cluster c's phase is shifted by c/Clusters of the period,
	// so cluster load peaks are staggered.
	Period    model.Time
	Amplitude float64
}

// DefaultFedScenario is a ready-to-run three-cluster scenario on the
// saturated RICC-like family — the regime where delegation policy
// choices are most visible.
func DefaultFedScenario() FedScenario {
	return FedScenario{
		Base:        RICC(),
		Clusters:    3,
		Orgs:        3,
		LoadSkew:    1,
		MachineSkew: 0.5,
		Period:      4000,
		Amplitude:   0.8,
	}
}

// Validate checks the scenario's structural constraints. Cluster counts
// up to model.MaxOrgs are supported — members are the players of the
// federation-level cooperative game, so their coalitions must fit a
// mask; counts above maxExactFedPlayers are the sampled-Shapley
// ablation's regime (FedREF's exact evaluator is infeasible there).
func (s FedScenario) Validate() error {
	if s.Clusters < 1 {
		return fmt.Errorf("gen: federated scenario needs at least one cluster, got %d", s.Clusters)
	}
	if s.Clusters > model.MaxOrgs {
		return fmt.Errorf("gen: federated scenario cluster count %d exceeds the federation-game member cap %d", s.Clusters, model.MaxOrgs)
	}
	if s.Orgs < 1 || s.Orgs > model.MaxOrgs {
		return fmt.Errorf("gen: federated scenario org count %d out of range [1, %d]", s.Orgs, model.MaxOrgs)
	}
	if s.Base.Procs < s.Clusters {
		return fmt.Errorf("gen: %d processors cannot cover %d clusters", s.Base.Procs, s.Clusters)
	}
	if s.Amplitude < 0 || s.Amplitude >= 1 {
		return fmt.Errorf("gen: diurnal amplitude %v out of range [0, 1)", s.Amplitude)
	}
	if s.Period < 0 {
		return fmt.Errorf("gen: diurnal period %d negative", s.Period)
	}
	return nil
}

// FedWorkload is one generated federated scenario instance, ready to
// wire into internal/fed: org names, the [cluster][org] machine grid,
// and each cluster's home-submitted job stream sorted by release.
type FedWorkload struct {
	Orgs     []string
	Machines [][]int
	Jobs     [][]model.Job
}

// TotalJobs returns the job count across every cluster stream.
func (w *FedWorkload) TotalJobs() int {
	n := 0
	for _, js := range w.Jobs {
		n += len(js)
	}
	return n
}

// MachineGrid returns the deterministic [cluster][org] machine grid:
// Base.Procs split across clusters by MachineSkew, and each cluster's
// share split across organizations by a Zipf rotated by the cluster
// index — so every organization is machine-heavy at some site and a
// tenant elsewhere, which is what gives the fairness-aware policy
// contribution credit to route on.
func (s FedScenario) MachineGrid() [][]int {
	perCluster := stats.ZipfSplit(s.Base.Procs, s.Clusters, s.MachineSkew)
	grid := make([][]int, s.Clusters)
	base := stats.ZipfWeights(s.Orgs, 1)
	for c := range grid {
		w := make([]float64, s.Orgs)
		for o := range w {
			w[o] = base[(o+s.Orgs-c%s.Orgs)%s.Orgs]
		}
		grid[c] = stats.Apportion(perCluster[c], w)
	}
	return grid
}

// Generate produces one federated workload over [0, horizon): the base
// family's trace is generated once, each user is homed at a cluster
// (Zipf by LoadSkew) and owned by an organization (uniform deal), and
// each cluster's stream is then thinned by its phase-shifted diurnal
// rate. Deterministic given (scenario, horizon, rng state).
func (s FedScenario) Generate(horizon model.Time, rng *rand.Rand) (*FedWorkload, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	tr := s.Base.Generate(horizon, rng)
	users := tr.Users()
	orgOf := trace.AssignUsers(users, s.Orgs, rng)
	clusterWeights := stats.ZipfWeights(s.Clusters, s.LoadSkew)
	clusterOf := make(map[int]int, len(users))
	for _, u := range users {
		clusterOf[u] = weightedPick(rng, clusterWeights)
	}
	w := &FedWorkload{
		Orgs:     s.OrgNames(),
		Machines: s.MachineGrid(),
		Jobs:     make([][]model.Job, s.Clusters),
	}
	for _, j := range tr.Jobs {
		c := clusterOf[j.User]
		if !s.keep(c, j.Submit, rng) {
			continue
		}
		w.Jobs[c] = append(w.Jobs[c], model.Job{
			Org:     orgOf[j.User],
			Release: j.Submit,
			Size:    j.Runtime,
		})
	}
	for c := range w.Jobs {
		js := w.Jobs[c]
		sort.SliceStable(js, func(a, b int) bool { return js[a].Release < js[b].Release })
	}
	return w, nil
}

// keep applies cluster c's phase-shifted diurnal thinning to a
// submission at time t: acceptance is proportional to
// 1 + Amplitude·sin(2π(t+phase_c)/Period), normalized by the peak rate.
// With Period 0 every submission is kept. The rng is consumed for every
// candidate job, in trace order, so generation stays deterministic.
func (s FedScenario) keep(c int, t model.Time, rng *rand.Rand) bool {
	if s.Period <= 0 || s.Amplitude == 0 {
		return true
	}
	draw := rng.Float64()
	phase := float64(s.Period) * float64(c) / float64(s.Clusters)
	rate := 1 + s.Amplitude*math.Sin(2*math.Pi*(float64(t)+phase)/float64(s.Period))
	return draw*(1+s.Amplitude) < rate
}

// weightedPick draws an index proportionally to the weights (which sum
// to 1, as returned by stats.ZipfWeights).
func weightedPick(rng *rand.Rand, weights []float64) int {
	x := rng.Float64()
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
