package core

import (
	"runtime"

	"repro/internal/model"
	"repro/internal/sim"
)

// stepHeap (below) is the event-heap driver (RefOptions.Driver ==
// DriverHeap).
//
// The scan driver pays O(2^k) per global event just to find the next
// event time, advances all 2^k−1 clusters to it, and flushes every
// coalition's value at every dispatch instant. The heap driver keeps
// the coalitions in an indexed min-heap keyed by NextEventTime and pops
// exactly the clusters whose event fires at the current instant — the
// "touched" set. Only touched clusters are advanced and re-snapshotted;
// every other coalition's value is read in O(1) from its cached
// ValuePoly, which stays exact until that cluster's own next event.
//
// Two engine invariants make this equivalent to the scan driver:
//
//  1. A cluster can become dispatchable only through one of its own
//     events: Dispatch always exhausts either the free machines or the
//     waiting queue, and only the cluster's own releases and
//     completions replenish them. So dispatch candidates at time t are
//     exactly the touched clusters.
//  2. Jobs started at t have executed nothing before t, so coalition
//     values at t are unaffected by same-instant starts — the lazily
//     filled value snapshot serves every dispatching coalition at t, in
//     any order.
//
// The driver state (heap, cached polynomials, dispatch stamps) lives on
// the Ref so a run can be held open across StepNext calls, fed online
// arrivals and checkpointed. ensureDriver (re)builds it from the
// current cluster states: heap keys are each cluster's NextEventTime
// (exactly what a live heap would hold — untouched clusters' keys never
// drift from it), polynomials are fresh snapshots (a re-snapshot of an
// unchanged cluster evaluates identically on the poly's validity
// window), and stamps are cleared (values are recomputed on demand to
// the same numbers). This is why checkpoints never serialize driver
// state and restore stays byte-identical.
func (r *Ref) ensureDriver() {
	if r.driverReady {
		return
	}
	n := int(r.grand) + 1
	if r.h == nil {
		r.h = newEventHeap(n)
		r.polys = make([]sim.ValuePoly, n)
		r.touched = make([]model.Coalition, 0, n)
	}
	for mask := model.Coalition(1); mask <= r.grand; mask++ {
		r.polys[mask] = r.sims[mask].ValuePoly()
	}
	r.rebuildHeap()
	r.ct.ResetStamps()
	r.driverReady = true
}

// rebuildHeap rebuilds the heap from every cluster's current
// NextEventTime — the single keying rule, now needed only at driver
// (re)initialization: Inject and Withdraw re-key just the masks they
// touched through eventHeap.update, and the differential tests hold the
// incremental heap to exactly the state this rebuild would produce.
func (r *Ref) rebuildHeap() {
	for _, mask := range r.h.heap {
		r.h.pos[mask] = -1
	}
	r.h.heap = r.h.heap[:0]
	for mask := model.Coalition(1); mask <= r.grand; mask++ {
		if k := r.sims[mask].NextEventTime(); k != sim.MaxTime {
			r.h.key[mask] = k
			r.h.push(mask)
		}
	}
}

// stepHeap is one iteration of the event-heap driver: pop the touched
// set at the globally earliest instant, advance and dispatch exactly
// those clusters, re-snapshot their polynomials and re-insert them.
func (r *Ref) stepHeap(until model.Time) bool {
	r.ensureDriver()
	if r.h.size() == 0 {
		return false
	}
	t := r.h.minKey()
	if t == sim.MaxTime || t > until {
		return false
	}
	r.touched = r.touched[:0]
	for r.h.size() > 0 && r.h.minKey() == t {
		r.touched = append(r.touched, r.h.pop())
	}
	r.advanceMasks(r.touched, t)
	r.dispatchTouched(r.touched, t)
	for _, mask := range r.touched {
		r.polys[mask] = r.sims[mask].ValuePoly()
		if k := r.sims[mask].NextEventTime(); k != sim.MaxTime {
			r.h.key[mask] = k
			r.h.push(mask)
		}
	}
	return true
}

// advanceMasks moves the given clusters to time t, fanning out over
// workers when the touched set is large enough to pay for it (releases
// touch 2^(k−1) clusters at once; completions touch one).
func (r *Ref) advanceMasks(masks []model.Coalition, t model.Time) {
	workers := 1
	if r.opts.Parallel && len(masks) >= 16 {
		workers = r.opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	if workers <= 1 {
		for _, mask := range masks {
			r.sims[mask].AdvanceTo(t)
		}
		return
	}
	forEachChunk(workers, len(masks), func(lo, hi int) {
		for _, mask := range masks[lo:hi] {
			c := r.sims[mask]
			c.AdvanceTo(t)
			c.Flush() // accrual work happens on the worker
		}
	})
}

// dispatchTouched runs the Figure 1 dispatch loop over the touched set,
// smallest coalitions first, filling the contribution engine's value
// snapshot lazily through the org-level game: a subcoalition's value at
// t comes from its live cluster when the cluster was touched at t, and
// from its cached polynomial otherwise (orgGame.ValueAt); the engine's
// stamps make each subcoalition cost one evaluation per instant.
func (r *Ref) dispatchTouched(touched []model.Coalition, t model.Time) {
	any := false
	for _, mask := range touched {
		if r.sims[mask].CanDispatch() {
			any = true
			break
		}
	}
	if !any {
		return
	}
	// Insertion sort by (size, mask): the touched set is tiny (one
	// completion, or the masks sharing a release instant) and
	// sort.Slice allocates its closure on every call — this loop is on
	// the zero-alloc stepping budget.
	for i := 1; i < len(touched); i++ {
		m := touched[i]
		sz := m.Size()
		j := i - 1
		for j >= 0 && (touched[j].Size() > sz || (touched[j].Size() == sz && touched[j] > m)) {
			touched[j+1] = touched[j]
			j--
		}
		touched[j+1] = m
	}
	game := r.game
	for _, mask := range touched {
		c := r.sims[mask]
		if !c.CanDispatch() {
			continue
		}
		r.ct.FillSubsets(game, mask, t)
		r.computePhi(mask)
		c.Dispatch()
	}
}

// eventHeap is an indexed binary min-heap of coalition masks keyed by
// next event time, with the mask value as a deterministic tie-break.
// key and pos are indexed by mask (pos[mask] == -1 when absent), so
// single-mask re-keys are O(log n) sifts (fix/remove/update) instead of
// full rebuilds; callers set key[mask] before push.
type eventHeap struct {
	key  []model.Time
	pos  []int
	heap []model.Coalition
}

func newEventHeap(n int) *eventHeap {
	h := &eventHeap{
		key:  make([]model.Time, n),
		pos:  make([]int, n),
		heap: make([]model.Coalition, 0, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

func (h *eventHeap) size() int { return len(h.heap) }

func (h *eventHeap) minKey() model.Time { return h.key[h.heap[0]] }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.heap[i], h.heap[j]
	if h.key[a] != h.key[b] {
		return h.key[a] < h.key[b]
	}
	return a < b
}

func (h *eventHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

func (h *eventHeap) push(mask model.Coalition) {
	h.pos[mask] = len(h.heap)
	h.heap = append(h.heap, mask)
	h.up(len(h.heap) - 1)
}

func (h *eventHeap) pop() model.Coalition {
	top := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[top] = -1
	if last > 0 {
		h.down(0)
	}
	return top
}

// fix restores the heap invariant after key[mask] changed in place: one
// up-sift, then a down-sift if the entry did not move up.
func (h *eventHeap) fix(mask model.Coalition) {
	i := h.pos[mask]
	h.up(i)
	if h.pos[mask] == i {
		h.down(i)
	}
}

// remove deletes mask from anywhere in the heap: swap with the last
// entry, truncate, and re-sift the displaced entry.
func (h *eventHeap) remove(mask model.Coalition) {
	i := h.pos[mask]
	last := len(h.heap) - 1
	h.swap(i, last)
	h.heap = h.heap[:last]
	h.pos[mask] = -1
	if i < last {
		h.fix(h.heap[i])
	}
}

// update is the incremental form of rebuildHeap's keying rule for one
// mask: present iff k != sim.MaxTime, keyed by k. It inserts, removes
// or sifts as needed, and is a no-op when the key is unchanged.
func (h *eventHeap) update(mask model.Coalition, k model.Time) {
	if k == sim.MaxTime {
		if h.pos[mask] >= 0 {
			h.remove(mask)
		}
		return
	}
	if h.pos[mask] < 0 {
		h.key[mask] = k
		h.push(mask)
		return
	}
	if h.key[mask] == k {
		return
	}
	h.key[mask] = k
	h.fix(mask)
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
