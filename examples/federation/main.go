// Example federation demonstrates federated multi-cluster scheduling:
// three clusters with staggered diurnal load peaks and heterogeneous
// machine counts run the same generated workload under each delegation
// policy — local-only (no federation), greedy least-loaded, and
// fairness-aware contribution-credit routing — and the federation-wide
// ledger shows what delegation buys. The fairness-aware run is then
// checkpointed mid-flight and resumed, finishing with identical
// accounting.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fed"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/stats"
)

const (
	horizon = model.Time(4000)
	seed    = int64(42)
)

func main() {
	scen := gen.DefaultFedScenario()
	scen.Base = scen.Base.Scale(0.15) // keep the demo snappy
	w, err := scen.Generate(horizon, stats.NewRand(seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario: %d clusters, %d orgs, %d jobs over [0,%d)\n",
		scen.Clusters, scen.Orgs, w.TotalJobs(), horizon)
	for c, row := range w.Machines {
		fmt.Printf("  site%d: machines per org %v, %d home submissions\n", c, row, len(w.Jobs[c]))
	}

	// Run the identical workload under each delegation policy. Every
	// cluster schedules with DIRECTCONTR — the polynomial contribution
	// heuristic — so the fairness-aware policy has φ estimates to
	// route on.
	policies := []fed.Policy{fed.LocalOnly{}, fed.LeastLoaded{}, fed.FairnessAware{}}
	ledgers := make([]*fed.Ledger, len(policies))
	for i, p := range policies {
		f := build(w, p)
		if _, err := f.Step(horizon); err != nil {
			log.Fatal(err)
		}
		if err := f.CheckConservation(); err != nil {
			log.Fatal(err)
		}
		ledgers[i] = f.Ledger()
	}

	local := ledgers[0]
	fmt.Println("\n== delegation policies on the same workload ==")
	fmt.Printf("%-14s %10s %10s %12s %14s\n", "policy", "offloaded", "value", "executed", "Δψ vs local")
	for i, p := range policies {
		l := ledgers[i]
		fmt.Printf("%-14s %9.1f%% %10d %12d %14d\n",
			p.Name(), 100*l.OffloadedFraction(), l.FederationValue(), l.TotalExecuted(),
			metrics.DeltaPsi(l.FederationPsi(), local.FederationPsi()))
	}

	fair := ledgers[2]
	fmt.Println("\n== fairness-aware routing matrix (origin → executing site) ==")
	for o, row := range fair.Routed {
		fmt.Printf("  site%d → %v\n", o, row)
	}
	fmt.Println("\n== per-cluster vs federation-wide ψ (fairness-aware) ==")
	for c := range fair.Psi {
		fmt.Printf("  site%d ψ=%v value=%d executed=%d\n", c, fair.Psi[c], fair.Value[c], fair.Executed[c])
	}
	fmt.Printf("  federation ψ=%v value=%d\n", fair.FederationPsi(), fair.FederationValue())

	// Checkpoint/restore: stop the fairness-aware run halfway,
	// serialize the whole federation, resume it in a fresh one, and
	// finish — the accounting matches the uninterrupted run exactly.
	half := build(w, fed.FairnessAware{})
	if _, err := half.Step(horizon / 2); err != nil {
		log.Fatal(err)
	}
	snap, err := half.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := fed.Restore(w.Orgs, specs(w), fed.FairnessAware{}, snap)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := resumed.Step(horizon); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== checkpoint/restore ==\n")
	fmt.Printf("snapshot at t=%d: %d bytes, %d decisions so far\n",
		horizon/2, len(snap), len(half.Decisions()))
	rl := resumed.Ledger()
	fmt.Printf("resumed run finishes with value=%d executed=%d (uninterrupted: value=%d executed=%d)\n",
		rl.FederationValue(), rl.TotalExecuted(), fair.FederationValue(), fair.TotalExecuted())
	if rl.FederationValue() != fair.FederationValue() || rl.TotalExecuted() != fair.TotalExecuted() {
		log.Fatal("resumed run diverged from uninterrupted run")
	}
}

// specs wires the generated machine grid into member cluster specs.
func specs(w *gen.FedWorkload) []fed.ClusterSpec {
	out := make([]fed.ClusterSpec, len(w.Machines))
	for c := range out {
		out[c] = fed.ClusterSpec{
			Name:     fmt.Sprintf("site%d", c),
			Alg:      core.DirectContrAlgorithm().(core.StepperAlgorithm),
			Machines: w.Machines[c],
		}
	}
	return out
}

// build assembles a federation over the workload and submits every
// cluster's home stream (arrivals stay pending until release).
func build(w *gen.FedWorkload, policy fed.Policy) *fed.Federation {
	f, err := fed.New(w.Orgs, specs(w), policy, seed)
	if err != nil {
		log.Fatal(err)
	}
	for c, js := range w.Jobs {
		if err := f.SubmitJobs(c, js); err != nil {
			log.Fatal(err)
		}
	}
	return f
}
