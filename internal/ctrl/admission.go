package ctrl

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/model"
)

// mulInt64 multiplies two non-negative int64s, reporting whether the
// product fits — every caller treats a non-fitting product as "larger
// than anything", never as the wrapped value.
func mulInt64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	c := a * b
	if c/b != a {
		return 0, false
	}
	return c, true
}

// Verdict is an admission decision's outcome.
type Verdict uint8

const (
	// Admitted: the job proceeds to routing.
	Admitted Verdict = iota
	// Rejected: the job leaves the system; it will never run here.
	Rejected
	// Deferred: the job is parked and its admission retried at RetryAt.
	Deferred
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admitted"
	case Rejected:
		return "rejected"
	case Deferred:
		return "deferred"
	}
	return fmt.Sprintf("verdict(%d)", uint8(v))
}

// Decision is one admission verdict. RetryAt is meaningful only for
// Deferred and must lie strictly after the decision instant — a policy
// that defers without advancing time would wedge the event loop, and
// the Plane rejects it.
type Decision struct {
	Verdict Verdict
	RetryAt model.Time
}

// AdmissionPolicy decides whether a released job enters the system.
// Decide receives the job, its retry attempt (0 first try), the
// decision instant and the current — possibly stale — View, and must be
// deterministic: the Plane's determinism and checkpoint guarantees
// depend on it. Policies may carry mutable state (token-bucket levels);
// that state rides in control-plane checkpoints through StateJSON /
// RestoreState (stateless policies return nil and accept anything).
type AdmissionPolicy interface {
	Name() string
	Decide(job Job, attempt int, now model.Time, view View) Decision
	StateJSON() ([]byte, error)
	RestoreState([]byte) error
}

// AlwaysAdmit admits everything — the pre-control-plane behavior, and
// the differential baseline: a run gated by AlwaysAdmit at staleness 0
// is byte-identical to the ungated run.
type AlwaysAdmit struct{}

// Name implements AdmissionPolicy.
func (AlwaysAdmit) Name() string { return "always" }

// Decide implements AdmissionPolicy.
func (AlwaysAdmit) Decide(Job, int, model.Time, View) Decision {
	return Decision{Verdict: Admitted}
}

// StateJSON implements AdmissionPolicy.
func (AlwaysAdmit) StateJSON() ([]byte, error) { return nil, nil }

// RestoreState implements AdmissionPolicy.
func (AlwaysAdmit) RestoreState([]byte) error { return nil }

// TokenBucket is per-organization token-bucket admission: organization
// o's bucket holds up to Burst tokens and refills at Rate tokens per
// Period time units; a job costs one token (or Size tokens with
// SizeCost). A job finding enough tokens is admitted and the tokens
// consumed; otherwise it is deferred exactly until the refill instant
// at which the bucket covers it — the earliest admissible moment, so
// deferral is work-conserving — or rejected outright when the cost
// exceeds the bucket capacity (it could never fit) or the job has
// already been deferred MaxDefers times.
//
// All arithmetic is integral: levels are stored in token-ticks (tokens
// scaled by Period), so refill accrues exactly Rate token-ticks per
// time unit with no floating-point drift — determinism and
// byte-identical checkpoints fall out.
type TokenBucket struct {
	// Rate is tokens added per Period; must be ≥ 1.
	Rate int64
	// Period is the refill timescale; must be ≥ 1.
	Period model.Time
	// Burst is the bucket capacity in tokens; must be ≥ 1.
	Burst int64
	// SizeCost charges Size tokens per job instead of 1 — admission by
	// work, not job count, which is the knob that blunts demand
	// inflation via job splitting (examples/strategyproof).
	SizeCost bool
	// MaxDefers bounds retries: a job deferred more than MaxDefers
	// times is rejected. 0 means unbounded (the bucket's refill always
	// terminates the wait).
	MaxDefers int

	// Mutable per-org state, lazily sized on first use.
	levels []int64      // token-ticks available
	synced []model.Time // instant levels[o] was last refilled to
}

// Name implements AdmissionPolicy.
func (b *TokenBucket) Name() string { return "tokenbucket" }

// init validates the configuration and sizes the state.
func (b *TokenBucket) ensure(org int) error {
	if b.Rate < 1 || b.Period < 1 || b.Burst < 1 {
		return fmt.Errorf("ctrl: token bucket needs rate, period and burst >= 1 (have %d/%d/%d)", b.Rate, b.Period, b.Burst)
	}
	full, ok := mulInt64(b.Burst, int64(b.Period))
	if !ok {
		full = math.MaxInt64
	}
	for len(b.levels) <= org {
		// New buckets start full at time 0: a fresh system admits an
		// initial burst, as a long-idle bucket would.
		b.levels = append(b.levels, full)
		b.synced = append(b.synced, 0)
	}
	return nil
}

// Decide implements AdmissionPolicy.
func (b *TokenBucket) Decide(job Job, attempt int, now model.Time, _ View) Decision {
	if err := b.ensure(job.Org); err != nil {
		// Invalid configuration fails closed, deterministically.
		return Decision{Verdict: Rejected}
	}
	o := job.Org
	capacity, ok := mulInt64(b.Burst, int64(b.Period))
	if !ok {
		// A capacity beyond int64 is unreachable by any refill: saturate.
		capacity = math.MaxInt64
	}
	if dt := now - b.synced[o]; dt > 0 {
		// Refill saturates at the capacity; an accrual too large to
		// represent certainly fills the bucket. levels[o] ≥ 0 and
		// add ≥ 0, so the comparison itself cannot overflow.
		if add, ok := mulInt64(int64(dt), b.Rate); !ok || b.levels[o] > capacity-add {
			b.levels[o] = capacity
		} else {
			b.levels[o] += add
		}
	}
	b.synced[o] = now
	cost := int64(b.Period)
	if b.SizeCost {
		// A size-cost product that wraps int64 used to come out
		// negative or tiny and slip past the capacity check, admitting
		// exactly the jobs the bucket exists to reject. A cost too
		// large to represent can never fit: fail closed.
		cost, ok = mulInt64(int64(job.Size), int64(b.Period))
		if !ok {
			return Decision{Verdict: Rejected}
		}
	}
	if cost > capacity {
		return Decision{Verdict: Rejected}
	}
	if b.levels[o] >= cost {
		b.levels[o] -= cost
		return Decision{Verdict: Admitted}
	}
	if b.MaxDefers > 0 && attempt >= b.MaxDefers {
		return Decision{Verdict: Rejected}
	}
	// Earliest instant the refill covers the cost: ceil division keeps
	// it exact, and the shortfall is ≥ 1 token-tick, so RetryAt > now.
	shortfall := cost - b.levels[o]
	wait := (shortfall + b.Rate - 1) / b.Rate
	return Decision{Verdict: Deferred, RetryAt: now + model.Time(wait)}
}

// tokenBucketState is the serialized mutable state.
type tokenBucketState struct {
	Levels []int64      `json:"levels,omitempty"`
	Synced []model.Time `json:"synced,omitempty"`
}

// StateJSON implements AdmissionPolicy.
func (b *TokenBucket) StateJSON() ([]byte, error) {
	return json.Marshal(tokenBucketState{Levels: b.levels, Synced: b.synced})
}

// RestoreState implements AdmissionPolicy.
func (b *TokenBucket) RestoreState(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var st tokenBucketState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("ctrl: restore token bucket: %w", err)
	}
	if len(st.Levels) != len(st.Synced) {
		return fmt.Errorf("ctrl: restore token bucket: %d levels for %d sync marks", len(st.Levels), len(st.Synced))
	}
	b.levels = st.Levels
	b.synced = st.Synced
	return nil
}

// Backpressure is queue-depth admission: jobs are admitted while the
// observed backlog (View.Load.Waiting — possibly stale, per the
// snapshot contract) is below MaxWaiting, deferred by RetryAfter
// otherwise, and rejected once deferred more than MaxAttempts times
// (0 = defer forever; the backlog draining over time is what
// terminates the wait). It is stateless: the view carries everything.
type Backpressure struct {
	// MaxWaiting is the backlog bound; must be ≥ 1.
	MaxWaiting int
	// RetryAfter is the defer delay; must be ≥ 1.
	RetryAfter model.Time
	// MaxAttempts bounds retries before rejection; 0 = unbounded.
	MaxAttempts int
}

// Name implements AdmissionPolicy.
func (Backpressure) Name() string { return "backpressure" }

// Decide implements AdmissionPolicy.
func (p Backpressure) Decide(_ Job, attempt int, now model.Time, view View) Decision {
	if p.MaxWaiting < 1 || p.RetryAfter < 1 {
		return Decision{Verdict: Rejected} // invalid configuration fails closed
	}
	if view.Load.Waiting < p.MaxWaiting {
		return Decision{Verdict: Admitted}
	}
	if p.MaxAttempts > 0 && attempt >= p.MaxAttempts {
		return Decision{Verdict: Rejected}
	}
	return Decision{Verdict: Deferred, RetryAt: now + p.RetryAfter}
}

// StateJSON implements AdmissionPolicy.
func (Backpressure) StateJSON() ([]byte, error) { return nil, nil }

// RestoreState implements AdmissionPolicy.
func (Backpressure) RestoreState([]byte) error { return nil }

// PolicySpec is the serializable form of an admission policy — what
// rides in daemon SessionConfigs and experiment configs. Build
// resolves it into a live policy; unknown or inconsistent specs fail.
type PolicySpec struct {
	// Policy is "always", "tokenbucket" or "backpressure".
	Policy string `json:"policy"`

	// Token-bucket knobs.
	Rate     int64      `json:"rate,omitempty"`
	Period   model.Time `json:"period,omitempty"`
	Burst    int64      `json:"burst,omitempty"`
	SizeCost bool       `json:"size_cost,omitempty"`

	// Backpressure knobs.
	MaxWaiting int        `json:"max_waiting,omitempty"`
	RetryAfter model.Time `json:"retry_after,omitempty"`

	// Shared retry bound (TokenBucket.MaxDefers / Backpressure.MaxAttempts).
	MaxAttempts int `json:"max_attempts,omitempty"`

	// Staleness is the admission view's max age for owners that build
	// their own snapshot provider from the spec (single-cluster engine
	// gates); federated planes observe through the federation's
	// exchange provider and ignore it.
	Staleness model.Time `json:"staleness,omitempty"`
}

// Build resolves the spec into a live admission policy.
func (s PolicySpec) Build() (AdmissionPolicy, error) {
	switch s.Policy {
	case "", "always", "alwaysadmit", "always-admit":
		return AlwaysAdmit{}, nil
	case "tokenbucket", "token-bucket":
		// Period validates like the other knobs instead of silently
		// clamping to 1: a spec that meant "rate per 1000 ticks" but
		// dropped the period would otherwise refill 1000× too fast.
		if s.Period < 1 || s.Rate < 1 || s.Burst < 1 {
			return nil, fmt.Errorf("ctrl: token bucket spec needs rate, period and burst >= 1 (have rate %d, period %d, burst %d)", s.Rate, s.Period, s.Burst)
		}
		return &TokenBucket{Rate: s.Rate, Period: s.Period, Burst: s.Burst, SizeCost: s.SizeCost, MaxDefers: s.MaxAttempts}, nil
	case "backpressure", "queue-depth":
		p := Backpressure{MaxWaiting: s.MaxWaiting, RetryAfter: s.RetryAfter, MaxAttempts: s.MaxAttempts}
		if p.RetryAfter < 1 {
			p.RetryAfter = 1
		}
		if p.MaxWaiting < 1 {
			return nil, fmt.Errorf("ctrl: backpressure spec needs max_waiting >= 1 (have %d)", s.MaxWaiting)
		}
		return p, nil
	default:
		return nil, fmt.Errorf("ctrl: unknown admission policy %q (want always, tokenbucket or backpressure)", s.Policy)
	}
}
