package core

import (
	"math"
	"math/rand"

	"repro/internal/model"
	"repro/internal/shapley"
	"repro/internal/sim"
	"repro/internal/utility"
)

// GeneralRef is Algorithm REF in its full Figure 1 form: fair scheduling
// for an arbitrary utility function ψ. It follows the pseudocode's
// FairAlgorithm loop literally — at every time moment, coalitions are
// processed smallest first; UpdateVals recomputes each member's utility
// and Shapley contribution from the stored subcoalition values; and
// SelectAndSchedule starts the job minimizing the Distance between the
// utility vector and the contribution vector in the Manhattan metric.
//
// For ψsp the Distance comparison degenerates (a job started at t has
// executed nothing before t, so Δψ = 0) and the rule reduces to the
// Figure 3 simplification argmax(φ−ψ) — TestGeneralRefMatchesRef
// verifies that the two implementations then produce identical
// schedules. For utilities that react to starts (utility.Starts), the
// Distance procedure is non-degenerate and drives genuinely different
// decisions.
//
// GeneralRef re-evaluates ψ from per-organization execution lists at
// every decision instant, so it is a reference implementation: use Ref
// for ψsp experiments at scale.
type GeneralRef struct {
	inst  *model.Instance
	k     int
	grand model.Coalition
	util  utility.Func

	sims   []*sim.Cluster
	bySize []model.Coalition
	execs  [][][]utility.Execution // [mask][org] -> executions
	psi    [][]int64               // [mask][org]
	phi    [][]float64             // [mask][org]
	ct     *shapley.Contrib        // coalition values, updated by updateVals in size order
}

// NewGeneralRef builds the arbitrary-utility reference scheduler.
func NewGeneralRef(inst *model.Instance, util utility.Func) *GeneralRef {
	k := len(inst.Orgs)
	g := &GeneralRef{
		inst:  inst,
		k:     k,
		grand: model.Grand(k),
		util:  util,
		sims:  make([]*sim.Cluster, 1<<uint(k)),
		execs: make([][][]utility.Execution, 1<<uint(k)),
		psi:   make([][]int64, 1<<uint(k)),
		phi:   make([][]float64, 1<<uint(k)),
		ct:    shapley.NewContrib(k),
	}
	for mask := model.Coalition(1); mask <= g.grand; mask++ {
		g.sims[mask] = sim.New(inst, mask, &generalRefPolicy{g: g, mask: mask}, nil)
		g.execs[mask] = make([][]utility.Execution, k)
		g.psi[mask] = make([]int64, k)
		g.phi[mask] = make([]float64, k)
	}
	for s := 1; s <= k; s++ {
		for mask := model.Coalition(1); mask <= g.grand; mask++ {
			if mask.Size() == s {
				g.bySize = append(g.bySize, mask)
			}
		}
	}
	return g
}

// Run drives every coalition to the horizon and returns the grand
// coalition's result. Result.Psi reports the configured utility (not
// ψsp) per organization; Result.Value their sum.
func (g *GeneralRef) Run(until model.Time) *Result {
	for {
		t := sim.MaxTime
		for mask := model.Coalition(1); mask <= g.grand; mask++ {
			if e := g.sims[mask].NextEventTime(); e < t {
				t = e
			}
		}
		if t == sim.MaxTime || t > until {
			break
		}
		for mask := model.Coalition(1); mask <= g.grand; mask++ {
			g.sims[mask].AdvanceTo(t)
		}
		// FairAlgorithm's inner loop: smallest coalitions first, each
		// refreshing its values and contributions before scheduling.
		for _, mask := range g.bySize {
			g.updateVals(mask, t)
			if g.sims[mask].CanDispatch() {
				g.sims[mask].Dispatch()
			}
		}
	}
	for mask := model.Coalition(1); mask <= g.grand; mask++ {
		g.sims[mask].AdvanceTo(until)
	}
	g.refreshAt(until)
	grand := g.sims[g.grand]
	res := resultFromCluster("GeneralREF("+g.util.Name()+")", grand, until, append([]float64(nil), g.phi[g.grand]...))
	res.Psi = append([]int64(nil), g.psi[g.grand]...)
	res.Value = g.ct.Value(g.grand)
	return res
}

// refreshAt recomputes ψ, v and φ for every coalition at time t.
func (g *GeneralRef) refreshAt(t model.Time) {
	for _, mask := range g.bySize {
		g.updateVals(mask, t)
	}
}

// updateVals is the UpdateVals procedure of Figure 1 for one coalition:
// member utilities from the coalition's own schedule, the coalition
// value as their sum, and contributions by the contribution engine's
// Shapley subset formula over the currently stored subcoalition values.
func (g *GeneralRef) updateVals(mask model.Coalition, t model.Time) {
	psi := g.psi[mask]
	var value int64
	mask.EachMember(func(u int) {
		psi[u] = g.util.Eval(g.execs[mask][u], t)
		value += psi[u]
	})
	g.ct.SetValue(mask, value)
	g.ct.PhiInto(mask, g.phi[mask])
}

// PhiOf returns the last computed contribution vector of a coalition.
func (g *GeneralRef) PhiOf(mask model.Coalition) []float64 {
	return append([]float64(nil), g.phi[mask]...)
}

// generalRefPolicy implements SelectAndSchedule with the Distance
// procedure of Figure 1.
type generalRefPolicy struct {
	g    *GeneralRef
	mask model.Coalition
	view *sim.View
}

// Name implements sim.Policy.
func (p *generalRefPolicy) Name() string { return "GeneralREF" }

// Attach implements sim.Policy.
func (p *generalRefPolicy) Attach(v *sim.View, _ *rand.Rand) { p.view = v }

// Select implements sim.Policy: the organization minimizing the
// Manhattan distance between the tentative utility vector and the
// tentative contribution vector, assuming its head job is started now.
// Ties break toward the larger deficit φ−ψ, then the lower index.
func (p *generalRefPolicy) Select(t model.Time, _ int) int {
	g := p.g
	phi := g.phi[p.mask]
	psi := g.psi[p.mask]
	size := float64(p.mask.Size())
	best := -1
	bestDist := math.Inf(1)
	bestDeficit := math.Inf(-1)
	p.mask.EachMember(func(u int) {
		if p.view.Waiting(u) == 0 {
			return
		}
		dist := p.distance(t, u, phi, psi, size)
		deficit := phi[u] - float64(psi[u])
		if dist < bestDist-1e-9 || (dist < bestDist+1e-9 && deficit > bestDeficit) {
			best, bestDist, bestDeficit = u, dist, deficit
		}
	})
	return best
}

// distance is the Distance procedure: with Δψ the utility increase of
// starting u's head job at t, every member's contribution rises by
// Δψ/‖C‖ and u's utility by Δψ.
func (p *generalRefPolicy) distance(t model.Time, u int, phi []float64, psi []int64, size float64) float64 {
	g := p.g
	id, _, ok := p.view.Head(u)
	if !ok {
		return math.Inf(1)
	}
	tentative := append(g.execs[p.mask][u], utility.Execution{Start: t, Size: g.inst.Jobs[id].Size})
	deltaPsi := float64(g.util.Eval(tentative, t) - psi[u])
	share := deltaPsi / size
	total := math.Abs(phi[u] + share - float64(psi[u]) - deltaPsi)
	p.mask.EachMember(func(v int) {
		if v != u {
			total += math.Abs(phi[v] + share - float64(psi[v]))
		}
	})
	return total
}

// OnStart implements sim.StartObserver: record the execution and update
// the organization's stored utility (SelectAndSchedule's last line).
func (p *generalRefPolicy) OnStart(t model.Time, job model.Job, _ int) {
	g := p.g
	g.execs[p.mask][job.Org] = append(g.execs[p.mask][job.Org], utility.Execution{Start: t, Size: job.Size})
	g.psi[p.mask][job.Org] = g.util.Eval(g.execs[p.mask][job.Org], t)
}

// GeneralRefAlgorithm adapts GeneralRef to the Algorithm interface.
type GeneralRefAlgorithm struct{ Util utility.Func }

// Name implements Algorithm.
func (a GeneralRefAlgorithm) Name() string { return "GeneralREF(" + a.Util.Name() + ")" }

// Run implements Algorithm.
func (a GeneralRefAlgorithm) Run(inst *model.Instance, until model.Time, _ int64) *Result {
	return NewGeneralRef(inst, a.Util).Run(until)
}
