package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/model"
)

// Reader is a streaming SWF record reader: it yields one job at a time
// in file order and holds O(1) state, so arbitrarily long archive
// traces can feed the incremental engine without ever materializing in
// memory. Unlike the previous Scanner-based parser, lines have no
// length cap — multi-megabyte header or comment lines are fine.
//
// Usage:
//
//	r := trace.NewReader(f)
//	for {
//		j, err := r.Next()
//		if err == io.EOF {
//			break
//		}
//		...
//	}
//
// Records that the archive marks unusable (non-positive runtime or
// processor count, negative submit time) are skipped and counted in
// Skipped; malformed lines (too few fields, non-numeric mandatory
// fields) are errors.
type Reader struct {
	br      *bufio.Reader
	header  []string
	lineNo  int
	skipped int
	done    bool
}

// NewReader wraps an SWF stream.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64*1024)}
}

// Header returns the comment lines seen so far, without the leading
// ';'. The full header is available once Next has returned the first
// job (SWF headers precede all records).
func (r *Reader) Header() []string { return r.header }

// Skipped returns the number of unusable records skipped so far.
func (r *Reader) Skipped() int { return r.skipped }

// Line returns the current 1-based line number (for error reporting).
func (r *Reader) Line() int { return r.lineNo }

// MaxLineBytes bounds a single SWF line. It is far beyond any real
// archive header (the old parser capped at 1 MiB) while still failing
// fast on pathological input — a multi-gigabyte file with no newline
// would otherwise buffer whole into memory before the first record.
const MaxLineBytes = 64 * 1024 * 1024

// readLine returns the next line without its terminator. Lines up to
// MaxLineBytes are supported. io.EOF is returned only for a truly
// empty final read; a last line without a newline is delivered first.
func (r *Reader) readLine() (string, error) {
	var b strings.Builder
	for {
		chunk, err := r.br.ReadString('\n')
		b.WriteString(chunk)
		if b.Len() > MaxLineBytes {
			return "", fmt.Errorf("line %d exceeds %d bytes", r.lineNo+1, MaxLineBytes)
		}
		if err == nil {
			break
		}
		if err == io.EOF {
			if b.Len() == 0 {
				return "", io.EOF
			}
			break
		}
		return "", err
	}
	return strings.TrimRight(b.String(), "\r\n"), nil
}

// Next returns the next usable job record, or io.EOF when the trace is
// exhausted.
func (r *Reader) Next() (Job, error) {
	if r.done {
		return Job{}, io.EOF
	}
	for {
		line, err := r.readLine()
		if err == io.EOF {
			r.done = true
			return Job{}, io.EOF
		}
		if err != nil {
			return Job{}, fmt.Errorf("trace: %w", err)
		}
		r.lineNo++
		line = strings.TrimSpace(line)
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, ";"):
			r.header = append(r.header, strings.TrimSpace(strings.TrimPrefix(line, ";")))
			continue
		}
		j, ok, err := parseRecord(line, r.lineNo)
		if err != nil {
			return Job{}, err
		}
		if !ok {
			r.skipped++
			continue
		}
		return j, nil
	}
}

// parseRecord parses one SWF data line. ok is false for records the
// archive marks unusable (these are skipped, not errors).
func parseRecord(line string, lineNo int) (Job, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 12 {
		return Job{}, false, fmt.Errorf("trace: line %d has %d fields, want >= 12", lineNo, len(fields))
	}
	// Stack array, not a slice: one SWF trace is millions of records and
	// a per-record heap allocation here dominated the reader's profile.
	var nums [12]int64
	for i := 0; i < 12; i++ {
		v, perr := strconv.ParseInt(fields[i], 10, 64)
		if perr != nil {
			return Job{}, false, fmt.Errorf("trace: line %d has non-numeric fields", lineNo)
		}
		nums[i] = v
	}
	j := Job{
		ID:      int(nums[0]),
		Submit:  model.Time(nums[1]),
		Runtime: model.Time(nums[3]),
		Procs:   int(nums[4]),
		User:    int(nums[11]),
		Status:  int(nums[10]),
	}
	if j.Procs <= 0 {
		if req, perr := strconv.ParseInt(fields[7], 10, 64); perr == nil && req > 0 {
			j.Procs = int(req)
		}
	}
	if j.Runtime <= 0 || j.Procs <= 0 || j.Submit < 0 {
		return Job{}, false, nil
	}
	return j, true, nil
}
