package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestAlgorithmByName(t *testing.T) {
	names := []string{"ref", "rand", "directcontr", "direct", "fairshare",
		"utfairshare", "currfairshare", "roundrobin", "rr", "fcfs", "REF", "FairShare"}
	for _, n := range names {
		alg, err := AlgorithmByName(n, 15, core.RefOptions{}, core.RandOptions{})
		if err != nil {
			t.Errorf("AlgorithmByName(%q): %v", n, err)
			continue
		}
		if alg.Name() == "" {
			t.Errorf("%q resolved to unnamed algorithm", n)
		}
	}
	if _, err := AlgorithmByName("nope", 15, core.RefOptions{}, core.RandOptions{}); err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Errorf("unknown algorithm accepted: %v", err)
	}
}

func TestFamilyByName(t *testing.T) {
	cases := map[string]string{
		"lpc-egee":       "LPC-EGEE",
		"LPC EGEE":       "LPC-EGEE",
		"lpc":            "LPC-EGEE",
		"pik_iplex":      "PIK-IPLEX",
		"pik":            "PIK-IPLEX",
		"sharcnet-whale": "SHARCNET-Whale",
		"whale":          "SHARCNET-Whale",
		"ricc":           "RICC",
	}
	for in, want := range cases {
		f, err := gen.FamilyByName(in)
		if err != nil {
			t.Errorf("FamilyByName(%q): %v", in, err)
			continue
		}
		if f.Name != want {
			t.Errorf("FamilyByName(%q) = %s, want %s", in, f.Name, want)
		}
	}
	if _, err := gen.FamilyByName("kraken"); err == nil {
		t.Error("unknown family accepted")
	}
}
