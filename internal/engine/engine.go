// Package engine drives any core scheduling algorithm incrementally:
// jobs are fed as they arrive (Feed), the simulation advances to
// explicit instants (Step), and the complete deterministic state can be
// serialized and resumed byte-identically (Snapshot/Restore).
//
// The batch contract — core.Algorithm.Run(inst, horizon, seed) — is a
// degenerate use of this engine: construct it with the full job list
// and Step once to the horizon. The engine exists for everything the
// batch contract cannot express: online arrivals unknown at start,
// open-ended runs with no fixed horizon, long-running serving processes
// that checkpoint themselves (cmd/fairschedd), and traces too large to
// hold in memory (internal/trace.Reader feeds jobs in O(1) space).
//
// Determinism: an engine run is a pure function of (algorithm
// configuration, seed, the sequence of Feed and Step calls). Feeding a
// job before its release time produces exactly the batch schedule that
// would have contained the job from the start — TestStreamingMatchesBatch
// asserts byte-identical schedules, ψ and φ for every algorithm.
package engine

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/model"
	"repro/internal/sim"
)

// Engine holds one algorithm run open. Engines are single-goroutine
// objects: callers (the HTTP server, the examples) serialize access.
// Distinct engines share no mutable state, so they may be driven from
// different goroutines concurrently — the federation's parallel data
// plane steps one member engine per worker (internal/fed, parallel.go).
type Engine struct {
	alg      core.StepperAlgorithm
	s        core.Stepper
	seed     int64
	now      model.Time
	reported int   // starts already handed out by Step
	feedIDs  []int // scratch for Feed's returned IDs, reused per call

	// Optional admission gate (see gate.go). When nil — the default —
	// Feed and Step take the direct zero-allocation paths unchanged.
	plane        *ctrl.Plane
	admission    *ctrl.PolicySpec
	gateProvider *ctrl.CachedSnapshotProvider
	gateID       [1]int // scratch for gateSink injections
}

// New starts an incremental run of alg on inst. The engine takes
// ownership of the instance — jobs arriving later are appended to it by
// Feed. inst may start with an empty job list (the pure serving case).
func New(alg core.StepperAlgorithm, inst *model.Instance, seed int64) *Engine {
	return &Engine{alg: alg, s: alg.NewStepper(inst, seed), seed: seed}
}

// Algorithm returns the algorithm configuration driving the run.
func (e *Engine) Algorithm() core.StepperAlgorithm { return e.alg }

// Now returns the engine clock: the instant of the last Step.
func (e *Engine) Now() model.Time { return e.now }

// Seed returns the run's seed.
func (e *Engine) Seed() int64 { return e.seed }

// Instance returns the live instance, including every fed job.
func (e *Engine) Instance() *model.Instance { return e.s.Instance() }

// NextEventTime returns the earliest pending event across every
// schedule the algorithm maintains — including, on a gated engine,
// pending control events (queued arrivals and deferred admission
// retries) — or sim.MaxTime when none remains (the run is drained
// until more jobs are fed).
func (e *Engine) NextEventTime() model.Time {
	next := e.s.NextEventTime()
	if e.plane != nil {
		if t, ok := e.plane.NextEventTime(); ok && t < next {
			next = t
		}
	}
	return next
}

// Feed injects newly arrived jobs into the running simulation. Job IDs
// are assigned by the engine (callers leave Job.ID zero); each job must
// name a valid organization, have size ≥ 1, and be released no earlier
// than the engine clock — the scheduler is non-clairvoyant, but it
// cannot be fed its own past. The assigned IDs are returned in order;
// the slice is a scratch buffer owned by the engine, valid until the
// next Feed (callers that keep IDs copy them — the serving tier
// converts to its wire format immediately).
func (e *Engine) Feed(jobs []model.Job) ([]int, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	inst := e.s.Instance()
	for _, j := range jobs {
		if j.Org < 0 || j.Org >= len(inst.Orgs) {
			return nil, fmt.Errorf("engine: feed: unknown organization %d", j.Org)
		}
		if j.Size < 1 {
			return nil, fmt.Errorf("engine: feed: job size %d; sizes must be >= 1", j.Size)
		}
		if j.Release < e.now {
			return nil, fmt.Errorf("engine: feed: release %d before engine time %d", j.Release, e.now)
		}
	}
	e.feedIDs = e.feedIDs[:0]
	if e.plane != nil {
		// Gated path: jobs become ArrivalEvents at their release
		// instants; injection happens when the control plane admits them
		// (drainGate). The returned IDs are admission sequence numbers,
		// not instance job IDs — a gated job may never get one.
		for _, j := range jobs {
			seq := e.plane.Arrive(ctrl.Job{Seq: -1, Org: j.Org, Size: j.Size, Release: j.Release}, j.Release)
			e.feedIDs = append(e.feedIDs, int(seq))
		}
		return e.feedIDs, nil
	}
	for _, j := range jobs {
		j.ID = len(inst.Jobs)
		e.feedIDs = append(e.feedIDs, j.ID)
		inst.Jobs = append(inst.Jobs, j)
	}
	if err := e.s.Inject(e.feedIDs); err != nil {
		return nil, err
	}
	return e.feedIDs, nil
}

// Withdraw removes a fed-but-not-yet-started job from the run: the job
// leaves the decision schedule's wait queue (or pending releases) and
// will never start here, but stays in the instance as a tombstone —
// job IDs are positional and already-handed-out IDs must keep meaning.
// It fails when the job already started (scheduling is non-preemptive),
// finished, or was already withdrawn. Withdrawal is part of the
// deterministic state: snapshots taken after a withdraw restore
// byte-identically, and internal/fed uses it to migrate queued jobs
// between federation members.
func (e *Engine) Withdraw(id int) error {
	if id < 0 || id >= len(e.s.Instance().Jobs) {
		return fmt.Errorf("engine: withdraw: job %d not in instance", id)
	}
	return e.s.Withdraw(id)
}

// Withdrawn returns the number of withdrawn (and not re-injected) jobs.
func (e *Engine) Withdrawn() int { return e.s.Withdrawn() }

// Step advances the run to exactly `until`: every release, completion
// and dispatch at or before that instant is processed, and every
// schedule's clock lands on it. It returns the scheduling decisions
// made since the previous Step (or since Restore). Stepping to the
// current instant is a no-op that reports freshly fed same-instant
// releases, if any were dispatched.
//
// The returned slice aliases the run's decision log: entries are
// written once and never mutated, so the contents stay valid
// indefinitely, but callers must treat the slice as read-only and must
// not append to it (appends would race future log growth). Copy it to
// take ownership.
func (e *Engine) Step(until model.Time) ([]sim.Start, error) {
	if until < e.now {
		return nil, fmt.Errorf("engine: step to %d before engine time %d", until, e.now)
	}
	if e.plane != nil {
		if err := e.drainGate(until); err != nil {
			return nil, err
		}
	}
	e.advanceTo(until)
	all := e.s.Starts()
	fresh := all[e.reported:]
	e.reported = len(all)
	return fresh, nil
}

// advanceTo is the core stepping loop Step and the admission gate
// share: process every schedule event at or before until and land the
// clock on it.
func (e *Engine) advanceTo(until model.Time) {
	for e.s.StepNext(until) {
	}
	e.s.FinishAt(until)
	e.now = until
}

// StepToNextEvent advances to the next pending event instant, if one
// exists, and returns its decisions. The second result reports whether
// an event existed.
func (e *Engine) StepToNextEvent() ([]sim.Start, bool, error) {
	t := e.NextEventTime()
	if t == sim.MaxTime {
		return nil, false, nil
	}
	starts, err := e.Step(t)
	return starts, true, err
}

// BatchRequest is one advance target in an AdvanceBatch; a nil Until
// means "to the next pending event" (the StepToNextEvent form).
type BatchRequest struct {
	Until *model.Time
}

// BatchResult is one AdvanceBatch outcome. Starts aliases the decision
// log under the same read-only contract as Step's return value; Stepped
// reports whether the run moved (false for a nil-Until request on a
// drained run, mirroring StepToNextEvent's second result).
type BatchResult struct {
	Now     model.Time
	Starts  []sim.Start
	Stepped bool
	Err     error
}

// AdvanceBatch processes a group of advance requests back to back,
// filling out[i] with requests[i]'s outcome; out must be at least as
// long as requests. One call amortizes the per-request overhead the
// serving tier would otherwise pay per wakeup — the daemon's pipeline
// workers coalesce a session's queued advances into one AdvanceBatch
// under one session lock and one checkpoint-dirty mark. A failing
// request records its error and leaves the run where it stands; later
// requests still execute, exactly as sequential Step calls would.
func (e *Engine) AdvanceBatch(requests []BatchRequest, out []BatchResult) {
	for i, req := range requests {
		var res BatchResult
		if req.Until != nil {
			res.Starts, res.Err = e.Step(*req.Until)
			res.Stepped = res.Err == nil
		} else {
			res.Starts, res.Stepped, res.Err = e.StepToNextEvent()
		}
		res.Now = e.now
		out[i] = res
	}
}

// Decisions returns the full decision schedule so far.
func (e *Engine) Decisions() []sim.Start { return e.s.Starts() }

// Waiting returns the number of fed jobs not yet started — the queue
// backlog load signal peers see (under the feed-at-release discipline
// of internal/fed every fed job is already released, so this is exactly
// the waiting-queue length). Withdrawn jobs will never start and do not
// count.
func (e *Engine) Waiting() int {
	return len(e.s.Instance().Jobs) - len(e.s.Starts()) - e.s.Withdrawn()
}

// Result evaluates utilities, contributions and the schedule at the
// current engine clock.
func (e *Engine) Result() *core.Result { return e.s.ResultAt(e.now) }

// Snapshot serializes the run's complete deterministic state as JSON.
// Restoring it — in this process or another — resumes the run
// byte-identically: same future decisions, same ψ and φ. An ungated
// engine emits a bare core checkpoint (Restore); a gated one wraps it
// in the control-plane envelope (RestoreGated).
func (e *Engine) Snapshot() ([]byte, error) {
	cp, err := e.s.Capture(e.now)
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(cp)
	if err != nil {
		return nil, err
	}
	if e.plane != nil {
		return e.snapshotGated(raw)
	}
	return raw, nil
}

// Restore rebuilds an engine from a Snapshot. The algorithm
// configuration must match the one that captured the snapshot (the
// checkpoint carries only dynamic state).
func Restore(alg core.StepperAlgorithm, data []byte) (*Engine, error) {
	var cp core.Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	if cp.Version != core.CheckpointVersion {
		return nil, fmt.Errorf("engine: restore: checkpoint version %d, want %d", cp.Version, core.CheckpointVersion)
	}
	if cp.Algorithm != alg.Name() {
		return nil, fmt.Errorf("engine: restore: checkpoint for %q, engine configured as %q", cp.Algorithm, alg.Name())
	}
	s, err := alg.RestoreStepper(&cp)
	if err != nil {
		return nil, err
	}
	return &Engine{alg: alg, s: s, seed: cp.Seed, now: cp.Now, reported: len(s.Starts())}, nil
}
