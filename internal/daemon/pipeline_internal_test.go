package daemon

import "testing"

// TestWorkerTakeRoundRobin pins the pipeline's batching and
// rate-limiting semantics deterministically: one queue pass serves
// every queued session at most burst requests, in round-robin order,
// and a hot session's backlog survives to later passes instead of
// starving its stripe — the "one hot session cannot starve a shard"
// guarantee, tested at the queue it is implemented in.
func TestWorkerTakeRoundRobin(t *testing.T) {
	w := &pipelineWorker{pending: make(map[string][]advanceReq)}
	enqueue := func(id string, n int) {
		if _, queued := w.pending[id]; !queued {
			w.order = append(w.order, id)
		}
		for i := 0; i < n; i++ {
			w.pending[id] = append(w.pending[id], advanceReq{sess: &Session{id: id}})
		}
	}
	enqueue("hot", 10) // a deep backlog...
	enqueue("cold", 2) // ...and a session that arrived after it

	const burst = 4
	batch := w.take(burst)
	// First pass: burst from hot, everything from cold — cold is fully
	// served while hot still has 6 queued.
	ids := func(batch []advanceReq) map[string]int {
		count := map[string]int{}
		for _, req := range batch {
			count[req.sess.ID()]++
		}
		return count
	}
	if got := ids(batch); got["hot"] != burst || got["cold"] != 2 || len(batch) != burst+2 {
		t.Fatalf("first pass served %v, want hot=%d cold=2", got, burst)
	}
	// Hot's remainder drains over the following passes; a session that
	// shows up meanwhile is served in the same pass, not behind the
	// whole backlog.
	enqueue("late", 1)
	if got := ids(w.take(burst)); got["hot"] != burst || got["late"] != 1 {
		t.Fatalf("second pass served %v, want hot=%d late=1", got, burst)
	}
	if got := ids(w.take(burst)); got["hot"] != 2 || len(got) != 1 {
		t.Fatalf("third pass served %v, want the remaining hot=2", got)
	}
	if batch := w.take(burst); len(batch) != 0 || len(w.pending) != 0 || len(w.order) != 0 {
		t.Fatalf("queue not empty after draining: batch=%d pending=%d order=%d", len(batch), len(w.pending), len(w.order))
	}
}
