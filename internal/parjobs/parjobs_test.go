package parjobs

import (
	"testing"

	"repro/internal/model"
	"repro/internal/utility"
)

// The starvation witness from the paper's closing discussion: with
// rigid parallel jobs, a greedy algorithm's utilization can fall far
// below 3/4 of another greedy algorithm's — Theorem 6.2 does not extend.
//
// Three machines. Organization A submits one unit-size width-1 job per
// time unit; organization B submits a single width-3 job at t=0. Under
// A-priority, A's stream keeps one machine busy at every instant, so
// three machines are never simultaneously free and B starves: 1/3
// utilization. Under B-priority, B runs first and A's backlog fills the
// machines afterwards: 5/6 utilization at T=20.
func starvationInstance() *Instance {
	in := &Instance{Machines: 3, Orgs: 2}
	jobs := []Job{{Org: 1, Release: 0, Size: 10, Width: 3}}
	for t := model.Time(0); t < 20; t++ {
		jobs = append(jobs, Job{Org: 0, Release: t, Size: 1, Width: 1})
	}
	// Sort by release with B's job first at t=0 (stable semantics:
	// rebuild IDs).
	sorted := make([]Job, 0, len(jobs))
	for t := model.Time(0); t < 20; t++ {
		for _, j := range jobs {
			if j.Release == t {
				j.ID = len(sorted)
				sorted = append(sorted, j)
			}
		}
	}
	in.Jobs = sorted
	return in
}

func TestParallelJobsBreakThreeQuarterBound(t *testing.T) {
	const T = 20
	aFirst, err := Simulate(starvationInstance(), []int{0, 1}, T)
	if err != nil {
		t.Fatal(err)
	}
	bFirst, err := Simulate(starvationInstance(), []int{1, 0}, T)
	if err != nil {
		t.Fatal(err)
	}
	ua, ub := aFirst.Utilization(T), bFirst.Utilization(T)
	if ua != 1.0/3.0 {
		t.Fatalf("A-first utilization = %v, want 1/3 (width-3 job starves)", ua)
	}
	if ub != 50.0/60.0 {
		t.Fatalf("B-first utilization = %v, want 5/6", ub)
	}
	if ua >= 0.75*ub {
		t.Fatalf("expected the 3/4 bound to fail: %v vs %v", ua, ub)
	}
	// B's wide job starves while A's stream lasts: its earliest start is
	// t=20, when the last unit job completes and all three machines are
	// finally free at once.
	for _, s := range aFirst.Starts {
		if aFirst.Instance.Jobs[s.Job].Org == 1 && s.At < T {
			t.Fatalf("width-3 job started at %d despite fragmentation", s.At)
		}
	}
}

func TestSequentialSpecialCaseMatchesMainEngine(t *testing.T) {
	// With all widths 1 the rigid simulator must agree with the main
	// engine's busy accounting on a simple priority schedule.
	in := &Instance{Machines: 2, Orgs: 2, Jobs: []Job{
		{ID: 0, Org: 0, Release: 0, Size: 3, Width: 1},
		{ID: 1, Org: 1, Release: 0, Size: 5, Width: 1},
		{ID: 2, Org: 0, Release: 1, Size: 2, Width: 1},
	}}
	res, err := Simulate(in, []int{0, 1}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.BusyUnits(20); got != 10 {
		t.Fatalf("busy units = %d, want 10", got)
	}
	// Job 2 starts when the first machine frees at t=3.
	for _, s := range res.Starts {
		if s.Job == 2 && s.At != 3 {
			t.Fatalf("job 2 started at %d, want 3", s.At)
		}
	}
	// ψsp with width 1 equals the sequential closed form.
	want := utility.PsiJob(0, 3, 20) + utility.PsiJob(3, 2, 20)
	if got := res.Psi(0, 20); got != want {
		t.Fatalf("ψ(A) = %d, want %d", got, want)
	}
}

func TestParallelPsiScalesWithWidth(t *testing.T) {
	in := &Instance{Machines: 4, Orgs: 1, Jobs: []Job{
		{ID: 0, Org: 0, Release: 0, Size: 5, Width: 4},
	}}
	res, err := Simulate(in, []int{0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Psi(0, 10); got != 4*utility.PsiJob(0, 5, 10) {
		t.Fatalf("width-4 ψ = %d, want %d", got, 4*utility.PsiJob(0, 5, 10))
	}
	if got := res.Utilization(5); got != 4.0/4.0 {
		t.Fatalf("utilization = %v", got)
	}
}

func TestFIFOBlockingSemantics(t *testing.T) {
	// A wide head blocks the organization's own queue even when a later
	// narrow job would fit (no backfilling).
	in := &Instance{Machines: 2, Orgs: 2, Jobs: []Job{
		{ID: 0, Org: 1, Release: 0, Size: 4, Width: 1},
		{ID: 1, Org: 0, Release: 0, Size: 2, Width: 2}, // A's wide head
		{ID: 2, Org: 0, Release: 0, Size: 1, Width: 1}, // A's narrow second
	}}
	res, err := Simulate(in, []int{1, 0}, 20)
	if err != nil {
		t.Fatal(err)
	}
	startOf := map[int]model.Time{}
	for _, s := range res.Starts {
		startOf[s.Job] = s.At
	}
	// B's narrow job is scanned first and takes one machine at t=0; A's
	// wide head does not fit the single remaining machine and blocks A's
	// own queue (the narrow job 2 may not overtake it). A's wide job
	// starts when B completes at t=4; the narrow one behind it at t=6.
	if startOf[0] != 0 || startOf[1] != 4 || startOf[2] != 6 {
		t.Fatalf("starts = %v, want job0@0, job1@4, job2@6", startOf)
	}
}

func TestValidation(t *testing.T) {
	cases := []Instance{
		{Machines: 0, Orgs: 1},
		{Machines: 2, Orgs: 0},
		{Machines: 2, Orgs: 1, Jobs: []Job{{ID: 0, Org: 0, Size: 1, Width: 3}}},
		{Machines: 2, Orgs: 1, Jobs: []Job{{ID: 0, Org: 0, Size: 0, Width: 1}}},
		{Machines: 2, Orgs: 1, Jobs: []Job{{ID: 5, Org: 0, Size: 1, Width: 1}}},
		{Machines: 2, Orgs: 1, Jobs: []Job{{ID: 0, Org: 2, Size: 1, Width: 1}}},
	}
	for i, in := range cases {
		in := in
		if _, err := Simulate(&in, make([]int, in.Orgs), 10); err == nil {
			t.Errorf("case %d accepted: %+v", i, in)
		}
	}
	good := &Instance{Machines: 2, Orgs: 1, Jobs: []Job{{ID: 0, Org: 0, Size: 1, Width: 1}}}
	if _, err := Simulate(good, []int{0, 1}, 10); err == nil {
		t.Error("wrong priority length accepted")
	}
}
