// Package bargain implements the weighted Nash Bargaining Solution by
// deterministic water-filling — the alternative cooperative solution
// concept the ContribGame layer was built to host alongside the Shapley
// value (ROADMAP: "Nash bargaining allocators on the ContribGame
// layer"; SNIPPETS.md Snippet 1, the MBCAS allocator).
//
// The problem solved is
//
//	max  Σ_i w_i · log(x_i − d_i)
//	s.t. Σ_i x_i ≤ C,   d_i ≤ x_i ≤ max_i,
//
// with d the disagreement points (what each agent gets on its own), w
// the bargaining weights and max_i per-agent caps. The KKT conditions
// give x_i = d_i + w_i/λ for uncapped agents, so the surplus C − Σd is
// split proportionally to weight, with capped agents pinned at max_i
// and their unused headroom redistributed to the rest — the classic
// weighted water-filling, solved exactly in at most n passes.
//
// The solution satisfies the Nash bargaining axioms (verified by the
// property battery in axioms_test.go): Pareto optimality, individual
// rationality, symmetry, and independence of irrelevant alternatives.
//
// Two integration points consume this package: core.Nbs (the in-cluster
// "nbs" allocation stepper, disagreement points from each
// organization's standalone schedule) and fed.NBSPolicy (the "fednbs"
// delegation policy, disagreement points from the federation game's
// singleton values).
package bargain

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible reports a problem whose disagreement points already
// exceed the capacity (Σd > C beyond rounding tolerance): no allocation
// can give every agent at least its outside option. Callers on
// superadditive games never see it; callers on arbitrary inputs can
// errors.Is for it and fall back to the disagreement vector.
var ErrInfeasible = errors.New("bargain: disagreement points exceed capacity")

// feasTol is the relative slack allowed when Σd exceeds C: coalition
// values arrive as int64 sums converted to float64, so superadditive
// games can violate Σd ≤ C by a few ulps without being infeasible.
const feasTol = 1e-9

// Solver computes NBS allocations with reusable scratch space, so
// steady-state callers (the nbs stepper's dispatch path) allocate
// nothing per solve. The zero value is ready to use; a Solver is a
// single-goroutine object.
type Solver struct {
	active []bool
}

// Solve is the allocating convenience form of SolveInto. maxs may be
// nil (no per-agent caps).
func Solve(w, d, maxs []float64, capacity float64) ([]float64, error) {
	x := make([]float64, len(w))
	var s Solver
	if err := s.SolveInto(x, w, d, maxs, capacity); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto fills x with the weighted Nash bargaining allocation for
// weights w, disagreement points d, per-agent caps maxs (nil, or
// +Inf entries, mean uncapped) and total capacity C. All slices must
// have equal length; x must not alias the inputs.
//
// Agents with zero weight stay at their disagreement point — they have
// no bargaining power, so they claim nothing of the surplus. The
// surplus max(0, C − Σd) is split among positive-weight agents
// proportionally to weight; agents whose share exceeds their cap are
// pinned there and the passes repeat on the remainder. Iteration order
// is fixed (ascending index) and all cap violations within a pass are
// pinned simultaneously, so the result is deterministic and
// independent of agent ordering beyond the tie-free math itself.
func (s *Solver) SolveInto(x, w, d, maxs []float64, capacity float64) error {
	n := len(w)
	if len(d) != n || len(x) != n || (maxs != nil && len(maxs) != n) {
		return fmt.Errorf("bargain: mismatched columns (w %d, d %d, max %d, x %d)", n, len(d), len(maxs), len(x))
	}
	if math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		return fmt.Errorf("bargain: capacity %v is not finite", capacity)
	}
	sumD := 0.0
	for i := 0; i < n; i++ {
		if math.IsNaN(w[i]) || w[i] < 0 {
			return fmt.Errorf("bargain: agent %d has weight %v; weights must be >= 0", i, w[i])
		}
		if math.IsNaN(d[i]) || math.IsInf(d[i], 0) {
			return fmt.Errorf("bargain: agent %d has disagreement point %v", i, d[i])
		}
		if maxs != nil {
			if math.IsNaN(maxs[i]) {
				return fmt.Errorf("bargain: agent %d has cap NaN", i)
			}
			if maxs[i] < d[i] {
				return fmt.Errorf("bargain: agent %d has cap %v below disagreement point %v", i, maxs[i], d[i])
			}
		}
		sumD += d[i]
	}
	surplus := capacity - sumD
	if surplus < 0 {
		if -surplus > feasTol*math.Max(1, math.Abs(capacity)) {
			return fmt.Errorf("%w (Σd %v, capacity %v)", ErrInfeasible, sumD, capacity)
		}
		surplus = 0
	}

	if cap(s.active) < n {
		s.active = make([]bool, n)
	}
	active := s.active[:n]
	totalW := 0.0
	for i := 0; i < n; i++ {
		x[i] = d[i]
		active[i] = w[i] > 0 && (maxs == nil || maxs[i] > d[i])
		if active[i] {
			totalW += w[i]
		}
	}

	// Water-filling: split the surplus proportionally to weight; pin
	// every agent whose share overflows its cap and redistribute. Each
	// pass either pins at least one agent or terminates, so at most n
	// passes run. Pinning only ever raises the per-weight unit for the
	// agents that remain (the pinned agent's headroom is smaller than
	// its proportional share), so a pinned agent stays pinned in the
	// exact solution — the greedy pass order is sound.
	for pass := 0; pass < n && surplus > 0 && totalW > 0; pass++ {
		unit := surplus / totalW
		pinned := false
		for i := 0; i < n; i++ {
			if !active[i] || maxs == nil || math.IsInf(maxs[i], 1) {
				continue
			}
			if headroom := maxs[i] - d[i]; w[i]*unit >= headroom {
				x[i] = maxs[i]
				surplus -= headroom
				totalW -= w[i]
				active[i] = false
				pinned = true
			}
		}
		if !pinned {
			for i := 0; i < n; i++ {
				if active[i] {
					x[i] = d[i] + w[i]*unit
					active[i] = false
				}
			}
			surplus = 0
		}
	}
	return nil
}
