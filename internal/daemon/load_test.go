package daemon_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/model"
)

// loadFedCfg is the per-session configuration of the load test: a small
// two-cluster federation under the migrating federation-level Shapley
// router with stale gossip — the most stateful session kind the daemon
// serves (withdrawals, tombstones, exchange cache and migration ledger
// all in play).
func loadFedCfg(seed int64) daemon.SessionConfig {
	return daemon.SessionConfig{
		Kind:     daemon.KindFederation,
		OrgNames: []string{"alpha", "beta"},
		Policy:   "fedref-migrate",
		Clusters: []daemon.ClusterConfig{
			{Name: "busy", Alg: "directcontr", Machines: []int{1, 0}},
			{Name: "idle", Alg: "directcontr", Machines: []int{1, 2}},
		},
		Staleness:       25,
		MigrationBudget: 4,
		Seed:            seed,
	}
}

// TestSessionMigrationBudgetKnob: the wire config's MigrationBudget
// reaches the policy — a negative value disables the re-delegation
// pass entirely, reproducing the non-migrating run.
func TestSessionMigrationBudgetKnob(t *testing.T) {
	run := func(budget int) daemon.StateReply {
		cfg := loadFedCfg(3)
		cfg.MigrationBudget = budget
		m := daemon.NewManager()
		s, err := m.Create("k", cfg)
		if err != nil {
			t.Fatal(err)
		}
		var jobs []daemon.JobSubmission
		for j := 0; j < 16; j++ {
			jobs = append(jobs, daemon.JobSubmission{Cluster: 0, Org: j % 2, Size: 4, Release: timePtr(model.Time(3 * j))})
		}
		if _, err := s.Submit(jobs); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Advance(timePtr(400)); err != nil {
			t.Fatal(err)
		}
		return s.State()
	}
	if st := run(-1); st.Migrations != 0 {
		t.Fatalf("disabled budget still migrated %d jobs", st.Migrations)
	}
	if st := run(0); st.Migrations == 0 { // 0 keeps the policy default (8)
		t.Fatal("default budget migrated nothing on a saturated origin")
	}
}

// TestDaemonFederatedSessionLoad drives hundreds of concurrent
// federated sessions through the full create → submit → advance →
// checkpoint → restore → delete lifecycle — the north-star's
// "millions of users" direction scaled to a unit test. Run under -race
// in CI it doubles as the shard-lock ordering check (create/delete
// take a shard lock then the listing lock, never the reverse); here it
// also asserts liveness: every advance completes within a generous
// bound, so no session ever blocks behind the whole table.
func TestDaemonFederatedSessionLoad(t *testing.T) { runDaemonFederatedSessionLoad(t, 0) }

// TestDaemonFederatedSessionLoadParallelPlane is the same storm with
// the federation data plane fanned out (SessionConfig.FedWorkers > 1):
// under -race this is the proof that parallel member stepping inside a
// session composes with the daemon's own concurrency — shard locks,
// concurrent listings, checkpoint/restore — without a data race, and
// the sameState check after restore doubles as a spot-check that the
// width (deliberately absent from checkpoints) never leaks into
// results.
func TestDaemonFederatedSessionLoadParallelPlane(t *testing.T) {
	runDaemonFederatedSessionLoad(t, 3)
}

func runDaemonFederatedSessionLoad(t *testing.T, fedWorkers int) {
	sessions := 240
	if testing.Short() {
		sessions = 60
	}
	const workers = 24
	m := daemon.NewManager()
	var (
		wg         sync.WaitGroup
		maxAdvance atomic.Int64 // nanoseconds
		migrations atomic.Int64
	)
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				id := fmt.Sprintf("load-%d", i)
				cfg := loadFedCfg(int64(i))
				cfg.FedWorkers = fedWorkers
				s, err := m.Create(id, cfg)
				if err != nil {
					t.Errorf("create %s: %v", id, err)
					return
				}
				var jobs []daemon.JobSubmission
				for j := 0; j < 16; j++ {
					jobs = append(jobs, daemon.JobSubmission{
						Cluster: 0, Org: j % 2, Size: 4, Release: timePtr(model.Time(3 * j)),
					})
				}
				if _, err := s.Submit(jobs); err != nil {
					t.Errorf("submit %s: %v", id, err)
					return
				}
				for _, until := range []model.Time{30, 60, 120, 400} {
					begin := time.Now()
					if _, _, err := s.Advance(timePtr(until)); err != nil {
						t.Errorf("advance %s to %d: %v", id, until, err)
						return
					}
					if d := time.Since(begin).Nanoseconds(); d > maxAdvance.Load() {
						maxAdvance.Store(d) // racy max: any interleaving keeps a lower bound, enough for the assert
					}
				}
				before := s.State()
				snap, err := s.Checkpoint()
				if err != nil {
					t.Errorf("checkpoint %s: %v", id, err)
					return
				}
				if err := s.Restore(snap); err != nil {
					t.Errorf("restore %s: %v", id, err)
					return
				}
				if after := s.State(); !sameState(before, after) {
					t.Errorf("session %s state changed across checkpoint/restore", id)
					return
				}
				migrations.Add(before.Migrations)
				m.List() // concurrent listings share the order lock with create/delete
				if i%3 == 0 {
					if !m.Delete(id) {
						t.Errorf("delete %s reported missing", id)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < sessions; i++ {
		work <- i
	}
	close(work)
	wg.Wait()

	// Liveness: a single advance of a 16-job toy federation that takes
	// tens of seconds means sessions serialized behind a global lock.
	if got := time.Duration(maxAdvance.Load()); got > 20*time.Second {
		t.Fatalf("slowest advance took %v — session traffic is serializing", got)
	}
	// The workload is imbalanced by construction (every submission at
	// the 1-machine origin, a 3-machine idle peer): across hundreds of
	// sessions the migrating router must actually have re-delegated.
	if migrations.Load() == 0 {
		t.Fatal("no session migrated a single job — the load test exercises nothing")
	}
	// Table consistency after the storm: survivors are exactly the
	// non-deleted sessions, each listed once and retrievable.
	want := 0
	for i := 0; i < sessions; i++ {
		if i%3 != 0 {
			want++
		}
	}
	seen := make(map[string]bool)
	for _, s := range m.List() {
		if seen[s.ID()] {
			t.Fatalf("session %q listed twice", s.ID())
		}
		seen[s.ID()] = true
		if _, ok := m.Get(s.ID()); !ok {
			t.Fatalf("listed session %q not retrievable", s.ID())
		}
	}
	if len(seen) != want {
		t.Fatalf("%d sessions survived, want %d", len(seen), want)
	}
}
