package model

// SourceJob is one job yielded by a streaming JobSource: which cluster
// it was handed in at, who owns it, how big it is and when it becomes
// available. It is the streaming counterpart of a federated Submit
// call. The type lives here — in the shared vocabulary package — so
// producers (internal/gen scenario samplers) and the consumer
// (internal/fed's ingestion window) need not import one another.
type SourceJob struct {
	Cluster int
	Org     int
	Size    Time
	Release Time
}

// JobSource is the pull-based ingestion contract: the federation draws
// jobs on demand into a bounded lookahead window instead of requiring
// the whole replay to be materialized in the pending queue, so a
// federated run holds O(window) jobs in memory regardless of trace
// length.
//
// Next returns the next job, ok=false when the stream is exhausted, or
// an error. Sources must yield jobs in nondecreasing Release order and
// must be deterministic and replayable: a checkpoint records only how
// many jobs were consumed (the cursor), and restoring re-opens the
// source and skips that prefix — see fed.Federation.SetSource.
type JobSource interface {
	Next() (SourceJob, bool, error)
}
