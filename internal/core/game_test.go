package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/shapley"
)

// REF's org-level game plugged into the generic Shapley machinery must
// reproduce the contributions the driver itself scheduled by: at the
// horizon, shapley.ExactAt over Ref.Game() equals Ref.PhiOf(grand) —
// the same coalition values feed both paths.
func TestOrgGameMatchesRefPhi(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(5100 + seed))
		inst := randCoreInstance(r, 2+int(seed%3), false)
		for _, driver := range []RefDriver{DriverHeap, DriverScan} {
			ref := NewRef(inst, RefOptions{Driver: driver})
			res := ref.Run(200)
			phi := shapley.ExactAt(ref.Game(), 200)
			for u := range phi {
				if math.Abs(phi[u]-res.Phi[u]) > 1e-9 {
					t.Fatalf("seed %d driver %v: φ[%d] = %v via ExactAt, %v via REF", seed, driver, u, phi[u], res.Phi[u])
				}
			}
			// The game's grand value is the scheduled coalition value.
			if got := ref.Game().ValueAt(model.Grand(len(inst.Orgs)), 200); got != res.Value {
				t.Fatalf("seed %d driver %v: grand value %d via game, %d via result", seed, driver, got, res.Value)
			}
		}
	}
}

// The sampled estimator consumes the same game: on a 2-org instance a
// modest permutation budget recovers the exact contributions (with two
// players there are only two orderings, so the average converges fast
// and efficiency holds per sample).
func TestOrgGameSampledEfficiency(t *testing.T) {
	r := rand.New(rand.NewSource(5200))
	inst := randCoreInstance(r, 3, false)
	ref := NewRef(inst, RefOptions{})
	res := ref.Run(150)
	phi := shapley.SampleAt(ref.Game(), 150, 40, rand.New(rand.NewSource(1)))
	var sum float64
	for _, p := range phi {
		sum += p
	}
	if math.Abs(sum-float64(res.Value)) > 1e-6 {
		t.Fatalf("sampled Σφ = %v, v(grand) = %d (efficiency holds per permutation)", sum, res.Value)
	}
}
